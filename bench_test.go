// Benchmarks regenerating every table and figure of the paper's evaluation
// (at reduced search budgets — run cmd/rubyexp -full for paper fidelity),
// plus microbenchmarks and ablations of the cost model and samplers.
//
// Each experiment benchmark reports a headline metric from the regenerated
// data alongside the wall time, so `go test -bench=.` doubles as a smoke
// check that the paper's shapes still hold.
package ruby

import (
	"context"

	"math/rand"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/exp"
	"ruby/internal/heuristic"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
	"ruby/internal/sim"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

func benchCfg(evals int64) exp.Config {
	return exp.Config{
		Opt:  search.Options{Seed: 1, Threads: 4, MaxEvaluations: evals},
		Runs: 1,
	}
}

func runExp(b *testing.B, name string, cfg exp.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(context.Background(), name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the mapspace-size table (exact counting, no
// search).
func BenchmarkTable1(b *testing.B) { b.ReportAllocs(); runExp(b, "table1", benchCfg(0)) }

// BenchmarkFig7 regenerates one convergence subfigure (Fig. 7b: 100x100
// matmul on 16 mismatched PEs, all four mapspaces).
func BenchmarkFig7(b *testing.B) { b.ReportAllocs(); runExp(b, "fig7b", benchCfg(3000)) }

// BenchmarkFig8 regenerates the dimension sweep against padding (exhaustive
// toy mapspaces; fully deterministic).
func BenchmarkFig8(b *testing.B) { b.ReportAllocs(); runExp(b, "fig8", benchCfg(0)) }

// BenchmarkFig9 regenerates the AlexNet layer-2 study.
func BenchmarkFig9(b *testing.B) { b.ReportAllocs(); runExp(b, "fig9", benchCfg(5000)) }

// BenchmarkFig10 regenerates the ResNet-50 per-layer comparison on the
// Eyeriss-like baseline.
func BenchmarkFig10(b *testing.B) { b.ReportAllocs(); runExp(b, "fig10", benchCfg(1000)) }

// BenchmarkFig11 regenerates the DeepBench comparison on the Eyeriss-like
// baseline.
func BenchmarkFig11(b *testing.B) { b.ReportAllocs(); runExp(b, "fig11", benchCfg(1000)) }

// BenchmarkFig12 regenerates the ResNet-50 comparison on both Simba-like
// configurations.
func BenchmarkFig12(b *testing.B) { b.ReportAllocs(); runExp(b, "fig12", benchCfg(800)) }

// BenchmarkFig13 regenerates the ResNet-50 area-EDP Pareto sweep.
func BenchmarkFig13(b *testing.B) { b.ReportAllocs(); runExp(b, "fig13a", benchCfg(250)) }

// BenchmarkFig13DeepBench regenerates the DeepBench sweep.
func BenchmarkFig13DeepBench(b *testing.B) { b.ReportAllocs(); runExp(b, "fig13b", benchCfg(250)) }

// BenchmarkFig14 regenerates the per-configuration improvement study.
func BenchmarkFig14(b *testing.B) { b.ReportAllocs(); runExp(b, "fig14a", benchCfg(250)) }

// BenchmarkFig14DeepBench regenerates the DeepBench improvement study.
func BenchmarkFig14DeepBench(b *testing.B) { b.ReportAllocs(); runExp(b, "fig14b", benchCfg(250)) }

// --- Microbenchmarks -------------------------------------------------------

// engineBenchSetup builds the engine-benchmark fixture: a convolution
// evaluator plus a fixed pool of sampled mappings that the loop cycles
// through, so the cached variant measures steady-state memo hits.
func engineBenchSetup() (*engine.Engine, *engine.Engine, []*mapping.Mapping) {
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	rng := rand.New(rand.NewSource(1))
	ms := make([]*mapping.Mapping, 256)
	for i := range ms {
		ms[i] = sp.Sample(rng)
	}
	uncached := engine.New(ev)
	cached := engine.Config{CacheEntries: 1 << 12}.New(ev)
	return uncached, cached, ms
}

// BenchmarkEngineUncached measures the zero-allocation uncached engine path
// — a per-goroutine Worker's EvaluateShared over pre-lowered valid mappings,
// the steady-state inner loop of every cache-less search worker. (The
// convenience Engine.Evaluate entry detaches its result with Cost.Clone and
// so allocates by design; invalid verdicts likewise allocate their Reason
// string. Neither belongs in the hot loop this benchmark gates.)
func BenchmarkEngineUncached(b *testing.B) {
	b.ReportAllocs()
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	eng := engine.New(ev)
	wk := eng.NewWorker()
	rng := rand.New(rand.NewSource(1))
	valid := make([]*mapping.Mapping, 0, 64)
	for i := 0; i < 200000 && len(valid) < cap(valid); i++ {
		m := sp.Sample(rng)
		if wk.EvaluateShared(m).Valid {
			valid = append(valid, m)
		}
	}
	if len(valid) == 0 {
		b.Fatal("no valid mappings in the benchmark pool")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wk.EvaluateShared(valid[i%len(valid)])
	}
}

// BenchmarkEngineCached measures steady-state re-evaluation of a working set
// resident in the memo cache. The ISSUE acceptance bar is a >= 5x speedup
// over BenchmarkEngineUncached with bit-identical costs (the costs are
// asserted identical in engine's tests; here we measure the speedup).
func BenchmarkEngineCached(b *testing.B) {
	b.ReportAllocs()
	_, eng, ms := engineBenchSetup()
	for _, m := range ms {
		eng.Evaluate(m) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Evaluate(ms[i%len(ms)])
	}
}

// BenchmarkEvaluateConv measures single-mapping evaluation throughput on a
// 7-dimensional convolution — the inner loop of every search.
func BenchmarkEvaluateConv(b *testing.B) {
	b.ReportAllocs()
	layer := workloads.ResNet50()[3] // a 3x3 layer
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	rng := rand.New(rand.NewSource(1))
	m := sp.Sample(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Evaluate(m)
	}
}

// evalBenchSetup builds the compiled-vs-legacy fixture: the Eyeriss-like
// ResNet-50 3x3 layer with a structurally valid sampled mapping (the
// acceptance benchmark of the compiled-plan work).
func evalBenchSetup(b *testing.B) (*nest.Evaluator, *mapping.Mapping) {
	b.Helper()
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		m := sp.Sample(rng)
		if ev.Evaluate(m).Valid {
			return ev, m
		}
	}
	b.Fatal("no valid mapping sampled")
	return nil, nil
}

// BenchmarkEvaluateLegacy measures the original string-keyed cost model —
// the before side of the compiled-plan comparison.
func BenchmarkEvaluateLegacy(b *testing.B) {
	b.ReportAllocs()
	ev, m := evalBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateLegacy(m)
	}
}

// BenchmarkEvaluateCompiled measures the compiled plan's allocation-free
// kernel on a per-worker scratch — the steady-state inner loop of every
// search. Acceptance: >= 2x lower ns/op and >= 10x lower allocs/op than
// BenchmarkEvaluateLegacy.
func BenchmarkEvaluateCompiled(b *testing.B) {
	b.ReportAllocs()
	ev, m := evalBenchSetup(b)
	plan := ev.Plan()
	scratch := plan.NewScratch()
	dm, err := m.Dense(ev.Work, ev.Arch, ev.Slots)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.EvaluateInto(dm, scratch)
	}
}

// BenchmarkFusedEvaluate measures the fused-pair evaluation pipeline on a
// ResNet-50 bottleneck edge (1x1 reduce feeding the 3x3): two compiled
// per-layer evaluations plus the fusion validity checks and the DRAM-elision
// tail. The per-layer kernel underneath is the same EvaluateCompiled path the
// bench gate holds to zero allocations; the fused wrapper adds two detached
// result Costs per call.
func BenchmarkFusedEvaluate(b *testing.B) {
	b.ReportAllocs()
	net := workloads.ResNet50Network()
	bind, err := net.Bind(0) // res2a_branch2a -> res2x_branch2b
	if err != nil {
		b.Fatal(err)
	}
	a := arch.EyerissLike(14, 12, 128)
	fe, err := nest.NewFusedEvaluator(bind, a, 1)
	if err != nil {
		b.Fatal(err)
	}
	csp := mapspace.New(bind.Cons.Work, a, mapspace.RubyS, mapspace.Constraints{})
	rng := rand.New(rand.NewSource(2))
	var pm, cm *mapping.Mapping
	for i := 0; i < 50000 && pm == nil; i++ {
		c := csp.Sample(rng)
		if !fe.Consumer().Evaluate(c).Valid {
			continue
		}
		ft, err := mapspace.FuseTileOf(bind, a, c, 1)
		if err != nil {
			b.Fatal(err)
		}
		psp := mapspace.New(bind.Prod.Work, a, mapspace.RubyS, mapspace.Constraints{
			FuseTile: ft, FuseLevel: 1})
		p := psp.Sample(rng)
		if fe.Evaluate(p, c).Valid {
			pm, cm = p, c
		}
	}
	if pm == nil {
		b.Fatal("no fused-valid pair sampled")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fe.Evaluate(pm, cm)
	}
}

// BenchmarkSampleEvaluatePipeline measures the full steady-state search
// inner loop — in-place sampling, lowering, and compiled evaluation with a
// reused mapping and scratch.
func BenchmarkSampleEvaluatePipeline(b *testing.B) {
	b.ReportAllocs()
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	plan := ev.Plan()
	scratch := plan.NewScratch()
	smp := sp.NewSampler()
	rng := rand.New(rand.NewSource(1))
	m := &mapping.Mapping{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.SampleInto(rng, m)
		plan.EvaluateMappingInto(m, scratch)
	}
}

// BenchmarkSampleRubyS measures steady-state mapping-generation throughput
// for the Ruby-S mapspace: a worker-owned Sampler refilling one reused
// mapping, allocation-free (the production search inner loop; the
// allocating convenience Sample entry is what one-shot callers use).
func BenchmarkSampleRubyS(b *testing.B) {
	benchSampleInto(b, mapspace.RubyS)
}

// BenchmarkSamplePFM measures steady-state mapping generation for the
// perfect baseline, allocation-free as above.
func BenchmarkSamplePFM(b *testing.B) {
	benchSampleInto(b, mapspace.PFM)
}

func benchSampleInto(b *testing.B, kind mapspace.Kind) {
	b.Helper()
	b.ReportAllocs()
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	sp := mapspace.New(layer.Work, a, kind, mapspace.EyerissRowStationary(layer.Work))
	smp := sp.NewSampler()
	rng := rand.New(rand.NewSource(1))
	m := &mapping.Mapping{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.SampleInto(rng, m)
	}
}

// benchNeighborDelta measures one incremental local-search neighbor step at
// steady state: apply a pre-drawn Move to the incumbent, score it with the
// delta kernel, reject and undo. The pool holds only valid proposals —
// invalid neighbors short-circuit in the validity checks and allocate their
// diagnostic Reason string, so they are neither the steady-state cost nor
// the allocation budget this family pins. Proposal drawing itself is
// measured by the sampler benchmarks.
func benchNeighborDelta(b *testing.B, pick func(mu *mapspace.Mutator, rng *rand.Rand) *mapspace.Move) {
	b.Helper()
	b.ReportAllocs()
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	rng := rand.New(rand.NewSource(1))
	var m *mapping.Mapping
	for i := 0; i < 10000 && m == nil; i++ {
		if s := sp.Sample(rng); ev.Evaluate(s).Valid {
			m = s
		}
	}
	if m == nil {
		b.Fatal("no valid mapping sampled")
	}
	plan := ev.Plan()
	dm, err := m.Dense(sp.Work, sp.Arch, sp.Slots())
	if err != nil {
		b.Fatal(err)
	}
	de := plan.NewDeltaEval()
	if c := de.Seed(dm); !c.Valid {
		b.Fatalf("seed invalid: %s", c.Reason)
	}
	// A fixed pool of pre-drawn valid moves, replayed round-robin (each is
	// applied, scored, rejected and undone in place). One mutator per move:
	// a mutator's proposal storage is reused across its Propose calls.
	moves := make([]*mapspace.Move, 16)
	for i := range moves {
		mu := sp.NewMutator()
		for {
			mv := pick(mu, rng)
			mv.Apply(m)
			c := plan.EvaluateDelta(de, mv.Delta())
			de.Reject()
			mv.Undo(m)
			if c.Valid {
				moves[i] = mv
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mv := moves[i%len(moves)]
		mv.Apply(m)
		plan.EvaluateDelta(de, mv.Delta())
		de.Reject()
		mv.Undo(m)
	}
}

// BenchmarkNeighborDelta is the headline neighbor re-evaluation: a
// loop-order (perm) move at a uniformly random level — the canonical cheap
// local-search neighbor, which the delta kernel re-scores by rebuilding only
// the stationarity walks that descend past the changed level.
func BenchmarkNeighborDelta(b *testing.B) {
	benchNeighborDelta(b, func(mu *mapspace.Mutator, rng *rand.Rand) *mapspace.Move {
		return mu.ProposePerm(rng, rng.Intn(len(mu.Space().Arch.Levels)))
	})
}

// BenchmarkNeighborDeltaChain re-scores a tiling-chain resample — a
// near-global perturbation (every stationarity walk multiplies the moved
// dimension's trip counts), so it approaches full-evaluation cost and bounds
// the delta kernel's worst case.
func BenchmarkNeighborDeltaChain(b *testing.B) {
	benchNeighborDelta(b, func(mu *mapspace.Mutator, rng *rand.Rand) *mapspace.Move {
		return mu.ProposeChainID(rng, rng.Intn(mu.NumDims()))
	})
}

// BenchmarkNeighborDeltaMixed replays Mutator.Propose's searcher
// distribution (1/4 perm, 3/4 chain here), the cost a hill-climbing step
// actually pays per proposal.
func BenchmarkNeighborDeltaMixed(b *testing.B) {
	benchNeighborDelta(b, func(mu *mapspace.Mutator, rng *rand.Rand) *mapspace.Move {
		return mu.Propose(rng)
	})
}

// BenchmarkChainCount4096 measures the Table I counting recursion at the
// largest size.
func BenchmarkChainCount4096(b *testing.B) {
	b.ReportAllocs()
	a := arch.ToyLinear(9, 512)
	w := workloads.Rank1(4096)
	sp := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.ChainCount("X")
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationMulticast quantifies the multicast network model: the
// same search with and without multicast support. The reported metric is the
// EDP ratio no-multicast / multicast (> 1 expected: multicast saves parent
// reads).
func BenchmarkAblationMulticast(b *testing.B) {
	b.ReportAllocs()
	layer := workloads.ResNet50()[3]
	run := func(mcast bool) float64 {
		a := arch.EyerissLike(14, 12, 128)
		a.Levels[1].Fanout.Multicast = mcast
		ev := nest.MustEvaluator(layer.Work, a)
		sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
		r := search.Random(context.Background(), sp, engine.New(ev), search.Options{Seed: 1, Threads: 4, MaxEvaluations: 5000})
		return r.BestCost.EDP
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = run(false) / run(true)
	}
	b.ReportMetric(ratio, "edp_ratio_nomcast/mcast")
}

// BenchmarkAblationSpatialCap quantifies Ruby-S's fanout-cap pruning: the
// Table I-style chain count with and without the cap of 9. The reported
// metric is the expansion factor removing the cap causes.
func BenchmarkAblationSpatialCap(b *testing.B) {
	b.ReportAllocs()
	w := workloads.Rank1(1000)
	capped := arch.ToyLinear(9, 512)
	var expansion float64
	for i := 0; i < b.N; i++ {
		withCap := mapspace.New(w, capped, mapspace.RubyS, mapspace.Constraints{}).ChainCount("X")
		// Ruby-T has no spatial relaxation to cap; compare against the full
		// Ruby space as the uncapped upper bound.
		unbounded := mapspace.New(w, capped, mapspace.Ruby, mapspace.Constraints{}).ChainCount("X")
		expansion = float64(unbounded) / float64(withCap)
	}
	b.ReportMetric(expansion, "uncapped/capped")
}

// BenchmarkAblationMixtureSampler quantifies the imperfect-slot mixture
// proposal: best EDP found on a misaligned pointwise layer with the
// production sampler, reported as improvement over PFM at the same budget.
func BenchmarkAblationMixtureSampler(b *testing.B) {
	b.ReportAllocs()
	var layer workloads.Layer
	for _, l := range workloads.ResNet50() {
		if l.Name == "res4x_branch2c" {
			layer = l
		}
	}
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	cons := mapspace.EyerissRowStationary(layer.Work)
	var imp float64
	for i := 0; i < b.N; i++ {
		pfm := search.Random(context.Background(), mapspace.New(layer.Work, a, mapspace.PFM, cons), engine.New(ev),
			search.Options{Seed: 1, Threads: 4, MaxEvaluations: 8000})
		rs := search.Random(context.Background(), mapspace.New(layer.Work, a, mapspace.RubyS, cons), engine.New(ev),
			search.Options{Seed: 1, Threads: 4, MaxEvaluations: 8000})
		imp = 100 * (pfm.BestCost.EDP - rs.BestCost.EDP) / pfm.BestCost.EDP
	}
	b.ReportMetric(imp, "edp_improvement_%")
}

// BenchmarkSimulatorRun measures the execution-driven reference simulator on
// a ~4000-step nest.
func BenchmarkSimulatorRun(b *testing.B) {
	b.ReportAllocs()
	w := workloads.Rank1(4000)
	a := arch.ToyGLB(8, 4096)
	s, err := sim.New(w, a, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{4, 125, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeuristicConstruct measures the one-shot constructive mapper on a
// ResNet pointwise layer.
func BenchmarkHeuristicConstruct(b *testing.B) {
	b.ReportAllocs()
	layer := workloads.ResNet50()[14] // res4x_branch2c
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	cons := mapspace.EyerissRowStationary(layer.Work)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := heuristic.Construct(ev, mapspace.RubyS, cons); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneticSearch measures the GA on the toy problem.
func BenchmarkGeneticSearch(b *testing.B) {
	b.ReportAllocs()
	w := workloads.Rank1(100)
	a := arch.ToyGLB(6, 512)
	ev := nest.MustEvaluator(w, a)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{FixedPerms: true})
	for i := 0; i < b.N; i++ {
		search.Genetic(sp, ev, search.GeneticOptions{Seed: int64(i), Population: 32, Generations: 10})
	}
}

// BenchmarkAnnealSearch measures simulated annealing on the toy problem.
func BenchmarkAnnealSearch(b *testing.B) {
	b.ReportAllocs()
	w := workloads.Rank1(100)
	a := arch.ToyGLB(6, 512)
	ev := nest.MustEvaluator(w, a)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{FixedPerms: true})
	for i := 0; i < b.N; i++ {
		search.Anneal(sp, ev, search.AnnealOptions{Seed: int64(i), Steps: 1000, Warmup: 50})
	}
}

// BenchmarkAttribute measures one cost-attribution refill from a seeded
// delta-evaluation session — the feedback signal the model-guided searcher
// ranks its moves by. It replays the session's committed contribution
// records into a preallocated Breakdown, so the gate holds it to zero
// allocations alongside the evaluation kernels.
func BenchmarkAttribute(b *testing.B) {
	b.ReportAllocs()
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	rng := rand.New(rand.NewSource(1))
	var m *mapping.Mapping
	for i := 0; i < 10000 && m == nil; i++ {
		if s := sp.Sample(rng); ev.Evaluate(s).Valid {
			m = s
		}
	}
	if m == nil {
		b.Fatal("no valid mapping sampled")
	}
	plan := ev.Plan()
	dm, err := m.Dense(sp.Work, sp.Arch, sp.Slots())
	if err != nil {
		b.Fatal(err)
	}
	de := plan.NewDeltaEval()
	if c := de.Seed(dm); !c.Valid {
		b.Fatalf("seed invalid: %s", c.Reason)
	}
	bd := plan.NewBreakdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Attribute(de, bd)
	}
}

// BenchmarkGuidedConverge runs the model-guided mapper end to end on a
// pinned matmul/Eyeriss space and reports, besides wall time, how many
// evaluations it needed to get within 1% of the best mapping it eventually
// found. The count is deterministic for a fixed seed, so `make bench-gate`
// treats a >20% growth in convergence_evals as a CI failure.
func BenchmarkGuidedConverge(b *testing.B) {
	b.ReportAllocs()
	w := workload.MustMatmul("mm", 8, 12, 18)
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(w, a)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{FixedPerms: true})
	var conv float64
	for i := 0; i < b.N; i++ {
		res := search.Guided(context.Background(), sp, engine.New(ev),
			search.Options{Seed: 1, MaxEvaluations: 5000})
		if res.Best == nil {
			b.Fatal("guided found no valid mapping")
		}
		conv = float64(res.Evaluated)
		for _, tp := range res.Trace {
			if tp.Value <= res.BestCost.EDP*1.01 {
				conv = float64(tp.Evals)
				break
			}
		}
	}
	b.ReportMetric(conv, "convergence_evals")
}
