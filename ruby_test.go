package ruby

import (
	"context"

	"strings"
	"testing"
)

// TestFacadeEndToEnd drives the README's library snippet through the public
// API: build a workload and architecture, search a mapspace, render the
// winning loop nest.
func TestFacadeEndToEnd(t *testing.T) {
	w := MustConv2D(Conv2DParams{N: 1, M: 64, C: 64, P: 56, Q: 56, R: 3, S: 3})
	a := EyerissLike(14, 12, 128)
	ev := MustEvaluator(w, a)
	sp := NewSpace(w, a, RubyS, EyerissRowStationary(w))
	res := Search(context.Background(), sp, NewEngine(ev), SearchOptions{Seed: 1, Threads: 4, MaxEvaluations: 8000})
	if res.Best == nil {
		t.Fatal("no valid mapping")
	}
	if !res.BestCost.Valid || res.BestCost.EDP <= 0 {
		t.Fatalf("bad cost: %+v", res.BestCost)
	}
	nest := res.Best.Render(w, a)
	for _, frag := range []string{"--- DRAM ---", "--- GLB ---", "--- PE ---", "mac()"} {
		if !strings.Contains(nest, frag) {
			t.Errorf("rendered nest missing %q:\n%s", frag, nest)
		}
	}
}

func TestFacadeToyStory(t *testing.T) {
	w := MustVector1D("d100", 100)
	a := ToyGLB(6, 512)
	ev := MustEvaluator(w, a)

	pfm := SearchExhaustive(context.Background(), NewSpace(w, a, PFM, Constraints{FixedPerms: true}), NewEngine(ev), SearchOptions{}, 0)
	rs := SearchExhaustive(context.Background(), NewSpace(w, a, RubyS, Constraints{FixedPerms: true}), NewEngine(ev), SearchOptions{}, 0)
	if pfm.BestCost.Cycles != 20 || rs.BestCost.Cycles != 17 {
		t.Errorf("cycles = %f / %f, want 20 / 17", pfm.BestCost.Cycles, rs.BestCost.Cycles)
	}
}

func TestFacadeSuites(t *testing.T) {
	if len(ResNet50()) != 22 {
		t.Error("ResNet50 layer count")
	}
	if len(DeepBench()) < 10 {
		t.Error("DeepBench size")
	}
	if AlexNetConv2().Bound("Q") != 27 {
		t.Error("AlexNet conv2 shape")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(ExperimentNames()) != 14 {
		t.Errorf("experiments = %d, want 14 (every table and figure)", len(ExperimentNames()))
	}
	rep, err := RunExperiment(context.Background(), "table1", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "Table I") {
		t.Error("table1 report wrong")
	}
}

func TestFacadeSweepTypes(t *testing.T) {
	if len(SweepStrategies()) != 3 {
		t.Error("strategies")
	}
	if len(EyerissConfigs()) < 8 {
		t.Error("configs")
	}
	pts := ParetoFrontier([]ParetoPoint{{X: 1, Y: 2}, {X: 2, Y: 1}, {X: 2, Y: 3}})
	if len(pts) != 2 {
		t.Errorf("frontier = %d points", len(pts))
	}
}

func TestFacadePadding(t *testing.T) {
	w := MustVector1D("d127", 127)
	p, err := PadWorkload(w, map[string]int{"X": 16})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound("X") != 128 {
		t.Errorf("padded = %d", p.Bound("X"))
	}
}

func TestFacadeHillClimb(t *testing.T) {
	w := MustMatmul("mm", 100, 100, 1)
	a := ToyLinear(16, 2048)
	ev := MustEvaluator(w, a)
	sp := NewSpace(w, a, RubyS, Constraints{})
	res := SearchHillClimb(context.Background(), sp, NewEngine(ev), SearchOptions{Seed: 1, Warmup: 100, Patience: 100})
	if res.Best == nil {
		t.Fatal("hill climb found nothing")
	}
}
