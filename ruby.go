// Package ruby is a from-scratch reproduction of "Ruby: Improving Hardware
// Efficiency for Tensor Algebra Accelerators Through Imperfect Factorization"
// (ISPASS 2022): a Timeloop-style mapping-exploration stack for tensor
// accelerators whose mapspaces admit imperfect (remainder-bearing)
// factorization.
//
// The package is a facade over the internal packages; typical use is
//
//	w := ruby.MustConv2D(ruby.Conv2DParams{N: 1, M: 64, C: 64, P: 56, Q: 56, R: 3, S: 3})
//	a := ruby.EyerissLike(14, 12, 128)
//	ev := ruby.MustEvaluator(w, a)
//	sp := ruby.NewSpace(w, a, ruby.RubyS, ruby.EyerissRowStationary(w))
//	res := ruby.Search(ctx, sp, ruby.NewEngine(ev), ruby.SearchOptions{Seed: 1})
//	fmt.Println(res.BestCost.EDP, res.Best.Render(w, a))
//
// Every search entry point is context-first: pass context.Background() when
// cancellation is not needed. The engine argument configures the evaluation
// pipeline (cache, metrics, parallelism); NewEngine gives a transparent
// pass-through.
//
// Mapspace kinds: PFM (perfect factorization, the Timeloop baseline), Ruby
// (imperfect everywhere), RubyS (imperfect only at spatial levels — the
// paper's recommended variant), and RubyT (imperfect only at temporal
// levels). Experiment runners regenerating every table and figure of the
// paper live behind RunExperiment.
package ruby

import (
	"ruby/internal/arch"
	"ruby/internal/checkpoint"
	"ruby/internal/config"
	"ruby/internal/dist"
	"ruby/internal/engine"
	"ruby/internal/exp"
	"ruby/internal/heuristic"
	"ruby/internal/library"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/obs"
	"ruby/internal/search"
	"ruby/internal/sim"
	"ruby/internal/stats"
	"ruby/internal/sweep"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// Workload modeling.
type (
	// Workload is a tensor operation: an iteration space plus operand
	// tensors with projections.
	Workload = workload.Workload
	// Conv2DParams specifies a convolution layer in the paper's 7-loop form.
	Conv2DParams = workload.Conv2DParams
	// Tensor is one operand of a workload.
	Tensor = workload.Tensor
	// Dim is one loop of the iteration space.
	Dim = workload.Dim
	// Role classifies operands (Input, Weight, Output).
	Role = workload.Role
)

// Operand roles.
const (
	Input  = workload.Input
	Weight = workload.Weight
	Output = workload.Output
)

// Workload builders.
var (
	Conv2D       = workload.Conv2D
	MustConv2D   = workload.MustConv2D
	Matmul       = workload.Matmul
	MustMatmul   = workload.MustMatmul
	Dense        = workload.Dense
	Vector1D     = workload.Vector1D
	MustVector1D = workload.MustVector1D
	// Conv2DFromInput infers output dimensions from input geometry,
	// filter, stride and padding.
	Conv2DFromInput = workload.Conv2DFromInput
	// ParseEinsum builds a workload from an extended-Einsum expression
	// (enables depthwise convolutions and other exotic projections).
	ParseEinsum     = workload.ParseEinsum
	MustParseEinsum = workload.MustParseEinsum
)

// Architecture modeling.
type (
	// Arch is an accelerator description: DRAM, on-chip levels, fanouts.
	Arch = arch.Arch
	// Level is one storage level of an Arch.
	Level = arch.Level
	// Network is the spatial interconnect below a level.
	Network = arch.Network
)

// Architecture presets from the paper.
var (
	// EyerissLike builds the baseline: EyerissLike(14, 12, 128).
	EyerissLike = arch.EyerissLike
	// SimbaLike builds the Simba-like PE cluster: SimbaLike(15, 4, 4).
	SimbaLike = arch.SimbaLike
	// ToyLinear builds the Section III linear-array toy architecture.
	ToyLinear = arch.ToyLinear
	// ToyGLB builds the Section II-D illustration architecture.
	ToyGLB = arch.ToyGLB
	// TPULike builds a TPU-v1-style systolic extension preset.
	TPULike = arch.TPULike
	// EyerissV2Like builds the hierarchical four-level extension preset.
	EyerissV2Like = arch.EyerissV2Like
)

// Mappings and cost modeling.
type (
	// Mapping is one allocation of a workload onto an architecture.
	Mapping = mapping.Mapping
	// Cost is the evaluation result of a mapping (validity, cycles, energy,
	// EDP, per-level access counts).
	Cost = nest.Cost
	// Evaluator is the analytical loop-nest cost model.
	Evaluator = nest.Evaluator
)

var (
	// NewEvaluator builds a cost model for one (workload, architecture)
	// pair.
	NewEvaluator = nest.NewEvaluator
	// MustEvaluator is NewEvaluator, panicking on error.
	MustEvaluator = nest.MustEvaluator
	// UniformMapping places the whole iteration space at one level's
	// temporal loops — the canonical starting mapping.
	UniformMapping = mapping.Uniform
	// NewSimulator builds the execution-driven reference simulator that
	// validates the analytical model on small workloads.
	NewSimulator = sim.New
)

// Simulation.
type (
	// Simulator literally executes a mapping's loop nest (small workloads
	// only), counting cycles and tile-fill events.
	Simulator = sim.Simulator
	// SimOptions bounds a simulation.
	SimOptions = sim.Options
	// SimResult is a simulation outcome.
	SimResult = sim.Result
	// LinkStats is the model's per-tensor inter-level transfer record.
	LinkStats = nest.LinkStats
)

// Mapspaces.
type (
	// Space is a mapspace: the candidate mappings of a workload on an
	// architecture under one factorization discipline.
	Space = mapspace.Space
	// SpaceKind selects the factorization discipline.
	SpaceKind = mapspace.Kind
	// Constraints restricts a mapspace (dataflow-style spatial dimension
	// allowlists, fixed loop orders).
	Constraints = mapspace.Constraints
)

// Mapspace kinds.
const (
	PFM   = mapspace.PFM
	Ruby  = mapspace.Ruby
	RubyS = mapspace.RubyS
	RubyT = mapspace.RubyT
)

var (
	// NewSpace builds a mapspace.
	NewSpace = mapspace.New
	// EyerissRowStationary returns the row-stationary constraint preset of
	// the Eyeriss-like baseline.
	EyerissRowStationary = mapspace.EyerissRowStationary
	// SimbaDataflow returns the Simba-like constraint preset.
	SimbaDataflow = mapspace.SimbaDataflow
	// SystolicDataflow returns the TPU-like constraint preset.
	SystolicDataflow = mapspace.SystolicDataflow
	// PadWorkload pads dimensions to array-size multiples (the Section
	// III-B baseline strategy).
	PadWorkload = mapspace.PadWorkload
)

// Search.
type (
	// SearchOptions configures the random-sampling search.
	SearchOptions = search.Options
	// SearchResult is a search outcome (best mapping, cost, trace).
	SearchResult = search.Result
	// GeneticOptions configures the genetic-algorithm searcher.
	GeneticOptions = search.GeneticOptions
	// Objective selects the minimized metric.
	Objective = search.Objective
	// AnnealOptions configures the simulated-annealing searcher.
	AnnealOptions = search.AnnealOptions
)

// Evaluation engine: the pipeline behind every searcher, adding context
// cancellation, a memo cache keyed by canonical mapping signatures, metrics
// hooks, and parallel batch evaluation.
type (
	// Engine is the evaluation pipeline around an Evaluator.
	Engine = engine.Engine
	// EngineConfig configures an Engine (cache size, metrics hook, workers).
	EngineConfig = engine.Config
	// EngineMetrics receives pipeline events (evaluations, improvements,
	// search completions).
	EngineMetrics = engine.Metrics
	// EngineCounters is the default atomic Metrics implementation with
	// JSON/expvar export.
	EngineCounters = engine.Counters
	// EngineSnapshot is a point-in-time copy of EngineCounters.
	EngineSnapshot = engine.Snapshot
)

var (
	// NewEngine wraps an Evaluator in a pass-through pipeline (no cache,
	// no metrics); use EngineConfig.New for a configured one.
	NewEngine = engine.New
)

// Observability: opt-in tracing and metrics (see docs/API.md).
type (
	// TraceRecorder collects hierarchical spans (suite -> layer -> search ->
	// eval-batch) into a fixed-capacity ring buffer and writes Chrome-trace
	// JSON.
	TraceRecorder = obs.Recorder
	// Instruments bundles the pipeline counters with latency/EDP histograms
	// and slow-event logging; it implements EngineMetrics.
	Instruments = engine.Instruments
	// MetricsRegistry renders registered metrics in Prometheus text format.
	MetricsRegistry = obs.Registry
)

var (
	// NewTraceRecorder builds a span recorder (capacity <= 0 selects the
	// default of 4096 spans).
	NewTraceRecorder = obs.NewRecorder
	// WithTraceRecorder attaches a recorder to a context; searches run under
	// that context record spans into it.
	WithTraceRecorder = obs.WithRecorder
	// NewInstruments builds the histogram-backed Metrics implementation.
	NewInstruments = engine.NewInstruments
	// NewMetricsRegistry builds an empty metric registry; register an
	// Instruments via its Register method.
	NewMetricsRegistry = obs.NewRegistry
)

// Search objectives.
const (
	// ObjectiveEDP minimizes energy x delay (the paper's default).
	ObjectiveEDP = search.ObjectiveEDP
	// ObjectiveEnergy minimizes total energy.
	ObjectiveEnergy = search.ObjectiveEnergy
	// ObjectiveDelay minimizes cycles (the paper's Section IV-D variant).
	ObjectiveDelay = search.ObjectiveDelay
)

var (
	// Search runs Timeloop-style parallel random-sampling search through the
	// evaluation pipeline, honoring ctx cancellation.
	Search = search.Random
	// SearchExhaustive evaluates an entire (small) mapspace with parallel
	// batch evaluation and a configurable objective.
	SearchExhaustive = search.Exhaustive
	// SearchHillClimb runs the greedy local-search extension (warm-up and
	// patience come from SearchOptions.Warmup/Patience).
	SearchHillClimb = search.HillClimb
	// SearchGuided runs the model-guided greedy mapper: cost-attribution
	// ranked descent that converges in thousands of evaluations (see
	// docs/MODEL.md).
	SearchGuided = search.Guided
	// SearchRun dispatches to a searcher by algorithm name ("random",
	// "guided", "hillclimb", "anneal", "genetic", "portfolio",
	// "exhaustive"; "" means random).
	SearchRun = search.Run
	// SearchGenetic runs the GAMMA-style genetic-algorithm extension.
	SearchGenetic = search.Genetic
	// ConstructMapping builds one mapping deterministically with the
	// COSA-style constructive heuristic (no search).
	ConstructMapping = heuristic.Construct
	// SearchAnneal runs the simulated-annealing extension.
	SearchAnneal = search.Anneal
	// SearchPortfolio splits a budget across all searchers and returns the
	// overall best.
	SearchPortfolio = search.Portfolio
	// SearchParetoFront samples the mapspace and returns the energy-delay
	// non-dominated mappings.
	SearchParetoFront = search.ParetoFront
)

// Checkpointing: crash-safe search orchestration (see docs/ARCHITECTURE.md).
// The resumable searchers expose Step/Snapshot/Restore; RunCheckpointed
// drives one with periodic snapshots, and a killed run resumed from its file
// finishes with bit-identical results.
type (
	// Searcher is a stepwise search whose full state snapshots and restores.
	Searcher = search.Searcher
	// CheckpointConfig sets the snapshot path and interval for
	// RunCheckpointed.
	CheckpointConfig = search.CheckpointConfig
	// SearchState is the serialized state of one resumable search.
	SearchState = checkpoint.SearchState
	// CheckpointRNG is the serializable random generator resumable searches
	// draw from (xoshiro256**, state round-trips through JSON exactly).
	CheckpointRNG = checkpoint.RNG
	// SuiteCheckpoint records completed per-layer suite searches, keyed by
	// their full search configuration; resumed suite runs skip them.
	SuiteCheckpoint = sweep.SuiteCheckpoint
)

var (
	// NewRandomSearcher builds the resumable random-sampling searcher.
	NewRandomSearcher = search.NewRandom
	// NewHillClimbSearcher builds the resumable hill-climbing searcher.
	NewHillClimbSearcher = search.NewHillClimb
	// NewGuidedSearcher builds the resumable model-guided searcher.
	NewGuidedSearcher = search.NewGuided
	// NewExhaustiveSearcher builds the resumable exhaustive scanner.
	NewExhaustiveSearcher = search.NewExhaustive
	// RunCheckpointed drives a Searcher to completion with periodic
	// crash-safe snapshots and a final snapshot on interruption.
	RunCheckpointed = search.RunCheckpointed
	// RestoreSearch loads a snapshot file into a fresh Searcher; a missing
	// file is a fresh start, not an error.
	RestoreSearch = search.RestoreFromFile
	// OpenSuiteCheckpoint opens (or creates) a suite checkpoint file; pass
	// it via SuiteOptions.Checkpoint.
	OpenSuiteCheckpoint = sweep.OpenSuiteCheckpoint
	// SaveCheckpoint / LoadCheckpoint are the underlying atomic versioned
	// snapshot codec (temp file + rename; schema-, version- and
	// kind-checked).
	SaveCheckpoint = checkpoint.Save
	LoadCheckpoint = checkpoint.Load
)

// Distributed search: one search partitioned into disjoint shards and
// coordinated across a fleet of rubyserve workers (cmd/rubycoord drives
// this; see docs/DISTRIBUTED.md). The merged result is bit-identical to a
// single-node execution of the same plan — RunPlanLocal is that reference —
// regardless of worker count, scheduling or worker loss.
type (
	// DistSpec is the problem and base search configuration shipped to
	// every worker (raw /v1 JSON fragments).
	DistSpec = dist.JobSpec
	// ShardPlan is a deterministic partition of one search into shards.
	ShardPlan = dist.Plan
	// Shard is one unit of distributable work within a plan.
	Shard = dist.Shard
	// ChainRange is a half-open range of leading-dimension factor chains
	// (how exhaustive plans restrict each shard's enumeration).
	ChainRange = mapspace.ChainRange
	// Coordinator tracks shard leases, checkpoints and results, and merges
	// per-shard incumbents in shard-index order.
	Coordinator = dist.Coordinator
	// Fleet drives a Coordinator against rubyserve workers over /v1/jobs.
	Fleet = dist.Fleet
	// ShardOutcome is one shard's final report (incumbent plus counters).
	ShardOutcome = dist.ShardResult
	// DistMerged is the fleet-level merged outcome.
	DistMerged = dist.Merged
)

var (
	// BuildShardPlan partitions a search over a space into shards: by
	// leading factor-chain prefix for exhaustive scans, by RNG substream
	// (with a split evaluation budget) for the stochastic searchers.
	BuildShardPlan = dist.BuildPlan
	// NewCoordinator builds a coordinator over a plan.
	NewCoordinator = dist.NewCoordinator
	// RestoreCoordinator rebuilds a coordinator from persisted plan state;
	// finished shards keep their results, everything else re-queues.
	RestoreCoordinator = dist.RestoreCoordinator
	// LoadCoordinatorState reads a persisted coordination state file
	// (checkpoint kind "shards").
	LoadCoordinatorState = dist.LoadState
	// RunPlanLocal executes a plan's shards sequentially in-process — the
	// single-node reference a distributed run must reproduce bit-for-bit.
	RunPlanLocal = dist.RunLocal
)

// Configuration files (JSON; see configs/ for examples).
var (
	// LoadArch reads an architecture description from a JSON file.
	LoadArch = config.LoadArch
	// ParseArch builds an architecture from JSON bytes.
	ParseArch = config.ParseArch
	// ParseWorkload builds a workload from JSON bytes.
	ParseWorkload = config.ParseWorkload
	// LoadWorkload reads a workload from a JSON file.
	LoadWorkload = config.LoadWorkload
	// LoadConstraints reads mapspace constraints from a JSON file.
	LoadConstraints = config.LoadConstraints
	// DecodeMapping parses a mapping saved by Mapping.Encode and validates
	// it against a workload and slot list.
	DecodeMapping = mapping.Decode
	// ArchSlots derives the tiling slot list of an architecture.
	ArchSlots = mapping.Slots
	// OpenLibrary opens a file-backed cache of best-known mappings.
	OpenLibrary = library.Open
	// LibraryKey derives the cache key for a mapping problem.
	LibraryKey = library.Key
)

// MappingLibrary is the file-backed cache of best-known mappings.
type MappingLibrary = library.Store

// Benchmark suites and network graphs.
type (
	// SuiteLayer is one benchmark layer with metadata.
	SuiteLayer = workloads.Layer
	// WorkloadNetwork is a layer graph: workloads as nodes,
	// producer->consumer tensor edges with dimension correspondences
	// (arch.Network, the spatial interconnect, already owns the bare name).
	WorkloadNetwork = workload.Network
	// NetworkNode is one layer of a Network.
	NetworkNode = workload.Node
	// NetworkEdge is one producer->consumer correspondence of a Network.
	NetworkEdge = workload.Edge
)

var (
	// ResNet50 returns the unique ResNet-50 layers with repeat counts.
	ResNet50 = workloads.ResNet50
	// ResNet50Network returns ResNet-50 as a network graph whose bottleneck
	// chains carry fusable producer->consumer edges.
	ResNet50Network = workloads.ResNet50Network
	// DeepBench returns the DeepBench selection.
	DeepBench = workloads.DeepBench
	// DeepBenchStacks returns the DeepBench back-to-back stacks (GEMM chain
	// and 3x3 vision stack) as a network graph.
	DeepBenchStacks = workloads.DeepBenchStacks
	// AlexNetConv2 returns layer 2 of AlexNet (the Fig. 9 study).
	AlexNetConv2 = workloads.AlexNetConv2
	// VGG16 returns the VGG-16 extension suite (a PFM-friendly control).
	VGG16 = workloads.VGG16
	// TransformerEncoder returns one encoder layer's GEMMs
	// (TransformerEncoder(384, 768, 12) for BERT-base).
	TransformerEncoder = workloads.TransformerEncoder
	// MobileNetV2 returns the depthwise-heavy extension suite.
	MobileNetV2 = workloads.MobileNetV2
	// Suites returns every built-in workload suite by name.
	Suites = workloads.Suites
	// Networks returns every built-in suite as a network graph by name.
	Networks = workloads.Networks
	// NewNetwork builds and validates a layer graph.
	NewNetwork = workload.NewNetwork
	// NetworkFromLayers wraps a layer list in an edge-free Network.
	NetworkFromLayers = workloads.NetworkFromLayers
	// LayersOf flattens a Network back into a suite layer list.
	LayersOf = workloads.LayersOf
)

// Design-space exploration.
type (
	// Strategy is one mapping approach in the DSE sweeps (mapspace kind,
	// optionally with the padding baseline).
	Strategy = sweep.Strategy
	// ArrayConfig is one PE-array size in a sweep.
	ArrayConfig = sweep.ArrayConfig
	// DesignPoint is one swept configuration's per-strategy EDP.
	DesignPoint = sweep.DesignPoint
	// SuiteResult aggregates a suite search on one architecture.
	SuiteResult = sweep.SuiteResult
	// NetworkResult is a network search's outcome: per-layer baseline,
	// selected fused segments, and fused network totals.
	NetworkResult = sweep.NetworkResult
	// SegmentResult is one fused producer->consumer segment.
	SegmentResult = sweep.SegmentResult
	// FusedCost is the fused evaluation of one producer/consumer pair.
	FusedCost = nest.FusedCost
	// FusedEvaluator evaluates fused mappings of one network edge.
	FusedEvaluator = nest.FusedEvaluator
	// ParetoPoint is one point of an area-EDP frontier.
	ParetoPoint = stats.Point
)

// SuiteOptions bundles the knobs of a pipeline-driven suite run
// (search options, engine config, library, layer-level parallelism).
type SuiteOptions = sweep.SuiteOptions

var (
	// SweepStrategies returns the paper's three compared strategies.
	SweepStrategies = sweep.Strategies
	// EyerissConfigs returns the Section IV-E array sweep range.
	EyerissConfigs = sweep.EyerissConfigs
	// Explore sweeps array configurations over a suite (Figs. 13-14) with
	// cancellation and pipeline options.
	Explore = sweep.Explore
	// Frontier extracts one strategy's area-EDP Pareto frontier.
	Frontier = sweep.Frontier
	// RunSuite searches a network's nodes per-layer on one architecture with
	// parallel layer searches; a mapping library rides in
	// SuiteOptions.Library.
	RunSuite = sweep.RunSuite
	// RunSuiteLayers is the []Layer suite entry point RunSuite wraps.
	RunSuiteLayers = sweep.RunSuiteLayers
	// SearchNetwork searches a network with optional fusion across its
	// edges, reporting fused segments and network totals.
	SearchNetwork = sweep.SearchNetwork
	// NewFusedEvaluator builds a fused evaluator for one network edge.
	NewFusedEvaluator = nest.NewFusedEvaluator
	// SearchLayer searches one layer under one strategy through the
	// evaluation pipeline.
	SearchLayer = sweep.SearchLayer
	// ParetoFrontier computes a generic minimize-both frontier.
	ParetoFrontier = stats.ParetoFrontier
)

// Experiments.
type (
	// ExperimentConfig tunes experiment fidelity (budgets, averaging runs).
	ExperimentConfig = exp.Config
)

var (
	// RunExperiment regenerates one paper table/figure by identifier
	// ("fig7a".."fig7d", "table1", "fig8".."fig12", "fig13a/b", "fig14a/b"),
	// honoring ctx cancellation.
	RunExperiment = exp.Run
	// ExperimentNames lists the accepted identifiers.
	ExperimentNames = exp.Names
	// QuickConfig is a test/benchmark-scale experiment configuration.
	QuickConfig = exp.Quick
	// FullConfig is the paper-fidelity experiment configuration.
	FullConfig = exp.Full
)
