// Command rubylint runs the project's invariant analyzers (determinism,
// hotpath, ctxflow, atomics — see internal/analysis/lint) over the module
// and exits nonzero when any finding survives the in-source
// //ruby:allow waivers. `make lint` (part of `make check`) runs it over
// ./...; see tools/README.md for the analyzer and annotation reference.
//
// Usage:
//
//	go run ./tools/rubylint [-C dir] [-run name,name] [-json] [patterns...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ruby/internal/analysis/lint"
)

func main() {
	chdir := flag.String("C", ".", "module directory to analyze")
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fail(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadRepo(*chdir, patterns...)
	if err != nil {
		fail(err)
	}

	// Unused waivers are only meaningful over the full suite: a waiver for
	// an analyzer that is not running always looks unused.
	cfg := lint.Config{ReportUnusedWaivers: *run == ""}
	diags := lint.Run(pkgs, analyzers, cfg)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rubylint: %d finding(s) in %d package(s); fix or waive with `//ruby:allow <analyzer> -- <reason>`\n",
			len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rubylint:", err)
	os.Exit(2)
}
