// Command rubylint runs the project's invariant analyzers (determinism,
// hotpath, ctxflow, atomics, lockflow, goroutines, serialstable, apisurface
// — see internal/analysis/lint) over the module and exits nonzero when any
// finding survives the in-source //ruby:allow waivers. `make lint` (part of
// `make check`) runs it over ./...; see tools/README.md for the analyzer
// and annotation reference.
//
// Usage:
//
//	go run ./tools/rubylint [-C dir] [-run name,name] [-json|-sarif] \
//	    [-fix] [-fix-surface] [patterns...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ruby/internal/analysis/lint"
)

func main() {
	chdir := flag.String("C", ".", "module directory to analyze")
	run := flag.String("run", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	asSARIF := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for CI annotation)")
	fix := flag.Bool("fix", false, "apply machine-applicable suggested fixes, then report what remains")
	fixSurface := flag.Bool("fix-surface", false, "regenerate docs/api_surface.txt from the loaded packages and exit")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fail(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadRepo(*chdir, patterns...)
	if err != nil {
		fail(err)
	}

	if *fixSurface {
		if len(pkgs) == 0 {
			fail(fmt.Errorf("no packages loaded"))
		}
		path := filepath.Join(pkgs[0].Root, "docs", "api_surface.txt")
		if err := lint.WriteSurface(pkgs, path); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "rubylint: wrote %s\n", path)
		return
	}

	// Unused waivers are only meaningful over the full suite: a waiver for
	// an analyzer that is not running always looks unused.
	cfg := lint.Config{ReportUnusedWaivers: *run == ""}
	diags := lint.Run(pkgs, analyzers, cfg)

	if *fix {
		changed, err := lint.ApplyFixes(diags)
		if err != nil {
			fail(err)
		}
		for _, f := range changed {
			fmt.Fprintf(os.Stderr, "rubylint: fixed %s\n", f)
		}
		if len(changed) > 0 {
			// Re-run on the rewritten tree so the report reflects what is
			// actually left (and fixes that cascade are caught next run).
			pkgs, err = lint.LoadRepo(*chdir, patterns...)
			if err != nil {
				fail(err)
			}
			diags = lint.Run(pkgs, analyzers, cfg)
		}
	}

	switch {
	case *asSARIF:
		root, err := filepath.Abs(*chdir)
		if err != nil {
			root = *chdir
		}
		out, err := lint.SARIF(diags, root)
		if err != nil {
			fail(err)
		}
		fmt.Println(string(out))
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fail(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rubylint: %d finding(s) in %d package(s); fix or waive with `//ruby:allow <analyzer> -- <reason>`\n",
			len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rubylint:", err)
	os.Exit(2)
}
