// Command linkcheck verifies the repository's markdown cross-references:
// every relative link and image target in the checked .md files must exist
// on disk (anchors are stripped; external URLs are skipped). It exits
// non-zero listing each broken link, so `make docs-check` fails when a file
// rename orphans documentation.
//
// Usage:
//
//	go run ./tools/linkcheck [-root DIR] [files...]
//
// With no file arguments, every *.md under the root (skipping .git and
// testdata) is checked.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links/images: [text](target) / ![alt](target).
// Reference-style definitions ([id]: target) are rare here and not used for
// file links, so inline form is the contract.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := flag.String("root", ".", "repository root for the default file walk")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = markdownFiles(*root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(1)
		}
	}

	broken := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(1)
		}
		for _, target := range extractTargets(string(data)) {
			if !targetExists(f, target) {
				fmt.Printf("%s: broken link: %s\n", f, target)
				broken++
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

func markdownFiles(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

// extractTargets returns the link targets of doc, skipping fenced code
// blocks (command examples legitimately contain bracketed text).
func extractTargets(doc string) []string {
	var targets []string
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			targets = append(targets, m[1])
		}
	}
	return targets
}

func targetExists(from, target string) bool {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return true // external; this tool is offline by design
	}
	// Strip an anchor; a bare anchor points into the current file.
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
		if target == "" {
			return true
		}
	}
	_, err := os.Stat(filepath.Join(filepath.Dir(from), target))
	return err == nil
}
