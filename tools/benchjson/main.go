// Command benchjson converts `go test -bench` output into a JSON benchmark
// record while echoing the raw output through, so `make bench` both shows
// results and persists them for cross-PR perf comparisons:
//
//	go test -run xxx -bench Evaluate . | go run ./tools/benchjson -o BENCH_eval.json
//
// Beyond the snapshot file it can append a dated record to a JSONL history
// (-history) and act as a CI regression gate (-baseline/-gate): with a gate
// pattern, named benchmarks are compared against the baseline snapshot and
// the run fails when ns/op regresses by more than -tolerance (default 20%)
// or a benchmark that was allocation-free gains allocations. A gate spec of
// the form Name:metric instead compares the named custom b.ReportMetric
// value (e.g. BenchmarkGuidedConverge:convergence_evals) under the same
// tolerance — how the guided mapper's evals-to-convergence is held flat.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark result row.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are -1 when the benchmark did not report
	// allocations.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric values keyed by their unit string
	// (e.g. "convergence_evals"); gate specs address them as Name:unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// historyRecord is one dated run in the JSONL history file.
type historyRecord struct {
	Date    string  `json:"date"`
	Entries []Entry `json:"entries"`
}

func main() {
	out := flag.String("o", "BENCH_eval.json", "output JSON path (empty skips the snapshot)")
	history := flag.String("history", "", "JSONL path to append a dated run record to")
	baseline := flag.String("baseline", "", "baseline snapshot (JSON array of entries) to gate against")
	gate := flag.String("gate", "", "comma-separated benchmark names that must not regress vs -baseline")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression for gated benchmarks")
	flag.Parse()

	var entries []Entry
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if e, ok := parseLine(line); ok {
			entries = append(entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("benchjson: %v", err)
	}
	if len(entries) == 0 {
		fatalf("benchjson: no benchmark lines seen")
	}

	if *out != "" {
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			fatalf("benchjson: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatalf("benchjson: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d entries to %s\n", len(entries), *out)
	}

	if *history != "" {
		if err := appendHistory(*history, entries); err != nil {
			fatalf("benchjson: %v", err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: appended run record to %s\n", *history)
	}

	if *gate != "" {
		if *baseline == "" {
			fatalf("benchjson: -gate requires -baseline")
		}
		base, err := loadBaseline(*baseline)
		if err != nil {
			fatalf("benchjson: %v", err)
		}
		if failures := checkGate(entries, base, strings.Split(*gate, ","), *tolerance); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchjson: GATE FAILED:", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate passed for %s\n", *gate)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// appendHistory appends one dated JSONL record for this run.
func appendHistory(path string, entries []Entry) error {
	rec := historyRecord{Date: time.Now().UTC().Format(time.RFC3339), Entries: entries}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadBaseline reads a snapshot file written by -o and indexes it by name.
func loadBaseline(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	byName := make(map[string]Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	return byName, nil
}

// checkGate compares each gated benchmark against the baseline. A gated name
// missing from either side fails (a silently vanished benchmark must not
// pass the gate). A plain name gates ns/op regressions beyond tolerance and
// any allocation count above a previously allocation-free baseline; a
// Name:metric spec gates the named custom metric under the same tolerance
// instead, leaving wall time alone (the metric — e.g. the guided searcher's
// convergence_evals — is deterministic where the timing is not).
func checkGate(entries []Entry, base map[string]Entry, specs []string, tolerance float64) []string {
	byName := make(map[string]Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	var failures []string
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, metric := spec, ""
		if i := strings.IndexByte(spec, ':'); i >= 0 {
			name, metric = spec[:i], spec[i+1:]
		}
		cur, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not present in this run", name))
			continue
		}
		b, ok := base[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: not present in baseline", name))
			continue
		}
		if metric != "" {
			curV, curOK := cur.Extra[metric]
			baseV, baseOK := b.Extra[metric]
			if !curOK || !baseOK {
				failures = append(failures, fmt.Sprintf("%s: metric %s missing (run: %t, baseline: %t)",
					name, metric, curOK, baseOK))
				continue
			}
			if baseV > 0 && curV > baseV*(1+tolerance) {
				failures = append(failures, fmt.Sprintf("%s: %.1f %s vs baseline %.1f (>%d%% regression)",
					name, curV, metric, baseV, int(tolerance*100)))
			}
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+tolerance) {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f ns/op (>%d%% regression)",
				name, cur.NsPerOp, b.NsPerOp, int(tolerance*100)))
		}
		if b.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
			failures = append(failures, fmt.Sprintf("%s: %v allocs/op vs allocation-free baseline",
				name, cur.AllocsPerOp))
		}
	}
	return failures
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkEvaluateCompiled-8   1440686   850.8 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
			ok = true
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		case "MB/s":
			// Throughput scales with the machine; not a gateable metric.
		default:
			if e.Extra == nil {
				e.Extra = make(map[string]float64)
			}
			e.Extra[fields[i+1]] = v
		}
	}
	return e, ok
}
