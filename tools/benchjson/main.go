// Command benchjson converts `go test -bench` output into a JSON benchmark
// record while echoing the raw output through, so `make bench` both shows
// results and persists them for cross-PR perf comparisons:
//
//	go test -run xxx -bench Evaluate . | go run ./tools/benchjson -o BENCH_eval.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result row.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are -1 when the benchmark did not report
	// allocations.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	out := flag.String("o", "BENCH_eval.json", "output JSON path")
	flag.Parse()

	var entries []Entry
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if e, ok := parseLine(line); ok {
			entries = append(entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines seen; not writing", *out)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d entries to %s\n", len(entries), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkEvaluateCompiled-8   1440686   850.8 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
			ok = true
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		}
	}
	return e, ok
}
