// Command rubycoord coordinates a distributed mapspace search across a
// fleet of rubyserve workers.
//
//	# three workers on one box
//	rubyserve -addr 127.0.0.1:8731 -state /tmp/w1 &
//	rubyserve -addr 127.0.0.1:8732 -state /tmp/w2 &
//	rubyserve -addr 127.0.0.1:8733 -state /tmp/w3 &
//
//	rubycoord \
//	  -workload-file configs/alexnet_conv2.json \
//	  -arch-file configs/eyeriss_like.json \
//	  -search random -shards 12 -evals 24000 \
//	  -workers http://127.0.0.1:8731,http://127.0.0.1:8732,http://127.0.0.1:8733 \
//	  -state /tmp/coord.json
//
// The plan is built deterministically from the problem, the algorithm, the
// seed and -shards (see internal/dist.BuildPlan); the merged result is
// bit-identical to a single-node run of the same plan (-local executes that
// reference run in-process), regardless of worker count, scheduling or
// worker kills. On SIGINT/SIGTERM the coordinator persists its state to
// -state and exits; -resume continues from that file, re-running only the
// unfinished shards. docs/DISTRIBUTED.md documents the contract and
// docs/OPERATIONS.md the operational details.
//
// With -addr the coordinator additionally serves a read-only status API
// (GET /v1/shards, /v1/shards/{index}, /v1/metrics, /v1/healthz) for
// progress watching and Prometheus scrapes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ruby/internal/dist"
	"ruby/internal/obs"
	"ruby/internal/server"
)

func main() {
	var (
		wlFile   = flag.String("workload-file", "", "JSON workload file (see configs/)")
		archFile = flag.String("arch-file", "", "JSON architecture file")
		consFile = flag.String("constraints-file", "", "JSON constraints file (optional)")
		kind     = flag.String("mapspace", "ruby-s", "pfm | ruby | ruby-s | ruby-t")
		algo     = flag.String("search", "exhaustive", "sharded algorithm: exhaustive (chain plan) | random | guided | hillclimb (substream plans)")
		objFlag  = flag.String("objective", "edp", "edp | energy | delay")
		seed     = flag.Int64("seed", 1, "plan seed (per-shard substream seeds derive from it)")
		shards   = flag.Int("shards", 8, "number of shards to partition the search into")
		evals    = flag.Int64("evals", 0, "total evaluation budget, split across shards (required for substream plans; 0 = full scan, exhaustive only)")
		noImp    = flag.Int64("no-improve", 0, "per-shard consecutive-no-improvement stop (stochastic searchers; 0 = off)")
		workers  = flag.String("workers", "", "comma-separated worker base URLs, e.g. http://127.0.0.1:8731,http://127.0.0.1:8732")
		state    = flag.String("state", "", "coordinator state file; persisted every poll tick so an interrupted run can -resume (empty = in-memory only)")
		resume   = flag.Bool("resume", false, "continue from the plan state in -state (finished shards are not re-run)")
		leaseTTL = flag.Duration("lease", dist.DefaultLeaseTTL, "shard lease TTL; a worker silent for this long has its shard re-queued")
		poll     = flag.Duration("poll", 200*time.Millisecond, "fleet poll interval (doubles as the lease heartbeat period)")
		addr     = flag.String("addr", "", "serve the read-only status API (/v1/shards, /v1/metrics) on this address (empty = off)")
		local    = flag.Bool("local", false, "run the single-node reference execution in-process instead of a fleet (no workers needed)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this wall time (0 = none)")
	)
	flag.Parse()

	spec, plan, coord, err := setup(*wlFile, *archFile, *consFile, *kind, *algo, *objFlag,
		*seed, *shards, *evals, *noImp, *state, *resume, *leaseTTL)
	if err != nil {
		fatal(err)
	}
	log.Printf("rubycoord: %s plan, %d shards (algo %s, seed %d)", plan.Kind, len(plan.Shards), plan.Algo, plan.Seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *local {
		merged, err := dist.RunLocal(ctx, spec, plan)
		report(merged, err)
		return
	}

	urls := splitWorkers(*workers)
	if len(urls) == 0 {
		fatal(fmt.Errorf("no workers: pass -workers URL[,URL...] or -local"))
	}
	reg := obs.NewRegistry()
	coord.Register(reg)
	fleet := &dist.Fleet{
		Coord:        coord,
		Spec:         spec,
		Workers:      urls,
		PollInterval: *poll,
		StatePath:    *state,
	}
	fleet.RegisterWorkers(reg)

	if *addr != "" {
		srv := &http.Server{
			Addr:              *addr,
			Handler:           server.CoordinatorHandler(coord, reg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("rubycoord: status API on %s", *addr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("rubycoord: status API: %v", err)
			}
		}()
		defer srv.Close()
	}

	merged, err := fleet.Run(ctx)
	if err != nil && *state != "" {
		log.Printf("rubycoord: interrupted (%v); state saved to %s, continue with -resume", err, *state)
	}
	report(merged, err)
}

// setup resolves the problem and builds (or restores) the plan and its
// coordinator.
func setup(wlFile, archFile, consFile, kind, algo, obj string,
	seed int64, shards int, evals, noImp int64,
	state string, resume bool, leaseTTL time.Duration) (*dist.JobSpec, *dist.Plan, *dist.Coordinator, error) {

	if resume {
		if state == "" {
			return nil, nil, nil, fmt.Errorf("-resume needs -state FILE")
		}
		st, err := dist.LoadState(state)
		if err != nil {
			return nil, nil, nil, err
		}
		if st.Spec == nil {
			return nil, nil, nil, fmt.Errorf("state file %s has no embedded spec", state)
		}
		// Sanity-check the stored plan against the spec it claims to solve.
		_, sp, err := st.Spec.Resolve()
		if err != nil {
			return nil, nil, nil, err
		}
		if err := st.Plan.Validate(sp); err != nil {
			return nil, nil, nil, err
		}
		coord, err := dist.RestoreCoordinator(st, leaseTTL, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		return st.Spec, st.Plan, coord, nil
	}

	if wlFile == "" || archFile == "" {
		return nil, nil, nil, fmt.Errorf("-workload-file and -arch-file are required (or -resume)")
	}
	spec := &dist.JobSpec{Mapspace: kind, Search: algo, Objective: obj, NoImprove: noImp}
	var err error
	if spec.Workload, err = os.ReadFile(wlFile); err != nil {
		return nil, nil, nil, err
	}
	if spec.Arch, err = os.ReadFile(archFile); err != nil {
		return nil, nil, nil, err
	}
	if consFile != "" {
		if spec.Constraints, err = os.ReadFile(consFile); err != nil {
			return nil, nil, nil, err
		}
	}
	_, sp, err := spec.Resolve()
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := dist.ParseObjective(obj); err != nil {
		return nil, nil, nil, err
	}
	plan, err := dist.BuildPlan(sp, algo, seed, shards, evals)
	if err != nil {
		return nil, nil, nil, err
	}
	return spec, plan, dist.NewCoordinator(plan, leaseTTL, nil), nil
}

func splitWorkers(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

// report prints the merged outcome as indented JSON on stdout; a run that
// ended early still reports the merge-so-far before exiting nonzero.
func report(merged *dist.Merged, err error) {
	if merged != nil {
		out, _ := json.MarshalIndent(merged, "", "  ")
		fmt.Println(string(out))
	}
	if err != nil {
		fatal(err)
	}
	if merged == nil || merged.Best == nil {
		fatal(fmt.Errorf("no valid mapping found"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rubycoord:", err)
	os.Exit(1)
}
