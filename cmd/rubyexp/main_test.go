package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ruby/internal/exp"
	"ruby/internal/plot"
	"ruby/internal/stats"
)

func demoReport() *exp.Report {
	tb := &stats.Table{Headers: []string{"a", "b"}}
	tb.AddRow("x", 1.5)
	return &exp.Report{
		Name:   "demo",
		Tables: []*stats.Table{tb},
		Charts: []plot.Chart{{
			Title: "demo chart", Kind: plot.Line,
			Series: []plot.Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}},
		}},
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := writeCSVs(dir, "demo", demoReport()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a,b\n") {
		t.Errorf("csv = %q", data)
	}
}

func TestWriteSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := writeSVGs(dir, "demo", demoReport()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo_0.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "demo chart") {
		t.Errorf("svg content wrong")
	}
	// Chartless reports write nothing and do not error.
	if err := writeSVGs(dir, "empty", &exp.Report{Name: "empty"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "empty_0.svg")); !os.IsNotExist(err) {
		t.Error("chartless report wrote an SVG")
	}
}
