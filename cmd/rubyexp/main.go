// Command rubyexp regenerates the paper's tables and figures.
//
// Usage:
//
//	rubyexp -exp fig10                # one experiment, quick fidelity
//	rubyexp -exp all -full            # everything at paper fidelity
//	rubyexp -exp fig7b -runs 100      # paper-scale averaging
//
// Experiments: fig7a fig7b fig7c fig7d table1 fig8 fig9 fig10 fig11 fig12
// fig13a fig13b fig14a fig14b; extensions: ext-mobilenetv2 ext-vgg16
// ext-transformer ablations.
//
// Paper-fidelity suite experiments (fig10-fig14) take hours; with
// -checkpoint DIR each completed per-layer search is persisted, and
// re-running the same command after a crash or SIGINT resumes, skipping the
// finished layers with bit-identical results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ruby/internal/engine"
	"ruby/internal/exp"
	"ruby/internal/profile"
	"ruby/internal/sweep"
)

func main() {
	var (
		name    = flag.String("exp", "table1", "experiment id, 'all' (paper set), or 'all-ext' (extensions)")
		full    = flag.Bool("full", false, "paper-fidelity budgets (slow)")
		runs    = flag.Int("runs", 0, "override averaging runs")
		evals   = flag.Int64("evals", 0, "override max evaluations per search")
		algo    = flag.String("search", "", "override the search algorithm for suite experiments (random | guided | hillclimb | anneal | genetic | portfolio)")
		threads = flag.Int("threads", 0, "override search threads")
		seed    = flag.Int64("seed", 0, "override base RNG seed")
		csvDir  = flag.String("csv", "", "also write each experiment's tables as CSV files into this directory")
		svgDir  = flag.String("svg", "", "also render each experiment's figures as SVG files into this directory")
		cpDir   = flag.String("checkpoint", "", "directory for per-layer checkpoints of suite experiments (fig10-fig14); rerunning resumes, skipping completed searches")
		timeout = flag.Duration("timeout", 0, "wall-time budget per experiment; on expiry searches stop and report best-so-far (0 = none)")
		cacheN  = flag.Int("cache", 0, "evaluation memo-cache entries per evaluator (0 = disabled)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profile.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rubyexp: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	cfg := exp.Quick()
	if *full {
		cfg = exp.Full()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *evals > 0 {
		cfg.Opt.MaxEvaluations = *evals
	}
	if *algo != "" {
		cfg.Opt.Algo = *algo
	}
	if *threads > 0 {
		cfg.Opt.Threads = *threads
	}
	if *seed != 0 {
		cfg.Opt.Seed = *seed
	}
	if *cacheN > 0 {
		cfg.Engine = engine.Config{CacheEntries: *cacheN}
	}

	names := []string{*name}
	switch *name {
	case "all":
		names = exp.Names()
	case "all-ext":
		names = exp.ExtensionNames()
	}
	if *cpDir != "" {
		if err := os.MkdirAll(*cpDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rubyexp: %v\n", err)
			os.Exit(1)
		}
	}
	// SIGINT/SIGTERM abort the run; with -checkpoint, finished per-layer
	// searches of suite experiments are already on disk for the next run.
	base, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	for _, n := range names {
		start := time.Now()
		ctx := base
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		if *cpDir != "" {
			// One checkpoint file per experiment: layer keys already encode
			// the arch, strategy and search budget, the file split just keeps
			// them small and independently deletable.
			cp, err := sweep.OpenSuiteCheckpoint(filepath.Join(*cpDir, n+".suite.json"))
			if err != nil {
				cancel()
				fmt.Fprintf(os.Stderr, "rubyexp: %v\n", err)
				os.Exit(1)
			}
			cfg.Checkpoint = cp
		}
		rep, err := exp.Run(ctx, n, cfg)
		if err != nil {
			cancel()
			if base.Err() != nil && *cpDir != "" {
				fmt.Fprintf(os.Stderr, "rubyexp: interrupted during %s; rerun the same command to resume from %s\n", n, *cpDir)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "rubyexp: %v\n", err)
			os.Exit(1)
		}
		if ctx.Err() != nil && base.Err() == nil {
			fmt.Fprintf(os.Stderr, "rubyexp: %s hit the %v timeout; results reflect only the search budget spent\n", n, *timeout)
		}
		cancel()
		fmt.Println(strings.TrimRight(rep.String(), "\n"))
		fmt.Printf("(%s in %v)\n\n", n, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, n, rep); err != nil {
				fmt.Fprintf(os.Stderr, "rubyexp: %v\n", err)
				os.Exit(1)
			}
		}
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, n, rep); err != nil {
				fmt.Fprintf(os.Stderr, "rubyexp: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// writeSVGs renders each of an experiment's charts to <dir>/<exp>_<i>.svg.
func writeSVGs(dir, name string, rep *exp.Report) error {
	if len(rep.Charts) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range rep.Charts {
		svg, err := rep.Charts[i].SVG()
		if err != nil {
			return fmt.Errorf("chart %d of %s: %w", i, name, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.svg", name, i))
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeCSVs dumps each of an experiment's tables to <dir>/<exp>_<i>.csv.
func writeCSVs(dir, name string, rep *exp.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tb := range rep.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", name, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		tb.CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
