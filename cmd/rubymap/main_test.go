package main

import (
	"testing"

	"ruby/internal/mapspace"
	"ruby/internal/search"
)

func TestParseConv(t *testing.T) {
	w, err := parseConv("n=1,m=96,c=48,p=27,q=27,r=5,s=5")
	if err != nil {
		t.Fatal(err)
	}
	if w.Bound("M") != 96 || w.Bound("R") != 5 {
		t.Error("bounds wrong")
	}
	w2, err := parseConv("n=1,m=4,c=3,p=8,q=8,r=3,s=3,sh=2,sw=2")
	if err != nil {
		t.Fatal(err)
	}
	in := w2.Tensor("I")
	if v := in.TileVolume(map[string]int{"P": 8, "R": 3}); v != 17 {
		t.Errorf("stride lost: halo = %d, want 17", v)
	}
	for _, bad := range []string{"m=", "m=x", "z=4", "m4"} {
		if _, err := parseConv(bad); err == nil {
			t.Errorf("parseConv(%q) succeeded", bad)
		}
	}
}

func TestParseMatmul(t *testing.T) {
	w, err := parseMatmul("1024x16x512")
	if err != nil {
		t.Fatal(err)
	}
	if w.MACs() != 1024*16*512 {
		t.Error("MACs wrong")
	}
	for _, bad := range []string{"1024x16", "ax2x3", "1x2x3x4"} {
		if _, err := parseMatmul(bad); err == nil {
			t.Errorf("parseMatmul(%q) succeeded", bad)
		}
	}
}

func TestResolveArch(t *testing.T) {
	a, err := resolveArch("eyeriss:14x12:128")
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalLanes() != 168 {
		t.Error("eyeriss lanes wrong")
	}
	s, err := resolveArch("simba:15:4x4")
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalLanes() != 240 {
		t.Error("simba lanes wrong")
	}
	toy, err := resolveArch("toy:16:512")
	if err != nil {
		t.Fatal(err)
	}
	if toy.TotalLanes() != 16 {
		t.Error("toy lanes wrong")
	}
	for _, bad := range []string{"tpu:1:2", "eyeriss:14:128", "eyeriss:axb:128", "simba:15:44", "toy:16"} {
		if _, err := resolveArch(bad); err == nil {
			t.Errorf("resolveArch(%q) succeeded", bad)
		}
	}
}

func TestResolveKind(t *testing.T) {
	cases := map[string]mapspace.Kind{
		"pfm": mapspace.PFM, "perfect": mapspace.PFM,
		"ruby": mapspace.Ruby, "Ruby-S": mapspace.RubyS, "rubys": mapspace.RubyS,
		"ruby-t": mapspace.RubyT, "T": mapspace.RubyT,
	}
	for s, want := range cases {
		got, err := resolveKind(s)
		if err != nil || got != want {
			t.Errorf("resolveKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := resolveKind("zigzag"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestResolveWorkload(t *testing.T) {
	if _, err := resolveWorkload("", "", ""); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := resolveWorkload("no_such_layer", "", ""); err == nil {
		t.Error("unknown layer accepted")
	}
	w, err := resolveWorkload("fc1000", "", "")
	if err != nil || w.MACs() != 1000*2048 {
		t.Errorf("fc1000: %v, %v", w, err)
	}
	if w, err := resolveWorkload("alexnet_conv2", "", ""); err != nil || w.Bound("Q") != 27 {
		t.Errorf("alexnet: %v", err)
	}
}

func TestResolveObjective(t *testing.T) {
	for s, want := range map[string]search.Objective{
		"edp": search.ObjectiveEDP, "": search.ObjectiveEDP,
		"energy": search.ObjectiveEnergy,
		"delay":  search.ObjectiveDelay, "latency": search.ObjectiveDelay,
	} {
		got, err := resolveObjective(s)
		if err != nil || got != want {
			t.Errorf("resolveObjective(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := resolveObjective("area"); err == nil {
		t.Error("unknown objective accepted")
	}
}
