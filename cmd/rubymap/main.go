// Command rubymap searches for the best mapping of one workload onto one
// architecture and prints the winning loop nest with its cost breakdown.
//
// Usage:
//
//	rubymap -workload res4x_branch2c -mapspace ruby-s
//	rubymap -conv n=1,m=96,c=48,p=27,q=27,r=5,s=5 -arch eyeriss:14x12:128
//	rubymap -matmul 5124x700x2048 -arch simba:15:4x4 -mapspace pfm
//	rubymap -network deepbench-stacks -evals 20000
//	rubymap -list
//
// -network switches to whole-graph mode: every node of the named network
// graph is searched per-layer, then fusable producer→consumer segments are
// searched across the graph's edges and kept when they strictly lower the
// network EDP (rubysuite -fuse runs the same search across mapspaces).
//
// Long searches are interruptible: with -checkpoint DIR the search state is
// snapshotted periodically and on SIGINT/SIGTERM, and -resume continues a
// killed run from its last snapshot with bit-identical final results (see
// docs/ARCHITECTURE.md).
//
// Observability: -trace FILE records the search's span tree (search ->
// eval-batch, checkpoint events) and writes Chrome-trace JSON loadable in
// chrome://tracing or Perfetto; -slow-eval/-slow-search emit structured
// warnings for outliers; -metrics prints the pipeline counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ruby/internal/arch"
	"ruby/internal/config"
	"ruby/internal/energy"
	"ruby/internal/engine"
	"ruby/internal/heuristic"
	"ruby/internal/library"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/obs"
	"ruby/internal/profile"
	"ruby/internal/search"
	"ruby/internal/sim"
	"ruby/internal/sweep"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

func main() {
	var (
		wlName     = flag.String("workload", "", "named layer from the built-in suites (see -list)")
		netName    = flag.String("network", "", "fusion-aware search over a named network graph (e.g. resnet50, deepbench-stacks) instead of one workload")
		convStr    = flag.String("conv", "", "ad-hoc convolution, e.g. n=1,m=64,c=64,p=56,q=56,r=3,s=3[,sh=1,sw=1]")
		mmStr      = flag.String("matmul", "", "ad-hoc GEMM MxNxK, e.g. 1024x16x512")
		wlFile     = flag.String("workload-file", "", "JSON workload file (see configs/)")
		archStr    = flag.String("arch", "eyeriss:14x12:128", "eyeriss:COLSxROWS:GLBKiB | simba:PES:UNITSxWIDTH | toy:PES:SPADWORDS")
		archFile   = flag.String("arch-file", "", "JSON architecture file (overrides -arch)")
		consFile   = flag.String("constraints-file", "", "JSON constraints file (overrides the arch preset)")
		kind       = flag.String("mapspace", "ruby-s", "pfm | ruby | ruby-s | ruby-t")
		searcher   = flag.String("search", "random", "random | guided | exhaustive | genetic | anneal | hillclimb | portfolio | heuristic (one-shot) | warm (heuristic + random)")
		objFlag    = flag.String("objective", "edp", "edp | energy | delay")
		evals      = flag.Int64("evals", 100000, "max sampled mappings (0 = rely on no-improve; also caps -search exhaustive)")
		cpDir      = flag.String("checkpoint", "", "directory for crash-safe search snapshots (random|warm|hillclimb|exhaustive); SIGINT/SIGTERM write a final snapshot before exiting")
		resume     = flag.Bool("resume", false, "continue from the snapshot in -checkpoint (fresh start when none exists)")
		noImp      = flag.Int64("no-improve", 3000, "stop after this many consecutive non-improving valid mappings")
		threads    = flag.Int("threads", 0, "search threads (default: CPUs, max 24)")
		seed       = flag.Int64("seed", 1, "RNG seed")
		timeout    = flag.Duration("timeout", 0, "wall-time budget for the search; on expiry the best mapping so far is printed (0 = none)")
		cacheN     = flag.Int("cache", 0, "evaluation memo-cache entries (0 = disabled)")
		metrics    = flag.Bool("metrics", false, "print evaluation-pipeline counters after the search")
		tracePath  = flag.String("trace", "", "write a Chrome-trace JSON span dump of the search to this file")
		slowEval   = flag.Duration("slow-eval", 0, "log sampled evaluations slower than this (0 = off)")
		slowSearch = flag.Duration("slow-search", 0, "log searches slower than this (0 = off)")
		list       = flag.Bool("list", false, "list named workloads and exit")
		savePath   = flag.String("save", "", "write the best mapping as JSON to this path")
		libDir     = flag.String("library", "", "mapping-library directory: reuse cached best mappings, store new ones")
		loadPath   = flag.String("load", "", "evaluate a saved mapping instead of searching")
		verbose    = flag.Bool("v", false, "print per-tensor inter-level traffic")
		tree       = flag.Bool("tree", false, "print the factorization tree per tiled dimension (paper Figs. 4-6)")
		simulate   = flag.Bool("simulate", false, "cross-check the best mapping on the execution-driven simulator (small workloads)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		listWorkloads()
		return
	}

	stopProf, err0 := profile.Start(*cpuProf, *memProf)
	if err0 != nil {
		fatal(err0)
	}
	defer stopProf()

	if *netName != "" {
		runNetwork(*netName, *archStr, *archFile, *kind, *objFlag,
			*seed, *evals, *threads, *timeout)
		return
	}

	var w *workload.Workload
	var err error
	if *wlFile != "" {
		w, err = config.LoadWorkload(*wlFile)
	} else {
		w, err = resolveWorkload(*wlName, *convStr, *mmStr)
	}
	if err != nil {
		fatal(err)
	}
	var a *arch.Arch
	if *archFile != "" {
		a, err = config.LoadArch(*archFile)
	} else {
		a, err = resolveArch(*archStr)
	}
	if err != nil {
		fatal(err)
	}
	k, err := resolveKind(*kind)
	if err != nil {
		fatal(err)
	}

	cons := mapspace.EyerissRowStationary(w)
	if strings.HasPrefix(*archStr, "simba") {
		cons = mapspace.SimbaDataflow(w)
	} else if strings.HasPrefix(*archStr, "toy") || *archFile != "" {
		cons = mapspace.Constraints{}
	}
	if *consFile != "" {
		cons, err = config.LoadConstraints(*consFile)
		if err != nil {
			fatal(err)
		}
	}

	ev, err := nest.NewEvaluator(w, a)
	if err != nil {
		fatal(err)
	}
	sp := mapspace.New(w, a, k, cons)

	var lib *library.Store
	var libKey string
	if *libDir != "" {
		lib, err = library.Open(*libDir)
		if err != nil {
			fatal(err)
		}
		libKey = library.Key(w, a, k, cons)
	}

	var res *search.Result
	if lib != nil {
		if m, ok := lib.Get(libKey, w, sp.Slots()); ok {
			if c := ev.Evaluate(m); c.Valid {
				fmt.Printf("library hit: %s\n\n", libKey[:12])
				res = &search.Result{Best: m, BestCost: c, Evaluated: 1, Valid: 1}
			}
		}
	}
	if res != nil {
		// Reusing the cached mapping; skip search.
	} else if *loadPath != "" {
		data, err := os.ReadFile(*loadPath)
		if err != nil {
			fatal(err)
		}
		m, err := mapping.Decode(data, w, sp.Slots())
		if err != nil {
			fatal(fmt.Errorf("loading mapping: %w", err))
		}
		c := ev.Evaluate(m)
		if !c.Valid {
			fatal(fmt.Errorf("loaded mapping invalid: %s", c.Reason))
		}
		res = &search.Result{Best: m, BestCost: c, Evaluated: 1, Valid: 1}
	} else {
		obj, err := resolveObjective(*objFlag)
		if err != nil {
			fatal(err)
		}
		opt := search.Options{
			Seed: *seed, Threads: *threads,
			MaxEvaluations: *evals, ConsecutiveNoImprove: *noImp,
			Objective: obj,
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		// SIGINT/SIGTERM cancel the search; checkpointable searchers drain
		// their in-flight batch and write a final snapshot first.
		ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
		var rec *obs.Recorder
		if *tracePath != "" {
			rec = obs.NewRecorder(0)
			ctx = obs.WithRecorder(ctx, rec)
		}
		ins := engine.NewInstruments()
		if *slowEval > 0 || *slowSearch > 0 {
			ins.Slow = &obs.SlowLog{EvalThreshold: *slowEval, SearchThreshold: *slowSearch}
		}
		eng := engine.Config{CacheEntries: *cacheN, Metrics: ins, Workers: *threads}.New(ev)
		if *cpDir != "" || *resume || *searcher == "exhaustive" {
			res, err = runCheckpointable(ctx, *searcher, sp, eng, ev, k, cons, opt, *evals, *cpDir, *resume)
			if err != nil {
				fatal(err)
			}
		} else {
			res = runOneShot(ctx, *searcher, sp, eng, ev, k, cons, opt, obj, *seed, *evals)
		}
		if ctx.Err() != nil {
			if *timeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
				fmt.Printf("search timed out after %s; reporting best mapping so far\n\n", *timeout)
			} else {
				fmt.Printf("search interrupted; reporting best mapping so far\n\n")
			}
		}
		if rec != nil {
			if err := writeTrace(*tracePath, rec); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written to %s (%d spans)\n\n", *tracePath, len(rec.Spans()))
		}
		if *metrics {
			s := ins.Counters.Snapshot()
			fmt.Printf("pipeline: %d evaluations (%.1f%% valid), %d cache hits (%.1f%%), %d improvements, %.2fs search time\n\n",
				s.Evaluations, 100*s.ValidRate, s.CacheHits, 100*s.CacheHitRate, s.Improvements, s.SearchSeconds)
		}
	}
	reportAndExit(res, w, a, k, sp, ev, lib, libKey,
		*savePath, *tree, *verbose, *simulate)
}

// runNetwork searches a named network graph end to end: a per-layer baseline
// over every node, then the fusion-aware segment search, reporting the fused
// segments kept and the network EDP against the per-layer baseline.
func runNetwork(name, archStr, archFile, kindStr, objFlag string,
	seed, evals int64, threads int, timeout time.Duration) {

	net, ok := workloads.Networks()[name]
	if !ok {
		layers, found := workloads.Suites()[name]
		if !found {
			fatal(fmt.Errorf("unknown network %q (rubysuite -list names them)", name))
		}
		net = workloads.NetworkFromLayers(name, layers)
	}
	var a *arch.Arch
	var err error
	if archFile != "" {
		a, err = config.LoadArch(archFile)
	} else {
		a, err = resolveArch(archStr)
	}
	if err != nil {
		fatal(err)
	}
	k, err := resolveKind(kindStr)
	if err != nil {
		fatal(err)
	}
	obj, err := resolveObjective(objFlag)
	if err != nil {
		fatal(err)
	}
	consFn := sweep.ConstraintFn(mapspace.EyerissRowStationary)
	if strings.HasPrefix(archStr, "simba") {
		consFn = mapspace.SimbaDataflow
	} else if strings.HasPrefix(archStr, "toy") || archFile != "" {
		consFn = func(*workload.Workload) mapspace.Constraints { return mapspace.Constraints{} }
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	st := sweep.Strategy{Name: k.String(), Kind: k}
	so := sweep.SuiteOptions{Search: search.Options{
		Seed: seed, Threads: threads, MaxEvaluations: evals, Objective: obj,
	}}
	nr, err := sweep.SearchNetwork(ctx, net, a, st, consFn, so, true)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("network:  %s (%d nodes, %d edges)\n", net.Name, len(net.Nodes), len(net.Edges))
	fmt.Printf("arch:     %s (%d lanes)\n", a.Name, a.TotalLanes())
	fmt.Printf("mapspace: %s\n\n", k)
	for _, lr := range nr.Baseline.Layers {
		fmt.Printf("  %-24s x%-3d EDP %.4g\n", lr.Layer.Name, lr.Layer.Repeat, lr.Cost.EDP)
	}
	fmt.Printf("\nfused segments (%d of %d edges kept):\n", len(nr.Segments), len(net.Edges))
	for _, sg := range nr.Segments {
		fmt.Printf("  %s -> %s  x%d  elides %.0f DRAM words, saves %.3g pJ\n",
			sg.From, sg.To, sg.Repeat, sg.Fused.ElidedWords, sg.GainPJ())
	}
	fmt.Printf("\nper-layer EDP: %.6g\nfused EDP:     %.6g (%.1f%% better)\n",
		nr.Baseline.EDP, nr.EDP, 100*(nr.Baseline.EDP-nr.EDP)/nr.Baseline.EDP)
}

// runOneShot dispatches the non-checkpointable searchers (and the legacy
// random/hillclimb parallel paths, kept so existing invocations reproduce
// their historical draw sequences exactly).
func runOneShot(ctx context.Context, searcher string, sp *mapspace.Space, eng *engine.Engine,
	ev *nest.Evaluator, k mapspace.Kind, cons mapspace.Constraints,
	opt search.Options, obj search.Objective, seed, evals int64) *search.Result {

	switch searcher {
	case "random":
		return search.Random(ctx, sp, eng, opt)
	case "guided":
		return search.Guided(ctx, sp, eng, opt)
	case "genetic":
		return search.Genetic(sp, ev, search.GeneticOptions{Seed: seed, Objective: obj})
	case "hillclimb":
		return search.HillClimb(ctx, sp, eng, opt)
	case "anneal":
		steps := int(evals)
		if steps <= 0 {
			steps = 20000
		}
		return search.Anneal(sp, ev, search.AnnealOptions{Seed: seed, Steps: steps, Objective: obj})
	case "portfolio":
		return search.Portfolio(ctx, sp, eng, opt)
	case "heuristic":
		m, c, err := heuristic.Construct(ev, k, cons)
		if err != nil {
			fatal(err)
		}
		return &search.Result{Best: m, BestCost: c, Evaluated: 1, Valid: 1}
	case "warm":
		m, _, err := heuristic.Construct(ev, k, cons)
		if err != nil {
			fatal(err)
		}
		opt.WarmStart = m
		return search.Random(ctx, sp, eng, opt)
	default:
		fatal(fmt.Errorf("unknown searcher %q", searcher))
		return nil
	}
}

// runCheckpointable drives the resumable searchers under RunCheckpointed:
// periodic snapshots into dir, a final snapshot on interruption, and exact
// continuation with -resume. An interrupted run returns its best-so-far
// result (nil error) after pointing at the snapshot.
func runCheckpointable(ctx context.Context, searcher string, sp *mapspace.Space, eng *engine.Engine,
	ev *nest.Evaluator, k mapspace.Kind, cons mapspace.Constraints,
	opt search.Options, maxEnum int64, dir string, resume bool) (*search.Result, error) {

	var sr search.Searcher
	switch searcher {
	case "random":
		sr = search.NewRandom(sp, eng, opt)
	case "warm":
		m, _, err := heuristic.Construct(ev, k, cons)
		if err != nil {
			return nil, err
		}
		opt.WarmStart = m
		sr = search.NewRandom(sp, eng, opt)
	case "guided":
		sr = search.NewGuided(sp, eng, opt)
	case "hillclimb":
		sr = search.NewHillClimb(sp, eng, opt)
	case "exhaustive":
		sr = search.NewExhaustive(sp, eng, opt, maxEnum)
	default:
		return nil, fmt.Errorf("-checkpoint/-resume supports random|warm|guided|hillclimb|exhaustive, not %q", searcher)
	}
	var cc search.CheckpointConfig
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		cc.Path = filepath.Join(dir, "rubymap.search.json")
	}
	if resume {
		if cc.Path == "" {
			return nil, fmt.Errorf("-resume requires -checkpoint DIR")
		}
		if ok, err := search.RestoreFromFile(ctx, sr, cc.Path); err != nil {
			return nil, err
		} else if ok {
			fmt.Printf("resumed search from %s (%d evaluations done)\n\n", cc.Path, sr.Result().Evaluated)
		}
	}
	res, err := search.RunCheckpointed(ctx, sr, cc)
	if err != nil {
		if ctx.Err() == nil {
			return nil, err
		}
		if cc.Path != "" {
			fmt.Printf("checkpoint written to %s (continue with -resume)\n", cc.Path)
		}
	}
	return res, nil
}

// reportAndExit prints the winning mapping with its cost breakdown and the
// requested extras, storing it in the library/save file first.
func reportAndExit(res *search.Result, w *workload.Workload, a *arch.Arch, k mapspace.Kind,
	sp *mapspace.Space, ev *nest.Evaluator, lib *library.Store, libKey string,
	savePath string, tree, verbose, simulate bool) {

	if res.Best == nil {
		fatal(fmt.Errorf("no valid mapping found after %d samples", res.Evaluated))
	}
	if lib != nil {
		if err := lib.Put(libKey, res.Best); err != nil {
			fatal(err)
		}
	}
	if savePath != "" {
		data, err := res.Best.Encode()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(savePath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("saved best mapping to %s\n\n", savePath)
	}

	fmt.Printf("workload: %s (%d MACs)\n", w.Name, w.MACs())
	fmt.Printf("arch:     %s (%d lanes, %.2f mm^2)\n", a.Name, a.TotalLanes(), a.AreaMM2())
	fmt.Printf("mapspace: %s (tiling size %d), %d/%d samples valid\n\n",
		k, sp.TotalChainCount(), res.Valid, res.Evaluated)
	fmt.Println(res.Best.Render(w, a))

	c := res.BestCost
	fmt.Printf("cycles:      %.0f\n", c.Cycles)
	fmt.Printf("utilization: %.1f%%\n", 100*c.Utilization)
	fmt.Printf("energy:      %s\n", energy.Format(c.EnergyPJ))
	fmt.Printf("EDP:         %.4g pJ*cycles\n\n", c.EDP)
	fmt.Println("per-level accesses (words):")
	for li := range a.Levels {
		fmt.Printf("  %-6s reads %.3e  writes %.3e  energy %s\n",
			a.Levels[li].Name, c.LevelReads[li], c.LevelWrites[li], energy.Format(c.LevelEnergyPJ[li]))
	}
	fmt.Printf("  MACs   %s\n", energy.Format(c.MACEnergyPJ))

	if tree {
		fmt.Println("\nfactorization trees:")
		for _, d := range w.DimNames() {
			if w.Bound(d) > 1 {
				fmt.Print(res.Best.RenderTree(w, a, d))
			}
		}
	}

	if verbose {
		links, err := ev.Links(res.Best)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nper-tensor transfers (model):")
		for _, ls := range links {
			fmt.Printf("  %-2s %s -> %s: fills %.0f x deliv %.0f x tile %.0f words (reads mult %.0f)\n",
				ls.Tensor, a.Levels[ls.Parent].Name, a.Levels[ls.Child].Name,
				ls.Fills, ls.DelivMult, ls.Vol, ls.ReadsMult)
		}
	}

	if simulate {
		sm, err := sim.New(w, a, sim.Options{})
		if err != nil {
			fatal(err)
		}
		sres, err := sm.Run(res.Best)
		if err != nil {
			fatal(fmt.Errorf("simulation: %w (the simulator only handles small iteration spaces)", err))
		}
		match := "MISMATCH"
		if sres.Cycles == res.BestCost.Cycles {
			match = "exact match"
		}
		fmt.Printf("\nsimulator cross-check: %.0f cycles (%s)\n", sres.Cycles, match)
	}
}

// writeTrace dumps the recorder's spans as Chrome-trace JSON.
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func listWorkloads() {
	var names []string
	for _, l := range workloads.ResNet50() {
		names = append(names, fmt.Sprintf("%-24s resnet50  %-9s %d MACs", l.Name, l.Type, l.Work.MACs()))
	}
	for _, l := range workloads.DeepBench() {
		names = append(names, fmt.Sprintf("%-24s deepbench %-9s %d MACs", l.Name, l.Type, l.Work.MACs()))
	}
	names = append(names, fmt.Sprintf("%-24s alexnet   %-9s %d MACs", "alexnet_conv2", "conv", workloads.AlexNetConv2().MACs()))
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
}

func resolveWorkload(name, convStr, mmStr string) (*workload.Workload, error) {
	switch {
	case convStr != "":
		return parseConv(convStr)
	case mmStr != "":
		return parseMatmul(mmStr)
	case name == "alexnet_conv2":
		return workloads.AlexNetConv2(), nil
	case name != "":
		for _, l := range append(workloads.ResNet50(), workloads.DeepBench()...) {
			if l.Name == name {
				return l.Work, nil
			}
		}
		return nil, fmt.Errorf("unknown workload %q (try -list)", name)
	default:
		return nil, fmt.Errorf("one of -workload, -conv, -matmul is required")
	}
}

func parseConv(s string) (*workload.Workload, error) {
	p := workload.Conv2DParams{Name: "cli_conv", N: 1}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad conv spec %q", kv)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad conv value %q: %w", kv, err)
		}
		switch strings.ToLower(parts[0]) {
		case "n":
			p.N = v
		case "m":
			p.M = v
		case "c":
			p.C = v
		case "p":
			p.P = v
		case "q":
			p.Q = v
		case "r":
			p.R = v
		case "s":
			p.S = v
		case "sh":
			p.StrideH = v
		case "sw":
			p.StrideW = v
		default:
			return nil, fmt.Errorf("unknown conv key %q", parts[0])
		}
	}
	return workload.Conv2D(p)
}

func parseMatmul(s string) (*workload.Workload, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return nil, fmt.Errorf("matmul spec must be MxNxK, got %q", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad matmul dim %q: %w", p, err)
		}
		dims[i] = v
	}
	return workload.Matmul("cli_matmul", dims[0], dims[1], dims[2])
}

func resolveArch(s string) (*arch.Arch, error) {
	parts := strings.Split(strings.ToLower(s), ":")
	bad := func() error { return fmt.Errorf("bad arch spec %q", s) }
	atoi := func(x string) (int, error) { return strconv.Atoi(x) }
	switch parts[0] {
	case "eyeriss":
		if len(parts) != 3 {
			return nil, bad()
		}
		xy := strings.Split(parts[1], "x")
		if len(xy) != 2 {
			return nil, bad()
		}
		cols, err1 := atoi(xy[0])
		rows, err2 := atoi(xy[1])
		glb, err3 := atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, bad()
		}
		return arch.EyerissLike(cols, rows, glb), nil
	case "simba":
		if len(parts) != 3 {
			return nil, bad()
		}
		pes, err1 := atoi(parts[1])
		uv := strings.Split(parts[2], "x")
		if len(uv) != 2 || err1 != nil {
			return nil, bad()
		}
		units, err2 := atoi(uv[0])
		width, err3 := atoi(uv[1])
		if err2 != nil || err3 != nil {
			return nil, bad()
		}
		return arch.SimbaLike(pes, units, width), nil
	case "toy":
		if len(parts) != 3 {
			return nil, bad()
		}
		pes, err1 := atoi(parts[1])
		spad, err2 := atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, bad()
		}
		return arch.ToyLinear(pes, int64(spad)), nil
	default:
		return nil, bad()
	}
}

func resolveObjective(s string) (search.Objective, error) {
	switch strings.ToLower(s) {
	case "edp", "":
		return search.ObjectiveEDP, nil
	case "energy":
		return search.ObjectiveEnergy, nil
	case "delay", "latency", "cycles":
		return search.ObjectiveDelay, nil
	default:
		return 0, fmt.Errorf("unknown objective %q", s)
	}
}

func resolveKind(s string) (mapspace.Kind, error) {
	switch strings.ToLower(s) {
	case "pfm", "perfect":
		return mapspace.PFM, nil
	case "ruby":
		return mapspace.Ruby, nil
	case "ruby-s", "rubys", "s":
		return mapspace.RubyS, nil
	case "ruby-t", "rubyt", "t":
		return mapspace.RubyT, nil
	default:
		return 0, fmt.Errorf("unknown mapspace %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rubymap: %v\n", err)
	os.Exit(1)
}
