package main

import (
	"testing"

	"ruby/internal/mapspace"
)

func TestParseArchSpec(t *testing.T) {
	a, err := parseArchSpec("eyeriss:14x12:128")
	if err != nil || a.TotalLanes() != 168 {
		t.Errorf("eyeriss parse: %v, %v", a, err)
	}
	s, err := parseArchSpec("simba:9:3x3")
	if err != nil || s.TotalLanes() != 81 {
		t.Errorf("simba parse: %v, %v", s, err)
	}
	for _, bad := range []string{"eyeriss:14x12", "foo:1:2", "eyeriss:ax12:128", "simba:9:33"} {
		if _, err := parseArchSpec(bad); err == nil {
			t.Errorf("parseArchSpec(%q) succeeded", bad)
		}
	}
}

func TestParseKind(t *testing.T) {
	if k, err := parseKind(" ruby-s "); err != nil || k != mapspace.RubyS {
		t.Errorf("parseKind: %v, %v", k, err)
	}
	if _, err := parseKind("zigzag"); err == nil {
		t.Error("unknown kind accepted")
	}
}
