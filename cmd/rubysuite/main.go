// Command rubysuite searches a whole workload suite on one architecture and
// prints the per-layer results and network totals, optionally for several
// mapspaces side by side.
//
// Usage:
//
//	rubysuite -suite resnet50
//	rubysuite -suite mobilenetv2 -mapspaces pfm,ruby-s -evals 20000
//	rubysuite -suite deepbench -arch eyeriss:16x16:128
//	rubysuite -suite resnet50 -fuse
//	rubysuite -list
//
// Suites resolve to network graphs (workloads.Networks) when one exists, so
// -fuse can search fused producer→consumer segments across the network's
// edges; suites without a graph run per-layer over an edge-free network.
//
// With -checkpoint DIR every finished layer is recorded on disk, keyed by
// its full search configuration; re-running the same command (after a crash,
// SIGINT, or timeout) skips completed layers and reproduces their results
// bit for bit. Pass -resume for clarity — any run with -checkpoint resumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"ruby/internal/arch"
	"ruby/internal/config"
	"ruby/internal/engine"
	"ruby/internal/library"
	"ruby/internal/mapspace"
	"ruby/internal/search"
	"ruby/internal/stats"
	"ruby/internal/sweep"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

func main() {
	var (
		suite    = flag.String("suite", "resnet50", "workload suite (see -list)")
		archStr  = flag.String("arch", "eyeriss:14x12:128", "eyeriss:COLSxROWS:GLBKiB | simba:PES:UNITSxWIDTH")
		archFile = flag.String("arch-file", "", "JSON architecture file (overrides -arch)")
		kinds    = flag.String("mapspaces", "pfm,ruby-s", "comma-separated mapspace kinds to compare")
		algo     = flag.String("search", "", "search algorithm per layer: random | guided | hillclimb | anneal | genetic | portfolio | exhaustive (default random)")
		evals    = flag.Int64("evals", 20000, "max sampled mappings per layer per mapspace")
		threads  = flag.Int("threads", 0, "search threads")
		seed     = flag.Int64("seed", 1, "RNG seed")
		libDir   = flag.String("library", "", "mapping-library directory: reuse cached best mappings across runs")
		cpDir    = flag.String("checkpoint", "", "directory for per-layer suite checkpoints; interrupted runs resume here, skipping completed layers")
		resume   = flag.Bool("resume", false, "alias for clarity: resuming is automatic whenever -checkpoint is set")
		timeout  = flag.Duration("timeout", 0, "wall-time budget for the whole run; on expiry the run aborts (0 = none)")
		parallel = flag.Int("parallel", 0, "layers searched concurrently (0 = auto, 1 = serial)")
		cacheN   = flag.Int("cache", 0, "per-layer evaluation memo-cache entries (0 = disabled)")
		fuse     = flag.Bool("fuse", false, "fusion-aware network search: keep fused producer->consumer segments that strictly lower network EDP")
		list     = flag.Bool("list", false, "list suites and exit")
	)
	flag.Parse()

	if *list {
		nets := workloads.Networks()
		var names []string
		for name, layers := range workloads.Suites() {
			edges := 0
			if net, ok := nets[name]; ok {
				edges = len(net.Edges)
			}
			names = append(names, fmt.Sprintf("%-17s %2d unique layers, %2d fusable edges, %d MACs",
				name, len(layers), edges, workloads.TotalMACs(layers)))
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	net, layers, err := resolveSuite(*suite)
	if err != nil {
		fatal(err)
	}
	if *fuse && len(net.Edges) == 0 {
		fmt.Fprintf(os.Stderr, "rubysuite: suite %q has no fusable edges; -fuse will match the per-layer baseline\n", *suite)
	}

	var a *arch.Arch
	if *archFile != "" {
		a, err = config.LoadArch(*archFile)
	} else {
		a, err = parseArchSpec(*archStr)
	}
	if err != nil {
		fatal(err)
	}

	consFn := mapspace.EyerissRowStationary
	if strings.HasPrefix(*archStr, "simba") {
		consFn = mapspace.SimbaDataflow
	}
	if *suite == "mobilenetv2" {
		// Depthwise layers need the channel dimension on both axes.
		consFn = func(w *workload.Workload) mapspace.Constraints {
			return mapspace.Constraints{
				SpatialX: []string{"Q", "M", "N"},
				SpatialY: []string{"R", "S", "C", "M", "K"},
			}
		}
	}

	var lib *library.Store
	if *libDir != "" {
		var err error
		lib, err = library.Open(*libDir)
		if err != nil {
			fatal(err)
		}
	}

	if *resume && *cpDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint DIR"))
	}
	var cp *sweep.SuiteCheckpoint
	if *cpDir != "" {
		if err := os.MkdirAll(*cpDir, 0o755); err != nil {
			fatal(err)
		}
		cp, err = sweep.OpenSuiteCheckpoint(filepath.Join(*cpDir, "rubysuite.suite.json"))
		if err != nil {
			fatal(err)
		}
		if n := cp.Len(); n > 0 {
			fmt.Printf("checkpoint %s holds %d completed layer searches; matching layers are skipped\n\n", cp.Path(), n)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// SIGINT/SIGTERM abort between layers; completed layers are already in
	// the checkpoint, so the same command picks up where this run stopped.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	so := sweep.SuiteOptions{
		Search:     search.Options{Algo: *algo, Seed: *seed, Threads: *threads, MaxEvaluations: *evals},
		Engine:     engine.Config{CacheEntries: *cacheN},
		Library:    lib,
		Checkpoint: cp,
		Parallel:   *parallel,
	}
	var results []*sweep.SuiteResult
	var fused []*sweep.NetworkResult
	var names []string
	for _, ks := range strings.Split(*kinds, ",") {
		kind, err := parseKind(ks)
		if err != nil {
			fatal(err)
		}
		st := sweep.Strategy{Name: kind.String(), Kind: kind}
		var sr *sweep.SuiteResult
		if *fuse {
			nr, nerr := sweep.SearchNetwork(ctx, net, a, st, consFn, so, true)
			err = nerr
			if nr != nil {
				sr = nr.Baseline
				fused = append(fused, nr)
			}
		} else {
			sr, err = sweep.RunSuite(ctx, net, a, st, consFn, so)
		}
		if err != nil {
			if ctx.Err() != nil && cp != nil {
				fmt.Fprintf(os.Stderr, "rubysuite: interrupted; %d layer searches checkpointed in %s — rerun the same command to continue\n",
					cp.Len(), cp.Path())
				os.Exit(1)
			}
			fatal(err)
		}
		results = append(results, sr)
		names = append(names, kind.String())
	}

	tb := &stats.Table{
		Title:   fmt.Sprintf("%s on %s (EDP per layer)", *suite, a.Name),
		Headers: append([]string{"layer", "repeat"}, names...),
	}
	if len(results) > 1 {
		tb.Headers = append(tb.Headers, "last/first")
	}
	for i := range layers {
		row := []any{layers[i].Name, layers[i].Repeat}
		for _, sr := range results {
			row = append(row, sr.Layers[i].Cost.EDP)
		}
		if len(results) > 1 {
			row = append(row, results[len(results)-1].Layers[i].Cost.EDP/results[0].Layers[i].Cost.EDP)
		}
		tb.AddRow(row...)
	}
	totals := []any{"TOTAL (network)", ""}
	for _, sr := range results {
		totals = append(totals, sr.EDP)
	}
	if len(results) > 1 {
		totals = append(totals, results[len(results)-1].EDP/results[0].EDP)
	}
	tb.AddRow(totals...)
	tb.Render(os.Stdout)

	if len(results) > 1 {
		fmt.Printf("\nnetwork EDP: %s improves on %s by %.1f%%\n",
			names[len(names)-1], names[0],
			100*stats.Improvement(results[0].EDP, results[len(results)-1].EDP))
	}

	for i, nr := range fused {
		fmt.Printf("\n%s fused segments (%d of %d edges kept):\n", names[i], len(nr.Segments), len(net.Edges))
		for _, sg := range nr.Segments {
			fmt.Printf("  %s -> %s  x%d  elides %.0f DRAM words, saves %.3g pJ\n",
				sg.From, sg.To, sg.Repeat, sg.Fused.ElidedWords, sg.GainPJ())
		}
		fmt.Printf("  network EDP %.6g vs per-layer %.6g (%.1f%% better)\n",
			nr.EDP, nr.Baseline.EDP, 100*stats.Improvement(nr.Baseline.EDP, nr.EDP))
	}
}

// resolveSuite finds the named suite as a network graph when one exists,
// falling back to an edge-free network over the plain layer list.
func resolveSuite(name string) (*workload.Network, []workloads.Layer, error) {
	if net, ok := workloads.Networks()[name]; ok {
		return net, workloads.LayersOf(net), nil
	}
	layers, ok := workloads.Suites()[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown suite %q (try -list)", name)
	}
	return workloads.NetworkFromLayers(name, layers), layers, nil
}

func parseArchSpec(s string) (*arch.Arch, error) {
	parts := strings.Split(strings.ToLower(s), ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad arch spec %q", s)
	}
	switch parts[0] {
	case "eyeriss":
		xy := strings.Split(parts[1], "x")
		if len(xy) != 2 {
			return nil, fmt.Errorf("bad arch spec %q", s)
		}
		cols, e1 := strconv.Atoi(xy[0])
		rows, e2 := strconv.Atoi(xy[1])
		glb, e3 := strconv.Atoi(parts[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, fmt.Errorf("bad arch spec %q", s)
		}
		return arch.EyerissLike(cols, rows, glb), nil
	case "simba":
		pes, e1 := strconv.Atoi(parts[1])
		uv := strings.Split(parts[2], "x")
		if len(uv) != 2 || e1 != nil {
			return nil, fmt.Errorf("bad arch spec %q", s)
		}
		units, e2 := strconv.Atoi(uv[0])
		width, e3 := strconv.Atoi(uv[1])
		if e2 != nil || e3 != nil {
			return nil, fmt.Errorf("bad arch spec %q", s)
		}
		return arch.SimbaLike(pes, units, width), nil
	default:
		return nil, fmt.Errorf("bad arch spec %q", s)
	}
}

func parseKind(s string) (mapspace.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "pfm", "perfect":
		return mapspace.PFM, nil
	case "ruby":
		return mapspace.Ruby, nil
	case "ruby-s", "rubys":
		return mapspace.RubyS, nil
	case "ruby-t", "rubyt":
		return mapspace.RubyT, nil
	default:
		return 0, fmt.Errorf("unknown mapspace %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rubysuite: %v\n", err)
	os.Exit(1)
}
