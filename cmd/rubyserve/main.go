// Command rubyserve exposes the mapper as a JSON-over-HTTP service.
//
//	rubyserve -addr :8731 -state /var/lib/ruby
//
//	curl localhost:8731/v1/suites
//	curl -X POST localhost:8731/v1/search -d '{
//	  "workload": {"name": "fc", "type": "matmul", "matmul": {"m": 1000, "n": 1, "k": 2048}},
//	  "arch": {"name": "eyeriss", "levels": [
//	    {"name": "DRAM"},
//	    {"name": "GLB", "capacity_kib": 128, "keeps": ["input", "output"],
//	     "fanout": {"x": 14, "y": 12, "multicast": true}},
//	    {"name": "PE", "per_role_words": {"input": 12, "output": 16, "weight": 224}}]},
//	  "mapspace": "ruby-s", "max_evaluations": 50000
//	}'
//
// Asynchronous jobs (POST /v1/jobs) are fault tolerant when -state DIR is
// set: job records and periodic search checkpoints live in DIR, so a restart
// re-lists finished jobs and resumes interrupted ones with results identical
// to an uninterrupted run. On SIGINT/SIGTERM the server stops accepting
// work, drains running jobs to their checkpoints, and exits cleanly.
//
// Observability: GET /v1/metrics serves the Prometheus text exposition to
// clients sending Accept: text/plain (JSON counters otherwise, see
// docs/API.md); -slow-eval/-slow-search emit structured warnings for
// outlier operations.
package main

import (
	"context"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ruby/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8731", "listen address")
	stateDir := flag.String("state", "", "directory for job records and search checkpoints; jobs survive restarts (empty = in-memory only)")
	drainTO := flag.Duration("drain-timeout", 30*time.Second, "max time to drain running jobs on shutdown")
	slowEval := flag.Duration("slow-eval", 0, "log sampled evaluations slower than this (0 = off)")
	slowSearch := flag.Duration("slow-search", 0, "log searches slower than this (0 = off)")
	algo := flag.String("search", "", "default search algorithm for requests that do not name one (random | guided | hillclimb | anneal | genetic | portfolio | exhaustive)")
	flag.Parse()

	svc, err := server.NewService(server.Options{
		StateDir:      *stateDir,
		SlowEval:      *slowEval,
		SlowSearch:    *slowSearch,
		DefaultSearch: *algo,
	})
	if err != nil {
		log.Fatalf("rubyserve: %v", err)
	}
	// Pipeline counters are served at /v1/metrics and, via expvar, at
	// /debug/vars alongside the runtime's variables.
	svc.Counters().Publish("ruby_engine")
	mux := http.NewServeMux()
	mux.Handle("/", svc)
	mux.Handle("GET /debug/vars", expvar.Handler())

	// Profiling endpoints (the custom mux bypasses net/http/pprof's
	// DefaultServeMux registrations): /debug/pprof/ for the index,
	// /debug/pprof/profile for CPU, /debug/pprof/heap for allocations —
	// how hot-path regressions in the evaluation pipeline get diagnosed.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("rubyserve: shutting down (draining jobs, timeout %v)", *drainTO)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		// Stop accepting requests first, then park running jobs in their
		// checkpoints so the next -state run resumes them.
		if err := srv.Shutdown(dctx); err != nil {
			log.Printf("rubyserve: http shutdown: %v", err)
		}
		if err := svc.Shutdown(dctx); err != nil {
			log.Printf("rubyserve: job drain: %v", err)
		}
	}()
	log.Printf("rubyserve listening on %s", *addr)
	if *stateDir != "" {
		log.Printf("rubyserve: persisting jobs in %s", *stateDir)
	}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-drained
	log.Printf("rubyserve: bye")
}
