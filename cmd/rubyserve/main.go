// Command rubyserve exposes the mapper as a JSON-over-HTTP service.
//
//	rubyserve -addr :8731
//
//	curl localhost:8731/v1/suites
//	curl -X POST localhost:8731/v1/search -d '{
//	  "workload": {"name": "fc", "type": "matmul", "matmul": {"m": 1000, "n": 1, "k": 2048}},
//	  "arch": {"name": "eyeriss", "levels": [
//	    {"name": "DRAM"},
//	    {"name": "GLB", "capacity_kib": 128, "keeps": ["input", "output"],
//	     "fanout": {"x": 14, "y": 12, "multicast": true}},
//	    {"name": "PE", "per_role_words": {"input": 12, "output": 16, "weight": 224}}]},
//	  "mapspace": "ruby-s", "max_evaluations": 50000
//	}'
package main

import (
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"ruby/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8731", "listen address")
	flag.Parse()

	// Pipeline counters are served at /v1/metrics and, via expvar, at
	// /debug/vars alongside the runtime's variables.
	handler, counters := server.NewWithMetrics()
	counters.Publish("ruby_engine")
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("GET /debug/vars", expvar.Handler())

	// Profiling endpoints (the custom mux bypasses net/http/pprof's
	// DefaultServeMux registrations): /debug/pprof/ for the index,
	// /debug/pprof/profile for CPU, /debug/pprof/heap for allocations —
	// how hot-path regressions in the evaluation pipeline get diagnosed.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("rubyserve listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
