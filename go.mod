module ruby

go 1.22
