GO ?= go

.PHONY: all build test race race-obs race-dist bench bench-all bench-gate fmt vet lint fuzz-smoke docs-check check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine and searchers are the concurrency-heavy packages; the full
# tree under -race is the release gate.
race:
	$(GO) test -race ./...

# Fast race signal on the observability layer and the server that exercises
# it concurrently (atomic histograms, span recorder, job gauges); CI runs
# this as a dedicated early step.
race-obs:
	$(GO) test -race ./internal/obs/... ./internal/server/...

# Distributed-determinism gate: the multi-worker integration tests (3-worker
# fleet vs single-node reference, deterministic mid-shard worker kill,
# kill-then-resume from a persisted plan state) under the race detector.
race-dist:
	$(GO) test -race ./internal/dist/...

# Evaluation-kernel microbenchmarks (compiled plan vs legacy, engine cache,
# sampler pipeline, delta-evaluation neighbor steps, cost attribution and
# guided-mapper convergence), persisted as BENCH_eval.json and appended as a
# dated record to BENCH_history.jsonl to track the perf trajectory across
# PRs. `bench-all` runs the full suite once.
BENCH_PATTERN = BenchmarkEvaluate|BenchmarkEngine|BenchmarkSample|BenchmarkNeighbor|BenchmarkAttribute|BenchmarkGuidedConverge|BenchmarkFused
bench:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchtime 2s . \
		| $(GO) run ./tools/benchjson -o BENCH_eval.json -history BENCH_history.jsonl

# CI perf gate: rerun the microbenchmarks against the committed snapshot and
# fail on a >20% ns/op regression of the gated kernels, any allocation where
# the snapshot was allocation-free (the hot-path evaluate/sample/attribute
# loops), or a >20% growth in the guided mapper's evals-to-convergence.
# Does not rewrite the committed snapshot or history.
BENCH_GATE = BenchmarkEvaluateCompiled,BenchmarkEvaluateConv,BenchmarkSampleEvaluatePipeline,BenchmarkAttribute,BenchmarkGuidedConverge:convergence_evals
bench-gate:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchtime 2s . \
		| $(GO) run ./tools/benchjson -o '' -baseline BENCH_eval.json -gate '$(BENCH_GATE)'

bench-all:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-invariant static analysis (determinism, hot-path allocation
# freedom, context discipline, atomic counter access). See tools/README.md.
lint:
	$(GO) run ./tools/rubylint ./...

# Short fuzz pass over every fuzz target; CI runs this as a smoke test.
# Override FUZZTIME for longer local sessions.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzFactorChains -fuzztime $(FUZZTIME) ./internal/factor
	$(GO) test -run xxx -fuzz FuzzCheckpointRoundTrip -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run xxx -fuzz FuzzConfigParse -fuzztime $(FUZZTIME) ./internal/config
	$(GO) test -run xxx -fuzz FuzzMoveDelta -fuzztime $(FUZZTIME) ./internal/nest
	$(GO) test -run xxx -fuzz FuzzAllowDirective -fuzztime $(FUZZTIME) ./internal/analysis/lint
	$(GO) test -run xxx -fuzz FuzzNetworkEdges -fuzztime $(FUZZTIME) ./internal/workload

# Documentation hygiene: every relative markdown link must resolve, and the
# source must be gofmt-clean and vet-clean (doc drift usually rides along
# with code drift).
docs-check: fmt vet
	$(GO) run ./tools/linkcheck

check: fmt vet build lint docs-check test race-dist race
