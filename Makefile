GO ?= go

.PHONY: all build test race bench fmt vet check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine and searchers are the concurrency-heavy packages; the full
# tree under -race is the release gate.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet build test race
