// DeepBench on the Eyeriss-like baseline: a per-layer Ruby-S versus PFM
// comparison in the style of the paper's Fig. 11. Vision layers (whose
// feature maps share the factor 7 with the 14x12 array) should land near
// parity; speech, face and speaker-ID shapes should favor Ruby-S.
//
//	go run ./examples/deepbench [-evals N]
package main

import (
	"context"

	"flag"
	"fmt"
	"math"

	"ruby"
)

func main() {
	evals := flag.Int64("evals", 20000, "sampled mappings per mapspace per layer")
	flag.Parse()

	a := ruby.EyerissLike(14, 12, 128)
	fmt.Printf("%-28s %-8s %8s %8s %9s\n", "layer", "domain", "PFM util", "RbS util", "EDP ratio")

	var ratios []float64
	for _, l := range ruby.DeepBench() {
		ev := ruby.MustEvaluator(l.Work, a)
		cons := ruby.EyerissRowStationary(l.Work)
		costs := map[ruby.SpaceKind]ruby.Cost{}
		for _, kind := range []ruby.SpaceKind{ruby.PFM, ruby.RubyS} {
			sp := ruby.NewSpace(l.Work, a, kind, cons)
			res := ruby.Search(context.Background(), sp, ruby.NewEngine(ev), ruby.SearchOptions{Seed: 1, MaxEvaluations: *evals})
			if res.Best == nil {
				panic(fmt.Sprintf("%s: no valid %v mapping", l.Name, kind))
			}
			costs[kind] = res.BestCost
		}
		ratio := costs[ruby.RubyS].EDP / costs[ruby.PFM].EDP
		ratios = append(ratios, ratio)
		fmt.Printf("%-28s %-8s %7.1f%% %7.1f%% %9.3f\n",
			l.Name, l.Domain,
			100*costs[ruby.PFM].Utilization, 100*costs[ruby.RubyS].Utilization, ratio)
	}

	gm := 1.0
	for _, r := range ratios {
		gm *= r
	}
	gm = math.Pow(gm, 1/float64(len(ratios)))
	fmt.Printf("\nRuby-S EDP, normalized to PFM: geomean %.3f, best %.3f, worst %.3f\n",
		gm, minOf(ratios), maxOf(ratios))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
