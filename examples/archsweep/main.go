// Architecture design-space exploration: a compact version of the paper's
// Figs. 13-14. Sweeps Eyeriss-like PE arrays over a slice of ResNet-50,
// comparing PFM, PFM+padding and Ruby-S, and reports which (area, EDP)
// points form the Pareto frontier.
//
//	go run ./examples/archsweep [-evals N]
package main

import (
	"context"

	"flag"
	"fmt"

	"ruby"
)

func main() {
	evals := flag.Int64("evals", 4000, "sampled mappings per mapspace per layer")
	flag.Parse()

	// A representative ResNet-50 slice: one of each layer type.
	var layers []ruby.SuiteLayer
	seen := map[string]bool{}
	for _, l := range ruby.ResNet50() {
		if !seen[string(l.Type)] {
			seen[string(l.Type)] = true
			layers = append(layers, l)
		}
	}
	fmt.Printf("sweeping %d configurations over %d layers\n\n", len(ruby.EyerissConfigs()), len(layers))

	so := ruby.SuiteOptions{Search: ruby.SearchOptions{Seed: 1, MaxEvaluations: *evals}}
	points, err := ruby.Explore(context.Background(), layers, ruby.EyerissConfigs(), 128,
		ruby.SweepStrategies(), ruby.EyerissRowStationary, so)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-7s %9s %12s %12s %12s\n", "array", "area mm2", "PFM", "PFM+pad", "Ruby-S")
	for _, dp := range points {
		fmt.Printf("%-7s %9.2f %12.4g %12.4g %12.4g\n",
			dp.Config, dp.AreaMM2, dp.EDP["PFM"], dp.EDP["PFM+pad"], dp.EDP["Ruby-S"])
	}

	// Which strategy owns the combined area-EDP frontier?
	var all []ruby.ParetoPoint
	for _, dp := range points {
		for st, edp := range dp.EDP {
			all = append(all, ruby.ParetoPoint{X: dp.AreaMM2, Y: edp, Label: dp.Config.String() + "/" + st})
		}
	}
	fmt.Println("\ncombined Pareto frontier (area vs EDP):")
	for _, p := range ruby.ParetoFrontier(all) {
		fmt.Printf("  %-16s area %8.2f  EDP %.4g\n", p.Label, p.X, p.Y)
	}
}
