// Model validation walkthrough: load a custom architecture from a JSON
// config, search a Ruby-S mapping for a small convolution, then execute the
// winning loop nest on the execution-driven reference simulator and compare
// against the analytical model — latency must match exactly, and the model's
// tile-fill counts must bound the simulator's boundary-aware observations.
//
//	go run ./examples/simcheck
package main

import (
	"context"

	"fmt"

	"ruby"
)

const archJSON = `{
  "name": "custom-accel",
  "levels": [
    {"name": "DRAM"},
    {"name": "SRAM", "capacity_kib": 8,
     "fanout": {"x": 5, "y": 2, "multicast": true}},
    {"name": "RF", "capacity_words": 48}
  ]
}`

func main() {
	w := ruby.MustConv2D(ruby.Conv2DParams{N: 1, M: 6, C: 4, P: 9, Q: 7, R: 3, S: 3})

	a, err := parseArch()
	if err != nil {
		panic(err)
	}
	fmt.Println("architecture:", a)
	fmt.Println("workload:    ", w.Name)

	ev := ruby.MustEvaluator(w, a)
	sp := ruby.NewSpace(w, a, ruby.RubyS, ruby.Constraints{})
	res := ruby.Search(context.Background(), sp, ruby.NewEngine(ev), ruby.SearchOptions{Seed: 1, MaxEvaluations: 20000})
	if res.Best == nil {
		panic("no valid mapping")
	}
	fmt.Println("\nbest Ruby-S mapping:")
	fmt.Print(res.Best.Render(w, a))

	sim, err := ruby.NewSimulator(w, a, ruby.SimOptions{})
	if err != nil {
		panic(err)
	}
	simRes, err := sim.Run(res.Best)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nlatency: model %.0f cycles, simulator %.0f cycles", res.BestCost.Cycles, simRes.Cycles)
	if res.BestCost.Cycles == simRes.Cycles {
		fmt.Println("  ✓ exact match")
	} else {
		fmt.Println("  ✗ MISMATCH")
	}

	links, err := ev.Links(res.Best)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ntile fills (tile-change events, all instances):")
	fmt.Printf("  %-3s %-12s %10s %10s\n", "t", "level", "model", "simulated")
	for _, ls := range links {
		model := ls.Fills * ls.DelivMult
		simulated := simRes.Fills[ls.Child][ls.Tensor]
		mark := "=="
		if simulated < model {
			mark = "<= (boundary strips save work the model charges conservatively)"
		}
		fmt.Printf("  %-3s %-12s %10.0f %10.0f  %s\n",
			ls.Tensor, a.Levels[ls.Child].Name, model, simulated, mark)
	}
}

func parseArch() (*ruby.Arch, error) {
	// In a real project this would be ruby.LoadArch("my-accel.json"); the
	// example inlines the file for self-containment.
	return ruby.ParseArch([]byte(archJSON))
}
