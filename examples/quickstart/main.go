// Quickstart: the paper's Section II-D walkthrough. Distribute 100 tensor
// elements across 6 storage-less PEs behind a 1 KiB global buffer and watch
// perfect factorization strand one PE while Ruby-S fills the array with a
// remainder tile.
//
//	go run ./examples/quickstart
package main

import (
	"context"

	"fmt"

	"ruby"
)

func main() {
	w := ruby.MustVector1D("distribute100", 100)
	a := ruby.ToyGLB(6, 512)
	ev := ruby.MustEvaluator(w, a)

	fmt.Println("workload:")
	fmt.Println(w)
	fmt.Println("architecture:", a)
	fmt.Println()

	for _, kind := range []ruby.SpaceKind{ruby.PFM, ruby.RubyS} {
		sp := ruby.NewSpace(w, a, kind, ruby.Constraints{FixedPerms: true})
		// The toy mapspaces are tiny: evaluate them exhaustively.
		res := ruby.SearchExhaustive(context.Background(), sp, ruby.NewEngine(ev), ruby.SearchOptions{}, 0)
		if res.Best == nil {
			panic("no valid mapping")
		}
		c := res.BestCost
		fmt.Printf("=== %s (mapspace size %d, %d valid) ===\n",
			kind, sp.TotalChainCount(), res.Valid)
		fmt.Print(res.Best.Render(w, a))
		fmt.Printf("cycles %.0f | utilization %.1f%% | EDP %.4g\n\n",
			c.Cycles, 100*c.Utilization, c.EDP)
	}

	fmt.Println("The perfect-factorization optimum keeps 5 of 6 PEs busy for 20")
	fmt.Println("cycles (factors of 100 capped at 6 stop at 5). Ruby-S dispatches")
	fmt.Println("6 elements for 16 iterations and a remainder of 4 on the 17th —")
	fmt.Println("the paper's Fig. 5 mapping — saving 3 cycles.")
}
