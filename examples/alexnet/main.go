// AlexNet layer 2 on the Eyeriss-like baseline: the paper's Fig. 9 study.
// Compares a handcrafted strip-mined mapping (built explicitly through the
// public API) against the best perfect-factorization and Ruby-S mappings
// found by random search.
//
//	go run ./examples/alexnet [-evals N]
package main

import (
	"context"

	"flag"
	"fmt"

	"ruby"
)

func main() {
	evals := flag.Int64("evals", 60000, "sampled mappings per mapspace")
	flag.Parse()

	w := ruby.AlexNetConv2()
	a := ruby.EyerissLike(14, 12, 128)
	ev := ruby.MustEvaluator(w, a)

	// The handcrafted strip-mined mapping: output rows across the 14 PE
	// columns in strips of 14+13, filter rows and channel pairs down the 12
	// PE rows, four filters resident per PE.
	hand := ruby.UniformMapping(w, a, 1)
	hand.Factors["M"] = []int{12, 2, 1, 1, 4}
	hand.Factors["C"] = []int{1, 24, 2, 1, 1}
	hand.Factors["P"] = []int{1, 27, 1, 1, 1}
	hand.Factors["Q"] = []int{1, 2, 1, 14, 1} // ceil(27/14) = 2 strips
	hand.Factors["R"] = []int{1, 1, 5, 1, 1}
	hand.Factors["S"] = []int{1, 1, 1, 1, 5}
	hand.Perms[1] = []string{"M", "C", "P", "Q", "N", "R", "S"}
	handCost := ev.Evaluate(hand)
	if !handCost.Valid {
		panic("handcrafted mapping invalid: " + handCost.Reason)
	}

	report := func(name string, c ruby.Cost) {
		fmt.Printf("%-24s util %5.1f%%  cycles %10.0f  energy %.3e pJ  EDP %.4g\n",
			name, 100*c.Utilization, c.Cycles, c.EnergyPJ, c.EDP)
	}
	fmt.Printf("AlexNet conv2 (%s): %d MACs on %s\n\n", w.Name, w.MACs(), a.Name)
	report("handcrafted strip-mined", handCost)

	cons := ruby.EyerissRowStationary(w)
	var best ruby.Cost
	for _, kind := range []ruby.SpaceKind{ruby.PFM, ruby.RubyS} {
		sp := ruby.NewSpace(w, a, kind, cons)
		res := ruby.Search(context.Background(), sp, ruby.NewEngine(ev), ruby.SearchOptions{Seed: 1, MaxEvaluations: *evals})
		if res.Best == nil {
			panic("no valid mapping for " + kind.String())
		}
		report(kind.String()+" (search)", res.BestCost)
		if kind == ruby.RubyS {
			best = res.BestCost
			fmt.Println("\nbest Ruby-S loop nest:")
			fmt.Print(res.Best.Render(w, a))
		}
	}
	fmt.Printf("\nRuby-S EDP vs handcrafted: %+.1f%%\n",
		100*(best.EDP-handCost.EDP)/handCost.EDP)
}
