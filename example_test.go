package ruby_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"ruby"
)

// The Section II-D toy problem: a perfect-factorization mapper strands one
// of six PEs on a 100-element tensor; Ruby-S saturates the array with a
// remainder tile.
func ExampleSearchExhaustive() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	ev := ruby.MustEvaluator(w, a)

	pfm := ruby.SearchExhaustive(context.Background(), ruby.NewSpace(w, a, ruby.PFM, ruby.Constraints{FixedPerms: true}), ruby.NewEngine(ev), ruby.SearchOptions{}, 0)
	rs := ruby.SearchExhaustive(context.Background(), ruby.NewSpace(w, a, ruby.RubyS, ruby.Constraints{FixedPerms: true}), ruby.NewEngine(ev), ruby.SearchOptions{}, 0)
	fmt.Printf("PFM: %.0f cycles at %.0f%% utilization\n", pfm.BestCost.Cycles, 100*pfm.BestCost.Utilization)
	fmt.Printf("Ruby-S: %.0f cycles at %.0f%% utilization\n", rs.BestCost.Cycles, 100*rs.BestCost.Utilization)
	// Output:
	// PFM: 20 cycles at 83% utilization
	// Ruby-S: 17 cycles at 98% utilization
}

// Evaluating one explicit mapping: the Fig. 5 allocation (17 iterations of
// 6 elements, the last dispatching the remainder of 4).
func ExampleEvaluator_Evaluate() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	ev := ruby.MustEvaluator(w, a)

	m := ruby.UniformMapping(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	c := ev.Evaluate(m)
	fmt.Printf("valid=%v cycles=%.0f DRAM reads=%.0f\n", c.Valid, c.Cycles, c.LevelReads[0])
	// Output:
	// valid=true cycles=17 DRAM reads=100
}

// The constructive heuristic builds a saturating mapping without search.
func ExampleConstructMapping() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	ev := ruby.MustEvaluator(w, a)

	_, cost, err := ruby.ConstructMapping(ev, ruby.RubyS, ruby.Constraints{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("one-shot: %.0f cycles\n", cost.Cycles)
	// Output:
	// one-shot: 17 cycles
}

// Extended-Einsum workloads express projections the convolution builder
// cannot, such as depthwise convolutions.
func ExampleParseEinsum() {
	w, err := ruby.ParseEinsum("depthwise", "O[n,m,p,q] += I[n,m,p+r,q+s] * W[m,r,s]",
		map[string]int{"N": 1, "M": 32, "P": 14, "Q": 14, "R": 3, "S": 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d MACs, reduction dims %v\n", w.MACs(), w.ReductionDims())
	// Output:
	// 56448 MACs, reduction dims [R S]
}

// The execution-driven simulator validates the analytical model.
func ExampleSimulator_Run() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	m := ruby.UniformMapping(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}

	s, err := ruby.NewSimulator(w, a, ruby.SimOptions{})
	if err != nil {
		panic(err)
	}
	res, err := s.Run(m)
	if err != nil {
		panic(err)
	}
	model := ruby.MustEvaluator(w, a).Evaluate(m)
	fmt.Printf("simulated %.0f cycles, model %.0f cycles\n", res.Cycles, model.Cycles)
	// Output:
	// simulated 17 cycles, model 17 cycles
}

// A memo-caching engine makes repeated evaluations of equivalent mappings
// free, and its counters expose the pipeline's behavior.
func ExampleEngineConfig() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	ev := ruby.MustEvaluator(w, a)

	counters := &ruby.EngineCounters{}
	eng := ruby.EngineConfig{CacheEntries: 1024, Metrics: counters}.New(ev)

	m := ruby.UniformMapping(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	first := eng.Evaluate(m)
	second := eng.Evaluate(m) // same canonical key: served from the cache

	s := counters.Snapshot()
	fmt.Printf("cycles=%.0f (bit-identical: %v), evaluations=%d, cache hits=%d\n",
		second.Cycles, first.EDP == second.EDP, s.Evaluations, s.CacheHits)
	// Output:
	// cycles=17 (bit-identical: true), evaluations=2, cache hits=1
}

// Long searches checkpoint and resume: a run killed at any point and
// restored from its snapshot file finishes with bit-identical results.
func ExampleRunCheckpointed() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	ev := ruby.MustEvaluator(w, a)
	sp := ruby.NewSpace(w, a, ruby.RubyS, ruby.Constraints{FixedPerms: true})
	opt := ruby.SearchOptions{Seed: 11, MaxEvaluations: 3000}

	dir, _ := os.MkdirTemp("", "ruby-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "search.json")

	// "First process": step a resumable searcher partway, snapshot, stop.
	s1 := ruby.NewRandomSearcher(sp, ruby.NewEngine(ev), opt)
	for i := 0; i < 3; i++ {
		if _, err := s1.Step(context.Background()); err != nil {
			panic(err)
		}
	}
	st, err := s1.Snapshot()
	if err != nil {
		panic(err)
	}
	if err := ruby.SaveCheckpoint(path, "search", st); err != nil {
		panic(err)
	}

	// "Second process": restore and run to completion.
	s2 := ruby.NewRandomSearcher(sp, ruby.NewEngine(ev), opt)
	if _, err := ruby.RestoreSearch(context.Background(), s2, path); err != nil {
		panic(err)
	}
	res, err := ruby.RunCheckpointed(context.Background(), s2, ruby.CheckpointConfig{Path: path})
	if err != nil {
		panic(err)
	}
	fmt.Printf("best: %.0f cycles after %d evaluations\n", res.BestCost.Cycles, res.Evaluated)
	// Output:
	// best: 17 cycles after 3000 evaluations
}

// Mapping trees visualize imperfect factorization the way the paper's
// Figs. 4-6 do.
func ExampleMapping_RenderTree() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	m := ruby.UniformMapping(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	fmt.Print(m.RenderTree(w, a, "X"))
	// Output:
	// X = 100
	// `- GLB for x17 -> tile 6 (last 4)
	//    |- 16x full branch:
	//    |  `- GLB parFor x6 -> tile 1
	//    `- rem branch (4):
	//       `- GLB parFor x4 -> tile 1
}

// Sharding one exhaustive search into a deterministic plan: each shard owns
// a contiguous range of leading-dimension factor chains, and running the
// shards in any order — locally or across a worker fleet — merges to the
// same incumbent a single-node scan finds.
func ExampleBuildShardPlan() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	sp := ruby.NewSpace(w, a, ruby.RubyS, ruby.Constraints{FixedPerms: true})

	plan, err := ruby.BuildShardPlan(sp, "exhaustive", 1, 3, 0)
	if err != nil {
		panic(err)
	}
	for _, sh := range plan.Shards {
		fmt.Printf("shard %d: chains [%d, %d)\n", sh.Index, sh.Chain.Lo, sh.Chain.Hi)
	}

	spec := &ruby.DistSpec{
		Workload: []byte(`{"name": "d100", "type": "vector1d", "d": 100}`),
		Arch:     []byte(`{"name": "toy", "levels": [{"name": "DRAM"}, {"name": "GLB", "capacity_words": 512, "fanout": {"x": 6, "multicast": true}}]}`),
		Search:   "exhaustive",
	}
	cons := `{"fixed_perms": true}`
	spec.Constraints = []byte(cons)
	merged, err := ruby.RunPlanLocal(context.Background(), spec, plan)
	if err != nil {
		panic(err)
	}
	fmt.Printf("merged: %d evaluated, winner from shard %d\n", merged.Evaluated, merged.BestShard)
	// Output:
	// shard 0: chains [0, 10)
	// shard 1: chains [10, 20)
	// shard 2: chains [20, 30)
	// merged: 30 evaluated, winner from shard 2
}

// Resuming a coordinated run: the coordinator's state file keeps finished
// shards' results, so a restored run re-queues only the unfinished work and
// still merges to the identical outcome.
func ExampleRestoreCoordinator() {
	w := ruby.MustVector1D("d100", 100)
	a := ruby.ToyGLB(6, 512)
	sp := ruby.NewSpace(w, a, ruby.RubyS, ruby.Constraints{FixedPerms: true})
	plan, err := ruby.BuildShardPlan(sp, "exhaustive", 1, 2, 0)
	if err != nil {
		panic(err)
	}

	dir, _ := os.MkdirTemp("", "ruby-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "coord.json")

	// "First process": shard 0 completes, then the run is interrupted.
	c1 := ruby.NewCoordinator(plan, 0, nil)
	c1.Lease("w1")
	c1.Complete(0, "w1", ruby.ShardOutcome{Evaluated: 18, Valid: 12})
	if err := c1.SaveState(path, nil); err != nil {
		panic(err)
	}

	// "Second process": restore; only the unfinished shard is pending.
	st, err := ruby.LoadCoordinatorState(path)
	if err != nil {
		panic(err)
	}
	c2, err := ruby.RestoreCoordinator(st, 0, nil)
	if err != nil {
		panic(err)
	}
	for _, sv := range c2.Shards() {
		fmt.Printf("shard %d: %s\n", sv.Shard.Index, sv.Status)
	}
	sh, _, _ := c2.Lease("w2")
	c2.Complete(sh.Index, "w2", ruby.ShardOutcome{Evaluated: 18, Valid: 11})
	fmt.Printf("done=%v evaluated=%d\n", c2.Done(), c2.Merged().Evaluated)
	// Output:
	// shard 0: done
	// shard 1: pending
	// done=true evaluated=36
}
