// Package plot renders experiment results as standalone SVG figures using
// only the standard library, so the harness can regenerate the paper's
// figures as figures: Fig. 7's convergence curves, Fig. 8's sweep lines,
// Figs. 10-12's per-layer bars, and Figs. 13-14's Pareto scatters.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Kind selects the mark type.
type Kind uint8

const (
	// Line connects points in order (convergence curves, sweeps).
	Line Kind = iota
	// Scatter draws unconnected points (design-space exploration).
	Scatter
	// Bars draws grouped vertical bars over category labels.
	Bars
)

// Series is one named data sequence.
type Series struct {
	Name string
	X    []float64 // ignored by Bars (category index is used)
	Y    []float64
}

// Chart is a renderable figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Kind   Kind
	Series []Series
	// Labels are the category names for Bars charts.
	Labels []string
	// LogX/LogY select logarithmic axes (all values must be positive).
	LogX, LogY bool
}

// Canvas geometry.
const (
	width   = 760
	height  = 460
	marginL = 84
	marginR = 24
	marginT = 48
	marginB = 64
)

// palette holds colorblind-safe series colors.
var palette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9"}

// SVG renders the chart. Charts with no drawable data render an empty frame
// with the title, never an invalid document.
func (c *Chart) SVG() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="26" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginL, escape(c.Title))

	xs, ys, err := c.extent()
	if err != nil {
		return "", err
	}
	if xs.valid() && ys.valid() {
		c.drawAxes(&b, xs, ys)
		switch c.Kind {
		case Bars:
			c.drawBars(&b, ys)
		default:
			c.drawXY(&b, xs, ys)
		}
		c.drawLegend(&b)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// scale maps data ranges to pixels.
type scale struct {
	lo, hi float64
	log    bool
}

func (s scale) valid() bool { return !math.IsInf(s.lo, 0) && s.hi > s.lo }

func (s scale) norm(v float64) float64 {
	if s.log {
		return (math.Log10(v) - math.Log10(s.lo)) / (math.Log10(s.hi) - math.Log10(s.lo))
	}
	return (v - s.lo) / (s.hi - s.lo)
}

func (c *Chart) px(xs scale, x float64) float64 {
	return marginL + xs.norm(x)*(width-marginL-marginR)
}

func (c *Chart) py(ys scale, y float64) float64 {
	return height - marginB - ys.norm(y)*(height-marginT-marginB)
}

// extent computes the axis ranges (with padding for linear axes).
func (c *Chart) extent() (xs, ys scale, err error) {
	xs = scale{lo: math.Inf(1), hi: math.Inf(-1), log: c.LogX}
	ys = scale{lo: math.Inf(1), hi: math.Inf(-1), log: c.LogY}
	for _, s := range c.Series {
		for i, y := range s.Y {
			x := float64(i)
			if c.Kind != Bars && i < len(s.X) {
				x = s.X[i]
			}
			if (c.LogX && x <= 0 && c.Kind != Bars) || (c.LogY && y <= 0) {
				return xs, ys, fmt.Errorf("plot: log axis requires positive values (got x=%g y=%g)", x, y)
			}
			xs.lo, xs.hi = math.Min(xs.lo, x), math.Max(xs.hi, x)
			ys.lo, ys.hi = math.Min(ys.lo, y), math.Max(ys.hi, y)
		}
	}
	if !xs.valid() && !math.IsInf(xs.lo, 0) {
		xs.hi = xs.lo + 1
	}
	if !ys.valid() && !math.IsInf(ys.lo, 0) {
		ys.hi = ys.lo + 1
	}
	// Pad linear axes; bars always baseline at 0.
	if !ys.log && ys.valid() {
		if c.Kind == Bars && ys.lo > 0 {
			ys.lo = 0
		}
		pad := (ys.hi - ys.lo) * 0.06
		ys.hi += pad
		if ys.lo != 0 {
			ys.lo -= pad
		}
	}
	return xs, ys, nil
}

// drawAxes renders the frame, ticks and labels.
func (c *Chart) drawAxes(b *strings.Builder, xs, ys scale) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, width-marginL-marginR, height-marginT-marginB)
	// Y ticks.
	for _, v := range ticks(ys) {
		y := c.py(ys, v)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, formatTick(v))
	}
	// X ticks (categories for bars).
	if c.Kind == Bars {
		n := len(c.Labels)
		for i, lab := range c.Labels {
			x := marginL + (float64(i)+0.5)/float64(n)*(width-marginL-marginR)
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`+"\n",
				x, height-marginB+14, x, height-marginB+14, escape(lab))
		}
	} else {
		for _, v := range ticks(xs) {
			x := c.px(xs, v)
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
				x, height-marginB+16, formatTick(v))
		}
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(marginL+width-marginR)/2, height-14, escape(c.XLabel))
	fmt.Fprintf(b, `<text x="18" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n",
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, escape(c.YLabel))
}

// drawXY renders lines or scatter points.
func (c *Chart) drawXY(b *strings.Builder, xs, ys scale) {
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		if c.Kind == Line {
			var pts []string
			for i := range s.Y {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", c.px(xs, s.X[i]), c.py(ys, s.Y[i])))
			}
			fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for i := range s.Y {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n",
				c.px(xs, s.X[i]), c.py(ys, s.Y[i]), color)
		}
	}
}

// drawBars renders grouped bars.
func (c *Chart) drawBars(b *strings.Builder, ys scale) {
	n := len(c.Labels)
	if n == 0 {
		return
	}
	groups := len(c.Series)
	groupW := float64(width-marginL-marginR) / float64(n)
	barW := groupW * 0.8 / float64(groups)
	base := c.py(ys, math.Max(ys.lo, 0))
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		for i, y := range s.Y {
			if i >= n {
				break
			}
			x := marginL + float64(i)*groupW + groupW*0.1 + float64(si)*barW
			top := c.py(ys, y)
			h := base - top
			if h < 0 {
				top, h = base, -h
			}
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, top, barW, h, color)
		}
	}
}

// drawLegend lists the series names.
func (c *Chart) drawLegend(b *strings.Builder) {
	if len(c.Series) < 2 {
		return
	}
	x := width - marginR - 150
	y := marginT + 10
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", x, y-10, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			x+18, y, escape(s.Name))
		y += 18
		_ = si
	}
}

// ticks returns ~5 axis tick values.
func ticks(s scale) []float64 {
	if !s.valid() {
		return nil
	}
	if s.log {
		var out []float64
		lo := math.Floor(math.Log10(s.lo))
		hi := math.Ceil(math.Log10(s.hi))
		for e := lo; e <= hi; e++ {
			v := math.Pow(10, e)
			if v >= s.lo*0.999 && v <= s.hi*1.001 {
				out = append(out, v)
			}
		}
		if len(out) >= 2 {
			return out
		}
		// Degenerate log range: fall through to linear ticks.
	}
	span := nice((s.hi - s.lo) / 4)
	if span <= 0 {
		return []float64{s.lo, s.hi}
	}
	start := math.Ceil(s.lo/span) * span
	var out []float64
	for v := start; v <= s.hi+span*1e-9; v += span {
		out = append(out, v)
	}
	return out
}

// nice rounds a span to 1/2/5 x 10^k.
func nice(v float64) float64 {
	if v <= 0 {
		return 0
	}
	exp := math.Floor(math.Log10(v))
	f := v / math.Pow(10, exp)
	var nf float64
	switch {
	case f < 1.5:
		nf = 1
	case f < 3.5:
		nf = 2
	case f < 7.5:
		nf = 5
	default:
		nf = 10
	}
	return nf * math.Pow(10, exp)
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e5 || av < 1e-3:
		return fmt.Sprintf("%.0e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
