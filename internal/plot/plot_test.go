package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func mustValidXML(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, svg)
		}
	}
}

func TestLineChart(t *testing.T) {
	c := &Chart{
		Title: "convergence", XLabel: "evaluations", YLabel: "EDP",
		Kind: Line, LogY: true,
		Series: []Series{
			{Name: "PFM", X: []float64{100, 1000, 10000}, Y: []float64{1e13, 9e12, 8e12}},
			{Name: "Ruby-S", X: []float64{100, 1000, 10000}, Y: []float64{1.4e13, 8.5e12, 8e12}},
		},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	mustValidXML(t, svg)
	for _, frag := range []string{"polyline", "convergence", "PFM", "Ruby-S", "evaluations"} {
		if !strings.Contains(svg, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
}

func TestScatterChart(t *testing.T) {
	c := &Chart{
		Title: "pareto", Kind: Scatter,
		Series: []Series{{Name: "Ruby-S", X: []float64{0.3, 1.3}, Y: []float64{4e19, 3e18}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	mustValidXML(t, svg)
	if strings.Contains(svg, "polyline") {
		t.Error("scatter should not connect points")
	}
	if !strings.Contains(svg, "circle") {
		t.Error("scatter missing points")
	}
}

func TestBarsChart(t *testing.T) {
	c := &Chart{
		Title: "per-layer", Kind: Bars,
		Labels: []string{"conv1", "res2a", "fc"},
		Series: []Series{
			{Name: "Ruby-S/PFM", Y: []float64{0.9, 0.6, 0.5}},
		},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	mustValidXML(t, svg)
	if strings.Count(svg, "<rect") < 4 { // background + frame + 3 bars
		t.Errorf("bars missing:\n%s", svg)
	}
	for _, lab := range c.Labels {
		if !strings.Contains(svg, lab) {
			t.Errorf("missing label %q", lab)
		}
	}
}

func TestLogAxisRejectsNonPositive(t *testing.T) {
	c := &Chart{Kind: Line, LogY: true,
		Series: []Series{{X: []float64{1}, Y: []float64{0}}}}
	if _, err := c.SVG(); err == nil {
		t.Error("log axis accepted zero")
	}
}

func TestEmptyChartStillRenders(t *testing.T) {
	c := &Chart{Title: "empty"}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	mustValidXML(t, svg)
	if !strings.Contains(svg, "empty") {
		t.Error("title missing")
	}
}

func TestTicks(t *testing.T) {
	ts := ticks(scale{lo: 0, hi: 10})
	if len(ts) < 3 || ts[0] != 0 {
		t.Errorf("linear ticks = %v", ts)
	}
	lt := ticks(scale{lo: 1, hi: 1e4, log: true})
	if len(lt) != 5 || lt[0] != 1 || lt[4] != 1e4 {
		t.Errorf("log ticks = %v", lt)
	}
}

func TestNice(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.9, 1}, {2.4, 2}, {4, 5}, {8, 10}, {23, 20}, {70, 50},
	}
	for _, c := range cases {
		if got := nice(c.in); got != c.want {
			t.Errorf("nice(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{0: "0", 1e13: "1e+13", 128: "128", 0.893: "0.893", 1.5: "1.5"}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestEscape(t *testing.T) {
	if escape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Error("escape wrong")
	}
}
