package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketInvariants(t *testing.T) {
	h := NewHistogram("test_seconds", "test", []float64{0.001, 0.01, 0.1, 1})
	values := []float64{0.0005, 0.001, 0.002, 0.05, 0.5, 2, 100}
	sum := 0.0
	for _, v := range values {
		h.Observe(v)
		sum += v
	}
	s := h.Snapshot()

	// Per-bucket counts sum to the total count.
	total := int64(0)
	for _, c := range s.Counts {
		if c < 0 {
			t.Fatalf("negative bucket count %d", c)
		}
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, total count %d", total, s.Count)
	}
	if s.Count != int64(len(values)) {
		t.Fatalf("count = %d, want %d", s.Count, len(values))
	}
	if math.Abs(s.Sum-sum) > 1e-12 {
		t.Fatalf("sum = %g, want %g", s.Sum, sum)
	}

	// Placement: 0.001 is inclusive (le semantics), 0.002 overflows into the
	// next bucket, 100 lands in +Inf.
	want := []int64{2, 1, 1, 1, 2}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
}

func TestHistogramCumulativeMonotone(t *testing.T) {
	h := NewHistogram("m", "m", LatencyBuckets())
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	s := h.Snapshot()
	cum, prev := int64(0), int64(-1)
	for _, c := range s.Counts {
		cum += c
		if cum < prev {
			t.Fatalf("cumulative counts not monotone: %v", s.Counts)
		}
		prev = cum
	}
	if cum != s.Count {
		t.Fatalf("cumulative %d != count %d", cum, s.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c", "c", []float64{1, 2, 4})
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w % 5))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram("d", "d", []float64{0.5, 1.5})
	h.ObserveDuration(time.Second)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("1s should land in the (0.5, 1.5] bucket: %v", s.Counts)
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v should panic", bounds)
				}
			}()
			NewHistogram("bad", "bad", bounds)
		}()
	}
}

func TestDefaultBucketsAreValid(t *testing.T) {
	for _, bounds := range [][]float64{LatencyBuckets(), EDPBuckets()} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("default bounds not increasing: %v", bounds)
			}
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("b", "b", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}
