// Package obs is the observability layer of the mapper pipeline: hierarchical
// trace spans carried through context.Context, allocation-conscious
// fixed-bucket histograms, a Prometheus text-exposition registry, and
// slow-event structured logging.
//
// The package deliberately depends on nothing but the standard library, so
// every layer of the stack (engine, search, sweep, server, the CLIs) can use
// it without import cycles. Design constraints, in order:
//
//   - The evaluation hot path must stay allocation-free. Histogram.Observe is
//     a bucket walk plus three atomics (annotated //ruby:hotpath, so rubylint
//     enforces the discipline), and spans are created at batch/search
//     granularity, never per evaluation.
//   - Tracing is opt-in via the context: when no Recorder was attached with
//     WithRecorder, StartSpan returns a nil *Span whose End is a no-op, so
//     instrumented code needs no conditionals and un-traced runs pay only a
//     context lookup per span.
//   - Exposition is pull-based: the Registry holds closures and histograms
//     and renders Prometheus text format 0.0.4 on demand; nothing is pushed.
package obs
