package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultRecorderCap bounds a Recorder built with capacity <= 0. A full
// search produces a few spans per checkpoint interval plus one per
// evaluation batch, so 4096 comfortably covers minutes of activity before
// the ring starts dropping the oldest spans.
const defaultRecorderCap = 4096

// SpanRecord is one finished span. Parent is 0 for roots; Start is
// microseconds since the Recorder was created, Dur the span's duration in
// microseconds (clamped to >= 1 so zero-width spans stay visible in
// flamegraph viewers).
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Start  int64  `json:"start_us"`
	Dur    int64  `json:"dur_us"`
}

// Recorder collects finished spans in a fixed-capacity ring buffer: when the
// ring is full the oldest spans are overwritten (Dropped counts them), so a
// long run's trace is bounded and always ends with the most recent activity.
// A Recorder is safe for concurrent use.
type Recorder struct {
	ids   atomic.Uint64
	epoch time.Time

	//ruby:guards spans,next,dropped
	mu      sync.Mutex
	spans   []SpanRecord
	next    int // overwrite cursor, meaningful once the ring is full
	dropped int64
}

// NewRecorder builds a recorder holding up to capacity finished spans
// (capacity <= 0 selects a default of 4096).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultRecorderCap
	}
	return &Recorder{epoch: time.Now(), spans: make([]SpanRecord, 0, capacity)}
}

func (r *Recorder) add(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) < cap(r.spans) {
		r.spans = append(r.spans, rec)
		return
	}
	r.spans[r.next] = rec
	r.next = (r.next + 1) % len(r.spans)
	r.dropped++
}

// Spans returns a copy of the recorded spans sorted by start time (ties by
// ID, which increases in span-start order).
func (r *Recorder) Spans() []SpanRecord {
	r.mu.Lock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped reports how many spans were overwritten by newer ones.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// traceEvent is one Chrome-trace-format "complete" event; the dump loads
// directly into chrome://tracing, Perfetto and speedscope for flamegraph
// views. The span tree (ID/Parent links) rides along in args.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args traceEventArgs `json:"args"`
}

type traceEventArgs struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
}

type traceDump struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	Dropped     int64        `json:"droppedSpans,omitempty"`
}

// WriteJSON dumps the recorded spans as a Chrome-trace-format JSON object
// ({"traceEvents": [...]}), sorted by start time, with parent links in each
// event's args so the span tree can be reconstructed.
func (r *Recorder) WriteJSON(w io.Writer) error {
	spans := r.Spans()
	dump := traceDump{TraceEvents: make([]traceEvent, len(spans)), Dropped: r.Dropped()}
	for i, s := range spans {
		dump.TraceEvents[i] = traceEvent{
			Name: s.Name, Ph: "X", TS: s.Start, Dur: s.Dur, PID: 1, TID: 1,
			Args: traceEventArgs{ID: s.ID, Parent: s.Parent},
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dump)
}

// Span is one in-flight span. A nil *Span (returned by StartSpan when no
// Recorder is attached to the context) is valid: End is a no-op.
type Span struct {
	rec    *Recorder
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// End finishes the span and commits it to the recorder.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start).Microseconds()
	if dur < 1 {
		dur = 1
	}
	s.rec.add(SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start.Sub(s.rec.epoch).Microseconds(), Dur: dur,
	})
}

type ctxKey int

const (
	recorderKey ctxKey = iota
	spanKey
)

// WithRecorder attaches a recorder to the context; spans started under the
// returned context are committed to it.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if ctx == nil || r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom returns the context's recorder, or nil (nil ctx included).
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

// StartSpan opens a span named name as a child of the context's current
// span. When the context carries no Recorder (or is nil) it returns the
// context unchanged and a nil span, so callers unconditionally defer
// span.End(). The returned context carries the new span, parenting any
// spans started beneath it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	r := RecorderFrom(ctx)
	if r == nil {
		return ctx, nil
	}
	parent := uint64(0)
	if ps, _ := ctx.Value(spanKey).(*Span); ps != nil {
		parent = ps.id
	}
	s := &Span{rec: r, id: r.ids.Add(1), parent: parent, name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey, s), s
}

// Event records an instantaneous span (a point-in-time marker such as a
// checkpoint save or resume) under the context's current span.
func Event(ctx context.Context, name string) {
	_, s := StartSpan(ctx, name)
	s.End()
}
