package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("ruby_evaluations_total", "Total evaluations.", func() float64 { return 42 })
	r.Gauge("ruby_up", "Liveness.", func() float64 { return 1 })
	r.GaugeVec("ruby_jobs", "Jobs by status.", "status", func() []Sample {
		return []Sample{{LabelValue: "running", Value: 2}, {LabelValue: "done", Value: 3}}
	})
	h := NewHistogram("ruby_eval_latency_seconds", "Evaluation latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	r.Histogram(h)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP ruby_evaluations_total Total evaluations.",
		"# TYPE ruby_evaluations_total counter",
		"ruby_evaluations_total 42",
		"# TYPE ruby_up gauge",
		"ruby_up 1",
		`ruby_jobs{status="done"} 3`,
		`ruby_jobs{status="running"} 2`,
		"# TYPE ruby_eval_latency_seconds histogram",
		`ruby_eval_latency_seconds_bucket{le="0.001"} 1`,
		`ruby_eval_latency_seconds_bucket{le="0.01"} 2`,
		`ruby_eval_latency_seconds_bucket{le="+Inf"} 3`,
		"ruby_eval_latency_seconds_sum 5.0055",
		"ruby_eval_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Labeled samples must be sorted regardless of producer order.
	if strings.Index(out, `status="done"`) > strings.Index(out, `status="running"`) {
		t.Error("gauge vec samples not sorted by label value")
	}
}

// TestWriteTextWellFormed line-checks the exposition: every non-comment line
// is "name[{label}] value" with a parseable value, and every series is
// preceded by its HELP/TYPE comments.
func TestWriteTextWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "with\nnewline and back\\slash", func() float64 { return 1 })
	h := NewHistogram("lat", "lat", LatencyBuckets())
	h.Observe(0.2)
	r.Histogram(h)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Errorf("malformed comment line %q", line)
			}
			if strings.ContainsAny(parts[3], "\n") {
				t.Errorf("unescaped newline in %q", line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.Counter("x", "x", func() float64 { return 0 })
}
