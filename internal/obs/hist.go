package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram safe for the evaluation hot path:
// bounds are immutable after construction, counts are lock-free atomics, and
// the running sum is a CAS loop on the float's bits. Observe performs no
// allocation and takes no lock, so concurrent search workers can feed one
// histogram without contention beyond the cache line.
type Histogram struct {
	name, help string
	bounds     []float64 // strictly increasing upper bounds; +Inf is implicit
	counts     []atomic.Int64
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// NewHistogram builds a histogram named name (a Prometheus metric name) over
// the given upper bucket bounds, which must be strictly increasing; an
// implicit +Inf bucket catches the overflow. It panics on invalid bounds —
// bucket layouts are compile-time decisions, not runtime inputs.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing at %d", name, i))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		name: name, help: help, bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
//
//ruby:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
//
//ruby:hotpath
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); the last entry is the +Inf overflow bucket.
// Reads are individually atomic, not a consistent cut — fine for monitoring.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot reads the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Bounds: h.bounds, // immutable; shared
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// LatencyBuckets returns the default latency bucket bounds in seconds:
// exponential 1µs .. 10s in 1-2.5-5 steps, sized for both single model
// evaluations (~1µs) and whole searches (seconds).
func LatencyBuckets() []float64 {
	var b []float64
	for _, mag := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1} {
		b = append(b, mag, 2.5*mag, 5*mag)
	}
	return append(b, 10)
}

// EDPBuckets returns the default objective-value bucket bounds: one decade
// per bucket from 1e3 to 1e18, covering toy problems through full-network
// energy-delay products.
func EDPBuckets() []float64 {
	var b []float64
	for e := 3; e <= 18; e++ {
		b = append(b, math.Pow(10, float64(e)))
	}
	return b
}
