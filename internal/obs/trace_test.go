package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestStartSpanWithoutRecorderIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "root")
	if s != nil {
		t.Fatal("expected nil span without a recorder")
	}
	if ctx2 != ctx {
		t.Fatal("context should pass through unchanged without a recorder")
	}
	s.End() // must not panic
	Event(ctx, "marker")
}

func TestSpanTree(t *testing.T) {
	rec := NewRecorder(16)
	ctx := WithRecorder(context.Background(), rec)

	ctx, root := StartSpan(ctx, "suite")
	lctx, layer := StartSpan(ctx, "layer")
	_, batch := StartSpan(lctx, "eval-batch")
	batch.End()
	Event(lctx, "checkpoint:save")
	layer.End()
	_, sib := StartSpan(ctx, "layer2")
	sib.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["suite"].Parent != 0 {
		t.Errorf("suite should be a root, parent=%d", byName["suite"].Parent)
	}
	if byName["layer"].Parent != byName["suite"].ID {
		t.Errorf("layer parent = %d, want suite id %d", byName["layer"].Parent, byName["suite"].ID)
	}
	if byName["eval-batch"].Parent != byName["layer"].ID {
		t.Errorf("eval-batch parent = %d, want layer id %d", byName["eval-batch"].Parent, byName["layer"].ID)
	}
	if byName["checkpoint:save"].Parent != byName["layer"].ID {
		t.Errorf("event parent = %d, want layer id %d", byName["checkpoint:save"].Parent, byName["layer"].ID)
	}
	if byName["layer2"].Parent != byName["suite"].ID {
		t.Errorf("sibling parent = %d, want suite id %d", byName["layer2"].Parent, byName["suite"].ID)
	}
	for _, s := range spans {
		if s.Dur < 1 {
			t.Errorf("span %s has dur %d, want >= 1", s.Name, s.Dur)
		}
	}
}

func TestRecorderRingOverflow(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 10; i++ {
		Event(ctx, "e")
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped())
	}
	// The ring keeps the most recent spans: IDs 7..10.
	for _, s := range spans {
		if s.ID <= 6 {
			t.Errorf("old span id %d survived; ring should keep the newest", s.ID)
		}
	}
}

func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	rec := NewRecorder(8)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "search:random")
	Event(ctx, "eval-batch")
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				ID     uint64 `json:"id"`
				Parent uint64 `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(dump.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(dump.TraceEvents))
	}
	for _, e := range dump.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %s phase %q, want X", e.Name, e.Ph)
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	rec := NewRecorder(64)
	root := WithRecorder(context.Background(), rec)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				_, s := StartSpan(root, "worker")
				s.End()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := int64(len(rec.Spans())) + rec.Dropped(); got != 800 {
		t.Fatalf("recorded+dropped = %d, want 800", got)
	}
}
