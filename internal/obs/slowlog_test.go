package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestSlowLogThresholds(t *testing.T) {
	var buf bytes.Buffer
	l := &SlowLog{
		Logger:          slog.New(slog.NewTextHandler(&buf, nil)),
		EvalThreshold:   time.Millisecond,
		SearchThreshold: time.Second,
	}

	l.Eval(500 * time.Microsecond) // below threshold
	l.Search(500*time.Millisecond, 10, 5)
	if buf.Len() != 0 {
		t.Fatalf("fast events logged: %s", buf.String())
	}

	l.Eval(2 * time.Millisecond)
	l.Search(3*time.Second, 100, 50)
	out := buf.String()
	if !strings.Contains(out, "slow evaluation") || !strings.Contains(out, "slow search") {
		t.Fatalf("slow events missing: %s", out)
	}
	if !strings.Contains(out, "evaluated=100") {
		t.Fatalf("search counters missing: %s", out)
	}
}

func TestSlowLogDisabled(t *testing.T) {
	var nilLog *SlowLog
	nilLog.Eval(time.Hour) // nil receiver is a no-op
	nilLog.Search(time.Hour, 1, 1)

	var buf bytes.Buffer
	zero := &SlowLog{Logger: slog.New(slog.NewTextHandler(&buf, nil))}
	zero.Eval(time.Hour) // zero thresholds disable the checks
	zero.Search(time.Hour, 1, 1)
	if buf.Len() != 0 {
		t.Fatalf("disabled slowlog produced output: %s", buf.String())
	}
}
