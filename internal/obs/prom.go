package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// TextContentType is the Prometheus text exposition content type the
// registry renders (version 0.0.4, the format every Prometheus server
// scrapes).
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// Sample is one labeled gauge value (a single label dimension, e.g.
// status="running").
type Sample struct {
	LabelValue string
	Value      float64
}

// metricEntry is one registered metric; exactly one of value, series or hist
// is set.
type metricEntry struct {
	name, help, typ string
	value           func() float64
	label           string
	series          func() []Sample
	hist            *Histogram
}

// Registry renders registered metrics in Prometheus text format. Metrics are
// pull-based: counters and gauges are closures read at exposition time,
// histograms are read via Snapshot. Registration order is exposition order.
type Registry struct {
	//ruby:guards metrics,names
	mu      sync.Mutex
	metrics []metricEntry
	names   map[string]bool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{names: map[string]bool{}} }

func (r *Registry) add(e metricEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic(fmt.Sprintf("obs: metric %s registered twice", e.name))
	}
	r.names[e.name] = true
	r.metrics = append(r.metrics, e)
}

// Counter registers a monotonically non-decreasing value.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.add(metricEntry{name: name, help: help, typ: "counter", value: fn})
}

// Gauge registers a point-in-time value.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(metricEntry{name: name, help: help, typ: "gauge", value: fn})
}

// GaugeVec registers a family of gauges distinguished by one label. The
// samples are sorted by label value at exposition time, so output is
// deterministic regardless of the closure's iteration order.
func (r *Registry) GaugeVec(name, help, label string, fn func() []Sample) {
	r.add(metricEntry{name: name, help: help, typ: "gauge", label: label, series: fn})
}

// Histogram registers a histogram under its own name and help text.
func (r *Registry) Histogram(h *Histogram) {
	r.add(metricEntry{name: h.name, help: h.help, typ: "histogram", hist: h})
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteText renders every registered metric in Prometheus text format 0.0.4.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]metricEntry, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, escapeHelp(m.help), m.name, m.typ); err != nil {
			return err
		}
		switch {
		case m.value != nil:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.value())); err != nil {
				return err
			}
		case m.series != nil:
			samples := m.series()
			sort.Slice(samples, func(i, j int) bool { return samples[i].LabelValue < samples[j].LabelValue })
			for _, s := range samples {
				if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", m.name, m.label, escapeLabel(s.LabelValue), formatFloat(s.Value)); err != nil {
					return err
				}
			}
		case m.hist != nil:
			if err := writeHistogram(w, m.hist.Snapshot()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram: cumulative _bucket series up to
// +Inf, then _sum and _count.
func writeHistogram(w io.Writer, s HistogramSnapshot) error {
	cum := int64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", s.Name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", s.Name, formatFloat(s.Sum), s.Name, s.Count); err != nil {
		return err
	}
	return nil
}
