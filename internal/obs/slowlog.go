package obs

import (
	"log/slog"
	"time"
)

// SlowLog emits structured warnings for operations that cross a latency
// threshold — the "why is the mapper slow" first responder. A nil *SlowLog
// or a zero threshold disables the corresponding check, so instrumented code
// calls it unconditionally. Threshold comparisons are branch-cheap; the
// slog machinery only runs for genuinely slow events.
type SlowLog struct {
	// Logger receives the warnings (default slog.Default()).
	Logger *slog.Logger
	// EvalThreshold flags single model evaluations at or above this
	// duration. Note the engine samples evaluation latency, so isolated
	// slow evaluations between sample points are not seen.
	EvalThreshold time.Duration
	// SearchThreshold flags completed searches at or above this wall time.
	SearchThreshold time.Duration
}

func (l *SlowLog) logger() *slog.Logger {
	if l.Logger != nil {
		return l.Logger
	}
	return slog.Default()
}

// Eval reports one sampled evaluation latency.
func (l *SlowLog) Eval(d time.Duration) {
	if l == nil || l.EvalThreshold <= 0 || d < l.EvalThreshold {
		return
	}
	l.logger().Warn("slow evaluation",
		slog.Duration("latency", d),
		slog.Duration("threshold", l.EvalThreshold))
}

// Search reports one completed search's wall time and counters.
func (l *SlowLog) Search(wall time.Duration, evaluated, valid int64) {
	if l == nil || l.SearchThreshold <= 0 || wall < l.SearchThreshold {
		return
	}
	l.logger().Warn("slow search",
		slog.Duration("wall", wall),
		slog.Duration("threshold", l.SearchThreshold),
		slog.Int64("evaluated", evaluated),
		slog.Int64("valid", valid))
}
