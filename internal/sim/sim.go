// Package sim is an execution-driven reference simulator: it literally walks
// the loop nest a mapping describes — remainder tiles, partial spatial
// strips and all — tracking the tile resident in every buffer and counting
// tile-change (fill) events and elapsed steps.
//
// Its purpose is differential validation of the analytical model in
// internal/nest, in the spirit of Timeloop's validation against cycle
// simulators: latency must match the model exactly; fill counts must match
// exactly for perfect mappings and never exceed the model's (the model
// conservatively charges full-size tiles and full spatial fanout at
// remainder boundaries, the simulator observes the truth).
//
// The walk enumerates the full temporal iteration space, so it is only
// feasible for small workloads; Options.MaxSteps guards against misuse.
package sim

import (
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// Options bounds a simulation.
type Options struct {
	// MaxSteps aborts simulations whose temporal iteration space exceeds
	// this many leaf steps (default 2,000,000).
	MaxSteps int64
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 2_000_000
	}
	return o
}

// Result is the simulation outcome.
type Result struct {
	// Cycles is the number of temporal leaf steps (spatial loops execute in
	// parallel; remainder strips finish inside the full strips' time).
	Cycles float64
	// Fills[level][tensorName] counts tile-change events at that storage
	// level, weighted by the instances active when the change occurs.
	Fills []map[string]float64
	// Steps is the raw leaf count (== Cycles; kept separate for clarity in
	// tests).
	Steps int64
}

// loop is one expanded loop of the nest: a (slot, dimension) pair with a
// nominal subtile size.
type loop struct {
	slotIdx int
	level   int
	dim     string
	spatial bool
	sub     int // nominal inner tile size along dim (chain Cum[slot+1])
	nominal int // nominal trip count (1-trip loops are dropped)
}

// Simulator prepares the loop nest for repeated runs.
type Simulator struct {
	work  *workload.Workload
	arch  *arch.Arch
	slots []mapping.Slot
	opt   Options
}

// New builds a simulator.
func New(w *workload.Workload, a *arch.Arch, opt Options) (*Simulator, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{work: w, arch: a, slots: mapping.Slots(a), opt: opt.withDefaults()}, nil
}

// trackedTensor is one (storage level, tensor) pair whose resident tile the
// simulator watches.
type trackedTensor struct {
	level  int
	tensor string
	// relevantLoops indexes the temporal loops (into the loop list) whose
	// indices identify the tile; any index change evicts the tile.
	relevantLoops []int
	// spatialAbove indexes the spatial loops above the level's boundary;
	// the product of their active trips weights each fill event.
	spatialAbove []int

	lastKey []int
	primed  bool
	fills   float64
}

// Run simulates mapping m.
func (s *Simulator) Run(m *mapping.Mapping) (*Result, error) {
	chains, err := m.Chains(s.work, s.slots)
	if err != nil {
		return nil, err
	}
	if err := m.ValidatePerms(s.work, s.arch); err != nil {
		return nil, err
	}

	// Expand the loop nest, outermost-first. Temporal slots expand in
	// permutation order; spatial slots in declaration order.
	var loops []loop
	var totalSteps int64 = 1
	for _, sl := range s.slots {
		dims := s.work.DimNames()
		if sl.Kind == mapping.Temporal {
			dims = m.Perms[sl.Level]
		}
		for _, d := range dims {
			ch := chains[d]
			tr := ch.Trips(sl.Index)
			if tr == 1 {
				continue
			}
			loops = append(loops, loop{
				slotIdx: sl.Index, level: sl.Level, dim: d,
				spatial: sl.Spatial(), sub: ch.Cum[sl.Index+1], nominal: tr,
			})
			if !sl.Spatial() {
				totalSteps *= int64(tr)
				if totalSteps > s.opt.MaxSteps {
					return nil, fmt.Errorf("sim: iteration space exceeds %d steps", s.opt.MaxSteps)
				}
			}
		}
	}

	// Track every (kept level, tensor) pair below DRAM, plus DRAM itself
	// (whose fills count streaming re-reads of the workload's tensors).
	kept := make([]map[workload.Role]bool, len(s.arch.Levels))
	for li := range s.arch.Levels {
		kept[li] = m.KeptRoles(s.arch, li)
	}
	var tracked []*trackedTensor
	for li := range s.arch.Levels {
		boundary := mapping.FirstSlotOfLevel(s.slots, li)
		for ti := range s.work.Tensors {
			t := &s.work.Tensors[ti]
			if !kept[li][t.Role] {
				continue
			}
			tt := &trackedTensor{level: li, tensor: t.Name}
			for loopIdx, l := range loops {
				if l.slotIdx >= boundary {
					continue
				}
				if l.spatial {
					tt.spatialAbove = append(tt.spatialAbove, loopIdx)
				} else if t.Relevant(l.dim) {
					tt.relevantLoops = append(tt.relevantLoops, loopIdx)
				}
			}
			tracked = append(tracked, tt)
		}
	}

	// The walk. chunk[d] is the current extent of dimension d at the
	// current nesting depth; idx[i] is loop i's current index; active[i] is
	// a spatial loop's current active trip count.
	chunk := make(map[string]int, len(s.work.Dims))
	for _, d := range s.work.Dims {
		chunk[d.Name] = d.Bound
	}
	idx := make([]int, len(loops))
	active := make([]int, len(loops))

	res := &Result{Fills: make([]map[string]float64, len(s.arch.Levels))}
	for li := range res.Fills {
		res.Fills[li] = make(map[string]float64)
	}

	leaf := func() {
		res.Steps++
		for _, tt := range tracked {
			changed := !tt.primed
			if tt.primed {
				for ki, li := range tt.relevantLoops {
					if tt.lastKey[ki] != idx[li] {
						changed = true
						break
					}
				}
			}
			if !changed {
				continue
			}
			if tt.lastKey == nil {
				tt.lastKey = make([]int, len(tt.relevantLoops))
			}
			for ki, li := range tt.relevantLoops {
				tt.lastKey[ki] = idx[li]
			}
			tt.primed = true
			weight := 1.0
			for _, li := range tt.spatialAbove {
				weight *= float64(active[li])
			}
			tt.fills += weight
		}
	}

	var rec func(li int)
	rec = func(li int) {
		if li == len(loops) {
			leaf()
			return
		}
		l := loops[li]
		parent := chunk[l.dim]
		if l.spatial {
			// Parallel: elapsed time follows the largest strip; remember
			// how many instances are active for fill weighting.
			trips := ceilDiv(parent, l.sub)
			active[li] = trips
			sub := l.sub
			if parent < sub {
				sub = parent
			}
			chunk[l.dim] = sub
			rec(li + 1)
			chunk[l.dim] = parent
			return
		}
		trips := ceilDiv(parent, l.sub)
		for i := 0; i < trips; i++ {
			c := l.sub
			if rem := parent - i*l.sub; rem < c {
				c = rem
			}
			idx[li] = i
			chunk[l.dim] = c
			rec(li + 1)
		}
		idx[li] = 0
		chunk[l.dim] = parent
	}
	rec(0)

	for _, tt := range tracked {
		res.Fills[tt.level][tt.tensor] = tt.fills
	}
	res.Cycles = float64(res.Steps)
	return res, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
