package sim

import (
	"math/rand"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

// smallArch is a three-level hierarchy small enough for exhaustive walks but
// rich enough to exercise spatial fanout and intermediate buffering.
func smallArch() *arch.Arch {
	a := &arch.Arch{
		Name: "sim-test",
		Levels: []arch.Level{
			{Name: "DRAM"},
			{
				Name: "GLB", Capacity: 4096,
				Fanout: arch.Network{FanoutX: 3, FanoutY: 2, Multicast: true},
			},
			{Name: "PE", Capacity: 64},
		},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

func TestSimPaperToy(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	s, err := New(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	res, err := s.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 17 {
		t.Errorf("sim cycles = %f, want 17", res.Cycles)
	}
	// The GLB tile of both tensors never changes (one fill each).
	if res.Fills[1]["X"] != 1 || res.Fills[1]["Z"] != 1 {
		t.Errorf("GLB fills = %v", res.Fills[1])
	}
}

func TestSimStepGuard(t *testing.T) {
	w := workload.MustVector1D("big", 1000)
	a := arch.ToyGLB(2, 4096)
	s, err := New(w, a, Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	m := mapping.Uniform(w, a, 0)
	if _, err := s.Run(m); err == nil {
		t.Error("step guard did not trip")
	}
}

// TestSimCyclesMatchModel differentially validates latency: for hundreds of
// random mappings from every mapspace kind, the literal walk and the
// analytical recursion must agree exactly.
func TestSimCyclesMatchModel(t *testing.T) {
	workloadsUnderTest := []*workload.Workload{
		workload.MustMatmul("mm", 6, 5, 4),
		workload.MustConv2D(workload.Conv2DParams{N: 1, M: 4, C: 3, P: 6, Q: 5, R: 3, S: 2}),
	}
	a := smallArch()
	rng := rand.New(rand.NewSource(21))
	for _, w := range workloadsUnderTest {
		ev := nest.MustEvaluator(w, a)
		s, err := New(w, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range mapspace.Kinds {
			sp := mapspace.New(w, a, kind, mapspace.Constraints{})
			checked := 0
			for i := 0; i < 400 && checked < 60; i++ {
				m := sp.Sample(rng)
				c := ev.Evaluate(m)
				if !c.Valid {
					continue
				}
				checked++
				res, err := s.Run(m)
				if err != nil {
					t.Fatal(err)
				}
				if res.Cycles != c.Cycles {
					t.Fatalf("%s/%v: sim cycles %g != model %g\nfactors: %v",
						w.Name, kind, res.Cycles, c.Cycles, m.Factors)
				}
			}
			if checked < 20 {
				t.Fatalf("%s/%v: only %d valid samples", w.Name, kind, checked)
			}
		}
	}
}

// TestSimFillsMatchModelPerfect: for perfect mappings the model's
// fills x delivered-copies must equal the simulator's observed tile-change
// counts exactly, at every kept level of every tensor.
func TestSimFillsMatchModelPerfect(t *testing.T) {
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 4, C: 3, P: 6, Q: 5, R: 3, S: 2})
	a := smallArch()
	ev := nest.MustEvaluator(w, a)
	s, err := New(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp := mapspace.New(w, a, mapspace.PFM, mapspace.Constraints{})
	rng := rand.New(rand.NewSource(22))
	checked := 0
	for i := 0; i < 500 && checked < 80; i++ {
		m := sp.Sample(rng)
		c := ev.Evaluate(m)
		if !c.Valid {
			continue
		}
		checked++
		res, err := s.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		links, err := ev.Links(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, ls := range links {
			model := ls.Fills * ls.DelivMult
			simFills := res.Fills[ls.Child][ls.Tensor]
			if model != simFills {
				t.Fatalf("tensor %s level %d: model fills %g != sim %g\nfactors %v perms %v",
					ls.Tensor, ls.Child, model, simFills, m.Factors, m.Perms)
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d valid samples", checked)
	}
}

// TestSimFillsBoundedByModelImperfect: for imperfect mappings the model's
// full-fanout, full-trip accounting is a conservative upper bound on the
// simulator's boundary-aware counts.
func TestSimFillsBoundedByModelImperfect(t *testing.T) {
	w := workload.MustMatmul("mm", 9, 7, 5)
	a := smallArch()
	ev := nest.MustEvaluator(w, a)
	s, err := New(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{})
	rng := rand.New(rand.NewSource(23))
	checked, strict := 0, 0
	for i := 0; i < 800 && checked < 120; i++ {
		m := sp.Sample(rng)
		c := ev.Evaluate(m)
		if !c.Valid {
			continue
		}
		checked++
		res, err := s.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		links, err := ev.Links(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, ls := range links {
			model := ls.Fills * ls.DelivMult
			simFills := res.Fills[ls.Child][ls.Tensor]
			if simFills > model+1e-9 {
				t.Fatalf("tensor %s level %d: sim fills %g exceed model %g\nfactors %v",
					ls.Tensor, ls.Child, simFills, model, m.Factors)
			}
			if simFills < model {
				strict++
			}
		}
	}
	if checked < 40 {
		t.Fatalf("only %d valid samples", checked)
	}
	if strict == 0 {
		t.Error("expected some mappings where boundary strips make the sim strictly cheaper")
	}
}

// TestSimPartialStripWeighting pins the boundary-strip behavior with a
// hand-computed case: D=27 across 14 PEs has strips of 14 and 13 instances.
func TestSimPartialStripWeighting(t *testing.T) {
	w := workload.MustVector1D("d27", 27)
	a := arch.ToyGLB(14, 512)
	s, err := New(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 2, 14}
	res, err := s.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 2 {
		t.Errorf("cycles = %f, want 2", res.Cycles)
	}
	// X's PE-side tile changes twice... X is kept at the GLB only here, so
	// check the GLB tile: never changes.
	if res.Fills[1]["X"] != 1 {
		t.Errorf("GLB fills = %v", res.Fills[1])
	}
}

func TestSimRejectsInvalidMappings(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	s, err := New(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 4, 6} // incomplete chain
	if _, err := s.Run(m); err == nil {
		t.Error("invalid chain accepted")
	}
}

// TestSimDeepHierarchy cross-checks the four-level Eyeriss-v2-like preset:
// six-slot chains with remainders at several depths must still match the
// model's latency exactly.
func TestSimDeepHierarchy(t *testing.T) {
	a := arch.EyerissV2Like(3, 2, 64)
	w := workload.MustMatmul("mm", 10, 9, 8)
	ev := nest.MustEvaluator(w, a)
	s, err := New(w, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	sp := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{})
	checked := 0
	for i := 0; i < 1500 && checked < 60; i++ {
		m := sp.Sample(rng)
		c := ev.Evaluate(m)
		if !c.Valid {
			continue
		}
		checked++
		res, err := s.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != c.Cycles {
			t.Fatalf("deep hierarchy: sim %g != model %g (factors %v)", res.Cycles, c.Cycles, m.Factors)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d valid samples", checked)
	}
}
