package exp

import (
	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/stats"
	"ruby/internal/workloads"
)

// Table1Sizes are the rank-1 tensor sizes tabulated (the paper sweeps 3 to
// 4096).
var Table1Sizes = []int{3, 7, 9, 12, 64, 100, 127, 256, 1000, 2048, 4096}

// Table1 reproduces Table I: the number of tiling-factor combinations per
// mapspace formulation for a single-dimension tensor mapped onto a two-level
// memory hierarchy with a spatial fanout of 9 between the levels.
//
// The expected shape: PFM stays tiny (divisor counts), Ruby and Ruby-T grow
// dramatically with tensor size, and Ruby-S stays manageable because the
// fanout cap of 9 prunes every branch with a larger spatial factor.
func Table1(cfg Config) (*Report, error) {
	a := arch.ToyLinear(9, 512)
	rep := &Report{Name: "Table I: mapspace size, rank-1 tensor, 2-level hierarchy, fanout 9"}
	tb := &stats.Table{
		Title:   "tiling combinations per formulation",
		Headers: []string{"D", "PFM", "Ruby-S", "Ruby-T", "Ruby"},
	}
	for _, d := range Table1Sizes {
		w := workloads.Rank1(d)
		row := []any{d}
		for _, kind := range []mapspace.Kind{mapspace.PFM, mapspace.RubyS, mapspace.RubyT, mapspace.Ruby} {
			sp := mapspace.New(w, a, kind, mapspace.Constraints{FixedPerms: true})
			row = append(row, sp.ChainCount("X"))
		}
		tb.AddRow(row...)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notef("Ruby-S offers the favorable trade-off: bounded growth under the fanout cap")
	return rep, nil
}
