package exp

import (
	"context"
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
	"ruby/internal/stats"
	"ruby/internal/workloads"
)

// HandcraftedAlexNetConv2 builds the strip-mined mapping of Section IV-B
// (Fig. 9a): output rows map across the 14 PE columns in strips (14 + 13),
// filter rows and a pair of input channels fill the 12 PE rows, filter
// columns iterate inside each PE, and the remaining loops tile temporally in
// the GLB with output channels split across DRAM so activations and partial
// sums fit the 128 KiB buffer.
//
// Strip mining is inherently imperfect (27 = 14 + 13): handcrafted mappings
// could always express remainders — Ruby merely lets the automatic mapper do
// the same.
func HandcraftedAlexNetConv2(a *arch.Arch) *mapping.Mapping {
	w := workloads.AlexNetConv2()
	m := mapping.Uniform(w, a, 1)
	// Slots: T(DRAM), T(GLB), SY(12), SX(14), T(PE).
	m.Factors["M"] = []int{12, 2, 1, 1, 4} // 4 filters resident per PE
	m.Factors["C"] = []int{1, 24, 2, 1, 1}
	m.Factors["P"] = []int{1, 27, 1, 1, 1}
	m.Factors["Q"] = []int{1, 2, 1, 14, 1} // strip-mined: ceil(27/14) = 2 passes
	m.Factors["R"] = []int{1, 1, 5, 1, 1}
	m.Factors["S"] = []int{1, 1, 1, 1, 5}
	// GLB loop order: P and Q innermost so the weight tiles resident in the
	// PE scratchpads are reused across the whole feature map; the reduction
	// (C) stays inside M so partial sums accumulate in the GLB.
	m.Perms[1] = []string{"M", "C", "P", "Q", "N", "R", "S"}
	return m
}

// Fig9 reproduces the Fig. 9 study: layer 2 of AlexNet on the baseline
// Eyeriss-like architecture, comparing the handcrafted strip-mined mapping
// against the best PFM and Ruby-S mappings found by random search.
//
//ruby:ctxroot
func Fig9(cfg Config) (*Report, error) {
	return fig9(context.Background(), cfg)
}

func fig9(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	a := arch.EyerissLike(14, 12, 128)
	w := workloads.AlexNetConv2()
	ev, err := nest.NewEvaluator(w, a)
	if err != nil {
		return nil, err
	}
	eng := cfg.newEngine(ev)

	hand := ev.Evaluate(HandcraftedAlexNetConv2(a))
	if !hand.Valid {
		return nil, fmt.Errorf("exp: fig9: handcrafted mapping invalid: %s", hand.Reason)
	}

	best := func(kind mapspace.Kind, cons mapspace.Constraints) (nest.Cost, error) {
		var b nest.Cost
		for run := 0; run < cfg.Runs; run++ {
			sp := mapspace.New(w, a, kind, cons)
			r := search.Random(ctx, sp, eng, cfg.seeded(run))
			if r.Best != nil && (!b.Valid || r.BestCost.EDP < b.EDP) {
				b = r.BestCost
			}
		}
		if !b.Valid {
			if ctx != nil && ctx.Err() != nil {
				return b, ctx.Err()
			}
			return b, fmt.Errorf("exp: fig9: no valid %v mapping", kind)
		}
		return b, nil
	}
	cons := mapspace.EyerissRowStationary(w)
	strict := mapspace.EyerissStrictRowStationary(w)
	pfm, err := best(mapspace.PFM, cons)
	if err != nil {
		return nil, err
	}
	rubyS, err := best(mapspace.RubyS, cons)
	if err != nil {
		return nil, err
	}
	pfmStrict, err := best(mapspace.PFM, strict)
	if err != nil {
		return nil, err
	}
	rubySStrict, err := best(mapspace.RubyS, strict)
	if err != nil {
		return nil, err
	}

	rep := &Report{Name: "Fig 9: AlexNet layer 2 on Eyeriss-like 14x12"}
	tb := &stats.Table{
		Title:   "mapping comparison",
		Headers: []string{"mapping", "utilization", "cycles", "energy (pJ)", "EDP", "EDP vs PFM"},
	}
	add := func(name string, c nest.Cost) {
		tb.AddRow(name, c.Utilization, c.Cycles, c.EnergyPJ, c.EDP, c.EDP/pfm.EDP)
	}
	add("handcrafted (strip-mined)", hand)
	add("PFM (search)", pfm)
	add("Ruby-S (search)", rubyS)
	add("PFM (strict RS)", pfmStrict)
	add("Ruby-S (strict RS)", rubySStrict)
	rep.Tables = append(rep.Tables, tb)
	rep.Notef("paper: handcrafted 85%% util, PFM 71%% util; Ruby-S matches handcrafted util with 16%% lower EDP")
	rep.Notef("measured: Ruby-S EDP vs handcrafted %+.1f%%, vs PFM %+.1f%%",
		-100*stats.Improvement(hand.EDP, rubyS.EDP), -100*stats.Improvement(pfm.EDP, rubyS.EDP))
	rep.Notef("strict row-stationary (paper's allocation arithmetic): PFM util %.1f%%, Ruby-S util %.1f%%, Ruby-S EDP %+.1f%% vs PFM",
		100*pfmStrict.Utilization, 100*rubySStrict.Utilization,
		-100*stats.Improvement(pfmStrict.EDP, rubySStrict.EDP))
	return rep, nil
}
