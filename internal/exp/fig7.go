package exp

import (
	"context"
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/plot"
	"ruby/internal/search"
	"ruby/internal/stats"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// fig7Checkpoints are the evaluation counts at which the convergence curves
// are sampled (the paper plots best-EDP-so-far over the first 10,000
// evaluated mappings).
var fig7Checkpoints = []int64{100, 300, 1000, 3000, 10000}

// fig7Scenario describes one subfigure of Fig. 7.
type fig7Scenario struct {
	name string
	work *workload.Workload
	pes  int
	cons mapspace.Constraints
}

func fig7Scenarios(variant byte) (fig7Scenario, error) {
	switch variant {
	case 'a':
		return fig7Scenario{"Fig 7a: matmul 100x100, 5 PEs (aligned)", workloads.Fig7Matmul(), 5, mapspace.Constraints{}}, nil
	case 'b':
		return fig7Scenario{"Fig 7b: matmul 100x100, 16 PEs (mismatched)", workloads.Fig7Matmul(), 16, mapspace.Constraints{}}, nil
	case 'c':
		return fig7Scenario{"Fig 7c: conv 3x3x64 over 28x28x64, 8 PEs (aligned), C/M spatial",
			workloads.Fig7Conv(), 8, mapspace.Constraints{SpatialX: []string{"C", "M"}}}, nil
	case 'd':
		return fig7Scenario{"Fig 7d: conv 3x3x64 over 28x28x64, 15 PEs (misaligned), C/M spatial",
			workloads.Fig7Conv(), 15, mapspace.Constraints{SpatialX: []string{"C", "M"}}}, nil
	default:
		return fig7Scenario{}, fmt.Errorf("exp: unknown Fig 7 variant %q", variant)
	}
}

// Fig7Result carries the structured convergence data behind one subfigure.
type Fig7Result struct {
	Scenario string
	// BestEDP[kind][checkpoint index] is the mean best-EDP-so-far after
	// that many evaluated mappings, averaged over runs (0 when no valid
	// mapping had been found by then in any run).
	BestEDP map[mapspace.Kind][]float64
	// FinalEDP[kind] is the mean best EDP at the full budget.
	FinalEDP map[mapspace.Kind]float64
	// ChainCount[kind] is the tiling-mapspace size.
	ChainCount map[mapspace.Kind]uint64
}

// Fig7 reproduces one subfigure of Fig. 7: best-EDP-so-far versus the number
// of evaluated mappings for the PFM, Ruby, Ruby-S and Ruby-T mapspaces on a
// toy linear-array architecture (1 KiB scratchpad per PE), averaged over
// cfg.Runs random-search runs.
//
//ruby:ctxroot
func Fig7(variant byte, cfg Config) (*Report, error) {
	return fig7(context.Background(), variant, cfg)
}

func fig7(ctx context.Context, variant byte, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sc, err := fig7Scenarios(variant)
	if err != nil {
		return nil, err
	}
	a := arch.ToyLinear(sc.pes, 512)
	ev, err := nest.NewEvaluator(sc.work, a)
	if err != nil {
		return nil, err
	}
	eng := cfg.newEngine(ev)

	budget := cfg.Opt.MaxEvaluations
	if budget <= 0 || budget > 10000 {
		budget = 10000
	}
	res := Fig7Result{
		Scenario:   sc.name,
		BestEDP:    make(map[mapspace.Kind][]float64),
		FinalEDP:   make(map[mapspace.Kind]float64),
		ChainCount: make(map[mapspace.Kind]uint64),
	}
	for _, kind := range mapspace.Kinds {
		sp := mapspace.New(sc.work, a, kind, sc.cons)
		res.ChainCount[kind] = sp.TotalChainCount()
		sums := make([]float64, len(fig7Checkpoints))
		counts := make([]int, len(fig7Checkpoints))
		var finalSum float64
		finals := 0
		for run := 0; run < cfg.Runs; run++ {
			opt := cfg.seeded(run)
			opt.MaxEvaluations = budget
			opt.ConsecutiveNoImprove = 0
			opt.KeepTrace = true
			r := search.Random(ctx, sp, eng, opt)
			for ci, n := range fig7Checkpoints {
				if n > budget {
					continue
				}
				if edp, ok := r.BestEDPAt(n); ok {
					sums[ci] += edp
					counts[ci]++
				}
			}
			if r.Best != nil {
				finalSum += r.BestCost.EDP
				finals++
			}
		}
		curve := make([]float64, len(fig7Checkpoints))
		for ci := range curve {
			if counts[ci] > 0 {
				curve[ci] = sums[ci] / float64(counts[ci])
			}
		}
		res.BestEDP[kind] = curve
		if finals > 0 {
			res.FinalEDP[kind] = finalSum / float64(finals)
		}
	}

	rep := &Report{Name: sc.name}
	tb := &stats.Table{
		Title:   "mean best EDP (pJ*cycles) after N evaluated mappings",
		Headers: []string{"mapspace", "size"},
	}
	for _, n := range fig7Checkpoints {
		if n <= budget {
			tb.Headers = append(tb.Headers, fmt.Sprintf("N=%d", n))
		}
	}
	for _, kind := range mapspace.Kinds {
		row := []any{kind.String(), fmt.Sprintf("%d", res.ChainCount[kind])}
		for ci, n := range fig7Checkpoints {
			if n > budget {
				continue
			}
			v := res.BestEDP[kind][ci]
			if v == 0 {
				row = append(row, "-")
			} else {
				row = append(row, v)
			}
		}
		tb.AddRow(row...)
	}
	rep.Tables = append(rep.Tables, tb)

	chart := plot.Chart{
		Title: sc.name, XLabel: "evaluated mappings", YLabel: "best EDP (pJ*cycles)",
		Kind: plot.Line, LogX: true, LogY: true,
	}
	for _, kind := range mapspace.Kinds {
		var xs, ys []float64
		for ci, n := range fig7Checkpoints {
			if n > budget || res.BestEDP[kind][ci] == 0 {
				continue
			}
			xs = append(xs, float64(n))
			ys = append(ys, res.BestEDP[kind][ci])
		}
		if len(xs) > 0 {
			chart.Series = append(chart.Series, plot.Series{Name: kind.String(), X: xs, Y: ys})
		}
	}
	rep.Charts = append(rep.Charts, chart)

	if pfm, ok := res.FinalEDP[mapspace.PFM]; ok && pfm > 0 {
		for _, kind := range []mapspace.Kind{mapspace.RubyS, mapspace.RubyT, mapspace.Ruby} {
			if v := res.FinalEDP[kind]; v > 0 {
				rep.Notef("%s final EDP vs PFM: %+.1f%%", kind, -100*stats.Improvement(pfm, v))
			}
		}
	}
	return rep, nil
}
