package exp

import (
	"context"
	"fmt"

	"ruby/internal/mapspace"
	"ruby/internal/plot"
	"ruby/internal/stats"
	"ruby/internal/sweep"
	"ruby/internal/workloads"
)

// suiteLayers resolves a Suite to its layer list. The DeepBench sweep uses
// the paper's "subselection" — the non-vision layers plus two vision anchors
// — to keep the DSE tractable, exactly as Fig. 13b/14b sweep a subset.
func suiteLayers(s Suite, forSweep bool) ([]workloads.Layer, error) {
	switch s {
	case SuiteResNet:
		return workloads.ResNet50(), nil
	case SuiteDeepBench:
		all := workloads.DeepBench()
		if !forSweep {
			return all, nil
		}
		var sub []workloads.Layer
		vision := 0
		for _, l := range all {
			if l.Domain == "vision" {
				vision++
				if vision > 2 {
					continue
				}
			}
			// Skip the largest GEMMs in the sweep for tractability.
			if l.Work.MACs() > 3_000_000_000 {
				continue
			}
			sub = append(sub, l)
		}
		return sub, nil
	default:
		return nil, fmt.Errorf("exp: unknown suite %q", s)
	}
}

// runSweep executes the Section IV-E design-space exploration for a suite:
// Eyeriss-like arrays from 2x7 to 16x16, three strategies (PFM, PFM+padding,
// Ruby-S), EDP per configuration.
func runSweep(ctx context.Context, s Suite, cfg Config) ([]sweep.DesignPoint, error) {
	cfg = cfg.withDefaults()
	layers, err := suiteLayers(s, true)
	if err != nil {
		return nil, err
	}
	return sweep.Explore(ctx, layers, sweep.EyerissConfigs(), 128,
		sweep.Strategies(), mapspace.EyerissRowStationary, cfg.suiteOptions())
}

// Fig13 reproduces Fig. 13: the area-EDP trade-off across Eyeriss-like array
// configurations, per strategy, with the Pareto frontier marked. The paper's
// claim: Ruby-S mappings form the Pareto frontier for both ResNet-50 and
// DeepBench.
//
//ruby:ctxroot
func Fig13(s Suite, cfg Config) (*Report, error) {
	return fig13(context.Background(), s, cfg)
}

func fig13(ctx context.Context, s Suite, cfg Config) (*Report, error) {
	points, err := runSweep(ctx, s, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: fmt.Sprintf("Fig 13 (%s): area vs EDP across array configurations", s)}
	tb := &stats.Table{
		Title:   "EDP per strategy (absolute, pJ*cycles); * marks the combined Pareto frontier",
		Headers: []string{"array", "area mm^2", "PFM", "PFM+pad", "Ruby-S", "pareto"},
	}
	// Combined frontier across all strategies.
	var all []stats.Point
	for _, dp := range points {
		for st, edp := range dp.EDP {
			all = append(all, stats.Point{X: dp.AreaMM2, Y: edp, Label: dp.Config.String() + "/" + st})
		}
	}
	frontier := stats.ParetoFrontier(all)
	onFrontier := map[string]bool{}
	for _, p := range frontier {
		onFrontier[p.Label] = true
	}
	rubyCount, total := 0, 0
	for _, p := range frontier {
		total++
		if len(p.Label) > 7 && p.Label[len(p.Label)-6:] == "Ruby-S" {
			rubyCount++
		}
	}
	for _, dp := range points {
		mark := ""
		for st := range dp.EDP {
			if onFrontier[dp.Config.String()+"/"+st] {
				mark += st + "* "
			}
		}
		tb.AddRow(dp.Config.String(), dp.AreaMM2,
			dp.EDP["PFM"], dp.EDP["PFM+pad"], dp.EDP["Ruby-S"], mark)
	}
	rep.Tables = append(rep.Tables, tb)

	chart := plot.Chart{
		Title: rep.Name, XLabel: "area (mm^2)", YLabel: "EDP (pJ*cycles)",
		Kind: plot.Scatter, LogY: true,
	}
	for _, st := range []string{"PFM", "PFM+pad", "Ruby-S"} {
		var xs, ys []float64
		for _, dp := range points {
			xs = append(xs, dp.AreaMM2)
			ys = append(ys, dp.EDP[st])
		}
		chart.Series = append(chart.Series, plot.Series{Name: st, X: xs, Y: ys})
	}
	rep.Charts = append(rep.Charts, chart)

	rep.Notef("combined Pareto frontier: %d/%d points are Ruby-S", rubyCount, total)
	return rep, nil
}

// Fig14 reproduces Fig. 14: per-configuration EDP improvement of Ruby-S over
// PFM across the same sweep. The paper reports ResNet-50 improvements up to
// 60% (50-55% on the frontier, 24% average) and DeepBench up to 55% (20%
// average on the frontier).
//
//ruby:ctxroot
func Fig14(s Suite, cfg Config) (*Report, error) {
	return fig14(context.Background(), s, cfg)
}

func fig14(ctx context.Context, s Suite, cfg Config) (*Report, error) {
	points, err := runSweep(ctx, s, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: fmt.Sprintf("Fig 14 (%s): Ruby-S EDP improvement per configuration", s)}
	tb := &stats.Table{
		Title:   "improvement over PFM (positive = Ruby-S better)",
		Headers: []string{"array", "PEs", "vs PFM %", "vs PFM+pad %"},
	}
	var imps []float64
	for _, dp := range points {
		impP := 100 * stats.Improvement(dp.EDP["PFM"], dp.EDP["Ruby-S"])
		impPad := 100 * stats.Improvement(dp.EDP["PFM+pad"], dp.EDP["Ruby-S"])
		imps = append(imps, impP)
		tb.AddRow(dp.Config.String(), dp.Config.PEs(), impP, impPad)
	}
	rep.Tables = append(rep.Tables, tb)

	labels := make([]string, len(points))
	for i, dp := range points {
		labels[i] = dp.Config.String()
	}
	rep.Charts = append(rep.Charts, plot.Chart{
		Title: rep.Name, XLabel: "array configuration", YLabel: "EDP improvement vs PFM (%)",
		Kind: plot.Bars, Labels: labels,
		Series: []plot.Series{{Name: "Ruby-S vs PFM", Y: imps}},
	})

	rep.Notef("improvement vs PFM: mean %.1f%%, max %.1f%%", stats.Mean(imps), stats.Max(imps))
	return rep, nil
}
