package exp

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestExtensionNamesRouted(t *testing.T) {
	for _, n := range ExtensionNames() {
		if n == "ablations" {
			continue // run below
		}
	}
	if _, err := RunExtension("ext-bogus", Quick()); err == nil {
		t.Error("bogus extension accepted")
	}
	// Run routes extension names too.
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 800
	rep, err := Run(context.Background(), "ablations", cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, frag := range []string{"multicast", "fanout-cap", "mixture sampler"} {
		if !strings.Contains(out, frag) {
			t.Errorf("ablations report missing %q", frag)
		}
	}
	if len(rep.Tables) != 3 {
		t.Errorf("ablation tables = %d, want 3", len(rep.Tables))
	}
}

func TestExtensionTransformer(t *testing.T) {
	if testing.Short() {
		t.Skip("extension suite search is slow")
	}
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 1200
	rep, err := RunExtension("ext-transformer", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 6 {
		t.Errorf("transformer rows = %d, want 6", len(rep.Tables[0].Rows))
	}
	if !strings.Contains(rep.String(), "geomean") {
		t.Error("missing geomean note")
	}
}

func TestExtensionMobileNet(t *testing.T) {
	if testing.Short() {
		t.Skip("extension suite search is slow")
	}
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 1200
	rep, err := RunExtension("ext-mobilenetv2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) < 25 {
		t.Errorf("mobilenet rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestSweepExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 250
	for _, name := range []string{"fig13a", "fig13b", "fig14a", "fig14b"} {
		rep, err := Run(context.Background(), name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) != 10 {
			t.Errorf("%s: rows = %d, want 10 configurations", name, len(rep.Tables[0].Rows))
		}
	}
}

func TestFig12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite search is slow")
	}
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 700
	rep, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Main 15-PE table plus the 9-PE auxiliary table.
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	if !strings.Contains(rep.Tables[1].Title, "9 PE") {
		t.Error("aux table not labeled")
	}
}

func TestDensityStudyShape(t *testing.T) {
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 1500
	rep, err := DensityStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 4 {
		t.Fatalf("rows = %d, want one per mapspace kind", len(rep.Tables[0].Rows))
	}
	// Parse valid fractions: Ruby's must trail Ruby-S's (Section III-A).
	var rubyValid, rubySValid float64
	for _, row := range rep.Tables[0].Rows {
		var v float64
		fmt.Sscan(row[2], &v)
		switch row[0] {
		case "Ruby":
			rubyValid = v
		case "Ruby-S":
			rubySValid = v
		}
	}
	if rubyValid >= rubySValid {
		t.Errorf("Ruby valid%% (%f) should trail Ruby-S (%f)", rubyValid, rubySValid)
	}
}

func TestHeuristicStudyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("study is slow")
	}
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 1500
	rep, err := HeuristicStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) < 10 {
		t.Errorf("rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestFig7AllVariantsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence study is slow")
	}
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 2000
	cfg.Runs = 1
	for _, v := range []string{"fig7a", "fig7c", "fig7d"} {
		rep, err := Run(context.Background(), v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(rep.Tables[0].Rows) != 4 {
			t.Errorf("%s: rows = %d", v, len(rep.Tables[0].Rows))
		}
	}
}
