package exp

import (
	"context"
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/plot"
	"ruby/internal/search"
	"ruby/internal/stats"
	"ruby/internal/workloads"
)

// Fig8Sizes are the swept dimension sizes. The paper highlights D=127 (a
// prime: PFM cannot parallelize at all, padding to 128 costs one ineffectual
// element) and D=113 (a prime where padding wastes ~12% of the work).
var Fig8Sizes = []int{96, 100, 104, 108, 112, 113, 116, 120, 124, 127, 128}

// Fig8 reproduces Fig. 8: allocating a single rank-1 tensor across 16 linear
// PEs, comparing perfect factorization, perfect factorization with padding
// (to the next multiple of 16, ineffectual work charged in full), and
// Ruby-S. EDPs are reported normalized to Ruby-S (lower is better; 1.0 means
// parity).
//
// The mapspaces are small enough to search exhaustively, so the results are
// deterministic.
//
//ruby:ctxroot
func Fig8(cfg Config) (*Report, error) {
	return fig8(context.Background(), cfg)
}

func fig8(ctx context.Context, cfg Config) (*Report, error) {
	const pes = 16
	a := arch.ToyLinear(pes, 512)

	rep := &Report{Name: "Fig 8: dimension sweep on a 16-PE toy architecture (EDP normalized to Ruby-S)"}
	tb := &stats.Table{
		Title:   "normalized EDP (lower is better)",
		Headers: []string{"D", "PFM", "PFM+pad", "Ruby-S", "Ruby-S util"},
	}

	bestEDP := func(d int, kind mapspace.Kind, pad bool) (nest.Cost, error) {
		w := workloads.Rank1(d)
		if pad {
			var err error
			w, err = mapspace.PadWorkload(w, map[string]int{"X": pes})
			if err != nil {
				return nest.Cost{}, err
			}
		}
		ev, err := nest.NewEvaluator(w, a)
		if err != nil {
			return nest.Cost{}, err
		}
		sp := mapspace.New(w, a, kind, mapspace.Constraints{FixedPerms: true})
		res := search.Exhaustive(ctx, sp, cfg.newEngine(ev), search.Options{}, 0)
		if res.Best == nil {
			if ctx != nil && ctx.Err() != nil {
				return nest.Cost{}, ctx.Err()
			}
			return nest.Cost{}, fmt.Errorf("exp: fig8: no valid mapping for D=%d %v pad=%v", d, kind, pad)
		}
		return res.BestCost, nil
	}

	var xs, pfmR, padR []float64
	for _, d := range Fig8Sizes {
		pfm, err := bestEDP(d, mapspace.PFM, false)
		if err != nil {
			return nil, err
		}
		padded, err := bestEDP(d, mapspace.PFM, true)
		if err != nil {
			return nil, err
		}
		rubyS, err := bestEDP(d, mapspace.RubyS, false)
		if err != nil {
			return nil, err
		}
		tb.AddRow(d, pfm.EDP/rubyS.EDP, padded.EDP/rubyS.EDP, 1.0, rubyS.Utilization)
		xs = append(xs, float64(d))
		pfmR = append(pfmR, pfm.EDP/rubyS.EDP)
		padR = append(padR, padded.EDP/rubyS.EDP)
		if d == 127 && pfm.Cycles < 100 {
			rep.Notef("D=127 PFM parallelized unexpectedly: cycles=%g", pfm.Cycles)
		}
	}
	rep.Tables = append(rep.Tables, tb)
	ones := make([]float64, len(xs))
	for i := range ones {
		ones[i] = 1
	}
	rep.Charts = append(rep.Charts, plot.Chart{
		Title: "Fig 8: EDP normalized to Ruby-S", XLabel: "dimension size D", YLabel: "normalized EDP",
		Kind: plot.Line, LogY: true,
		Series: []plot.Series{
			{Name: "PFM", X: xs, Y: pfmR},
			{Name: "PFM+pad", X: xs, Y: padR},
			{Name: "Ruby-S", X: xs, Y: ones},
		},
	})
	rep.Notef("expected shape: PFM spikes at primes (127: no parallelism); padding competitive at 127 but ~20%% worse at 113")
	return rep, nil
}
