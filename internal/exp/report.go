package exp

import (
	"fmt"
	"strings"

	"ruby/internal/plot"
	"ruby/internal/stats"
)

// Report is an experiment's rendered output: one or more tables plus
// free-form notes (e.g. the paper's headline numbers next to the measured
// ones).
type Report struct {
	Name   string
	Tables []*stats.Table
	Notes  []string
	// Charts are SVG-renderable figures mirroring the paper's plots
	// (written by cmd/rubyexp -svg).
	Charts []plot.Chart
}

// String renders the report as plain text.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("### ")
	b.WriteString(r.Name)
	b.WriteString("\n\n")
	for _, t := range r.Tables {
		t.Render(&b)
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}
