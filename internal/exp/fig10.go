package exp

import (
	"context"
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/plot"
	"ruby/internal/search"
	"ruby/internal/stats"
	"ruby/internal/sweep"
	"ruby/internal/workloads"
)

// layerComparison runs PFM and Ruby-S over a suite on one architecture and
// renders the per-layer EDP/energy/cycle ratios (Ruby-S normalized to PFM),
// plus the whole-network summary — the format of Figs. 10-12.
func layerComparison(ctx context.Context, name string, layers []workloads.Layer, a *arch.Arch,
	consFn sweep.ConstraintFn, cfg Config) (*Report, error) {

	cfg = cfg.withDefaults()
	so := cfg.suiteOptions()
	pfm, err := sweep.RunSuiteLayers(ctx, layers, a, sweep.Strategy{Name: "PFM", Kind: mapspace.PFM}, consFn, so)
	if err != nil {
		return nil, err
	}
	rubyS, err := sweep.RunSuiteLayers(ctx, layers, a, sweep.Strategy{Name: "Ruby-S", Kind: mapspace.RubyS}, consFn, so)
	if err != nil {
		return nil, err
	}

	rep := &Report{Name: name}
	tb := &stats.Table{
		Title:   "Ruby-S normalized to PFM (lower is better)",
		Headers: []string{"layer", "type", "EDP", "energy", "cycles", "Ruby-S util", "PFM util"},
	}
	var ratios []float64
	for i := range layers {
		p, r := pfm.Layers[i].Cost, rubyS.Layers[i].Cost
		tb.AddRow(layers[i].Name, string(layers[i].Type),
			r.EDP/p.EDP, r.EnergyPJ/p.EnergyPJ, r.Cycles/p.Cycles,
			r.Utilization, p.Utilization)
		ratios = append(ratios, r.EDP/p.EDP)
	}
	tb.AddRow("TOTAL", "network",
		rubyS.EDP/pfm.EDP,
		rubyS.TotalEnergyPJ/pfm.TotalEnergyPJ,
		rubyS.TotalCycles/pfm.TotalCycles,
		"", "")
	rep.Tables = append(rep.Tables, tb)

	labels := make([]string, len(layers))
	energyR := make([]float64, len(layers))
	cycleR := make([]float64, len(layers))
	for i := range layers {
		labels[i] = layers[i].Name
		p, r := pfm.Layers[i].Cost, rubyS.Layers[i].Cost
		energyR[i] = r.EnergyPJ / p.EnergyPJ
		cycleR[i] = r.Cycles / p.Cycles
	}
	rep.Charts = append(rep.Charts, plot.Chart{
		Title: name, XLabel: "layer", YLabel: "Ruby-S / PFM (lower is better)",
		Kind: plot.Bars, Labels: labels,
		Series: []plot.Series{
			{Name: "EDP", Y: ratios},
			{Name: "energy", Y: energyR},
			{Name: "cycles", Y: cycleR},
		},
	})
	rep.Notef("per-layer EDP ratio: geomean %.3f, best %.3f, worst %.3f",
		stats.GeoMean(ratios), stats.Min(ratios), stats.Max(ratios))
	rep.Notef("network EDP improvement: %.1f%%", 100*stats.Improvement(pfm.EDP, rubyS.EDP))
	return rep, nil
}

// Fig10 reproduces Fig. 10: ResNet-50 per-layer EDP, energy and cycles under
// Ruby-S, normalized to the PFM mapspace, on the baseline Eyeriss-like
// architecture (14x12, 128 KiB GLB, row-stationary constraints).
//
// The paper reports a 14% network EDP improvement from a 17% cycle reduction
// at 2% higher energy, driven by pointwise and dense layers whose dimensions
// misalign with the 14x12 array.
//
//ruby:ctxroot
func Fig10(cfg Config) (*Report, error) {
	return fig10(context.Background(), cfg)
}

func fig10(ctx context.Context, cfg Config) (*Report, error) {
	return layerComparison(ctx,
		"Fig 10: ResNet-50 on Eyeriss-like 14x12 (Ruby-S vs PFM)",
		workloads.ResNet50(), arch.EyerissLike(14, 12, 128),
		mapspace.EyerissRowStationary, cfg)
}

// Fig11 reproduces Fig. 11: the DeepBench selection on the baseline
// Eyeriss-like architecture. The paper reports parity on ImageNet-derived
// vision layers (the factor 7 aligns with the 14x12 array) and up to 33%
// lower EDP on speech/face/speaker workloads, averaging ~10%.
//
//ruby:ctxroot
func Fig11(cfg Config) (*Report, error) {
	return fig11(context.Background(), cfg)
}

func fig11(ctx context.Context, cfg Config) (*Report, error) {
	rep, err := layerComparison(ctx,
		"Fig 11: DeepBench on Eyeriss-like 14x12 (Ruby-S vs PFM)",
		workloads.DeepBench(), arch.EyerissLike(14, 12, 128),
		mapspace.EyerissRowStationary, cfg)
	if err != nil {
		return nil, err
	}
	rep.Notef("expected shape: vision ~parity (factor 7 alignment); speech/face/speaker up to 33%% lower EDP")

	// Section IV-D also reports a latency-targeted run: "When targeting
	// latency instead of EDP, Ruby-S generates mappings that reduce the
	// latency 14% compared to PFMs."
	if err := fig11Latency(ctx, rep, cfg); err != nil {
		return nil, err
	}
	return rep, nil
}

// fig11Latency appends the delay-objective comparison to the Fig. 11 report.
func fig11Latency(ctx context.Context, rep *Report, cfg Config) error {
	cfg = cfg.withDefaults()
	a := arch.EyerissLike(14, 12, 128)
	tb := &stats.Table{
		Title:   "latency objective: best cycles, Ruby-S / PFM",
		Headers: []string{"layer", "PFM cycles", "Ruby-S cycles", "ratio"},
	}
	var ratios []float64
	for _, l := range workloads.DeepBench() {
		ev, err := nest.NewEvaluator(l.Work, a)
		if err != nil {
			return err
		}
		cons := mapspace.EyerissRowStationary(l.Work)
		eng := cfg.newEngine(ev)
		cycles := map[mapspace.Kind]float64{}
		for _, kind := range []mapspace.Kind{mapspace.PFM, mapspace.RubyS} {
			opt := cfg.Opt
			opt.Objective = search.ObjectiveDelay
			sp := mapspace.New(l.Work, a, kind, cons)
			res := search.Random(ctx, sp, eng, opt)
			if res.Best == nil {
				if ctx != nil && ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("exp: fig11 latency: no valid %v mapping for %s", kind, l.Name)
			}
			cycles[kind] = res.BestCost.Cycles
		}
		ratio := cycles[mapspace.RubyS] / cycles[mapspace.PFM]
		ratios = append(ratios, ratio)
		tb.AddRow(l.Name, cycles[mapspace.PFM], cycles[mapspace.RubyS], ratio)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notef("latency objective: mean cycle reduction %.1f%% (paper: 14%%)",
		100*(1-stats.Mean(ratios)))
	return nil
}

// Fig12 reproduces Fig. 12: ResNet-50 on the Simba-like architecture with 15
// PEs of four 4-wide vector MACs (PE-level parallelism on C and M), plus the
// paper's secondary 9-PE / three 3-wide configuration. The paper reports a
// 10% net EDP improvement (up to 25% per layer) on the 15-PE configuration
// and 45% on the 9-PE one.
//
//ruby:ctxroot
func Fig12(cfg Config) (*Report, error) {
	return fig12(context.Background(), cfg)
}

func fig12(ctx context.Context, cfg Config) (*Report, error) {
	rep, err := layerComparison(ctx,
		"Fig 12: ResNet-50 on Simba-like 15 PE / 4x4-wide (Ruby-S vs PFM)",
		workloads.ResNet50(), arch.SimbaLike(15, 4, 4),
		mapspace.SimbaDataflow, cfg)
	if err != nil {
		return nil, err
	}
	small, err := layerComparison(ctx,
		"Fig 12 (aux): ResNet-50 on Simba-like 9 PE / 3x3-wide",
		workloads.ResNet50(), arch.SimbaLike(9, 3, 3),
		mapspace.SimbaDataflow, cfg)
	if err != nil {
		return nil, err
	}
	for _, t := range small.Tables {
		t.Title = "9 PE / 3x3-wide: " + t.Title
	}
	rep.Tables = append(rep.Tables, small.Tables...)
	rep.Notes = append(rep.Notes, small.Notes...)
	return rep, nil
}
