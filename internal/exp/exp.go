// Package exp reproduces every table and figure of the paper's evaluation:
// the mapspace-quality convergence study (Fig. 7), the mapspace-size table
// (Table I), the padding comparison (Fig. 8), the AlexNet handcrafted-mapping
// study (Fig. 9), the per-layer ResNet-50 and DeepBench comparisons on
// Eyeriss-like and Simba-like architectures (Figs. 10-12), and the
// architectural design-space exploration (Figs. 13-14).
//
// Each runner returns both structured results and a rendered stats.Table with
// the same rows/series the paper reports. Budgets are configurable so the
// same code serves quick regression tests, testing.B benchmarks, and
// full-fidelity CLI runs.
package exp

import (
	"fmt"

	"ruby/internal/search"
)

// Config tunes experiment fidelity.
type Config struct {
	// Opt is the base search configuration (seed, threads, budgets).
	Opt search.Options
	// Runs averages stochastic-search experiments over this many seeds
	// (the paper uses 100 for Fig. 7). Minimum 1.
	Runs int
}

func (c Config) withDefaults() Config {
	if c.Runs < 1 {
		c.Runs = 1
	}
	return c
}

// Quick returns a configuration sized for tests and benchmarks: small
// evaluation budgets, few averaging runs, deterministic seeds.
func Quick() Config {
	return Config{
		Opt:  search.Options{Seed: 1, Threads: 4, MaxEvaluations: 2500},
		Runs: 2,
	}
}

// Full returns the paper-fidelity configuration: termination after 3000
// consecutive non-improving valid mappings across 24 threads, 10 averaging
// runs (the paper's 100 is available via -runs).
func Full() Config {
	return Config{
		Opt:  search.Options{Seed: 1, Threads: 24, ConsecutiveNoImprove: 3000, MaxEvaluations: 200_000},
		Runs: 10,
	}
}

// seeded derives a per-run option set.
func (c Config) seeded(run int) search.Options {
	o := c.Opt
	o.Seed = c.Opt.Seed + int64(run)*1_000_003
	return o
}

// Names lists the experiment identifiers accepted by Run (cmd/rubyexp).
func Names() []string {
	return []string{
		"fig7a", "fig7b", "fig7c", "fig7d",
		"table1", "fig8", "fig9",
		"fig10", "fig11", "fig12",
		"fig13a", "fig13b", "fig14a", "fig14b",
	}
}

// Run executes one experiment by identifier and returns its report.
func Run(name string, cfg Config) (*Report, error) {
	switch name {
	case "fig7a", "fig7b", "fig7c", "fig7d":
		return Fig7(name[4], cfg)
	case "table1":
		return Table1(cfg)
	case "fig8":
		return Fig8(cfg)
	case "fig9":
		return Fig9(cfg)
	case "fig10":
		return Fig10(cfg)
	case "fig11":
		return Fig11(cfg)
	case "fig12":
		return Fig12(cfg)
	case "fig13a":
		return Fig13(SuiteResNet, cfg)
	case "fig13b":
		return Fig13(SuiteDeepBench, cfg)
	case "fig14a":
		return Fig14(SuiteResNet, cfg)
	case "fig14b":
		return Fig14(SuiteDeepBench, cfg)
	default:
		for _, ext := range ExtensionNames() {
			if name == ext {
				return RunExtension(name, cfg)
			}
		}
		return nil, fmt.Errorf("exp: unknown experiment %q (want one of %v or %v)",
			name, Names(), ExtensionNames())
	}
}

// Suite selects a workload suite for the sweep experiments.
type Suite string

const (
	SuiteResNet    Suite = "resnet50"
	SuiteDeepBench Suite = "deepbench"
)
