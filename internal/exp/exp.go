// Package exp reproduces every table and figure of the paper's evaluation:
// the mapspace-quality convergence study (Fig. 7), the mapspace-size table
// (Table I), the padding comparison (Fig. 8), the AlexNet handcrafted-mapping
// study (Fig. 9), the per-layer ResNet-50 and DeepBench comparisons on
// Eyeriss-like and Simba-like architectures (Figs. 10-12), and the
// architectural design-space exploration (Figs. 13-14).
//
// Each runner returns both structured results and a rendered stats.Table with
// the same rows/series the paper reports. Budgets are configurable so the
// same code serves quick regression tests, testing.B benchmarks, and
// full-fidelity CLI runs.
package exp

import (
	"context"
	"fmt"

	"ruby/internal/engine"
	"ruby/internal/nest"
	"ruby/internal/search"
	"ruby/internal/sweep"
)

// Config tunes experiment fidelity.
type Config struct {
	// Opt is the base search configuration (seed, threads, budgets).
	Opt search.Options
	// Runs averages stochastic-search experiments over this many seeds
	// (the paper uses 100 for Fig. 7). Minimum 1.
	Runs int
	// Engine configures the evaluation pipeline (memo cache, metrics hook)
	// each experiment builds per evaluator. The zero value is a transparent
	// pass-through, so results for fixed seeds are unchanged by default.
	Engine engine.Config
	// Checkpoint optionally persists per-layer progress of the suite-based
	// experiments (Figs. 10-14), so an interrupted rubyexp run resumes by
	// skipping completed layers. Experiments that do not run suites ignore
	// it.
	Checkpoint *sweep.SuiteCheckpoint
}

func (c Config) withDefaults() Config {
	if c.Runs < 1 {
		c.Runs = 1
	}
	return c
}

// Quick returns a configuration sized for tests and benchmarks: small
// evaluation budgets, few averaging runs, deterministic seeds.
func Quick() Config {
	return Config{
		Opt:  search.Options{Seed: 1, Threads: 4, MaxEvaluations: 2500},
		Runs: 2,
	}
}

// Full returns the paper-fidelity configuration: termination after 3000
// consecutive non-improving valid mappings across 24 threads, 10 averaging
// runs (the paper's 100 is available via -runs).
func Full() Config {
	return Config{
		Opt:  search.Options{Seed: 1, Threads: 24, ConsecutiveNoImprove: 3000, MaxEvaluations: 200_000},
		Runs: 10,
	}
}

// seeded derives a per-run option set.
func (c Config) seeded(run int) search.Options {
	o := c.Opt
	o.Seed = c.Opt.Seed + int64(run)*1_000_003
	return o
}

// newEngine builds the evaluation pipeline an experiment routes ev through.
func (c Config) newEngine(ev *nest.Evaluator) *engine.Engine {
	return c.Engine.New(ev)
}

// suiteOptions bundles the experiment's search and engine configuration for
// suite runs (Figs. 10-14).
func (c Config) suiteOptions() sweep.SuiteOptions {
	return sweep.SuiteOptions{Search: c.Opt, Engine: c.Engine, Checkpoint: c.Checkpoint}
}

// Names lists the experiment identifiers accepted by Run (cmd/rubyexp).
func Names() []string {
	return []string{
		"fig7a", "fig7b", "fig7c", "fig7d",
		"table1", "fig8", "fig9",
		"fig10", "fig11", "fig12",
		"fig13a", "fig13b", "fig14a", "fig14b",
	}
}

// Run executes one experiment by identifier and returns its report.
// Cancellation aborts the in-flight searches promptly and surfaces ctx's
// error (stochastic experiments may instead return a best-effort report
// built from the evaluations finished so far).
func Run(ctx context.Context, name string, cfg Config) (*Report, error) {
	switch name {
	case "fig7a", "fig7b", "fig7c", "fig7d":
		return fig7(ctx, name[4], cfg)
	case "table1":
		return Table1(cfg)
	case "fig8":
		return fig8(ctx, cfg)
	case "fig9":
		return fig9(ctx, cfg)
	case "fig10":
		return fig10(ctx, cfg)
	case "fig11":
		return fig11(ctx, cfg)
	case "fig12":
		return fig12(ctx, cfg)
	case "fig13a":
		return fig13(ctx, SuiteResNet, cfg)
	case "fig13b":
		return fig13(ctx, SuiteDeepBench, cfg)
	case "fig14a":
		return fig14(ctx, SuiteResNet, cfg)
	case "fig14b":
		return fig14(ctx, SuiteDeepBench, cfg)
	default:
		for _, ext := range ExtensionNames() {
			if name == ext {
				return runExtension(ctx, name, cfg)
			}
		}
		return nil, fmt.Errorf("exp: unknown experiment %q (want one of %v or %v)",
			name, Names(), ExtensionNames())
	}
}

// Suite selects a workload suite for the sweep experiments.
type Suite string

const (
	SuiteResNet    Suite = "resnet50"
	SuiteDeepBench Suite = "deepbench"
)
