package exp

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workloads"
)

func TestNamesAllRunnable(t *testing.T) {
	for _, n := range Names() {
		if strings.HasPrefix(n, "fig1") && n != "fig10" && n != "fig11" && n != "fig12" {
			continue // sweeps tested separately (slow)
		}
	}
	if _, err := Run(context.Background(), "nope", Quick()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	rep, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	if len(tb.Rows) != len(Table1Sizes) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := rep.String()
	if !strings.Contains(out, "4096") {
		t.Error("missing largest size")
	}
	// Structural claims from the paper: use the raw counts.
	a := arch.ToyLinear(9, 512)
	for _, d := range []int{100, 1000, 4096} {
		w := workloads.Rank1(d)
		pfm := mapspace.New(w, a, mapspace.PFM, mapspace.Constraints{}).ChainCount("X")
		rs := mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{}).ChainCount("X")
		rt := mapspace.New(w, a, mapspace.RubyT, mapspace.Constraints{}).ChainCount("X")
		ruby := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{}).ChainCount("X")
		if !(pfm < rs && rs < rt && rt <= ruby) {
			t.Errorf("D=%d ordering violated: PFM %d, Ruby-S %d, Ruby-T %d, Ruby %d", d, pfm, rs, rt, ruby)
		}
		// Ruby-T grows dramatically: at least 10x Ruby-S for large D.
		if d >= 1000 && rt < 10*rs {
			t.Errorf("D=%d: Ruby-T (%d) should dwarf Ruby-S (%d)", d, rt, rs)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	byD := map[string][]string{}
	for _, row := range tb.Rows {
		byD[row[0]] = row
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	// At the prime 127, PFM cannot parallelize: its normalized EDP must be
	// far above 1, while padding is within a few percent of Ruby-S.
	r127 := byD["127"]
	if r127 == nil {
		t.Fatal("no row for D=127")
	}
	if pfm := parse(r127[1]); pfm < 3 {
		t.Errorf("D=127 PFM normalized EDP = %f, want >> 1", pfm)
	}
	if pad := parse(r127[2]); pad > 1.15 {
		t.Errorf("D=127 padding normalized EDP = %f, want ~1", pad)
	}
	// At 113 padding wastes ~12%% of the work: visibly worse than Ruby-S.
	if pad := parse(byD["113"][2]); pad < 1.05 {
		t.Errorf("D=113 padding normalized EDP = %f, want noticeably > 1", pad)
	}
	// At 128 (exact multiple) everything ties.
	if pfm := parse(byD["128"][1]); pfm > 1.001 {
		t.Errorf("D=128 PFM normalized EDP = %f, want 1", pfm)
	}
	// Ruby-S is never beaten: all ratios >= 1 (small tolerance).
	for _, row := range tb.Rows {
		for _, col := range []int{1, 2} {
			if v := parse(row[col]); v < 0.999 {
				t.Errorf("D=%s col %d ratio %f < 1: Ruby-S beaten", row[0], col, v)
			}
		}
	}
}

func TestFig9Handcrafted(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	w := workloads.AlexNetConv2()
	ev := nest.MustEvaluator(w, a)
	c := ev.Evaluate(HandcraftedAlexNetConv2(a))
	if !c.Valid {
		t.Fatalf("handcrafted mapping invalid: %s", c.Reason)
	}
	// Section IV-B: the handcrafted mapping reaches ~85% utilization. Our
	// constraint vocabulary lands at 80% (10/12 rows x 27/28 columns).
	if c.Utilization < 0.78 || c.Utilization > 0.90 {
		t.Errorf("handcrafted utilization = %f, want ~0.80-0.85", c.Utilization)
	}
}

func TestFig9RubySMatchesOrBeatsPFM(t *testing.T) {
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 30000
	cfg.Runs = 3
	rep, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	var pfmEDP, rubyEDP float64
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], "PFM") {
			fmt.Sscan(row[4], &pfmEDP)
		}
		if strings.HasPrefix(row[0], "Ruby-S") {
			fmt.Sscan(row[4], &rubyEDP)
		}
	}
	if pfmEDP == 0 || rubyEDP == 0 {
		t.Fatalf("missing rows in:\n%s", rep)
	}
	if rubyEDP > pfmEDP*1.02 {
		t.Errorf("Ruby-S EDP %g worse than PFM %g", rubyEDP, pfmEDP)
	}
}

func TestFig7bRubyVariantsBeatPFM(t *testing.T) {
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 6000
	cfg.Runs = 2
	rep, err := Fig7('b', cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) != 4 {
		t.Fatalf("bad report:\n%s", rep)
	}
	// With 16 PEs and D=100 the mismatch favors imperfect factorization;
	// at the full budget at least one Ruby variant should match or beat PFM.
	// (Checked via the notes' final-EDP comparison being present.)
	if len(rep.Notes) == 0 {
		t.Error("expected final-EDP notes")
	}
}

func TestFig7UnknownVariant(t *testing.T) {
	if _, err := Fig7('z', Quick()); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestSuiteLayers(t *testing.T) {
	rs, err := suiteLayers(SuiteResNet, true)
	if err != nil || len(rs) != 22 {
		t.Errorf("resnet layers = %d, err %v", len(rs), err)
	}
	dbFull, _ := suiteLayers(SuiteDeepBench, false)
	dbSweep, _ := suiteLayers(SuiteDeepBench, true)
	if len(dbSweep) >= len(dbFull) {
		t.Errorf("sweep subset (%d) should be smaller than full (%d)", len(dbSweep), len(dbFull))
	}
	if _, err := suiteLayers("bogus", true); err == nil {
		t.Error("bogus suite accepted")
	}
}

func TestFig10QuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("suite search is slow")
	}
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 1500
	rep, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	if len(tb.Rows) != 23 { // 22 layers + TOTAL
		t.Errorf("rows = %d, want 23", len(tb.Rows))
	}
	if tb.Rows[len(tb.Rows)-1][0] != "TOTAL" {
		t.Error("missing TOTAL row")
	}
	out := rep.String()
	if !strings.Contains(out, "geomean") {
		t.Error("missing geomean note")
	}
	if len(rep.Charts) == 0 {
		t.Error("per-layer chart missing")
	} else if len(rep.Charts[0].Labels) != 22 {
		t.Errorf("chart labels = %d, want 22", len(rep.Charts[0].Labels))
	}
}

func TestFig7ChartSeries(t *testing.T) {
	cfg := Quick()
	cfg.Opt.MaxEvaluations = 1500
	cfg.Runs = 1
	rep, err := Fig7('b', cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Charts) != 1 || len(rep.Charts[0].Series) == 0 {
		t.Fatalf("chart missing: %+v", rep.Charts)
	}
	if _, err := rep.Charts[0].SVG(); err != nil {
		t.Fatalf("chart does not render: %v", err)
	}
}

func TestQuickAndFullConfigs(t *testing.T) {
	q := Quick()
	if q.Opt.MaxEvaluations == 0 || q.Runs < 1 {
		t.Error("Quick misconfigured")
	}
	f := Full()
	if f.Opt.ConsecutiveNoImprove != 3000 {
		t.Error("Full should use the paper's 3000-non-improving termination")
	}
	if (Config{}).withDefaults().Runs != 1 {
		t.Error("default runs != 1")
	}
	if Quick().seeded(1).Seed == Quick().seeded(2).Seed {
		t.Error("seeded runs must differ")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{Name: "demo"}
	r.Notef("x=%d", 7)
	s := r.String()
	if !strings.Contains(s, "### demo") || !strings.Contains(s, "note: x=7") {
		t.Errorf("bad report:\n%s", s)
	}
}
