package exp

import (
	"context"
	"fmt"

	"ruby/internal/analysis"
	"ruby/internal/arch"
	"ruby/internal/heuristic"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
	"ruby/internal/stats"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// ExtensionNames lists experiments beyond the paper's evaluation: extra
// workload suites on the Eyeriss-like baseline, and the model/sampler
// ablations called out in DESIGN.md.
func ExtensionNames() []string {
	return []string{"ext-mobilenetv2", "ext-vgg16", "ext-transformer", "ext-heuristic", "ext-density", "ablations"}
}

// RunExtension executes one extension experiment.
//
//ruby:ctxroot
func RunExtension(name string, cfg Config) (*Report, error) {
	return runExtension(context.Background(), name, cfg)
}

func runExtension(ctx context.Context, name string, cfg Config) (*Report, error) {
	switch name {
	case "ext-mobilenetv2":
		return extensionSuite(ctx, "MobileNetV2 (depthwise + expanded pointwise; channels with factor 3)",
			workloads.MobileNetV2(), extMobileNetConstraints, cfg)
	case "ext-vgg16":
		return extensionSuite(ctx, "VGG-16 (power-of-two channels misaligned with 14x12)",
			workloads.VGG16(), mapspace.EyerissRowStationary, cfg)
	case "ext-transformer":
		return extensionSuite(ctx, "Transformer encoder (BERT-base, seq 384)",
			workloads.TransformerEncoder(384, 768, 12), mapspace.EyerissRowStationary, cfg)
	case "ext-heuristic":
		return heuristicStudy(ctx, cfg)
	case "ext-density":
		return DensityStudy(cfg)
	case "ablations":
		return ablations(ctx, cfg)
	default:
		return nil, fmt.Errorf("exp: unknown extension %q (want one of %v)", name, ExtensionNames())
	}
}

// extMobileNetConstraints widens the row-stationary preset for depthwise
// layers: with no input channels to reduce, the channel dimension M is the
// only parallelism source, so it is allowed on both axes.
func extMobileNetConstraints(w *workload.Workload) mapspace.Constraints {
	return mapspace.Constraints{
		SpatialX: []string{"Q", "M"},
		SpatialY: []string{"R", "S", "C", "M"},
	}
}

func extensionSuite(ctx context.Context, title string, layers []workloads.Layer,
	consFn func(*workload.Workload) mapspace.Constraints, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	a := arch.EyerissLike(14, 12, 128)

	rep := &Report{Name: "Extension: " + title}
	tb := &stats.Table{
		Title:   "Ruby-S vs PFM on Eyeriss-like 14x12",
		Headers: []string{"layer", "PFM util", "Ruby-S util", "EDP ratio"},
	}
	var ratios []float64
	for _, l := range layers {
		ev, err := nest.NewEvaluator(l.Work, a)
		if err != nil {
			return nil, err
		}
		cons := consFn(l.Work)
		eng := cfg.newEngine(ev)
		best := map[mapspace.Kind]nest.Cost{}
		for _, kind := range []mapspace.Kind{mapspace.PFM, mapspace.RubyS} {
			sp := mapspace.New(l.Work, a, kind, cons)
			res := search.Random(ctx, sp, eng, cfg.Opt)
			if res.Best == nil {
				if ctx != nil && ctx.Err() != nil {
					return nil, ctx.Err()
				}
				return nil, fmt.Errorf("exp: extension %s: no valid %v mapping", l.Name, kind)
			}
			best[kind] = res.BestCost
		}
		ratio := best[mapspace.RubyS].EDP / best[mapspace.PFM].EDP
		ratios = append(ratios, ratio)
		tb.AddRow(l.Name, best[mapspace.PFM].Utilization, best[mapspace.RubyS].Utilization, ratio)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notef("EDP ratio geomean %.3f (best %.3f, worst %.3f)",
		stats.GeoMean(ratios), stats.Min(ratios), stats.Max(ratios))
	return rep, nil
}

// HeuristicStudy compares the one-shot constructive mapper against random
// search at paper budgets and against random search warm-started from the
// constructed mapping, across the ResNet-50 pointwise layers.
//
//ruby:ctxroot
func HeuristicStudy(cfg Config) (*Report, error) {
	return heuristicStudy(context.Background(), cfg)
}

func heuristicStudy(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	a := arch.EyerissLike(14, 12, 128)
	rep := &Report{Name: "Extension: constructive heuristic vs search (Ruby-S, ResNet-50)"}
	tb := &stats.Table{
		Title:   "EDP by mapper (lower is better), evaluations spent",
		Headers: []string{"layer", "heuristic", "search", "warm search", "heuristic/search"},
	}
	var ratios []float64
	for _, l := range workloads.ResNet50() {
		if l.Type != workloads.Pointwise && l.Type != workloads.DenseFC {
			continue
		}
		ev, err := nest.NewEvaluator(l.Work, a)
		if err != nil {
			return nil, err
		}
		cons := mapspace.EyerissRowStationary(l.Work)
		hm, hc, err := heuristic.Construct(ev, mapspace.RubyS, cons)
		if err != nil {
			return nil, err
		}
		sp := mapspace.New(l.Work, a, mapspace.RubyS, cons)
		eng := cfg.newEngine(ev)
		cold := search.Random(ctx, sp, eng, cfg.Opt)
		warmOpt := cfg.Opt
		warmOpt.WarmStart = hm
		warm := search.Random(ctx, sp, eng, warmOpt)
		if cold.Best == nil || warm.Best == nil {
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("exp: heuristic study: search failed on %s", l.Name)
		}
		ratio := hc.EDP / cold.BestCost.EDP
		ratios = append(ratios, ratio)
		tb.AddRow(l.Name, hc.EDP, cold.BestCost.EDP, warm.BestCost.EDP, ratio)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notef("one-shot heuristic vs search EDP: geomean %.2fx (1.0 = search parity) at ~0.0001x the evaluations",
		stats.GeoMean(ratios))
	return rep, nil
}

// DensityStudy quantifies the Section III-A trade-off directly: mapspace
// size versus the density of high-quality mappings, measured as sampled-EDP
// quantiles on the Fig. 7b toy (100x100 matmul, 16 mismatched PEs). The
// expected shape: Ruby's mapspace dwarfs the others while its quantiles
// shift right (worse median), yet its best sampled mapping matches or beats
// PFM's — exactly why Ruby-S's constrained expansion is the practical point.
func DensityStudy(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	w := workloads.Fig7Matmul()
	a := arch.ToyLinear(16, 512)
	ev, err := nest.NewEvaluator(w, a)
	if err != nil {
		return nil, err
	}
	n := int(cfg.Opt.MaxEvaluations)
	if n <= 0 || n > 20000 {
		n = 20000
	}
	rep := &Report{Name: "Extension: mapping-quality density per mapspace (Fig 7b setup)"}
	tb := &stats.Table{
		Title:   fmt.Sprintf("EDP distribution over %d samples", n),
		Headers: []string{"mapspace", "tiling size", "valid %", "p10", "p50", "p90", "best"},
	}
	for _, kind := range mapspace.Kinds {
		sp := mapspace.New(w, a, kind, mapspace.Constraints{})
		d := analysis.MeasureDensity(sp, ev, n, cfg.Opt.Seed)
		tb.AddRow(kind.String(), fmt.Sprintf("%d", sp.TotalChainCount()),
			100*d.ValidFraction(), d.P10, d.P50, d.P90, d.Best)
	}
	rep.Tables = append(rep.Tables, tb)
	return rep, nil
}

// Ablations quantifies the design choices DESIGN.md calls out: the multicast
// network model, Ruby-S's fanout-cap pruning, and the imperfect-slot mixture
// sampler (measured as Ruby-S's improvement over PFM at a fixed budget on a
// misaligned pointwise layer).
//
//ruby:ctxroot
func Ablations(cfg Config) (*Report, error) {
	return ablations(context.Background(), cfg)
}

func ablations(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Name: "Ablations"}

	// 1. Multicast on/off.
	var layer workloads.Layer
	for _, l := range workloads.ResNet50() {
		if l.Name == "res4x_branch2c" {
			layer = l
		}
	}
	mcEDP := func(mcast bool) (float64, error) {
		a := arch.EyerissLike(14, 12, 128)
		a.Levels[1].Fanout.Multicast = mcast
		ev, err := nest.NewEvaluator(layer.Work, a)
		if err != nil {
			return 0, err
		}
		sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
		res := search.Random(ctx, sp, cfg.newEngine(ev), cfg.Opt)
		if res.Best == nil {
			if ctx != nil && ctx.Err() != nil {
				return 0, ctx.Err()
			}
			return 0, fmt.Errorf("exp: ablations: no valid mapping")
		}
		return res.BestCost.EDP, nil
	}
	with, err := mcEDP(true)
	if err != nil {
		return nil, err
	}
	without, err := mcEDP(false)
	if err != nil {
		return nil, err
	}
	t1 := &stats.Table{
		Title:   "multicast network model (res4x_branch2c, Ruby-S)",
		Headers: []string{"network", "best EDP", "vs multicast"},
	}
	t1.AddRow("multicast", with, 1.0)
	t1.AddRow("unicast", without, without/with)
	rep.Tables = append(rep.Tables, t1)

	// 2. Fanout-cap pruning (Table I machinery).
	t2 := &stats.Table{
		Title:   "spatial fanout-cap pruning: per-dimension chain counts (fanout 9)",
		Headers: []string{"D", "Ruby-S (capped)", "Ruby (uncapped)", "expansion"},
	}
	a := arch.ToyLinear(9, 512)
	for _, d := range []int{100, 1000, 4096} {
		w := workloads.Rank1(d)
		capped := mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{}).ChainCount("X")
		unc := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{}).ChainCount("X")
		t2.AddRow(d, capped, unc, float64(unc)/float64(capped))
	}
	rep.Tables = append(rep.Tables, t2)

	// 3. Sampler effectiveness: Ruby-S improvement over PFM at equal budget.
	aEy := arch.EyerissLike(14, 12, 128)
	ev, err := nest.NewEvaluator(layer.Work, aEy)
	if err != nil {
		return nil, err
	}
	cons := mapspace.EyerissRowStationary(layer.Work)
	eng := cfg.newEngine(ev)
	pfm := search.Random(ctx, mapspace.New(layer.Work, aEy, mapspace.PFM, cons), eng, cfg.Opt)
	rs := search.Random(ctx, mapspace.New(layer.Work, aEy, mapspace.RubyS, cons), eng, cfg.Opt)
	if pfm.Best == nil || rs.Best == nil {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("exp: ablations: sampler study found no valid mapping")
	}
	t3 := &stats.Table{
		Title:   "mixture sampler: Ruby-S vs PFM at equal budget (res4x_branch2c)",
		Headers: []string{"mapspace", "best EDP", "utilization"},
	}
	t3.AddRow("PFM", pfm.BestCost.EDP, pfm.BestCost.Utilization)
	t3.AddRow("Ruby-S", rs.BestCost.EDP, rs.BestCost.Utilization)
	rep.Tables = append(rep.Tables, t3)
	rep.Notef("Ruby-S improvement at equal budget: %.1f%%",
		100*stats.Improvement(pfm.BestCost.EDP, rs.BestCost.EDP))
	return rep, nil
}
