package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	if Mean(xs) != 3.75 {
		t.Errorf("Mean = %f", Mean(xs))
	}
	if g := GeoMean(xs); math.Abs(g-math.Sqrt(math.Sqrt(64))) > 1e-12 {
		t.Errorf("GeoMean = %f", g)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(GeoMean(nil)) {
		t.Error("empty input should be NaN")
	}
	if Min(xs) != 1 || Max(xs) != 8 {
		t.Error("Min/Max wrong")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanLeqMean(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(100, 80) != 0.2 {
		t.Error("20% improvement expected")
	}
	if Improvement(100, 120) != -0.2 {
		t.Error("-20% expected")
	}
	if Improvement(0, 5) != 0 {
		t.Error("zero base guarded")
	}
}

func TestParetoFrontier(t *testing.T) {
	pts := []Point{
		{1, 10, "a"}, {2, 5, "b"}, {3, 6, "c"}, {4, 2, "d"}, {5, 2, "e"}, {0.5, 20, "f"},
	}
	fr := ParetoFrontier(pts)
	var labels []string
	for _, p := range fr {
		labels = append(labels, p.Label)
	}
	want := "f a b d"
	if got := strings.Join(labels, " "); got != want {
		t.Errorf("frontier = %q, want %q", got, want)
	}
	// Frontier points dominate every dropped point or are incomparable.
	for _, p := range pts {
		onFrontier := false
		for _, f := range fr {
			if f.Label == p.Label {
				onFrontier = true
			}
		}
		if !onFrontier {
			dominated := false
			for _, f := range fr {
				if Dominates(f, p) {
					dominated = true
				}
			}
			if !dominated {
				t.Errorf("dropped point %q is not dominated", p.Label)
			}
		}
	}
}

func TestParetoFrontierProperties(t *testing.T) {
	f := func(seed []uint8) bool {
		if len(seed) < 4 {
			return true
		}
		var pts []Point
		for i := 0; i+1 < len(seed); i += 2 {
			pts = append(pts, Point{X: float64(seed[i]), Y: float64(seed[i+1])})
		}
		fr := ParetoFrontier(pts)
		if len(fr) == 0 || len(fr) > len(pts) {
			return false
		}
		// X strictly... nondecreasing and Y strictly decreasing along the frontier.
		for i := 1; i < len(fr); i++ {
			if fr[i].X < fr[i-1].X || fr[i].Y >= fr[i-1].Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDominates(t *testing.T) {
	a := Point{1, 1, ""}
	b := Point{2, 2, ""}
	if !Dominates(a, b) || Dominates(b, a) || Dominates(a, a) {
		t.Error("Dominates wrong")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "edp"}}
	tb.AddRow("layer1", 1234.5678)
	tb.AddRow("l2", 7)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, frag := range []string{"== demo ==", "name", "edp", "layer1", "1235", "l2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("x,y", `q"z`)
	var sb strings.Builder
	tb.CSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"q""z"`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}
