// Package stats provides the small statistics and reporting toolkit the
// experiment harness uses: geometric means, normalization, improvement
// percentages, Pareto frontiers for the design-space sweeps, and aligned
// text/CSV table rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean (NaN for empty input; panics on
// non-positive values, which indicate an upstream bug for EDP ratios).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the smallest value (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Improvement returns the fractional improvement of next over base:
// (base - next) / base. Positive means next is better (lower).
func Improvement(base, next float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - next) / base
}

// Point is one design point for Pareto analysis; lower X and lower Y are
// better (e.g. X = area, Y = EDP).
type Point struct {
	X, Y  float64
	Label string
}

// ParetoFrontier returns the non-dominated subset of points, sorted by X
// ascending. A point is dominated when another point is <= in both
// coordinates and < in at least one.
func ParetoFrontier(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	var out []Point
	bestY := math.Inf(1)
	for _, p := range sorted {
		if p.Y < bestY {
			out = append(out, p)
			bestY = p.Y
		}
	}
	return out
}

// Dominates reports whether a dominates b (a <= b in both, < in one).
func Dominates(a, b Point) bool {
	return a.X <= b.X && a.Y <= b.Y && (a.X < b.X || a.Y < b.Y)
}

// Table is a simple report table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v (floats as %.4g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			out[i] = c
		}
		fmt.Fprintln(w, strings.Join(out, ","))
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
}
