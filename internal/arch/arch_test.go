package arch

import (
	"strings"
	"testing"

	"ruby/internal/energy"
	"ruby/internal/workload"
)

func TestEyerissLikeStructure(t *testing.T) {
	a := EyerissLike(14, 12, 128)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.TotalLanes(); got != 168 {
		t.Errorf("TotalLanes = %d, want 168", got)
	}
	if got := a.Instances(2); got != 168 {
		t.Errorf("PE instances = %d, want 168", got)
	}
	if got := a.Instances(1); got != 1 {
		t.Errorf("GLB instances = %d, want 1", got)
	}
	glb := &a.Levels[1]
	if glb.Capacity != 65536 {
		t.Errorf("GLB capacity = %d words, want 65536", glb.Capacity)
	}
	if glb.KeepsRole(workload.Weight, false) {
		t.Error("GLB should bypass weights")
	}
	if !glb.KeepsRole(workload.Input, false) || !glb.KeepsRole(workload.Output, false) {
		t.Error("GLB should keep activations and psums")
	}
	pe := &a.Levels[2]
	if c, ded := pe.RoleCapacity(workload.Weight); !ded || c != 224 {
		t.Errorf("PE weight spad = %d (dedicated %v), want 224 dedicated", c, ded)
	}
	if pe.TotalCapacity() != 12+16+224 {
		t.Errorf("PE total capacity = %d", pe.TotalCapacity())
	}
}

func TestSimbaLikeStructure(t *testing.T) {
	a := SimbaLike(15, 4, 4)
	if got := a.TotalLanes(); got != 15*16 {
		t.Errorf("TotalLanes = %d, want 240", got)
	}
	if got := a.Levels[2].Fanout.Total(); got != 16 {
		t.Errorf("vector lanes per PE = %d, want 16", got)
	}
	small := SimbaLike(9, 3, 3)
	if got := small.TotalLanes(); got != 81 {
		t.Errorf("TotalLanes = %d, want 81", got)
	}
}

func TestToyPresets(t *testing.T) {
	g := ToyGLB(6, 512)
	if g.TotalLanes() != 6 {
		t.Errorf("ToyGLB lanes = %d", g.TotalLanes())
	}
	l := ToyLinear(16, 512)
	if l.TotalLanes() != 16 {
		t.Errorf("ToyLinear lanes = %d", l.TotalLanes())
	}
	if l.Instances(1) != 16 {
		t.Errorf("ToyLinear spad instances = %d", l.Instances(1))
	}
}

func TestDRAMAlwaysKeeps(t *testing.T) {
	a := EyerissLike(14, 12, 128)
	for _, r := range workload.Roles {
		if !a.Levels[0].KeepsRole(r, true) {
			t.Errorf("DRAM must keep %v", r)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		a    Arch
	}{
		{"one level", Arch{Name: "x", Levels: []Level{{Name: "DRAM"}}}},
		{"bounded DRAM", Arch{Name: "x", Levels: []Level{{Name: "DRAM", Capacity: 10}, {Name: "L1", Capacity: 1}}}},
		{"unnamed level", Arch{Name: "x", Levels: []Level{{Name: "DRAM"}, {Capacity: 4}}}},
		{"negative capacity", Arch{Name: "x", Levels: []Level{{Name: "DRAM"}, {Name: "L1", Capacity: -1}}}},
		{"zero role buffer", Arch{Name: "x", Levels: []Level{{Name: "DRAM"}, {Name: "L1", PerRole: map[workload.Role]int64{workload.Input: 0}}}}},
	}
	for _, c := range cases {
		if err := c.a.Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", c.name)
		}
	}
}

func TestAccessEnergyOrdering(t *testing.T) {
	a := EyerissLike(14, 12, 128)
	dram := a.AccessEnergyPJ(0)
	glb := a.AccessEnergyPJ(1)
	pe := a.AccessEnergyPJ(2)
	if !(dram > glb && glb > pe) {
		t.Errorf("energy ordering violated: DRAM %f, GLB %f, PE %f", dram, glb, pe)
	}
	if dram != energy.DRAMEnergyPJ {
		t.Errorf("DRAM energy = %f", dram)
	}
	// GLB at the 128 KiB reference point should cost ~6x MAC.
	if glb < 5.9*energy.MACEnergyPJ || glb > 6.1*energy.MACEnergyPJ {
		t.Errorf("GLB energy = %f, want ~%f", glb, 6*energy.MACEnergyPJ)
	}
	// PE scratchpads hit the register-file floor.
	if pe != energy.RegisterFileEnergyPJ {
		t.Errorf("PE energy = %f, want RF floor %f", pe, energy.RegisterFileEnergyPJ)
	}
}

func TestAreaGrowsWithArray(t *testing.T) {
	small := EyerissLike(2, 7, 128).AreaMM2()
	base := EyerissLike(14, 12, 128).AreaMM2()
	big := EyerissLike(16, 16, 128).AreaMM2()
	if !(small < base && base < big) {
		t.Errorf("area ordering violated: %f, %f, %f", small, base, big)
	}
	if small <= 0 {
		t.Errorf("area = %f, want > 0", small)
	}
}

func TestNetworkTotal(t *testing.T) {
	if (Network{}).Total() != 1 {
		t.Error("zero network total != 1")
	}
	if (Network{FanoutX: 14, FanoutY: 12}).Total() != 168 {
		t.Error("14x12 total != 168")
	}
}

func TestString(t *testing.T) {
	s := EyerissLike(14, 12, 128).String()
	for _, frag := range []string{"DRAM", "GLB", "PE", "14x12"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}

func TestWords(t *testing.T) {
	if Words(128) != 65536 {
		t.Errorf("Words(128) = %d", Words(128))
	}
	if Words(1) != 512 {
		t.Errorf("Words(1) = %d", Words(1))
	}
}

func TestTPULike(t *testing.T) {
	a := TPULike(16, 16, 96)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.TotalLanes() != 256 {
		t.Errorf("lanes = %d", a.TotalLanes())
	}
	if a.Levels[1].KeepsRole(workload.Weight, false) {
		t.Error("unified buffer should bypass weights (weight FIFO)")
	}
	if c, ded := a.Levels[2].RoleCapacity(workload.Weight); !ded || c != 2 {
		t.Errorf("cell weight regs = %d dedicated=%v", c, ded)
	}
}

func TestEyerissV2Like(t *testing.T) {
	a := EyerissV2Like(8, 3, 128)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.TotalLanes() != 24 {
		t.Errorf("lanes = %d", a.TotalLanes())
	}
	if len(a.Levels) != 4 {
		t.Fatalf("levels = %d", len(a.Levels))
	}
	if a.Instances(2) != 8 || a.Instances(3) != 24 {
		t.Errorf("instances = %d, %d", a.Instances(2), a.Instances(3))
	}
	// Deeper hierarchies still have monotone access energies.
	for li := 1; li < len(a.Levels); li++ {
		if a.AccessEnergyPJ(li) > a.AccessEnergyPJ(li-1) {
			t.Errorf("energy not monotone at level %d", li)
		}
	}
	if TPULike(8, 8, 64).AreaMM2() <= 0 {
		t.Error("TPU area not positive")
	}
}
