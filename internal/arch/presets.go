package arch

import (
	"fmt"

	"ruby/internal/workload"
)

// Words converts a KiB figure to 16-bit words.
func Words(kib int) int64 { return int64(kib) * 1024 / 2 }

// EyerissLike builds the paper's baseline architecture (Section II-B): a
// rows x cols grid of PEs, each with dedicated ifmap (depth 12), psum (depth
// 16) and weight (depth 224) scratchpads and a 16-bit MAC; a shared global
// buffer of glbKiB (128 KiB in the baseline) holding activations and partial
// sums; and off-chip DRAM. Weights bypass the GLB and stream directly to the
// PE weight scratchpads, as in Eyeriss. The array network multicasts.
//
// The paper's baseline is EyerissLike(14, 12, 128).
func EyerissLike(cols, rows, glbKiB int) *Arch {
	a := &Arch{
		Name: fmt.Sprintf("eyeriss-like-%dx%d-glb%dKiB", cols, rows, glbKiB),
		Levels: []Level{
			{
				Name: "DRAM",
			},
			{
				Name:     "GLB",
				Capacity: Words(glbKiB),
				Keeps: map[workload.Role]bool{
					workload.Input:  true,
					workload.Output: true,
					// Weights bypass the GLB.
				},
				Fanout: Network{FanoutX: cols, FanoutY: rows, Multicast: true},
			},
			{
				Name: "PE",
				PerRole: map[workload.Role]int64{
					workload.Input:  12,
					workload.Output: 16,
					workload.Weight: 224,
				},
				Fanout: Network{FanoutX: 1, FanoutY: 1},
			},
		},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// SimbaLike builds a Simba-like PE cluster (Section IV-C): numPEs processing
// elements, each containing a shared weight buffer, input buffer and
// accumulation buffer feeding vecUnits vector MACs of vecWidth lanes each.
// The paper's configurations are SimbaLike(15, 4, 4) and SimbaLike(9, 3, 3).
//
// Capacities follow the published Simba PE: 32 KiB weight buffer, 8 KiB
// input buffer, 3 KiB accumulation buffer; the global buffer is 64 KiB.
func SimbaLike(numPEs, vecUnits, vecWidth int) *Arch {
	a := &Arch{
		Name: fmt.Sprintf("simba-like-%dpe-%dx%dw", numPEs, vecUnits, vecWidth),
		Levels: []Level{
			{
				Name: "DRAM",
			},
			{
				Name:     "GLB",
				Capacity: Words(64),
				Keeps: map[workload.Role]bool{
					workload.Input:  true,
					workload.Output: true,
				},
				Fanout: Network{FanoutX: numPEs, FanoutY: 1, Multicast: true},
			},
			{
				Name: "PEBuf",
				PerRole: map[workload.Role]int64{
					workload.Weight: Words(32),
					workload.Input:  Words(8),
					workload.Output: Words(3),
				},
				// Vector datapath: vecUnits vector MACs of vecWidth lanes.
				Fanout: Network{FanoutX: vecWidth, FanoutY: vecUnits, Multicast: true},
			},
		},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// EyerissV2Like builds a hierarchical Eyeriss-v2-style architecture: the
// global buffer fans out to clusters, each cluster owns a shared scratchpad
// and fans out to PEs with per-operand register files. The four-level
// hierarchy produces six-slot tiling chains, exercising imperfect
// factorization at multiple depths simultaneously.
func EyerissV2Like(clusters, pesPerCluster, glbKiB int) *Arch {
	a := &Arch{
		Name: fmt.Sprintf("eyerissv2-like-%dc-%dpe", clusters, pesPerCluster),
		Levels: []Level{
			{Name: "DRAM"},
			{
				Name:     "GLB",
				Capacity: Words(glbKiB),
				Keeps: map[workload.Role]bool{
					workload.Input:  true,
					workload.Output: true,
				},
				Fanout: Network{FanoutX: clusters, FanoutY: 1, Multicast: true},
			},
			{
				Name:     "Cluster",
				Capacity: Words(12),
				Fanout:   Network{FanoutX: pesPerCluster, FanoutY: 1, Multicast: true},
			},
			{
				Name: "PE",
				PerRole: map[workload.Role]int64{
					workload.Input:  12,
					workload.Output: 16,
					workload.Weight: 192,
				},
				Fanout: Network{FanoutX: 1, FanoutY: 1},
			},
		},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// TPULike builds a TPU-v1-style systolic architecture as a further
// robustness target beyond the paper's two baselines: a large unified
// activation buffer and a separate weight FIFO feed a rows x cols MAC grid
// whose accumulators drain to an accumulator SRAM. The grid is modeled as a
// spatial fanout below a small per-cell register level; the systolic
// dataflow's weight-stationarity is expressed through constraints (weights
// resident per cell, reduction down columns).
func TPULike(rows, cols, unifiedKiB int) *Arch {
	a := &Arch{
		Name: fmt.Sprintf("tpu-like-%dx%d", rows, cols),
		Levels: []Level{
			{Name: "DRAM"},
			{
				Name:     "UB", // unified buffer (activations + accumulators)
				Capacity: Words(unifiedKiB),
				Keeps: map[workload.Role]bool{
					workload.Input:  true,
					workload.Output: true,
				},
				Fanout: Network{FanoutX: cols, FanoutY: rows, Multicast: true},
			},
			{
				Name: "Cell",
				PerRole: map[workload.Role]int64{
					workload.Weight: 2, // double-buffered stationary weight
					workload.Input:  2,
					workload.Output: 2,
				},
				Fanout: Network{FanoutX: 1, FanoutY: 1},
			},
		},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// ToyGLB builds the Section II-D illustration architecture: DRAM, a small
// global buffer of glbWords words, and a fanout of numPEs storage-less PEs
// (the paper's Figs. 4-5 use ToyGLB(6, 512) — 6 PEs, 1 KiB GLB).
func ToyGLB(numPEs int, glbWords int64) *Arch {
	a := &Arch{
		Name: fmt.Sprintf("toy-glb-%dpe", numPEs),
		Levels: []Level{
			{Name: "DRAM"},
			{
				Name:     "GLB",
				Capacity: glbWords,
				Fanout:   Network{FanoutX: numPEs, FanoutY: 1, Multicast: true},
			},
		},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// ToyLinear builds the Section III-A study architecture: a two-level memory
// hierarchy with numPEs linear PEs, each holding a scratchpad of spadWords
// words (1 KiB = 512 words in the paper).
func ToyLinear(numPEs int, spadWords int64) *Arch {
	a := &Arch{
		Name: fmt.Sprintf("toy-linear-%dpe", numPEs),
		Levels: []Level{
			{
				Name:   "DRAM",
				Fanout: Network{FanoutX: numPEs, FanoutY: 1, Multicast: true},
			},
			{
				Name:     "Spad",
				Capacity: spadWords,
				Fanout:   Network{FanoutX: 1, FanoutY: 1},
			},
		},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}
