// Package arch models user-defined tensor-accelerator architectures as the
// linear memory hierarchies Timeloop-style mappers target: an off-chip DRAM,
// a stack of on-chip storage levels, spatial fanouts between levels, and MAC
// (optionally vector-MAC) datapaths at the bottom.
package arch

import (
	"fmt"
	"strings"

	"ruby/internal/energy"
	"ruby/internal/workload"
)

// Network describes the interconnect fanning out from a storage level to the
// instances of the next-inner level (or to MAC lanes below the innermost
// level). FanoutX and FanoutY are the two physical axes of the array; a
// linear array has FanoutY = 1.
type Network struct {
	FanoutX int // >= 1
	FanoutY int // >= 1
	// Multicast reports whether the network can deliver one parent read to
	// multiple children (Eyeriss-style multicast NoC). Without it, each
	// child's copy costs a separate parent read.
	Multicast bool
	// HopEnergyPJ is the wire/router energy per word per hop (0 = not
	// modeled). Words delivered across the network are charged
	// HopEnergyPJ * MeanHops.
	HopEnergyPJ float64
}

// MeanHops estimates the average X-Y routing distance from the network's
// injection point to an instance: half the span along each axis.
func (n Network) MeanHops() float64 {
	x, y := n.FanoutX, n.FanoutY
	if x < 1 {
		x = 1
	}
	if y < 1 {
		y = 1
	}
	return float64(x-1)/2 + float64(y-1)/2
}

// Total returns the total fanout FanoutX*FanoutY.
func (n Network) Total() int {
	x, y := n.FanoutX, n.FanoutY
	if x < 1 {
		x = 1
	}
	if y < 1 {
		y = 1
	}
	return x * y
}

// Level is one storage level of the hierarchy, outermost (DRAM) first in
// Arch.Levels.
type Level struct {
	Name string

	// Capacity is the level's size in words; 0 means unbounded (DRAM).
	// Ignored when PerRole is set.
	Capacity int64

	// PerRole, when non-nil, declares dedicated per-operand buffers (e.g.
	// Eyeriss's ifmap/weight/psum scratchpads) with individual capacities in
	// words. Tensors of roles absent from the map cannot be stored here.
	PerRole map[workload.Role]int64

	// Keeps restricts which operand roles may reside at this level; nil
	// means all roles. (A role must also be present in PerRole when PerRole
	// is set.) DRAM keeps everything regardless.
	Keeps map[workload.Role]bool

	// Fanout is the network to the next-inner level (or to the MAC lanes for
	// the innermost level). The zero value means no spatial expansion.
	Fanout Network

	// BandwidthWords is the level's aggregate access bandwidth per instance
	// in words per cycle (reads plus writes). 0 means unlimited — the
	// paper's evaluation, like Timeloop's default exercises, is
	// compute-bound. When set, the cost model stretches latency to
	// max(compute, per-level traffic/bandwidth).
	BandwidthWords float64

	// StaticPJPerCycle is the level's leakage energy per instance per cycle
	// in picojoules (0 = not modeled). Charged as cycles * instances *
	// StaticPJPerCycle.
	StaticPJPerCycle float64
}

// Keeps reports whether role tensors may be stored at level l (DRAM always
// may; l0 denotes whether this is the outermost level).
func (l *Level) KeepsRole(r workload.Role, isDRAM bool) bool {
	if isDRAM {
		return true
	}
	if l.PerRole != nil {
		if _, ok := l.PerRole[r]; !ok {
			return false
		}
	}
	if l.Keeps == nil {
		return true
	}
	return l.Keeps[r]
}

// RoleCapacity returns the capacity in words available to role r at level l,
// and whether the budget is per-role (true) or shared (false). 0/shared with
// Capacity 0 means unbounded.
func (l *Level) RoleCapacity(r workload.Role) (words int64, dedicated bool) {
	if l.PerRole != nil {
		return l.PerRole[r], true
	}
	return l.Capacity, false
}

// TotalCapacity returns the level's total storage in words (summing per-role
// buffers when present).
func (l *Level) TotalCapacity() int64 {
	if l.PerRole != nil {
		var sum int64
		for _, c := range l.PerRole {
			sum += c
		}
		return sum
	}
	return l.Capacity
}

// Arch is a complete accelerator description.
type Arch struct {
	Name   string
	Levels []Level // outermost (DRAM) first; at least 2 levels
	Energy energy.Table
}

// Validate checks structural invariants.
func (a *Arch) Validate() error {
	if len(a.Levels) < 2 {
		return fmt.Errorf("arch %q: %d levels, want >= 2 (DRAM + on-chip)", a.Name, len(a.Levels))
	}
	if a.Levels[0].Capacity != 0 || a.Levels[0].PerRole != nil {
		return fmt.Errorf("arch %q: outermost level %q must be unbounded DRAM", a.Name, a.Levels[0].Name)
	}
	for i, l := range a.Levels {
		if l.Name == "" {
			return fmt.Errorf("arch %q: level %d has no name", a.Name, i)
		}
		if l.Fanout.FanoutX < 0 || l.Fanout.FanoutY < 0 {
			return fmt.Errorf("arch %q: level %q has negative fanout", a.Name, l.Name)
		}
		if i > 0 && l.Capacity < 0 {
			return fmt.Errorf("arch %q: level %q capacity %d < 0", a.Name, l.Name, l.Capacity)
		}
		for r, c := range l.PerRole {
			if c < 1 {
				return fmt.Errorf("arch %q: level %q role %v capacity %d < 1", a.Name, l.Name, r, c)
			}
		}
	}
	return nil
}

// Instances returns the number of physical instances of level i: the product
// of all fanouts of outer levels.
func (a *Arch) Instances(i int) int64 {
	n := int64(1)
	for j := 0; j < i; j++ {
		n *= int64(a.Levels[j].Fanout.Total())
	}
	return n
}

// TotalLanes returns the total number of MAC lanes: the product of every
// fanout in the hierarchy (including vector lanes below the innermost level).
func (a *Arch) TotalLanes() int64 {
	n := int64(1)
	for i := range a.Levels {
		n *= int64(a.Levels[i].Fanout.Total())
	}
	return n
}

// AccessEnergyPJ returns the per-word access energy of level i.
func (a *Arch) AccessEnergyPJ(i int) float64 {
	l := &a.Levels[i]
	if i == 0 {
		return a.Energy.Access(0)
	}
	cap := l.TotalCapacity()
	if cap <= 0 {
		return a.Energy.Access(0)
	}
	return a.Energy.Access(cap)
}

// AreaMM2 returns the accelerator's on-chip area estimate: all storage-level
// instances plus MAC lanes.
func (a *Arch) AreaMM2() float64 {
	var area float64
	for i := 1; i < len(a.Levels); i++ { // skip DRAM
		area += float64(a.Instances(i)) * energy.SRAMAreaMM2(a.Levels[i].TotalCapacity())
	}
	lanes := float64(a.TotalLanes())
	area += lanes * energy.MACAreaMM2
	// PE overhead counted at the innermost storage level's instance count.
	area += float64(a.Instances(len(a.Levels)-1)) * energy.PEOverheadAreaMM2
	return area
}

// String renders the hierarchy compactly.
func (a *Arch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", a.Name)
	for i := range a.Levels {
		l := &a.Levels[i]
		fmt.Fprintf(&b, " %s", l.Name)
		if cap := l.TotalCapacity(); cap > 0 {
			fmt.Fprintf(&b, "[%dw]", cap)
		}
		if f := l.Fanout.Total(); f > 1 {
			fmt.Fprintf(&b, " --%dx%d-->", l.Fanout.FanoutX, l.Fanout.FanoutY)
		} else if i != len(a.Levels)-1 {
			fmt.Fprintf(&b, " -->")
		}
	}
	return b.String()
}
