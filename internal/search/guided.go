package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"ruby/internal/checkpoint"
	"ruby/internal/engine"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/obs"
)

// Guided tuning knobs. They are compile-time constants, not Options: the
// searcher's value is converging in thousands of evaluations without
// per-problem tuning, and the determinism contract (kill-and-resume
// bit-identical) is easiest to keep when the sweep shape is fixed.
const (
	// Chain candidates per sweep for the dims the attribution ranks first,
	// mid-table and last. Spending draws where the model says the cost lives
	// is the point of the guided scan.
	guidedHeadCands = 10
	guidedMidCands  = 5
	guidedTailCands = 3
	// Dimensions whose whole chain space is at most this large are scanned
	// exhaustively per sweep (exact coordinate descent, FactorFlow-style)
	// instead of by random candidate draws. The lists are precomputed at
	// construction, so the scan itself stays allocation-free.
	guidedExactChainCap = 256
	// Loop-order candidates per level per sweep (skipped under FixedPerms,
	// where the only legal order is the canonical one).
	guidedPermCands = 2
	// Random fallback samples per Step while looking for a valid foothold
	// when the constructive seed is invalid.
	guidedSeedBatch = 64
	// Spatial-assignment seeds are enumerated exhaustively while the number
	// of injective dim-to-parFor assignments stays at most this large;
	// beyond it the seeding turns greedy (one slot at a time).
	guidedSeedAssignCap = 64
	// Kick strength: random moves committed onto the incumbent at each
	// restart, cycling from 2 up to guidedPerturbMax as restarts keep
	// failing (basin hopping — short kicks explore the near basin, long
	// kicks jump out of it).
	guidedPerturbMin = 2
	guidedPerturbMax = 5
	// Every guidedDiversifyEvery-th stale restart abandons the incumbent's
	// basin entirely and descends from a fresh random sample instead.
	guidedDiversifyEvery = 3
	// Consecutive restarts without a new global best before the search
	// concludes the space is exhausted around the incumbent and stops.
	guidedStalePatience = 8
)

// Phases of the guided search, persisted in snapshots.
const (
	guidedPhaseSeed  = "seed"
	guidedPhaseSweep = "sweep"
)

// Kinds of scan winner, used to replay the winning proposal.
const (
	guidedKindChain = iota
	guidedKindChainExact
	guidedKindPerm
	guidedKindKeep
)

// guidedWinner remembers the best improving proposal of one sweep: what to
// re-propose (kind plus its dim/level/pair argument, and for exact chain
// scans the chain index) and the RNG state to rewind to so a drawn
// re-proposal reproduces the scanned candidate draw for draw.
type guidedWinner struct {
	kind int
	arg  int
	arg2 int
	val  float64
	pre  checkpoint.RNG
}

// GuidedSearcher is the model-guided greedy mapper (FactorFlow-style): a
// three-phase optimizer that uses the cost model's own attribution
// (nest.Plan.Attribute) to decide where to search next, converging in
// thousands of evaluations where the stochastic searchers need hundreds of
// thousands.
//
// Phase 1 (constructive seed) starts from the trivially valid mapping that
// parks every loop at DRAM (mapping.Uniform level 0 — tiles below are
// single elements, so capacity can only pass), then enumerates
// spatially-saturating variants of it — every injective assignment of
// workload dims to parFor slots, each assigned dim spatialized by its
// largest divisor fitting the fanout. Which dims own the array is the most
// coupled choice in the space (single-dim descent cannot swap two dims
// across a saturated fanout), so it is decided up front by construction.
// When an exotic architecture rejects every constructive seed, the phase
// falls back to random sampling. Phase 2 (greedy descent) repeatedly sweeps
// the move neighborhood in groups: the cost attribution ranks the workload
// dims by how much energy-latency their loops account for, each dim group
// scans chain candidates (exactly when the dim's chain space is small,
// by random draws otherwise, spending more draws on the expensive dims),
// then loop-order groups per level and every bypass toggle; each group's
// best improving proposal is committed before the next group is scanned.
// A fully stalled sweep gets one spatial rescue before restarting: coupled
// two-dim splits of each spatial slot's fanout, the one neighborhood the
// single-dim move vocabulary cannot reach.
// Phase 3 (perturbation restart) fires when a sweep finds no improving
// move: the incumbent is re-seeded and a few random moves are committed
// onto it to escape the local optimum (every guidedDiversifyEvery-th stale
// restart instead descends from the best of a fresh random batch); after
// guidedStalePatience consecutive restarts without a new global best the
// search stops.
//
// All draws come from one serializable RNG consumed in a fixed serial order,
// and one Step is one atomic unit (a seed attempt, one full sweep, or one
// restart), so interrupt/resume is bit-identical to an uninterrupted run.
// The working mapping diverges from the incumbent after a perturbation, so
// snapshots persist both.
type GuidedSearcher struct {
	sp  *mapspace.Space
	eng *engine.Engine
	opt Options

	rng *checkpoint.RNG
	rnd *rand.Rand
	wk  *engine.Worker
	smp *mapspace.Sampler
	mut *mapspace.Mutator
	dw  *engine.Delta
	bd  *nest.Breakdown
	m   *mapping.Mapping // reused fallback-sample buffer
	gm  engine.GuidedMetrics

	cur        *mapping.Mapping // working mapping, mutated in place
	curVal     float64          // objective value of cur
	sweepReady bool             // dw seeded with cur

	// Sweep scratch: dim ranking, the winning proposal, and — for dims with
	// small chain spaces — the precomputed full chain list scanned exactly.
	dimScore    []float64
	dimOrder    []int
	dimNames    []string
	exactChains [][][]int // per dim; nil selects random candidate draws
	spatialIdx  []int     // spatial slot indices, widest fanout first
	win         guidedWinner
	winFound    bool

	res       *Result
	phase     string
	seeded    bool // constructive seed attempted (snapshot: Warmed)
	restarts  int64
	sinceBest int64
	done      bool
	start     time.Time
}

// NewGuided builds a resumable model-guided search. opt.Threads is ignored
// (the scan is serial by design — its determinism is the point) and
// opt.ConsecutiveNoImprove does not apply: termination is
// guidedStalePatience restarts without improvement, or opt.MaxEvaluations.
func NewGuided(sp *mapspace.Space, eng *engine.Engine, opt Options) *GuidedSearcher {
	opt = opt.withDefaults()
	requireSharedContext(sp, eng)
	s := &GuidedSearcher{
		sp: sp, eng: eng, opt: opt,
		rng: checkpoint.NewRNG(opt.Seed),
		wk:  eng.NewWorker(), smp: sp.NewSampler(),
		mut: sp.NewMutator(), dw: eng.NewDelta(),
		m:   &mapping.Mapping{},
		res: &Result{}, phase: guidedPhaseSeed, start: time.Now(),
	}
	s.rnd = rand.New(s.rng)
	s.bd = s.dw.NewBreakdown()
	s.gm, _ = eng.Metrics().(engine.GuidedMetrics)
	nd := s.mut.NumDims()
	s.dimScore = make([]float64, nd)
	s.dimOrder = make([]int, nd)
	s.dimNames = sp.Work.DimNames()
	s.exactChains = make([][][]int, nd)
	for di, d := range s.dimNames {
		if sp.ChainCount(d) > guidedExactChainCap {
			continue
		}
		sp.EnumerateChains(d, func(fs []int) bool {
			s.exactChains[di] = append(s.exactChains[di], append([]int(nil), fs...))
			return true
		})
	}
	for _, sl := range sp.Slots() {
		if sl.Spatial() {
			s.spatialIdx = append(s.spatialIdx, sl.Index)
		}
	}
	slots := sp.Slots()
	for i := 1; i < len(s.spatialIdx); i++ {
		si := s.spatialIdx[i]
		j := i - 1
		for ; j >= 0 && slots[s.spatialIdx[j]].Fanout < slots[si].Fanout; j-- {
			s.spatialIdx[j+1] = s.spatialIdx[j]
		}
		s.spatialIdx[j+1] = si
	}
	return s
}

// Guided runs the model-guided greedy mapper to completion and returns the
// best mapping found. See GuidedSearcher for the algorithm; this is the
// one-shot entry point matching Random and friends.
func Guided(ctx context.Context, sp *mapspace.Space, eng *engine.Engine, opt Options) *Result {
	ctx, span := obs.StartSpan(ctx, "search:guided")
	defer span.End()
	s := NewGuided(sp, eng, opt)
	for {
		done, err := s.Step(ctx)
		if done || err != nil {
			return s.Result()
		}
	}
}

// Result returns the result so far.
func (s *GuidedSearcher) Result() *Result { return s.res }

// budgetLeft mirrors the other searchers' evaluation-budget check.
func (s *GuidedSearcher) budgetLeft() bool {
	return s.opt.MaxEvaluations <= 0 || s.res.Evaluated < s.opt.MaxEvaluations
}

// considerBest adopts (m, c) as the global incumbent when it improves it.
func (s *GuidedSearcher) considerBest(m *mapping.Mapping, c *nest.Cost, met engine.Metrics) {
	v := s.opt.Objective.Value(c)
	if s.res.Best != nil && v >= s.opt.Objective.Value(&s.res.BestCost) {
		return
	}
	s.res.Best = m.Clone()
	s.res.BestCost = c.Clone()
	s.sinceBest = 0
	s.res.Trace = append(s.res.Trace, TracePoint{Evals: s.res.Evaluated, Value: v})
	met.Improvement(s.res.Evaluated, v)
}

// Step performs one atomic unit of guided search: a seed attempt (phase 1),
// one full steepest-descent sweep plus — when the sweep stalls — one
// perturbation restart (phases 2+3). Cancellation is honored between Steps;
// a single sweep is bounded (a few dozen delta evaluations), so latency
// stays comparable to the batch searchers without any rollback machinery.
func (s *GuidedSearcher) Step(ctx context.Context) (bool, error) {
	if s.done {
		return true, nil
	}
	if err := ctxErr(ctx); err != nil {
		return false, err
	}
	met := s.eng.Metrics()
	if s.phase == guidedPhaseSeed {
		return s.stepSeed(met)
	}
	return s.stepSweep(met)
}

// stepSeed establishes a valid incumbent: the warm start if given, then the
// constructive all-at-DRAM mapping, then batches of random samples.
func (s *GuidedSearcher) stepSeed(met engine.Metrics) (bool, error) {
	if !s.seeded {
		s.seeded = true
		if s.opt.WarmStart != nil {
			// Uncounted, matching the other searchers' warm-start handling.
			if c := s.eng.Evaluate(s.opt.WarmStart); c.Valid {
				s.res.Best = s.opt.WarmStart.Clone()
				s.res.BestCost = c.Clone()
				s.res.Trace = append(s.res.Trace, TracePoint{Evals: 0, Value: s.opt.Objective.Value(&c)})
			}
		}
		if s.budgetLeft() {
			seed := mapping.Uniform(s.sp.Work, s.sp.Arch, 0)
			s.res.Evaluated++
			c := s.wk.Evaluate(seed)
			if c.Valid {
				s.res.Valid++
				s.considerBest(seed, &c, met)
			}
		}
		s.spatialSeeds(met)
		if s.res.Best != nil {
			s.enterSweep()
			return false, nil
		}
		if !s.budgetLeft() {
			return s.finish(met), nil
		}
		return false, nil
	}
	// The constructive seed was invalid for this space (constraints, exotic
	// fanout): fall back to random sampling for a foothold.
	for i := 0; i < guidedSeedBatch; i++ {
		if !s.budgetLeft() {
			return s.finish(met), nil
		}
		s.res.Evaluated++
		s.smp.SampleInto(s.rnd, s.m)
		c := s.wk.Evaluate(s.m)
		if c.Valid {
			s.res.Valid++
			s.considerBest(s.m, &c, met)
			s.enterSweep()
			return false, nil
		}
	}
	return false, nil
}

// spatialSeeds evaluates the spatially-saturating constructive seeds: every
// injective assignment of workload dims to parFor slots (greedy, one slot at
// a time, when there are too many), each assigned dim spatialized by its
// largest divisor fitting the slot's fanout and the remainder left at DRAM.
// Which dims own the array is the most coupled choice in the mapspace —
// swapping two dims across a saturated fanout needs two simultaneous chain
// moves the descent cannot make — so it is settled here by construction.
// Draw-free and deterministic; every evaluation is counted.
func (s *GuidedSearcher) spatialSeeds(met engine.Metrics) {
	ns, nd := len(s.spatialIdx), len(s.dimNames)
	if ns == 0 {
		return
	}
	assign := make([]int, ns)
	used := make([]bool, nd)
	count := 1
	for k := 0; k < ns && k < nd; k++ {
		count *= nd - k
		if count > guidedSeedAssignCap {
			break
		}
	}
	if count <= guidedSeedAssignCap {
		s.enumSpatialSeeds(assign, used, 0, met)
		return
	}
	// Greedy: fill the widest fanout first, keeping the dim whose seed
	// evaluates best given the slots already assigned.
	for k := range assign {
		assign[k] = -1
	}
	bestSoFar := math.Inf(1)
	for k := 0; k < ns; k++ {
		bestDim := -1
		for di := 0; di < nd; di++ {
			if used[di] {
				continue
			}
			assign[k] = di
			if v, ok := s.evalSeed(s.buildSpatialSeed(assign), met); ok && v < bestSoFar {
				bestSoFar, bestDim = v, di
			}
			if !s.budgetLeft() {
				return
			}
		}
		assign[k] = bestDim
		if bestDim >= 0 {
			used[bestDim] = true
		}
	}
}

// enumSpatialSeeds recursively evaluates every injective assignment of dims
// to the spatial slots from position k on.
func (s *GuidedSearcher) enumSpatialSeeds(assign []int, used []bool, k int, met engine.Metrics) {
	if k == len(assign) {
		s.evalSeed(s.buildSpatialSeed(assign), met)
		return
	}
	any := false
	for di := range used {
		if used[di] {
			continue
		}
		if !s.budgetLeft() {
			return
		}
		any = true
		assign[k], used[di] = di, true
		s.enumSpatialSeeds(assign, used, k+1, met)
		used[di] = false
	}
	if !any {
		// More spatial slots than dims: leave the narrower ones empty.
		for i := k; i < len(assign); i++ {
			assign[i] = -1
		}
		s.evalSeed(s.buildSpatialSeed(assign), met)
	}
}

// buildSpatialSeed constructs the all-at-DRAM mapping with assign's dims
// spatialized: assign[k] is the dim occupying spatial slot s.spatialIdx[k]
// (-1 leaves it empty), factored by its largest divisor fitting the fanout.
func (s *GuidedSearcher) buildSpatialSeed(assign []int) *mapping.Mapping {
	m := mapping.Uniform(s.sp.Work, s.sp.Arch, 0)
	slots := s.sp.Slots()
	for k, di := range assign {
		if di < 0 {
			continue
		}
		d := s.dimNames[di]
		b := s.sp.Work.Bound(d)
		f := largestDivisorAtMost(b, slots[s.spatialIdx[k]].Fanout)
		if f <= 1 {
			continue
		}
		fs := m.Factors[d]
		fs[0] = b / f
		fs[s.spatialIdx[k]] = f
	}
	return m
}

// evalSeed scores one constructive seed (counted), feeding the incumbent.
func (s *GuidedSearcher) evalSeed(m *mapping.Mapping, met engine.Metrics) (float64, bool) {
	if !s.budgetLeft() {
		return 0, false
	}
	s.res.Evaluated++
	c := s.wk.Evaluate(m)
	if !c.Valid {
		return 0, false
	}
	s.res.Valid++
	s.considerBest(m, &c, met)
	return s.opt.Objective.Value(&c), true
}

// largestDivisorAtMost returns the largest divisor of n not exceeding lim
// (at least 1).
func largestDivisorAtMost(n, lim int) int {
	if lim > n {
		lim = n
	}
	for f := lim; f > 1; f-- {
		if n%f == 0 {
			return f
		}
	}
	return 1
}

// enterSweep transitions to the greedy phase, starting from the incumbent.
func (s *GuidedSearcher) enterSweep() {
	s.phase = guidedPhaseSweep
	s.cur, s.sweepReady = nil, false
}

// stepSweep runs one steepest-descent sweep and, when it stalls, one
// perturbation restart.
func (s *GuidedSearcher) stepSweep(met engine.Metrics) (bool, error) {
	if !s.sweepReady {
		// Lazy (re-)seeding of the delta session (process-local state, not
		// checkpoint state): uncounted and draw-free, so resumed and
		// uninterrupted runs stay bit-identical.
		if s.cur == nil {
			s.cur = s.res.Best.Clone()
		}
		c := s.dw.Seed(s.cur)
		if !c.Valid {
			return false, errors.New("search: guided working mapping no longer validates")
		}
		s.curVal = s.opt.Objective.Value(&c)
		s.sweepReady = true
	}
	if !s.budgetLeft() {
		return s.finish(met), nil
	}
	improved, spent, err := s.scan(met)
	if err != nil {
		return false, err
	}
	if spent {
		return s.finish(met), nil
	}
	if improved {
		return false, nil
	}
	ok, spent, err := s.spatialRescue(met)
	if err != nil {
		return false, err
	}
	if spent {
		return s.finish(met), nil
	}
	if ok {
		return false, nil
	}
	return s.restart(met)
}

// spatialRescue breaks pairwise coupling at saturated parFor slots. A stalled
// sweep means no single-dim chain move improves the working mapping — but at
// a full fanout, handing capacity from one dim to another needs two
// simultaneous chain moves (shrinking one dim's parFor factor alone wastes
// the array, growing the other's alone overflows it), which the coordinate
// descent cannot make. This rescue enumerates, for every spatial slot and
// every dim pair, the divisor splits (fa, fb) of the slot's fanout budget,
// patching both chains at once (the displaced iterations return to DRAM) and
// evaluating the joint candidate in full. The best improving candidate
// becomes the working mapping and descent continues; draw-free, every
// evaluation counted. Cold path: runs only when a sweep stalls.
func (s *GuidedSearcher) spatialRescue(met engine.Metrics) (bool, bool, error) {
	var bestM *mapping.Mapping
	bestV := s.curVal
	slots := s.sp.Slots()
	nd := len(s.dimNames)
	for _, si := range s.spatialIdx {
		fanout := slots[si].Fanout
		for a := 0; a < nd; a++ {
			for b := a + 1; b < nd; b++ {
				others := 1
				for di := 0; di < nd; di++ {
					if di != a && di != b {
						others *= s.cur.Factors[s.dimNames[di]][si]
					}
				}
				if others > fanout {
					continue
				}
				budget := fanout / others
				da, db := s.dimNames[a], s.dimNames[b]
				restA := chainRest(s.cur.Factors[da], si)
				restB := chainRest(s.cur.Factors[db], si)
				ba, bb := s.sp.Work.Bound(da), s.sp.Work.Bound(db)
				if restA <= 0 || restB <= 0 || ba%restA != 0 || bb%restB != 0 {
					// The pair's chains are imperfect outside this slot; the
					// rescue only rebuilds perfect splits.
					continue
				}
				maxA, maxB := ba/restA, bb/restB
				curA, curB := s.cur.Factors[da][si], s.cur.Factors[db][si]
				for fa := 1; fa <= maxA && fa <= budget; fa++ {
					if maxA%fa != 0 {
						continue
					}
					for fb := 1; fb <= maxB && fa*fb <= budget; fb++ {
						if maxB%fb != 0 || (fa == curA && fb == curB) {
							continue
						}
						if !s.budgetLeft() {
							return bestM != nil, true, nil
						}
						cand := s.cur.Clone()
						fsA, fsB := cand.Factors[da], cand.Factors[db]
						fsA[si], fsA[0] = fa, maxA/fa
						fsB[si], fsB[0] = fb, maxB/fb
						if v, ok := s.evalSeed(cand, met); ok && v < bestV {
							bestM, bestV = cand, v
						}
					}
				}
			}
		}
	}
	if bestM == nil {
		return false, false, nil
	}
	s.cur = bestM
	c := s.dw.Seed(s.cur)
	if !c.Valid {
		return false, false, errors.New("search: guided rescue mapping no longer validates")
	}
	s.curVal = s.opt.Objective.Value(&c)
	return true, false, nil
}

// chainRest is the product of a chain's factors outside the DRAM slot (0)
// and slot si — the part of the dim's tiling the spatial rescue preserves.
func chainRest(fs []int, si int) int {
	rest := 1
	for j := 1; j < len(fs); j++ {
		if j != si {
			rest *= fs[j]
		}
	}
	return rest
}

// scan is the guided inner loop: one greedy coordinate-descent sweep over
// the move neighborhood of the working mapping, scored by the delta kernel.
// The neighborhood is visited in groups — one group per workload dim (its
// chain candidates), per level (its loop-order candidates) and per bypass
// pair — and each group's best improving proposal is committed immediately
// before the next group is scanned, so one sweep can improve every
// coordinate. Candidates are rejected and undone during the group scan; the
// commit replays the recorded winner. Returns whether any group improved and
// whether the evaluation budget ran out mid-sweep.
//
// Steady-state allocation-free: the ranking scratch, the winner record, the
// precomputed chain lists and the Mutator's move are all preallocated, and
// sorting is a hand-rolled insertion sort (sort.Slice would box its
// arguments).
//
//ruby:hotpath
func (s *GuidedSearcher) scan(met engine.Metrics) (bool, bool, error) {
	improved := false

	// Rank dims by attributed cost: the energy charged to tensors each dim
	// indexes, weighted by the dim's latency factor. The expensive dims are
	// scanned first (their chains move the most cost) and get the most
	// random candidates when their chain space is too big to scan exactly.
	s.dw.Attribute(s.bd)
	nd := len(s.dimOrder)
	for d := 0; d < nd; d++ {
		cyc := s.bd.DimCycles[d]
		if cyc < 1 {
			cyc = 1
		}
		s.dimScore[d] = s.bd.DimEnergyPJ[d] * cyc
		s.dimOrder[d] = d
	}
	for i := 1; i < nd; i++ {
		d := s.dimOrder[i]
		sc := s.dimScore[d]
		j := i - 1
		for ; j >= 0 && s.dimScore[s.dimOrder[j]] < sc; j-- {
			s.dimOrder[j+1] = s.dimOrder[j]
		}
		s.dimOrder[j+1] = d
	}

	// Tiling-chain groups. Dims with a small chain space are scanned
	// exactly (every chain, no draws — the per-dim commit is the true
	// coordinate optimum); large ones get random candidate draws.
	for i := 0; i < nd; i++ {
		d := s.dimOrder[i]
		s.winFound = false
		best := s.curVal
		if chains := s.exactChains[d]; chains != nil {
			curChain := s.cur.Factors[s.dimNames[d]]
			for ci := range chains {
				if sameChain(chains[ci], curChain) {
					continue
				}
				if !s.budgetLeft() {
					return improved, true, nil
				}
				pre := *s.rng
				mv := s.mut.ProposeChainSet(d, chains[ci])
				s.tryCandidate(mv, guidedKindChainExact, d, ci, pre, &best, met)
			}
		} else {
			k := guidedTailCands
			if i < 2 {
				k = guidedHeadCands
			} else if i < 4 {
				k = guidedMidCands
			}
			for j := 0; j < k; j++ {
				if !s.budgetLeft() {
					return improved, true, nil
				}
				pre := *s.rng
				mv := s.mut.ProposeChainID(s.rnd, d)
				s.tryCandidate(mv, guidedKindChain, d, 0, pre, &best, met)
			}
		}
		ok, spent, err := s.commitGroup(met)
		if spent || err != nil {
			return improved, spent, err
		}
		improved = improved || ok
	}

	// Loop-order groups per level. Under FixedPerms the canonical order is
	// the only legal one, so there is nothing to scan.
	if !s.sp.Cons.FixedPerms {
		for li := 0; li < len(s.sp.Arch.Levels); li++ {
			s.winFound = false
			best := s.curVal
			for j := 0; j < guidedPermCands; j++ {
				if !s.budgetLeft() {
					return improved, true, nil
				}
				pre := *s.rng
				mv := s.mut.ProposePerm(s.rnd, li)
				s.tryCandidate(mv, guidedKindPerm, li, 0, pre, &best, met)
			}
			ok, spent, err := s.commitGroup(met)
			if spent || err != nil {
				return improved, spent, err
			}
			improved = improved || ok
		}
	}

	// Every togglable bypass pair, systematically (draw-free).
	for k := 0; k < s.mut.NumBypass(); k++ {
		s.winFound = false
		best := s.curVal
		if !s.budgetLeft() {
			return improved, true, nil
		}
		pre := *s.rng
		mv := s.mut.ProposeKeepAt(k)
		s.tryCandidate(mv, guidedKindKeep, k, 0, pre, &best, met)
		ok, spent, err := s.commitGroup(met)
		if spent || err != nil {
			return improved, spent, err
		}
		improved = improved || ok
	}
	return improved, false, nil
}

// commitGroup commits the group winner recorded in s.win, if any. Returns
// (committed, budget-spent, error).
func (s *GuidedSearcher) commitGroup(met engine.Metrics) (bool, bool, error) {
	if !s.winFound {
		return false, false, nil
	}
	if !s.budgetLeft() {
		return false, true, nil
	}
	if err := s.commitWinner(met); err != nil {
		return false, false, err
	}
	return true, false, nil
}

// sameChain reports whether the candidate chain equals the mapping's current
// one (a no-op proposal the exact scan skips).
//
//ruby:hotpath
func sameChain(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tryCandidate scores one proposal against the working mapping and rolls it
// back, recording it as the sweep winner when it beats the best value seen
// so far this sweep. A candidate that also beats the global incumbent is
// adopted immediately (cloned before the rollback), so budget exhaustion
// never loses an already-paid-for improvement.
//
//ruby:hotpath
func (s *GuidedSearcher) tryCandidate(mv *mapspace.Move, kind, arg, arg2 int, pre checkpoint.RNG, best *float64, met engine.Metrics) {
	mv.Apply(s.cur)
	s.res.Evaluated++
	c := s.dw.Evaluate(mv.Delta())
	if c.Valid {
		s.res.Valid++
		if v := s.opt.Objective.Value(&c); v < *best {
			*best = v
			s.winFound = true
			s.win = guidedWinner{kind: kind, arg: arg, arg2: arg2, val: v, pre: pre}
			s.considerBest(s.cur, &c, met)
		}
	}
	s.dw.Reject()
	mv.Undo(s.cur)
}

// commitWinner rewinds the RNG to the winning proposal's pre-state,
// re-proposes it (identical draws reproduce the identical move), and commits
// it onto the working mapping.
func (s *GuidedSearcher) commitWinner(met engine.Metrics) error {
	*s.rng = s.win.pre
	var mv *mapspace.Move
	switch s.win.kind {
	case guidedKindChain:
		mv = s.mut.ProposeChainID(s.rnd, s.win.arg)
	case guidedKindChainExact:
		mv = s.mut.ProposeChainSet(s.win.arg, s.exactChains[s.win.arg][s.win.arg2])
	case guidedKindPerm:
		mv = s.mut.ProposePerm(s.rnd, s.win.arg)
	default:
		mv = s.mut.ProposeKeepAt(s.win.arg)
	}
	mv.Apply(s.cur)
	s.res.Evaluated++
	c := s.dw.Evaluate(mv.Delta())
	v := s.opt.Objective.Value(&c)
	if !c.Valid || v >= s.curVal {
		s.dw.Reject()
		mv.Undo(s.cur)
		return fmt.Errorf("search: guided winner replay diverged (valid=%v value=%v, scanned %v)",
			c.Valid, v, s.win.val)
	}
	s.res.Valid++
	s.dw.Commit()
	s.curVal = v
	if s.gm != nil {
		s.gm.GuidedMove()
	}
	s.considerBest(s.cur, &c, met)
	return nil
}

// restart is the perturbation phase: the sweep found no improving move, so
// the working mapping is a local optimum. Re-seed from the incumbent and
// commit a few random moves onto it (accepting them even when they are
// worse — that is the escape), then let the next sweep descend again.
func (s *GuidedSearcher) restart(met engine.Metrics) (bool, error) {
	s.restarts++
	s.sinceBest++
	if s.gm != nil {
		s.gm.GuidedRestart()
	}
	if s.sinceBest >= guidedStalePatience || !s.budgetLeft() {
		return s.finish(met), nil
	}
	if s.sinceBest%guidedDiversifyEvery == 0 {
		// Diversification: descend from the best of a batch of fresh random
		// samples (GRASP-style) instead of kicking the incumbent's basin yet
		// again.
		var bestM *mapping.Mapping
		var bestV float64
		for i := 0; i < guidedSeedBatch; i++ {
			if !s.budgetLeft() {
				break
			}
			s.res.Evaluated++
			s.smp.SampleInto(s.rnd, s.m)
			c := s.wk.Evaluate(s.m)
			if !c.Valid {
				continue
			}
			s.res.Valid++
			s.considerBest(s.m, &c, met)
			if v := s.opt.Objective.Value(&c); bestM == nil || v < bestV {
				bestM, bestV = s.m.Clone(), v
			}
		}
		if !s.budgetLeft() {
			return s.finish(met), nil
		}
		if bestM != nil {
			s.cur = bestM
			cc := s.dw.Seed(s.cur)
			s.curVal = s.opt.Objective.Value(&cc)
			s.sweepReady = true
			return false, nil
		}
		// Nothing valid in the batch; fall through to a perturbation kick.
	}
	s.cur = s.res.Best.Clone()
	c := s.dw.Seed(s.cur)
	if !c.Valid {
		return false, errors.New("search: guided incumbent no longer validates")
	}
	s.curVal = s.opt.Objective.Value(&c)
	s.sweepReady = true
	kick := guidedPerturbMin + int(s.sinceBest-1)%(guidedPerturbMax-guidedPerturbMin+1)
	for i := 0; i < kick && s.budgetLeft(); i++ {
		mv := s.mut.Propose(s.rnd)
		mv.Apply(s.cur)
		s.res.Evaluated++
		cc := s.dw.Evaluate(mv.Delta())
		if cc.Valid {
			s.res.Valid++
			s.dw.Commit()
			s.curVal = s.opt.Objective.Value(&cc)
			s.considerBest(s.cur, &cc, met) // a kick can stumble onto an improvement
		} else {
			s.dw.Reject()
			mv.Undo(s.cur)
		}
	}
	return false, nil
}

func (s *GuidedSearcher) finish(met engine.Metrics) bool {
	s.done = true
	if s.res.Best != nil {
		met.BestObjective(s.opt.Objective.Value(&s.res.BestCost))
	}
	met.SearchDone(time.Since(s.start), s.res.Evaluated, s.res.Valid) //ruby:allow determinism -- wall time feeds Metrics.SearchDone only; never enters a snapshot
	return true
}

// Snapshot implements Searcher.
func (s *GuidedSearcher) Snapshot() (*checkpoint.SearchState, error) {
	st := &checkpoint.SearchState{
		Algo: "guided", Done: s.done, RNG: s.rng.Clone(),
		Evaluated: s.res.Evaluated, Valid: s.res.Valid,
		Warmed: s.seeded, Phase: s.phase,
		Restarts: s.restarts, SinceBest: s.sinceBest,
		Trace: encodeTrace(s.res.Trace),
	}
	if err := snapshotBest(st, s.res); err != nil {
		return nil, err
	}
	if s.cur != nil {
		raw, err := s.cur.Encode()
		if err != nil {
			return nil, fmt.Errorf("search: snapshot guided working mapping: %w", err)
		}
		st.Cur = raw
	}
	return st, nil
}

// Restore implements Searcher.
func (s *GuidedSearcher) Restore(st *checkpoint.SearchState) error {
	if st.Algo != "guided" {
		return fmt.Errorf("search: cannot restore %q snapshot into a guided searcher", st.Algo)
	}
	if st.RNG == nil {
		return errors.New("search: guided snapshot lacks RNG state")
	}
	*s.rng = *st.RNG.Clone()
	s.res.Evaluated, s.res.Valid = st.Evaluated, st.Valid
	s.seeded, s.done = st.Warmed, st.Done
	s.phase = st.Phase
	if s.phase == "" {
		s.phase = guidedPhaseSeed
	}
	s.restarts, s.sinceBest = st.Restarts, st.SinceBest
	s.res.Trace = decodeTrace(st.Trace)
	// The delta session is process-local: drop the working mapping's session
	// and re-seed on the next sweep step.
	s.cur, s.sweepReady = nil, false
	if len(st.Cur) > 0 {
		m, err := mapping.Decode(st.Cur, s.sp.Work, s.sp.Slots())
		if err != nil {
			return fmt.Errorf("search: restore guided working mapping: %w", err)
		}
		s.cur = m
	}
	return restoreBest(st, s.sp, s.res)
}
