package search

import (
	"context"

	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/obs"
)

// Portfolio runs the full searcher portfolio — random sampling, the genetic
// algorithm, simulated annealing, greedy hill climbing and the model-guided
// mapper — splitting an evaluation budget across them and returning the
// overall best. Different strategies win on different mapspace shapes
// (random on dense toy spaces, population methods on the sparse Ruby
// expansions, guided on anything with exploitable cost structure), so the
// portfolio is a robust default when the shape is unknown. The member that
// produced the incumbent is reported as an obs event
// ("portfolio:winner:<member>") and through engine.PortfolioMetrics when the
// engine's metrics sink implements it. Cancellation is honored between and
// within the cancellable stages (random, hill climb, guided); the population
// stages (genetic, anneal) are skipped entirely once ctx is done, so a
// cancelled portfolio still returns its best-so-far quickly.
func Portfolio(ctx context.Context, sp *mapspace.Space, eng *engine.Engine, opt Options) *Result {
	opt = opt.withDefaults()
	ctx, span := obs.StartSpan(ctx, "search:portfolio")
	defer span.End()
	budget := opt.MaxEvaluations
	if budget <= 0 {
		budget = 40000
	}
	share := budget / 5

	type member struct {
		name string
		res  *Result
	}
	members := make([]member, 0, 5)

	randOpt := opt
	randOpt.MaxEvaluations = share
	randOpt.ConsecutiveNoImprove = 0
	members = append(members, member{"random", Random(ctx, sp, eng, randOpt)})

	if ctx == nil || ctx.Err() == nil {
		pop := 64
		gens := int(share)/pop - 1
		if gens < 1 {
			gens = 1
		}
		members = append(members, member{"genetic", Genetic(sp, eng.Evaluator(), GeneticOptions{
			Seed: opt.Seed + 1, Population: pop, Generations: gens, Objective: opt.Objective,
		})})
	}

	warm := int(share) / 10
	if ctx == nil || ctx.Err() == nil {
		members = append(members, member{"anneal", Anneal(sp, eng.Evaluator(), AnnealOptions{
			Seed: opt.Seed + 2, Steps: int(share) - warm, Warmup: warm, Objective: opt.Objective,
		})})
	}

	members = append(members, member{"hillclimb", HillClimb(ctx, sp, eng, Options{
		Seed: opt.Seed + 3, Objective: opt.Objective,
		Warmup: warm, Patience: int(share) - warm,
	})})

	members = append(members, member{"guided", Guided(ctx, sp, eng, Options{
		Seed: opt.Seed + 4, Objective: opt.Objective,
		MaxEvaluations: share, WarmStart: opt.WarmStart,
	})})

	best := &Result{}
	winner := ""
	for _, mb := range members {
		r := mb.res
		best.Evaluated += r.Evaluated
		best.Valid += r.Valid
		if r.Best != nil && (best.Best == nil ||
			opt.Objective.Value(&r.BestCost) < opt.Objective.Value(&best.BestCost)) {
			best.Best = r.Best
			best.BestCost = r.BestCost
			winner = mb.name
		}
	}
	if winner != "" {
		obs.Event(ctx, "portfolio:winner:"+winner)
		if pm, ok := eng.Metrics().(engine.PortfolioMetrics); ok {
			pm.PortfolioWin(winner)
		}
	}
	return best
}
