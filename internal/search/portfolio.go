package search

import (
	"context"

	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/obs"
)

// Portfolio runs the full searcher portfolio — random sampling, the genetic
// algorithm, simulated annealing and greedy hill climbing — splitting an
// evaluation budget across them and returning the overall best. Different
// strategies win on different mapspace shapes (random on dense toy spaces,
// population methods on the sparse Ruby expansions), so the portfolio is a
// robust default when the shape is unknown. Cancellation is honored between
// and within the cancellable stages (random, hill climb); the population
// stages (genetic, anneal) are skipped entirely once ctx is done, so a
// cancelled portfolio still returns its best-so-far quickly.
func Portfolio(ctx context.Context, sp *mapspace.Space, eng *engine.Engine, opt Options) *Result {
	opt = opt.withDefaults()
	ctx, span := obs.StartSpan(ctx, "search:portfolio")
	defer span.End()
	budget := opt.MaxEvaluations
	if budget <= 0 {
		budget = 40000
	}
	share := budget / 4

	results := make([]*Result, 0, 4)

	randOpt := opt
	randOpt.MaxEvaluations = share
	randOpt.ConsecutiveNoImprove = 0
	results = append(results, Random(ctx, sp, eng, randOpt))

	if ctx == nil || ctx.Err() == nil {
		pop := 64
		gens := int(share)/pop - 1
		if gens < 1 {
			gens = 1
		}
		results = append(results, Genetic(sp, eng.Evaluator(), GeneticOptions{
			Seed: opt.Seed + 1, Population: pop, Generations: gens, Objective: opt.Objective,
		}))
	}

	warm := int(share) / 10
	if ctx == nil || ctx.Err() == nil {
		results = append(results, Anneal(sp, eng.Evaluator(), AnnealOptions{
			Seed: opt.Seed + 2, Steps: int(share) - warm, Warmup: warm, Objective: opt.Objective,
		}))
	}

	results = append(results, HillClimb(ctx, sp, eng, Options{
		Seed: opt.Seed + 3, Objective: opt.Objective,
		Warmup: warm, Patience: int(share) - warm,
	}))

	best := &Result{}
	for _, r := range results {
		best.Evaluated += r.Evaluated
		best.Valid += r.Valid
		if r.Best != nil && (best.Best == nil ||
			opt.Objective.Value(&r.BestCost) < opt.Objective.Value(&best.BestCost)) {
			best.Best = r.Best
			best.BestCost = r.BestCost
		}
	}
	return best
}
