package search

import (
	"context"
	"testing"

	"ruby/internal/mapspace"
)

// TestShardedExhaustiveUnionMatchesFull checks the distributed invariant the
// coordinator relies on: exhaustive scans of the ShardLeading ranges cover,
// between them, exactly the unrestricted enumeration — same total counters,
// same best objective.
func TestShardedExhaustiveUnionMatchesFull(t *testing.T) {
	sp, eng := toyEngine(mapspace.RubyS, 4)
	full := runToCompletion(t, NewExhaustive(sp, eng, Options{}, 0))
	if full.Best == nil {
		t.Fatal("full exhaustive scan found no valid mapping")
	}
	fullBest := Options{}.Objective.Value(&full.BestCost)

	for _, n := range []int{2, 3} {
		var evaluated, valid int64
		best, found := 0.0, false
		for _, r := range sp.ShardLeading(n) {
			res := runToCompletion(t, NewExhaustive(sp, eng, Options{Shard: r}, 0))
			evaluated += res.Evaluated
			valid += res.Valid
			if res.Best != nil {
				v := Options{}.Objective.Value(&res.BestCost)
				if !found || v < best {
					best, found = v, true
				}
			}
		}
		if evaluated != full.Evaluated || valid != full.Valid {
			t.Errorf("%d shards: counters (%d, %d), full scan (%d, %d)",
				n, evaluated, valid, full.Evaluated, full.Valid)
		}
		if !found || best != fullBest {
			t.Errorf("%d shards: merged best %v (found=%v), full scan %v", n, best, found, fullBest)
		}
	}
}

// TestExhaustiveShardKillAndResume checks a shard-restricted scan keeps the
// kill-and-resume bit-identical contract: snapshot mid-shard, restore into a
// fresh searcher with the same Shard, identical final result.
func TestExhaustiveShardKillAndResume(t *testing.T) {
	sp, eng := toyEngine(mapspace.RubyS, 4)
	r := sp.ShardLeading(2)[1]
	opt := Options{Shard: r}

	want := runToCompletion(t, NewExhaustive(sp, eng, opt, 0))

	first := NewExhaustive(sp, eng, opt, 0)
	if done, err := first.Step(context.Background()); err != nil || done {
		t.Fatalf("first Step: done=%v err=%v", done, err)
	}
	st, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewExhaustive(sp, eng, opt, 0)
	if err := resumed.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	got := runToCompletion(t, resumed)
	sameResult(t, "sharded resume", got, want)
}

// TestExhaustiveShardInvalid checks an out-of-range shard surfaces as a Step
// error instead of a silent empty scan.
func TestExhaustiveShardInvalid(t *testing.T) {
	sp, eng := toyEngine(mapspace.RubyS, 1)
	total := int(sp.ChainCount(sp.LeadingDim()))
	s := NewExhaustive(sp, eng, Options{Shard: mapspace.ChainRange{Lo: 0, Hi: total + 1}}, 0)
	if _, err := s.Step(context.Background()); err == nil {
		t.Fatal("Step with out-of-range shard: want error")
	}
}
