package search

import (
	"context"
	"fmt"

	"ruby/internal/engine"
	"ruby/internal/mapspace"
)

// Algorithms lists the algorithm names Run accepts, in presentation order.
var Algorithms = []string{
	"random", "guided", "hillclimb", "anneal", "genetic", "portfolio", "exhaustive",
}

// ResumableAlgorithms lists the algorithm names NewSearcherFor accepts —
// the searchers implementing the resumable Step/Snapshot/Restore contract.
var ResumableAlgorithms = []string{"random", "guided", "hillclimb", "exhaustive"}

// Run dispatches a one-shot search by algorithm name. The empty name selects
// random sampling (the paper's baseline procedure). For the searchers with
// their own option structs (anneal, genetic), opt.MaxEvaluations is
// translated into an equivalent step or generation budget, matching the
// portfolio's accounting. Unknown names are an error, so callers can pass
// flag and request strings straight through.
func Run(ctx context.Context, sp *mapspace.Space, eng *engine.Engine, algo string, opt Options) (*Result, error) {
	switch algo {
	case "", "random":
		return Random(ctx, sp, eng, opt), nil
	case "guided":
		return Guided(ctx, sp, eng, opt), nil
	case "hillclimb":
		return HillClimb(ctx, sp, eng, opt), nil
	case "exhaustive":
		return Exhaustive(ctx, sp, eng, opt, opt.MaxEvaluations), nil
	case "anneal":
		ao := AnnealOptions{Seed: opt.Seed, Objective: opt.Objective}
		if opt.MaxEvaluations > 0 {
			warm := int(opt.MaxEvaluations) / 10
			ao.Warmup, ao.Steps = warm, int(opt.MaxEvaluations)-warm
		}
		return Anneal(sp, eng.Evaluator(), ao), nil
	case "genetic":
		gopt := GeneticOptions{Seed: opt.Seed, Objective: opt.Objective}
		if opt.MaxEvaluations > 0 {
			gopt.Population = 64
			if gens := int(opt.MaxEvaluations)/gopt.Population - 1; gens >= 1 {
				gopt.Generations = gens
			} else {
				gopt.Generations = 1
			}
		}
		return Genetic(sp, eng.Evaluator(), gopt), nil
	case "portfolio":
		return Portfolio(ctx, sp, eng, opt), nil
	default:
		return nil, fmt.Errorf("search: unknown algorithm %q", algo)
	}
}

// NewSearcherFor builds a resumable searcher by algorithm name (the empty
// name selects random sampling). maxEnum caps the exhaustive enumeration (0 =
// the whole space) and is ignored by the other algorithms.
func NewSearcherFor(algo string, sp *mapspace.Space, eng *engine.Engine, opt Options, maxEnum int64) (Searcher, error) {
	switch algo {
	case "", "random":
		return NewRandom(sp, eng, opt), nil
	case "guided":
		return NewGuided(sp, eng, opt), nil
	case "hillclimb":
		return NewHillClimb(sp, eng, opt), nil
	case "exhaustive":
		return NewExhaustive(sp, eng, opt, maxEnum), nil
	default:
		return nil, fmt.Errorf("search: algorithm %q is not resumable (want one of random|guided|hillclimb|exhaustive)", algo)
	}
}
