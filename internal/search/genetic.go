package search

import (
	"math"
	"math/rand"
	"sort"

	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
)

// GeneticOptions configures the genetic-algorithm searcher, a GAMMA-style
// strategy demonstrating that Ruby mapspaces compose with search techniques
// beyond random sampling (Section II-A: "our proposed mapspace generation
// framework is orthogonal to these search strategies").
type GeneticOptions struct {
	// Seed makes the run reproducible.
	Seed int64
	// Population is the number of individuals per generation (default 64).
	Population int
	// Generations caps evolution (default 40).
	Generations int
	// MutationRate is the per-dimension chain-resample probability
	// (default 0.15); permutations mutate at half this rate.
	MutationRate float64
	// Elites survive unchanged each generation (default 4).
	Elites int
	// Objective selects the minimized metric (default EDP).
	Objective Objective
}

func (o GeneticOptions) withDefaults() GeneticOptions {
	if o.Population <= 0 {
		o.Population = 64
	}
	if o.Generations <= 0 {
		o.Generations = 40
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.15
	}
	if o.Elites <= 0 {
		o.Elites = 4
	}
	if o.Elites > o.Population/2 {
		o.Elites = o.Population / 2
	}
	return o
}

type individual struct {
	m   *mapping.Mapping
	edp float64 // +Inf when invalid
}

// Genetic evolves a population of mappings: tournament selection, per-
// dimension uniform crossover of tiling chains, per-level permutation
// inheritance, and mutation by chain resampling. Fitness is EDP; invalid
// mappings score +Inf but may still recombine out of trouble.
func Genetic(sp *mapspace.Space, ev *nest.Evaluator, opt GeneticOptions) *Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{}
	dims := sp.Work.DimNames()

	score := func(m *mapping.Mapping) individual {
		res.Evaluated++
		c := ev.Evaluate(m)
		if !c.Valid {
			return individual{m: m, edp: math.Inf(1)}
		}
		res.Valid++
		v := opt.Objective.Value(&c)
		if res.Best == nil || v < opt.Objective.Value(&res.BestCost) {
			res.Best, res.BestCost = m.Clone(), c
			res.Trace = append(res.Trace, TracePoint{Evals: res.Evaluated, Value: v})
		}
		return individual{m: m, edp: v}
	}

	mut := sp.NewMutator()
	pop := make([]individual, opt.Population)
	for i := range pop {
		pop[i] = score(sp.Sample(rng))
	}

	tournament := func() individual {
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if a.edp <= b.edp {
			return a
		}
		return b
	}

	for g := 0; g < opt.Generations; g++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].edp < pop[j].edp })
		next := make([]individual, 0, opt.Population)
		next = append(next, pop[:opt.Elites]...)
		for len(next) < opt.Population {
			pa, pb := tournament(), tournament()
			child := crossover(rng, dims, pa.m, pb.m)
			mutate(rng, mut, child, opt.MutationRate)
			next = append(next, score(child))
		}
		pop = next
	}
	return res
}

// crossover builds a child inheriting each dimension's tiling chain from a
// random parent and each level's loop order likewise.
func crossover(rng *rand.Rand, dims []string, a, b *mapping.Mapping) *mapping.Mapping {
	child := a.Clone()
	for _, d := range dims {
		if rng.Intn(2) == 1 {
			child.Factors[d] = append([]int(nil), b.Factors[d]...)
		}
	}
	for li := range child.Perms {
		if rng.Intn(2) == 1 {
			child.Perms[li] = append([]string(nil), b.Perms[li]...)
		}
	}
	return child
}

// mutate resamples chains and shuffles loop orders in place through the
// mutator's Move machinery (applied permanently, never undone — genetic
// mutation is one-way). The rng draw sequence matches the historical
// SampleChain/SamplePerm implementation exactly, so seeded runs reproduce
// their trajectories; the Moves additionally reuse the mutator's scratch
// instead of allocating fresh chains and permutations per mutation.
func mutate(rng *rand.Rand, mut *mapspace.Mutator, m *mapping.Mapping, rate float64) {
	for di := 0; di < mut.NumDims(); di++ {
		if rng.Float64() < rate {
			mut.ProposeChainID(rng, di).Apply(m)
		}
	}
	for li := range m.Perms {
		if rng.Float64() < rate/2 {
			mut.ProposePerm(rng, li).Apply(m)
		}
	}
}
