package search

import (
	"context"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func TestParetoFrontNonDominated(t *testing.T) {
	w := workload.MustMatmul("mm", 48, 48, 48)
	a := arch.EyerissLike(14, 12, 128)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.EyerissRowStationary(w))
	ev := nest.MustEvaluator(w, a)
	front := ParetoFront(sp, ev, Options{Seed: 1, MaxEvaluations: 6000})
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	// Mutually non-dominated, sorted by cycles, energy descending.
	for i := range front {
		for j := range front {
			if i != j && dominates(front[i].Cost, front[j].Cost) {
				t.Fatalf("entry %d dominates entry %d", i, j)
			}
		}
		if i > 0 {
			if front[i].Cost.Cycles < front[i-1].Cost.Cycles {
				t.Fatal("not sorted by cycles")
			}
			if front[i].Cost.EnergyPJ >= front[i-1].Cost.EnergyPJ {
				t.Fatal("energy not strictly descending along the frontier")
			}
		}
	}
	// The frontier must bracket the single-objective optima found by a
	// search of the same budget.
	res := Random(context.Background(), sp, engine.New(ev), Options{Seed: 1, Threads: 1, MaxEvaluations: 6000, Objective: ObjectiveDelay})
	if res.Best != nil && front[0].Cost.Cycles > res.BestCost.Cycles {
		t.Errorf("frontier min cycles %g worse than delay search %g",
			front[0].Cost.Cycles, res.BestCost.Cycles)
	}
}

func TestInsertPareto(t *testing.T) {
	mk := func(e, c float64) ParetoEntry {
		return ParetoEntry{Cost: nest.Cost{Valid: true, EnergyPJ: e, Cycles: c}}
	}
	var front []ParetoEntry
	front = insertPareto(front, mk(10, 10))
	front = insertPareto(front, mk(5, 20)) // trade-off: kept
	if len(front) != 2 {
		t.Fatalf("front = %d", len(front))
	}
	front = insertPareto(front, mk(20, 20)) // dominated by both
	if len(front) != 2 {
		t.Fatal("dominated entry inserted")
	}
	front = insertPareto(front, mk(4, 9)) // dominates both
	if len(front) != 1 || front[0].Cost.EnergyPJ != 4 {
		t.Fatalf("dominating entry did not evict: %d", len(front))
	}
	// Equal point is dominated (no strict improvement) and rejected.
	front = insertPareto(front, mk(4, 9))
	if len(front) != 1 {
		t.Fatal("duplicate point inserted")
	}
}
