package search

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"ruby/internal/checkpoint"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
)

func toyEngine(kind mapspace.Kind, workers int) (*mapspace.Space, *engine.Engine) {
	sp, ev := toy(kind)
	return sp, engine.Config{Workers: workers}.New(ev)
}

type newSearcherFn func(sp *mapspace.Space, eng *engine.Engine) Searcher

func searcherVariants() map[string]newSearcherFn {
	return map[string]newSearcherFn{
		"random": func(sp *mapspace.Space, eng *engine.Engine) Searcher {
			return NewRandom(sp, eng, Options{Seed: 11, MaxEvaluations: 3000, KeepTrace: true})
		},
		"hillclimb": func(sp *mapspace.Space, eng *engine.Engine) Searcher {
			return NewHillClimb(sp, eng, Options{Seed: 11, MaxEvaluations: 2000, Warmup: 200, Patience: 150})
		},
		"exhaustive": func(sp *mapspace.Space, eng *engine.Engine) Searcher {
			return NewExhaustive(sp, eng, Options{}, 0)
		},
		"guided": func(sp *mapspace.Space, eng *engine.Engine) Searcher {
			return NewGuided(sp, eng, Options{Seed: 11, MaxEvaluations: 2000})
		},
	}
}

func runToCompletion(t *testing.T, s Searcher) *Result {
	t.Helper()
	for {
		done, err := s.Step(context.Background())
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			return s.Result()
		}
	}
}

func sameResult(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Evaluated != want.Evaluated || got.Valid != want.Valid {
		t.Errorf("%s: counters (%d evaluated, %d valid), want (%d, %d)",
			name, got.Evaluated, got.Valid, want.Evaluated, want.Valid)
	}
	if (got.Best == nil) != (want.Best == nil) {
		t.Fatalf("%s: incumbent presence mismatch", name)
	}
	if got.Best != nil {
		// Bit-identical costs: Go's JSON float encoding is the shortest
		// round-trip representation, so equal strings mean equal bits.
		gc, _ := json.Marshal(got.BestCost)
		wc, _ := json.Marshal(want.BestCost)
		if string(gc) != string(wc) {
			t.Errorf("%s: best cost %s, want %s", name, gc, wc)
		}
		gb, _ := got.Best.Encode()
		wb, _ := want.Best.Encode()
		if string(gb) != string(wb) {
			t.Errorf("%s: incumbent mapping differs:\n%s\nvs\n%s", name, gb, wb)
		}
	}
	if len(got.Trace) != len(want.Trace) {
		t.Errorf("%s: trace length %d, want %d", name, len(got.Trace), len(want.Trace))
	} else {
		for i := range got.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Errorf("%s: trace[%d] = %+v, want %+v", name, i, got.Trace[i], want.Trace[i])
			}
		}
	}
}

// The ISSUE's acceptance bar: a search interrupted at an arbitrary point and
// resumed from its snapshot yields a bit-identical final incumbent, cost and
// evaluation count to an uninterrupted run. Run with -race.
func TestKillAndResumeBitIdentical(t *testing.T) {
	for name, mk := range searcherVariants() {
		t.Run(name, func(t *testing.T) {
			sp, eng := toyEngine(mapspace.RubyS, 4)
			want := runToCompletion(t, mk(sp, eng))

			// Interrupt after every possible step count: snapshot, rebuild a
			// fresh searcher (fresh process simulation), restore, finish.
			for stop := 1; ; stop++ {
				sp2, eng2 := toyEngine(mapspace.RubyS, 4)
				s := mk(sp2, eng2)
				done := false
				for i := 0; i < stop && !done; i++ {
					var err error
					done, err = s.Step(context.Background())
					if err != nil {
						t.Fatalf("stop=%d Step: %v", stop, err)
					}
				}
				st, err := s.Snapshot()
				if err != nil {
					t.Fatalf("stop=%d Snapshot: %v", stop, err)
				}

				sp3, eng3 := toyEngine(mapspace.RubyS, 2) // different worker count on purpose
				r := mk(sp3, eng3)
				if err := r.Restore(st); err != nil {
					t.Fatalf("stop=%d Restore: %v", stop, err)
				}
				got := runToCompletion(t, r)
				sameResult(t, name, got, want)
				if done {
					return // interrupted past the end; all prefixes covered
				}
			}
		})
	}
}

// Cancelling mid-step must not corrupt state: the searcher rolls back to the
// last committed boundary, and resuming finishes identically.
func TestCancelMidStepThenResume(t *testing.T) {
	for name, mk := range searcherVariants() {
		t.Run(name, func(t *testing.T) {
			sp, eng := toyEngine(mapspace.RubyS, 4)
			want := runToCompletion(t, mk(sp, eng))

			sp2, eng2 := toyEngine(mapspace.RubyS, 4)
			s := mk(sp2, eng2)
			if _, err := s.Step(context.Background()); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := s.Step(ctx); err == nil {
				t.Fatal("cancelled Step returned nil error")
			}
			st, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			sp3, eng3 := toyEngine(mapspace.RubyS, 4)
			r := mk(sp3, eng3)
			if err := r.Restore(st); err != nil {
				t.Fatal(err)
			}
			got := runToCompletion(t, r)
			sameResult(t, name, got, want)
		})
	}
}

// RunCheckpointed persists snapshots; a second process resuming via
// RestoreFromFile completes with the same result.
func TestRunCheckpointedResumeFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.json")

	sp, eng := toyEngine(mapspace.RubyS, 4)
	want, err := RunCheckpointed(context.Background(), NewRandom(sp, eng, Options{Seed: 3, MaxEvaluations: 2000}), CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// "Process one": run a few steps, then get killed (simulated by writing a
	// snapshot and dropping the searcher).
	sp1, eng1 := toyEngine(mapspace.RubyS, 4)
	s1 := NewRandom(sp1, eng1, Options{Seed: 3, MaxEvaluations: 2000})
	for i := 0; i < 3; i++ {
		if _, err := s1.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.Save(path, checkpoint.KindSearch, st); err != nil {
		t.Fatal(err)
	}

	// "Process two": restore from the file and finish under RunCheckpointed.
	sp2, eng2 := toyEngine(mapspace.RubyS, 4)
	s2 := NewRandom(sp2, eng2, Options{Seed: 3, MaxEvaluations: 2000})
	resumed, err := RestoreFromFile(context.Background(), s2, path)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("checkpoint file not picked up")
	}
	got, err := RunCheckpointed(context.Background(), s2, CheckpointConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "random", got, want)

	// The final snapshot is marked done: restoring it is a finished search.
	sp3, eng3 := toyEngine(mapspace.RubyS, 4)
	s3 := NewRandom(sp3, eng3, Options{Seed: 3, MaxEvaluations: 2000})
	if resumed, err = RestoreFromFile(context.Background(), s3, path); err != nil || !resumed {
		t.Fatalf("final snapshot restore: resumed=%v err=%v", resumed, err)
	}
	done, err := s3.Step(context.Background())
	if err != nil || !done {
		t.Fatalf("restored finished search: done=%v err=%v", done, err)
	}
	sameResult(t, "random-final", s3.Result(), want)
}

func TestRestoreFromFileMissingIsFreshStart(t *testing.T) {
	sp, eng := toyEngine(mapspace.RubyS, 1)
	s := NewRandom(sp, eng, Options{Seed: 1})
	resumed, err := RestoreFromFile(context.Background(), s, filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || resumed {
		t.Fatalf("missing file: resumed=%v err=%v", resumed, err)
	}
}

func TestRestoreRejectsWrongAlgo(t *testing.T) {
	sp, eng := toyEngine(mapspace.RubyS, 1)
	st, err := NewRandom(sp, eng, Options{Seed: 1}).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewHillClimb(sp, eng, Options{Seed: 1, Warmup: 10, Patience: 10}).Restore(st); err == nil {
		t.Error("hill-climb accepted a random snapshot")
	}
	if err := NewExhaustive(sp, eng, Options{}, 0).Restore(st); err == nil {
		t.Error("exhaustive accepted a random snapshot")
	}
}

// The resumable exhaustive searcher must agree exactly with the one-shot
// Exhaustive entry point (same enumeration order, same incumbent).
func TestResumableExhaustiveMatchesOneShot(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	want := Exhaustive(context.Background(), sp, engine.New(ev), Options{}, 0)

	sp2, eng2 := toyEngine(mapspace.RubyS, 4)
	got := runToCompletion(t, NewExhaustive(sp2, eng2, Options{}, 0))
	if got.Evaluated != want.Evaluated || got.Valid != want.Valid {
		t.Errorf("counters (%d, %d), want (%d, %d)", got.Evaluated, got.Valid, want.Evaluated, want.Valid)
	}
	if got.BestCost.EDP != want.BestCost.EDP || got.BestCost.Cycles != want.BestCost.Cycles {
		t.Errorf("best cost %+v, want %+v", got.BestCost, want.BestCost)
	}
}

// The resumable random search must still find the toy optimum (sanity that
// the batch rearchitecture didn't break convergence).
func TestResumableRandomConverges(t *testing.T) {
	sp, eng := toyEngine(mapspace.RubyS, 4)
	res := runToCompletion(t, NewRandom(sp, eng, Options{Seed: 1, MaxEvaluations: 4000}))
	if res.Best == nil {
		t.Fatal("no valid mapping found")
	}
	if res.BestCost.Cycles != 17 {
		t.Errorf("cycles = %f, want 17", res.BestCost.Cycles)
	}
}

// Checkpoint overhead must stay under 5% at the default snapshot interval
// (ISSUE acceptance). "default" pays one final snapshot per run (the 2s
// periodic interval never fires on a sub-second search); "stress" writes a
// snapshot every 1ms to show the worst case, and is expected to cost more.
func BenchmarkCheckpointOverhead(b *testing.B) {
	run := func(b *testing.B, cc CheckpointConfig) {
		for i := 0; i < b.N; i++ {
			sp, eng := toyEngine(mapspace.RubyS, 4)
			s := NewRandom(sp, eng, Options{Seed: 5, MaxEvaluations: 200000, ConsecutiveNoImprove: -1})
			if _, err := RunCheckpointed(context.Background(), s, cc); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, CheckpointConfig{}) })
	b.Run("default", func(b *testing.B) {
		run(b, CheckpointConfig{Path: filepath.Join(b.TempDir(), "cp.json")})
	})
	b.Run("stress", func(b *testing.B) {
		run(b, CheckpointConfig{Path: filepath.Join(b.TempDir(), "cp.json"), Interval: 1e6})
	})
}

// Restoring a snapshot with a corrupt incumbent fails loudly instead of
// silently restarting.
func TestRestoreRejectsCorruptIncumbent(t *testing.T) {
	sp, eng := toyEngine(mapspace.RubyS, 1)
	s := NewRandom(sp, eng, Options{Seed: 9, MaxEvaluations: 300})
	runToCompletion(t, s)
	st, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Best == nil {
		t.Skip("no incumbent found")
	}
	st.Best = []byte(`{"factors":{}}`)
	s2sp, s2eng := toyEngine(mapspace.RubyS, 1)
	if err := NewRandom(s2sp, s2eng, Options{Seed: 9}).Restore(st); err == nil {
		t.Error("corrupt incumbent accepted")
	}
}
