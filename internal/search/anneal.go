package search

import (
	"math"
	"math/rand"

	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
)

// AnnealOptions configures the simulated-annealing searcher.
type AnnealOptions struct {
	// Seed makes the run reproducible.
	Seed int64
	// Steps is the number of annealing moves (default 20,000).
	Steps int
	// StartTemp is the initial acceptance temperature as a fraction of the
	// incumbent objective value (default 0.5): a move that worsens the
	// objective by StartTemp x incumbent is accepted with probability 1/e
	// at the start of the schedule.
	StartTemp float64
	// Warmup random samples seed the incumbent (default 200).
	Warmup int
	// Objective selects the minimized metric (default EDP).
	Objective Objective
}

func (o AnnealOptions) withDefaults() AnnealOptions {
	if o.Steps <= 0 {
		o.Steps = 20000
	}
	if o.StartTemp <= 0 {
		o.StartTemp = 0.5
	}
	if o.Warmup <= 0 {
		o.Warmup = 200
	}
	return o
}

// Anneal runs simulated annealing over a mapspace: the proposal distribution
// mutates one dimension's tiling chain or one level's loop order (the hill
// climber's moves), and worsening moves are accepted with Boltzmann
// probability under a geometrically cooled temperature. Annealing escapes
// the local optima that trap greedy search in the large Ruby mapspaces.
//
// The annealing loop runs on the incremental pipeline: Moves mutate the
// incumbent in place (rejections are undone exactly) and candidates are
// scored by the bit-identical delta kernel, so trajectories and results
// match the historical clone-and-reevaluate implementation draw for draw.
func Anneal(sp *mapspace.Space, ev *nest.Evaluator, opt AnnealOptions) *Result {
	opt = opt.withDefaults()
	if sp.Work != ev.Work || sp.Arch != ev.Arch {
		panic("search: mapspace and evaluator must share workload and architecture objects for incremental evaluation")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{}

	// Warmup: best random sample becomes the incumbent.
	var cur *annealState
	for i := 0; i < opt.Warmup; i++ {
		res.Evaluated++
		m := sp.Sample(rng)
		c := ev.Evaluate(m)
		if !c.Valid {
			continue
		}
		res.Valid++
		v := opt.Objective.Value(&c)
		if res.Best == nil || v < opt.Objective.Value(&res.BestCost) {
			res.Best, res.BestCost = m.Clone(), c
			res.Trace = append(res.Trace, TracePoint{Evals: res.Evaluated, Value: v})
		}
		if cur == nil || v < cur.value {
			cur = &annealState{m: m, value: v}
		}
	}
	if cur == nil {
		return res
	}

	// The incumbent is mutated in place from here on; it is the loop's sole
	// owner (res.Best is always a clone). Seed the delta session with its
	// lowering — uncounted, since the incumbent was already evaluated above.
	plan := ev.Plan()
	mut := sp.NewMutator()
	de := plan.NewDeltaEval()
	dm, err := cur.m.Dense(sp.Work, sp.Arch, sp.Slots())
	if err != nil {
		return res // unreachable: the incumbent evaluated valid
	}
	de.Seed(dm)

	t0 := opt.StartTemp * cur.value
	cooling := math.Pow(1e-3, 1/float64(opt.Steps)) // t0 -> t0/1000 over the run
	temp := t0
	for step := 0; step < opt.Steps; step++ {
		mv := mut.Propose(rng)
		mv.Apply(cur.m)
		res.Evaluated++
		c := plan.EvaluateDelta(de, mv.Delta())
		temp *= cooling
		if !c.Valid {
			de.Reject()
			mv.Undo(cur.m)
			continue
		}
		res.Valid++
		v := opt.Objective.Value(&c)
		if v < opt.Objective.Value(&res.BestCost) {
			// Any improvement on the global best also improves the incumbent
			// (best <= incumbent), so the move below is always accepted and
			// the clone captures the candidate state.
			res.Best, res.BestCost = cur.m.Clone(), c.Clone()
			res.Trace = append(res.Trace, TracePoint{Evals: res.Evaluated, Value: v})
		}
		delta := v - cur.value
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			de.Commit()
			cur.value = v
		} else {
			de.Reject()
			mv.Undo(cur.m)
		}
	}
	return res
}

type annealState struct {
	m     *mapping.Mapping
	value float64
}
