package search

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"time"

	"ruby/internal/checkpoint"
	"ruby/internal/engine"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/obs"
)

// Searcher is a stepwise, checkpointable search. Unlike the one-shot entry
// points (Random and friends), a Searcher advances in bounded Steps
// between which its complete state can be captured (Snapshot) and later
// re-established in a fresh process (Restore). The determinism contract is
// strict and pinned by TestKillAndResume*: a search interrupted after any
// Step — or killed and resumed from its last snapshot — produces a
// bit-identical final incumbent, cost and evaluation count to an
// uninterrupted run, because every Searcher consumes its draw sequence in a
// fixed serial order regardless of evaluation parallelism.
type Searcher interface {
	// Step performs one bounded chunk of work. It returns done=true when
	// the search has terminated, or a non-nil error (the context's) when
	// interrupted; an interrupted searcher is left in a consistent state,
	// so Snapshot afterwards captures exactly the committed progress.
	Step(ctx context.Context) (done bool, err error)
	// Result returns the search result so far (live; do not mutate).
	Result() *Result
	// Snapshot serializes the searcher's state. Only call between Steps.
	Snapshot() (*checkpoint.SearchState, error)
	// Restore re-establishes a snapshot taken from a searcher of the same
	// algorithm over the same workload, architecture, mapspace and options.
	Restore(*checkpoint.SearchState) error
}

// ctxErr normalizes the nil-context convention shared with the one-shot
// entry points.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// encodeTrace converts the in-memory trace to its serialized form.
func encodeTrace(tps []TracePoint) []checkpoint.TracePoint {
	if len(tps) == 0 {
		return nil
	}
	out := make([]checkpoint.TracePoint, len(tps))
	for i, tp := range tps {
		out[i] = checkpoint.TracePoint{Evals: tp.Evals, Value: tp.Value}
	}
	return out
}

// decodeTrace is the inverse of encodeTrace.
func decodeTrace(tps []checkpoint.TracePoint) []TracePoint {
	if len(tps) == 0 {
		return nil
	}
	out := make([]TracePoint, len(tps))
	for i, tp := range tps {
		out[i] = TracePoint{Evals: tp.Evals, Value: tp.Value}
	}
	return out
}

// snapshotBest stores the incumbent into st.
func snapshotBest(st *checkpoint.SearchState, res *Result) error {
	if res.Best == nil {
		return nil
	}
	raw, err := res.Best.Encode()
	if err != nil {
		return fmt.Errorf("search: snapshot incumbent: %w", err)
	}
	st.Best = raw
	c := res.BestCost.Clone()
	st.BestCost = &c
	return nil
}

// restoreBest loads the incumbent from st, validating it against the space.
func restoreBest(st *checkpoint.SearchState, sp *mapspace.Space, res *Result) error {
	res.Best, res.BestCost = nil, nest.Cost{}
	if len(st.Best) == 0 {
		return nil
	}
	m, err := mapping.Decode(st.Best, sp.Work, sp.Slots())
	if err != nil {
		return fmt.Errorf("search: restore incumbent: %w", err)
	}
	res.Best = m
	if st.BestCost != nil {
		res.BestCost = st.BestCost.Clone()
	}
	return nil
}

// randomBatch is the number of sampled mappings evaluated per Step of the
// resumable random searcher. Large enough to amortize parallel dispatch,
// small enough that cancellation and checkpoints stay responsive.
const randomBatch = 256

// RandomSearcher is the checkpointable form of the paper's random-sampling
// search. Mappings are drawn serially from one serializable RNG and
// evaluated in parallel batches through the engine; incumbent updates and
// the termination criteria are applied in draw order, so the outcome is
// identical to a serial scan of the same sequence — independent of worker
// count, and reproducible across interrupt/resume.
type RandomSearcher struct {
	sp  *mapspace.Space
	eng *engine.Engine
	opt Options

	rng   *checkpoint.RNG
	rnd   *rand.Rand
	smp   *mapspace.Sampler
	batch []*mapping.Mapping

	res       *Result
	noImprove int64
	warmed    bool
	done      bool
	start     time.Time
}

// NewRandom builds a resumable random search. opt.Threads is ignored —
// parallelism comes from the engine's batch workers (Config.Workers) — but
// the option defaults (termination criterion) apply as in Random.
func NewRandom(sp *mapspace.Space, eng *engine.Engine, opt Options) *RandomSearcher {
	opt = opt.withDefaults()
	s := &RandomSearcher{
		sp: sp, eng: eng, opt: opt,
		rng: checkpoint.NewRNG(opt.Seed),
		smp: sp.NewSampler(),
		res: &Result{}, start: time.Now(),
	}
	s.rnd = rand.New(s.rng)
	s.batch = make([]*mapping.Mapping, randomBatch)
	for i := range s.batch {
		s.batch[i] = &mapping.Mapping{}
	}
	return s
}

// Result returns the result so far.
func (s *RandomSearcher) Result() *Result { return s.res }

// Step samples and evaluates one batch. On cancellation the whole batch is
// rolled back (the RNG rewinds to the batch start), so committed counters
// always describe an exact prefix of the draw sequence.
func (s *RandomSearcher) Step(ctx context.Context) (bool, error) {
	if s.done {
		return true, nil
	}
	if err := ctxErr(ctx); err != nil {
		return false, err
	}
	met := s.eng.Metrics()
	if !s.warmed {
		s.warmed = true
		if s.opt.WarmStart != nil {
			if c := s.eng.Evaluate(s.opt.WarmStart); c.Valid {
				s.res.Best = s.opt.WarmStart.Clone()
				s.res.BestCost = c.Clone()
				if s.opt.KeepTrace {
					s.res.Trace = append(s.res.Trace, TracePoint{Evals: 0, Value: s.opt.Objective.Value(&c)})
				}
			}
		}
	}

	n := len(s.batch)
	if s.opt.MaxEvaluations > 0 {
		left := s.opt.MaxEvaluations - s.res.Evaluated
		if left <= 0 {
			return s.finish(met), nil
		}
		if int64(n) > left {
			n = int(left)
		}
	}

	// Draw the batch; remember the RNG state to roll back to on
	// cancellation (the serialized draw position must never run ahead of
	// the committed counters).
	preBatch := s.rng.Clone()
	for i := 0; i < n; i++ {
		s.smp.SampleInto(s.rnd, s.batch[i])
	}
	costs := s.eng.EvaluateBatch(ctx, s.batch[:n])
	for i := range costs {
		if engine.Cancelled(&costs[i]) {
			*s.rng = *preBatch
			return false, ctxErr(ctx)
		}
	}

	// Commit serially in draw order.
	for i := 0; i < n && !s.done; i++ {
		c := costs[i]
		s.res.Evaluated++
		if c.Valid {
			s.res.Valid++
			if s.res.Best == nil || s.opt.Objective.Value(&c) < s.opt.Objective.Value(&s.res.BestCost) {
				s.res.Best = s.batch[i].Clone()
				s.res.BestCost = c.Clone()
				s.noImprove = 0
				if s.opt.KeepTrace {
					s.res.Trace = append(s.res.Trace, TracePoint{Evals: s.res.Evaluated, Value: s.opt.Objective.Value(&c)})
				}
				met.Improvement(s.res.Evaluated, s.opt.Objective.Value(&c))
			} else if s.opt.ConsecutiveNoImprove > 0 {
				s.noImprove++
				if s.noImprove >= s.opt.ConsecutiveNoImprove {
					s.done = true
				}
			}
		}
		if s.opt.MaxEvaluations > 0 && s.res.Evaluated >= s.opt.MaxEvaluations {
			s.done = true
		}
	}
	if s.done {
		return s.finish(met), nil
	}
	return false, nil
}

func (s *RandomSearcher) finish(met engine.Metrics) bool {
	if !s.done {
		s.done = true
	}
	if s.res.Best != nil {
		met.BestObjective(s.opt.Objective.Value(&s.res.BestCost))
	}
	met.SearchDone(time.Since(s.start), s.res.Evaluated, s.res.Valid) //ruby:allow determinism -- wall time feeds Metrics.SearchDone only; never enters a snapshot
	return true
}

// Snapshot implements Searcher.
func (s *RandomSearcher) Snapshot() (*checkpoint.SearchState, error) {
	st := &checkpoint.SearchState{
		Algo: "random", Done: s.done, RNG: s.rng.Clone(),
		Evaluated: s.res.Evaluated, Valid: s.res.Valid,
		NoImprove: s.noImprove, Warmed: s.warmed,
		Trace: encodeTrace(s.res.Trace),
	}
	if err := snapshotBest(st, s.res); err != nil {
		return nil, err
	}
	return st, nil
}

// Restore implements Searcher.
func (s *RandomSearcher) Restore(st *checkpoint.SearchState) error {
	if st.Algo != "random" {
		return fmt.Errorf("search: cannot restore %q snapshot into a random searcher", st.Algo)
	}
	if st.RNG == nil {
		return errors.New("search: random snapshot lacks RNG state")
	}
	*s.rng = *st.RNG.Clone()
	s.res.Evaluated, s.res.Valid = st.Evaluated, st.Valid
	s.noImprove, s.warmed, s.done = st.NoImprove, st.Warmed, st.Done
	s.res.Trace = decodeTrace(st.Trace)
	return restoreBest(st, s.sp, s.res)
}

// hillClimbChunk bounds the serial evaluations per Step of the resumable
// hill-climber (cancellation and checkpoint granularity).
const hillClimbChunk = 64

// HillClimbSearcher is the checkpointable form of HillClimb: warm-up random
// samples seed a greedy local search that accepts strict improvements until
// patience consecutive proposals fail. All draws come from one serializable
// RNG, so interrupt/resume replays the exact proposal sequence.
//
// Like the one-shot HillClimb, the climb phase runs on the incremental
// pipeline (Moves plus the bit-identical delta kernel). The delta session
// is process-local state, not checkpoint state: it is re-seeded from the
// restored incumbent with one uncounted full evaluation on the first climb
// step after construction or Restore, so snapshots keep their historical
// schema and interrupted runs stay bit-identical to uninterrupted ones.
type HillClimbSearcher struct {
	sp  *mapspace.Space
	eng *engine.Engine
	opt Options

	rng *checkpoint.RNG
	rnd *rand.Rand
	wk  *engine.Worker
	smp *mapspace.Sampler
	m   *mapping.Mapping

	mut        *mapspace.Mutator
	dw         *engine.Delta
	cur        *mapping.Mapping // climb incumbent, mutated in place
	climbReady bool             // cur cloned from Best and dw seeded

	res        *Result
	warmupLeft int
	fails      int
	done       bool
	start      time.Time
}

// NewHillClimb builds a resumable hill-climb search. The warm-up sample
// count and patience come from opt.Warmup and opt.Patience (zero selects
// the defaults), exactly as in the one-shot HillClimb.
func NewHillClimb(sp *mapspace.Space, eng *engine.Engine, opt Options) *HillClimbSearcher {
	opt = opt.withDefaults()
	requireSharedContext(sp, eng)
	s := &HillClimbSearcher{
		sp: sp, eng: eng, opt: opt,
		rng: checkpoint.NewRNG(opt.Seed),
		wk:  eng.NewWorker(), smp: sp.NewSampler(),
		m:   &mapping.Mapping{},
		mut: sp.NewMutator(), dw: eng.NewDelta(),
		res: &Result{}, warmupLeft: opt.Warmup, start: time.Now(),
	}
	s.rnd = rand.New(s.rng)
	return s
}

// Result returns the result so far.
func (s *HillClimbSearcher) Result() *Result { return s.res }

// budgetLeft mirrors HillClimb's budget check (context handled by Step).
func (s *HillClimbSearcher) budgetLeft() bool {
	return s.opt.MaxEvaluations <= 0 || s.res.Evaluated < s.opt.MaxEvaluations
}

// Step runs up to hillClimbChunk serial evaluations. The state is consistent
// after every evaluation, so cancellation between evaluations never needs a
// rollback.
func (s *HillClimbSearcher) Step(ctx context.Context) (bool, error) {
	if s.done {
		return true, nil
	}
	met := s.eng.Metrics()
	for iter := 0; iter < hillClimbChunk; iter++ {
		if err := ctxErr(ctx); err != nil {
			return false, err
		}
		switch {
		case s.warmupLeft > 0 && s.budgetLeft():
			s.warmupLeft--
			s.res.Evaluated++
			s.smp.SampleInto(s.rnd, s.m)
			c := s.wk.Evaluate(s.m)
			if c.Valid {
				s.res.Valid++
				if s.res.Best == nil || s.opt.Objective.Value(&c) < s.opt.Objective.Value(&s.res.BestCost) {
					s.res.Best, s.res.BestCost = s.m.Clone(), c.Clone()
					s.res.Trace = append(s.res.Trace, TracePoint{Evals: s.res.Evaluated, Value: s.opt.Objective.Value(&c)})
					met.Improvement(s.res.Evaluated, s.opt.Objective.Value(&c))
				}
			}
		case s.warmupLeft > 0: // budget exhausted during warm-up
			return s.finish(met), nil
		case s.res.Best == nil: // warm-up found nothing valid to climb from
			return s.finish(met), nil
		case s.fails < s.opt.Patience && s.budgetLeft():
			if !s.climbReady {
				// Lazy (re-)seeding of the delta session: uncounted, draw-free,
				// so resumed and uninterrupted runs stay bit-identical.
				s.cur = s.res.Best.Clone()
				s.dw.Seed(s.cur)
				s.climbReady = true
			}
			mv := s.mut.Propose(s.rnd)
			mv.Apply(s.cur)
			s.res.Evaluated++
			c := s.dw.Evaluate(mv.Delta())
			if c.Valid {
				s.res.Valid++
				if s.opt.Objective.Value(&c) < s.opt.Objective.Value(&s.res.BestCost) {
					s.dw.Commit()
					s.res.Best, s.res.BestCost = s.cur.Clone(), c.Clone()
					s.res.Trace = append(s.res.Trace, TracePoint{Evals: s.res.Evaluated, Value: s.opt.Objective.Value(&c)})
					met.Improvement(s.res.Evaluated, s.opt.Objective.Value(&c))
					s.fails = 0
					continue
				}
			}
			s.dw.Reject()
			mv.Undo(s.cur)
			s.fails++
		default: // patience or budget exhausted
			return s.finish(met), nil
		}
	}
	return false, nil
}

func (s *HillClimbSearcher) finish(met engine.Metrics) bool {
	s.done = true
	if s.res.Best != nil {
		met.BestObjective(s.opt.Objective.Value(&s.res.BestCost))
	}
	met.SearchDone(time.Since(s.start), s.res.Evaluated, s.res.Valid) //ruby:allow determinism -- wall time feeds Metrics.SearchDone only; never enters a snapshot
	return true
}

// Snapshot implements Searcher.
func (s *HillClimbSearcher) Snapshot() (*checkpoint.SearchState, error) {
	st := &checkpoint.SearchState{
		Algo: "hillclimb", Done: s.done, RNG: s.rng.Clone(),
		Evaluated: s.res.Evaluated, Valid: s.res.Valid,
		WarmupLeft: s.warmupLeft, Fails: s.fails,
		Trace: encodeTrace(s.res.Trace),
	}
	if err := snapshotBest(st, s.res); err != nil {
		return nil, err
	}
	return st, nil
}

// Restore implements Searcher.
func (s *HillClimbSearcher) Restore(st *checkpoint.SearchState) error {
	if st.Algo != "hillclimb" {
		return fmt.Errorf("search: cannot restore %q snapshot into a hill-climb searcher", st.Algo)
	}
	if st.RNG == nil {
		return errors.New("search: hill-climb snapshot lacks RNG state")
	}
	*s.rng = *st.RNG.Clone()
	s.res.Evaluated, s.res.Valid = st.Evaluated, st.Valid
	s.warmupLeft, s.fails, s.done = st.WarmupLeft, st.Fails, st.Done
	s.res.Trace = decodeTrace(st.Trace)
	// The delta session is process-local: drop it and re-seed from the
	// restored incumbent on the next climb step.
	s.cur, s.climbReady = nil, false
	return restoreBest(st, s.sp, s.res)
}

// ExhaustiveSearcher is the checkpointable form of the exhaustive scan: the
// deterministic enumeration is evaluated in parallel batches while
// incumbents are selected serially in enumeration order (exactly as
// Exhaustive does), and the enumerator's odometer position is part of the
// snapshot, so a resumed scan continues where it stopped without re-scanning
// the prefix.
type ExhaustiveSearcher struct {
	sp          *mapspace.Space
	eng         *engine.Engine
	opt         Options
	maxMappings int64

	en    *mapspace.Enumerator
	batch []*mapping.Mapping

	res         *Result
	taken       int64
	done        bool
	start       time.Time
	restrictErr error // deferred opt.Shard failure, surfaced by Step
}

// NewExhaustive builds a resumable exhaustive search over up to maxMappings
// enumerated mappings (0 = the whole tiling mapspace). A non-empty opt.Shard
// confines the scan to that leading-dimension chain range; an out-of-range
// shard is reported by the first Step call.
func NewExhaustive(sp *mapspace.Space, eng *engine.Engine, opt Options, maxMappings int64) *ExhaustiveSearcher {
	s := &ExhaustiveSearcher{
		sp: sp, eng: eng, opt: opt, maxMappings: maxMappings,
		en:    sp.NewEnumerator(),
		batch: make([]*mapping.Mapping, 0, exhaustiveBatch),
		res:   &Result{}, start: time.Now(),
	}
	if !opt.Shard.Empty() {
		s.restrictErr = s.en.RestrictLeading(opt.Shard.Lo, opt.Shard.Hi)
	}
	return s
}

// Result returns the result so far.
func (s *ExhaustiveSearcher) Result() *Result { return s.res }

// Step evaluates one enumeration batch. On cancellation the batch is rolled
// back (the enumerator rewinds), so the snapshot position always matches the
// committed counters.
func (s *ExhaustiveSearcher) Step(ctx context.Context) (bool, error) {
	if s.restrictErr != nil {
		return false, s.restrictErr
	}
	if s.done {
		return true, nil
	}
	if err := ctxErr(ctx); err != nil {
		return false, err
	}
	met := s.eng.Metrics()

	preIdx, preDone := s.en.Index(), s.en.Done()
	preTaken := s.taken
	s.batch = s.batch[:0]
	for len(s.batch) < cap(s.batch) {
		if s.maxMappings > 0 && s.taken >= s.maxMappings {
			break
		}
		m := s.en.Next()
		if m == nil {
			break
		}
		s.batch = append(s.batch, m)
		s.taken++
	}
	if len(s.batch) == 0 {
		s.done = true
		if s.res.Best != nil {
			met.BestObjective(s.opt.Objective.Value(&s.res.BestCost))
		}
		met.SearchDone(time.Since(s.start), s.res.Evaluated, s.res.Valid) //ruby:allow determinism -- wall time feeds Metrics.SearchDone only; never enters a snapshot
		return true, nil
	}

	costs := s.eng.EvaluateBatch(ctx, s.batch)
	for i := range costs {
		if engine.Cancelled(&costs[i]) {
			// Roll the enumeration back to the batch start.
			if err := s.en.SetIndex(preIdx, preDone); err != nil {
				return false, err
			}
			s.taken = preTaken
			return false, ctxErr(ctx)
		}
	}

	for i := range costs {
		c := costs[i]
		s.res.Evaluated++
		if c.Valid {
			s.res.Valid++
			if s.res.Best == nil || s.opt.Objective.Value(&c) < s.opt.Objective.Value(&s.res.BestCost) {
				s.res.Best = s.batch[i].Clone()
				s.res.BestCost = c.Clone()
				s.res.Trace = append(s.res.Trace, TracePoint{Evals: s.res.Evaluated, Value: s.opt.Objective.Value(&c)})
				met.Improvement(s.res.Evaluated, s.opt.Objective.Value(&c))
			}
		}
	}
	return false, nil
}

// Snapshot implements Searcher.
func (s *ExhaustiveSearcher) Snapshot() (*checkpoint.SearchState, error) {
	st := &checkpoint.SearchState{
		Algo: "exhaustive", Done: s.done,
		Evaluated: s.res.Evaluated, Valid: s.res.Valid,
		Enumerated: s.taken, EnumIndex: s.en.Index(), EnumDone: s.en.Done(),
		Trace: encodeTrace(s.res.Trace),
	}
	if err := snapshotBest(st, s.res); err != nil {
		return nil, err
	}
	return st, nil
}

// Restore implements Searcher.
func (s *ExhaustiveSearcher) Restore(st *checkpoint.SearchState) error {
	if st.Algo != "exhaustive" {
		return fmt.Errorf("search: cannot restore %q snapshot into an exhaustive searcher", st.Algo)
	}
	if s.restrictErr != nil {
		return s.restrictErr
	}
	if err := s.en.SetIndex(st.EnumIndex, st.EnumDone); err != nil {
		return err
	}
	s.res.Evaluated, s.res.Valid = st.Evaluated, st.Valid
	s.taken, s.done = st.Enumerated, st.Done
	s.res.Trace = decodeTrace(st.Trace)
	return restoreBest(st, s.sp, s.res)
}

// CheckpointConfig configures RunCheckpointed's snapshot persistence.
type CheckpointConfig struct {
	// Path is the checkpoint file. Empty disables persistence (the search
	// still runs stepwise and honors cancellation).
	Path string
	// Interval is the minimum wall time between periodic snapshots
	// (default 2s). A final snapshot is always written on completion and on
	// interruption, regardless of the interval.
	Interval time.Duration
}

func (cc CheckpointConfig) interval() time.Duration {
	if cc.Interval <= 0 {
		return 2 * time.Second
	}
	return cc.Interval
}

// RunCheckpointed drives a Searcher to completion, writing periodic
// crash-safe snapshots and — on cancellation — draining the in-flight step
// and writing a final snapshot before returning the best-so-far result with
// the context's error. A completed run writes a final snapshot marked done,
// so resuming a finished search is a no-op. This is the entry point behind
// the CLI tools' -checkpoint/-resume flags and the server's job runner.
func RunCheckpointed(ctx context.Context, s Searcher, cc CheckpointConfig) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "search:checkpointed")
	defer span.End()
	last := time.Now()
	for {
		done, err := s.Step(ctx)
		if err != nil {
			if serr := saveSnapshot(ctx, s, cc); serr != nil {
				return s.Result(), errors.Join(err, serr)
			}
			return s.Result(), err
		}
		if done {
			return s.Result(), saveSnapshot(ctx, s, cc)
		}
		if cc.Path != "" && time.Since(last) >= cc.interval() {
			if err := saveSnapshot(ctx, s, cc); err != nil {
				return s.Result(), err
			}
			last = time.Now()
		}
	}
}

func saveSnapshot(ctx context.Context, s Searcher, cc CheckpointConfig) error {
	if cc.Path == "" {
		return nil
	}
	st, err := s.Snapshot()
	if err != nil {
		return err
	}
	obs.Event(ctx, "checkpoint:save")
	return checkpoint.Save(cc.Path, checkpoint.KindSearch, st)
}

// RestoreFromFile loads the checkpoint at path into s. It returns
// (false, nil) when no file exists — callers treat that as a fresh start —
// and an error when the file exists but cannot be restored (wrong algorithm,
// wrong workload, corrupt contents). A successful restore is recorded as a
// "checkpoint:resume" trace event when ctx carries an obs.Recorder.
func RestoreFromFile(ctx context.Context, s Searcher, path string) (bool, error) {
	var st checkpoint.SearchState
	err := checkpoint.Load(path, checkpoint.KindSearch, &st)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := s.Restore(&st); err != nil {
		return false, err
	}
	obs.Event(ctx, "checkpoint:resume")
	return true, nil
}
