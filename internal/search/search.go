// Package search finds high-quality mappings within a mapspace. It provides
// the paper's search procedure — Timeloop-style parallel random sampling with
// a consecutive-non-improving-valid-mappings termination criterion — plus an
// exhaustive searcher for the toy studies and a greedy hill-climber as an
// orthogonal search strategy (the paper notes Ruby composes with improved
// search techniques).
//
// Every searcher has one context-first entry point taking the evaluation
// pipeline (engine.Engine — cancellation, memoization, metrics): pass
// engine.New(ev) for a transparent pass-through and a nil or Background
// context when cancellation is not needed. Cancelling the context stops a
// search promptly and returns the best result found so far. Searches record
// trace spans when the context carries an obs.Recorder.
package search

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ruby/internal/engine"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/obs"
)

// Options configures a search. The zero value is a usable default for every
// searcher; unset fields assume the documented defaults.
type Options struct {
	// Algo selects the search algorithm for the call sites that dispatch by
	// name (search.Run, sweep.SearchLayer, the /v1 server): one of
	// Algorithms, with "" meaning random sampling. The direct entry points
	// (Random, Guided, ...) ignore it.
	Algo string
	// Seed makes the search reproducible. Worker i uses Seed + i.
	Seed int64
	// Threads is the number of parallel samplers (default min(24, NumCPU),
	// 24 matching the paper's setup).
	Threads int
	// MaxEvaluations caps the total number of sampled mappings (0 = no cap).
	MaxEvaluations int64
	// ConsecutiveNoImprove terminates the search once this many valid
	// mappings in a row fail to improve the best EDP (the paper uses 3000).
	// 0 disables the criterion (then MaxEvaluations must be set).
	ConsecutiveNoImprove int64
	// KeepTrace records the improvement events for convergence plots
	// (Fig. 7).
	KeepTrace bool
	// Objective selects the minimized metric (default EDP).
	Objective Objective
	// WarmStart optionally seeds the search with a known mapping (e.g. from
	// the constructive heuristic mapper); it is evaluated before sampling
	// begins and counts as the incumbent if valid.
	WarmStart *mapping.Mapping
	// Warmup is the number of random samples seeding HillClimb's greedy
	// phase (0 = default 1000; other searchers ignore it).
	Warmup int
	// Patience is the number of consecutive failed HillClimb proposals
	// before the climb stops (0 = default 2000; other searchers ignore it).
	Patience int
	// Shard restricts an exhaustive scan to a contiguous range of
	// leading-dimension chain indices (the zero value means the whole
	// space). The distributed coordinator carves the enumeration into
	// disjoint shards with mapspace.Space.ShardLeading and runs one
	// exhaustive searcher per range; the union of the shard scans visits
	// exactly the unrestricted enumeration. Stochastic searchers
	// ignore the field — their shard identity is the Seed (RNG substream).
	Shard mapspace.ChainRange
}

// Default hill-climb knobs applied when Options leaves them zero.
const (
	defaultWarmup   = 1000
	defaultPatience = 2000
)

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.NumCPU()
		if o.Threads > 24 {
			o.Threads = 24
		}
	}
	if o.ConsecutiveNoImprove <= 0 && o.MaxEvaluations <= 0 {
		o.ConsecutiveNoImprove = 3000
	}
	if o.Warmup <= 0 {
		o.Warmup = defaultWarmup
	}
	if o.Patience <= 0 {
		o.Patience = defaultPatience
	}
	return o
}

// TracePoint is one improvement event: after Evals evaluated mappings the
// best objective value dropped to Value.
type TracePoint struct {
	Evals int64
	Value float64
}

// Result summarizes a search.
type Result struct {
	Best      *mapping.Mapping // nil when no valid mapping was found
	BestCost  nest.Cost
	Evaluated int64
	Valid     int64
	Trace     []TracePoint
}

// BestEDPAt returns the best objective value seen within the first n
// evaluations, interpolating the improvement trace. Returns ok=false when
// nothing valid was found by then.
func (r *Result) BestEDPAt(n int64) (float64, bool) {
	best, ok := 0.0, false
	for _, tp := range r.Trace {
		if tp.Evals > n {
			break
		}
		best, ok = tp.Value, true
	}
	return best, ok
}

// finishSearch reports the search-level metrics every one-shot searcher
// shares: the final best objective (when one exists) and the wall time.
func finishSearch(met engine.Metrics, opt Options, res *Result, start time.Time) {
	if res.Best != nil {
		met.BestObjective(opt.Objective.Value(&res.BestCost))
	}
	met.SearchDone(time.Since(start), res.Evaluated, res.Valid)
}

// shared is the cross-worker search state.
type shared struct {
	//ruby:guards best,bestCost,trace,valid
	mu        sync.Mutex
	best      *mapping.Mapping
	bestCost  nest.Cost
	trace     []TracePoint
	valid     int64
	evaluated atomic.Int64
	noImprove atomic.Int64
	stop      atomic.Bool
}

// Random runs parallel random-sampling search through the evaluation
// pipeline and returns the best mapping found. It mirrors Timeloop's
// Random-Sampling search: mapspace generation proposes structurally valid
// mappings, the cost model filters invalid ones, and the search stops after
// opt.ConsecutiveNoImprove consecutive valid mappings without improvement
// (and/or opt.MaxEvaluations samples). Cancelling ctx stops the search
// promptly, returning the best mapping found so far.
func Random(ctx context.Context, sp *mapspace.Space, eng *engine.Engine, opt Options) *Result {
	opt = opt.withDefaults()
	ctx, span := obs.StartSpan(ctx, "search:random")
	defer span.End()
	st := &shared{}
	met := eng.Metrics()
	start := time.Now()

	if opt.WarmStart != nil {
		if c := eng.Evaluate(opt.WarmStart); c.Valid {
			st.best = opt.WarmStart.Clone()
			st.bestCost = c
			if opt.KeepTrace {
				st.trace = append(st.trace, TracePoint{Evals: 0, Value: opt.Objective.Value(&c)})
			}
		}
	}

	if ctx != nil {
		stopWatch := context.AfterFunc(ctx, func() { st.stop.Store(true) })
		defer stopWatch()
	}

	var wg sync.WaitGroup
	for t := 0; t < opt.Threads; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			// One span per worker lifetime, not per evaluation: the
			// sample->evaluate loop below stays allocation-free.
			_, wspan := obs.StartSpan(ctx, "search:worker")
			defer wspan.End()
			rng := rand.New(rand.NewSource(seed))
			// Worker-owned evaluation state: one scratch, one sampler and one
			// mapping reused across iterations, so the sample->evaluate loop
			// is allocation-free at steady state. The shared best is a clone,
			// never the reused mapping or a scratch-aliased cost.
			wk := eng.NewWorker()
			smp := sp.NewSampler()
			m := &mapping.Mapping{}
			for !st.stop.Load() {
				// Take an evaluation ticket; give it back (exactly) when the
				// budget is already spent, so Evaluated counts evaluations
				// actually performed rather than clamping after the fact.
				n := st.evaluated.Add(1)
				if opt.MaxEvaluations > 0 && n > opt.MaxEvaluations {
					st.evaluated.Add(-1)
					st.stop.Store(true)
					return
				}
				smp.SampleInto(rng, m)
				c := wk.EvaluateShared(m)
				if !c.Valid {
					continue
				}
				st.mu.Lock()
				st.valid++
				if st.best == nil || opt.Objective.Value(&c) < opt.Objective.Value(&st.bestCost) {
					st.best = m.Clone()
					st.bestCost = c.Clone()
					st.noImprove.Store(0)
					if opt.KeepTrace {
						st.trace = append(st.trace, TracePoint{Evals: n, Value: opt.Objective.Value(&c)})
					}
					st.mu.Unlock()
					met.Improvement(n, opt.Objective.Value(&c))
					continue
				}
				st.mu.Unlock()
				if opt.ConsecutiveNoImprove > 0 &&
					st.noImprove.Add(1) >= opt.ConsecutiveNoImprove {
					st.stop.Store(true)
					return
				}
			}
		}(opt.Seed + int64(t))
	}
	wg.Wait()

	res := &Result{Best: st.best, BestCost: st.bestCost, Valid: st.valid, Trace: st.trace}
	res.Evaluated = st.evaluated.Load()
	finishSearch(met, opt, res, start)
	return res
}

// exhaustiveBatch is the number of enumerated mappings evaluated per
// parallel batch. Large enough to amortize dispatch, small enough that
// cancellation and the maxMappings cap stay responsive.
const exhaustiveBatch = 256

// Exhaustive enumerates the tiling mapspace in deterministic order (with
// canonical loop orders), up to maxMappings (0 = all; only feasible for toy
// problems), evaluating batches in parallel through eng and minimizing
// opt.Objective. Results are identical to a serial scan: batches preserve
// enumeration order and the incumbent only changes on strict improvement.
// Cancelling ctx stops the scan, returning the best mapping found so far.
func Exhaustive(ctx context.Context, sp *mapspace.Space, eng *engine.Engine, opt Options, maxMappings int64) *Result {
	ctx, span := obs.StartSpan(ctx, "search:exhaustive")
	defer span.End()
	res := &Result{}
	met := eng.Metrics()
	start := time.Now()

	batch := make([]*mapping.Mapping, 0, exhaustiveBatch)
	cancelled := false
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		costs := eng.EvaluateBatch(ctx, batch)
		for i := range costs {
			c := costs[i]
			if engine.Cancelled(&c) {
				cancelled = true
				break
			}
			res.Evaluated++
			if c.Valid {
				res.Valid++
				if res.Best == nil || opt.Objective.Value(&c) < opt.Objective.Value(&res.BestCost) {
					res.Best = batch[i].Clone()
					res.BestCost = c
					res.Trace = append(res.Trace, TracePoint{Evals: res.Evaluated, Value: opt.Objective.Value(&c)})
					met.Improvement(res.Evaluated, opt.Objective.Value(&c))
				}
			}
		}
		batch = batch[:0]
		return !cancelled
	}

	taken := int64(0)
	sp.Enumerate(func(m *mapping.Mapping) bool {
		batch = append(batch, m)
		taken++
		if maxMappings > 0 && taken >= maxMappings {
			flush()
			return false
		}
		if len(batch) >= exhaustiveBatch {
			return flush()
		}
		return true
	})
	flush()
	finishSearch(met, opt, res, start)
	return res
}

// HillClimb seeds a greedy local search with the best of opt.Warmup random
// samples, then repeatedly proposes a Move — resampling one dimension's
// tiling chain, one level's loop order or (in bypass-exploring spaces) one
// bypass bit — accepting strict improvements, until opt.Patience
// consecutive proposals fail (or opt.MaxEvaluations is exhausted, or ctx is
// cancelled). It demonstrates that Ruby-style mapspaces compose with search
// strategies beyond random sampling.
//
// The climb phase runs on the incremental pipeline: moves mutate the
// incumbent in place (rejections are undone exactly) and neighbors are
// scored by the delta kernel, which recomputes only the scopes the move
// touches and is bit-identical to a full evaluation — trajectories,
// evaluation counts and results match the historical clone-and-reevaluate
// implementation draw for draw.
func HillClimb(ctx context.Context, sp *mapspace.Space, eng *engine.Engine, opt Options) *Result {
	opt = opt.withDefaults()
	_, span := obs.StartSpan(ctx, "search:hillclimb")
	defer span.End()
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{}
	met := eng.Metrics()
	start := time.Now()
	budgetLeft := func() bool {
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		return opt.MaxEvaluations <= 0 || res.Evaluated < opt.MaxEvaluations
	}

	wk := eng.NewWorker()
	smp := sp.NewSampler()
	m := &mapping.Mapping{}
	for i := 0; i < opt.Warmup && budgetLeft(); i++ {
		res.Evaluated++
		smp.SampleInto(rng, m)
		c := wk.Evaluate(m)
		if c.Valid {
			res.Valid++
			if res.Best == nil || opt.Objective.Value(&c) < opt.Objective.Value(&res.BestCost) {
				res.Best, res.BestCost = m.Clone(), c
				res.Trace = append(res.Trace, TracePoint{Evals: res.Evaluated, Value: opt.Objective.Value(&c)})
				met.Improvement(res.Evaluated, opt.Objective.Value(&c))
			}
		}
	}
	if res.Best == nil {
		finishSearch(met, opt, res, start)
		return res
	}

	requireSharedContext(sp, eng)
	mut := sp.NewMutator()
	dw := eng.NewDelta()
	cur := res.Best.Clone()
	dw.Seed(cur) // uncounted: the incumbent was already evaluated in warmup
	fails := 0
	for fails < opt.Patience && budgetLeft() {
		mv := mut.Propose(rng)
		mv.Apply(cur)
		res.Evaluated++
		c := dw.Evaluate(mv.Delta())
		if c.Valid {
			res.Valid++
			if opt.Objective.Value(&c) < opt.Objective.Value(&res.BestCost) {
				dw.Commit()
				res.Best, res.BestCost = cur.Clone(), c.Clone()
				res.Trace = append(res.Trace, TracePoint{Evals: res.Evaluated, Value: opt.Objective.Value(&c)})
				met.Improvement(res.Evaluated, opt.Objective.Value(&c))
				fails = 0
				continue
			}
		}
		dw.Reject()
		mv.Undo(cur)
		fails++
	}
	finishSearch(met, opt, res, start)
	return res
}

// requireSharedContext asserts that the mapspace and the engine's evaluator
// were built over the same workload and architecture objects. The
// incremental pipeline patches the mapping's memoized dense lowering in
// place, and that memo is keyed by object identity: with distinct (even if
// equivalent) objects the patches would silently miss the lowering the
// delta kernel reads. Every production call site already shares the
// objects; this turns a misuse into a fail-fast panic.
func requireSharedContext(sp *mapspace.Space, eng *engine.Engine) {
	ev := eng.Evaluator()
	if sp.Work != ev.Work || sp.Arch != ev.Arch {
		panic("search: mapspace and engine must share workload and architecture objects for incremental evaluation")
	}
}
