package search

import (
	"fmt"

	"ruby/internal/nest"
)

// Objective selects the metric a search minimizes. The paper's evaluation
// optimizes EDP throughout ("EDP encapsulates the benefits and drawbacks of
// improved PE utilization") but also reports latency-targeted results in
// Section IV-D; Timeloop supports energy- and delay-only objectives as well.
type Objective uint8

const (
	// ObjectiveEDP minimizes energy x delay (the paper's default).
	ObjectiveEDP Objective = iota
	// ObjectiveEnergy minimizes total energy.
	ObjectiveEnergy
	// ObjectiveDelay minimizes cycles (latency).
	ObjectiveDelay
)

// String names the objective ("EDP", "energy", "delay").
func (o Objective) String() string {
	switch o {
	case ObjectiveEDP:
		return "EDP"
	case ObjectiveEnergy:
		return "energy"
	case ObjectiveDelay:
		return "delay"
	default:
		return fmt.Sprintf("Objective(%d)", uint8(o))
	}
}

// Value extracts the objective's metric from a cost.
func (o Objective) Value(c *nest.Cost) float64 {
	switch o {
	case ObjectiveEnergy:
		return c.EnergyPJ
	case ObjectiveDelay:
		return c.Cycles
	default:
		return c.EDP
	}
}
