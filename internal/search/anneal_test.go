package search

import (
	"context"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func TestAnnealConvergesOnToy(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	res := Anneal(sp, ev, AnnealOptions{Seed: 1, Steps: 3000, Warmup: 100})
	if res.Best == nil {
		t.Fatal("no valid mapping")
	}
	if res.BestCost.Cycles != 17 {
		t.Errorf("anneal cycles = %f, want 17", res.BestCost.Cycles)
	}
}

func TestAnnealCompetitiveWithRandom(t *testing.T) {
	w := workload.MustMatmul("mm", 96, 96, 96)
	a := arch.EyerissLike(14, 12, 128)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.EyerissRowStationary(w))
	ev := nest.MustEvaluator(w, a)
	ann := Anneal(sp, ev, AnnealOptions{Seed: 2, Steps: 4000, Warmup: 200})
	if ann.Best == nil {
		t.Fatal("anneal found nothing")
	}
	rnd := Random(context.Background(), sp, engine.New(ev), Options{Seed: 2, Threads: 1, MaxEvaluations: ann.Evaluated})
	if rnd.Best != nil && ann.BestCost.EDP > 2*rnd.BestCost.EDP {
		t.Errorf("anneal EDP %g far worse than random %g", ann.BestCost.EDP, rnd.BestCost.EDP)
	}
	t.Logf("anneal %g vs random %g (%d evals)", ann.BestCost.EDP, rnd.BestCost.EDP, ann.Evaluated)
}

func TestAnnealDeterministic(t *testing.T) {
	sp, ev := toy(mapspace.Ruby)
	a := Anneal(sp, ev, AnnealOptions{Seed: 3, Steps: 500, Warmup: 50})
	b := Anneal(sp, ev, AnnealOptions{Seed: 3, Steps: 500, Warmup: 50})
	if a.BestCost.EDP != b.BestCost.EDP || a.Evaluated != b.Evaluated {
		t.Error("same seed diverged")
	}
}

func TestAnnealNoValidWarmup(t *testing.T) {
	w := workload.MustVector1D("toy", 7)
	a := arch.ToyGLB(7, 1)
	sp := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{FixedPerms: true})
	ev := nest.MustEvaluator(w, a)
	res := Anneal(sp, ev, AnnealOptions{Seed: 4, Steps: 100, Warmup: 50})
	if res.Best != nil {
		t.Error("found a mapping where none can be valid")
	}
}

func TestAnnealOptionDefaults(t *testing.T) {
	o := AnnealOptions{}.withDefaults()
	if o.Steps != 20000 || o.StartTemp != 0.5 || o.Warmup != 200 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestPortfolio(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	res := Portfolio(context.Background(), sp, engine.New(ev), Options{Seed: 1, Threads: 2, MaxEvaluations: 4000})
	if res.Best == nil {
		t.Fatal("portfolio found nothing")
	}
	if res.BestCost.Cycles != 17 {
		t.Errorf("portfolio cycles = %f, want 17", res.BestCost.Cycles)
	}
	if res.Evaluated <= 0 || res.Valid <= 0 {
		t.Error("portfolio counters empty")
	}
}

func TestPortfolioObjective(t *testing.T) {
	sp, ev := toy(mapspace.Ruby)
	res := Portfolio(context.Background(), sp, engine.New(ev), Options{Seed: 2, Threads: 1, MaxEvaluations: 2000, Objective: ObjectiveDelay})
	if res.Best == nil || res.BestCost.Cycles > 17 {
		t.Errorf("delay portfolio: %+v", res.BestCost)
	}
}
