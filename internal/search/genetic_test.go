package search

import (
	"context"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func TestGeneticConvergesOnToy(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	res := Genetic(sp, ev, GeneticOptions{Seed: 1, Population: 32, Generations: 20})
	if res.Best == nil {
		t.Fatal("no valid mapping")
	}
	if res.BestCost.Cycles != 17 {
		t.Errorf("genetic Ruby-S cycles = %f, want 17", res.BestCost.Cycles)
	}
	if res.Evaluated == 0 || res.Valid == 0 {
		t.Error("counters empty")
	}
}

func TestGeneticCompetitiveWithRandom(t *testing.T) {
	w := workload.MustMatmul("mm", 96, 96, 96)
	a := arch.EyerissLike(14, 12, 128)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.EyerissRowStationary(w))
	ev := nest.MustEvaluator(w, a)

	gen := Genetic(sp, ev, GeneticOptions{Seed: 2, Population: 64, Generations: 60})
	if gen.Best == nil {
		t.Fatal("genetic found nothing")
	}
	rnd := Random(context.Background(), sp, engine.New(ev), Options{Seed: 2, Threads: 1, MaxEvaluations: gen.Evaluated})
	if rnd.Best == nil {
		t.Fatal("random found nothing")
	}
	// With equal budgets the GA should be within 2x of random (usually it
	// wins; the loose bound keeps the test robust to seeds).
	if gen.BestCost.EDP > 2*rnd.BestCost.EDP {
		t.Errorf("genetic EDP %g much worse than random %g at %d evals",
			gen.BestCost.EDP, rnd.BestCost.EDP, gen.Evaluated)
	}
	t.Logf("genetic %g vs random %g (%d evals)", gen.BestCost.EDP, rnd.BestCost.EDP, gen.Evaluated)
}

func TestGeneticDeterministic(t *testing.T) {
	sp, ev := toy(mapspace.Ruby)
	a := Genetic(sp, ev, GeneticOptions{Seed: 5, Population: 16, Generations: 5})
	b := Genetic(sp, ev, GeneticOptions{Seed: 5, Population: 16, Generations: 5})
	if a.BestCost.EDP != b.BestCost.EDP || a.Evaluated != b.Evaluated {
		t.Error("same seed diverged")
	}
}

func TestGeneticOptionDefaults(t *testing.T) {
	o := GeneticOptions{}.withDefaults()
	if o.Population != 64 || o.Generations != 40 || o.Elites != 4 {
		t.Errorf("defaults = %+v", o)
	}
	small := GeneticOptions{Population: 4}.withDefaults()
	if small.Elites > 2 {
		t.Errorf("elites %d exceed half the population", small.Elites)
	}
}

func TestGeneticTraceMonotone(t *testing.T) {
	sp, ev := toy(mapspace.RubyT)
	res := Genetic(sp, ev, GeneticOptions{Seed: 3, Population: 16, Generations: 10})
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Value >= res.Trace[i-1].Value || res.Trace[i].Evals < res.Trace[i-1].Evals {
			t.Fatalf("trace not monotone: %+v", res.Trace)
		}
	}
}
