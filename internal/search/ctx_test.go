package search

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ruby/internal/engine"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
)

// TestRandomExactAccounting pins the evaluation-budget fix: workers take a
// ticket and give it back on overshoot, so Evaluated equals MaxEvaluations
// exactly (the old implementation overshot by up to Threads and clamped).
func TestRandomExactAccounting(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	res := Random(context.Background(), sp, engine.New(ev), Options{Seed: 1, Threads: 8, MaxEvaluations: 777})
	if res.Evaluated != 777 {
		t.Errorf("Evaluated = %d, want exactly 777", res.Evaluated)
	}
}

// TestRandomCancelStopsPromptly cancels a search that would otherwise run
// a huge budget and requires it to return quickly with its best-so-far.
func TestRandomCancelStopsPromptly(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := Random(ctx, sp, engine.New(ev), Options{
		Seed: 1, Threads: 4,
		MaxEvaluations:       1 << 40,
		ConsecutiveNoImprove: 1 << 40,
	})
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("cancelled search took %v", wall)
	}
	if res.Best == nil {
		t.Error("cancelled search lost its best-so-far")
	}
	if res.Evaluated <= 0 {
		t.Error("no evaluations recorded before cancellation")
	}
}

// TestRandomCancelledKeepsWarmStart: even with an already-cancelled
// context the warm-start incumbent is returned, never lost.
func TestRandomCancelledKeepsWarmStart(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	seed := Random(context.Background(), sp, engine.New(ev), Options{Seed: 1, Threads: 2, MaxEvaluations: 500})
	if seed.Best == nil {
		t.Fatal("seeding search found nothing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Random(ctx, sp, engine.New(ev), Options{
		Seed: 2, Threads: 2, MaxEvaluations: 1 << 40, ConsecutiveNoImprove: 1 << 40,
		WarmStart: seed.Best,
	})
	if res.Best == nil {
		t.Fatal("warm start lost under pre-cancelled context")
	}
	if res.BestCost.EDP > seed.BestCost.EDP {
		t.Errorf("best-so-far worse than warm start: %g > %g", res.BestCost.EDP, seed.BestCost.EDP)
	}
}

// TestExhaustiveHonorsObjective pins the Objective fix: Exhaustive used to
// hardcode EDP regardless of opt.Objective.
func TestExhaustiveHonorsObjective(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)

	// Ground truth: the true minimum energy over the whole mapspace.
	minEnergy := 0.0
	sp.Enumerate(func(m *mapping.Mapping) bool {
		if c := ev.Evaluate(m); c.Valid && (minEnergy == 0 || c.EnergyPJ < minEnergy) {
			minEnergy = c.EnergyPJ
		}
		return true
	})
	if minEnergy == 0 {
		t.Fatal("no valid mapping in toy space")
	}

	res := Exhaustive(context.Background(), sp, engine.New(ev), Options{Objective: ObjectiveEnergy}, 0)
	if res.Best == nil {
		t.Fatal("no valid mapping found")
	}
	if res.BestCost.EnergyPJ != minEnergy {
		t.Errorf("energy-objective exhaustive found %g pJ, true minimum %g pJ",
			res.BestCost.EnergyPJ, minEnergy)
	}
}

// TestExhaustiveParallelMatchesSerial: batched parallel evaluation must be
// indistinguishable from a serial scan (same best, cost, counters, trace).
func TestExhaustiveParallelMatchesSerial(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	serial := Exhaustive(context.Background(), sp, engine.Config{Workers: 1}.New(ev), Options{}, 0)
	parallel := Exhaustive(context.Background(), sp, engine.Config{Workers: 8}.New(ev), Options{}, 0)
	if serial.Evaluated != parallel.Evaluated || serial.Valid != parallel.Valid {
		t.Errorf("counters differ: serial %d/%d parallel %d/%d",
			serial.Valid, serial.Evaluated, parallel.Valid, parallel.Evaluated)
	}
	if !reflect.DeepEqual(serial.BestCost, parallel.BestCost) {
		t.Errorf("best cost differs: serial %+v parallel %+v", serial.BestCost, parallel.BestCost)
	}
	if len(serial.Trace) != len(parallel.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(serial.Trace), len(parallel.Trace))
	}
	for i := range serial.Trace {
		if serial.Trace[i] != parallel.Trace[i] {
			t.Errorf("trace[%d] differs: %+v vs %+v", i, serial.Trace[i], parallel.Trace[i])
		}
	}
}

// TestExhaustiveCancelled: a cancelled context stops enumeration; the
// result reports only the evaluations that actually ran.
func TestExhaustiveCancelled(t *testing.T) {
	sp, ev := toy(mapspace.Ruby)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Exhaustive(ctx, sp, engine.New(ev), Options{}, 0)
	if res.Evaluated != 0 {
		t.Errorf("pre-cancelled exhaustive evaluated %d mappings", res.Evaluated)
	}
	if res.Best != nil {
		t.Errorf("pre-cancelled exhaustive produced a best mapping")
	}
}

// TestHillClimbHonorsMaxEvaluations pins the budget fix: the climb loop used
// to ignore MaxEvaluations entirely.
func TestHillClimbHonorsMaxEvaluations(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	res := HillClimb(context.Background(), sp, engine.New(ev), Options{Seed: 1, MaxEvaluations: 100, Warmup: 50, Patience: 1 << 30})
	if res.Evaluated > 100 {
		t.Errorf("Evaluated = %d, want <= 100", res.Evaluated)
	}
}

// TestHillClimbCancelled: cancellation stops both warmup and climb.
func TestHillClimbCancelled(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := HillClimb(ctx, sp, engine.New(ev), Options{Seed: 1, Warmup: 1000, Patience: 1 << 30})
	if res.Evaluated != 0 {
		t.Errorf("pre-cancelled hill climb evaluated %d mappings", res.Evaluated)
	}
}

// TestPortfolioCancelled: a cancelled portfolio returns promptly.
func TestPortfolioCancelled(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Portfolio(ctx, sp, engine.New(ev), Options{Seed: 1, MaxEvaluations: 1 << 20})
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("cancelled portfolio took %v", wall)
	}
}

// TestRandomCachedEngineSameResult: enabling the memo cache must not
// change the search outcome for a fixed seed — evaluation is deterministic,
// so cached and fresh costs are identical.
func TestRandomCachedEngineSameResult(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	opt := Options{Seed: 7, Threads: 1, MaxEvaluations: 2000}
	plain := Random(context.Background(), sp, engine.New(ev), opt)
	cached := Random(context.Background(), sp, engine.Config{CacheEntries: 1 << 12}.New(ev), opt)
	if !reflect.DeepEqual(plain.BestCost, cached.BestCost) {
		t.Errorf("best cost differs with cache: %+v vs %+v", plain.BestCost, cached.BestCost)
	}
	if plain.Evaluated != cached.Evaluated || plain.Valid != cached.Valid {
		t.Errorf("counters differ with cache: %d/%d vs %d/%d",
			plain.Valid, plain.Evaluated, cached.Valid, cached.Evaluated)
	}
}
