package search

import (
	"context"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func toy(kind mapspace.Kind) (*mapspace.Space, *nest.Evaluator) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	return mapspace.New(w, a, kind, mapspace.Constraints{FixedPerms: true}),
		nest.MustEvaluator(w, a)
}

func TestExhaustivePFMFindsOptimum(t *testing.T) {
	sp, ev := toy(mapspace.PFM)
	res := Exhaustive(context.Background(), sp, engine.New(ev), Options{}, 0)
	if res.Best == nil {
		t.Fatal("no valid mapping")
	}
	// The best PFM mapping of the toy problem parallelizes over 5 PEs in 20
	// cycles (spatial factors of 100 capped at 6 are {1,2,4,5}).
	if res.BestCost.Cycles != 20 {
		t.Errorf("best PFM cycles = %f, want 20", res.BestCost.Cycles)
	}
	if res.Evaluated != int64(sp.TotalChainCount()) {
		t.Errorf("evaluated %d of %d", res.Evaluated, sp.TotalChainCount())
	}
}

func TestExhaustiveRubySBeatsPFM(t *testing.T) {
	pfmSp, ev := toy(mapspace.PFM)
	rsSp, _ := toy(mapspace.RubyS)
	pfm := Exhaustive(context.Background(), pfmSp, engine.New(ev), Options{}, 0)
	rs := Exhaustive(context.Background(), rsSp, engine.New(ev), Options{}, 0)
	if rs.BestCost.Cycles != 17 {
		t.Errorf("best Ruby-S cycles = %f, want 17 (the Fig. 5 mapping)", rs.BestCost.Cycles)
	}
	if !(rs.BestCost.EDP < pfm.BestCost.EDP) {
		t.Errorf("Ruby-S EDP %g should beat PFM %g", rs.BestCost.EDP, pfm.BestCost.EDP)
	}
}

func TestExhaustiveCap(t *testing.T) {
	sp, ev := toy(mapspace.Ruby)
	res := Exhaustive(context.Background(), sp, engine.New(ev), Options{}, 50)
	if res.Evaluated != 50 {
		t.Errorf("evaluated %d, want 50", res.Evaluated)
	}
}

func TestRandomConvergesOnToy(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	res := Random(context.Background(), sp, engine.New(ev), Options{Seed: 1, Threads: 4, MaxEvaluations: 4000, KeepTrace: true})
	if res.Best == nil {
		t.Fatal("no valid mapping found")
	}
	if res.BestCost.Cycles != 17 {
		t.Errorf("random Ruby-S cycles = %f, want 17", res.BestCost.Cycles)
	}
	if res.Evaluated == 0 || res.Valid == 0 {
		t.Error("counters not populated")
	}
	if len(res.Trace) == 0 {
		t.Error("trace empty despite KeepTrace")
	}
	// Trace must be monotone: evals ascending, EDP descending.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Evals < res.Trace[i-1].Evals || res.Trace[i].Value >= res.Trace[i-1].Value {
			t.Errorf("trace not monotone at %d: %+v", i, res.Trace[i-1:i+1])
		}
	}
}

func TestRandomTerminationByNoImprove(t *testing.T) {
	sp, ev := toy(mapspace.PFM)
	res := Random(context.Background(), sp, engine.New(ev), Options{Seed: 2, Threads: 2, ConsecutiveNoImprove: 200})
	if res.Best == nil {
		t.Fatal("no valid mapping")
	}
	// The tiny PFM space converges to the 20-cycle optimum well within the
	// no-improve window.
	if res.BestCost.Cycles != 20 {
		t.Errorf("cycles = %f, want 20", res.BestCost.Cycles)
	}
}

func TestRandomDeterministicSingleThread(t *testing.T) {
	sp, ev := toy(mapspace.Ruby)
	a := Random(context.Background(), sp, engine.New(ev), Options{Seed: 7, Threads: 1, MaxEvaluations: 500})
	b := Random(context.Background(), sp, engine.New(ev), Options{Seed: 7, Threads: 1, MaxEvaluations: 500})
	if a.BestCost.EDP != b.BestCost.EDP || a.Valid != b.Valid {
		t.Errorf("same seed diverged: %g/%d vs %g/%d",
			a.BestCost.EDP, a.Valid, b.BestCost.EDP, b.Valid)
	}
}

func TestBestEDPAt(t *testing.T) {
	r := &Result{Trace: []TracePoint{{Evals: 10, Value: 100}, {Evals: 50, Value: 40}}}
	if _, ok := r.BestEDPAt(5); ok {
		t.Error("nothing valid by eval 5")
	}
	if v, ok := r.BestEDPAt(10); !ok || v != 100 {
		t.Errorf("at 10: %f, %v", v, ok)
	}
	if v, _ := r.BestEDPAt(49); v != 100 {
		t.Errorf("at 49: %f", v)
	}
	if v, _ := r.BestEDPAt(1000); v != 40 {
		t.Errorf("at 1000: %f", v)
	}
}

func TestHillClimbImprovesOrMatchesWarmup(t *testing.T) {
	w := workload.MustMatmul("mm", 100, 100, 1)
	a := arch.ToyGLB(16, 2048)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{})
	ev := nest.MustEvaluator(w, a)
	res := HillClimb(context.Background(), sp, engine.New(ev), Options{Seed: 3, Warmup: 200, Patience: 300})
	if res.Best == nil {
		t.Fatal("no valid mapping")
	}
	// The final point must be at least as good as the first trace entry.
	if len(res.Trace) > 0 && res.BestCost.EDP > res.Trace[0].Value {
		t.Error("hill climb regressed")
	}
	random := Random(context.Background(), sp, engine.New(ev), Options{Seed: 3, Threads: 1, MaxEvaluations: res.Evaluated})
	// Not strictly guaranteed, but with equal budgets local search should be
	// within 2x of pure random (catches gross mutation bugs).
	if random.Best != nil && res.BestCost.EDP > 2*random.BestCost.EDP {
		t.Errorf("hill climb EDP %g far worse than random %g", res.BestCost.EDP, random.BestCost.EDP)
	}
}

func TestHillClimbNoValidWarmup(t *testing.T) {
	// A GLB too small for any mapping of this workload to be valid... use a
	// tiny capacity so even single-element tiles plus outputs overflow.
	w := workload.MustVector1D("toy", 7)
	a := arch.ToyGLB(7, 1)
	sp := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{FixedPerms: true})
	ev := nest.MustEvaluator(w, a)
	res := HillClimb(context.Background(), sp, engine.New(ev), Options{Seed: 4, Warmup: 50, Patience: 10})
	if res.Best != nil {
		// Capacity 1 word cannot hold an input and an output tile.
		t.Errorf("unexpected valid mapping: %+v", res.BestCost)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Threads <= 0 {
		t.Error("threads default missing")
	}
	if o.ConsecutiveNoImprove != 3000 {
		t.Errorf("default no-improve = %d, want 3000 (the paper's setting)", o.ConsecutiveNoImprove)
	}
	o2 := Options{MaxEvaluations: 10}.withDefaults()
	if o2.ConsecutiveNoImprove != 0 {
		t.Error("no-improve should stay disabled when MaxEvaluations is set")
	}
}

func TestObjectiveValues(t *testing.T) {
	c := nest.Cost{Valid: true, Cycles: 10, EnergyPJ: 5, EDP: 50}
	if ObjectiveEDP.Value(&c) != 50 || ObjectiveEnergy.Value(&c) != 5 || ObjectiveDelay.Value(&c) != 10 {
		t.Error("objective extraction wrong")
	}
	if ObjectiveEDP.String() != "EDP" || ObjectiveDelay.String() != "delay" || ObjectiveEnergy.String() != "energy" {
		t.Error("objective names wrong")
	}
}

func TestObjectiveDelayFindsFasterMapping(t *testing.T) {
	// On the toy problem the minimum-delay Ruby-S mapping is the 17-cycle
	// one regardless of energy.
	sp, ev := toy(mapspace.RubyS)
	res := Random(context.Background(), sp, engine.New(ev), Options{Seed: 5, Threads: 2, MaxEvaluations: 4000, Objective: ObjectiveDelay})
	if res.Best == nil || res.BestCost.Cycles != 17 {
		t.Fatalf("delay objective found %f cycles", res.BestCost.Cycles)
	}
	// Energy objective prefers mappings minimizing DRAM traffic; on this
	// toy every valid mapping moves the same words, so it just must find
	// something valid with minimal energy <= the delay-optimal one's.
	resE := Random(context.Background(), sp, engine.New(ev), Options{Seed: 5, Threads: 2, MaxEvaluations: 4000, Objective: ObjectiveEnergy})
	if resE.Best == nil {
		t.Fatal("energy objective found nothing")
	}
	if resE.BestCost.EnergyPJ > res.BestCost.EnergyPJ+1e-9 {
		t.Errorf("energy objective (%g pJ) worse than delay objective's energy (%g pJ)",
			resE.BestCost.EnergyPJ, res.BestCost.EnergyPJ)
	}
}

func TestWarmStart(t *testing.T) {
	sp, ev := toy(mapspace.RubyS)
	// Warm-start with the known-optimal Fig. 5 mapping; with a zero sampling
	// budget... budget must be >= 1, so allow a few samples and verify the
	// incumbent survives.
	warm := mappingFor17(t)
	res := Random(context.Background(), sp, engine.New(ev), Options{Seed: 9, Threads: 1, MaxEvaluations: 10, WarmStart: warm, KeepTrace: true})
	if res.Best == nil || res.BestCost.Cycles != 17 {
		t.Fatalf("warm start lost: %+v", res.BestCost)
	}
	if len(res.Trace) == 0 || res.Trace[0].Evals != 0 {
		t.Error("warm start should seed the trace at eval 0")
	}
}

// mappingFor17 builds the 17-cycle toy mapping.
func mappingFor17(t *testing.T) *mapping.Mapping {
	t.Helper()
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	return m
}
