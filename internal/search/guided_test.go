package search

import (
	"context"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/checkpoint"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

// guidedPin is one (architecture, layer, seed) case whose mapspace is small
// enough to enumerate exhaustively, used as ground truth for the guided
// searcher. The three archetypes stress different couplings: the Eyeriss row
// stationary array, the TPU-style systolic array whose fanout the optimum
// splits between two dims, and the two-tier Eyeriss v2 cluster hierarchy.
type guidedPin struct {
	name string
	w    *workload.Workload
	a    *arch.Arch
	seed int64
}

func guidedPins() []guidedPin {
	return []guidedPin{
		{"eyeriss/mm-8-12-18", workload.MustMatmul("mm", 8, 12, 18), arch.EyerissLike(14, 12, 128), 1},
		{"tpu/mm-8-24-10", workload.MustMatmul("mm", 8, 24, 10), arch.TPULike(8, 8, 256), 1},
		{"eyerissv2/mm-8-24-10", workload.MustMatmul("mm", 8, 24, 10), arch.EyerissV2Like(4, 4, 64), 3},
	}
}

// TestGuidedMatchesExhaustive asserts that on every pinned mapspace small
// enough for exhaustive enumeration the guided searcher reaches the exact
// exhaustive optimum, and does so within 1% of the exhaustive evaluation
// count (the issue's convergence budget).
func TestGuidedMatchesExhaustive(t *testing.T) {
	for _, tc := range guidedPins() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sp := mapspace.New(tc.w, tc.a, mapspace.RubyS, mapspace.Constraints{FixedPerms: true})
			ev := nest.MustEvaluator(tc.w, tc.a)
			ex := Exhaustive(context.Background(), sp, engine.Config{Workers: 4}.New(ev), Options{}, 0)
			if ex.Best == nil {
				t.Fatal("exhaustive found no valid mapping")
			}
			g := Guided(context.Background(), sp, engine.New(ev), Options{Seed: tc.seed})
			if g.Best == nil {
				t.Fatal("guided found no valid mapping")
			}
			exV := ObjectiveEDP.Value(&ex.BestCost)
			gV := ObjectiveEDP.Value(&g.BestCost)
			if gV != exV {
				t.Errorf("guided EDP %v != exhaustive optimum %v (gap %.4g%%)", gV, exV, 100*(gV-exV)/exV)
			}
			if g.Evaluated*100 > ex.Evaluated {
				t.Errorf("guided spent %d evaluations, over 1%% of exhaustive's %d", g.Evaluated, ex.Evaluated)
			}
		})
	}
}

// TestGuidedBeatsStochasticAtBudget asserts the guided searcher matches or
// beats every stochastic searcher's EDP when all are capped at the same
// 10k-evaluation budget.
func TestGuidedBeatsStochasticAtBudget(t *testing.T) {
	const budget = 10000
	w := workload.MustMatmul("mm", 8, 12, 18)
	a := arch.EyerissLike(14, 12, 128)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{FixedPerms: true})
	ev := nest.MustEvaluator(w, a)

	g := Guided(context.Background(), sp, engine.New(ev), Options{Seed: 1, MaxEvaluations: budget})
	if g.Best == nil {
		t.Fatal("guided found no valid mapping")
	}
	gV := ObjectiveEDP.Value(&g.BestCost)

	rivals := map[string]*Result{
		"random": Random(context.Background(), sp, engine.New(ev), Options{Seed: 1, MaxEvaluations: budget}),
		"hillclimb": HillClimb(context.Background(), sp, engine.New(ev),
			Options{Seed: 1, MaxEvaluations: budget, Warmup: 1000, Patience: 2000}),
		"anneal":  Anneal(sp, ev, AnnealOptions{Seed: 1, Steps: budget - 200, Warmup: 200}),
		"genetic": Genetic(sp, ev, GeneticOptions{Seed: 1, Population: 64, Generations: budget / 64}),
	}
	for name, r := range rivals {
		if r.Best == nil {
			continue
		}
		if v := ObjectiveEDP.Value(&r.BestCost); v < gV {
			t.Errorf("%s EDP %v beats guided %v at a %d-eval budget", name, v, gV, budget)
		}
	}
}

// TestGuidedInnerLoopAllocFree pins the zero-allocation contract of the
// guided scan's candidate evaluation (the hot path: propose, delta-evaluate,
// roll back). The sweep-level scratch is preallocated at construction; a
// regression here shows up as allocations per candidate.
func TestGuidedInnerLoopAllocFree(t *testing.T) {
	w := workload.MustMatmul("mm", 8, 12, 18)
	a := arch.EyerissLike(14, 12, 128)
	sp := mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{FixedPerms: true})
	ev := nest.MustEvaluator(w, a)
	eng := engine.New(ev)
	s := NewGuided(sp, eng, Options{Seed: 1, MaxEvaluations: 100000})

	// Drive the searcher into the sweep phase with a seeded delta session.
	for s.phase != guidedPhaseSweep {
		if done, err := s.Step(context.Background()); done || err != nil {
			t.Fatalf("searcher ended before reaching the sweep phase (done=%v err=%v)", done, err)
		}
	}
	if s.cur == nil {
		s.cur = s.res.Best.Clone()
		if c := s.dw.Seed(s.cur); !c.Valid {
			t.Fatal("working mapping does not validate")
		}
	}

	met := eng.Metrics()
	chains := s.exactChains[0]
	if len(chains) < 2 {
		t.Fatal("expected a precomputed chain list for dim 0")
	}
	// best=0 keeps every candidate non-improving (EDP is positive), so the
	// measured path is propose + delta-evaluate + reject + undo only.
	best := 0.0
	ci := 0
	allocs := testing.AllocsPerRun(200, func() {
		if sameChain(chains[ci], s.cur.Factors[s.dimNames[0]]) {
			ci = (ci + 1) % len(chains)
		}
		var pre checkpoint.RNG
		mv := s.mut.ProposeChainSet(0, chains[ci])
		s.tryCandidate(mv, guidedKindChainExact, 0, ci, pre, &best, met)
		ci = (ci + 1) % len(chains)
	})
	if allocs != 0 {
		t.Errorf("guided candidate evaluation allocates %v times per op; want 0", allocs)
	}
}
