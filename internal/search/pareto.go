package search

import (
	"math/rand"
	"sort"

	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
)

// ParetoEntry is one non-dominated mapping of an energy-delay frontier.
type ParetoEntry struct {
	Mapping *mapping.Mapping
	Cost    nest.Cost
}

// ParetoFront samples the mapspace and maintains the energy-delay Pareto
// archive: every returned mapping is non-dominated (no other sampled mapping
// has both lower energy and lower delay). Single-objective EDP search picks
// one point of this frontier; exposing the whole front supports co-design
// studies where the energy/delay exchange rate is not fixed.
//
// Entries are sorted by cycles ascending (so energy descends along the
// slice).
func ParetoFront(sp *mapspace.Space, ev *nest.Evaluator, opt Options) []ParetoEntry {
	opt = opt.withDefaults()
	budget := opt.MaxEvaluations
	if budget <= 0 {
		budget = 20000
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	var front []ParetoEntry
	for i := int64(0); i < budget; i++ {
		m := sp.Sample(rng)
		c := ev.Evaluate(m)
		if !c.Valid {
			continue
		}
		front = insertPareto(front, ParetoEntry{Mapping: m, Cost: c})
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Cost.Cycles < front[j].Cost.Cycles })
	return front
}

// insertPareto adds e unless dominated, evicting entries e dominates.
func insertPareto(front []ParetoEntry, e ParetoEntry) []ParetoEntry {
	out := front[:0]
	for _, f := range front {
		if dominates(f.Cost, e.Cost) ||
			(f.Cost.EnergyPJ == e.Cost.EnergyPJ && f.Cost.Cycles == e.Cost.Cycles) {
			return front // e is dominated or duplicates an archived point
		}
		if !dominates(e.Cost, f.Cost) {
			out = append(out, f)
		}
	}
	return append(out, e)
}

// dominates reports whether a is no worse than b in both energy and delay
// and strictly better in at least one.
func dominates(a, b nest.Cost) bool {
	return a.EnergyPJ <= b.EnergyPJ && a.Cycles <= b.Cycles &&
		(a.EnergyPJ < b.EnergyPJ || a.Cycles < b.Cycles)
}
