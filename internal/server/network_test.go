package server

import (
	"net/http"
	"testing"
)

// eyerissArchJSON mirrors configs/eyeriss_like.json (arch.EyerissLike(14,12,128)).
const eyerissArchJSON = `{
  "name": "eyeriss-like-14x12",
  "levels": [
    {"name": "DRAM"},
    {"name": "GLB", "capacity_kib": 128,
     "keeps": ["input", "output"],
     "fanout": {"x": 14, "y": 12, "multicast": true}},
    {"name": "PE",
     "per_role_words": {"input": 12, "output": 16, "weight": 224}}
  ]
}`

func TestNetworkEndpointRejectsUnknowns(t *testing.T) {
	h := New()
	rec, out := do(t, h, "POST", "/v1/network", `{"network": "nope", "arch": `+eyerissArchJSON+`}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown network: status %d: %v", rec.Code, out)
	}
	rec, out = do(t, h, "POST", "/v1/network", `{"network": "deepbench-stacks"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing arch: status %d: %v", rec.Code, out)
	}
}

// The fused network search over the DeepBench stacks must keep the vision
// segment (the same pinned configuration the sweep acceptance test uses) and
// report a strictly lower network EDP than its per-layer baseline.
func TestNetworkEndpointFusesDeepBenchStacks(t *testing.T) {
	h := New()
	body := `{
	  "network": "deepbench-stacks",
	  "arch": ` + eyerissArchJSON + `,
	  "mapspace": "ruby-s",
	  "seed": 7, "threads": 1, "max_evaluations": 4000
	}`
	rec, out := do(t, h, "POST", "/v1/network", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	base := out["baseline"].(map[string]any)["edp"].(float64)
	fused := out["fused"].(map[string]any)["edp"].(float64)
	segs := out["segments"].([]any)
	if len(segs) == 0 {
		t.Fatal("no fused segments kept")
	}
	if fused >= base {
		t.Fatalf("fused EDP %g not below baseline %g", fused, base)
	}
	if out["improvement_pct"].(float64) <= 0 {
		t.Fatal("improvement_pct missing")
	}
	for _, s := range segs {
		sg := s.(map[string]any)
		if sg["elided_words"].(float64) <= 0 {
			t.Fatalf("segment %v elides no DRAM words", sg["from"])
		}
		if sg["fused_edp"].(float64) >= sg["baseline_edp"].(float64) {
			t.Fatalf("segment %v does not beat its pair baseline", sg["from"])
		}
	}

	// Fusion off: totals must match the baseline exactly, with no segments.
	rec, out = do(t, h, "POST", "/v1/network", `{
	  "network": "deepbench-stacks",
	  "arch": `+eyerissArchJSON+`,
	  "mapspace": "ruby-s", "fuse": false,
	  "seed": 7, "threads": 1, "max_evaluations": 4000
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("fuse=false: status %d: %v", rec.Code, out)
	}
	if len(out["segments"].([]any)) != 0 {
		t.Fatal("fuse=false kept segments")
	}
	b := out["baseline"].(map[string]any)["edp"].(float64)
	f := out["fused"].(map[string]any)["edp"].(float64)
	if b != f {
		t.Fatalf("fuse=false totals diverge: %g vs %g", b, f)
	}
}
