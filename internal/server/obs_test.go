package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ruby/internal/obs"
)

// envelope extracts the uniform failure envelope from a decoded response and
// fails the test if its shape deviates from {"error": {"code", "message"}}.
func envelope(t *testing.T, out map[string]any) (code, message string) {
	t.Helper()
	e, ok := out["error"].(map[string]any)
	if !ok {
		t.Fatalf("missing error envelope in %v", out)
	}
	code, ok = e["code"].(string)
	if !ok || code == "" {
		t.Fatalf("envelope has no code: %v", e)
	}
	message, ok = e["message"].(string)
	if !ok || message == "" {
		t.Fatalf("envelope has no message: %v", e)
	}
	return code, message
}

// TestErrorEnvelopePerRoute drives every v1 route into a failure and checks
// the envelope shape, the machine-readable code, and the HTTP status the
// code pins (docs/API.md documents the mapping).
func TestErrorEnvelopePerRoute(t *testing.T) {
	h := New()
	unsat := `{
	  "workload": {"name": "d", "type": "vector1d", "d": 7},
	  "arch": {"name": "tiny", "levels": [
	    {"name": "DRAM"},
	    {"name": "GLB", "capacity_words": 1, "fanout": {"x": 2}}
	  ]},
	  "max_evaluations": 300
	}`
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"search bad JSON", "POST", "/v1/search", `{`, 400, CodeInvalidRequest},
		{"search missing arch", "POST", "/v1/search", `{"workload": ` + toyWorkloadJSON + `}`, 400, CodeInvalidRequest},
		{"search unknown mapspace", "POST", "/v1/search",
			`{"workload": ` + toyWorkloadJSON + `, "arch": ` + toyArchJSON + `, "mapspace": "zigzag"}`, 400, CodeInvalidRequest},
		{"search unsatisfiable", "POST", "/v1/search", unsat, 422, CodeNoValidMapping},
		{"evaluate missing mapping", "POST", "/v1/evaluate",
			`{"workload": ` + toyWorkloadJSON + `, "arch": ` + toyArchJSON + `}`, 400, CodeInvalidRequest},
		{"construct missing workload", "POST", "/v1/construct", `{"arch": ` + toyArchJSON + `}`, 400, CodeInvalidRequest},
		{"jobs bad JSON", "POST", "/v1/jobs", `{`, 400, CodeInvalidRequest},
		{"job unknown id", "GET", "/v1/jobs/nope", "", 404, CodeNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec, out := do(t, h, c.method, c.path, c.body)
			if rec.Code != c.wantStatus {
				t.Fatalf("status %d, want %d (%v)", rec.Code, c.wantStatus, out)
			}
			if code, _ := envelope(t, out); code != c.wantCode {
				t.Errorf("code %q, want %q", code, c.wantCode)
			}
		})
	}
}

// TestCodeStatusMap pins the documented code <-> status mapping.
func TestCodeStatusMap(t *testing.T) {
	want := map[string]int{
		CodeInvalidRequest: http.StatusBadRequest,
		CodeNotFound:       http.StatusNotFound,
		CodeNoValidMapping: http.StatusUnprocessableEntity,
		CodeSearchTimeout:  http.StatusGatewayTimeout,
		CodeUnavailable:    http.StatusServiceUnavailable,
		CodeInternal:       http.StatusInternalServerError,
	}
	for code, status := range want {
		if got := codeStatus(code); got != status {
			t.Errorf("codeStatus(%q) = %d, want %d", code, got, status)
		}
	}
	if got := codeStatus("never-seen"); got != http.StatusInternalServerError {
		t.Errorf("unknown code maps to %d, want 500", got)
	}
}

// TestMetricsPrometheusNegotiation checks that /v1/metrics serves the
// Prometheus text exposition when the client asks for text/plain, and the
// legacy JSON snapshot otherwise.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	h := New()
	do(t, h, "POST", "/v1/search", `{
	  "workload": `+toyWorkloadJSON+`,
	  "arch": `+toyArchJSON+`,
	  "seed": 1, "threads": 2, "max_evaluations": 2000
	}`)

	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE ruby_evaluations_total counter",
		"ruby_evaluations_total",
		"ruby_eval_latency_seconds_bucket",
		`ruby_eval_latency_seconds_bucket{le="+Inf"}`,
		"ruby_eval_latency_seconds_count",
		`ruby_jobs{status="running"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("text exposition missing %q\n%s", want, body)
		}
	}

	// Without the Accept header the JSON counter snapshot is unchanged.
	rec2, out := do(t, h, "GET", "/v1/metrics", "")
	if ct := rec2.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	if out["evaluations"].(float64) < 2000 {
		t.Errorf("evaluations = %v, want >= 2000", out["evaluations"])
	}
}

// TestJobsGaugeAllStatuses checks the ruby_jobs gauge always exports every
// status label (zero-filled) so scrapes see a continuous series.
func TestJobsGaugeAllStatuses(t *testing.T) {
	h := New()
	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, status := range []string{"running", "done", "failed", "interrupted"} {
		if !strings.Contains(body, `ruby_jobs{status="`+status+`"}`) {
			t.Errorf("ruby_jobs missing status %q\n%s", status, body)
		}
	}
}
