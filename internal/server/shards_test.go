package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ruby/internal/dist"
	"ruby/internal/obs"
)

const mmWorkloadJSON = `{"name": "mm", "type": "matmul", "matmul": {"m": 12, "n": 6, "k": 4}}`

// shardJobBody builds an exhaustive shard job over the leading-chain range
// [lo, hi).
func shardJobBody(index, lo, hi int) string {
	return `{
	  "workload": ` + mmWorkloadJSON + `,
	  "arch": ` + toyArchJSON + `,
	  "mapspace": "ruby-s",
	  "search": "exhaustive",
	  "shard": {"index": ` + strconv.Itoa(index) + `, "chain_lo": ` + strconv.Itoa(lo) + `, "chain_hi": ` + strconv.Itoa(hi) + `}
	}`
}

func TestSyncSearchRejectsShardFields(t *testing.T) {
	h := New()
	rec, out := do(t, h, "POST", "/v1/search", shardJobBody(0, 0, 1))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("sync shard search: status %d, want 400: %v", rec.Code, out)
	}
	rec, _ = do(t, h, "POST", "/v1/search", `{
	  "workload": `+mmWorkloadJSON+`, "arch": `+toyArchJSON+`, "resume": {"algo": "random"}
	}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("sync resume search: status %d, want 400", rec.Code)
	}
}

func TestHealthzReportsDrain(t *testing.T) {
	srv, err := NewService(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, out := do(t, srv, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: status %d, body %v", rec.Code, out)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, out = do(t, srv, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusServiceUnavailable || out["status"] != "draining" {
		t.Errorf("healthz during drain: status %d, body %v", rec.Code, out)
	}
}

// TestShardJobFlow runs one exhaustive shard job end to end: submit with a
// shard assignment, wait for completion, read the final checkpoint back.
func TestShardJobFlow(t *testing.T) {
	srv, err := NewService(Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rec, out := do(t, srv, "POST", "/v1/jobs", shardJobBody(0, 0, 2))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", rec.Code, out)
	}
	id := out["id"].(string)
	done := waitJob(t, srv, id, JobDone)
	res := done["result"].(map[string]any)
	if res["evaluated"].(float64) <= 0 {
		t.Errorf("shard evaluated nothing: %v", res)
	}

	rec, out = do(t, srv, "GET", "/v1/jobs/"+id+"/checkpoint", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: status %d: %v", rec.Code, out)
	}
	if out["algo"] != "exhaustive" || out["done"] != true {
		t.Errorf("final checkpoint = algo %v done %v", out["algo"], out["done"])
	}

	if rec, _ := do(t, srv, "GET", "/v1/jobs/nope/checkpoint", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job checkpoint: status %d, want 404", rec.Code)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// A shard whose range holds no valid mapping completes done with a null
// mapping: the coordinator needs the honest counters, not a failure.
func TestShardJobNoMappingIsDone(t *testing.T) {
	srv, err := NewService(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A 1-word GLB cannot hold any tile: every mapping in the shard is
	// invalid.
	body := `{
	  "workload": ` + mmWorkloadJSON + `,
	  "arch": {"name": "tiny", "levels": [{"name": "DRAM"}, {"name": "GLB", "capacity_words": 1}]},
	  "search": "exhaustive",
	  "shard": {"index": 0, "chain_lo": 0, "chain_hi": 1}
	}`
	rec, out := do(t, srv, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", rec.Code, out)
	}
	done := waitJob(t, srv, out["id"].(string), JobDone)
	res := done["result"].(map[string]any)
	if res["mapping"] != nil {
		t.Errorf("empty shard returned a mapping: %v", res["mapping"])
	}
	if res["evaluated"].(float64) <= 0 {
		t.Errorf("empty shard reported no evaluations: %v", res)
	}
}

// Jobs without a state directory have no checkpoints: the endpoint 404s
// rather than inventing a snapshot.
func TestJobCheckpointWithoutStateDir(t *testing.T) {
	srv, err := NewService(Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, out := do(t, srv, "POST", "/v1/jobs", shardJobBody(0, 0, 1))
	id := out["id"].(string)
	waitJob(t, srv, id, JobDone)
	rec, _ := do(t, srv, "GET", "/v1/jobs/"+id+"/checkpoint", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("in-memory job checkpoint: status %d, want 404", rec.Code)
	}
}

func TestCoordinatorHandler(t *testing.T) {
	_, sp, err := (&dist.JobSpec{
		Workload: []byte(mmWorkloadJSON),
		Arch:     []byte(toyArchJSON),
	}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dist.BuildPlan(sp, "exhaustive", 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c := dist.NewCoordinator(plan, 0, nil)
	c.Register(reg)
	h := CoordinatorHandler(c, reg)

	rec, out := do(t, h, "GET", "/v1/shards", "")
	if rec.Code != http.StatusOK || len(out["shards"].([]any)) != 2 {
		t.Fatalf("shards: status %d, body %v", rec.Code, out)
	}
	rec, out = do(t, h, "GET", "/v1/shards/1", "")
	if rec.Code != http.StatusOK || out["status"] != dist.ShardPending {
		t.Errorf("shard 1: status %d, body %v", rec.Code, out)
	}
	if rec, _ := do(t, h, "GET", "/v1/shards/99", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown shard: status %d", rec.Code)
	}
	if rec, _ := do(t, h, "GET", "/v1/shards/x", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("non-numeric shard: status %d", rec.Code)
	}
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/v1/metrics", nil))
	if rec2.Code != http.StatusOK || !strings.Contains(rec2.Body.String(), "ruby_shards") {
		t.Errorf("metrics exposition missing ruby_shards:\n%s", rec2.Body)
	}
	rec, out = do(t, h, "GET", "/v1/healthz", "")
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Errorf("healthz: status %d, body %v", rec.Code, out)
	}
}

// TestJobResumeFromPayload submits a job seeded with a caller-held snapshot:
// the completed result must equal the uninterrupted run (the distributed
// re-queue path in miniature).
func TestJobResumeFromPayload(t *testing.T) {
	srv, err := NewService(Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Full run for reference.
	_, out := do(t, srv, "POST", "/v1/jobs", shardJobBody(0, 0, 2))
	ref := waitJob(t, srv, out["id"].(string), JobDone)["result"].(map[string]any)

	// Interrupted half: run the first chain only, grab its final snapshot…
	_, out = do(t, srv, "POST", "/v1/jobs", shardJobBody(0, 0, 2))
	id := out["id"].(string)
	waitJob(t, srv, id, JobDone)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+id+"/checkpoint", nil))
	snapshot := rec.Body.String()

	// …and resume a fresh job from it. A done snapshot resumes to an
	// immediate identical completion.
	body := strings.Replace(shardJobBody(0, 0, 2), `"shard"`, `"resume": `+snapshot+`, "shard"`, 1)
	_, out = do(t, srv, "POST", "/v1/jobs", body)
	resumed := waitJob(t, srv, out["id"].(string), JobDone)["result"].(map[string]any)

	if resumed["evaluated"] != ref["evaluated"] || resumed["valid"] != ref["valid"] {
		t.Errorf("resumed counters %v/%v, want %v/%v",
			resumed["evaluated"], resumed["valid"], ref["evaluated"], ref["valid"])
	}
	refCost := ref["cost"].(map[string]any)
	resCost := resumed["cost"].(map[string]any)
	if refCost["EDP"] != resCost["EDP"] {
		t.Errorf("resumed EDP %v, want %v", resCost["EDP"], refCost["EDP"])
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
