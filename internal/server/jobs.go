package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ruby/internal/checkpoint"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/obs"
	"ruby/internal/search"
)

// Job statuses. A job is "running" from submission until it terminates;
// "interrupted" marks jobs parked by a graceful shutdown (they resume on the
// next startup); "done" and "failed" are terminal.
const (
	JobRunning     = "running"
	JobInterrupted = "interrupted"
	JobDone        = "done"
	JobFailed      = "failed"
)

// Options configures a Service.
type Options struct {
	// StateDir persists job records and search checkpoints, so submitted
	// jobs survive a server restart: finished jobs stay listable, and
	// interrupted ones resume automatically. Empty keeps jobs in memory
	// only.
	StateDir string
	// SlowEval and SlowSearch, when positive, emit structured warning logs
	// (log/slog) for sampled evaluations and completed searches slower than
	// the threshold. Zero disables the respective log.
	SlowEval   time.Duration
	SlowSearch time.Duration
	// DefaultSearch is the algorithm used for requests that leave their
	// "search" field empty (one of search.Algorithms; "" = random). Jobs
	// additionally require a resumable algorithm.
	DefaultSearch string
	// Log receives the slow-event records (nil = slog.Default()).
	Log *slog.Logger
}

// Service is the mapper service with lifecycle control: the http.Handler
// plus the job manager behind the async /v1/jobs endpoints. Build it with
// NewService; use New/NewWithMetrics when job persistence and graceful
// shutdown are not needed.
type Service struct {
	handler http.Handler
	svc     *service
	jobs    *jobManager
}

// NewService builds the service. When opts.StateDir is set, persisted job
// records are loaded back: finished jobs become listable again and
// interrupted ones are restarted from their search checkpoints.
func NewService(opts Options) (*Service, error) {
	ins := engine.NewInstruments()
	if opts.SlowEval > 0 || opts.SlowSearch > 0 {
		ins.Slow = &obs.SlowLog{
			Logger:          opts.Log,
			EvalThreshold:   opts.SlowEval,
			SearchThreshold: opts.SlowSearch,
		}
	}
	s := &service{ins: ins, reg: obs.NewRegistry(), defaultSearch: opts.DefaultSearch}
	ins.Register(s.reg)
	jm, err := newJobManager(opts.StateDir, s)
	if err != nil {
		return nil, err
	}
	s.jobs = jm
	s.reg.GaugeVec("ruby_jobs", "Number of search jobs by status.", "status", jm.statusSamples)
	srv := &Service{handler: s.mux(), svc: s, jobs: jm}
	jm.resumeLoaded()
	return srv, nil
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Counters exposes the pipeline counters reported at /v1/metrics.
func (s *Service) Counters() *engine.Counters { return s.svc.ins.Counters }

// Registry exposes the Prometheus-text metric registry behind /v1/metrics,
// so embedders can add their own gauges to the same exposition.
func (s *Service) Registry() *obs.Registry { return s.svc.reg }

// Shutdown drains the job workers: running searches are cancelled, their
// final checkpoints written, and their records marked interrupted, so a
// subsequent NewService on the same state directory resumes them. It returns
// ctx's error when the drain does not finish in time.
func (s *Service) Shutdown(ctx context.Context) error { return s.jobs.shutdown(ctx) }

// jobRecord is a job's persisted state (checkpoint kind "job").
//
//ruby:serialstable
type jobRecord struct {
	ID          string        `json:"id"`
	Status      string        `json:"status"`
	Request     searchRequest `json:"request"`
	SubmittedAt time.Time     `json:"submitted_at"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	// Result is set for done jobs; Error for failed ones.
	Result *searchResponse `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// jobManager owns the async search jobs: submission, the worker goroutines,
// persistence, restart recovery and the drain protocol.
type jobManager struct {
	dir string // "" = in-memory only
	svc *service

	//ruby:guards jobs,nextID,draining
	mu     sync.Mutex
	jobs   map[string]*jobRecord
	nextID int

	wg       sync.WaitGroup
	baseCtx  context.Context
	cancel   context.CancelFunc
	draining bool
}

//ruby:ctxroot
func newJobManager(dir string, svc *service) (*jobManager, error) {
	ctx, cancel := context.WithCancel(context.Background())
	jm := &jobManager{dir: dir, svc: svc, jobs: make(map[string]*jobRecord), baseCtx: ctx, cancel: cancel}
	if dir == "" {
		return jm, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".search.json") {
			continue
		}
		var rec jobRecord
		if err := checkpoint.Load(filepath.Join(dir, name), checkpoint.KindJob, &rec); err != nil {
			return nil, fmt.Errorf("server: job record %s: %w", name, err)
		}
		jm.jobs[rec.ID] = &rec
		var n int
		if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n >= jm.nextID {
			jm.nextID = n + 1
		}
	}
	return jm, nil
}

// resumeLoaded restarts the jobs a previous process left unfinished. Called
// once after construction (not in newJobManager, so the handler wiring is
// complete before workers run).
func (jm *jobManager) resumeLoaded() {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	for _, rec := range jm.jobs {
		if rec.Status == JobRunning || rec.Status == JobInterrupted {
			rec.Status = JobRunning
			jm.startLocked(rec)
		}
	}
}

func (jm *jobManager) recordPath(id string) string {
	return filepath.Join(jm.dir, "job-"+id+".json")
}

func (jm *jobManager) searchPath(id string) string {
	if jm.dir == "" {
		return ""
	}
	return filepath.Join(jm.dir, "job-"+id+".search.json")
}

// persistLocked writes a record; jm.mu must be held.
func (jm *jobManager) persistLocked(rec *jobRecord) error {
	if jm.dir == "" {
		return nil
	}
	return checkpoint.Save(jm.recordPath(rec.ID), checkpoint.KindJob, rec)
}

// resolveJobSearch applies the server's default algorithm and checks the
// result is a checkpoint-resumable one: jobs must survive a restart
// bit-identically, so the non-resumable searchers are rejected at
// submission rather than failing the job later. The default is resolved
// now so the persisted record names the algorithm its checkpoints were
// written with.
func (s *service) resolveJobSearch(name string) (string, error) {
	if name == "" {
		name = s.defaultSearch
	}
	if name == "" {
		return "", nil
	}
	for _, a := range search.ResumableAlgorithms {
		if name == a {
			return name, nil
		}
	}
	return "", fmt.Errorf("server: job search %q is not resumable (want one of %s)",
		name, strings.Join(search.ResumableAlgorithms, "|"))
}

// submit registers and starts a new job; the request's algorithm has been
// resolved and validated by the handler.
func (jm *jobManager) submit(req searchRequest) (*jobRecord, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if jm.draining {
		return nil, errors.New("server: shutting down")
	}
	rec := &jobRecord{
		ID:          fmt.Sprintf("j%04d", jm.nextID),
		Status:      JobRunning,
		Request:     req,
		SubmittedAt: time.Now().UTC(),
	}
	jm.nextID++
	jm.jobs[rec.ID] = rec
	if err := jm.persistLocked(rec); err != nil {
		delete(jm.jobs, rec.ID)
		return nil, err
	}
	jm.startLocked(rec)
	return rec, nil
}

// startLocked launches the worker goroutine; jm.mu must be held.
func (jm *jobManager) startLocked(rec *jobRecord) {
	jm.wg.Add(1)
	id := rec.ID
	//ruby:detached run derives its context from jm.baseCtx internally; jm.cancel reaches it
	go func() {
		defer jm.wg.Done()
		jm.run(id)
	}()
}

// run executes one job to completion (or interruption), updating and
// persisting its record.
func (jm *jobManager) run(id string) {
	jm.mu.Lock()
	rec := jm.jobs[id]
	req := rec.Request
	jm.mu.Unlock()

	finish := func(status string, result *searchResponse, err error) {
		now := time.Now().UTC()
		jm.mu.Lock()
		defer jm.mu.Unlock()
		rec.Status = status
		rec.Result = result
		if err != nil {
			rec.Error = err.Error()
		}
		if status == JobDone || status == JobFailed {
			rec.FinishedAt = &now
		}
		_ = jm.persistLocked(rec)
	}

	ev, sp, err := req.resolve()
	if err != nil {
		finish(JobFailed, nil, err)
		return
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		finish(JobFailed, nil, err)
		return
	}
	opt := search.Options{
		Seed:                 req.Seed,
		MaxEvaluations:       req.MaxEvaluations,
		ConsecutiveNoImprove: req.NoImprove,
		Objective:            obj,
	}
	if req.Shard != nil {
		// A shard job is exact: the coordinator owns the budget split, so
		// no server-side default cap may truncate the shard's work (an
		// uncapped exhaustive shard must scan its whole range).
		opt.Shard = mapspace.ChainRange{Lo: req.Shard.ChainLo, Hi: req.Shard.ChainHi}
	} else if opt.MaxEvaluations <= 0 && opt.ConsecutiveNoImprove <= 0 {
		opt.MaxEvaluations = 50000
	}

	ctx := jm.baseCtx
	sr, err := search.NewSearcherFor(req.Search, sp, jm.svc.engineFor(ev), opt, 0)
	if err != nil {
		finish(JobFailed, nil, err)
		return
	}
	restored, err := search.RestoreFromFile(ctx, sr, jm.searchPath(id))
	if err != nil {
		finish(JobFailed, nil, err)
		return
	}
	if !restored && len(req.Resume) > 0 {
		// Coordinator-held snapshot: a re-queued shard continues where the
		// lost worker last checkpointed (work-saving only — the shard
		// result is identical from any starting snapshot).
		var st checkpoint.SearchState
		if err := json.Unmarshal(req.Resume, &st); err != nil {
			finish(JobFailed, nil, fmt.Errorf("server: resume snapshot: %w", err))
			return
		}
		if err := sr.Restore(&st); err != nil {
			finish(JobFailed, nil, err)
			return
		}
	}
	res, err := search.RunCheckpointed(ctx, sr, search.CheckpointConfig{Path: jm.searchPath(id)})
	if err != nil {
		// Drain: park the job for the next process. Any other error on a
		// non-draining run is a real failure.
		if errors.Is(err, context.Canceled) && jm.baseCtx.Err() != nil {
			finish(JobInterrupted, nil, nil)
		} else {
			finish(JobFailed, nil, err)
		}
		return
	}
	if res.Best == nil {
		if req.Shard != nil {
			// An exhausted shard with no valid mapping is a result, not a
			// failure: the coordinator merges the honest counters and a
			// null mapping.
			finish(JobDone, &searchResponse{Evaluated: res.Evaluated, Valid: res.Valid}, nil)
			return
		}
		finish(JobFailed, nil, fmt.Errorf("no valid mapping found after %d samples", res.Evaluated))
		return
	}
	finish(JobDone, &searchResponse{
		mappingResult: mappingResult{
			Mapping: res.Best, Cost: res.BestCost,
			LoopNest: res.Best.Render(ev.Work, ev.Arch),
		},
		Evaluated: res.Evaluated, Valid: res.Valid,
	}, nil)
}

// isDraining reports whether a graceful shutdown has begun.
func (jm *jobManager) isDraining() bool {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.draining
}

// shutdown implements the drain protocol.
func (jm *jobManager) shutdown(ctx context.Context) error {
	jm.mu.Lock()
	jm.draining = true
	jm.mu.Unlock()
	jm.cancel()
	done := make(chan struct{})
	//ruby:detached wg.Wait watchdog; bounded by the ctx select below and jm.cancel above
	go func() {
		jm.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// list returns records sorted by ID.
func (jm *jobManager) list() []*jobRecord {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	out := make([]*jobRecord, 0, len(jm.jobs))
	for _, rec := range jm.jobs {
		c := *rec
		out = append(out, &c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// statusSamples reports the job count per status for the metrics exposition.
// All four statuses are always present, so scrape series stay continuous.
func (jm *jobManager) statusSamples() []obs.Sample {
	counts := map[string]int{JobRunning: 0, JobInterrupted: 0, JobDone: 0, JobFailed: 0}
	jm.mu.Lock()
	for _, rec := range jm.jobs {
		counts[rec.Status]++
	}
	jm.mu.Unlock()
	out := make([]obs.Sample, 0, len(counts))
	for status, n := range counts {
		out = append(out, obs.Sample{LabelValue: status, Value: float64(n)})
	}
	return out
}

// get returns a copy of one record.
func (jm *jobManager) get(id string) (*jobRecord, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	rec, ok := jm.jobs[id]
	if !ok {
		return nil, false
	}
	c := *rec
	return &c, true
}

func (s *service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	// Fail malformed problems fast, before accepting the job.
	if _, _, err := req.resolve(); err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	if _, err := parseObjective(req.Objective); err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	algo, err := s.resolveJobSearch(req.Search)
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	req.Search = algo
	rec, err := s.jobs.submit(req)
	if err != nil {
		writeErr(w, CodeUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": rec.ID, "status": rec.Status})
}

func (s *service) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, CodeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleJobCheckpoint serves a job's latest persisted search snapshot (the
// checkpoint SearchState payload). The distributed coordinator polls it so
// a re-queued shard can resume from the lost worker's last progress. 404
// when the job is unknown, the server runs without a state directory, or
// the job has not checkpointed yet.
func (s *service) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.get(id); !ok {
		writeErr(w, CodeNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	path := s.jobs.searchPath(id)
	if path == "" {
		writeErr(w, CodeNotFound, fmt.Errorf("job %s has no checkpoint (no state directory)", id))
		return
	}
	var st checkpoint.SearchState
	err := checkpoint.Load(path, checkpoint.KindSearch, &st)
	if errors.Is(err, fs.ErrNotExist) {
		writeErr(w, CodeNotFound, fmt.Errorf("job %s has not checkpointed yet", id))
		return
	}
	if err != nil {
		writeErr(w, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, &st)
}
