// Package server exposes the mapper as a JSON-over-HTTP service, so
// schedulers, notebooks and CI pipelines can request mappings without
// linking Go code. All payloads reuse the config-file schemas.
//
// Endpoints:
//
//	GET  /v1/suites       -> {"suites": {"resnet50": 22, ...}}
//	GET  /v1/experiments  -> {"experiments": [...], "extensions": [...]}
//	GET  /v1/metrics      -> pipeline counters as JSON, or Prometheus text
//	                         exposition when the request Accepts text/plain
//	POST /v1/evaluate     -> evaluate one explicit mapping
//	POST /v1/search       -> random-search a mapspace (synchronous)
//	POST /v1/construct    -> one-shot heuristic mapping
//	POST /v1/network      -> whole-network search over a named network graph:
//	                         per-layer baseline plus fusion-aware segments
//	POST /v1/jobs         -> submit an asynchronous search job -> {"id": ...}
//	GET  /v1/jobs         -> list jobs (survives restarts with a state dir)
//	GET  /v1/jobs/{id}    -> one job's status and, when done, its result
//	GET  /v1/jobs/{id}/checkpoint -> the job's latest search snapshot (404
//	                         until the first checkpoint is written)
//	GET  /v1/healthz      -> liveness: 200 "ok", or 503 "draining" during
//	                         graceful shutdown
//
// Job requests may additionally carry "shard" and "resume" fields, which
// mark the job as one shard of a coordinated distributed search (see
// internal/dist and docs/DISTRIBUTED.md); CoordinatorHandler serves the
// matching coordinator-side status API for cmd/rubycoord.
//
// Searches run through the evaluation engine: they honor the request
// context (a client disconnect aborts the search promptly) plus an optional
// per-request "timeout_ms", memoize duplicate samples, and report aggregate
// counters at /v1/metrics.
//
// Jobs are the fault-tolerant path: build the handler with NewService and a
// state directory, and every job's record plus its periodic search
// checkpoint is persisted there. After a restart, finished jobs remain
// listable and unfinished ones resume from their checkpoints (the resumable
// searchers replay the exact draw sequence, so the completed result is
// identical to an uninterrupted run). Service.Shutdown drains workers and
// parks running jobs as "interrupted".
//
// Every failure response shares one envelope, {"error": {"code": "...",
// "message": "..."}}, where the code fixes the HTTP status (see codeStatus);
// docs/API.md documents the code table.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"ruby/internal/config"
	"ruby/internal/engine"
	"ruby/internal/exp"
	"ruby/internal/heuristic"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/obs"
	"ruby/internal/search"
	"ruby/internal/workloads"
)

// searchCacheEntries bounds the per-request memo cache. Engines (and their
// caches) are per-request — each request carries its own workload and
// architecture, so there is nothing to share across requests — and the cache
// pays off within a single search, where random sampling revisits mappings.
const searchCacheEntries = 1 << 15

// service carries the handlers' shared state: the engine configuration
// template, the process-wide pipeline instruments and their exposition
// registry, and the async job manager.
type service struct {
	ins  *engine.Instruments
	reg  *obs.Registry
	jobs *jobManager
	// defaultSearch is the algorithm used when a request leaves its
	// "search" field empty ("" = random sampling).
	defaultSearch string
}

// engineFor builds the per-request evaluation pipeline.
func (s *service) engineFor(ev *nest.Evaluator) *engine.Engine {
	return engine.Config{CacheEntries: searchCacheEntries, Metrics: s.ins}.New(ev)
}

// mux wires the endpoint handlers.
func (s *service) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/suites", handleSuites)
	mux.HandleFunc("GET /v1/experiments", handleExperiments)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/construct", handleConstruct)
	mux.HandleFunc("POST /v1/network", s.handleNetwork)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleJobCheckpoint)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// handleHealthz is the liveness probe the distributed coordinator (and any
// load balancer) polls: 200 while the server accepts work, 503 once a
// graceful shutdown has begun and new jobs would be rejected.
func (s *service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.jobs.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// New returns the service's HTTP handler (in-memory jobs, no persistence).
func New() http.Handler {
	h, _ := NewWithMetrics()
	return h
}

// NewWithMetrics returns the handler plus the pipeline counters it reports
// at /v1/metrics, so callers (cmd/rubyserve) can additionally export them
// via expvar or logs. Jobs are kept in memory; use NewService for
// persistence and graceful shutdown.
func NewWithMetrics() (http.Handler, *engine.Counters) {
	srv, err := NewService(Options{})
	if err != nil {
		// Unreachable: only a state directory can fail to open.
		panic(err)
	}
	return srv, srv.Counters()
}

// Error codes of the uniform failure envelope. Each code pins its HTTP
// status (codeStatus); clients are expected to switch on the code, not the
// status line.
const (
	// CodeInvalidRequest (400): the request body, mapping or parameters
	// cannot be parsed or are missing required fields.
	CodeInvalidRequest = "invalid_request"
	// CodeNotFound (404): the referenced resource (job ID) does not exist.
	CodeNotFound = "not_found"
	// CodeNoValidMapping (422): the problem was well-formed, but no valid
	// mapping exists or was found within the search budget.
	CodeNoValidMapping = "no_valid_mapping"
	// CodeSearchTimeout (504): the search's time bound expired before any
	// valid mapping was found.
	CodeSearchTimeout = "search_timeout"
	// CodeUnavailable (503): the service cannot accept work (shutting down).
	CodeUnavailable = "unavailable"
	// CodeInternal (500): unexpected server-side failure.
	CodeInternal = "internal"
)

// codeStatus maps an error code to its HTTP status.
func codeStatus(code string) int {
	switch code {
	case CodeInvalidRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeNoValidMapping:
		return http.StatusUnprocessableEntity
	case CodeSearchTimeout:
		return http.StatusGatewayTimeout
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// apiError is the body of the "error" envelope field.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// problem is the uniform failure payload of every /v1 endpoint.
type problem struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code string, err error) {
	writeJSON(w, codeStatus(code), problem{Error: apiError{Code: code, Message: err.Error()}})
}

func handleSuites(w http.ResponseWriter, _ *http.Request) {
	out := map[string]int{}
	for name, layers := range workloads.Suites() {
		out[name] = len(layers)
	}
	writeJSON(w, http.StatusOK, map[string]any{"suites": out})
}

func handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments": exp.Names(),
		"extensions":  exp.ExtensionNames(),
	})
}

// handleMetrics reports the pipeline metrics. The default is the legacy JSON
// counter snapshot; a request whose Accept header names text/plain gets the
// Prometheus text exposition (counters, latency/EDP histograms, job gauges)
// instead, so the same endpoint serves both scripts and a Prometheus scraper.
func (s *service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", obs.TextContentType)
		_ = s.reg.WriteText(w)
		return
	}
	writeJSON(w, http.StatusOK, s.ins.Counters.Snapshot())
}

// problemSpec is the common workload+architecture request fragment.
type problemSpec struct {
	Workload    json.RawMessage `json:"workload"`
	Arch        json.RawMessage `json:"arch"`
	Constraints json.RawMessage `json:"constraints,omitempty"`
	Mapspace    string          `json:"mapspace,omitempty"` // default ruby-s
}

// resolve parses the fragment into model objects.
func (p *problemSpec) resolve() (*nest.Evaluator, *mapspace.Space, error) {
	if len(p.Workload) == 0 || len(p.Arch) == 0 {
		return nil, nil, fmt.Errorf("workload and arch are required")
	}
	w, err := config.ParseWorkload(p.Workload)
	if err != nil {
		return nil, nil, err
	}
	a, err := config.ParseArch(p.Arch)
	if err != nil {
		return nil, nil, err
	}
	ev, err := nest.NewEvaluator(w, a)
	if err != nil {
		return nil, nil, err
	}
	cons := mapspace.Constraints{}
	if len(p.Constraints) > 0 {
		cons, err = config.ParseConstraints(p.Constraints)
		if err != nil {
			return nil, nil, err
		}
	}
	kind, err := parseKind(p.Mapspace)
	if err != nil {
		return nil, nil, err
	}
	return ev, mapspace.New(w, a, kind, cons), nil
}

func parseKind(s string) (mapspace.Kind, error) {
	switch strings.ToLower(s) {
	case "", "ruby-s", "rubys":
		return mapspace.RubyS, nil
	case "pfm", "perfect":
		return mapspace.PFM, nil
	case "ruby":
		return mapspace.Ruby, nil
	case "ruby-t", "rubyt":
		return mapspace.RubyT, nil
	default:
		return 0, fmt.Errorf("unknown mapspace %q", s)
	}
}

func parseObjective(s string) (search.Objective, error) {
	switch strings.ToLower(s) {
	case "", "edp":
		return search.ObjectiveEDP, nil
	case "energy":
		return search.ObjectiveEnergy, nil
	case "delay", "latency":
		return search.ObjectiveDelay, nil
	default:
		return 0, fmt.Errorf("unknown objective %q", s)
	}
}

// mappingResult is the common response fragment.
type mappingResult struct {
	Mapping  *mapping.Mapping `json:"mapping"`
	Cost     nest.Cost        `json:"cost"`
	LoopNest string           `json:"loop_nest"`
}

type evaluateRequest struct {
	problemSpec
	Mapping json.RawMessage `json:"mapping"`
}

func (s *service) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	ev, sp, err := req.resolve()
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	if len(req.Mapping) == 0 {
		writeErr(w, CodeInvalidRequest, fmt.Errorf("mapping is required"))
		return
	}
	m, err := mapping.Decode(req.Mapping, ev.Work, sp.Slots())
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	c := s.engineFor(ev).Evaluate(m)
	writeJSON(w, http.StatusOK, mappingResult{Mapping: m, Cost: c, LoopNest: m.Render(ev.Work, ev.Arch)})
}

// shardSpec assigns a distributed-coordination shard to an async job (the
// "shard" field; docs/DISTRIBUTED.md). chain_lo == chain_hi means no
// enumeration restriction — the shard's identity is then the seed (RNG
// substream); otherwise the exhaustive scan is confined to leading-dimension
// chain indices [chain_lo, chain_hi).
type shardSpec struct {
	Index   int `json:"index"`
	ChainLo int `json:"chain_lo"`
	ChainHi int `json:"chain_hi"`
}

type searchRequest struct {
	problemSpec
	// Search selects the algorithm (search.Algorithms; "" = random).
	Search         string `json:"search,omitempty"`
	Seed           int64  `json:"seed,omitempty"`
	Threads        int    `json:"threads,omitempty"`
	MaxEvaluations int64  `json:"max_evaluations,omitempty"`
	NoImprove      int64  `json:"no_improve,omitempty"`
	Objective      string `json:"objective,omitempty"`
	// TimeoutMS bounds the search's wall time; on expiry the best mapping
	// found so far is returned (or 504 when none was found yet).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Shard marks the request as one shard of a coordinated distributed
	// search. Jobs only: the synchronous /v1/search rejects it. A shard
	// job is exact — no default evaluation cap is applied, and a shard
	// whose range holds no valid mapping completes "done" with a null
	// mapping instead of failing.
	Shard *shardSpec `json:"shard,omitempty"`
	// Resume seeds the job from a caller-held search snapshot (the
	// checkpoint SearchState payload), used by the coordinator when
	// re-queuing a shard whose original worker died. A local checkpoint
	// file in the state directory takes precedence. Jobs only.
	Resume json.RawMessage `json:"resume,omitempty"`
}

type searchResponse struct {
	mappingResult
	Evaluated int64 `json:"evaluated"`
	Valid     int64 `json:"valid"`
	TimedOut  bool  `json:"timed_out,omitempty"`
}

func (s *service) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	if req.Shard != nil || len(req.Resume) > 0 {
		writeErr(w, CodeInvalidRequest, fmt.Errorf("shard and resume are job-only fields (POST /v1/jobs)"))
		return
	}
	ev, sp, err := req.resolve()
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	opt := search.Options{
		Seed: req.Seed, Threads: req.Threads,
		MaxEvaluations:       req.MaxEvaluations,
		ConsecutiveNoImprove: req.NoImprove,
		Objective:            obj,
	}
	if opt.MaxEvaluations <= 0 && opt.ConsecutiveNoImprove <= 0 {
		// Bound server-side work by default.
		opt.MaxEvaluations = 50000
	}

	// The request context aborts the search when the client disconnects;
	// timeout_ms additionally bounds wall time server-side.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	algo := req.Search
	if algo == "" {
		algo = s.defaultSearch
	}
	res, err := search.Run(ctx, sp, s.engineFor(ev), algo, opt)
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	if res.Best == nil {
		code := CodeNoValidMapping
		if ctx.Err() != nil {
			code = CodeSearchTimeout
		}
		writeErr(w, code,
			fmt.Errorf("no valid mapping found after %d samples", res.Evaluated))
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		mappingResult: mappingResult{
			Mapping: res.Best, Cost: res.BestCost,
			LoopNest: res.Best.Render(ev.Work, ev.Arch),
		},
		Evaluated: res.Evaluated, Valid: res.Valid,
		TimedOut: ctx.Err() != nil,
	})
}

func handleConstruct(w http.ResponseWriter, r *http.Request) {
	var req problemSpec
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	ev, sp, err := req.resolve()
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	m, c, err := heuristic.Construct(ev, sp.Kind, sp.Cons)
	if err != nil {
		writeErr(w, CodeNoValidMapping, err)
		return
	}
	writeJSON(w, http.StatusOK, mappingResult{Mapping: m, Cost: c, LoopNest: m.Render(ev.Work, ev.Arch)})
}
