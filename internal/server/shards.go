package server

import (
	"fmt"
	"net/http"
	"strconv"

	"ruby/internal/dist"
	"ruby/internal/obs"
)

// CoordinatorHandler serves the coordinator-side status API that rubycoord
// exposes while a distributed run is in flight. It is read-only — the
// coordinator's state machine is driven by the fleet loop, not by HTTP —
// and shares the /v1 error envelope with the worker API:
//
//	GET /v1/shards         -> {"shards": [...]} (full shard table)
//	GET /v1/shards/{index} -> one shard's status, owner and result
//	GET /v1/metrics        -> Prometheus text exposition of reg
//	GET /v1/healthz        -> {"status": "ok"}
//
// Pass the registry the coordinator (and fleet) registered into; nil serves
// an empty exposition.
func CoordinatorHandler(c *dist.Coordinator, reg *obs.Registry) http.Handler {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"shards": c.Shards()})
	})
	mux.HandleFunc("GET /v1/shards/{index}", func(w http.ResponseWriter, r *http.Request) {
		idx, err := strconv.Atoi(r.PathValue("index"))
		if err != nil {
			writeErr(w, CodeInvalidRequest, fmt.Errorf("shard index %q is not a number", r.PathValue("index")))
			return
		}
		sv, err := c.Shard(idx)
		if err != nil {
			writeErr(w, CodeNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, sv)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Coordinator metrics are registry-only — always the Prometheus text
		// exposition (there are no legacy JSON counters on this side).
		w.Header().Set("Content-Type", obs.TextContentType)
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}
