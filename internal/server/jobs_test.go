package server

import (
	"context"
	"net/http"
	"strconv"
	"testing"
	"time"
)

func jobBody(maxEvals int) string {
	return `{
	  "workload": ` + toyWorkloadJSON + `,
	  "arch": ` + toyArchJSON + `,
	  "mapspace": "ruby-s",
	  "seed": 7, "max_evaluations": ` + strconv.Itoa(maxEvals) + `
	}`
}

func waitJob(t *testing.T, h http.Handler, id string, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, out := do(t, h, "GET", "/v1/jobs/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job: status %d: %v", rec.Code, out)
		}
		if out["status"] == want {
			return out
		}
		if s := out["status"]; s != JobRunning && s != want {
			t.Fatalf("job reached %v, want %v: %v", s, want, out["error"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %q in time", id, want)
	return nil
}

func TestJobLifecycle(t *testing.T) {
	srv, err := NewService(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, out := do(t, srv, "POST", "/v1/jobs", jobBody(2000))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", rec.Code, out)
	}
	id := out["id"].(string)
	done := waitJob(t, srv, id, JobDone)
	res := done["result"].(map[string]any)
	if res["evaluated"].(float64) != 2000 {
		t.Errorf("evaluated = %v, want 2000", res["evaluated"])
	}
	cost := res["cost"].(map[string]any)
	if cost["Valid"] != true {
		t.Errorf("job result cost invalid: %v", cost)
	}

	rec, out = do(t, srv, "GET", "/v1/jobs", "")
	if rec.Code != http.StatusOK || len(out["jobs"].([]any)) != 1 {
		t.Errorf("list: status %d, jobs %v", rec.Code, out["jobs"])
	}
	if rec, _ := do(t, srv, "GET", "/v1/jobs/nope", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job: status %d", rec.Code)
	}
}

func TestJobSubmitRejectsBadProblem(t *testing.T) {
	srv, err := NewService(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := do(t, srv, "POST", "/v1/jobs", `{"workload": {"type": "vector1d"}}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad problem accepted: status %d", rec.Code)
	}
	if rec, out := do(t, srv, "GET", "/v1/jobs", ""); len(out["jobs"].([]any)) != 0 {
		t.Errorf("rejected job was recorded (status %d): %v", rec.Code, out)
	}
}

// Finished jobs must survive a restart: a fresh Service on the same state
// directory lists them with their results.
func TestJobsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewService(Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, out := do(t, srv, "POST", "/v1/jobs", jobBody(1500))
	id := out["id"].(string)
	waitJob(t, srv, id, JobDone)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewService(Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec, out := do(t, srv2, "GET", "/v1/jobs/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("restarted server lost job: status %d", rec.Code)
	}
	if out["status"] != JobDone {
		t.Errorf("status %v after restart, want done", out["status"])
	}
	if out["result"] == nil {
		t.Error("result lost across restart")
	}
	// New submissions must not collide with recovered IDs.
	_, out2 := do(t, srv2, "POST", "/v1/jobs", jobBody(100))
	if out2["id"] == id {
		t.Errorf("job ID %v reused after restart", id)
	}
	waitJob(t, srv2, out2["id"].(string), JobDone)
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// A job interrupted by a graceful shutdown resumes on the next startup and
// finishes with the same result as an uninterrupted run.
func TestInterruptedJobResumesDeterministically(t *testing.T) {
	// Reference: the same job run uninterrupted.
	ref, err := NewService(Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, out := do(t, ref, "POST", "/v1/jobs", jobBody(60000))
	want := waitJob(t, ref, out["id"].(string), JobDone)["result"].(map[string]any)

	dir := t.TempDir()
	srv, err := NewService(Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, out = do(t, srv, "POST", "/v1/jobs", jobBody(60000))
	id := out["id"].(string)
	// Shut down almost immediately: the job is still running.
	time.Sleep(10 * time.Millisecond)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, out := do(t, srv, "GET", "/v1/jobs/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatal("job lost at shutdown")
	}
	if s := out["status"]; s != JobInterrupted && s != JobDone {
		t.Fatalf("status %v after drain, want interrupted (or done if it won the race)", s)
	}

	srv2, err := NewService(Options{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := waitJob(t, srv2, id, JobDone)["result"].(map[string]any)
	if got["evaluated"] != want["evaluated"] {
		t.Errorf("resumed job evaluated %v, want %v", got["evaluated"], want["evaluated"])
	}
	gc, wc := got["cost"].(map[string]any), want["cost"].(map[string]any)
	if gc["EDP"] != wc["EDP"] || gc["Cycles"] != wc["Cycles"] {
		t.Errorf("resumed job cost (EDP %v, cycles %v), want (EDP %v, cycles %v)",
			gc["EDP"], gc["Cycles"], wc["EDP"], wc["Cycles"])
	}
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownRejectsNewJobs(t *testing.T) {
	srv, err := NewService(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, _ := do(t, srv, "POST", "/v1/jobs", jobBody(100))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining server accepted a job: status %d", rec.Code)
	}
}
