package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ruby/internal/config"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/search"
	"ruby/internal/sweep"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// networkRequest asks for a whole-network search: a per-layer baseline over
// every node of a built-in network graph, optionally followed by the
// fusion-aware segment search (sweep.SearchNetwork). The network is named, not
// inline — the graph constructors own the dimension-correspondence edges, and
// GET /v1/suites lists the names.
type networkRequest struct {
	// Network names a built-in network graph (workloads.Networks). Plain
	// suites resolve to edge-free graphs, so they run per-layer.
	Network string `json:"network"`
	// Arch is the architecture spec (same schema as /v1/search).
	Arch json.RawMessage `json:"arch"`
	// Constraints optionally restricts every node's mapspace uniformly.
	Constraints json.RawMessage `json:"constraints,omitempty"`
	Mapspace    string          `json:"mapspace,omitempty"` // default ruby-s
	// Fuse enables the fused-segment search across the network's edges
	// (default true; the per-layer baseline is always reported alongside).
	Fuse           *bool  `json:"fuse,omitempty"`
	Search         string `json:"search,omitempty"`
	Seed           int64  `json:"seed,omitempty"`
	Threads        int    `json:"threads,omitempty"`
	MaxEvaluations int64  `json:"max_evaluations,omitempty"`
	NoImprove      int64  `json:"no_improve,omitempty"`
	Objective      string `json:"objective,omitempty"`
	// TimeoutMS bounds the whole network search's wall time.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// networkTotals is one repeat-weighted whole-network cost summary.
type networkTotals struct {
	TotalEnergyPJ float64 `json:"total_energy_pj"`
	TotalCycles   float64 `json:"total_cycles"`
	EDP           float64 `json:"edp"`
}

// segmentSummary is one selected fused producer→consumer pair.
type segmentSummary struct {
	From        string  `json:"from"`
	To          string  `json:"to"`
	Repeat      int     `json:"repeat"`
	FusedEDP    float64 `json:"fused_edp"`
	BaselineEDP float64 `json:"baseline_edp"` // the pair's per-layer EDP product
	ElidedWords float64 `json:"elided_words"`
	GainPJ      float64 `json:"gain_pj"`
	Evaluated   int64   `json:"evaluated"`
}

type networkResponse struct {
	Network  string           `json:"network"`
	Nodes    int              `json:"nodes"`
	Edges    int              `json:"edges"`
	Baseline networkTotals    `json:"baseline"`
	Fused    networkTotals    `json:"fused"`
	Segments []segmentSummary `json:"segments"`
	// ImprovementPct is the fused network EDP's improvement over the
	// per-layer baseline, in percent (0 when nothing fused).
	ImprovementPct float64 `json:"improvement_pct"`
}

func (s *service) handleNetwork(w http.ResponseWriter, r *http.Request) {
	var req networkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	net, ok := workloads.Networks()[req.Network]
	if !ok {
		if layers, found := workloads.Suites()[req.Network]; found {
			net = workloads.NetworkFromLayers(req.Network, layers)
		} else {
			writeErr(w, CodeInvalidRequest, fmt.Errorf("unknown network %q (GET /v1/suites lists them)", req.Network))
			return
		}
	}
	if len(req.Arch) == 0 {
		writeErr(w, CodeInvalidRequest, fmt.Errorf("arch is required"))
		return
	}
	a, err := config.ParseArch(req.Arch)
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	kind, err := parseKind(req.Mapspace)
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		writeErr(w, CodeInvalidRequest, err)
		return
	}
	// The default dataflow mirrors rubysuite: row-stationary styles picked
	// per workload type. Explicit constraints override it uniformly.
	consFn := sweep.ConstraintFn(mapspace.EyerissRowStationary)
	if len(req.Constraints) > 0 {
		cons, err := config.ParseConstraints(req.Constraints)
		if err != nil {
			writeErr(w, CodeInvalidRequest, err)
			return
		}
		consFn = func(*workload.Workload) mapspace.Constraints { return cons }
	}
	opt := search.Options{
		Algo: req.Search, Seed: req.Seed, Threads: req.Threads,
		MaxEvaluations:       req.MaxEvaluations,
		ConsecutiveNoImprove: req.NoImprove,
		Objective:            obj,
	}
	if opt.Algo == "" {
		opt.Algo = s.defaultSearch
	}
	if opt.MaxEvaluations <= 0 && opt.ConsecutiveNoImprove <= 0 {
		// Bound server-side work by default: the budget applies per layer
		// and per fused edge, and networks hold many of each.
		opt.MaxEvaluations = 2000
	}
	fuse := req.Fuse == nil || *req.Fuse

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	st := sweep.Strategy{Name: kind.String(), Kind: kind}
	so := sweep.SuiteOptions{
		Search: opt,
		Engine: engine.Config{CacheEntries: searchCacheEntries, Metrics: s.ins},
	}
	nr, err := sweep.SearchNetwork(ctx, net, a, st, consFn, so, fuse)
	if err != nil {
		code := CodeNoValidMapping
		if ctx.Err() != nil {
			code = CodeSearchTimeout
		}
		writeErr(w, code, err)
		return
	}

	resp := networkResponse{
		Network: net.Name, Nodes: len(net.Nodes), Edges: len(net.Edges),
		Baseline: networkTotals{nr.Baseline.TotalEnergyPJ, nr.Baseline.TotalCycles, nr.Baseline.EDP},
		Fused:    networkTotals{nr.TotalEnergyPJ, nr.TotalCycles, nr.EDP},
		Segments: []segmentSummary{},
	}
	for _, sg := range nr.Segments {
		resp.Segments = append(resp.Segments, segmentSummary{
			From: sg.From, To: sg.To, Repeat: sg.Repeat,
			FusedEDP:    sg.Fused.EDP,
			BaselineEDP: sg.BaselineEnergyPJ * sg.BaselineCycles,
			ElidedWords: sg.Fused.ElidedWords,
			GainPJ:      sg.GainPJ(),
			Evaluated:   sg.Evaluated,
		})
	}
	if nr.Baseline.EDP > 0 {
		resp.ImprovementPct = 100 * (nr.Baseline.EDP - nr.EDP) / nr.Baseline.EDP
	}
	writeJSON(w, http.StatusOK, resp)
}
