package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const toyArchJSON = `{
  "name": "toy",
  "levels": [
    {"name": "DRAM"},
    {"name": "GLB", "capacity_words": 512, "fanout": {"x": 6, "multicast": true}}
  ]
}`

const toyWorkloadJSON = `{"name": "d100", "type": "vector1d", "d": 100}`

func do(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response: %v\n%s", method, path, err, rec.Body)
		}
	}
	return rec, out
}

func TestSuitesEndpoint(t *testing.T) {
	h := New()
	rec, out := do(t, h, "GET", "/v1/suites", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	suites := out["suites"].(map[string]any)
	if suites["resnet50"].(float64) != 22 {
		t.Errorf("resnet50 layers = %v", suites["resnet50"])
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	h := New()
	rec, out := do(t, h, "GET", "/v1/experiments", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if len(out["experiments"].([]any)) != 14 {
		t.Errorf("experiments = %v", out["experiments"])
	}
}

func TestSearchEndpoint(t *testing.T) {
	h := New()
	body := `{
	  "workload": ` + toyWorkloadJSON + `,
	  "arch": ` + toyArchJSON + `,
	  "mapspace": "ruby-s",
	  "seed": 1, "threads": 2, "max_evaluations": 3000
	}`
	rec, out := do(t, h, "POST", "/v1/search", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	cost := out["cost"].(map[string]any)
	if cost["Cycles"].(float64) != 17 {
		t.Errorf("cycles = %v, want 17 (the Fig. 5 mapping)", cost["Cycles"])
	}
	if !strings.Contains(out["loop_nest"].(string), "parFor") {
		t.Error("loop nest missing")
	}
	if out["evaluated"].(float64) <= 0 {
		t.Error("evaluated counter missing")
	}
}

func TestSearchObjectiveDelay(t *testing.T) {
	h := New()
	body := `{
	  "workload": ` + toyWorkloadJSON + `,
	  "arch": ` + toyArchJSON + `,
	  "objective": "delay", "seed": 1, "threads": 2, "max_evaluations": 3000
	}`
	rec, out := do(t, h, "POST", "/v1/search", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
}

func TestEvaluateEndpointRoundTrip(t *testing.T) {
	h := New()
	// First search, then re-evaluate the returned mapping.
	_, out := do(t, h, "POST", "/v1/search", `{
	  "workload": `+toyWorkloadJSON+`,
	  "arch": `+toyArchJSON+`,
	  "seed": 1, "threads": 1, "max_evaluations": 2000
	}`)
	mb, err := json.Marshal(out["mapping"])
	if err != nil {
		t.Fatal(err)
	}
	rec, out2 := do(t, h, "POST", "/v1/evaluate", `{
	  "workload": `+toyWorkloadJSON+`,
	  "arch": `+toyArchJSON+`,
	  "mapping": `+string(mb)+`
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out2)
	}
	c1 := out["cost"].(map[string]any)["EDP"].(float64)
	c2 := out2["cost"].(map[string]any)["EDP"].(float64)
	if c1 != c2 {
		t.Errorf("round-trip EDP changed: %g vs %g", c1, c2)
	}
}

func TestConstructEndpoint(t *testing.T) {
	h := New()
	rec, out := do(t, h, "POST", "/v1/construct", `{
	  "workload": `+toyWorkloadJSON+`,
	  "arch": `+toyArchJSON+`,
	  "mapspace": "ruby-s"
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	if out["cost"].(map[string]any)["Cycles"].(float64) != 17 {
		t.Errorf("heuristic cycles = %v", out["cost"].(map[string]any)["Cycles"])
	}
}

func TestBadRequests(t *testing.T) {
	h := New()
	cases := []struct{ path, body string }{
		{"/v1/search", `{`},
		{"/v1/search", `{"workload": {"type": "vector1d", "name": "x", "d": 4}}`}, // no arch
		{"/v1/search", `{"workload": ` + toyWorkloadJSON + `, "arch": ` + toyArchJSON + `, "mapspace": "zigzag"}`},
		{"/v1/search", `{"workload": ` + toyWorkloadJSON + `, "arch": ` + toyArchJSON + `, "objective": "area"}`},
		{"/v1/evaluate", `{"workload": ` + toyWorkloadJSON + `, "arch": ` + toyArchJSON + `}`}, // no mapping
		{"/v1/evaluate", `{"workload": ` + toyWorkloadJSON + `, "arch": ` + toyArchJSON + `, "mapping": {"factors": {"X": [1]}}}`},
		{"/v1/construct", `{"arch": ` + toyArchJSON + `}`},
	}
	for _, c := range cases {
		rec, out := do(t, h, "POST", c.path, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400 (%v)", c.path, c.body, rec.Code, out)
		}
		if out["error"] == nil {
			t.Errorf("%s: missing error body", c.path)
		}
	}
}

func TestSearchUnsatisfiable(t *testing.T) {
	h := New()
	tiny := `{
	  "name": "tiny",
	  "levels": [
	    {"name": "DRAM"},
	    {"name": "GLB", "capacity_words": 1, "fanout": {"x": 2}}
	  ]
	}`
	rec, out := do(t, h, "POST", "/v1/search", `{
	  "workload": {"name": "d", "type": "vector1d", "d": 7},
	  "arch": `+tiny+`, "max_evaluations": 300
	}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("status %d, want 422 (%v)", rec.Code, out)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	h, counters := NewWithMetrics()
	do(t, h, "POST", "/v1/search", `{
	  "workload": `+toyWorkloadJSON+`,
	  "arch": `+toyArchJSON+`,
	  "seed": 1, "threads": 2, "max_evaluations": 2000
	}`)
	rec, out := do(t, h, "GET", "/v1/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if out["evaluations"].(float64) < 2000 {
		t.Errorf("evaluations = %v, want >= 2000", out["evaluations"])
	}
	if out["searches"].(float64) != 1 {
		t.Errorf("searches = %v, want 1", out["searches"])
	}
	if got := counters.Snapshot().Evaluations; float64(got) != out["evaluations"].(float64) {
		t.Errorf("endpoint and counters disagree: %v vs %d", out["evaluations"], got)
	}
}

func TestSearchTimeoutMS(t *testing.T) {
	h := New()
	// A huge no-improve budget would run for a long time; timeout_ms bounds
	// it server-side and the best-so-far comes back flagged.
	start := time.Now()
	rec, out := do(t, h, "POST", "/v1/search", `{
	  "workload": `+toyWorkloadJSON+`,
	  "arch": `+toyArchJSON+`,
	  "seed": 1, "threads": 2, "no_improve": 1000000000, "timeout_ms": 100
	}`)
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("timed-out search took %v", wall)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, out)
	}
	if out["timed_out"] != true {
		t.Errorf("timed_out = %v, want true", out["timed_out"])
	}
}

func TestSearchClientDisconnect(t *testing.T) {
	h := New()
	body := `{
	  "workload": ` + toyWorkloadJSON + `,
	  "arch": ` + toyArchJSON + `,
	  "seed": 1, "threads": 2, "no_improve": 1000000000
	}`
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/search", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel() // simulate the client going away
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
}
