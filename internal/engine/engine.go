// Package engine is the evaluation pipeline between the searchers and the
// pure cost model. Every consumer that evaluates mappings in bulk — the
// searchers, the suite sweeps, the experiment runners, the HTTP server —
// routes through an Engine, which layers three production concerns on top of
// nest.Evaluator without touching the model itself:
//
//   - cancellation: batch evaluation honors a context, so searches stop
//     promptly on deadlines and client disconnects;
//   - memoization: an optional concurrency-safe cache keyed by the canonical
//     mapping signature (mapping.Key) stops random sampling in small or
//     heavily constrained mapspaces from re-paying full model cost for
//     duplicate samples;
//   - instrumentation: a pluggable Metrics hook counts evaluations, validity,
//     cache hits, improvement events and per-search wall time, with an
//     atomic default implementation exportable via expvar/JSON.
//
// The Engine is safe for concurrent use; a zero Config yields a transparent
// pass-through (no cache, no metrics) so Engine results are always
// bit-identical to calling nest.Evaluator.Evaluate directly.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ruby/internal/mapping"
	"ruby/internal/nest"
	"ruby/internal/obs"
)

// CancelledReason marks a Cost slot that was skipped because the batch's
// context was cancelled before the mapping was evaluated. It can never
// collide with a real model verdict (model reasons never carry the
// "engine:" prefix).
const CancelledReason = "engine: evaluation cancelled"

// Cancelled reports whether a cost is a cancellation placeholder rather than
// a real model verdict.
func Cancelled(c *nest.Cost) bool { return !c.Valid && c.Reason == CancelledReason }

// Config tunes an Engine. The zero value is a transparent pass-through.
type Config struct {
	// CacheEntries bounds the evaluation cache (approximately; the
	// generational eviction keeps at most ~2x this many entries resident).
	// 0 disables caching entirely.
	CacheEntries int
	// Metrics receives evaluation and search events. nil disables
	// instrumentation.
	Metrics Metrics
	// Workers bounds EvaluateBatch parallelism (default: NumCPU, capped at
	// 24 to match the paper's search setup).
	Workers int
	// LatencySampleEvery reports every Nth uncached evaluation's model
	// latency to Metrics.EvalLatency (counted per worker). 0 selects the
	// default of 64 — two clock reads per 64 evaluations keep the timing
	// overhead far below the hot path's noise floor — 1 times every
	// evaluation, and a negative value disables latency sampling.
	LatencySampleEvery int
}

// defaultLatencySampleEvery is the sampling period Config.LatencySampleEvery
// zero selects.
const defaultLatencySampleEvery = 64

// Engine evaluates mappings for one (workload, architecture) pair.
type Engine struct {
	ev          *nest.Evaluator
	cache       *memoCache
	metrics     Metrics
	workers     int
	sampleEvery uint64 // 0 = latency sampling disabled
	nEvals      atomic.Uint64
	// evalHook, when non-nil, replaces the raw model call — test-only
	// injection for exercising the panic guard.
	evalHook func(*mapping.Mapping) nest.Cost
}

// New builds an Engine from a Config. A nil-safe Metrics and a worker
// default are filled in.
func (c Config) New(ev *nest.Evaluator) *Engine {
	e := &Engine{ev: ev, metrics: c.Metrics, workers: c.Workers}
	if e.metrics == nil {
		e.metrics = NopMetrics
	}
	if e.workers <= 0 {
		e.workers = runtime.NumCPU()
		if e.workers > 24 {
			e.workers = 24
		}
	}
	switch {
	case c.LatencySampleEvery == 0:
		e.sampleEvery = defaultLatencySampleEvery
	case c.LatencySampleEvery > 0:
		e.sampleEvery = uint64(c.LatencySampleEvery)
	}
	if c.CacheEntries > 0 {
		e.cache = newMemoCache(c.CacheEntries)
	}
	return e
}

// New builds a pass-through Engine (no cache, no metrics) — the adapter the
// legacy non-context search entry points use.
func New(ev *nest.Evaluator) *Engine { return Config{}.New(ev) }

// Evaluator exposes the wrapped pure cost model.
func (e *Engine) Evaluator() *nest.Evaluator { return e.ev }

// Metrics exposes the engine's metrics hook (never nil), so searchers can
// record search-level events (improvements, wall time) alongside the
// per-evaluation counters the Engine records itself.
func (e *Engine) Metrics() Metrics { return e.metrics }

// Evaluate runs one mapping through the cache and the model. Cached costs
// are bit-identical to fresh ones: the model is deterministic, and the cache
// key (mapping.Key) canonicalizes exactly the features the model reads.
// The returned Cost shares its per-level slices with the cache; callers
// treat costs as read-only (all existing consumers do). A panicking model
// call is isolated, retried and — if it keeps panicking — degraded to an
// invalid Cost with a PanicReason (see evalGuarded).
func (e *Engine) Evaluate(m *mapping.Mapping) nest.Cost {
	if e.cache == nil {
		c := e.timedEval(m, nil, e.nEvals.Add(1))
		e.metrics.Evaluation(c.Valid, false)
		return c
	}
	key := m.Key(e.ev.Work, e.ev.Slots)
	if c, ok := e.cache.get(key); ok {
		e.metrics.Evaluation(c.Valid, true)
		return c
	}
	c := e.timedEval(m, nil, e.nEvals.Add(1))
	e.cache.put(key, c)
	e.metrics.Evaluation(c.Valid, false)
	return c
}

// timedEval runs one guarded model call, timing every sampleEvery-th call
// and reporting it to Metrics.EvalLatency. n is the caller's running count
// of uncached evaluations — per Worker on the search hot path, engine-wide
// for Engine.Evaluate — so the sampling clock adds no shared state to
// worker loops.
//
//ruby:hotpath
func (e *Engine) timedEval(m *mapping.Mapping, w *Worker, n uint64) nest.Cost {
	if e.sampleEvery == 0 || n%e.sampleEvery != 0 {
		return e.evalGuarded(m, w)
	}
	start := time.Now()
	c := e.evalGuarded(m, w)
	e.metrics.EvalLatency(time.Since(start))
	return c
}

// Worker is a per-goroutine evaluation handle: the engine's compiled plan
// plus a private scratch. It keeps the hot path allocation-free — no pool
// traffic, no locks — while sharing the engine's cache and metrics. A Worker
// must not be used from more than one goroutine at a time.
type Worker struct {
	e       *Engine
	scratch *nest.Scratch
	n       uint64 // uncached evaluations; drives latency sampling
}

// NewWorker builds an evaluation worker bound to the engine.
func (e *Engine) NewWorker() *Worker {
	return &Worker{e: e, scratch: e.ev.Plan().NewScratch()}
}

// Evaluate is Engine.Evaluate on the worker's scratch. The returned Cost is
// stable (detached from the scratch).
func (w *Worker) Evaluate(m *mapping.Mapping) nest.Cost {
	c := w.EvaluateShared(m)
	if w.e.cache == nil {
		c = c.Clone()
	}
	return c
}

// EvaluateShared evaluates m without detaching the result: the returned
// Cost's per-level slices alias either the worker's scratch or a cache
// entry, and scratch-backed results are overwritten by the worker's next
// evaluation. Callers that retain a cost across evaluations (e.g. a search's
// running best) must Clone it. This is the zero-allocation steady-state path
// for cache-less tight loops.
func (w *Worker) EvaluateShared(m *mapping.Mapping) nest.Cost {
	e := w.e
	if e.cache == nil {
		w.n++
		c := e.timedEval(m, w, w.n)
		e.metrics.Evaluation(c.Valid, false)
		return c
	}
	key := m.Key(e.ev.Work, e.ev.Slots)
	if c, ok := e.cache.get(key); ok {
		e.metrics.Evaluation(c.Valid, true)
		return c
	}
	w.n++
	c := e.timedEval(m, w, w.n).Clone()
	e.cache.put(key, c)
	e.metrics.Evaluation(c.Valid, false)
	return c
}

// EvaluateBatch evaluates a slice of mappings in parallel, preserving order.
// When ctx is cancelled mid-batch, the remaining slots are filled with
// CancelledReason placeholders instead of being evaluated; callers detect
// them with Cancelled. A nil ctx means no cancellation.
//
// Each call reports its wall time to Metrics.BatchLatency and, when ctx
// carries an obs.Recorder, records one "eval-batch" trace span — per-batch
// granularity keeps tracing off the per-evaluation hot path.
func (e *Engine) EvaluateBatch(ctx context.Context, ms []*mapping.Mapping) []nest.Cost {
	_, span := obs.StartSpan(ctx, "eval-batch")
	start := time.Now()
	out := e.evaluateBatch(ctx, ms)
	e.metrics.BatchLatency(time.Since(start), len(ms))
	span.End()
	return out
}

func (e *Engine) evaluateBatch(ctx context.Context, ms []*mapping.Mapping) []nest.Cost {
	out := make([]nest.Cost, len(ms))
	workers := e.workers
	if workers > len(ms) {
		workers = len(ms)
	}
	if workers <= 1 {
		for i, m := range ms {
			if ctx != nil && ctx.Err() != nil {
				out[i] = nest.Cost{Valid: false, Reason: CancelledReason}
				continue
			}
			out[i] = e.Evaluate(m)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := e.NewWorker()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ms) {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					out[i] = nest.Cost{Valid: false, Reason: CancelledReason}
					continue
				}
				out[i] = wk.Evaluate(ms[i])
			}
		}()
	}
	wg.Wait()
	return out
}
