// Package engine is the evaluation pipeline between the searchers and the
// pure cost model. Every consumer that evaluates mappings in bulk — the
// searchers, the suite sweeps, the experiment runners, the HTTP server —
// routes through an Engine, which layers three production concerns on top of
// nest.Evaluator without touching the model itself:
//
//   - cancellation: batch evaluation honors a context, so searches stop
//     promptly on deadlines and client disconnects;
//   - memoization: an optional concurrency-safe cache keyed by the canonical
//     mapping signature (mapping.Key) stops random sampling in small or
//     heavily constrained mapspaces from re-paying full model cost for
//     duplicate samples;
//   - instrumentation: a pluggable Metrics hook counts evaluations, validity,
//     cache hits, improvement events and per-search wall time, with an
//     atomic default implementation exportable via expvar/JSON.
//
// The Engine is safe for concurrent use; a zero Config yields a transparent
// pass-through (no cache, no metrics) so Engine results are always
// bit-identical to calling nest.Evaluator.Evaluate directly.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ruby/internal/mapping"
	"ruby/internal/nest"
)

// CancelledReason marks a Cost slot that was skipped because the batch's
// context was cancelled before the mapping was evaluated. It can never
// collide with a real model verdict (model reasons never carry the
// "engine:" prefix).
const CancelledReason = "engine: evaluation cancelled"

// Cancelled reports whether a cost is a cancellation placeholder rather than
// a real model verdict.
func Cancelled(c *nest.Cost) bool { return !c.Valid && c.Reason == CancelledReason }

// Config tunes an Engine. The zero value is a transparent pass-through.
type Config struct {
	// CacheEntries bounds the evaluation cache (approximately; the
	// generational eviction keeps at most ~2x this many entries resident).
	// 0 disables caching entirely.
	CacheEntries int
	// Metrics receives evaluation and search events. nil disables
	// instrumentation.
	Metrics Metrics
	// Workers bounds EvaluateBatch parallelism (default: NumCPU, capped at
	// 24 to match the paper's search setup).
	Workers int
}

// Engine evaluates mappings for one (workload, architecture) pair.
type Engine struct {
	ev      *nest.Evaluator
	cache   *memoCache
	metrics Metrics
	workers int
	// evalHook, when non-nil, replaces the raw model call — test-only
	// injection for exercising the panic guard.
	evalHook func(*mapping.Mapping) nest.Cost
}

// New builds an Engine from a Config. A nil-safe Metrics and a worker
// default are filled in.
func (c Config) New(ev *nest.Evaluator) *Engine {
	e := &Engine{ev: ev, metrics: c.Metrics, workers: c.Workers}
	if e.metrics == nil {
		e.metrics = NopMetrics
	}
	if e.workers <= 0 {
		e.workers = runtime.NumCPU()
		if e.workers > 24 {
			e.workers = 24
		}
	}
	if c.CacheEntries > 0 {
		e.cache = newMemoCache(c.CacheEntries)
	}
	return e
}

// New builds a pass-through Engine (no cache, no metrics) — the adapter the
// legacy non-context search entry points use.
func New(ev *nest.Evaluator) *Engine { return Config{}.New(ev) }

// Evaluator exposes the wrapped pure cost model.
func (e *Engine) Evaluator() *nest.Evaluator { return e.ev }

// Metrics exposes the engine's metrics hook (never nil), so searchers can
// record search-level events (improvements, wall time) alongside the
// per-evaluation counters the Engine records itself.
func (e *Engine) Metrics() Metrics { return e.metrics }

// Evaluate runs one mapping through the cache and the model. Cached costs
// are bit-identical to fresh ones: the model is deterministic, and the cache
// key (mapping.Key) canonicalizes exactly the features the model reads.
// The returned Cost shares its per-level slices with the cache; callers
// treat costs as read-only (all existing consumers do). A panicking model
// call is isolated, retried and — if it keeps panicking — degraded to an
// invalid Cost with a PanicReason (see evalGuarded).
func (e *Engine) Evaluate(m *mapping.Mapping) nest.Cost {
	if e.cache == nil {
		c := e.evalGuarded(m, nil)
		e.metrics.Evaluation(c.Valid, false)
		return c
	}
	key := m.Key(e.ev.Work, e.ev.Slots)
	if c, ok := e.cache.get(key); ok {
		e.metrics.Evaluation(c.Valid, true)
		return c
	}
	c := e.evalGuarded(m, nil)
	e.cache.put(key, c)
	e.metrics.Evaluation(c.Valid, false)
	return c
}

// Worker is a per-goroutine evaluation handle: the engine's compiled plan
// plus a private scratch. It keeps the hot path allocation-free — no pool
// traffic, no locks — while sharing the engine's cache and metrics. A Worker
// must not be used from more than one goroutine at a time.
type Worker struct {
	e       *Engine
	scratch *nest.Scratch
}

// NewWorker builds an evaluation worker bound to the engine.
func (e *Engine) NewWorker() *Worker {
	return &Worker{e: e, scratch: e.ev.Plan().NewScratch()}
}

// Evaluate is Engine.Evaluate on the worker's scratch. The returned Cost is
// stable (detached from the scratch).
func (w *Worker) Evaluate(m *mapping.Mapping) nest.Cost {
	c := w.EvaluateShared(m)
	if w.e.cache == nil {
		c = c.Clone()
	}
	return c
}

// EvaluateShared evaluates m without detaching the result: the returned
// Cost's per-level slices alias either the worker's scratch or a cache
// entry, and scratch-backed results are overwritten by the worker's next
// evaluation. Callers that retain a cost across evaluations (e.g. a search's
// running best) must Clone it. This is the zero-allocation steady-state path
// for cache-less tight loops.
func (w *Worker) EvaluateShared(m *mapping.Mapping) nest.Cost {
	e := w.e
	if e.cache == nil {
		c := e.evalGuarded(m, w)
		e.metrics.Evaluation(c.Valid, false)
		return c
	}
	key := m.Key(e.ev.Work, e.ev.Slots)
	if c, ok := e.cache.get(key); ok {
		e.metrics.Evaluation(c.Valid, true)
		return c
	}
	c := e.evalGuarded(m, w).Clone()
	e.cache.put(key, c)
	e.metrics.Evaluation(c.Valid, false)
	return c
}

// EvaluateBatch evaluates a slice of mappings in parallel, preserving order.
// When ctx is cancelled mid-batch, the remaining slots are filled with
// CancelledReason placeholders instead of being evaluated; callers detect
// them with Cancelled. A nil ctx means no cancellation.
func (e *Engine) EvaluateBatch(ctx context.Context, ms []*mapping.Mapping) []nest.Cost {
	out := make([]nest.Cost, len(ms))
	workers := e.workers
	if workers > len(ms) {
		workers = len(ms)
	}
	if workers <= 1 {
		for i, m := range ms {
			if ctx != nil && ctx.Err() != nil {
				out[i] = nest.Cost{Valid: false, Reason: CancelledReason}
				continue
			}
			out[i] = e.Evaluate(m)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := e.NewWorker()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ms) {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					out[i] = nest.Cost{Valid: false, Reason: CancelledReason}
					continue
				}
				out[i] = wk.Evaluate(ms[i])
			}
		}()
	}
	wg.Wait()
	return out
}
