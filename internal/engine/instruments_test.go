package engine

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"ruby/internal/obs"
)

// TestInstrumentsHistogramMatchesCounters is the cross-layer invariant: with
// LatencySampleEvery=1 and no cache, every model evaluation is timed, so the
// eval-latency histogram's count equals the Counters' evaluation total, and
// bucket counts are consistent (non-negative, summing to the total).
func TestInstrumentsHistogramMatchesCounters(t *testing.T) {
	sp, ev := toy()
	in := NewInstruments()
	eng := Config{Metrics: in, LatencySampleEvery: 1}.New(ev)

	const n = 300
	eng.EvaluateBatch(context.Background(), samples(sp, n, 3))
	wk := eng.NewWorker()
	for _, m := range samples(sp, n, 4) {
		wk.EvaluateShared(m)
	}

	snap := in.Counters.Snapshot()
	if snap.Evaluations != 2*n {
		t.Fatalf("evaluations = %d, want %d", snap.Evaluations, 2*n)
	}
	hist := in.EvalHist.Snapshot()
	if hist.Count != snap.Evaluations-snap.CacheHits {
		t.Fatalf("eval-latency histogram count %d != uncached evaluations %d",
			hist.Count, snap.Evaluations-snap.CacheHits)
	}
	total := int64(0)
	for _, c := range hist.Counts {
		if c < 0 {
			t.Fatalf("negative bucket count: %v", hist.Counts)
		}
		total += c
	}
	if total != hist.Count {
		t.Fatalf("bucket counts sum to %d, histogram count %d", total, hist.Count)
	}
	if hist.Sum <= 0 {
		t.Fatalf("latency sum = %g, want > 0", hist.Sum)
	}
	if batch := in.BatchHist.Snapshot(); batch.Count != 1 {
		t.Fatalf("batch histogram count = %d, want 1", batch.Count)
	}
}

// TestLatencySampling checks the sampling clock: every Nth uncached
// evaluation is timed, and negative LatencySampleEvery disables timing.
func TestLatencySampling(t *testing.T) {
	sp, ev := toy()
	in := NewInstruments()
	eng := Config{Metrics: in, LatencySampleEvery: 10}.New(ev)
	wk := eng.NewWorker()
	for _, m := range samples(sp, 100, 5) {
		wk.EvaluateShared(m)
	}
	if got := in.EvalHist.Snapshot().Count; got != 10 {
		t.Fatalf("sampled %d evaluations, want 10 of 100", got)
	}

	off := NewInstruments()
	engOff := Config{Metrics: off, LatencySampleEvery: -1}.New(ev)
	wkOff := engOff.NewWorker()
	for _, m := range samples(sp, 100, 5) {
		wkOff.EvaluateShared(m)
	}
	if got := off.EvalHist.Snapshot().Count; got != 0 {
		t.Fatalf("disabled sampling still recorded %d latencies", got)
	}
	if off.Counters.Snapshot().Evaluations != 100 {
		t.Fatal("counting must be unaffected by disabled latency sampling")
	}
}

func TestInstrumentsSlowLog(t *testing.T) {
	var buf bytes.Buffer
	in := NewInstruments()
	in.Slow = &obs.SlowLog{
		Logger:          slog.New(slog.NewTextHandler(&buf, nil)),
		SearchThreshold: time.Nanosecond,
	}
	in.SearchDone(time.Second, 10, 5)
	if !strings.Contains(buf.String(), "slow search") {
		t.Fatalf("slow search not logged: %s", buf.String())
	}
	if in.Counters.Snapshot().Searches != 1 {
		t.Fatal("SearchDone must still count")
	}
}

func TestInstrumentsRegister(t *testing.T) {
	in := NewInstruments()
	in.Evaluation(true, false)
	in.BestObjective(1e9)
	reg := obs.NewRegistry()
	in.Register(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ruby_evaluations_total 1",
		"# TYPE ruby_eval_latency_seconds histogram",
		"ruby_search_best_edp_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
