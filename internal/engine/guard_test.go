package engine

import (
	"context"
	"strings"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func guardFixture(t *testing.T, cfg Config) (*Engine, *mapping.Mapping) {
	t.Helper()
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	sp := mapspace.New(w, a, mapspace.PFM, mapspace.Constraints{FixedPerms: true})
	eng := cfg.New(nest.MustEvaluator(w, a))
	m := sp.NewEnumerator().Next()
	if m == nil {
		t.Fatal("empty mapspace")
	}
	return eng, m
}

func TestPersistentPanicDegradesToInvalidCost(t *testing.T) {
	met := &Counters{}
	eng, m := guardFixture(t, Config{Metrics: met})
	calls := 0
	eng.evalHook = func(*mapping.Mapping) nest.Cost {
		calls++
		panic("model bug")
	}
	c := eng.Evaluate(m)
	if c.Valid {
		t.Fatal("panicking evaluation reported valid")
	}
	if !Panicked(&c) {
		t.Errorf("Reason %q not recognized by Panicked", c.Reason)
	}
	if !strings.Contains(c.Reason, "model bug") {
		t.Errorf("Reason %q does not carry the panic value", c.Reason)
	}
	if want := panicRetries + 1; calls != want {
		t.Errorf("model called %d times, want %d (initial + retries)", calls, want)
	}
	if got := met.Snapshot().Panics; got != int64(panicRetries+1) {
		t.Errorf("panics counter = %d, want %d", got, panicRetries+1)
	}
	// The degraded cost still counts as an (invalid) evaluation.
	if s := met.Snapshot(); s.Evaluations != 1 || s.Valid != 0 {
		t.Errorf("evaluation counters = %+v", s)
	}
}

func TestTransientPanicRecoversWithRetry(t *testing.T) {
	met := &Counters{}
	eng, m := guardFixture(t, Config{Metrics: met})
	ev := eng.Evaluator()
	calls := 0
	eng.evalHook = func(mm *mapping.Mapping) nest.Cost {
		calls++
		if calls == 1 {
			panic("transient")
		}
		return ev.Evaluate(mm)
	}
	c := eng.Evaluate(m)
	if !c.Valid {
		t.Fatalf("retry did not recover: %q", c.Reason)
	}
	want := ev.Evaluate(m)
	if c.EDP != want.EDP || c.Cycles != want.Cycles {
		t.Errorf("recovered cost %+v, want %+v", c, want)
	}
	if got := met.Snapshot().Panics; got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
}

// A panic on the worker path must rebuild the scratch: subsequent
// evaluations on the same worker keep producing correct results.
func TestWorkerSurvivesPanicAndKeepsEvaluating(t *testing.T) {
	eng, m := guardFixture(t, Config{})
	ev := eng.Evaluator()
	want := ev.Evaluate(m)

	wk := eng.NewWorker()
	calls := 0
	eng.evalHook = func(mm *mapping.Mapping) nest.Cost {
		calls++
		if calls == 1 {
			panic("scratch corrupted")
		}
		return ev.Evaluate(mm)
	}
	if c := wk.Evaluate(m); !c.Valid {
		t.Fatalf("worker did not recover: %q", c.Reason)
	}
	// Drop the hook: the rebuilt scratch must evaluate correctly.
	eng.evalHook = nil
	c := wk.Evaluate(m)
	if !c.Valid || c.EDP != want.EDP {
		t.Errorf("post-panic worker cost %+v, want %+v", c, want)
	}
}

// One poisoned mapping must not take down a batch: the other slots evaluate
// normally and the batch completes.
func TestBatchIsolatesPanickingMapping(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	sp := mapspace.New(w, a, mapspace.PFM, mapspace.Constraints{FixedPerms: true})
	met := &Counters{}
	eng := Config{Workers: 4, Metrics: met}.New(nest.MustEvaluator(w, a))

	var ms []*mapping.Mapping
	en := sp.NewEnumerator()
	for m := en.Next(); m != nil && len(ms) < 8; m = en.Next() {
		ms = append(ms, m)
	}
	if len(ms) < 2 {
		t.Fatal("need at least two mappings")
	}
	poisoned := ms[0]
	ev := eng.Evaluator()
	eng.evalHook = func(m *mapping.Mapping) nest.Cost {
		if m == poisoned {
			panic("poisoned mapping")
		}
		return ev.Evaluate(m)
	}
	out := eng.EvaluateBatch(context.Background(), ms)
	if !Panicked(&out[0]) {
		t.Errorf("poisoned slot: %+v", out[0])
	}
	for i := 1; i < len(out); i++ {
		if Panicked(&out[i]) || Cancelled(&out[i]) {
			t.Errorf("slot %d affected by slot 0's panic: %+v", i, out[i])
		}
	}
	if got := met.Snapshot().Panics; got != int64(panicRetries+1) {
		t.Errorf("panics counter = %d, want %d", got, panicRetries+1)
	}
}

// Degraded costs are cached like any other verdict, so a deterministically
// panicking mapping pays the retry backoff once, not on every duplicate.
func TestPanicDegradationIsCached(t *testing.T) {
	eng, m := guardFixture(t, Config{CacheEntries: 64})
	calls := 0
	eng.evalHook = func(*mapping.Mapping) nest.Cost {
		calls++
		panic("always")
	}
	first := eng.Evaluate(m)
	second := eng.Evaluate(m)
	if !Panicked(&first) || !Panicked(&second) {
		t.Fatalf("degradation lost: %+v / %+v", first, second)
	}
	if want := panicRetries + 1; calls != want {
		t.Errorf("model called %d times, want %d (second lookup must hit the cache)", calls, want)
	}
}
