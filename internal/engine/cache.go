package engine

import (
	"sync"

	"ruby/internal/nest"
)

// memoCache is a sharded, bounded, concurrency-safe map from canonical
// mapping signatures to costs. Eviction is generational ("flip-flop"): each
// shard keeps a current and a previous map; when the current map fills, it
// becomes the previous one and a fresh map starts. Hits in the previous
// generation are promoted. This bounds residency at ~2x the configured
// capacity with O(1) operations and no per-entry bookkeeping — recently hot
// keys survive rotation, cold ones age out wholesale.
type memoCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 16

type cacheShard struct {
	//ruby:guards cur,prev
	mu        sync.Mutex
	cur, prev map[string]nest.Cost
	cap       int // max entries per generation in this shard
}

func newMemoCache(entries int) *memoCache {
	perShard := entries / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &memoCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].cur = make(map[string]nest.Cost)
	}
	return c
}

// shardOf hashes a key to its shard (FNV-1a, inlined to avoid allocation).
func (c *memoCache) shardOf(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

func (c *memoCache) get(key string) (nest.Cost, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.cur[key]; ok {
		return v, true
	}
	if v, ok := s.prev[key]; ok {
		s.insert(key, v) // promote so it survives the next rotation
		return v, true
	}
	return nest.Cost{}, false
}

func (c *memoCache) put(key string, v nest.Cost) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insert(key, v)
}

// insert adds to the current generation, rotating when full. Callers hold
// the shard lock.
//
//ruby:locked mu
func (s *cacheShard) insert(key string, v nest.Cost) {
	s.cur[key] = v
	if len(s.cur) >= s.cap {
		s.prev = s.cur
		s.cur = make(map[string]nest.Cost, s.cap)
	}
}

// len reports resident entries across both generations (for tests).
func (c *memoCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.cur) + len(s.prev)
		s.mu.Unlock()
	}
	return n
}
