package engine

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func toy() (*mapspace.Space, *nest.Evaluator) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	return mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{FixedPerms: true}),
		nest.MustEvaluator(w, a)
}

// samples draws n mappings (with duplicates, by design of the small space).
func samples(sp *mapspace.Space, n int, seed int64) []*mapping.Mapping {
	rng := rand.New(rand.NewSource(seed))
	ms := make([]*mapping.Mapping, n)
	for i := range ms {
		ms[i] = sp.Sample(rng)
	}
	return ms
}

func TestPassThroughMatchesEvaluator(t *testing.T) {
	sp, ev := toy()
	eng := New(ev)
	for _, m := range samples(sp, 50, 1) {
		got := eng.Evaluate(m)
		want := ev.Evaluate(m)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass-through cost differs: got %+v want %+v", got, want)
		}
	}
}

func TestCachedCostBitIdentical(t *testing.T) {
	sp, ev := toy()
	eng := Config{CacheEntries: 1 << 12}.New(ev)
	for _, m := range samples(sp, 200, 2) {
		fresh := ev.Evaluate(m)
		first := eng.Evaluate(m)
		second := eng.Evaluate(m) // guaranteed cache hit
		if !reflect.DeepEqual(first, fresh) || !reflect.DeepEqual(second, fresh) {
			t.Fatalf("cached cost differs from model: model %+v first %+v second %+v", fresh, first, second)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	sp, ev := toy()
	met := &Counters{}
	eng := Config{CacheEntries: 1 << 12, Metrics: met}.New(ev)
	m := sp.Sample(rand.New(rand.NewSource(3)))
	eng.Evaluate(m)
	eng.Evaluate(m)
	eng.Evaluate(m)
	s := met.Snapshot()
	if s.Evaluations != 3 {
		t.Errorf("evaluations = %d, want 3", s.Evaluations)
	}
	if s.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", s.CacheHits)
	}
	if s.CacheHitRate < 0.6 || s.CacheHitRate > 0.7 {
		t.Errorf("cache hit rate = %f, want 2/3", s.CacheHitRate)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	sp, ev := toy()
	met := &Counters{}
	eng := Config{CacheEntries: 64, Metrics: met}.New(ev)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for _, m := range samples(sp, 500, seed) {
				c := eng.Evaluate(m)
				if c.Valid && c.EDP <= 0 {
					t.Errorf("valid mapping with nonpositive EDP: %+v", c)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := met.Snapshot().Evaluations; got != 8*500 {
		t.Errorf("evaluations = %d, want %d", got, 8*500)
	}
}

func TestCacheResidencyBound(t *testing.T) {
	c := newMemoCache(64) // 4 per shard
	for i := 0; i < 10000; i++ {
		c.put(key(i), nest.Cost{Valid: true})
	}
	// Generational eviction keeps at most cur+prev = 2x capacity per shard,
	// plus one slot of slack per shard for the entry that triggers rotation.
	if n, bound := c.len(), 2*64+cacheShards; n > bound {
		t.Errorf("resident entries = %d, want <= %d", n, bound)
	}
}

func TestCachePromotionSurvivesRotation(t *testing.T) {
	c := newMemoCache(cacheShards) // 1 entry per shard generation
	c.put("hot", nest.Cost{Valid: true, Cycles: 42})
	// The insert of "hot" fills its shard and rotates it into prev; a get
	// must still find and re-promote it.
	if _, ok := c.get("hot"); !ok {
		t.Fatal("entry lost immediately after rotation")
	}
	if v, ok := c.get("hot"); !ok || v.Cycles != 42 {
		t.Fatalf("promoted entry lost or corrupted: %+v ok=%v", v, ok)
	}
}

func key(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + string(rune('0'+i%10))
}

func TestEvaluateBatchMatchesSerial(t *testing.T) {
	sp, ev := toy()
	ms := samples(sp, 300, 4)
	serial := New(ev)
	parallel := Config{Workers: 8}.New(ev)
	got := parallel.EvaluateBatch(context.Background(), ms)
	for i, m := range ms {
		want := serial.Evaluate(m)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("batch[%d] = %+v, want %+v", i, got[i], want)
		}
	}
}

func TestEvaluateBatchCancelled(t *testing.T) {
	sp, ev := toy()
	ms := samples(sp, 100, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := Config{Workers: 4}.New(ev).EvaluateBatch(ctx, ms)
	if len(out) != len(ms) {
		t.Fatalf("batch length %d, want %d", len(out), len(ms))
	}
	for i := range out {
		if !Cancelled(&out[i]) {
			t.Fatalf("slot %d evaluated despite cancelled context: %+v", i, out[i])
		}
	}
}
