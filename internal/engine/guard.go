package engine

import (
	"fmt"
	"strings"
	"time"

	"ruby/internal/mapping"
	"ruby/internal/nest"
)

// PanicReason prefixes the Reason of a Cost returned for a mapping whose
// evaluation panicked repeatedly. Like CancelledReason it carries the
// "engine:" prefix, which model verdicts never use, so callers can tell
// pipeline failures from genuine invalid mappings.
const PanicReason = "engine: evaluation panicked"

// Panicked reports whether a cost is a panic-degradation placeholder rather
// than a real model verdict.
func Panicked(c *nest.Cost) bool { return !c.Valid && strings.HasPrefix(c.Reason, PanicReason) }

// panicRetries is how many times a panicking evaluation is retried (with
// exponential backoff) before the engine degrades it to an invalid Cost. A
// deterministic model panic fails fast — three attempts and ~3ms of backoff —
// while a transient one (e.g. a corrupted scratch from a previous panic)
// gets a clean retry on a fresh scratch.
const panicRetries = 2

// tryEvaluate performs one model call with panic recovery. It must stay a
// method (not a closure) so the deferred recover is open-coded and the happy
// path stays allocation-free. A non-nil worker routes through the worker's
// scratch; otherwise the shared evaluator path is used. The recovered panic
// value, if any, is returned in pv.
func (e *Engine) tryEvaluate(m *mapping.Mapping, w *Worker) (c nest.Cost, pv any) {
	defer func() {
		if r := recover(); r != nil {
			pv = r
		}
	}()
	if e.evalHook != nil {
		return e.evalHook(m), nil
	}
	if w != nil {
		return e.ev.Plan().EvaluateMappingInto(m, w.scratch), nil
	}
	return e.ev.Evaluate(m), nil
}

// evalGuarded is the panic-isolated model call behind Evaluate and the
// Worker paths. A panicking evaluation is recorded in the metrics, the
// worker's scratch (possibly left mid-write by the unwound evaluation) is
// rebuilt, and the call is retried with exponential backoff; after
// panicRetries failed retries the mapping degrades to an invalid Cost with a
// PanicReason so one poisoned mapping cannot take down a whole search or a
// server worker.
func (e *Engine) evalGuarded(m *mapping.Mapping, w *Worker) nest.Cost {
	for attempt := 0; ; attempt++ {
		c, pv := e.tryEvaluate(m, w)
		if pv == nil {
			return c
		}
		e.metrics.Panic()
		if w != nil {
			w.scratch = e.ev.Plan().NewScratch()
		}
		if attempt >= panicRetries {
			return nest.Cost{Valid: false, Reason: fmt.Sprintf("%s: %v", PanicReason, pv)}
		}
		time.Sleep(time.Millisecond << attempt)
	}
}
