package engine

import (
	"sort"
	"sync"
	"time"

	"ruby/internal/obs"
)

// Instruments is the full-fidelity Metrics implementation: the atomic
// Counters plus fixed-bucket histograms for the distributions the counters
// collapse — sampled evaluation latency, batch latency, per-search wall time
// and per-search best objective value — and an optional slow-event logger.
// All parts are individually exported so callers can register them with an
// obs.Registry (see Register) or read snapshots directly.
type Instruments struct {
	// Counters is the counting core (never nil from NewInstruments).
	Counters *Counters
	// EvalHist records sampled model-evaluation latency in seconds.
	EvalHist *obs.Histogram
	// BatchHist records EvaluateBatch wall time in seconds.
	BatchHist *obs.Histogram
	// SearchHist records per-search wall time in seconds.
	SearchHist *obs.Histogram
	// ObjectiveHist records each completed search's best objective value.
	ObjectiveHist *obs.Histogram
	// Slow optionally warns about slow evaluations and searches; nil
	// disables slow-event logging.
	Slow *obs.SlowLog

	// winsMu guards wins, the per-member portfolio win counts. A win is
	// recorded once per completed portfolio search, so a mutex (not an
	// atomic) is fine here.
	//ruby:guards wins
	winsMu sync.Mutex
	wins   map[string]int64
}

// NewInstruments builds instruments with the default bucket layouts.
func NewInstruments() *Instruments {
	return &Instruments{
		Counters: &Counters{},
		EvalHist: obs.NewHistogram("ruby_eval_latency_seconds",
			"Model evaluation latency (sampled; see engine.Config.LatencySampleEvery).",
			obs.LatencyBuckets()),
		BatchHist: obs.NewHistogram("ruby_batch_latency_seconds",
			"EvaluateBatch wall time.", obs.LatencyBuckets()),
		SearchHist: obs.NewHistogram("ruby_search_wall_seconds",
			"Per-search wall time.", obs.LatencyBuckets()),
		ObjectiveHist: obs.NewHistogram("ruby_search_best_edp",
			"Best objective value (EDP by default) per completed search.",
			obs.EDPBuckets()),
	}
}

// Evaluation implements Metrics.
func (in *Instruments) Evaluation(valid, cached bool) { in.Counters.Evaluation(valid, cached) }

// EvalLatency implements Metrics.
//
//ruby:hotpath
func (in *Instruments) EvalLatency(d time.Duration) {
	in.EvalHist.ObserveDuration(d)
	in.Slow.Eval(d)
}

// BatchLatency implements Metrics.
func (in *Instruments) BatchLatency(d time.Duration, _ int) { in.BatchHist.ObserveDuration(d) }

// Improvement implements Metrics.
func (in *Instruments) Improvement(evals int64, value float64) {
	in.Counters.Improvement(evals, value)
}

// BestObjective implements Metrics.
func (in *Instruments) BestObjective(v float64) { in.ObjectiveHist.Observe(v) }

// SearchDone implements Metrics.
func (in *Instruments) SearchDone(wall time.Duration, evaluated, valid int64) {
	in.Counters.SearchDone(wall, evaluated, valid)
	in.SearchHist.ObserveDuration(wall)
	in.Slow.Search(wall, evaluated, valid)
}

// Panic implements Metrics.
func (in *Instruments) Panic() { in.Counters.Panic() }

// GuidedMove implements GuidedMetrics.
//
//ruby:hotpath
func (in *Instruments) GuidedMove() { in.Counters.GuidedMove() }

// GuidedRestart implements GuidedMetrics.
func (in *Instruments) GuidedRestart() { in.Counters.GuidedRestart() }

// PortfolioWin implements PortfolioMetrics: member produced the incumbent
// of one completed portfolio search.
func (in *Instruments) PortfolioWin(member string) {
	in.winsMu.Lock()
	if in.wins == nil {
		in.wins = make(map[string]int64)
	}
	in.wins[member]++
	in.winsMu.Unlock()
}

// PortfolioWins returns a copy of the per-member win counts.
func (in *Instruments) PortfolioWins() map[string]int64 {
	in.winsMu.Lock()
	defer in.winsMu.Unlock()
	out := make(map[string]int64, len(in.wins))
	for k, v := range in.wins {
		out[k] = v
	}
	return out
}

// portfolioWinSamples renders the win counts as sorted label samples for
// the ruby_portfolio_wins series.
func (in *Instruments) portfolioWinSamples() []obs.Sample {
	in.winsMu.Lock()
	defer in.winsMu.Unlock()
	names := make([]string, 0, len(in.wins))
	for k := range in.wins {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]obs.Sample, len(names))
	for i, k := range names {
		out[i] = obs.Sample{LabelValue: k, Value: float64(in.wins[k])}
	}
	return out
}

// Register adds every counter and histogram to reg under stable Prometheus
// names (ruby_evaluations_total, ruby_valid_total, ...), so one call wires a
// service's whole /v1/metrics exposition.
func (in *Instruments) Register(reg *obs.Registry) {
	c := in.Counters
	reg.Counter("ruby_evaluations_total", "Total mapping evaluations through the engine.",
		func() float64 { return float64(c.Snapshot().Evaluations) })
	reg.Counter("ruby_valid_total", "Evaluations with a valid verdict.",
		func() float64 { return float64(c.Snapshot().Valid) })
	reg.Counter("ruby_cache_hits_total", "Evaluations served from the memo cache.",
		func() float64 { return float64(c.Snapshot().CacheHits) })
	reg.Counter("ruby_improvements_total", "Incumbent-best improvement events.",
		func() float64 { return float64(c.Snapshot().Improvements) })
	reg.Counter("ruby_searches_total", "Completed searches.",
		func() float64 { return float64(c.Snapshot().Searches) })
	reg.Counter("ruby_search_seconds_total", "Summed search wall time in seconds.",
		func() float64 { return c.Snapshot().SearchSeconds })
	reg.Counter("ruby_eval_panics_total", "Recovered model-evaluation panics (incl. retries).",
		func() float64 { return float64(c.Snapshot().Panics) })
	reg.Counter("ruby_guided_moves", "Committed moves of the model-guided searcher.",
		func() float64 { return float64(c.Snapshot().GuidedMoves) })
	reg.Counter("ruby_guided_restarts", "Perturbation restarts of the model-guided searcher.",
		func() float64 { return float64(c.Snapshot().GuidedRestarts) })
	reg.GaugeVec("ruby_portfolio_wins", "Portfolio searches won, by member searcher.",
		"searcher", in.portfolioWinSamples)
	reg.Histogram(in.EvalHist)
	reg.Histogram(in.BatchHist)
	reg.Histogram(in.SearchHist)
	reg.Histogram(in.ObjectiveHist)
}
