package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workloads"
)

// TestWorkerMatchesEngine pins Worker.Evaluate/EvaluateShared to
// Engine.Evaluate, with and without a cache, and checks the aliasing
// contract: shared results are overwritten by the next evaluation, cloned
// ones are not.
func TestWorkerMatchesEngine(t *testing.T) {
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))

	for _, cacheEntries := range []int{0, 1 << 10} {
		eng := Config{CacheEntries: cacheEntries}.New(ev)
		ref := Config{CacheEntries: cacheEntries}.New(ev)
		wk := eng.NewWorker()
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 300; i++ {
			m := sp.Sample(rng)
			got := wk.Evaluate(m)
			want := ref.Evaluate(m)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cache=%d mapping %d: worker %+v\nengine %+v", cacheEntries, i, got, want)
			}
		}
	}
}

// TestWorkerSharedAliasing demonstrates why EvaluateShared results must be
// cloned before being retained: the next evaluation on the same worker
// rewrites the per-level slices in place.
func TestWorkerSharedAliasing(t *testing.T) {
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	eng := New(ev) // no cache: shared results are scratch-backed
	wk := eng.NewWorker()

	rng := rand.New(rand.NewSource(8))
	var m1, m2 *mapping.Mapping
	for m1 == nil || m2 == nil {
		m := sp.Sample(rng)
		if c := eng.Evaluate(m); c.Valid {
			if m1 == nil {
				m1 = m
			} else if eng.Evaluate(m).EDP != eng.Evaluate(m1).EDP {
				m2 = m
			}
		}
	}

	shared := wk.EvaluateShared(m1)
	kept := shared.Clone()
	if !reflect.DeepEqual(shared, kept) {
		t.Fatal("clone differs from original")
	}
	wk.EvaluateShared(m2)
	if &shared.LevelReads[0] == &kept.LevelReads[0] {
		t.Fatal("Clone did not detach the slices")
	}
	if !reflect.DeepEqual(kept, wk.Evaluate(m1)) {
		t.Fatal("cloned cost changed after later evaluations")
	}
}

// TestWorkerConcurrent runs many workers over one engine+cache — meaningful
// under -race.
func TestWorkerConcurrent(t *testing.T) {
	layer := workloads.ResNet50()[3]
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(layer.Work, a)
	sp := mapspace.New(layer.Work, a, mapspace.RubyS, mapspace.EyerissRowStationary(layer.Work))
	eng := Config{CacheEntries: 256}.New(ev)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			wk := eng.NewWorker()
			smp := sp.NewSampler()
			m := &mapping.Mapping{}
			for i := 0; i < 200; i++ {
				smp.SampleInto(rng, m)
				c := wk.EvaluateShared(m)
				if c.Valid && c.EDP <= 0 {
					t.Errorf("valid cost with nonpositive EDP")
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
