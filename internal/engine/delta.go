package engine

import (
	"ruby/internal/mapping"
	"ruby/internal/nest"
)

// Delta is the engine-level handle for incremental evaluation: one
// nest.DeltaEval session plus the engine's instrumentation. Local searchers
// (hill climbing, annealing) seed it with their current mapping, then
// evaluate Move proposals at delta cost instead of re-running the full
// kernel per neighbor. One Delta per goroutine; the Engine stays shared.
//
// The delta path deliberately bypasses two engine layers that make no sense
// for it: the memo cache (a local search revisits a neighborhood, not exact
// duplicates, and the delta kernel is cheaper than a cache probe plus key
// computation) and the panic guard (the kernel operates on an already
// validated lowering; a panic there is a programming error the differential
// tests exist to catch). Evaluation counts still flow to Metrics, so search
// telemetry is comparable across the full and incremental paths.
type Delta struct {
	e  *Engine
	de *nest.DeltaEval
}

// NewDelta builds an incremental-evaluation session bound to the engine.
func (e *Engine) NewDelta() *Delta {
	return &Delta{e: e, de: e.ev.Plan().NewDeltaEval()}
}

// Seed lowers m and fully evaluates it, making it the session's base
// mapping. The seed evaluation is not reported to Metrics (searchers seed
// from an already-counted best, so counting it again would skew
// evaluations-per-improvement telemetry). The returned Cost's per-level
// slices alias the session scratch; retain with Clone.
func (d *Delta) Seed(m *mapping.Mapping) nest.Cost {
	ev := d.e.ev
	dm, err := m.Dense(ev.Work, ev.Arch, ev.Slots)
	if err != nil {
		return nest.Cost{Valid: false, Reason: err.Error()}
	}
	return d.de.Seed(dm)
}

// Evaluate scores the open Move proposal described by dl (already applied
// to the seeded mapping) and reports it to Metrics as an uncached
// evaluation. Commit or Reject must follow before the next proposal. The
// returned Cost's per-level slices alias the session scratch.
//
//ruby:hotpath
func (d *Delta) Evaluate(dl mapping.Delta) nest.Cost {
	c := d.e.ev.Plan().EvaluateDelta(d.de, dl)
	d.e.metrics.Evaluation(c.Valid, false)
	return c
}

// NewBreakdown allocates a cost-attribution buffer sized for the engine's
// plan, for use with Attribute.
func (d *Delta) NewBreakdown() *nest.Breakdown {
	return d.e.ev.Plan().NewBreakdown()
}

// Attribute fills b with the cost attribution of the session's committed
// state (see nest.Plan.Attribute). Allocation-free; requires a valid seed
// and no open proposal.
//
//ruby:hotpath
func (d *Delta) Attribute(b *nest.Breakdown) { d.de.Attribute(b) }

// Commit keeps the open proposal (the caller leaves the Move applied).
//
//ruby:hotpath
func (d *Delta) Commit() { d.de.Commit() }

// Reject discards the open proposal (the caller must also Undo the Move).
//
//ruby:hotpath
func (d *Delta) Reject() { d.de.Reject() }
