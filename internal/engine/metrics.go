package engine

import (
	"expvar"
	"sync/atomic"
	"time"
)

// Metrics receives evaluation-pipeline events. Implementations must be safe
// for concurrent use: every search worker calls Evaluation on the hot path.
// Counters implements the counting subset; Instruments adds the
// distribution events (latency, best objective) on obs histograms.
type Metrics interface {
	// Evaluation is called once per Engine.Evaluate: valid is the model's
	// verdict, cached reports whether the cost came from the memo cache.
	Evaluation(valid, cached bool)
	// EvalLatency reports the wall time of one model evaluation. The engine
	// samples (Config.LatencySampleEvery), so it is called for a subset of
	// the uncached evaluations; implementations must stay cheap and
	// allocation-free — it runs on the search hot path.
	EvalLatency(d time.Duration)
	// BatchLatency reports the wall time of one EvaluateBatch call of n
	// mappings (called once per batch, not per evaluation).
	BatchLatency(d time.Duration, n int)
	// Improvement is called when a search's incumbent best improves, with
	// the evaluation ordinal and the new objective value.
	Improvement(evals int64, value float64)
	// BestObjective is called once per completed search that found a valid
	// mapping, with the final best objective value (EDP under the default
	// objective).
	BestObjective(v float64)
	// SearchDone is called once per completed search with its wall time and
	// final counters.
	SearchDone(wall time.Duration, evaluated, valid int64)
	// Panic is called each time a model evaluation panics and is recovered
	// by the engine's isolation guard (including each failed retry).
	Panic()
}

// GuidedMetrics is the optional Metrics extension for the model-guided
// searcher's counters. Implementations that also satisfy Metrics receive
// one GuidedMove per committed greedy move and one GuidedRestart per
// perturbation restart. search.Guided discovers it by type assertion on
// Engine.Metrics(), so plain Metrics implementations keep working
// unchanged.
type GuidedMetrics interface {
	GuidedMove()
	GuidedRestart()
}

// PortfolioMetrics is the optional Metrics extension recording which member
// searcher of a search.Portfolio produced the final incumbent. The member
// is the searcher's stable name ("random", "genetic", "anneal",
// "hillclimb", "guided").
type PortfolioMetrics interface {
	PortfolioWin(member string)
}

// NopMetrics discards all events; it is the default hook.
var NopMetrics Metrics = nopMetrics{}

type nopMetrics struct{}

func (nopMetrics) Evaluation(bool, bool)                  {}
func (nopMetrics) EvalLatency(time.Duration)              {}
func (nopMetrics) BatchLatency(time.Duration, int)        {}
func (nopMetrics) Improvement(int64, float64)             {}
func (nopMetrics) BestObjective(float64)                  {}
func (nopMetrics) SearchDone(time.Duration, int64, int64) {}
func (nopMetrics) Panic()                                 {}

// Counters is the default Metrics implementation: lock-free atomic counters
// cheap enough for the evaluation hot path, with a JSON-friendly Snapshot
// and optional expvar export. The atomics analyzer (tools/rubylint) rejects
// any access to these fields that bypasses sync/atomic.
//
//ruby:atomic
type Counters struct {
	evaluations    atomic.Int64
	valid          atomic.Int64
	cacheHits      atomic.Int64
	improvements   atomic.Int64
	searches       atomic.Int64
	wallNanos      atomic.Int64
	panics         atomic.Int64
	guidedMoves    atomic.Int64
	guidedRestarts atomic.Int64
}

// Evaluation implements Metrics.
func (c *Counters) Evaluation(valid, cached bool) {
	c.evaluations.Add(1)
	if valid {
		c.valid.Add(1)
	}
	if cached {
		c.cacheHits.Add(1)
	}
}

// EvalLatency implements Metrics. Counters only counts; the latency
// distribution lives in Instruments' histograms.
func (c *Counters) EvalLatency(time.Duration) {}

// BatchLatency implements Metrics (a no-op; see Instruments).
func (c *Counters) BatchLatency(time.Duration, int) {}

// Improvement implements Metrics.
func (c *Counters) Improvement(int64, float64) { c.improvements.Add(1) }

// BestObjective implements Metrics (a no-op; see Instruments).
func (c *Counters) BestObjective(float64) {}

// SearchDone implements Metrics.
func (c *Counters) SearchDone(wall time.Duration, _, _ int64) {
	c.searches.Add(1)
	c.wallNanos.Add(int64(wall))
}

// Panic implements Metrics.
func (c *Counters) Panic() { c.panics.Add(1) }

// GuidedMove implements GuidedMetrics: one committed greedy move.
//
//ruby:hotpath
func (c *Counters) GuidedMove() { c.guidedMoves.Add(1) }

// GuidedRestart implements GuidedMetrics: one perturbation restart.
func (c *Counters) GuidedRestart() { c.guidedRestarts.Add(1) }

// Snapshot is a point-in-time copy of the counters with derived rates.
type Snapshot struct {
	Evaluations   int64   `json:"evaluations"`    // total Evaluate calls
	Valid         int64   `json:"valid"`          // evaluations with a valid verdict
	ValidRate     float64 `json:"valid_rate"`     // Valid / Evaluations
	CacheHits     int64   `json:"cache_hits"`     // evaluations served from the memo cache
	CacheHitRate  float64 `json:"cache_hit_rate"` // CacheHits / Evaluations
	Improvements  int64   `json:"improvements"`   // incumbent-best improvements
	Searches      int64   `json:"searches"`       // completed searches
	SearchSeconds float64 `json:"search_seconds"` // summed search wall time
	Panics        int64   `json:"panics"`         // recovered evaluation panics (incl. retries)
	// GuidedMoves/GuidedRestarts count the model-guided searcher's
	// committed moves and perturbation restarts (zero unless Guided ran).
	GuidedMoves    int64 `json:"guided_moves"`
	GuidedRestarts int64 `json:"guided_restarts"`
}

// Snapshot reads the counters. The reads are individually atomic (not a
// consistent cut), which is fine for monitoring.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Evaluations:    c.evaluations.Load(),
		Valid:          c.valid.Load(),
		CacheHits:      c.cacheHits.Load(),
		Improvements:   c.improvements.Load(),
		Searches:       c.searches.Load(),
		SearchSeconds:  float64(c.wallNanos.Load()) / 1e9,
		Panics:         c.panics.Load(),
		GuidedMoves:    c.guidedMoves.Load(),
		GuidedRestarts: c.guidedRestarts.Load(),
	}
	if s.Evaluations > 0 {
		s.ValidRate = float64(s.Valid) / float64(s.Evaluations)
		s.CacheHitRate = float64(s.CacheHits) / float64(s.Evaluations)
	}
	return s
}

// Publish registers the counters under name in the process-wide expvar
// registry (visible at /debug/vars when expvar's handler is mounted). It is
// a no-op when the name is already taken, so repeated construction in tests
// cannot panic.
func (c *Counters) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return c.Snapshot() }))
}
