// Network-level search: the network-graph entry point over RunSuiteLayers,
// plus fusion-aware segment search. A fused segment pins a producer layer's
// tiling to its consumer's input-tile boundaries (mapspace.FuseTileOf) so the
// intermediate tensor stays at the shared on-chip level and its DRAM
// round-trip is elided (nest.FusedEvaluator). Segments are searched per edge,
// then selected greedily without sharing nodes, so each layer participates in
// at most one fused pair.
package sweep

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/obs"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// FuseLevel is the memory level fused intermediates live at: the first
// on-chip level above DRAM (the global buffer in the Eyeriss- and Simba-like
// hierarchies).
const FuseLevel = 1

// RunSuite searches every node of a network graph per-layer and aggregates
// repeat-weighted totals — the network-graph entry point over RunSuiteLayers.
// Edges are ignored here: an edge-free graph and a connected one produce the
// same per-layer totals, so []Layer callers migrate by wrapping their suite
// with workloads.NetworkFromLayers. Fusion across edges is SearchNetwork's
// job.
func RunSuite(ctx context.Context, net *workload.Network, a *arch.Arch, st Strategy,
	consFn ConstraintFn, so SuiteOptions) (*SuiteResult, error) {

	return RunSuiteLayers(ctx, workloads.LayersOf(net), a, st, consFn, so)
}

// SegmentResult is one fused producer→consumer pair selected by
// SearchNetwork: the edge, the mappings the fused evaluation won with, and
// the per-repeat baseline it beats.
type SegmentResult struct {
	// From, To name the producer and consumer nodes; EdgeIndex is the edge's
	// position in the network.
	From, To  string
	EdgeIndex int
	// Repeat is the fused repeat count: min of the two nodes' repeats. Any
	// leftover repeats of either node stay at their per-layer baseline.
	Repeat int
	// Fused is the winning fused evaluation (combined cycles, energy, EDP and
	// the DRAM words elided).
	Fused nest.FusedCost
	// Producer and Consumer are the winning mappings. Consumer usually is the
	// per-layer baseline winner but may differ when a fusion-friendlier
	// consumer tiling wins overall.
	Producer, Consumer *mapping.Mapping
	// BaselineEnergyPJ and BaselineCycles are the pair's per-repeat per-layer
	// baseline, the yardstick the fused result strictly beats.
	BaselineEnergyPJ float64
	BaselineCycles   float64
	// Evaluated counts the fused pair evaluations this segment's search
	// performed (0 when restored from a checkpoint).
	Evaluated int64
}

// GainPJ returns the repeat-weighted energy the fusion saves over the
// per-layer baseline (negative when the segment trades energy for cycles).
func (sr *SegmentResult) GainPJ() float64 {
	return float64(sr.Repeat) * (sr.BaselineEnergyPJ - sr.Fused.EnergyPJ)
}

// gainEDP is the repeat-weighted pair-EDP improvement the greedy selection
// orders candidates by.
func (sr *SegmentResult) gainEDP() float64 {
	return float64(sr.Repeat) * (sr.BaselineEnergyPJ*sr.BaselineCycles - sr.Fused.EDP)
}

// NetworkResult is the outcome of a network search: the per-layer baseline,
// the fused segments selected (empty when fusion is off or never wins), and
// the network totals with those segments applied.
type NetworkResult struct {
	Network  *workload.Network
	Strategy Strategy
	Arch     *arch.Arch

	// Baseline is the per-layer suite result every node starts from.
	Baseline *SuiteResult
	// Segments are the selected fused pairs, in selection (descending-gain)
	// order.
	Segments []SegmentResult

	// Repeat-weighted network totals with the fused segments applied; equal
	// to the baseline totals when Segments is empty. EDP is TotalEnergy x
	// TotalCycles, the same whole-network product the per-layer suites
	// report.
	TotalEnergyPJ float64
	TotalCycles   float64
	EDP           float64
}

// SearchNetwork searches a network on one architecture under one strategy:
// a per-layer baseline over every node, then — when fuse is set — a fused
// search per edge in the producer mapspace constrained to the consumer's
// tile boundaries, keeping segments whose fused pair EDP strictly beats the
// pair's per-layer baseline, selected greedily so no node fuses twice and
// every kept segment strictly lowers the network EDP. The returned totals
// therefore never exceed the baseline's, and improve strictly whenever any
// segment is kept. Segment searches are seeded from so.Search.Seed and the
// edge's names, so runs are reproducible, and so.Checkpoint (when set)
// persists both the baseline layers and the per-edge segment outcomes.
func SearchNetwork(ctx context.Context, net *workload.Network, a *arch.Arch, st Strategy,
	consFn ConstraintFn, so SuiteOptions, fuse bool) (*NetworkResult, error) {

	ctx, span := obs.StartSpan(ctx, "network:"+net.Name)
	defer span.End()
	so = so.withDefaults()
	base, err := RunSuiteLayers(ctx, workloads.LayersOf(net), a, st, consFn, so)
	if err != nil {
		return nil, err
	}
	out := &NetworkResult{
		Network: net, Strategy: st, Arch: a, Baseline: base,
		TotalEnergyPJ: base.TotalEnergyPJ, TotalCycles: base.TotalCycles, EDP: base.EDP,
	}
	if !fuse || len(net.Edges) == 0 {
		return out, nil
	}
	binds, err := net.Bindings()
	if err != nil {
		return nil, fmt.Errorf("sweep: network %s: %w", net.Name, err)
	}
	byName := make(map[string]LayerResult, len(base.Layers))
	for _, lr := range base.Layers {
		byName[lr.Layer.Name] = lr
	}

	var candidates []SegmentResult
	for _, b := range binds {
		if ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("sweep: network %s: %w", net.Name, ctx.Err())
		}
		sr, ok, err := searchSegmentCached(ctx, b, a, st, consFn, so,
			byName[b.Prod.Name], byName[b.Cons.Name])
		if err != nil {
			return nil, err
		}
		if ok {
			candidates = append(candidates, sr)
		}
	}

	// Greedy non-overlapping selection by descending pair-EDP gain (ties by
	// edge order, keeping the run deterministic). A candidate may trade
	// energy against cycles, and network EDP is a product of sums, so each
	// is applied to the running totals and kept only when the network EDP
	// strictly drops.
	sort.SliceStable(candidates, func(i, j int) bool {
		return candidates[i].gainEDP() > candidates[j].gainEDP()
	})
	used := make(map[string]bool)
	for _, c := range candidates {
		if used[c.From] || used[c.To] {
			continue
		}
		r := float64(c.Repeat)
		e := out.TotalEnergyPJ + r*(c.Fused.EnergyPJ-c.BaselineEnergyPJ)
		cy := out.TotalCycles + r*(c.Fused.Cycles-c.BaselineCycles)
		if e*cy >= out.EDP {
			continue
		}
		used[c.From], used[c.To] = true, true
		out.Segments = append(out.Segments, c)
		out.TotalEnergyPJ, out.TotalCycles, out.EDP = e, cy, e*cy
	}
	return out, nil
}

// searchSegmentCached resumes a recorded segment outcome when the checkpoint
// has one for this exact search configuration, otherwise searches and records
// it. Negative outcomes (no fused pair beat the baseline) are recorded too,
// so resumed runs skip hopeless edges instead of re-searching them.
func searchSegmentCached(ctx context.Context, b workload.EdgeBinding, a *arch.Arch, st Strategy,
	consFn ConstraintFn, so SuiteOptions, bp, bc LayerResult) (SegmentResult, bool, error) {

	ctx, span := obs.StartSpan(ctx, "segment:"+b.Prod.Name+"->"+b.Cons.Name)
	defer span.End()
	if bp.Search == nil || bc.Search == nil {
		return SegmentResult{}, false, nil
	}
	if so.Checkpoint != nil {
		if sr, fused, ok := so.Checkpoint.resumeSegment(b, a, st, so.Search, bp, bc); ok {
			return sr, fused, nil
		}
	}
	sr, ok, err := searchSegment(ctx, b, a, st, consFn, so, bp, bc)
	if err != nil {
		return sr, ok, err
	}
	if so.Checkpoint != nil {
		if err := so.Checkpoint.recordSegment(b, a, st, so.Search, sr, ok); err != nil {
			return sr, ok, err
		}
	}
	return sr, ok, nil
}

// segmentConsumers is how many shortlisted consumer tilings a segment search
// spends producer budget on: the baseline winner (when fusable) plus the
// best fusable consumers found by sampling.
const segmentConsumers = 4

// searchSegment searches one edge for a fused pair strictly better than the
// two layers' per-layer baseline. The unconstrained per-layer winner's
// tiling is rarely fusable (fusion needs the intermediate resident at the
// shared level and a single-fetch consumer), so the search is staged:
//
//  1. shortlist fusable consumer tilings — the baseline winner plus sampled
//     candidates passing nest's consumer-side preconditions, ranked by
//     per-layer EDP;
//  2. per candidate, derive the producer's fused-tile constraint
//     (mapspace.FuseTileOf), sample producers inside the constrained
//     mapspace until the fused evaluation is valid, then hill-climb the
//     producer with the fused mapspace's mutator on the fused pair EDP.
//
// A candidate is returned only when the winning fused evaluation's pair EDP
// is strictly below the baseline pair's; SearchNetwork's selection then
// verifies each candidate against the actual network totals.
func searchSegment(ctx context.Context, b workload.EdgeBinding, a *arch.Arch, st Strategy,
	consFn ConstraintFn, so SuiteOptions, bp, bc LayerResult) (SegmentResult, bool, error) {

	fe, err := nest.NewFusedEvaluator(b, a, FuseLevel)
	if err != nil {
		return SegmentResult{}, false, nil // hierarchy cannot host the fusion
	}
	baseE := bp.Cost.EnergyPJ + bc.Cost.EnergyPJ
	baseC := bp.Cost.Cycles + bc.Cost.Cycles
	budget := so.Search.MaxEvaluations
	if budget <= 0 {
		budget = 2000
	}
	rng := rand.New(rand.NewSource(segmentSeed(so.Search.Seed, a, b)))
	csp := mapspace.New(b.Cons.Work, a, st.Kind, consFn(b.Cons.Work))

	sr := SegmentResult{
		From: b.Prod.Name, To: b.Cons.Name, EdgeIndex: b.EdgeIndex,
		Repeat:           minInt(b.Prod.Repeats(), b.Cons.Repeats()),
		BaselineEnergyPJ: baseE, BaselineCycles: baseC,
	}

	// Stage 1: shortlist fusable consumers, best per-layer EDP first.
	type consumer struct {
		m   *mapping.Mapping
		edp float64
	}
	var cands []consumer
	add := func(m *mapping.Mapping) {
		c, ok := fe.ConsumerFusable(m)
		sr.Evaluated++
		if !ok {
			return
		}
		for i := range cands {
			if c.EDP < cands[i].edp {
				cands = append(cands[:i], append([]consumer{{m, c.EDP}}, cands[i:]...)...)
				if len(cands) > segmentConsumers {
					cands = cands[:segmentConsumers]
				}
				return
			}
		}
		if len(cands) < segmentConsumers {
			cands = append(cands, consumer{m, c.EDP})
		}
	}
	if bc.Workload == b.Cons.Work { // the winner, unless a padded variant won
		add(bc.Search.Best)
	}
	for i := int64(0); i < budget/4; i++ {
		add(csp.Sample(rng))
	}
	// Random fusable samples are usually far off the per-layer winner, so
	// hill-climb each shortlisted consumer within the fusable region.
	cmu := csp.NewMutator()
	if len(cands) > 0 {
		steps := budget / 4 / int64(len(cands))
		for i := range cands {
			for j := int64(0); j < steps; j++ {
				m := cands[i].m.Clone()
				cmu.Propose(rng).Apply(m)
				c, ok := fe.ConsumerFusable(m)
				sr.Evaluated++
				if ok && c.EDP < cands[i].edp {
					cands[i] = consumer{m, c.EDP}
				}
			}
		}
	}

	// Stage 2: constrained producer search per shortlisted consumer.
	found := false
	perCons := budget / 2 / int64(segmentConsumers)
	if perCons < 1 {
		perCons = 1
	}
	for _, cand := range cands {
		if ctx != nil && ctx.Err() != nil {
			return SegmentResult{}, false, fmt.Errorf("sweep: segment %s->%s: %w", b.Prod.Name, b.Cons.Name, ctx.Err())
		}
		cm := cand.m
		ft, err := mapspace.FuseTileOf(b, a, cm, FuseLevel)
		if err != nil {
			continue
		}
		pcons := consFn(b.Prod.Work)
		pcons.FuseTile, pcons.FuseLevel = ft, FuseLevel
		psp := mapspace.New(b.Prod.Work, a, st.Kind, pcons)
		mu := psp.NewMutator()

		var best *mapping.Mapping
		var bestFC nest.FusedCost
		for j := int64(0); j < perCons; j++ {
			var pm *mapping.Mapping
			if best == nil {
				pm = psp.Sample(rng)
			} else {
				pm = best.Clone()
				mu.Propose(rng).Apply(pm)
			}
			sr.Evaluated++
			fc := fe.Evaluate(pm, cm)
			if !fc.Valid {
				continue
			}
			if best == nil || fc.EDP < bestFC.EDP {
				best, bestFC = pm, fc
			}
		}
		if best == nil || bestFC.EDP >= baseE*baseC {
			continue
		}
		if !found || bestFC.EDP < sr.Fused.EDP {
			found = true
			sr.Fused, sr.Producer, sr.Consumer = bestFC, best, cm
		}
	}
	return sr, found, nil
}

// segmentSeed derives a deterministic per-edge RNG seed from the search seed
// and the segment's identity, so segment searches are reproducible and
// independent of edge order.
func segmentSeed(seed int64, a *arch.Arch, b workload.EdgeBinding) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s->%s", a.Name, b.Prod.Name, b.Cons.Name)
	return seed ^ int64(h.Sum64())
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
