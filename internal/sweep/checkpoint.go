package sweep

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"ruby/internal/arch"
	"ruby/internal/checkpoint"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// SuiteCheckpoint persists per-layer suite progress to one crash-safe file,
// so an interrupted suite run (or experiment spanning many suites) resumes
// by skipping completed layers instead of re-searching them. Keys include
// the architecture, strategy, search seed and budget, so one file safely
// backs a whole experiment's worth of suite runs. It is safe for concurrent
// use by the parallel layer workers of RunSuite.
//
// Restored layers are verified: the recorded mapping is decoded against the
// (possibly padded, via the recorded bounds) workload variant and
// re-evaluated, and a mismatch with the recorded cost falls back to a fresh
// search rather than silently trusting a stale file.
type SuiteCheckpoint struct {
	path string
	//ruby:guards st
	mu sync.Mutex
	st checkpoint.SuiteState
}

// OpenSuiteCheckpoint loads the suite checkpoint at path, or starts a fresh
// one when the file does not exist yet.
func OpenSuiteCheckpoint(path string) (*SuiteCheckpoint, error) {
	sc := &SuiteCheckpoint{path: path}
	err := checkpoint.Load(path, checkpoint.KindSuite, &sc.st)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	if sc.st.Layers == nil {
		sc.st.Layers = make(map[string]*checkpoint.LayerState)
	}
	return sc, nil
}

// Path returns the backing file.
func (sc *SuiteCheckpoint) Path() string { return sc.path }

// Len returns the number of completed layer entries.
func (sc *SuiteCheckpoint) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.st.Layers)
}

// layerKey identifies one layer search: everything that changes its outcome
// goes into the key, so resuming with a different budget, seed or strategy
// re-searches instead of reusing stale results.
func layerKey(a *arch.Arch, st Strategy, opt search.Options, l workloads.Layer) string {
	// The algorithm component appears only when one is selected, so suite
	// checkpoints written before algorithm dispatch existed keep resuming.
	algo := ""
	if opt.Algo != "" {
		algo = "|algo=" + opt.Algo
	}
	return fmt.Sprintf("%s|%s|seed=%d|max=%d|noimp=%d|obj=%d%s|%s",
		a.Name, st.Name, opt.Seed, opt.MaxEvaluations, opt.ConsecutiveNoImprove, opt.Objective, algo, l.Name)
}

// resume returns the recorded result for one layer search if present and
// verifiable.
func (sc *SuiteCheckpoint) resume(l workloads.Layer, a *arch.Arch, st Strategy,
	consFn ConstraintFn, opt search.Options) (LayerResult, bool) {

	key := layerKey(a, st, opt, l)
	sc.mu.Lock()
	ls := sc.st.Layers[key]
	sc.mu.Unlock()
	if ls == nil || !ls.Done || len(ls.Mapping) == 0 || ls.Cost == nil {
		return LayerResult{}, false
	}

	w := sc.findVariant(l, a, st, consFn, ls.PadBounds)
	if w == nil {
		return LayerResult{}, false
	}
	m, err := mapping.Decode(ls.Mapping, w, mapping.Slots(a))
	if err != nil {
		return LayerResult{}, false
	}
	ev, err := nest.NewEvaluator(w, a)
	if err != nil {
		return LayerResult{}, false
	}
	c := ev.Evaluate(m)
	// The model is deterministic, so a checkpoint that matches the current
	// code reproduces the cost bit-for-bit; anything else is stale.
	if !c.Valid || c.EDP != ls.Cost.EDP || c.Cycles != ls.Cost.Cycles || c.EnergyPJ != ls.Cost.EnergyPJ {
		return LayerResult{}, false
	}
	return LayerResult{
		Layer: l, Cost: c, Workload: w,
		Search: &search.Result{Best: m, BestCost: c, Evaluated: ls.Evaluated, Valid: ls.Valid},
	}, true
}

// findVariant reconstructs the workload variant the recorded mapping was
// searched on: the layer's own workload when no padded bounds were recorded,
// otherwise the padded variant with exactly those bounds.
func (sc *SuiteCheckpoint) findVariant(l workloads.Layer, a *arch.Arch, st Strategy,
	consFn ConstraintFn, padBounds map[string]int) *workload.Workload {

	if len(padBounds) == 0 {
		return l.Work
	}
	if !st.Pad {
		return nil
	}
	fx, fy := arrayAxes(a)
	for _, w := range mapspace.PaddedVariants(l.Work, consFn(l.Work), fx, fy) {
		if boundsEqual(w, padBounds) {
			return w
		}
	}
	return nil
}

func boundsEqual(w *workload.Workload, bounds map[string]int) bool {
	dims := w.DimNames()
	if len(dims) != len(bounds) {
		return false
	}
	for _, d := range dims {
		if w.Bound(d) != bounds[d] {
			return false
		}
	}
	return true
}

// record stores one completed layer search and persists the file.
func (sc *SuiteCheckpoint) record(l workloads.Layer, a *arch.Arch, st Strategy,
	opt search.Options, lr LayerResult) error {

	raw, err := lr.Search.Best.Encode()
	if err != nil {
		return fmt.Errorf("sweep: checkpoint layer %s: %w", l.Name, err)
	}
	cost := lr.Cost.Clone()
	ls := &checkpoint.LayerState{
		Done: true, Mapping: raw, Cost: &cost,
		Evaluated: lr.Search.Evaluated, Valid: lr.Search.Valid,
	}
	if lr.Workload != l.Work {
		ls.PadBounds = make(map[string]int)
		for _, d := range lr.Workload.DimNames() {
			ls.PadBounds[d] = lr.Workload.Bound(d)
		}
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.st.Layers[layerKey(a, st, opt, l)] = ls
	return checkpoint.Save(sc.path, checkpoint.KindSuite, &sc.st)
}
