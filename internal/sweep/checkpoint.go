package sweep

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"ruby/internal/arch"
	"ruby/internal/checkpoint"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// SuiteCheckpoint persists per-layer suite progress to one crash-safe file,
// so an interrupted suite run (or experiment spanning many suites) resumes
// by skipping completed layers instead of re-searching them. Keys include
// the architecture, strategy, search seed and budget, so one file safely
// backs a whole experiment's worth of suite runs. It is safe for concurrent
// use by the parallel layer workers of RunSuite.
//
// Restored layers are verified: the recorded mapping is decoded against the
// (possibly padded, via the recorded bounds) workload variant and
// re-evaluated, and a mismatch with the recorded cost falls back to a fresh
// search rather than silently trusting a stale file.
type SuiteCheckpoint struct {
	path string
	//ruby:guards st
	mu sync.Mutex
	st checkpoint.SuiteState
}

// OpenSuiteCheckpoint loads the suite checkpoint at path, or starts a fresh
// one when the file does not exist yet.
func OpenSuiteCheckpoint(path string) (*SuiteCheckpoint, error) {
	sc := &SuiteCheckpoint{path: path}
	err := checkpoint.Load(path, checkpoint.KindSuite, &sc.st)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	if sc.st.Layers == nil {
		sc.st.Layers = make(map[string]*checkpoint.LayerState)
	}
	if sc.st.Segments == nil {
		sc.st.Segments = make(map[string]*checkpoint.SegmentState)
	}
	return sc, nil
}

// Path returns the backing file.
func (sc *SuiteCheckpoint) Path() string { return sc.path }

// Len returns the number of completed layer entries.
func (sc *SuiteCheckpoint) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.st.Layers)
}

// layerKey identifies one layer search: everything that changes its outcome
// goes into the key, so resuming with a different budget, seed or strategy
// re-searches instead of reusing stale results.
func layerKey(a *arch.Arch, st Strategy, opt search.Options, l workloads.Layer) string {
	// The algorithm component appears only when one is selected, so suite
	// checkpoints written before algorithm dispatch existed keep resuming.
	algo := ""
	if opt.Algo != "" {
		algo = "|algo=" + opt.Algo
	}
	return fmt.Sprintf("%s|%s|seed=%d|max=%d|noimp=%d|obj=%d%s|%s",
		a.Name, st.Name, opt.Seed, opt.MaxEvaluations, opt.ConsecutiveNoImprove, opt.Objective, algo, l.Name)
}

// resume returns the recorded result for one layer search if present and
// verifiable.
func (sc *SuiteCheckpoint) resume(l workloads.Layer, a *arch.Arch, st Strategy,
	consFn ConstraintFn, opt search.Options) (LayerResult, bool) {

	key := layerKey(a, st, opt, l)
	sc.mu.Lock()
	ls := sc.st.Layers[key]
	sc.mu.Unlock()
	if ls == nil || !ls.Done || len(ls.Mapping) == 0 || ls.Cost == nil {
		return LayerResult{}, false
	}

	w := sc.findVariant(l, a, st, consFn, ls.PadBounds)
	if w == nil {
		return LayerResult{}, false
	}
	m, err := mapping.Decode(ls.Mapping, w, mapping.Slots(a))
	if err != nil {
		return LayerResult{}, false
	}
	ev, err := nest.NewEvaluator(w, a)
	if err != nil {
		return LayerResult{}, false
	}
	c := ev.Evaluate(m)
	// The model is deterministic, so a checkpoint that matches the current
	// code reproduces the cost bit-for-bit; anything else is stale.
	if !c.Valid || c.EDP != ls.Cost.EDP || c.Cycles != ls.Cost.Cycles || c.EnergyPJ != ls.Cost.EnergyPJ {
		return LayerResult{}, false
	}
	return LayerResult{
		Layer: l, Cost: c, Workload: w,
		Search: &search.Result{Best: m, BestCost: c, Evaluated: ls.Evaluated, Valid: ls.Valid},
	}, true
}

// findVariant reconstructs the workload variant the recorded mapping was
// searched on: the layer's own workload when no padded bounds were recorded,
// otherwise the padded variant with exactly those bounds.
func (sc *SuiteCheckpoint) findVariant(l workloads.Layer, a *arch.Arch, st Strategy,
	consFn ConstraintFn, padBounds map[string]int) *workload.Workload {

	if len(padBounds) == 0 {
		return l.Work
	}
	if !st.Pad {
		return nil
	}
	fx, fy := arrayAxes(a)
	for _, w := range mapspace.PaddedVariants(l.Work, consFn(l.Work), fx, fy) {
		if boundsEqual(w, padBounds) {
			return w
		}
	}
	return nil
}

func boundsEqual(w *workload.Workload, bounds map[string]int) bool {
	dims := w.DimNames()
	if len(dims) != len(bounds) {
		return false
	}
	for _, d := range dims {
		if w.Bound(d) != bounds[d] {
			return false
		}
	}
	return true
}

// segmentKey identifies one fused-segment search: the layer-key prefix (the
// search configuration) plus the edge's producer->consumer pair.
func segmentKey(a *arch.Arch, st Strategy, opt search.Options, b workload.EdgeBinding) string {
	algo := ""
	if opt.Algo != "" {
		algo = "|algo=" + opt.Algo
	}
	return fmt.Sprintf("%s|%s|seed=%d|max=%d|noimp=%d|obj=%d%s|fuse=%s->%s",
		a.Name, st.Name, opt.Seed, opt.MaxEvaluations, opt.ConsecutiveNoImprove, opt.Objective, algo,
		b.Prod.Name, b.Cons.Name)
}

// resumeSegment returns the recorded fused-segment outcome for one edge if
// present and verifiable. The second result mirrors searchSegment's: whether
// a fused pair beating the baseline exists. Positive entries are re-evaluated
// and must reproduce the recorded metrics bit-for-bit (so a checkpoint
// written against a different cost model, or against different baseline
// layer mappings, falls back to a fresh search via the model's determinism).
func (sc *SuiteCheckpoint) resumeSegment(b workload.EdgeBinding, a *arch.Arch, st Strategy,
	opt search.Options, bp, bc LayerResult) (SegmentResult, bool, bool) {

	key := segmentKey(a, st, opt, b)
	sc.mu.Lock()
	ss := sc.st.Segments[key]
	sc.mu.Unlock()
	if ss == nil || !ss.Done {
		return SegmentResult{}, false, false
	}
	sr := SegmentResult{
		From: b.Prod.Name, To: b.Cons.Name, EdgeIndex: b.EdgeIndex,
		Repeat:           minInt(b.Prod.Repeats(), b.Cons.Repeats()),
		BaselineEnergyPJ: bp.Cost.EnergyPJ + bc.Cost.EnergyPJ,
		BaselineCycles:   bp.Cost.Cycles + bc.Cost.Cycles,
	}
	if !ss.Fused {
		return sr, false, true
	}
	slots := mapping.Slots(a)
	pm, err := mapping.Decode(ss.Producer, b.Prod.Work, slots)
	if err != nil {
		return SegmentResult{}, false, false
	}
	cm, err := mapping.Decode(ss.Consumer, b.Cons.Work, slots)
	if err != nil {
		return SegmentResult{}, false, false
	}
	fe, err := nest.NewFusedEvaluator(b, a, FuseLevel)
	if err != nil {
		return SegmentResult{}, false, false
	}
	fc := fe.Evaluate(pm, cm)
	if !fc.Valid || fc.EDP != ss.EDP || fc.Cycles != ss.Cycles ||
		fc.EnergyPJ != ss.EnergyPJ || fc.ElidedWords != ss.ElidedWords {
		return SegmentResult{}, false, false
	}
	// The recorded pair must still beat the current baseline: resuming
	// against improved layer results re-searches instead of keeping a
	// segment that no longer wins.
	if fc.EDP >= sr.BaselineEnergyPJ*sr.BaselineCycles {
		return SegmentResult{}, false, false
	}
	sr.Fused, sr.Producer, sr.Consumer = fc, pm, cm
	return sr, true, true
}

// recordSegment stores one completed fused-segment search (fused or not) and
// persists the file.
func (sc *SuiteCheckpoint) recordSegment(b workload.EdgeBinding, a *arch.Arch, st Strategy,
	opt search.Options, sr SegmentResult, fused bool) error {

	ss := &checkpoint.SegmentState{Done: true, Fused: fused, Evaluated: sr.Evaluated}
	if fused {
		var err error
		if ss.Producer, err = sr.Producer.Encode(); err != nil {
			return fmt.Errorf("sweep: checkpoint segment %s->%s: %w", sr.From, sr.To, err)
		}
		if ss.Consumer, err = sr.Consumer.Encode(); err != nil {
			return fmt.Errorf("sweep: checkpoint segment %s->%s: %w", sr.From, sr.To, err)
		}
		ss.Cycles, ss.EnergyPJ, ss.EDP, ss.ElidedWords =
			sr.Fused.Cycles, sr.Fused.EnergyPJ, sr.Fused.EDP, sr.Fused.ElidedWords
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.st.Segments == nil {
		sc.st.Segments = make(map[string]*checkpoint.SegmentState)
	}
	sc.st.Segments[segmentKey(a, st, opt, b)] = ss
	return checkpoint.Save(sc.path, checkpoint.KindSuite, &sc.st)
}

// record stores one completed layer search and persists the file.
func (sc *SuiteCheckpoint) record(l workloads.Layer, a *arch.Arch, st Strategy,
	opt search.Options, lr LayerResult) error {

	raw, err := lr.Search.Best.Encode()
	if err != nil {
		return fmt.Errorf("sweep: checkpoint layer %s: %w", l.Name, err)
	}
	cost := lr.Cost.Clone()
	ls := &checkpoint.LayerState{
		Done: true, Mapping: raw, Cost: &cost,
		Evaluated: lr.Search.Evaluated, Valid: lr.Search.Valid,
	}
	if lr.Workload != l.Work {
		ls.PadBounds = make(map[string]int)
		for _, d := range lr.Workload.DimNames() {
			ls.PadBounds[d] = lr.Workload.Bound(d)
		}
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.st.Layers[layerKey(a, st, opt, l)] = ls
	return checkpoint.Save(sc.path, checkpoint.KindSuite, &sc.st)
}
