package sweep

import (
	"context"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/library"
	"ruby/internal/mapspace"
	"ruby/internal/search"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

var quickOpt = search.Options{Seed: 11, Threads: 4, MaxEvaluations: 3000}

func smallSuite() []workloads.Layer {
	return []workloads.Layer{
		{Name: "pw", Type: workloads.Pointwise, Repeat: 2,
			Work: workload.MustConv2D(workload.Conv2DParams{Name: "pw", N: 1, M: 32, C: 16, P: 13, Q: 13, R: 1, S: 1})},
		{Name: "fc", Type: workloads.DenseFC, Repeat: 1,
			Work: workload.MustMatmul("fc", 100, 1, 64)},
	}
}

func TestSearchLayerFindsMapping(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	for _, st := range Strategies() {
		lr, err := SearchLayer(context.Background(), smallSuite()[0], a, st, mapspace.EyerissRowStationary, quickOpt, engine.Config{})
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		if !lr.Cost.Valid || lr.Cost.EDP <= 0 {
			t.Errorf("%s: bad cost %+v", st.Name, lr.Cost)
		}
		if lr.Workload == nil {
			t.Errorf("%s: winning workload not recorded", st.Name)
		}
	}
}

func TestPaddingMayChangeWorkload(t *testing.T) {
	// A 13x13 pointwise layer on a 14-wide array: the padding strategy can
	// pick the 14-padded variant. Whatever it picks must be at least as good
	// as plain PFM.
	a := arch.EyerissLike(14, 12, 128)
	l := smallSuite()[0]
	pfm, err := SearchLayer(context.Background(), l, a, Strategy{Name: "PFM", Kind: mapspace.PFM}, mapspace.EyerissRowStationary, quickOpt, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pad, err := SearchLayer(context.Background(), l, a, Strategy{Name: "PFM+pad", Kind: mapspace.PFM, Pad: true}, mapspace.EyerissRowStationary, quickOpt, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pad.Cost.EDP > pfm.Cost.EDP*1.05 {
		t.Errorf("padding strategy (%g) much worse than PFM (%g)", pad.Cost.EDP, pfm.Cost.EDP)
	}
}

func TestRunSuiteAggregates(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	sr, err := RunSuiteLayers(context.Background(), smallSuite(), a, Strategy{Name: "Ruby-S", Kind: mapspace.RubyS}, mapspace.EyerissRowStationary, SuiteOptions{Search: quickOpt})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Layers) != 2 {
		t.Fatalf("layers = %d", len(sr.Layers))
	}
	// Repeat weighting: totals exceed the plain sum of layer0 (repeat 2).
	wantE := 2*sr.Layers[0].Cost.EnergyPJ + sr.Layers[1].Cost.EnergyPJ
	if sr.TotalEnergyPJ != wantE {
		t.Errorf("TotalEnergyPJ = %g, want %g", sr.TotalEnergyPJ, wantE)
	}
	if sr.EDP != sr.TotalEnergyPJ*sr.TotalCycles {
		t.Error("EDP != E*D")
	}
}

func TestArrayAxes(t *testing.T) {
	if x, y := arrayAxes(arch.EyerissLike(14, 12, 128)); x != 14 || y != 12 {
		t.Errorf("axes = %dx%d", x, y)
	}
	if x, y := arrayAxes(arch.ToyLinear(16, 512)); x != 16 || y != 1 {
		t.Errorf("toy axes = %dx%d", x, y)
	}
}

func TestEyerissConfigs(t *testing.T) {
	cfgs := EyerissConfigs()
	if cfgs[0].String() != "2x7" || cfgs[len(cfgs)-1].String() != "16x16" {
		t.Errorf("config range wrong: %v .. %v", cfgs[0], cfgs[len(cfgs)-1])
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].PEs() < cfgs[i-1].PEs() {
			t.Errorf("configs not ascending at %d", i)
		}
	}
}

func TestExploreAndFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	layers := smallSuite()[:1]
	cfgs := []ArrayConfig{{2, 7}, {14, 12}}
	pts, err := Explore(context.Background(), layers, cfgs, 128, Strategies()[:1], mapspace.EyerissRowStationary, SuiteOptions{Search: quickOpt})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].AreaMM2 >= pts[1].AreaMM2 {
		t.Error("area should grow with array size")
	}
	fr := Frontier(pts, "PFM")
	if len(fr) == 0 {
		t.Error("empty frontier")
	}
}

func TestRunSuiteCached(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	lib, err := library.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := Strategy{Name: "Ruby-S", Kind: mapspace.RubyS}
	first, err := RunSuiteLayers(context.Background(), smallSuite(), a, st, mapspace.EyerissRowStationary, SuiteOptions{Search: quickOpt, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := lib.Len(); n != 2 {
		t.Fatalf("library entries = %d, want 2", n)
	}
	// Second run hits the cache: each layer costs exactly one evaluation.
	second, err := RunSuiteLayers(context.Background(), smallSuite(), a, st, mapspace.EyerissRowStationary, SuiteOptions{Search: quickOpt, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	for i, lr := range second.Layers {
		if lr.Search.Evaluated != 1 {
			t.Errorf("layer %d evaluated %d mappings, want 1 (cache hit)", i, lr.Search.Evaluated)
		}
	}
	if second.EDP != first.EDP {
		t.Errorf("cached EDP %g != original %g", second.EDP, first.EDP)
	}
	// Padding strategies bypass the cache.
	pad := Strategy{Name: "PFM+pad", Kind: mapspace.PFM, Pad: true}
	if _, err := RunSuiteLayers(context.Background(), smallSuite(), a, pad, mapspace.EyerissRowStationary, SuiteOptions{Search: quickOpt, Library: lib}); err != nil {
		t.Fatal(err)
	}
	if n, _ := lib.Len(); n != 2 {
		t.Errorf("padding strategy polluted the cache: %d entries", n)
	}
}
