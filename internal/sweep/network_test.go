package sweep

import (
	"context"
	"path/filepath"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/search"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

func freeCons(*workload.Workload) mapspace.Constraints { return mapspace.Constraints{} }

// pairNetwork is a pointwise producer feeding a 3x3 consumer, small enough
// that fused pairs are found within tiny budgets (the same shape the nest
// fused-evaluator tests pin down).
func pairNetwork() *workload.Network {
	prod := workload.MustConv2D(workload.Conv2DParams{
		Name: "p", N: 1, M: 16, C: 4, P: 14, Q: 14, R: 1, S: 1})
	cons := workload.MustConv2D(workload.Conv2DParams{
		Name: "c", N: 1, M: 8, C: 16, P: 14, Q: 14, R: 3, S: 3})
	return workload.MustNetwork("pair",
		[]workload.Node{
			{Name: "p", Repeat: 2, Work: prod},
			{Name: "c", Repeat: 3, Work: cons},
		},
		[]workload.Edge{{From: "p", To: "c", Dims: map[string]string{
			"N": "N", "M": "C", "P": "P", "Q": "Q"}}})
}

// The network entry point over an edge-free graph must reproduce the []Layer
// path exactly.
func TestRunSuiteNetworkMatchesLayers(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	st := Strategy{Name: "Ruby-S", Kind: mapspace.RubyS}
	layers := smallSuite()
	net := workloads.NetworkFromLayers("small", layers)
	want, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary, SuiteOptions{Search: quickOpt})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSuite(context.Background(), net, a, st, mapspace.EyerissRowStationary, SuiteOptions{Search: quickOpt})
	if err != nil {
		t.Fatal(err)
	}
	if got.EDP != want.EDP || got.TotalEnergyPJ != want.TotalEnergyPJ || got.TotalCycles != want.TotalCycles {
		t.Fatalf("network totals %+v diverge from layer totals %+v", got, want)
	}
	for i := range want.Layers {
		if got.Layers[i].Cost.EDP != want.Layers[i].Cost.EDP {
			t.Fatalf("layer %d EDP diverges", i)
		}
	}
}

func TestSearchNetworkFusesPair(t *testing.T) {
	net := pairNetwork()
	a := arch.EyerissLike(4, 3, 2)
	st := Strategy{Name: "Ruby-S", Kind: mapspace.RubyS}
	so := SuiteOptions{Search: search.Options{Seed: 5, Threads: 1, MaxEvaluations: 2000}}

	off, err := SearchNetwork(context.Background(), net, a, st, freeCons, so, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Segments) != 0 || off.EDP != off.Baseline.EDP {
		t.Fatalf("fusion-disabled search diverges from baseline: %+v", off)
	}

	nr, err := SearchNetwork(context.Background(), net, a, st, freeCons, so, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(nr.Segments) != 1 {
		t.Fatalf("got %d fused segments, want 1", len(nr.Segments))
	}
	sg := nr.Segments[0]
	if sg.From != "p" || sg.To != "c" || sg.Repeat != 2 {
		t.Fatalf("bad segment %+v", sg)
	}
	if sg.Fused.ElidedWords <= 0 {
		t.Fatal("segment elides no DRAM words")
	}
	if nr.EDP >= nr.Baseline.EDP {
		t.Fatalf("fused network EDP %g not below baseline %g", nr.EDP, nr.Baseline.EDP)
	}
	// The totals are the baseline with the segment's delta applied at the
	// fused repeat; the consumer's leftover repeat stays at baseline.
	r := float64(sg.Repeat)
	wantE := nr.Baseline.TotalEnergyPJ + r*(sg.Fused.EnergyPJ-sg.BaselineEnergyPJ)
	wantC := nr.Baseline.TotalCycles + r*(sg.Fused.Cycles-sg.BaselineCycles)
	if nr.TotalEnergyPJ != wantE || nr.TotalCycles != wantC || nr.EDP != wantE*wantC {
		t.Fatalf("totals %g/%g diverge from segment accounting %g/%g", nr.TotalEnergyPJ, nr.TotalCycles, wantE, wantC)
	}
}

// resnetSegments builds a network of two pinned disjoint ResNet-50 fusion
// candidates: the res2 bottleneck entry (1x1 into the 3x3 at 56x56) and the
// res3 bottleneck exit (the 3x3 into the expanding 1x1 at 28x28).
func resnetSegments(t *testing.T) *workload.Network {
	t.Helper()
	byName := make(map[string]workloads.Layer)
	for _, l := range workloads.ResNet50() {
		byName[l.Name] = l
	}
	var nodes []workload.Node
	for _, name := range []string{"res2a_branch2a", "res2x_branch2b", "res3x_branch2b", "res3x_branch2c"} {
		l, ok := byName[name]
		if !ok {
			t.Fatalf("ResNet-50 layer %s missing", name)
		}
		nodes = append(nodes, workload.Node{Name: l.Name, Repeat: l.Repeat, Work: l.Work})
	}
	return workload.MustNetwork("resnet50-segments", nodes,
		[]workload.Edge{
			{From: "res2a_branch2a", To: "res2x_branch2b", Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"}},
			{From: "res3x_branch2b", To: "res3x_branch2c", Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"}},
		})
}

// Acceptance: on two pinned ResNet-50 segments the fused search must report
// strictly lower network EDP than the per-layer baseline, fusing both.
func TestSearchNetworkFusesResNetSegments(t *testing.T) {
	net := resnetSegments(t)
	a := arch.EyerissLike(14, 12, 128)
	st := Strategy{Name: "Ruby-S", Kind: mapspace.RubyS}
	so := SuiteOptions{Search: search.Options{Seed: 1, Threads: 1, MaxEvaluations: 4000}}
	nr, err := SearchNetwork(context.Background(), net, a, st, mapspace.EyerissRowStationary, so, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(nr.Segments) < 2 {
		t.Fatalf("fused %d ResNet-50 segments, want 2", len(nr.Segments))
	}
	if nr.EDP >= nr.Baseline.EDP {
		t.Fatalf("fused network EDP %g not strictly below per-layer %g", nr.EDP, nr.Baseline.EDP)
	}
	for _, sg := range nr.Segments {
		if sg.Fused.ElidedWords <= 0 {
			t.Fatalf("segment %s->%s elides no DRAM words", sg.From, sg.To)
		}
	}
}

// Acceptance: the DeepBench vision stack must fuse with strictly lower
// network EDP than its per-layer baseline.
func TestSearchNetworkFusesDeepBenchStack(t *testing.T) {
	full := workloads.DeepBenchStacks()
	// The vision 3x3 stack alone: the speech GEMMs' intermediate is far
	// beyond on-chip capacity at single-fetch, so they stay per-layer.
	var nodes []workload.Node
	for _, nd := range full.Nodes {
		if nd.Name == "vision_stack_3x3_28a" || nd.Name == "vision_stack_3x3_28b" {
			nodes = append(nodes, nd)
		}
	}
	net := workload.MustNetwork("deepbench-vision", nodes,
		[]workload.Edge{{From: "vision_stack_3x3_28a", To: "vision_stack_3x3_28b",
			Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"}}})
	a := arch.EyerissLike(14, 12, 128)
	st := Strategy{Name: "Ruby-S", Kind: mapspace.RubyS}
	so := SuiteOptions{Search: search.Options{Seed: 7, Threads: 1, MaxEvaluations: 4000}}
	nr, err := SearchNetwork(context.Background(), net, a, st, mapspace.EyerissRowStationary, so, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(nr.Segments) != 1 {
		t.Fatalf("fused %d DeepBench segments, want 1", len(nr.Segments))
	}
	if nr.EDP >= nr.Baseline.EDP {
		t.Fatalf("fused network EDP %g not strictly below per-layer %g", nr.EDP, nr.Baseline.EDP)
	}
}

// A checkpointed network search must resume bit-identically: the second run
// restores both the baseline layers and the fused segments without
// re-searching.
func TestSearchNetworkCheckpointResume(t *testing.T) {
	net := pairNetwork()
	a := arch.EyerissLike(4, 3, 2)
	st := Strategy{Name: "Ruby-S", Kind: mapspace.RubyS}
	path := filepath.Join(t.TempDir(), "net.suite.json")
	opt := search.Options{Seed: 5, Threads: 1, MaxEvaluations: 2000}

	cp, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := SearchNetwork(context.Background(), net, a, st, freeCons,
		SuiteOptions{Search: opt, Checkpoint: cp}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Segments) != 1 {
		t.Fatalf("got %d fused segments, want 1", len(first.Segments))
	}

	cp2, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	second, err := SearchNetwork(context.Background(), net, a, st, freeCons,
		SuiteOptions{Search: opt, Checkpoint: cp2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if second.EDP != first.EDP || second.TotalEnergyPJ != first.TotalEnergyPJ ||
		second.TotalCycles != first.TotalCycles {
		t.Fatalf("resumed totals diverge: %g vs %g", second.EDP, first.EDP)
	}
	if len(second.Segments) != 1 {
		t.Fatalf("resumed run lost the fused segment")
	}
	sg1, sg2 := first.Segments[0], second.Segments[0]
	if sg2.Fused.EDP != sg1.Fused.EDP || sg2.Fused.ElidedWords != sg1.Fused.ElidedWords {
		t.Fatalf("resumed segment cost diverges: %+v vs %+v", sg2.Fused, sg1.Fused)
	}
	if sg2.Evaluated != 0 {
		t.Fatalf("resumed segment re-searched (%d evaluations)", sg2.Evaluated)
	}
}
