// Package sweep runs mapping strategies over whole workload suites and
// architecture configurations — the machinery behind the paper's per-layer
// comparisons (Figs. 10-12) and the architectural design-space exploration
// (Figs. 13-14).
//
// Suite runs route through the evaluation engine (internal/engine): layer
// searches honor context cancellation, share a metrics hook, optionally
// memoize duplicate samples, and run in parallel across layers (each layer's
// search result is independent and seeded deterministically, so parallel and
// serial suite runs produce identical output). When the context carries an
// obs.Recorder, each suite and layer search records a trace span, so a suite
// run's span tree reads suite → layer → search → eval-batch.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/library"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/obs"
	"ruby/internal/search"
	"ruby/internal/stats"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// Strategy is one mapping approach compared in the paper: a mapspace kind,
// optionally combined with the dimension-padding baseline of Section III-B.
type Strategy struct {
	Name string
	Kind mapspace.Kind
	Pad  bool // try padded workload variants and keep the best
}

// Strategies returns the three approaches compared in the architecture
// sweeps: perfect factorization, perfect factorization with padding, and
// Ruby-S.
func Strategies() []Strategy {
	return []Strategy{
		{Name: "PFM", Kind: mapspace.PFM},
		{Name: "PFM+pad", Kind: mapspace.PFM, Pad: true},
		{Name: "Ruby-S", Kind: mapspace.RubyS},
	}
}

// ConstraintFn derives per-workload mapspace constraints (dataflow styles
// reference dimension names, which differ between convs and GEMMs).
type ConstraintFn func(*workload.Workload) mapspace.Constraints

// SuiteOptions bundles the knobs of a suite run beyond the per-layer search
// options: the evaluation-engine configuration (cache, metrics), an optional
// mapping library, and the number of layers searched concurrently.
type SuiteOptions struct {
	// Search configures each layer's random search.
	Search search.Options
	// Engine configures the evaluation pipeline built per workload variant.
	Engine engine.Config
	// Library optionally caches best-known mappings across runs.
	Library *library.Store
	// Checkpoint optionally persists per-layer progress, so interrupted
	// suite runs resume by skipping verified completed layers. Unlike
	// Library (a cross-run cache keyed only by the problem), checkpoint
	// entries are keyed by the full search configuration, so they are exact
	// resumption, not approximation.
	Checkpoint *SuiteCheckpoint
	// Parallel is the number of layers searched concurrently (0 = derive
	// from NumCPU and Search.Threads so the machine is busy but not
	// oversubscribed; 1 = serial).
	Parallel int
}

func (so SuiteOptions) withDefaults() SuiteOptions {
	if so.Parallel <= 0 {
		threads := so.Search.Threads
		if threads <= 0 {
			threads = runtime.NumCPU()
			if threads > 24 {
				threads = 24
			}
		}
		so.Parallel = runtime.NumCPU() / threads
		if so.Parallel < 1 {
			so.Parallel = 1
		}
	}
	return so
}

// LayerResult is the outcome of searching one layer under one strategy.
type LayerResult struct {
	Layer    workloads.Layer
	Cost     nest.Cost
	Search   *search.Result
	Workload *workload.Workload // the (possibly padded) variant that won
}

// SearchLayer searches the best mapping for one layer on one architecture
// under one strategy, using the algorithm opt.Algo selects (random sampling
// by default). For padding strategies every padded variant is searched and
// the lowest-EDP result wins (Section III-B's baseline). An error is
// returned when no valid mapping exists at all. Each workload variant's
// search routes through an engine built from ecfg, and a cancelled ctx
// aborts with its error.
func SearchLayer(ctx context.Context, l workloads.Layer, a *arch.Arch, st Strategy,
	consFn ConstraintFn, opt search.Options, ecfg engine.Config) (LayerResult, error) {

	variants := []*workload.Workload{l.Work}
	if st.Pad {
		fx, fy := arrayAxes(a)
		variants = mapspace.PaddedVariants(l.Work, consFn(l.Work), fx, fy)
	}
	var best LayerResult
	for _, w := range variants {
		if ctx != nil && ctx.Err() != nil {
			return LayerResult{}, fmt.Errorf("sweep: layer %s on %s: %w", l.Name, a.Name, ctx.Err())
		}
		ev, err := nest.NewEvaluator(w, a)
		if err != nil {
			return LayerResult{}, fmt.Errorf("sweep: layer %s on %s: %w", l.Name, a.Name, err)
		}
		eng := ecfg.New(ev)
		sp := mapspace.New(w, a, st.Kind, consFn(w))
		res, err := search.Run(ctx, sp, eng, opt.Algo, opt)
		if err != nil {
			return LayerResult{}, fmt.Errorf("sweep: layer %s on %s: %w", l.Name, a.Name, err)
		}
		if res.Best == nil {
			// Guaranteed fallback: the all-at-DRAM uniform mapping streams
			// single elements through the hierarchy, so it satisfies every
			// capacity and fanout bound and belongs to every mapspace kind
			// (all factors divide trivially). It anchors tiny search
			// budgets without biasing real ones.
			m := mapping.Uniform(w, a, 0)
			if c := eng.Evaluate(m); c.Valid {
				res = &search.Result{Best: m, BestCost: c, Evaluated: res.Evaluated}
			} else {
				continue
			}
		}
		if best.Search == nil || res.BestCost.EDP < best.Cost.EDP {
			best = LayerResult{Layer: l, Cost: res.BestCost, Search: res, Workload: w}
		}
	}
	if best.Search == nil {
		if ctx != nil && ctx.Err() != nil {
			return LayerResult{}, fmt.Errorf("sweep: layer %s on %s: %w", l.Name, a.Name, ctx.Err())
		}
		return LayerResult{}, fmt.Errorf("sweep: no valid mapping for layer %s on %s under %s", l.Name, a.Name, st.Name)
	}
	return best, nil
}

// arrayAxes returns the dominant spatial fanout axes of the architecture
// (the PE array dimensions padding aligns to).
func arrayAxes(a *arch.Arch) (x, y int) {
	x, y = 1, 1
	for i := range a.Levels {
		f := a.Levels[i].Fanout
		if f.FanoutX*max(1, f.FanoutY) > x*y {
			x, y = f.FanoutX, max(1, f.FanoutY)
		}
	}
	return x, y
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SuiteResult aggregates a suite under one strategy on one architecture.
type SuiteResult struct {
	Strategy Strategy
	Arch     *arch.Arch
	Layers   []LayerResult

	// Repeat-weighted totals across the suite. EDP is TotalEnergy x
	// TotalCycles (whole-network energy-delay product, as in Fig. 10's
	// final column).
	TotalEnergyPJ float64
	TotalCycles   float64
	EDP           float64
}

// RunSuiteLayers searches every layer of a suite and aggregates network
// totals. Layer searches run so.Parallel at a time (deterministic — each
// layer's search is independent and explicitly seeded, and aggregation
// preserves layer order), evaluations route through engines built from
// so.Engine, and cancellation aborts the whole run with ctx's error.
//
// This is the per-layer core; RunSuite is the network-graph entry point that
// feeds it, and SearchNetwork layers fusion on top.
func RunSuiteLayers(ctx context.Context, layers []workloads.Layer, a *arch.Arch, st Strategy,
	consFn ConstraintFn, so SuiteOptions) (*SuiteResult, error) {

	ctx, span := obs.StartSpan(ctx, "suite:"+st.Name)
	defer span.End()
	so = so.withDefaults()
	out := &SuiteResult{Strategy: st, Arch: a}
	results := make([]LayerResult, len(layers))
	errs := make([]error, len(layers))

	workers := so.Parallel
	if workers > len(layers) {
		workers = len(layers)
	}
	if workers <= 1 {
		for i, l := range layers {
			results[i], errs[i] = searchLayerCached(ctx, l, a, st, consFn, so)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
	} else {
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for t := 0; t < workers; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= len(layers) {
						return
					}
					results[i], errs[i] = searchLayerCached(ctx, layers[i], a, st, consFn, so)
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	for i, l := range layers {
		out.Layers = append(out.Layers, results[i])
		r := float64(l.Repeat)
		out.TotalEnergyPJ += r * results[i].Cost.EnergyPJ
		out.TotalCycles += r * results[i].Cost.Cycles
	}
	out.EDP = out.TotalEnergyPJ * out.TotalCycles
	return out, nil
}

func searchLayerCached(ctx context.Context, l workloads.Layer, a *arch.Arch, st Strategy,
	consFn ConstraintFn, so SuiteOptions) (LayerResult, error) {

	ctx, span := obs.StartSpan(ctx, "layer:"+l.Name)
	defer span.End()
	if so.Checkpoint != nil {
		if lr, ok := so.Checkpoint.resume(l, a, st, consFn, so.Search); ok {
			return lr, nil
		}
	}
	lr, err := searchLayerLib(ctx, l, a, st, consFn, so)
	if err != nil {
		return lr, err
	}
	if so.Checkpoint != nil {
		if err := so.Checkpoint.record(l, a, st, so.Search, lr); err != nil {
			return lr, err
		}
	}
	return lr, nil
}

func searchLayerLib(ctx context.Context, l workloads.Layer, a *arch.Arch, st Strategy,
	consFn ConstraintFn, so SuiteOptions) (LayerResult, error) {

	lib := so.Library
	if lib == nil || st.Pad {
		return SearchLayer(ctx, l, a, st, consFn, so.Search, so.Engine)
	}
	cons := consFn(l.Work)
	key := library.Key(l.Work, a, st.Kind, cons)
	ev, err := nest.NewEvaluator(l.Work, a)
	if err != nil {
		return LayerResult{}, err
	}
	slots := mapping.Slots(a)
	if m, ok := lib.Get(key, l.Work, slots); ok {
		if c := ev.Evaluate(m); c.Valid {
			return LayerResult{
				Layer: l, Cost: c, Workload: l.Work,
				Search: &search.Result{Best: m, BestCost: c, Evaluated: 1, Valid: 1},
			}, nil
		}
	}
	lr, err := SearchLayer(ctx, l, a, st, consFn, so.Search, so.Engine)
	if err != nil {
		return lr, err
	}
	if err := lib.Put(key, lr.Search.Best); err != nil {
		return lr, err
	}
	return lr, nil
}

// ArrayConfig is one PE-array size in the design-space exploration.
type ArrayConfig struct {
	Cols, Rows int
}

// String renders the configuration as "COLSxROWS".
func (c ArrayConfig) String() string { return fmt.Sprintf("%dx%d", c.Cols, c.Rows) }

// PEs returns the array's PE count.
func (c ArrayConfig) PEs() int { return c.Cols * c.Rows }

// EyerissConfigs returns the sweep range of Section IV-E: Eyeriss-like PE
// arrays from 2x7 to 16x16.
func EyerissConfigs() []ArrayConfig {
	return []ArrayConfig{
		{2, 7}, {4, 6}, {7, 6}, {8, 8}, {10, 8}, {12, 10},
		{14, 12}, {16, 12}, {14, 14}, {16, 16},
	}
}

// DesignPoint is one architecture configuration's outcome across strategies.
type DesignPoint struct {
	Config  ArrayConfig
	AreaMM2 float64
	// EDP per strategy name.
	EDP map[string]float64
}

// Explore sweeps the Eyeriss-like configurations over a suite for each
// strategy, producing the data behind Figs. 13-14. glbKiB fixes the global
// buffer size across configurations. Cancellation, engine configuration and
// suite-level parallelism (so) apply to every configuration's suite runs.
func Explore(ctx context.Context, layers []workloads.Layer, configs []ArrayConfig, glbKiB int,
	sts []Strategy, consFn ConstraintFn, so SuiteOptions) ([]DesignPoint, error) {

	var out []DesignPoint
	for _, cfg := range configs {
		a := arch.EyerissLike(cfg.Cols, cfg.Rows, glbKiB)
		dp := DesignPoint{Config: cfg, AreaMM2: a.AreaMM2(), EDP: make(map[string]float64, len(sts))}
		for _, st := range sts {
			sr, err := RunSuiteLayers(ctx, layers, a, st, consFn, so)
			if err != nil {
				return nil, err
			}
			dp.EDP[st.Name] = sr.EDP
		}
		out = append(out, dp)
	}
	return out, nil
}

// Frontier extracts the area-EDP Pareto frontier of one strategy from sweep
// results.
func Frontier(points []DesignPoint, strategy string) []stats.Point {
	var ps []stats.Point
	for _, dp := range points {
		if edp, ok := dp.EDP[strategy]; ok {
			ps = append(ps, stats.Point{X: dp.AreaMM2, Y: edp, Label: dp.Config.String()})
		}
	}
	return stats.ParetoFrontier(ps)
}
