// Package sweep runs mapping strategies over whole workload suites and
// architecture configurations — the machinery behind the paper's per-layer
// comparisons (Figs. 10-12) and the architectural design-space exploration
// (Figs. 13-14).
package sweep

import (
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/library"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
	"ruby/internal/stats"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// Strategy is one mapping approach compared in the paper: a mapspace kind,
// optionally combined with the dimension-padding baseline of Section III-B.
type Strategy struct {
	Name string
	Kind mapspace.Kind
	Pad  bool // try padded workload variants and keep the best
}

// Strategies returns the three approaches compared in the architecture
// sweeps: perfect factorization, perfect factorization with padding, and
// Ruby-S.
func Strategies() []Strategy {
	return []Strategy{
		{Name: "PFM", Kind: mapspace.PFM},
		{Name: "PFM+pad", Kind: mapspace.PFM, Pad: true},
		{Name: "Ruby-S", Kind: mapspace.RubyS},
	}
}

// ConstraintFn derives per-workload mapspace constraints (dataflow styles
// reference dimension names, which differ between convs and GEMMs).
type ConstraintFn func(*workload.Workload) mapspace.Constraints

// LayerResult is the outcome of searching one layer under one strategy.
type LayerResult struct {
	Layer    workloads.Layer
	Cost     nest.Cost
	Search   *search.Result
	Workload *workload.Workload // the (possibly padded) variant that won
}

// SearchLayer searches the best mapping for one layer on one architecture
// under one strategy. For padding strategies every padded variant is
// searched and the lowest-EDP result wins (Section III-B's baseline). An
// error is returned when no valid mapping exists at all.
func SearchLayer(l workloads.Layer, a *arch.Arch, st Strategy, consFn ConstraintFn, opt search.Options) (LayerResult, error) {
	variants := []*workload.Workload{l.Work}
	if st.Pad {
		fx, fy := arrayAxes(a)
		variants = mapspace.PaddedVariants(l.Work, consFn(l.Work), fx, fy)
	}
	var best LayerResult
	for _, w := range variants {
		ev, err := nest.NewEvaluator(w, a)
		if err != nil {
			return LayerResult{}, fmt.Errorf("sweep: layer %s on %s: %w", l.Name, a.Name, err)
		}
		sp := mapspace.New(w, a, st.Kind, consFn(w))
		res := search.Random(sp, ev, opt)
		if res.Best == nil {
			// Guaranteed fallback: the all-at-DRAM uniform mapping streams
			// single elements through the hierarchy, so it satisfies every
			// capacity and fanout bound and belongs to every mapspace kind
			// (all factors divide trivially). It anchors tiny search
			// budgets without biasing real ones.
			m := mapping.Uniform(w, a, 0)
			if c := ev.Evaluate(m); c.Valid {
				res = &search.Result{Best: m, BestCost: c, Evaluated: res.Evaluated}
			} else {
				continue
			}
		}
		if best.Search == nil || res.BestCost.EDP < best.Cost.EDP {
			best = LayerResult{Layer: l, Cost: res.BestCost, Search: res, Workload: w}
		}
	}
	if best.Search == nil {
		return LayerResult{}, fmt.Errorf("sweep: no valid mapping for layer %s on %s under %s", l.Name, a.Name, st.Name)
	}
	return best, nil
}

// arrayAxes returns the dominant spatial fanout axes of the architecture
// (the PE array dimensions padding aligns to).
func arrayAxes(a *arch.Arch) (x, y int) {
	x, y = 1, 1
	for i := range a.Levels {
		f := a.Levels[i].Fanout
		if f.FanoutX*max(1, f.FanoutY) > x*y {
			x, y = f.FanoutX, max(1, f.FanoutY)
		}
	}
	return x, y
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SuiteResult aggregates a suite under one strategy on one architecture.
type SuiteResult struct {
	Strategy Strategy
	Arch     *arch.Arch
	Layers   []LayerResult

	// Repeat-weighted totals across the suite. EDP is TotalEnergy x
	// TotalCycles (whole-network energy-delay product, as in Fig. 10's
	// final column).
	TotalEnergyPJ float64
	TotalCycles   float64
	EDP           float64
}

// RunSuite searches every layer of a suite and aggregates network totals.
func RunSuite(layers []workloads.Layer, a *arch.Arch, st Strategy, consFn ConstraintFn, opt search.Options) (*SuiteResult, error) {
	return RunSuiteCached(layers, a, st, consFn, opt, nil)
}

// RunSuiteCached is RunSuite backed by an optional mapping library: layers
// whose (workload, architecture, mapspace, constraints) key is cached skip
// the search entirely, and newly searched mappings are stored — the search
// still runs when the cached mapping is somehow invalid. Padding strategies
// bypass the cache (the winning workload variant is part of the result).
func RunSuiteCached(layers []workloads.Layer, a *arch.Arch, st Strategy, consFn ConstraintFn,
	opt search.Options, lib *library.Store) (*SuiteResult, error) {

	out := &SuiteResult{Strategy: st, Arch: a}
	for _, l := range layers {
		lr, err := searchLayerCached(l, a, st, consFn, opt, lib)
		if err != nil {
			return nil, err
		}
		out.Layers = append(out.Layers, lr)
		r := float64(l.Repeat)
		out.TotalEnergyPJ += r * lr.Cost.EnergyPJ
		out.TotalCycles += r * lr.Cost.Cycles
	}
	out.EDP = out.TotalEnergyPJ * out.TotalCycles
	return out, nil
}

func searchLayerCached(l workloads.Layer, a *arch.Arch, st Strategy, consFn ConstraintFn,
	opt search.Options, lib *library.Store) (LayerResult, error) {

	if lib == nil || st.Pad {
		return SearchLayer(l, a, st, consFn, opt)
	}
	cons := consFn(l.Work)
	key := library.Key(l.Work, a, st.Kind, cons)
	ev, err := nest.NewEvaluator(l.Work, a)
	if err != nil {
		return LayerResult{}, err
	}
	slots := mapping.Slots(a)
	if m, ok := lib.Get(key, l.Work, slots); ok {
		if c := ev.Evaluate(m); c.Valid {
			return LayerResult{
				Layer: l, Cost: c, Workload: l.Work,
				Search: &search.Result{Best: m, BestCost: c, Evaluated: 1, Valid: 1},
			}, nil
		}
	}
	lr, err := SearchLayer(l, a, st, consFn, opt)
	if err != nil {
		return lr, err
	}
	if err := lib.Put(key, lr.Search.Best); err != nil {
		return lr, err
	}
	return lr, nil
}

// ArrayConfig is one PE-array size in the design-space exploration.
type ArrayConfig struct {
	Cols, Rows int
}

func (c ArrayConfig) String() string { return fmt.Sprintf("%dx%d", c.Cols, c.Rows) }

// PEs returns the array's PE count.
func (c ArrayConfig) PEs() int { return c.Cols * c.Rows }

// EyerissConfigs returns the sweep range of Section IV-E: Eyeriss-like PE
// arrays from 2x7 to 16x16.
func EyerissConfigs() []ArrayConfig {
	return []ArrayConfig{
		{2, 7}, {4, 6}, {7, 6}, {8, 8}, {10, 8}, {12, 10},
		{14, 12}, {16, 12}, {14, 14}, {16, 16},
	}
}

// DesignPoint is one architecture configuration's outcome across strategies.
type DesignPoint struct {
	Config  ArrayConfig
	AreaMM2 float64
	// EDP per strategy name.
	EDP map[string]float64
}

// Explore sweeps the Eyeriss-like configurations over a suite for each
// strategy, producing the data behind Figs. 13-14. glbKiB fixes the global
// buffer size across configurations.
func Explore(layers []workloads.Layer, configs []ArrayConfig, glbKiB int,
	sts []Strategy, consFn ConstraintFn, opt search.Options) ([]DesignPoint, error) {

	var out []DesignPoint
	for _, cfg := range configs {
		a := arch.EyerissLike(cfg.Cols, cfg.Rows, glbKiB)
		dp := DesignPoint{Config: cfg, AreaMM2: a.AreaMM2(), EDP: make(map[string]float64, len(sts))}
		for _, st := range sts {
			sr, err := RunSuite(layers, a, st, consFn, opt)
			if err != nil {
				return nil, err
			}
			dp.EDP[st.Name] = sr.EDP
		}
		out = append(out, dp)
	}
	return out, nil
}

// Frontier extracts the area-EDP Pareto frontier of one strategy from sweep
// results.
func Frontier(points []DesignPoint, strategy string) []stats.Point {
	var ps []stats.Point
	for _, dp := range points {
		if edp, ok := dp.EDP[strategy]; ok {
			ps = append(ps, stats.Point{X: dp.AreaMM2, Y: edp, Label: dp.Config.String()})
		}
	}
	return stats.ParetoFrontier(ps)
}
