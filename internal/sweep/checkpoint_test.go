package sweep

import (
	"context"
	"path/filepath"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
)

// A resumed suite run must skip every completed layer (zero fresh
// evaluations) and reproduce the first run's totals bit for bit.
func TestSuiteCheckpointResumeSkipsCompletedLayers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	a := arch.EyerissLike(14, 12, 128)
	layers := smallSuite()
	st := Strategies()[2] // Ruby-S

	cp, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: quickOpt, Checkpoint: cp, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != len(layers) {
		t.Fatalf("checkpoint holds %d layers, want %d", cp.Len(), len(layers))
	}

	// "Second process": reload the file, count evaluations.
	cp2, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	met := &engine.Counters{}
	second, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: quickOpt, Engine: engine.Config{Metrics: met}, Checkpoint: cp2, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if evals := met.Snapshot().Evaluations; evals != 0 {
		t.Errorf("resumed run performed %d fresh engine evaluations, want 0", evals)
	}
	if second.EDP != first.EDP || second.TotalCycles != first.TotalCycles || second.TotalEnergyPJ != first.TotalEnergyPJ {
		t.Errorf("resumed totals (%g, %g, %g) differ from original (%g, %g, %g)",
			second.EDP, second.TotalCycles, second.TotalEnergyPJ,
			first.EDP, first.TotalCycles, first.TotalEnergyPJ)
	}
	for i := range first.Layers {
		if second.Layers[i].Cost.EDP != first.Layers[i].Cost.EDP {
			t.Errorf("layer %s EDP %g, want %g", layers[i].Name, second.Layers[i].Cost.EDP, first.Layers[i].Cost.EDP)
		}
		if second.Layers[i].Search.Evaluated != first.Layers[i].Search.Evaluated {
			t.Errorf("layer %s evaluation count %d, want %d (counters must restore, not reset)",
				layers[i].Name, second.Layers[i].Search.Evaluated, first.Layers[i].Search.Evaluated)
		}
	}
}

// An interrupted run (only some layers completed) resumes the rest and ends
// with the same totals as an uninterrupted run.
func TestSuiteCheckpointPartialResume(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	layers := smallSuite()
	st := Strategies()[2]
	// Serial search: the fresh layers of the resumed run must reproduce the
	// uninterrupted run exactly, which the parallel random entry point does
	// not guarantee across schedules.
	opt := quickOpt
	opt.Threads = 1

	want, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: opt})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "suite.json")
	cp, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	// "First process" dies after completing only the first layer.
	if _, err := RunSuiteLayers(context.Background(), layers[:1], a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: opt, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Len() != 1 {
		t.Fatalf("checkpoint holds %d layers, want 1", cp2.Len())
	}
	got, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: opt, Checkpoint: cp2})
	if err != nil {
		t.Fatal(err)
	}
	if got.EDP != want.EDP {
		t.Errorf("resumed suite EDP %g, want %g", got.EDP, want.EDP)
	}
}

// Padding strategies record the winning padded variant's bounds; the resumed
// run reconstructs that exact variant.
func TestSuiteCheckpointRoundTripsPaddedVariant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	a := arch.EyerissLike(14, 12, 128)
	layers := smallSuite()[:1] // 13x13 pointwise: padding to 14 is in play
	st := Strategies()[1]      // PFM+pad

	cp, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: quickOpt, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: quickOpt, Checkpoint: cp2})
	if err != nil {
		t.Fatal(err)
	}
	if second.EDP != first.EDP {
		t.Errorf("padded resume EDP %g, want %g", second.EDP, first.EDP)
	}
	fw, sw := first.Layers[0].Workload, second.Layers[0].Workload
	for _, d := range fw.DimNames() {
		if fw.Bound(d) != sw.Bound(d) {
			t.Errorf("dim %s bound %d, want %d (padded variant not reconstructed)", d, sw.Bound(d), fw.Bound(d))
		}
	}
}

// Different search configurations must not collide in one checkpoint file.
func TestSuiteCheckpointKeyedByConfiguration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	a := arch.EyerissLike(14, 12, 128)
	layers := smallSuite()[:1]
	st := Strategies()[2]

	cp, err := OpenSuiteCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: quickOpt, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	// A different budget re-searches (fresh evaluations) instead of reusing.
	other := quickOpt
	other.MaxEvaluations = 1500
	met := &engine.Counters{}
	if _, err := RunSuiteLayers(context.Background(), layers, a, st, mapspace.EyerissRowStationary,
		SuiteOptions{Search: other, Engine: engine.Config{Metrics: met}, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	if met.Snapshot().Evaluations == 0 {
		t.Error("changed search budget reused the old checkpoint entry")
	}
	if cp.Len() != 2 {
		t.Errorf("checkpoint holds %d entries, want 2", cp.Len())
	}
}
