package library

import (
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/workload"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MustVector1D("d100", 100)
	a := arch.ToyGLB(6, 512)
	slots := mapping.Slots(a)
	key := Key(w, a, mapspace.RubyS, mapspace.Constraints{})

	if _, ok := s.Get(key, w, slots); ok {
		t.Fatal("hit on empty store")
	}
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	if err := s.Put(key, m); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key, w, slots)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Key(w, slots) != m.Key(w, slots) {
		t.Error("round trip changed the mapping")
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestKeySensitivity(t *testing.T) {
	w := workload.MustVector1D("d100", 100)
	w2 := workload.MustVector1D("d100", 101)
	a := arch.ToyGLB(6, 512)
	a2 := arch.ToyGLB(7, 512)
	a3 := arch.ToyGLB(6, 1024)
	base := Key(w, a, mapspace.RubyS, mapspace.Constraints{})
	diffs := []string{
		Key(w2, a, mapspace.RubyS, mapspace.Constraints{}),
		Key(w, a2, mapspace.RubyS, mapspace.Constraints{}),
		Key(w, a3, mapspace.RubyS, mapspace.Constraints{}),
		Key(w, a, mapspace.PFM, mapspace.Constraints{}),
		Key(w, a, mapspace.RubyS, mapspace.Constraints{SpatialX: []string{"X"}}),
	}
	for i, d := range diffs {
		if d == base {
			t.Errorf("variant %d collides with base key", i)
		}
	}
	// Stability: same inputs, same key.
	if Key(w, a, mapspace.RubyS, mapspace.Constraints{}) != base {
		t.Error("key not deterministic")
	}
}

func TestGetRejectsStaleEntries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := workload.MustVector1D("d100", 100)
	a := arch.ToyGLB(6, 512)
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	key := "stale"
	if err := s.Put(key, m); err != nil {
		t.Fatal(err)
	}
	// Same key looked up against a different architecture (different slot
	// count): the cached file no longer decodes -> miss, not corruption.
	deep := arch.EyerissV2Like(2, 2, 64)
	if _, ok := s.Get(key, w, mapping.Slots(deep)); ok {
		t.Error("stale entry accepted against mismatched slots")
	}
}
