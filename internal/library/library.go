// Package library is a file-backed cache of best-known mappings keyed by
// (workload, architecture, mapspace kind, constraints). Real mapper
// deployments search once and reuse: a suite evaluation that already mapped
// res4x_branch2c on the 14x12 baseline should not search it again.
package library

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/workload"
)

// Store is a directory of saved mappings, one JSON file per key.
type Store struct {
	dir string
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("library: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// Key derives the cache key for a mapping problem. It hashes the workload's
// full loop-nest rendering (dimensions, bounds, projections, strides), the
// architecture's structural fields (capacities, per-operand buffers,
// fanouts, multicast), the mapspace kind and the constraint set — everything
// that affects which mappings exist and how they cost.
func Key(w *workload.Workload, a *arch.Arch, kind mapspace.Kind, cons mapspace.Constraints) string {
	h := sha256.New()
	fmt.Fprintln(h, w.String())
	for i := range a.Levels {
		l := &a.Levels[i]
		fmt.Fprintf(h, "level %q cap=%d perRole=%v keeps=%v fanout=%dx%d mcast=%v bw=%g static=%g hop=%g\n",
			l.Name, l.Capacity, l.PerRole, l.Keeps,
			l.Fanout.FanoutX, l.Fanout.FanoutY, l.Fanout.Multicast,
			l.BandwidthWords, l.StaticPJPerCycle, l.Fanout.HopEnergyPJ)
	}
	fmt.Fprintf(h, "energy=%+v\n", a.Energy)
	fmt.Fprintf(h, "kind=%d cons=%+v\n", kind, cons)
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Get loads and structurally validates the cached mapping for key, if any.
// A cache file that no longer decodes against the problem (stale schema,
// changed slot count) is treated as a miss.
func (s *Store) Get(key string, w *workload.Workload, slots []mapping.Slot) (*mapping.Mapping, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	m, err := mapping.Decode(data, w, slots)
	if err != nil {
		return nil, false
	}
	return m, true
}

// Put saves a mapping under key, atomically (write + rename).
func (s *Store) Put(key string, m *mapping.Mapping) error {
	data, err := m.Encode()
	if err != nil {
		return fmt.Errorf("library: %w", err)
	}
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("library: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		return fmt.Errorf("library: %w", err)
	}
	return nil
}

// Len counts stored mappings.
func (s *Store) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("library: %w", err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
