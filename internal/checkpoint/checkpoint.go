// Package checkpoint makes long-running searches survivable: it persists
// search, suite and server-job state as crash-safe, versioned JSON snapshots
// that a later process can restore bit-identically.
//
// The package provides three things:
//
//   - a snapshot file format — a versioned envelope with a schema tag and a
//     kind discriminator, written atomically (temp file in the destination
//     directory, fsync, rename), so a crash mid-write never corrupts an
//     existing checkpoint;
//   - a serializable random source (RNG, xoshiro256**) implementing
//     math/rand.Source64, so a restored search replays the exact draw
//     sequence the interrupted run would have produced;
//   - the state payloads themselves: SearchState (one searcher's counters,
//     incumbent and RNG), and SuiteState (per-layer progress of a whole
//     suite run).
//
// Checkpointable searchers live in internal/search (Searcher, with
// Snapshot/Restore); per-layer suite checkpoints in internal/sweep
// (SuiteCheckpoint); job persistence in internal/server. The correctness
// contract, pinned by internal/search's kill-and-resume tests, is strict: a
// run interrupted at an arbitrary point and resumed from its checkpoint
// produces a bit-identical final incumbent, cost and evaluation count to an
// uninterrupted run.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Schema tags every checkpoint file so unrelated JSON is never mistaken for
// a snapshot.
const Schema = "ruby/checkpoint"

// Version is the current checkpoint format version. Load rejects files
// written by a newer format instead of misreading them.
const Version = 1

// envelope is the on-disk frame around every checkpoint payload.
type envelope struct {
	Schema  string          `json:"schema"`
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	SavedAt string          `json:"saved_at,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

// Save atomically writes payload as a checkpoint of the given kind: the JSON
// is written to a temporary file in path's directory, synced, and renamed
// over path, so readers (and crash recovery) only ever observe either the
// previous complete snapshot or the new one — never a torn write.
func Save(path, kind string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal %s payload: %w", kind, err)
	}
	env := envelope{
		Schema:  Schema,
		Version: Version,
		Kind:    kind,
		//ruby:allow determinism -- SavedAt is provenance metadata; Load never reads it
		SavedAt: time.Now().UTC().Format(time.RFC3339),
		Payload: raw,
	}
	data, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	data = append(data, '\n')

	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("checkpoint: chmod %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename into %s: %w", path, err)
	}
	return nil
}

// Load reads a checkpoint of the given kind from path into payload. A
// missing file surfaces as an error satisfying errors.Is(err,
// fs.ErrNotExist); schema, version and kind mismatches are explicit errors
// rather than silent misreads.
func Load(path, kind string, payload any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("checkpoint: parse %s: %w", path, err)
	}
	if env.Schema != Schema {
		return fmt.Errorf("checkpoint: %s is not a checkpoint file (schema %q)", path, env.Schema)
	}
	if env.Version > Version {
		return fmt.Errorf("checkpoint: %s uses format version %d, this build understands <= %d",
			path, env.Version, Version)
	}
	if env.Kind != kind {
		return fmt.Errorf("checkpoint: %s holds a %q snapshot, want %q", path, env.Kind, kind)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("checkpoint: decode %s payload of %s: %w", kind, path, err)
	}
	return nil
}

// Exists reports whether a file is present at path (regardless of whether it
// is a valid checkpoint — Load still validates).
func Exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
