package checkpoint

import (
	"path/filepath"
	"testing"
)

// FuzzCheckpointRoundTrip drives the full snapshot pipeline — a seeded,
// advanced RNG wrapped in a SearchState, saved through the atomic envelope
// writer and loaded back — and requires the restored source to replay the
// exact draw sequence the original would have produced. This is the
// bit-identical kill-and-resume contract at its smallest reproduction.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(int64(0), uint8(3), int64(17), int64(4))
	f.Add(int64(-1), uint8(0), int64(0), int64(0))
	f.Add(int64(42), uint8(63), int64(1_000_000_000), int64(12))
	f.Fuzz(func(t *testing.T, seed int64, draws uint8, evaluated, valid int64) {
		rng := NewRNG(seed)
		for i := 0; i < int(draws); i++ {
			rng.Uint64()
		}
		state := &SearchState{
			Algo:      "random",
			RNG:       rng.Clone(),
			Evaluated: evaluated,
			Valid:     valid,
		}
		path := filepath.Join(t.TempDir(), "ck.json")
		if err := Save(path, "search", state); err != nil {
			t.Fatalf("Save: %v", err)
		}
		var back SearchState
		if err := Load(path, "search", &back); err != nil {
			t.Fatalf("Load: %v", err)
		}
		if back.Algo != state.Algo || back.Evaluated != evaluated || back.Valid != valid {
			t.Fatalf("counters diverged: got %+v, want %+v", back, state)
		}
		if back.RNG == nil {
			t.Fatal("RNG state dropped in round-trip")
		}
		for i := 0; i < 16; i++ {
			if got, want := back.RNG.Uint64(), rng.Uint64(); got != want {
				t.Fatalf("draw %d diverged after round-trip: %#x != %#x", i, got, want)
			}
		}
		var wrong SearchState
		if err := Load(path, "suite", &wrong); err == nil {
			t.Fatal("Load accepted a mismatched snapshot kind")
		}
	})
}
