package checkpoint

import (
	"encoding/json"
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "search.json")

	in := SearchState{Algo: "random", Evaluated: 123, Valid: 45, NoImprove: 6, RNG: NewRNG(7)}
	if err := Save(path, KindSearch, &in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var out SearchState
	if err := Load(path, KindSearch, &out); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.Algo != in.Algo || out.Evaluated != in.Evaluated || out.Valid != in.Valid || out.NoImprove != in.NoImprove {
		t.Errorf("round trip mismatch: got %+v, want %+v", out, in)
	}
	if out.RNG == nil || out.RNG.s != in.RNG.s {
		t.Errorf("rng state mismatch: got %v, want %v", out.RNG, in.RNG)
	}
}

func TestLoadMissingFileIsNotExist(t *testing.T) {
	err := Load(filepath.Join(t.TempDir(), "absent.json"), KindSearch, &SearchState{})
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want fs.ErrNotExist, got %v", err)
	}
}

func TestLoadRejectsWrongKindSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	if err := Save(path, KindSuite, &SuiteState{}); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, KindSearch, &SearchState{}); err == nil || !strings.Contains(err.Error(), "suite") {
		t.Errorf("kind mismatch not detected: %v", err)
	}

	if err := os.WriteFile(path, []byte(`{"schema":"other","version":1,"kind":"search","payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, KindSearch, &SearchState{}); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch not detected: %v", err)
	}

	if err := os.WriteFile(path, []byte(`{"schema":"ruby/checkpoint","version":99,"kind":"search","payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, KindSearch, &SearchState{}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version not detected: %v", err)
	}
}

func TestSaveReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	for i := int64(0); i < 3; i++ {
		if err := Save(path, KindSearch, &SearchState{Algo: "random", Evaluated: i}); err != nil {
			t.Fatal(err)
		}
	}
	var out SearchState
	if err := Load(path, KindSearch, &out); err != nil {
		t.Fatal(err)
	}
	if out.Evaluated != 2 {
		t.Errorf("latest snapshot lost: evaluated = %d, want 2", out.Evaluated)
	}
	// No temp files may survive a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".checkpoint-") {
			t.Errorf("stale temp file left behind: %s", e.Name())
		}
	}
}

// The RNG must continue the exact sequence after a JSON round trip — the
// property search resumption rests on.
func TestRNGRoundTripContinuesSequence(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	restored := &RNG{}
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("sequence diverged at draw %d: %d vs %d", i, a, b)
		}
	}
}

// rand.Rand over an RNG and over a restored clone must agree on the derived
// draws the samplers actually use (Intn, Shuffle, Float64).
func TestRNGDrivesRandRandDeterministically(t *testing.T) {
	a := rand.New(NewRNG(7))
	b := rand.New(NewRNG(7).Clone())
	pa, pb := make([]int, 16), make([]int, 16)
	for i := range pa {
		pa[i], pb[i] = i, i
	}
	a.Shuffle(len(pa), func(i, j int) { pa[i], pa[j] = pa[j], pa[i] })
	b.Shuffle(len(pb), func(i, j int) { pb[i], pb[j] = pb[j], pb[i] })
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("shuffle diverged at %d: %v vs %v", i, pa, pb)
		}
	}
	for i := 0; i < 1000; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("Intn diverged at %d: %d vs %d", i, x, y)
		}
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("Float64 diverged at %d: %v vs %v", i, x, y)
		}
	}
}

func TestRNGRejectsBadState(t *testing.T) {
	r := &RNG{}
	if err := json.Unmarshal([]byte(`["0","0","0","0"]`), r); err == nil {
		t.Error("all-zero state accepted")
	}
	if err := json.Unmarshal([]byte(`["1","2","3"]`), r); err == nil {
		t.Error("short state accepted")
	}
	if err := json.Unmarshal([]byte(`["zz","2","3","4"]`), r); err == nil {
		t.Error("non-hex state accepted")
	}
}
