package checkpoint

import (
	"encoding/json"

	"ruby/internal/nest"
)

// KindSearch tags single-search snapshots (search.Searcher Snapshot/Restore).
const KindSearch = "search"

// KindSuite tags per-layer suite-progress snapshots (sweep.SuiteCheckpoint).
const KindSuite = "suite"

// KindJob tags server job records (internal/server persistence).
const KindJob = "job"

// KindShards tags distributed shard-plan state (internal/dist coordinator
// persistence: the plan plus per-shard progress and held snapshots).
const KindShards = "shards"

// TracePoint mirrors search.TracePoint (one incumbent-improvement event) in
// serialized form; the search package converts in both directions. Keeping a
// local copy avoids an import cycle — search depends on checkpoint for its
// snapshot types.
type TracePoint struct {
	Evals int64   `json:"evals"`
	Value float64 `json:"value"`
}

// SearchState is the complete serialized state of one resumable search: the
// RNG, the counters that drive the termination criteria, and the incumbent.
// Restoring it into a fresh searcher of the same algorithm over the same
// (workload, architecture, mapspace, options) continues the run as if it had
// never stopped.
//
//ruby:serialstable
type SearchState struct {
	// Algo names the searcher that wrote the snapshot ("random",
	// "hillclimb", "exhaustive", "guided"); Restore rejects a mismatch.
	Algo string `json:"algo"`
	// Done marks a search that ran to completion (resuming it is a no-op).
	Done bool `json:"done,omitempty"`
	// RNG is the serialized draw state (nil for the deterministic
	// enumeration of the exhaustive searcher).
	RNG *RNG `json:"rng,omitempty"`

	// Evaluated, Valid and NoImprove are the search counters at the
	// snapshot point: total evaluations performed, how many were valid, and
	// the consecutive-non-improving-valid run driving the paper's
	// termination criterion.
	Evaluated int64 `json:"evaluated"`
	Valid     int64 `json:"valid"`
	NoImprove int64 `json:"no_improve,omitempty"`

	// Warmed records that warm-up work preceding the main loop has run (the
	// random searcher's warm-start evaluation).
	Warmed bool `json:"warmed,omitempty"`
	// WarmupLeft is the hill-climber's remaining warm-up samples.
	WarmupLeft int `json:"warmup_left,omitempty"`
	// Fails is the hill-climber's consecutive-rejected-proposal count.
	Fails int `json:"fails,omitempty"`

	// Phase, Restarts and SinceBest are the model-guided searcher's state:
	// its current phase ("seed" or "sweep"), the perturbation restarts
	// taken, and the restarts since the incumbent last improved.
	Phase     string `json:"phase,omitempty"`
	Restarts  int64  `json:"restarts,omitempty"`
	SinceBest int64  `json:"since_best,omitempty"`
	// Cur is the guided searcher's working mapping (mapping JSON); it
	// diverges from Best after a perturbation restart.
	Cur json.RawMessage `json:"cur,omitempty"`

	// Enumerated counts mappings taken from the exhaustive enumeration;
	// EnumIndex/EnumDone are the enumerator's odometer position.
	Enumerated int64 `json:"enumerated,omitempty"`
	EnumIndex  []int `json:"enum_index,omitempty"`
	EnumDone   bool  `json:"enum_done,omitempty"`

	// Best is the incumbent mapping (mapping JSON; nil when nothing valid
	// has been found) and BestCost its full evaluated cost.
	Best     json.RawMessage `json:"best,omitempty"`
	BestCost *nest.Cost      `json:"best_cost,omitempty"`
	// Trace holds the improvement events recorded so far (only when the
	// search keeps a trace).
	Trace []TracePoint `json:"trace,omitempty"`
}

// LayerState is one completed layer inside a SuiteState: the winning mapping
// and its cost, plus the search counters, so a resumed suite reproduces its
// totals without re-searching.
type LayerState struct {
	Done      bool            `json:"done"`
	Mapping   json.RawMessage `json:"mapping,omitempty"`
	Cost      *nest.Cost      `json:"cost,omitempty"`
	Evaluated int64           `json:"evaluated,omitempty"`
	Valid     int64           `json:"valid,omitempty"`
	// PadBounds records the dimension bounds of the winning padded workload
	// variant when a padding strategy won with a variant different from the
	// original layer (empty otherwise). The resuming run re-derives the
	// variant from these bounds.
	PadBounds map[string]int `json:"pad_bounds,omitempty"`
}

// SegmentState is one fused-segment search outcome inside a SuiteState: the
// producer and consumer mappings the fused evaluation won with and its
// combined metrics, or — when Fused is false — a completed search that found
// no pair beating the per-layer baseline, so resumed runs skip the edge
// instead of re-searching it.
type SegmentState struct {
	Done  bool `json:"done"`
	Fused bool `json:"fused,omitempty"`
	// Producer and Consumer are the winning mappings (mapping JSON; empty
	// when Fused is false).
	Producer json.RawMessage `json:"producer,omitempty"`
	Consumer json.RawMessage `json:"consumer,omitempty"`
	// Cycles, EnergyPJ, EDP and ElidedWords mirror the recorded
	// nest.FusedCost; the resuming run re-evaluates the mappings and rejects
	// the entry unless they reproduce bit-for-bit.
	Cycles      float64 `json:"cycles,omitempty"`
	EnergyPJ    float64 `json:"energy_pj,omitempty"`
	EDP         float64 `json:"edp,omitempty"`
	ElidedWords float64 `json:"elided_words,omitempty"`
	Evaluated   int64   `json:"evaluated,omitempty"`
}

// SuiteState is the per-layer progress of a suite run (or of several: keys
// include architecture, strategy and search budget, so one file can back a
// whole experiment). Completed layers are skipped on resume. Segments holds
// fused-segment outcomes of network searches, keyed like layers plus the
// edge's producer->consumer pair.
//
//ruby:serialstable
type SuiteState struct {
	Layers   map[string]*LayerState   `json:"layers"`
	Segments map[string]*SegmentState `json:"segments,omitempty"`
}
