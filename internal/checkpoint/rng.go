package checkpoint

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strconv"
)

// RNG is a deterministic, serializable random source (xoshiro256**). It
// implements math/rand.Source64, so rand.New(rng) drives the existing
// samplers unchanged, and — unlike the runtime's unexported default source —
// its full state round-trips through JSON. That is what makes search
// checkpoints replayable: restoring an RNG resumes the exact draw sequence
// the interrupted run would have continued with.
//
// The 256-bit state is serialized as hexadecimal strings (JSON numbers lose
// integer precision above 2^53). An RNG is not safe for concurrent use; the
// resumable searchers draw from a single goroutine by design.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a source seeded from seed via splitmix64, the recommended
// seeding procedure for xoshiro generators (it guarantees a nonzero state
// for every seed, including 0).
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the state deterministically from seed. It implements
// math/rand.Source.
func (r *RNG) Seed(seed int64) {
	x := uint64(seed)
	for i := range r.s {
		// splitmix64 step.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Uint64 returns the next value of the sequence. It implements
// math/rand.Source64, so rand.Rand draws from it without the Int63-doubling
// fallback.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit value. It implements math/rand.Source.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Clone returns an independent copy with identical state, so a snapshot does
// not advance (or share) the live source.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// MarshalJSON encodes the state as four hexadecimal strings.
func (r *RNG) MarshalJSON() ([]byte, error) {
	words := make([]string, len(r.s))
	for i, w := range r.s {
		words[i] = strconv.FormatUint(w, 16)
	}
	return json.Marshal(words)
}

// UnmarshalJSON restores the state written by MarshalJSON.
func (r *RNG) UnmarshalJSON(data []byte) error {
	var words []string
	if err := json.Unmarshal(data, &words); err != nil {
		return fmt.Errorf("checkpoint: rng state: %w", err)
	}
	if len(words) != len(r.s) {
		return fmt.Errorf("checkpoint: rng state has %d words, want %d", len(words), len(r.s))
	}
	var s [4]uint64
	for i, w := range words {
		v, err := strconv.ParseUint(w, 16, 64)
		if err != nil {
			return fmt.Errorf("checkpoint: rng state word %d: %w", i, err)
		}
		s[i] = v
	}
	if s == ([4]uint64{}) {
		return fmt.Errorf("checkpoint: rng state is all-zero (xoshiro256** requires a nonzero state)")
	}
	r.s = s
	return nil
}
