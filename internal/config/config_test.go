package config

import (
	"os"
	"path/filepath"
	"testing"

	"ruby/internal/mapping"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

const eyerissJSON = `{
  "name": "eyeriss-from-file",
  "levels": [
    {"name": "DRAM"},
    {"name": "GLB", "capacity_kib": 128,
     "keeps": ["input", "output"],
     "fanout": {"x": 14, "y": 12, "multicast": true}},
    {"name": "PE",
     "per_role_words": {"input": 12, "output": 16, "weight": 224}}
  ]
}`

func TestParseArchEyeriss(t *testing.T) {
	a, err := ParseArch([]byte(eyerissJSON))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "eyeriss-from-file" || len(a.Levels) != 3 {
		t.Fatalf("arch = %+v", a)
	}
	if a.TotalLanes() != 168 {
		t.Errorf("lanes = %d", a.TotalLanes())
	}
	if a.Levels[1].Capacity != 65536 {
		t.Errorf("GLB capacity = %d", a.Levels[1].Capacity)
	}
	if a.Levels[1].KeepsRole(workload.Weight, false) {
		t.Error("weights should bypass the GLB")
	}
	if c, ded := a.Levels[2].RoleCapacity(workload.Weight); !ded || c != 224 {
		t.Errorf("PE weight spad = %d dedicated=%v", c, ded)
	}
	if !a.Levels[1].Fanout.Multicast {
		t.Error("multicast lost")
	}
}

func TestParseArchExtensions(t *testing.T) {
	a, err := ParseArch([]byte(`{
	  "name": "x", "mac_energy_pj": 1.0, "dram_energy_pj": 100,
	  "levels": [
	    {"name": "DRAM"},
	    {"name": "L1", "capacity_words": 512, "bandwidth_words": 4,
	     "static_pj_per_cycle": 0.5,
	     "fanout": {"x": 8, "multicast": true, "hop_energy_pj": 0.2}}
	  ]}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy.MAC() != 1.0 || a.Energy.Access(0) != 100 {
		t.Error("energy overrides lost")
	}
	l := a.Levels[1]
	if l.Capacity != 512 || l.BandwidthWords != 4 || l.StaticPJPerCycle != 0.5 {
		t.Errorf("level = %+v", l)
	}
	if l.Fanout.FanoutY != 1 {
		t.Errorf("implicit Y fanout = %d, want 1", l.Fanout.FanoutY)
	}
	if l.Fanout.HopEnergyPJ != 0.2 {
		t.Error("hop energy lost")
	}
}

func TestParseArchRejections(t *testing.T) {
	cases := []string{
		`{`,
		`{"levels": [{"name": "DRAM"}, {"name": "L1"}]}`,                                 // no name
		`{"name": "x", "levels": [{"name": "DRAM"}]}`,                                    // one level
		`{"name": "x", "levels": [{"name": "DRAM"}, {"name": "L1", "keeps": ["psum"]}]}`, // bad role
		`{"name": "x", "levels": [{"name": "DRAM"}, {"per_role_words": {"input": 12}}]}`, // unnamed level
		`{"name": "x", "levels": [{"name": "DRAM", "capacity_kib": 1}, {"name": "L1"}]}`, // bounded DRAM
	}
	for _, c := range cases {
		if _, err := ParseArch([]byte(c)); err == nil {
			t.Errorf("ParseArch(%s) succeeded", c)
		}
	}
}

func TestParseWorkloadKinds(t *testing.T) {
	conv, err := ParseWorkload([]byte(`{
	  "name": "l2", "type": "conv2d",
	  "conv": {"n":1,"m":96,"c":48,"p":27,"q":27,"r":5,"s":5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if conv.Bound("Q") != 27 || conv.MACs() != uint64(96*48*27*27*25) {
		t.Error("conv parse wrong")
	}
	mm, err := ParseWorkload([]byte(`{"name": "g", "type": "matmul", "matmul": {"m": 4, "n": 5, "k": 6}}`))
	if err != nil {
		t.Fatal(err)
	}
	if mm.MACs() != 120 {
		t.Error("matmul parse wrong")
	}
	v, err := ParseWorkload([]byte(`{"name": "v", "type": "vector1d", "d": 100}`))
	if err != nil {
		t.Fatal(err)
	}
	if v.MACs() != 100 {
		t.Error("vector parse wrong")
	}
}

func TestParseWorkloadRejections(t *testing.T) {
	cases := []string{
		`{"name": "x", "type": "conv2d"}`,
		`{"name": "x", "type": "matmul"}`,
		`{"name": "x", "type": "einsum"}`,
		`{"name": "x", "type": "vector1d", "d": 0}`,
		`nope`,
	}
	for _, c := range cases {
		if _, err := ParseWorkload([]byte(c)); err == nil {
			t.Errorf("ParseWorkload(%s) succeeded", c)
		}
	}
}

func TestParseConstraints(t *testing.T) {
	cons, err := ParseConstraints([]byte(`{
	  "spatial_x": ["Q", "M"], "spatial_y": ["R", "S", "C"],
	  "fixed_perms": true, "max_temporal_factor": 64}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cons.SpatialX) != 2 || len(cons.SpatialY) != 3 || !cons.FixedPerms || cons.MaxTemporalFactor != 64 {
		t.Errorf("constraints = %+v", cons)
	}
	if _, err := ParseConstraints([]byte(`[`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadFromFiles(t *testing.T) {
	dir := t.TempDir()
	archPath := filepath.Join(dir, "arch.json")
	wlPath := filepath.Join(dir, "wl.json")
	if err := os.WriteFile(archPath, []byte(eyerissJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wlPath, []byte(`{"name": "v", "type": "vector1d", "d": 100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := LoadArch(archPath)
	if err != nil {
		t.Fatal(err)
	}
	w, err := LoadWorkload(wlPath)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded pair must be directly usable by the cost model.
	ev, err := nest.NewEvaluator(w, a)
	if err != nil {
		t.Fatal(err)
	}
	if c := ev.Evaluate(mapping.Uniform(w, a, 0)); !c.Valid {
		t.Errorf("uniform mapping invalid on loaded arch: %s", c.Reason)
	}
	if _, err := LoadArch(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := LoadWorkload(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing workload accepted")
	}
	if _, err := LoadConstraints(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing constraints accepted")
	}
}

func TestParseWorkloadEinsum(t *testing.T) {
	w, err := ParseWorkload([]byte(`{
	  "name": "dw", "type": "einsum",
	  "einsum": {
	    "expr": "O[n,m,p,q] += I[n,m,p+r,q+s] * W[m,r,s]",
	    "bounds": {"n": 1, "m": 32, "p": 14, "q": 14, "r": 3, "s": 3}
	  }}`))
	if err != nil {
		t.Fatal(err)
	}
	if w.MACs() != uint64(32*14*14*9) {
		t.Errorf("einsum MACs = %d", w.MACs())
	}
	if !w.Tensor("I").Relevant("M") {
		t.Error("depthwise projection lost")
	}
	if _, err := ParseWorkload([]byte(`{"name": "x", "type": "einsum"}`)); err == nil {
		t.Error("einsum without block accepted")
	}
	if _, err := ParseWorkload([]byte(`{"name": "x", "type": "einsum", "einsum": {"expr": "bad", "bounds": {}}}`)); err == nil {
		t.Error("bad expression accepted")
	}
}
