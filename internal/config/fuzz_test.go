package config

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzConfigParse feeds arbitrary bytes (seeded with the real configs/
// files) to every JSON entry point. The parsers must never panic, and a nil
// error must always come with a usable value — malformed input surfaces as
// a descriptive error, not a crash or a nil deref later.
func FuzzConfigParse(f *testing.F) {
	seeds, _ := filepath.Glob(filepath.Join("..", "..", "configs", "*.json"))
	for _, p := range seeds {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"a","levels":[{"name":"L"}]}`))
	f.Add([]byte(`{"name":"w","type":"matmul","matmul":{"M":8,"N":8,"K":8}}`))
	f.Add([]byte(`{"name":"v","type":"vector1d","d":16}`))
	f.Add([]byte(`{"spatial_x":["K"],"fixed_perms":true}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if a, err := ParseArch(data); err == nil && a == nil {
			t.Fatal("ParseArch returned nil arch with nil error")
		}
		if w, err := ParseWorkload(data); err == nil && w == nil {
			t.Fatal("ParseWorkload returned nil workload with nil error")
		}
		if _, err := ParseConstraints(data); err != nil && len(data) > 0 && data[0] == '{' {
			_ = err // malformed JSON inside an object is fine; just must not panic
		}
	})
}
