// Package config loads architectures, workloads and mapspace constraints
// from JSON files — the user-defined-architecture entry point that Timeloop
// serves with YAML configs. Only the standard library is used.
//
// Example architecture:
//
//	{
//	  "name": "my-accel",
//	  "levels": [
//	    {"name": "DRAM"},
//	    {"name": "GLB", "capacity_kib": 128,
//	     "keeps": ["input", "output"],
//	     "fanout": {"x": 14, "y": 12, "multicast": true}},
//	    {"name": "PE",
//	     "per_role_words": {"input": 12, "output": 16, "weight": 224}}
//	  ]
//	}
//
// Example workload:
//
//	{"name": "conv3", "type": "conv2d",
//	 "conv": {"n": 1, "m": 128, "c": 128, "p": 28, "q": 28, "r": 3, "s": 3}}
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"ruby/internal/arch"
	"ruby/internal/energy"
	"ruby/internal/mapspace"
	"ruby/internal/workload"
)

// ArchFile is the JSON schema for an architecture.
type ArchFile struct {
	Name         string      `json:"name"`
	MACEnergyPJ  float64     `json:"mac_energy_pj,omitempty"`
	DRAMEnergyPJ float64     `json:"dram_energy_pj,omitempty"`
	SRAMScale    float64     `json:"sram_scale,omitempty"`
	Levels       []LevelFile `json:"levels"`
}

// LevelFile is the JSON schema for one storage level.
type LevelFile struct {
	Name string `json:"name"`
	// CapacityKiB and CapacityWords are alternative shared-capacity
	// spellings (words win when both are set).
	CapacityKiB   int              `json:"capacity_kib,omitempty"`
	CapacityWords int64            `json:"capacity_words,omitempty"`
	PerRoleWords  map[string]int64 `json:"per_role_words,omitempty"`
	Keeps         []string         `json:"keeps,omitempty"`
	Fanout        *FanoutFile      `json:"fanout,omitempty"`

	BandwidthWords   float64 `json:"bandwidth_words,omitempty"`
	StaticPJPerCycle float64 `json:"static_pj_per_cycle,omitempty"`
}

// FanoutFile is the JSON schema for a level's spatial network.
type FanoutFile struct {
	X           int     `json:"x"`
	Y           int     `json:"y,omitempty"`
	Multicast   bool    `json:"multicast,omitempty"`
	HopEnergyPJ float64 `json:"hop_energy_pj,omitempty"`
}

// ParseArch builds an architecture from JSON bytes.
func ParseArch(data []byte) (*arch.Arch, error) {
	var f ArchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("config: arch: %w", err)
	}
	if f.Name == "" {
		return nil, fmt.Errorf("config: arch: missing name")
	}
	a := &arch.Arch{
		Name: f.Name,
		Energy: energy.Table{
			MACPJ:     f.MACEnergyPJ,
			DRAMPJ:    f.DRAMEnergyPJ,
			SRAMScale: f.SRAMScale,
		},
	}
	for i, lf := range f.Levels {
		l := arch.Level{
			Name:             lf.Name,
			BandwidthWords:   lf.BandwidthWords,
			StaticPJPerCycle: lf.StaticPJPerCycle,
		}
		l.Capacity = lf.CapacityWords
		if l.Capacity == 0 && lf.CapacityKiB > 0 {
			l.Capacity = arch.Words(lf.CapacityKiB)
		}
		if lf.PerRoleWords != nil {
			l.PerRole = make(map[workload.Role]int64, len(lf.PerRoleWords))
			for name, words := range lf.PerRoleWords {
				r, err := workload.ParseRole(name)
				if err != nil {
					return nil, fmt.Errorf("config: arch level %d: %w", i, err)
				}
				l.PerRole[r] = words
			}
		}
		if lf.Keeps != nil {
			l.Keeps = make(map[workload.Role]bool, len(lf.Keeps))
			for _, name := range lf.Keeps {
				r, err := workload.ParseRole(name)
				if err != nil {
					return nil, fmt.Errorf("config: arch level %d: %w", i, err)
				}
				l.Keeps[r] = true
			}
		}
		if lf.Fanout != nil {
			l.Fanout = arch.Network{
				FanoutX:     lf.Fanout.X,
				FanoutY:     lf.Fanout.Y,
				Multicast:   lf.Fanout.Multicast,
				HopEnergyPJ: lf.Fanout.HopEnergyPJ,
			}
			if l.Fanout.FanoutX == 0 {
				l.Fanout.FanoutX = 1
			}
			if l.Fanout.FanoutY == 0 {
				l.Fanout.FanoutY = 1
			}
		}
		a.Levels = append(a.Levels, l)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return a, nil
}

// LoadArch reads and parses an architecture file.
func LoadArch(path string) (*arch.Arch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return ParseArch(data)
}

// WorkloadFile is the JSON schema for a workload.
type WorkloadFile struct {
	Name string `json:"name"`
	// Type is "conv2d", "matmul", "vector1d" or "einsum".
	Type   string      `json:"type"`
	Conv   *ConvFile   `json:"conv,omitempty"`
	Matmul *MatmulFile `json:"matmul,omitempty"`
	D      int         `json:"d,omitempty"` // vector1d size
	// Einsum workloads give an extended-Einsum expression plus per-dimension
	// bounds, e.g. {"expr": "O[n,m,p,q] += I[n,m,p+r,q+s] * W[m,r,s]",
	// "bounds": {"N":1, "M":32, "P":14, "Q":14, "R":3, "S":3}}.
	Einsum *EinsumFile `json:"einsum,omitempty"`
}

// EinsumFile is an extended-Einsum workload description.
type EinsumFile struct {
	Expr   string         `json:"expr"`
	Bounds map[string]int `json:"bounds"`
}

// ConvFile mirrors workload.Conv2DParams in snake_case JSON.
type ConvFile struct {
	N, M, C, P, Q, R, S int
	StrideH             int `json:"stride_h,omitempty"`
	StrideW             int `json:"stride_w,omitempty"`
	DilationH           int `json:"dilation_h,omitempty"`
	DilationW           int `json:"dilation_w,omitempty"`
}

// MatmulFile is a GEMM shape.
type MatmulFile struct {
	M, N, K int
}

// ParseWorkload builds a workload from JSON bytes.
func ParseWorkload(data []byte) (*workload.Workload, error) {
	var f WorkloadFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("config: workload: %w", err)
	}
	switch f.Type {
	case "conv2d":
		if f.Conv == nil {
			return nil, fmt.Errorf("config: workload %q: conv2d needs a conv block", f.Name)
		}
		return workload.Conv2D(workload.Conv2DParams{
			Name: f.Name,
			N:    f.Conv.N, M: f.Conv.M, C: f.Conv.C,
			P: f.Conv.P, Q: f.Conv.Q, R: f.Conv.R, S: f.Conv.S,
			StrideH: f.Conv.StrideH, StrideW: f.Conv.StrideW,
			DilationH: f.Conv.DilationH, DilationW: f.Conv.DilationW,
		})
	case "matmul":
		if f.Matmul == nil {
			return nil, fmt.Errorf("config: workload %q: matmul needs a matmul block", f.Name)
		}
		return workload.Matmul(f.Name, f.Matmul.M, f.Matmul.N, f.Matmul.K)
	case "vector1d":
		return workload.Vector1D(f.Name, f.D)
	case "einsum":
		if f.Einsum == nil {
			return nil, fmt.Errorf("config: workload %q: einsum needs an einsum block", f.Name)
		}
		bounds := make(map[string]int, len(f.Einsum.Bounds))
		for d, b := range f.Einsum.Bounds {
			bounds[strings.ToUpper(d)] = b
		}
		return workload.ParseEinsum(f.Name, f.Einsum.Expr, bounds)
	default:
		return nil, fmt.Errorf("config: workload %q: unknown type %q", f.Name, f.Type)
	}
}

// LoadWorkload reads and parses a workload file.
func LoadWorkload(path string) (*workload.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return ParseWorkload(data)
}

// ConstraintsFile is the JSON schema for mapspace constraints.
type ConstraintsFile struct {
	SpatialX          []string `json:"spatial_x,omitempty"`
	SpatialY          []string `json:"spatial_y,omitempty"`
	FixedPerms        bool     `json:"fixed_perms,omitempty"`
	MaxTemporalFactor int      `json:"max_temporal_factor,omitempty"`
}

// ParseConstraints builds constraints from JSON bytes.
func ParseConstraints(data []byte) (mapspace.Constraints, error) {
	var f ConstraintsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return mapspace.Constraints{}, fmt.Errorf("config: constraints: %w", err)
	}
	return mapspace.Constraints{
		SpatialX:          f.SpatialX,
		SpatialY:          f.SpatialY,
		FixedPerms:        f.FixedPerms,
		MaxTemporalFactor: f.MaxTemporalFactor,
	}, nil
}

// LoadConstraints reads and parses a constraints file.
func LoadConstraints(path string) (mapspace.Constraints, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return mapspace.Constraints{}, fmt.Errorf("config: %w", err)
	}
	return ParseConstraints(data)
}
