package workload

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseEinsum builds a Workload from an extended-Einsum expression of the
// form Timeloop's problem specs describe, e.g.
//
//	O[n,m,p,q] += I[n,c,2p+r,q+s] * W[m,c,r,s]
//
// The left-hand tensor is the output. Index variables are single
// identifiers (case-insensitive; dimensions are named by their upper-case
// form) and coordinates are sums of optionally scaled variables ("2p",
// "2*p" and "p" are all valid terms). bounds supplies every dimension's
// loop bound, keyed by upper-case name.
//
// Operand roles: the first right-hand tensor is the Input, subsequent ones
// are Weights. This matches the paper's workloads (convolutions and GEMMs);
// exotic multi-input Einsums share the weight buffers.
func ParseEinsum(name, expr string, bounds map[string]int) (*Workload, error) {
	lhs, rhs, ok := strings.Cut(expr, "+=")
	if !ok {
		return nil, fmt.Errorf("workload: einsum %q: missing '+='", expr)
	}
	out, err := parseTensorRef(lhs)
	if err != nil {
		return nil, fmt.Errorf("workload: einsum %q: %w", expr, err)
	}
	out.Role = Output

	// A '*' inside a coordinate (e.g. "2*p") stays within brackets, so only
	// split on top-level separators.
	parts, err := splitTopLevel(rhs, '*')
	if err != nil {
		return nil, fmt.Errorf("workload: einsum %q: %w", expr, err)
	}
	var tensors []Tensor
	for i, part := range parts {
		t, err := parseTensorRef(part)
		if err != nil {
			return nil, fmt.Errorf("workload: einsum %q: %w", expr, err)
		}
		if i == 0 {
			t.Role = Input
		} else {
			t.Role = Weight
		}
		tensors = append(tensors, t)
	}
	if len(tensors) == 0 {
		return nil, fmt.Errorf("workload: einsum %q: no operands", expr)
	}
	tensors = append(tensors, out)

	// Collect dimensions in first-appearance order.
	var dims []Dim
	seen := map[string]bool{}
	for _, t := range tensors {
		for _, c := range t.Coords {
			for _, term := range c.Terms {
				if seen[term.Dim] {
					continue
				}
				seen[term.Dim] = true
				b, ok := bounds[term.Dim]
				if !ok {
					return nil, fmt.Errorf("workload: einsum %q: no bound for dimension %s", expr, term.Dim)
				}
				dims = append(dims, Dim{Name: term.Dim, Bound: b})
			}
		}
	}
	for d := range bounds {
		if !seen[d] {
			return nil, fmt.Errorf("workload: einsum %q: bound for unused dimension %s", expr, d)
		}
	}
	if name == "" {
		name = strings.TrimSpace(expr)
	}
	return New(name, dims, tensors)
}

// MustParseEinsum is ParseEinsum, panicking on error.
func MustParseEinsum(name, expr string, bounds map[string]int) *Workload {
	w, err := ParseEinsum(name, expr, bounds)
	if err != nil {
		panic(err)
	}
	return w
}

// splitTopLevel splits s on sep occurrences outside square brackets.
func splitTopLevel(s string, sep rune) ([]string, error) {
	var parts []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ']' at %d", i)
			}
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '['")
	}
	parts = append(parts, s[start:])
	return parts, nil
}

// parseTensorRef parses NAME[coord,coord,...] or NAME[coord][coord]...
func parseTensorRef(s string) (Tensor, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '[')
	if open <= 0 || !strings.HasSuffix(s, "]") {
		return Tensor{}, fmt.Errorf("bad tensor reference %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if !isIdent(name) {
		return Tensor{}, fmt.Errorf("bad tensor name %q", name)
	}
	body := s[open:len(s)]

	// Normalize "][", then split on commas.
	body = strings.TrimPrefix(body, "[")
	body = strings.TrimSuffix(body, "]")
	body = strings.ReplaceAll(body, "][", ",")
	t := Tensor{Name: name}
	for _, axis := range strings.Split(body, ",") {
		c, err := parseCoord(axis)
		if err != nil {
			return Tensor{}, fmt.Errorf("tensor %s: %w", name, err)
		}
		t.Coords = append(t.Coords, c)
	}
	return t, nil
}

// parseCoord parses a sum of scaled index variables: "2p+r", "p + r", "q".
func parseCoord(s string) (Coord, error) {
	var c Coord
	for _, termStr := range strings.Split(s, "+") {
		term, err := parseTerm(termStr)
		if err != nil {
			return Coord{}, err
		}
		c.Terms = append(c.Terms, term)
	}
	if len(c.Terms) == 0 {
		return Coord{}, fmt.Errorf("empty coordinate %q", s)
	}
	return c, nil
}

// parseTerm parses [INT]['*']VAR.
func parseTerm(s string) (CoordTerm, error) {
	s = strings.TrimSpace(strings.ReplaceAll(s, " ", ""))
	s = strings.ReplaceAll(s, "*", "")
	if s == "" {
		return CoordTerm{}, fmt.Errorf("empty term")
	}
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	stride := 1
	if i > 0 {
		v, err := strconv.Atoi(s[:i])
		if err != nil || v < 1 {
			return CoordTerm{}, fmt.Errorf("bad stride in term %q", s)
		}
		stride = v
	}
	v := s[i:]
	if !isIdent(v) {
		return CoordTerm{}, fmt.Errorf("bad index variable %q in term %q", v, s)
	}
	return CoordTerm{Dim: strings.ToUpper(v), Stride: stride}, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return unicode.IsLetter(rune(s[0]))
}
