package workload

import "fmt"

// Conv2DParams specifies a 2-D convolution layer in the 7-loop form of the
// paper's Fig. 1: N batches, M output channels, C input channels, P×Q output
// feature map, R×S filter.
type Conv2DParams struct {
	Name string
	N    int // batch
	M    int // output channels
	C    int // input channels
	P    int // output height
	Q    int // output width
	R    int // filter height
	S    int // filter width

	StrideH, StrideW     int // default 1
	DilationH, DilationW int // default 1
}

// InputH returns the input height implied by the parameters.
func (p Conv2DParams) InputH() int {
	sh, dh := defaults(p.StrideH), defaults(p.DilationH)
	return sh*(p.P-1) + dh*(p.R-1) + 1
}

// InputW returns the input width implied by the parameters.
func (p Conv2DParams) InputW() int {
	sw, dw := defaults(p.StrideW), defaults(p.DilationW)
	return sw*(p.Q-1) + dw*(p.S-1) + 1
}

func defaults(v int) int {
	if v == 0 {
		return 1
	}
	return v
}

// Conv2D builds the 7-dimensional convolution workload
//
//	O[n][m][p][q] += I[n][c][sh*p+dh*r][sw*q+dw*s] * W[m][c][r][s]
func Conv2D(p Conv2DParams) (*Workload, error) {
	for _, d := range []struct {
		name string
		v    int
	}{{"N", p.N}, {"M", p.M}, {"C", p.C}, {"P", p.P}, {"Q", p.Q}, {"R", p.R}, {"S", p.S}} {
		if d.v < 1 {
			return nil, fmt.Errorf("workload: Conv2D %q: %s = %d < 1", p.Name, d.name, d.v)
		}
	}
	sh, sw := defaults(p.StrideH), defaults(p.StrideW)
	dh, dw := defaults(p.DilationH), defaults(p.DilationW)
	dims := []Dim{
		{"N", p.N}, {"M", p.M}, {"C", p.C},
		{"P", p.P}, {"Q", p.Q}, {"R", p.R}, {"S", p.S},
	}
	tensors := []Tensor{
		{
			Name: "I", Role: Input,
			Coords: []Coord{
				{Terms: []CoordTerm{{"N", 1}}},
				{Terms: []CoordTerm{{"C", 1}}},
				{Terms: []CoordTerm{{"P", sh}, {"R", dh}}},
				{Terms: []CoordTerm{{"Q", sw}, {"S", dw}}},
			},
		},
		{
			Name: "W", Role: Weight,
			Coords: []Coord{
				{Terms: []CoordTerm{{"M", 1}}},
				{Terms: []CoordTerm{{"C", 1}}},
				{Terms: []CoordTerm{{"R", 1}}},
				{Terms: []CoordTerm{{"S", 1}}},
			},
		},
		{
			Name: "O", Role: Output,
			Coords: []Coord{
				{Terms: []CoordTerm{{"N", 1}}},
				{Terms: []CoordTerm{{"M", 1}}},
				{Terms: []CoordTerm{{"P", 1}}},
				{Terms: []CoordTerm{{"Q", 1}}},
			},
		},
	}
	name := p.Name
	if name == "" {
		name = fmt.Sprintf("conv_n%d_m%d_c%d_p%d_q%d_r%d_s%d", p.N, p.M, p.C, p.P, p.Q, p.R, p.S)
	}
	return New(name, dims, tensors)
}

// MustConv2D is Conv2D, panicking on error.
func MustConv2D(p Conv2DParams) *Workload {
	w, err := Conv2D(p)
	if err != nil {
		panic(err)
	}
	return w
}

// Conv2DFromInput builds a convolution from input-side geometry: input
// height/width, filter size, stride and symmetric padding, inferring the
// output feature-map dimensions with the standard floor formula. This is the
// form layer tables (DeepBench, framework exports) usually come in.
func Conv2DFromInput(name string, n, m, c, inH, inW, r, s, stride, pad int) (*Workload, error) {
	if stride < 1 {
		return nil, fmt.Errorf("workload: Conv2DFromInput %q: stride %d < 1", name, stride)
	}
	if pad < 0 {
		return nil, fmt.Errorf("workload: Conv2DFromInput %q: pad %d < 0", name, pad)
	}
	p := (inH+2*pad-r)/stride + 1
	q := (inW+2*pad-s)/stride + 1
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("workload: Conv2DFromInput %q: filter %dx%d does not fit input %dx%d (pad %d)",
			name, r, s, inH, inW, pad)
	}
	return Conv2D(Conv2DParams{
		Name: name, N: n, M: m, C: c, P: p, Q: q, R: r, S: s,
		StrideH: stride, StrideW: stride,
	})
}

// Matmul builds the GEMM workload Z[m][n] += A[m][k] * B[k][n].
func Matmul(name string, m, n, k int) (*Workload, error) {
	if m < 1 || n < 1 || k < 1 {
		return nil, fmt.Errorf("workload: Matmul %q: bounds (%d,%d,%d) must be >= 1", name, m, n, k)
	}
	if name == "" {
		name = fmt.Sprintf("matmul_m%d_n%d_k%d", m, n, k)
	}
	dims := []Dim{{"M", m}, {"N", n}, {"K", k}}
	tensors := []Tensor{
		{Name: "A", Role: Input, Coords: []Coord{
			{Terms: []CoordTerm{{"M", 1}}},
			{Terms: []CoordTerm{{"K", 1}}},
		}},
		{Name: "B", Role: Weight, Coords: []Coord{
			{Terms: []CoordTerm{{"K", 1}}},
			{Terms: []CoordTerm{{"N", 1}}},
		}},
		{Name: "Z", Role: Output, Coords: []Coord{
			{Terms: []CoordTerm{{"M", 1}}},
			{Terms: []CoordTerm{{"N", 1}}},
		}},
	}
	return New(name, dims, tensors)
}

// MustMatmul is Matmul, panicking on error.
func MustMatmul(name string, m, n, k int) *Workload {
	w, err := Matmul(name, m, n, k)
	if err != nil {
		panic(err)
	}
	return w
}

// Vector1D builds the paper's Section II-D toy problem: distribute a
// D-element tensor across processing elements, Z[x] += X[x]. One dimension,
// one input, one output.
func Vector1D(name string, d int) (*Workload, error) {
	if d < 1 {
		return nil, fmt.Errorf("workload: Vector1D %q: D = %d < 1", name, d)
	}
	if name == "" {
		name = fmt.Sprintf("vector1d_%d", d)
	}
	dims := []Dim{{"X", d}}
	tensors := []Tensor{
		{Name: "X", Role: Input, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}},
		{Name: "Z", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}},
	}
	return New(name, dims, tensors)
}

// MustVector1D is Vector1D, panicking on error.
func MustVector1D(name string, d int) *Workload {
	w, err := Vector1D(name, d)
	if err != nil {
		panic(err)
	}
	return w
}

// Dense builds a fully connected layer as a batch-1 GEMM: out channels M,
// in channels C. It is the conv 1x1x1 degenerate expressed as Matmul so
// dense layers share the GEMM dimension names.
func Dense(name string, m, c int) (*Workload, error) {
	return Matmul(name, m, 1, c)
}
