package workload

import "testing"

func TestDimIDSingleByteNames(t *testing.T) {
	// Every built-in workload family uses distinct single-byte dimension
	// names, so the byte-table fast path must be active and agree with
	// declaration order.
	w := MustConv2D(Conv2DParams{N: 2, M: 4, C: 4, P: 5, Q: 5, R: 3, S: 3})
	for i, d := range w.Dims {
		if got := w.DimID(d.Name); got != int16(i) {
			t.Errorf("DimID(%q) = %d, want %d", d.Name, got, i)
		}
	}
	if got := w.DimID("Z"); got != -1 {
		t.Errorf("DimID of unknown dim = %d, want -1", got)
	}
	if got := w.DimID("NK"); got != -1 {
		t.Errorf("DimID of multi-byte name = %d, want -1", got)
	}
	if got := w.DimID(""); got != -1 {
		t.Errorf("DimID of empty name = %d, want -1", got)
	}
}

func TestDimIDLinearFallback(t *testing.T) {
	// Multi-byte dimension names disable the byte table; DimID must fall
	// back to a scan with identical results.
	w := MustNew("wide",
		[]Dim{{"row", 8}, {"col", 12}},
		[]Tensor{
			{Name: "A", Role: Input, Coords: []Coord{
				{Terms: []CoordTerm{{"row", 1}}},
				{Terms: []CoordTerm{{"col", 1}}},
			}},
			{Name: "B", Role: Output, Coords: []Coord{
				{Terms: []CoordTerm{{"row", 1}}},
				{Terms: []CoordTerm{{"col", 1}}},
			}},
		})
	if w.byteID != nil {
		t.Fatal("byte table built for multi-byte dim names")
	}
	if got := w.DimID("row"); got != 0 {
		t.Errorf("DimID(row) = %d, want 0", got)
	}
	if got := w.DimID("col"); got != 1 {
		t.Errorf("DimID(col) = %d, want 1", got)
	}
	if got := w.DimID("r"); got != -1 {
		t.Errorf("DimID of prefix = %d, want -1", got)
	}
}
