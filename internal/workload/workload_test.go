package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConv2DStructure(t *testing.T) {
	w := MustConv2D(Conv2DParams{Name: "l", N: 1, M: 96, C: 48, P: 27, Q: 27, R: 5, S: 5})
	if got := w.MACs(); got != uint64(96*48*27*27*5*5) {
		t.Errorf("MACs = %d", got)
	}
	if len(w.Tensors) != 3 {
		t.Fatalf("tensors = %d", len(w.Tensors))
	}
	if w.Output().Name != "O" {
		t.Errorf("output = %q", w.Output().Name)
	}
	red := w.ReductionDims()
	want := map[string]bool{"C": true, "R": true, "S": true}
	if len(red) != 3 {
		t.Fatalf("reduction dims = %v", red)
	}
	for _, d := range red {
		if !want[d] {
			t.Errorf("unexpected reduction dim %q", d)
		}
	}
}

func TestConv2DInputHalo(t *testing.T) {
	w := MustConv2D(Conv2DParams{N: 1, M: 1, C: 64, P: 26, Q: 26, R: 3, S: 3})
	in := w.Tensor("I")
	// Full input: 26+3-1 = 28 on each spatial axis.
	if got := w.Size(in); got != int64(64*28*28) {
		t.Errorf("input size = %d, want %d", got, 64*28*28)
	}
	// A tile of 7 output columns with the full 3-wide filter touches 9 input
	// columns.
	vol := in.TileVolume(map[string]int{"Q": 7, "S": 3, "P": 1, "R": 1, "C": 1, "N": 1})
	if vol != 9 {
		t.Errorf("halo tile volume = %d, want 9", vol)
	}
}

func TestConv2DStrided(t *testing.T) {
	// ResNet-50 conv1: 7x7 stride 2 over 224x224 -> P=Q=112.
	p := Conv2DParams{N: 1, M: 64, C: 3, P: 112, Q: 112, R: 7, S: 7, StrideH: 2, StrideW: 2}
	if p.InputH() != 229 { // 2*111 + 6 + 1
		t.Errorf("InputH = %d", p.InputH())
	}
	w := MustConv2D(p)
	in := w.Tensor("I")
	vol := in.TileVolume(map[string]int{"P": 4, "R": 7})
	// 1 + 2*(4-1) + 1*(7-1) = 13 rows, 1 col, 1 chan.
	if vol != 13 {
		t.Errorf("strided halo volume = %d, want 13", vol)
	}
}

func TestMatmul(t *testing.T) {
	w := MustMatmul("mm", 100, 100, 100)
	if w.MACs() != 1000000 {
		t.Errorf("MACs = %d", w.MACs())
	}
	if got := w.Size(w.Tensor("A")); got != 10000 {
		t.Errorf("A size = %d", got)
	}
	if rd := w.ReductionDims(); len(rd) != 1 || rd[0] != "K" {
		t.Errorf("reduction dims = %v", rd)
	}
	if w.TensorByRole(Weight).Name != "B" {
		t.Errorf("weight tensor = %q", w.TensorByRole(Weight).Name)
	}
}

func TestVector1D(t *testing.T) {
	w := MustVector1D("toy", 100)
	if w.MACs() != 100 {
		t.Errorf("MACs = %d", w.MACs())
	}
	if w.TotalFootprint() != 200 {
		t.Errorf("footprint = %d", w.TotalFootprint())
	}
	if len(w.ReductionDims()) != 0 {
		t.Errorf("reduction dims = %v", w.ReductionDims())
	}
}

func TestDense(t *testing.T) {
	w, err := Dense("fc", 1000, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if w.MACs() != 1000*2048 {
		t.Errorf("MACs = %d", w.MACs())
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		dims    []Dim
		tensors []Tensor
	}{
		{"no dims", nil, []Tensor{{Name: "Z", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}}}},
		{"dup dim", []Dim{{"X", 2}, {"X", 3}}, []Tensor{{Name: "Z", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}}}},
		{"zero bound", []Dim{{"X", 0}}, []Tensor{{Name: "Z", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}}}},
		{"no tensors", []Dim{{"X", 2}}, nil},
		{"no output", []Dim{{"X", 2}}, []Tensor{{Name: "A", Role: Input, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}}}},
		{"two outputs", []Dim{{"X", 2}}, []Tensor{
			{Name: "Z", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}},
			{Name: "Y", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}},
		}},
		{"unknown dim", []Dim{{"X", 2}}, []Tensor{{Name: "Z", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"Y", 1}}}}}}},
		{"zero stride", []Dim{{"X", 2}}, []Tensor{{Name: "Z", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"X", 0}}}}}}},
		{"dup tensor", []Dim{{"X", 2}}, []Tensor{
			{Name: "Z", Role: Input, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}},
			{Name: "Z", Role: Output, Coords: []Coord{{Terms: []CoordTerm{{"X", 1}}}}},
		}},
		{"empty coord", []Dim{{"X", 2}}, []Tensor{{Name: "Z", Role: Output, Coords: []Coord{{}}}}},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.dims, c.tensors); err == nil {
			t.Errorf("New(%s) succeeded, want error", c.name)
		}
	}
}

func TestBuilderRejections(t *testing.T) {
	if _, err := Conv2D(Conv2DParams{N: 1, M: 0, C: 1, P: 1, Q: 1, R: 1, S: 1}); err == nil {
		t.Error("Conv2D with M=0 succeeded")
	}
	if _, err := Matmul("", 0, 1, 1); err == nil {
		t.Error("Matmul with M=0 succeeded")
	}
	if _, err := Vector1D("", 0); err == nil {
		t.Error("Vector1D with D=0 succeeded")
	}
}

func TestBoundPanicsOnUnknown(t *testing.T) {
	w := MustVector1D("", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Bound(unknown) did not panic")
		}
	}()
	w.Bound("nope")
}

func TestRelevance(t *testing.T) {
	w := MustConv2D(Conv2DParams{N: 2, M: 4, C: 3, P: 8, Q: 8, R: 3, S: 3})
	in := w.Tensor("I")
	for _, d := range []string{"N", "C", "P", "Q", "R", "S"} {
		if !in.Relevant(d) {
			t.Errorf("I should be relevant to %s", d)
		}
	}
	if in.Relevant("M") {
		t.Error("I should not be relevant to M")
	}
	wt := w.Tensor("W")
	if wt.Relevant("P") || wt.Relevant("Q") || wt.Relevant("N") {
		t.Error("W relevance wrong")
	}
	rel := wt.RelevantDims()
	if len(rel) != 4 {
		t.Errorf("W relevant dims = %v", rel)
	}
}

func TestStringRendering(t *testing.T) {
	w := MustMatmul("mm", 2, 3, 4)
	s := w.String()
	for _, frag := range []string{"for m in [0:2)", "for k in [0:4)", "Z[m][n] += A[m][k] * B[k][n]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q in:\n%s", frag, s)
		}
	}
	conv := MustConv2D(Conv2DParams{N: 1, M: 2, C: 3, P: 4, Q: 4, R: 3, S: 3, StrideH: 2, StrideW: 2})
	cs := conv.String()
	if !strings.Contains(cs, "I[n][c][2*p+r][2*q+s]") {
		t.Errorf("conv String() missing strided input ref:\n%s", cs)
	}
}

func TestScale(t *testing.T) {
	w := MustMatmul("mm", 10, 10, 10)
	s, err := w.Scale(map[string]int{"M": 16})
	if err != nil {
		t.Fatal(err)
	}
	if s.Bound("M") != 16 || s.Bound("N") != 10 {
		t.Errorf("scaled bounds M=%d N=%d", s.Bound("M"), s.Bound("N"))
	}
	if w.Bound("M") != 10 {
		t.Error("Scale mutated the original workload")
	}
	if _, err := w.Scale(map[string]int{"Q": 2}); err == nil {
		t.Error("Scale with unknown dim succeeded")
	}
}

func TestTileVolumeProperties(t *testing.T) {
	w := MustConv2D(Conv2DParams{N: 1, M: 8, C: 8, P: 16, Q: 16, R: 3, S: 3})
	in := w.Tensor("I")
	// Property: tile volume is monotone in every dimension extent and the
	// full-bounds volume equals Size.
	f := func(p, q, r, s uint8) bool {
		tp := int(p%16) + 1
		tq := int(q%16) + 1
		tr := int(r%3) + 1
		ts := int(s%3) + 1
		v1 := in.TileVolume(map[string]int{"P": tp, "Q": tq, "R": tr, "S": ts})
		v2 := in.TileVolume(map[string]int{"P": tp + 1, "Q": tq, "R": tr, "S": ts})
		return v2 >= v1 && v1 >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	full := map[string]int{"N": 1, "C": 8, "P": 16, "Q": 16, "R": 3, "S": 3}
	if in.TileVolume(full) != w.Size(in) {
		t.Error("full tile volume != Size")
	}
}

func TestMissingTileDimsDefaultToOne(t *testing.T) {
	w := MustMatmul("", 5, 6, 7)
	a := w.Tensor("A")
	if got := a.TileVolume(nil); got != 1 {
		t.Errorf("TileVolume(nil) = %d, want 1", got)
	}
	if got := a.TileVolume(map[string]int{"M": 5}); got != 5 {
		t.Errorf("TileVolume(M=5) = %d, want 5", got)
	}
}

func TestConv2DFromInput(t *testing.T) {
	// ResNet conv1: 224x224 input, 7x7 stride 2 pad 3 -> 112x112 output.
	w, err := Conv2DFromInput("c1", 1, 64, 3, 224, 224, 7, 7, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Bound("P") != 112 || w.Bound("Q") != 112 {
		t.Errorf("output = %dx%d, want 112x112", w.Bound("P"), w.Bound("Q"))
	}
	// VGG 3x3 stride 1 pad 1 preserves resolution.
	w2, err := Conv2DFromInput("c2", 1, 64, 64, 56, 56, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Bound("P") != 56 {
		t.Errorf("same-pad output = %d", w2.Bound("P"))
	}
	for _, bad := range []struct{ inH, r, stride, pad int }{
		{4, 7, 1, 0}, {10, 3, 0, 0}, {10, 3, 1, -1},
	} {
		if _, err := Conv2DFromInput("x", 1, 1, 1, bad.inH, bad.inH, bad.r, bad.r, bad.stride, bad.pad); err == nil {
			t.Errorf("Conv2DFromInput(%+v) succeeded", bad)
		}
	}
}
