package workload

import (
	"strings"
	"testing"
)

// FuzzParseEinsum asserts the parser never panics and that accepted
// expressions yield structurally valid workloads. Run with
// `go test -fuzz=FuzzParseEinsum ./internal/workload` to explore; the seed
// corpus runs in every normal `go test`.
func FuzzParseEinsum(f *testing.F) {
	seeds := []string{
		"O[n,m,p,q] += I[n,c,2p+r,q+s] * W[m,c,r,s]",
		"Z[m][n] += A[m][k] * B[k][n]",
		"Z[x] += X[x]",
		"O[p] += I[2*p+r] * W[r]",
		"Z[m,n] += A[m,k",
		"Z[m,n] = A[m,k]",
		"[] += []",
		"Z[m,n] += A[0m] * B[n]",
		"Z[m+n] += A[m] * B[n]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		// Bound the dimension count implied by the expression so bounds can
		// be supplied generically: give every plausible identifier bound 4.
		bounds := map[string]int{}
		for _, tok := range strings.FieldsFunc(expr, func(r rune) bool {
			return !('a' <= r && r <= 'z' || 'A' <= r && r <= 'Z' || '0' <= r && r <= '9' || r == '_')
		}) {
			up := strings.ToUpper(tok)
			if up != "" && up[0] >= 'A' && up[0] <= 'Z' {
				bounds[up] = 4
			}
		}
		w, err := ParseEinsum("fuzz", expr, bounds)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := w.Validate(); verr != nil {
			// ParseEinsum may accept an expression whose bounds map includes
			// identifiers it treats as tensor names; those surface as unused
			// bounds errors before this point, so a workload that parses
			// must validate.
			t.Fatalf("accepted workload fails validation: %v (expr %q)", verr, expr)
		}
		if w.MACs() == 0 {
			t.Fatalf("accepted workload has zero MACs (expr %q)", expr)
		}
	})
}
