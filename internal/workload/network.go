package workload

import (
	"fmt"
	"sort"
)

// Node is one layer of a Network: a workload plus the structural repeat
// count of suite accounting (how many instances of this layer the real
// network executes).
//
//ruby:serialstable
type Node struct {
	Name string `json:"name"`
	// Repeat is the instance count for whole-network totals; 0 means 1.
	Repeat int       `json:"repeat,omitempty"`
	Work   *Workload `json:"work"`
}

// Repeats returns the node's instance count, treating the zero value as 1.
func (nd *Node) Repeats() int {
	if nd.Repeat < 1 {
		return 1
	}
	return nd.Repeat
}

// Edge declares that one node's output tensor feeds another node's input
// tensor, with an explicit dimension correspondence: Dims maps each producer
// dimension indexing the output tensor to the consumer dimension that
// addresses the same data in the input tensor (M→C for conv stacks, M→M and
// N→K for GEMM stacks).
//
// The correspondence is validated against the consumer's coordinate strides:
// for every pair (dp → dc) the producer bound must equal stride(dc)·bound(dc),
// where stride(dc) is dc's coefficient in the input tensor's coordinate
// (2 for a stride-2 consumer's spatial dims, 1 otherwise). Halo overhang from
// sliding-window coordinates (dilation·(R−1) extra input rows) is treated as
// zero padding: the producer never materializes it, matching the usual
// same-padding convolution stacking.
//
//ruby:serialstable
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Tensor names the producer's output tensor; empty selects its sole
	// output.
	Tensor string `json:"tensor,omitempty"`
	// Input names the consumer's fed tensor; empty selects its first
	// Input-role tensor.
	Input string `json:"input,omitempty"`
	// Dims maps producer dimension → consumer dimension.
	Dims map[string]string `json:"dims"`
}

// Network is a workload graph: layers as nodes, producer→consumer tensor
// flows as edges. An edge-free Network degenerates to a plain layer list
// (per-layer mapping); edges are what make fused multi-layer mapping
// expressible at all.
//
//ruby:serialstable
type Network struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges,omitempty"`
}

// NewNetwork builds a Network and validates it.
func NewNetwork(name string, nodes []Node, edges []Edge) (*Network, error) {
	n := &Network{Name: name, Nodes: nodes, Edges: edges}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustNetwork is NewNetwork, panicking on error. Intended for package-level
// presets.
func MustNetwork(name string, nodes []Node, edges []Edge) *Network {
	n, err := NewNetwork(name, nodes, edges)
	if err != nil {
		panic(err)
	}
	return n
}

// NodeIndex returns the index of the named node, or -1.
func (n *Network) NodeIndex(name string) int {
	for i := range n.Nodes {
		if n.Nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// NodeByName returns the named node, or nil.
func (n *Network) NodeByName(name string) *Node {
	if i := n.NodeIndex(name); i >= 0 {
		return &n.Nodes[i]
	}
	return nil
}

// EdgesFrom returns the indices of edges leaving the named node.
func (n *Network) EdgesFrom(name string) []int {
	var out []int
	for i := range n.Edges {
		if n.Edges[i].From == name {
			out = append(out, i)
		}
	}
	return out
}

// EdgesInto returns the indices of edges arriving at the named node.
func (n *Network) EdgesInto(name string) []int {
	var out []int
	for i := range n.Edges {
		if n.Edges[i].To == name {
			out = append(out, i)
		}
	}
	return out
}

// DimPair is one resolved dimension correspondence of an edge binding:
// producer dimension ProdDim feeds consumer dimension ConsDim, whose
// coordinate stride in the consumer's input tensor is Stride.
type DimPair struct {
	ProdDim, ConsDim string
	ProdID, ConsID   int16
	Stride           int
}

// EdgeBinding is an Edge resolved against its endpoint workloads: tensors
// and dimensions looked up and the correspondence expanded into ordered
// pairs. Pairs are sorted by producer dimension name, so binding order is
// deterministic regardless of the Dims map.
type EdgeBinding struct {
	EdgeIndex            int
	Prod, Cons           *Node
	ProdIndex, ConsIndex int
	Out, In              *Tensor
	OutIndex, InIndex    int
	Pairs                []DimPair
}

// Validate checks the graph invariants: unique non-empty node names, valid
// workloads, and — per edge — resolvable endpoints, a complete and
// stride-consistent dimension correspondence, and at most one producer per
// consumer input tensor.
func (n *Network) Validate() error {
	if len(n.Nodes) == 0 {
		return fmt.Errorf("network %q: no nodes", n.Name)
	}
	seen := make(map[string]bool, len(n.Nodes))
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		if nd.Name == "" {
			return fmt.Errorf("network %q: node %d has an empty name", n.Name, i)
		}
		if seen[nd.Name] {
			return fmt.Errorf("network %q: duplicate node %q", n.Name, nd.Name)
		}
		seen[nd.Name] = true
		if nd.Repeat < 0 {
			return fmt.Errorf("network %q: node %q repeat %d < 0", n.Name, nd.Name, nd.Repeat)
		}
		if nd.Work == nil {
			return fmt.Errorf("network %q: node %q has no workload", n.Name, nd.Name)
		}
		if err := nd.Work.Validate(); err != nil {
			return fmt.Errorf("network %q: node %q: %w", n.Name, nd.Name, err)
		}
	}
	fed := make(map[string]string, len(n.Edges)) // consumer "node/tensor" -> producer
	for ei := range n.Edges {
		b, err := n.Bind(ei)
		if err != nil {
			return err
		}
		key := b.Cons.Name + "/" + b.In.Name
		if prev, ok := fed[key]; ok {
			return fmt.Errorf("network %q: edge %s->%s: input %q already fed by %s",
				n.Name, b.Prod.Name, b.Cons.Name, b.In.Name, prev)
		}
		fed[key] = b.Prod.Name
	}
	return nil
}

// Bind resolves edge ei against its endpoint workloads, validating the
// dimension correspondence as it goes.
func (n *Network) Bind(ei int) (EdgeBinding, error) {
	if ei < 0 || ei >= len(n.Edges) {
		return EdgeBinding{}, fmt.Errorf("network %q: edge index %d out of range", n.Name, ei)
	}
	e := &n.Edges[ei]
	fail := func(format string, args ...interface{}) (EdgeBinding, error) {
		return EdgeBinding{}, fmt.Errorf("network %q: edge %s->%s: %s",
			n.Name, e.From, e.To, fmt.Sprintf(format, args...))
	}

	pi, ci := n.NodeIndex(e.From), n.NodeIndex(e.To)
	if pi < 0 {
		return fail("unknown producer node %q", e.From)
	}
	if ci < 0 {
		return fail("unknown consumer node %q", e.To)
	}
	if pi == ci {
		return fail("self edge")
	}
	prod, cons := &n.Nodes[pi], &n.Nodes[ci]

	out := prod.Work.Output()
	if e.Tensor != "" {
		out = prod.Work.Tensor(e.Tensor)
		if out == nil {
			return fail("producer has no tensor %q", e.Tensor)
		}
	}
	if out == nil || out.Role != Output {
		return fail("producer tensor is not an output")
	}
	in := cons.Work.TensorByRole(Input)
	if e.Input != "" {
		in = cons.Work.Tensor(e.Input)
		if in == nil {
			return fail("consumer has no tensor %q", e.Input)
		}
	}
	if in == nil || in.Role != Input {
		return fail("consumer tensor is not an input")
	}

	if len(e.Dims) == 0 {
		return fail("no dimension correspondence")
	}
	// Deterministic order: producer dimension names sorted.
	pds := make([]string, 0, len(e.Dims))
	for dp := range e.Dims {
		pds = append(pds, dp)
	}
	sort.Strings(pds)

	b := EdgeBinding{
		EdgeIndex: ei,
		Prod:      prod, Cons: cons,
		ProdIndex: pi, ConsIndex: ci,
		Out: out, In: in,
		OutIndex: tensorIndex(prod.Work, out),
		InIndex:  tensorIndex(cons.Work, in),
		Pairs:    make([]DimPair, 0, len(e.Dims)),
	}
	consSeen := make(map[string]bool, len(e.Dims))
	for _, dp := range pds {
		dc := e.Dims[dp]
		pid := prod.Work.DimID(dp)
		if pid < 0 {
			return fail("unknown producer dim %q", dp)
		}
		cid := cons.Work.DimID(dc)
		if cid < 0 {
			return fail("unknown consumer dim %q", dc)
		}
		if consSeen[dc] {
			return fail("consumer dim %q mapped twice", dc)
		}
		consSeen[dc] = true
		ps, err := coordStride(out, dp)
		if err != nil {
			return fail("producer output: %v", err)
		}
		if ps != 1 {
			return fail("producer output indexes %q with stride %d; only direct indexing is supported", dp, ps)
		}
		cs, err := coordStride(in, dc)
		if err != nil {
			return fail("consumer input: %v", err)
		}
		// The size rule: each consumer iteration along dc advances the
		// input by cs elements, so the producer's extent must tile the
		// consumer's full sweep exactly. Sliding-window halo beyond the
		// sweep is zero padding and not produced.
		bp, bc := prod.Work.Bound(dp), cons.Work.Bound(dc)
		if bp != cs*bc {
			return fail("dim %s->%s: producer bound %d != consumer stride %d x bound %d",
				dp, dc, bp, cs, bc)
		}
		b.Pairs = append(b.Pairs, DimPair{
			ProdDim: dp, ConsDim: dc, ProdID: pid, ConsID: cid, Stride: cs,
		})
	}

	// Completeness: every producer dimension that shapes the output tensor
	// (bound > 1) must be mapped, or the correspondence underdetermines
	// where the produced data lands in the consumer's input.
	for _, d := range prod.Work.Dims {
		if d.Bound > 1 && out.Relevant(d.Name) && e.Dims[d.Name] == "" {
			return fail("producer dim %q indexes the output but is not mapped", d.Name)
		}
	}
	return b, nil
}

// Bindings resolves every edge (the Validate checks included).
func (n *Network) Bindings() ([]EdgeBinding, error) {
	out := make([]EdgeBinding, len(n.Edges))
	for ei := range n.Edges {
		b, err := n.Bind(ei)
		if err != nil {
			return nil, err
		}
		out[ei] = b
	}
	return out, nil
}

// coordStride returns the coordinate stride with which tensor t indexes dim:
// the Stride of dim's unique coordinate term. Dims appearing in no term or in
// more than one term are errors (the correspondence would be ambiguous).
func coordStride(t *Tensor, dim string) (int, error) {
	stride, hits := 0, 0
	for _, c := range t.Coords {
		for _, term := range c.Terms {
			if term.Dim == dim {
				stride = term.Stride
				hits++
			}
		}
	}
	switch hits {
	case 0:
		return 0, fmt.Errorf("tensor %q is not indexed by dim %q", t.Name, dim)
	case 1:
		return stride, nil
	default:
		return 0, fmt.Errorf("tensor %q indexes dim %q in %d terms; correspondence is ambiguous", t.Name, dim, hits)
	}
}

// tensorIndex returns t's index within w.Tensors (t must point into it).
func tensorIndex(w *Workload, t *Tensor) int {
	for i := range w.Tensors {
		if &w.Tensors[i] == t {
			return i
		}
	}
	return -1
}
