// Package workload models tensor-algebra operations in the Einsum-like form
// used by Timeloop-style mappers: a fully nested loop iteration space over
// named dimensions, with each operand tensor indexed by a projection of those
// dimensions. Convolutions use compound coordinates (sliding windows) so that
// input-halo tile footprints are computed correctly.
package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Role classifies an operand tensor. Architecture models key dedicated
// per-operand buffers (e.g. Eyeriss's ifmap/weight/psum scratchpads) by role.
type Role uint8

const (
	// Input is a streaming operand (e.g. the IFM of a convolution or the
	// activation matrix of a GEMM).
	Input Role = iota
	// Weight is a model-parameter operand (filters, GEMM weight matrix).
	Weight
	// Output is the produced tensor; reduction dimensions not appearing in
	// its projection cause partial-sum traffic.
	Output
)

// Roles lists all roles in canonical order.
var Roles = []Role{Input, Weight, Output}

func (r Role) String() string {
	switch r {
	case Input:
		return "Input"
	case Weight:
		return "Weight"
	case Output:
		return "Output"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// ParseRole converts a role name ("input", "weight", "output", case-
// insensitive) back to a Role.
func ParseRole(s string) (Role, error) {
	switch strings.ToLower(s) {
	case "input":
		return Input, nil
	case "weight":
		return Weight, nil
	case "output":
		return Output, nil
	default:
		return 0, fmt.Errorf("workload: unknown role %q", s)
	}
}

// Dim is one loop of the iteration space.
type Dim struct {
	Name  string
	Bound int // loop bound, >= 1
}

// CoordTerm is one term of a compound tensor coordinate: Stride*iter(Dim).
// A plain coordinate has a single term with stride 1. A convolution's input
// width coordinate is strideW*Q + dilationW*S (two terms).
type CoordTerm struct {
	Dim    string
	Stride int
}

// Coord is one coordinate (axis) of a tensor, a sum of terms. The extent of
// the axis for a tile with per-dimension extents t is
// 1 + sum_i Stride_i*(t_i - 1), the standard halo formula.
type Coord struct {
	Terms []CoordTerm
}

// Tensor is one operand of the workload.
type Tensor struct {
	Name   string
	Role   Role
	Coords []Coord
}

// Workload is a tensor operation: an iteration space plus operand tensors.
type Workload struct {
	Name    string
	Dims    []Dim
	Tensors []Tensor

	bounds map[string]int
	byName map[string]*Tensor
	sorted []string
	byteID []int16 // first-byte dim-id table when all names are distinct single bytes
}

// New constructs a Workload and validates it.
func New(name string, dims []Dim, tensors []Tensor) (*Workload, error) {
	w := &Workload{Name: name, Dims: dims, Tensors: tensors}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	w.index()
	return w, nil
}

// MustNew is New, panicking on error. Intended for package-level presets.
func MustNew(name string, dims []Dim, tensors []Tensor) *Workload {
	w, err := New(name, dims, tensors)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *Workload) index() {
	w.bounds = make(map[string]int, len(w.Dims))
	for _, d := range w.Dims {
		w.bounds[d.Name] = d.Bound
	}
	w.byName = make(map[string]*Tensor, len(w.Tensors))
	for i := range w.Tensors {
		w.byName[w.Tensors[i].Name] = &w.Tensors[i]
	}
	w.sorted = w.DimNames()
	sort.Strings(w.sorted)
	w.byteID = make([]int16, 256)
	for i := range w.byteID {
		w.byteID[i] = -1
	}
	for di := range w.Dims {
		name := w.Dims[di].Name
		if len(name) != 1 || w.byteID[name[0]] >= 0 {
			w.byteID = nil
			break
		}
		w.byteID[name[0]] = int16(di)
	}
}

// DimID returns the declaration-order index of the named dimension, or -1
// when the name is unknown. Single-byte dimension names (every built-in
// workload) resolve through a byte-indexed table instead of string
// comparisons, keeping the dense-lowering hot path off the string hasher.
//
//ruby:hotpath
func (w *Workload) DimID(name string) int16 {
	if w.byteID != nil {
		if len(name) != 1 {
			return -1
		}
		return w.byteID[name[0]]
	}
	for di := range w.Dims {
		if w.Dims[di].Name == name {
			return int16(di)
		}
	}
	return -1
}

// Validate checks structural invariants: unique positive-bound dims, tensors
// referencing only declared dims, exactly one output tensor, and positive
// strides.
func (w *Workload) Validate() error {
	if len(w.Dims) == 0 {
		return fmt.Errorf("workload %q: no dimensions", w.Name)
	}
	seen := make(map[string]bool)
	for _, d := range w.Dims {
		if d.Name == "" {
			return fmt.Errorf("workload %q: empty dimension name", w.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("workload %q: duplicate dimension %q", w.Name, d.Name)
		}
		seen[d.Name] = true
		if d.Bound < 1 {
			return fmt.Errorf("workload %q: dimension %q bound %d < 1", w.Name, d.Name, d.Bound)
		}
	}
	if len(w.Tensors) == 0 {
		return fmt.Errorf("workload %q: no tensors", w.Name)
	}
	outputs := 0
	names := make(map[string]bool)
	for _, t := range w.Tensors {
		if t.Name == "" {
			return fmt.Errorf("workload %q: empty tensor name", w.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("workload %q: duplicate tensor %q", w.Name, t.Name)
		}
		names[t.Name] = true
		if t.Role == Output {
			outputs++
		}
		for ci, c := range t.Coords {
			if len(c.Terms) == 0 {
				return fmt.Errorf("workload %q: tensor %q coord %d has no terms", w.Name, t.Name, ci)
			}
			for _, term := range c.Terms {
				if !seen[term.Dim] {
					return fmt.Errorf("workload %q: tensor %q references unknown dim %q", w.Name, t.Name, term.Dim)
				}
				if term.Stride < 1 {
					return fmt.Errorf("workload %q: tensor %q dim %q stride %d < 1", w.Name, t.Name, term.Dim, term.Stride)
				}
			}
		}
	}
	if outputs != 1 {
		return fmt.Errorf("workload %q: %d output tensors, want exactly 1", w.Name, outputs)
	}
	return nil
}

// DimNames returns the dimension names in declaration order.
func (w *Workload) DimNames() []string {
	out := make([]string, len(w.Dims))
	for i, d := range w.Dims {
		out[i] = d.Name
	}
	return out
}

// Bound returns the loop bound of the named dimension; it panics on unknown
// names (always a programming error).
func (w *Workload) Bound(dim string) int {
	b, ok := w.bounds[dim]
	if !ok {
		panic(fmt.Sprintf("workload %q: unknown dimension %q", w.Name, dim))
	}
	return b
}

// Tensor returns the named tensor, or nil.
func (w *Workload) Tensor(name string) *Tensor {
	return w.byName[name]
}

// TensorByRole returns the first tensor with the given role, or nil.
func (w *Workload) TensorByRole(r Role) *Tensor {
	for i := range w.Tensors {
		if w.Tensors[i].Role == r {
			return &w.Tensors[i]
		}
	}
	return nil
}

// Output returns the output tensor.
func (w *Workload) Output() *Tensor { return w.TensorByRole(Output) }

// MACs returns the total number of compute operations: the product of all
// dimension bounds.
func (w *Workload) MACs() uint64 {
	total := uint64(1)
	for _, d := range w.Dims {
		total *= uint64(d.Bound)
	}
	return total
}

// RelevantDims returns the set of workload dimensions indexing tensor t.
func (t *Tensor) RelevantDims() map[string]bool {
	out := make(map[string]bool)
	for _, c := range t.Coords {
		for _, term := range c.Terms {
			out[term.Dim] = true
		}
	}
	return out
}

// Relevant reports whether dim indexes tensor t.
func (t *Tensor) Relevant(dim string) bool {
	for _, c := range t.Coords {
		for _, term := range c.Terms {
			if term.Dim == dim {
				return true
			}
		}
	}
	return false
}

// ReductionDims returns, for the workload's output tensor, the dimensions
// that are reduced over (iterated but not indexing the output). For a
// convolution these are C, R, S; for a GEMM, K.
func (w *Workload) ReductionDims() []string {
	out := w.Output()
	rel := out.RelevantDims()
	var red []string
	for _, d := range w.Dims {
		if !rel[d.Name] {
			red = append(red, d.Name)
		}
	}
	return red
}

// TileVolume returns the number of elements of tensor t touched by a tile
// whose per-dimension extents are given by tile (dimensions absent from the
// map default to extent 1). Compound coordinates use the halo formula
// extent = 1 + sum_i stride_i*(t_i - 1).
func (t *Tensor) TileVolume(tile map[string]int) int64 {
	vol := int64(1)
	for _, c := range t.Coords {
		extent := 1
		for _, term := range c.Terms {
			te := tile[term.Dim]
			if te == 0 {
				te = 1
			}
			extent += term.Stride * (te - 1)
		}
		vol *= int64(extent)
	}
	return vol
}

// Size returns the total number of elements of tensor t under the full
// workload bounds.
func (w *Workload) Size(t *Tensor) int64 {
	full := make(map[string]int, len(w.Dims))
	for _, d := range w.Dims {
		full[d.Name] = d.Bound
	}
	return t.TileVolume(full)
}

// TotalFootprint returns the summed element count of all tensors.
func (w *Workload) TotalFootprint() int64 {
	var total int64
	for i := range w.Tensors {
		total += w.Size(&w.Tensors[i])
	}
	return total
}

// String renders the workload as a loop nest with a body statement, in the
// style of the paper's Fig. 1.
func (w *Workload) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s\n", w.Name)
	indent := ""
	for _, d := range w.Dims {
		fmt.Fprintf(&b, "%sfor %s in [0:%d)\n", indent, strings.ToLower(d.Name), d.Bound)
		indent += "  "
	}
	out := w.Output()
	var ins []string
	for i := range w.Tensors {
		if w.Tensors[i].Role != Output {
			ins = append(ins, tensorRef(&w.Tensors[i]))
		}
	}
	fmt.Fprintf(&b, "%s%s += %s\n", indent, tensorRef(out), strings.Join(ins, " * "))
	return b.String()
}

func tensorRef(t *Tensor) string {
	var axes []string
	for _, c := range t.Coords {
		var terms []string
		for _, term := range c.Terms {
			if term.Stride == 1 {
				terms = append(terms, strings.ToLower(term.Dim))
			} else {
				terms = append(terms, fmt.Sprintf("%d*%s", term.Stride, strings.ToLower(term.Dim)))
			}
		}
		axes = append(axes, strings.Join(terms, "+"))
	}
	return fmt.Sprintf("%s[%s]", t.Name, strings.Join(axes, "]["))
}

// Scale returns a copy of w with the named dimensions' bounds replaced.
// Unknown names are rejected. Used to build padded-workload variants.
func (w *Workload) Scale(newBounds map[string]int) (*Workload, error) {
	dims := make([]Dim, len(w.Dims))
	copy(dims, w.Dims)
	for i := range dims {
		if nb, ok := newBounds[dims[i].Name]; ok {
			dims[i].Bound = nb
		}
	}
	for name := range newBounds {
		if _, ok := w.bounds[name]; !ok {
			return nil, fmt.Errorf("workload %q: Scale of unknown dim %q", w.Name, name)
		}
	}
	tensors := make([]Tensor, len(w.Tensors))
	copy(tensors, w.Tensors)
	return New(w.Name+"/scaled", dims, tensors)
}

// SortedDimNames returns dimension names sorted lexicographically; useful for
// deterministic iteration in tests and hashing. The returned slice is shared
// and must not be mutated — mapping keying sits on the hot path of the
// evaluation cache and cannot afford a copy per call.
func (w *Workload) SortedDimNames() []string {
	if w.sorted != nil {
		return w.sorted
	}
	names := w.DimNames()
	sort.Strings(names)
	return names
}
