package workload

import (
	"testing"
)

func TestParseEinsumConv(t *testing.T) {
	w, err := ParseEinsum("conv", "O[n,m,p,q] += I[n,c,2p+r,q+s] * W[m,c,r,s]",
		map[string]int{"N": 1, "M": 8, "C": 4, "P": 6, "Q": 6, "R": 3, "S": 3})
	if err != nil {
		t.Fatal(err)
	}
	ref := MustConv2D(Conv2DParams{Name: "conv", N: 1, M: 8, C: 4, P: 6, Q: 6, R: 3, S: 3, StrideH: 2})
	if w.MACs() != ref.MACs() {
		t.Errorf("MACs = %d, want %d", w.MACs(), ref.MACs())
	}
	if got, want := w.Size(w.Tensor("I")), ref.Size(ref.Tensor("I")); got != want {
		t.Errorf("input size = %d, want %d (strided halo)", got, want)
	}
	if w.Tensor("I").Role != Input || w.Tensor("W").Role != Weight || w.Tensor("O").Role != Output {
		t.Error("roles wrong")
	}
	rd := w.ReductionDims()
	if len(rd) != 3 {
		t.Errorf("reduction dims = %v", rd)
	}
}

func TestParseEinsumBracketAxes(t *testing.T) {
	// Fig. 1 style separate bracket groups and explicit '*' strides.
	w, err := ParseEinsum("", "Z[m][n] += A[m][k] * B[k][n]",
		map[string]int{"M": 3, "N": 4, "K": 5})
	if err != nil {
		t.Fatal(err)
	}
	if w.MACs() != 60 {
		t.Errorf("MACs = %d", w.MACs())
	}
	w2, err := ParseEinsum("strided", "O[p] += I[2*p+r] * W[r]",
		map[string]int{"P": 5, "R": 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Size(w2.Tensor("I")); got != 11 { // 2*4 + 2 + 1
		t.Errorf("strided input size = %d, want 11", got)
	}
}

func TestParseEinsumDepthwise(t *testing.T) {
	// Depthwise convolution: the input is indexed by the output-channel
	// dimension — inexpressible with the Conv2D builder, natural as Einsum.
	w, err := ParseEinsum("dw", "O[n,m,p,q] += I[n,m,p+r,q+s] * W[m,r,s]",
		map[string]int{"N": 1, "M": 32, "P": 14, "Q": 14, "R": 3, "S": 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.MACs() != uint64(32*14*14*9) {
		t.Errorf("MACs = %d", w.MACs())
	}
	in := w.Tensor("I")
	if !in.Relevant("M") {
		t.Error("depthwise input must be indexed by M")
	}
	if len(w.ReductionDims()) != 2 { // R, S only
		t.Errorf("reduction dims = %v", w.ReductionDims())
	}
}

func TestParseEinsumSingleOperand(t *testing.T) {
	w, err := ParseEinsum("copy", "Z[x] += X[x]", map[string]int{"X": 100})
	if err != nil {
		t.Fatal(err)
	}
	if w.MACs() != 100 || w.Tensor("X").Role != Input {
		t.Error("single-operand einsum wrong")
	}
}

func TestParseEinsumCaseInsensitive(t *testing.T) {
	w, err := ParseEinsum("", "Z[M,N] += A[M,K] * B[K,N]", map[string]int{"M": 2, "N": 2, "K": 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Bound("M") != 2 {
		t.Error("upper-case index vars should work")
	}
}

func TestParseEinsumRejections(t *testing.T) {
	bounds := map[string]int{"M": 2, "N": 2, "K": 2}
	cases := []struct {
		expr   string
		bounds map[string]int
	}{
		{"Z[m,n] = A[m,k] * B[k,n]", bounds},                                          // no +=
		{"Z[m,n] += A[m,k] * B[k,n]", map[string]int{"M": 2, "N": 2}},                 // missing bound
		{"Z[m,n] += A[m,k] * B[k,n]", map[string]int{"M": 2, "N": 2, "K": 2, "J": 3}}, // unused bound
		{"Z[m,n] += ", bounds},                 // no operands
		{"Zm,n] += A[m,k] * B[k,n]", bounds},   // bad lhs
		{"Z[m,n] += A[m,k * B[k,n]", bounds},   // unbalanced bracket
		{"Z[m,n] += A[m,0k] * B[k,n]", bounds}, // bad term
		{"Z[m,n] += A[m,-k] * B[k,n]", bounds}, // negative stride
		{"Z[m,n] += A[m,] * B[k,n]", bounds},   // empty coord
		{"[m,n] += A[m,k] * B[k,n]", bounds},   // missing name
	}
	for _, c := range cases {
		if _, err := ParseEinsum("x", c.expr, c.bounds); err == nil {
			t.Errorf("ParseEinsum(%q) succeeded", c.expr)
		}
	}
}

func TestMustParseEinsumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseEinsum("x", "bogus", nil)
}

func TestSplitTopLevel(t *testing.T) {
	parts, err := splitTopLevel("A[2*p+r] * B[r]", '*')
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	if _, err := splitTopLevel("A[x", '*'); err == nil {
		t.Error("unbalanced accepted")
	}
	if _, err := splitTopLevel("A]x[", '*'); err == nil {
		t.Error("inverted brackets accepted")
	}
}
