package workload

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// convStackNodes builds the canonical test pair: a 1x1 producer whose 64
// output channels feed a 3x3 consumer's 64 input channels on a 56x56 map.
func convStackNodes(t testing.TB) []Node {
	t.Helper()
	prod := MustConv2D(Conv2DParams{Name: "a", N: 1, M: 64, C: 64, P: 56, Q: 56, R: 1, S: 1})
	cons := MustConv2D(Conv2DParams{Name: "b", N: 1, M: 64, C: 64, P: 56, Q: 56, R: 3, S: 3})
	return []Node{{Name: "a", Work: prod}, {Name: "b", Work: cons, Repeat: 3}}
}

func convEdge() Edge {
	return Edge{From: "a", To: "b", Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"}}
}

func TestNetworkValidConvChain(t *testing.T) {
	net, err := NewNetwork("stack", convStackNodes(t), []Edge{convEdge()})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	b, err := net.Bind(0)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if b.Prod.Name != "a" || b.Cons.Name != "b" {
		t.Fatalf("binding endpoints %s->%s", b.Prod.Name, b.Cons.Name)
	}
	if b.Out.Name != "O" || b.In.Name != "I" {
		t.Fatalf("binding tensors %s->%s", b.Out.Name, b.In.Name)
	}
	// Pairs sorted by producer dim: M, N, P, Q.
	var got []string
	for _, p := range b.Pairs {
		got = append(got, p.ProdDim+">"+p.ConsDim)
		if p.Stride != 1 {
			t.Errorf("pair %s->%s stride %d, want 1", p.ProdDim, p.ConsDim, p.Stride)
		}
		if p.ProdID < 0 || p.ConsID < 0 {
			t.Errorf("pair %s->%s has unresolved ids", p.ProdDim, p.ConsDim)
		}
	}
	want := []string{"M>C", "N>N", "P>P", "Q>Q"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pairs %v, want %v", got, want)
	}
	if r := net.Nodes[1].Repeats(); r != 3 {
		t.Fatalf("Repeats = %d, want 3", r)
	}
	if r := net.Nodes[0].Repeats(); r != 1 {
		t.Fatalf("zero Repeat treated as %d, want 1", r)
	}
}

func TestNetworkStride2Chain(t *testing.T) {
	// A 56x56x256 producer feeding a stride-2 consumer with a 28x28 output:
	// the consumer's input coordinate advances 2 per P iteration, so the
	// size rule is 56 == 2*28.
	prod := MustConv2D(Conv2DParams{Name: "p", N: 1, M: 256, C: 64, P: 56, Q: 56, R: 1, S: 1})
	cons := MustConv2D(Conv2DParams{Name: "c", N: 1, M: 128, C: 256, P: 28, Q: 28, R: 1, S: 1,
		StrideH: 2, StrideW: 2})
	net, err := NewNetwork("strided",
		[]Node{{Name: "p", Work: prod}, {Name: "c", Work: cons}},
		[]Edge{{From: "p", To: "c", Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"}}})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	b, err := net.Bind(0)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	for _, pair := range b.Pairs {
		want := 1
		if pair.ProdDim == "P" || pair.ProdDim == "Q" {
			want = 2
		}
		if pair.Stride != want {
			t.Errorf("pair %s stride %d, want %d", pair.ProdDim, pair.Stride, want)
		}
	}
}

func TestNetworkGEMMChain(t *testing.T) {
	// Back-to-back GEMMs: Z1[M][N] feeds A2[M][K], so M->M and N->K.
	g1 := MustMatmul("g1", 512, 128, 256)
	g2 := MustMatmul("g2", 512, 64, 128)
	net, err := NewNetwork("gemm",
		[]Node{{Name: "g1", Work: g1}, {Name: "g2", Work: g2}},
		[]Edge{{From: "g1", To: "g2", Dims: map[string]string{"M": "M", "N": "K"}}})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if _, err := net.Bindings(); err != nil {
		t.Fatalf("Bindings: %v", err)
	}
}

func TestNetworkEdgeErrors(t *testing.T) {
	nodes := convStackNodes(t)
	cases := []struct {
		name string
		edge Edge
		want string
	}{
		{"unknown producer", Edge{From: "zz", To: "b", Dims: map[string]string{"M": "C"}}, "unknown producer"},
		{"unknown consumer", Edge{From: "a", To: "zz", Dims: map[string]string{"M": "C"}}, "unknown consumer"},
		{"self edge", Edge{From: "a", To: "a", Dims: map[string]string{"M": "C"}}, "self edge"},
		{"no dims", Edge{From: "a", To: "b"}, "no dimension correspondence"},
		{"unknown producer dim", Edge{From: "a", To: "b",
			Dims: map[string]string{"Z": "C", "N": "N", "M": "C", "P": "P", "Q": "Q"}}, "unknown producer dim"},
		{"unknown consumer dim", Edge{From: "a", To: "b",
			Dims: map[string]string{"N": "N", "M": "Z", "P": "P", "Q": "Q"}}, "unknown consumer dim"},
		{"duplicate consumer dim", Edge{From: "a", To: "b",
			Dims: map[string]string{"N": "C", "M": "C", "P": "P", "Q": "Q"}}, "mapped twice"},
		{"size mismatch", Edge{From: "a", To: "b",
			Dims: map[string]string{"N": "N", "M": "C", "P": "R", "Q": "Q"}}, "producer bound 56 != consumer stride 1 x bound 3"},
		{"incomplete", Edge{From: "a", To: "b",
			Dims: map[string]string{"N": "N", "M": "C", "P": "P"}}, "not mapped"},
		{"weight tensor as input", Edge{From: "a", To: "b", Input: "W",
			Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"}}, "not an input"},
		{"input tensor as output", Edge{From: "a", To: "b", Tensor: "I",
			Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"}}, "not an output"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewNetwork("bad", nodes, []Edge{tc.edge})
			if err == nil {
				t.Fatalf("NewNetwork accepted %+v", tc.edge)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Mismatched sizes across layers: a 64-channel output feeding a
	// 128-channel input must be rejected with the size rule spelled out.
	wide := MustConv2D(Conv2DParams{Name: "wide", N: 1, M: 64, C: 128, P: 56, Q: 56, R: 1, S: 1})
	_, err := NewNetwork("bad",
		append(nodes, Node{Name: "wide", Work: wide}),
		[]Edge{{From: "a", To: "wide", Dims: map[string]string{"N": "N", "M": "C", "P": "P", "Q": "Q"}}})
	if err == nil || !strings.Contains(err.Error(), "producer bound 64 != consumer stride 1 x bound 128") {
		t.Fatalf("channel mismatch error = %v", err)
	}

	// Two producers feeding the same input tensor.
	_, err = NewNetwork("bad",
		append(convStackNodes(t), Node{Name: "a2", Work: nodes[0].Work}),
		[]Edge{convEdge(), {From: "a2", To: "b", Dims: convEdge().Dims}})
	if err == nil || !strings.Contains(err.Error(), "already fed") {
		t.Fatalf("double-feed error = %v", err)
	}
}

func TestNetworkNodeErrors(t *testing.T) {
	good := convStackNodes(t)
	if _, err := NewNetwork("n", nil, nil); err == nil {
		t.Fatal("empty network accepted")
	}
	if _, err := NewNetwork("n", []Node{{Name: "", Work: good[0].Work}}, nil); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := NewNetwork("n", []Node{good[0], good[0]}, nil); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewNetwork("n", []Node{{Name: "x", Work: nil}}, nil); err == nil {
		t.Fatal("nil workload accepted")
	}
	if _, err := NewNetwork("n", []Node{{Name: "x", Work: good[0].Work, Repeat: -1}}, nil); err == nil {
		t.Fatal("negative repeat accepted")
	}
}

func TestNetworkLookups(t *testing.T) {
	net := MustNetwork("stack", convStackNodes(t), []Edge{convEdge()})
	if net.NodeIndex("b") != 1 || net.NodeIndex("zz") != -1 {
		t.Fatal("NodeIndex")
	}
	if net.NodeByName("a") == nil || net.NodeByName("zz") != nil {
		t.Fatal("NodeByName")
	}
	if got := net.EdgesFrom("a"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("EdgesFrom = %v", got)
	}
	if got := net.EdgesInto("b"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("EdgesInto = %v", got)
	}
	if got := net.EdgesInto("a"); got != nil {
		t.Fatalf("EdgesInto(a) = %v", got)
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	net := MustNetwork("stack", convStackNodes(t), []Edge{convEdge()})
	raw, err := json.Marshal(net)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Network
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped network invalid: %v", err)
	}
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("round trip not stable:\n%s\n%s", raw, raw2)
	}
	// The decoded workloads must have working indices.
	if back.Nodes[0].Work.Bound("M") != 64 {
		t.Fatal("decoded workload lost its index")
	}
	if _, err := back.Bind(0); err != nil {
		t.Fatalf("Bind after round trip: %v", err)
	}
}

func TestWorkloadJSONRejectsInvalid(t *testing.T) {
	var w Workload
	if err := json.Unmarshal([]byte(`{"name":"x","dims":[],"tensors":[]}`), &w); err == nil {
		t.Fatal("invalid workload decoded")
	}
	if err := json.Unmarshal([]byte(`{"name":"x","dims":[{"name":"M","bound":2}],`+
		`"tensors":[{"name":"Z","role":"psum","coords":[{"terms":[{"dim":"M","stride":1}]}]}]}`), &w); err == nil {
		t.Fatal("unknown role decoded")
	}
}

// FuzzNetworkEdges drives edge construction with arbitrary endpoint and
// correspondence strings over a fixed node set: validation must never panic,
// and every network it accepts must bind with the size rule holding.
func FuzzNetworkEdges(f *testing.F) {
	f.Add("a", "b", "", "", "M", "C", "P", "P", 1)
	f.Add("a", "b", "O", "I", "N", "N", "Q", "Q", 3)
	f.Add("b", "a", "I", "W", "C", "M", "R", "S", 0)
	f.Add("g1", "g2", "Z", "A", "M", "M", "N", "K", -1)
	f.Fuzz(func(t *testing.T, from, to, tensor, input, d1p, d1c, d2p, d2c string, rep int) {
		nodes := []Node{
			{Name: "a", Work: MustConv2D(Conv2DParams{Name: "a", N: 1, M: 64, C: 64, P: 56, Q: 56, R: 1, S: 1})},
			{Name: "b", Work: MustConv2D(Conv2DParams{Name: "b", N: 1, M: 64, C: 64, P: 56, Q: 56, R: 3, S: 3}), Repeat: rep},
			{Name: "g1", Work: MustMatmul("g1", 512, 128, 256)},
			{Name: "g2", Work: MustMatmul("g2", 512, 64, 128)},
		}
		if rep < 0 {
			nodes[1].Repeat = 0
		}
		dims := map[string]string{d1p: d1c}
		if d2p != d1p {
			dims[d2p] = d2c
		}
		edge := Edge{From: from, To: to, Tensor: tensor, Input: input, Dims: dims}
		net, err := NewNetwork("fuzz", nodes, []Edge{edge})
		if err != nil {
			return
		}
		bs, err := net.Bindings()
		if err != nil {
			t.Fatalf("validated network failed to bind: %v", err)
		}
		for _, b := range bs {
			for _, p := range b.Pairs {
				if p.Stride < 1 {
					t.Fatalf("pair %s->%s stride %d", p.ProdDim, p.ConsDim, p.Stride)
				}
				if b.Prod.Work.Bound(p.ProdDim) != p.Stride*b.Cons.Work.Bound(p.ConsDim) {
					t.Fatalf("size rule violated for %s->%s", p.ProdDim, p.ConsDim)
				}
			}
		}
		// Accepted networks must survive a JSON round trip.
		raw, err := json.Marshal(net)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Network
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round trip invalid: %v", err)
		}
	})
}
