package workload

import (
	"encoding/json"
	"fmt"
	"strings"
)

// The JSON form of a Workload spells the operand roles as strings and omits
// the derived lookup state, so checkpoint and wire payloads embedding
// workloads (Network nodes in particular) are stable, human-readable and
// rebuild their indices on decode.

type termJSON struct {
	Dim    string `json:"dim"`
	Stride int    `json:"stride"`
}

type coordJSON struct {
	Terms []termJSON `json:"terms"`
}

type tensorJSON struct {
	Name   string      `json:"name"`
	Role   string      `json:"role"`
	Coords []coordJSON `json:"coords"`
}

type workloadJSON struct {
	Name    string       `json:"name"`
	Dims    []Dim        `json:"dims"`
	Tensors []tensorJSON `json:"tensors"`
}

// MarshalJSON encodes the workload's declarative fields (name, dims,
// tensors) with string roles, omitting the memoized indices.
func (w *Workload) MarshalJSON() ([]byte, error) {
	out := workloadJSON{Name: w.Name, Dims: w.Dims}
	for i := range w.Tensors {
		t := &w.Tensors[i]
		tj := tensorJSON{Name: t.Name, Role: strings.ToLower(t.Role.String())}
		for _, c := range t.Coords {
			cj := coordJSON{Terms: make([]termJSON, len(c.Terms))}
			for k, tm := range c.Terms {
				cj.Terms[k] = termJSON{Dim: tm.Dim, Stride: tm.Stride}
			}
			tj.Coords = append(tj.Coords, cj)
		}
		out.Tensors = append(out.Tensors, tj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes, validates and re-indexes the workload; a payload
// that does not form a valid workload is rejected.
func (w *Workload) UnmarshalJSON(b []byte) error {
	var in workloadJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	nw := Workload{Name: in.Name, Dims: in.Dims}
	for _, tj := range in.Tensors {
		role, err := ParseRole(tj.Role)
		if err != nil {
			return fmt.Errorf("workload %q: tensor %q: %w", in.Name, tj.Name, err)
		}
		t := Tensor{Name: tj.Name, Role: role}
		for _, cj := range tj.Coords {
			c := Coord{Terms: make([]CoordTerm, len(cj.Terms))}
			for k, tm := range cj.Terms {
				c.Terms[k] = CoordTerm{Dim: tm.Dim, Stride: tm.Stride}
			}
			t.Coords = append(t.Coords, c)
		}
		nw.Tensors = append(nw.Tensors, t)
	}
	if err := nw.Validate(); err != nil {
		return err
	}
	nw.index()
	*w = nw
	return nil
}

// Dim's JSON form.
type dimJSON struct {
	Name  string `json:"name"`
	Bound int    `json:"bound"`
}

// MarshalJSON encodes a dimension with lowercase keys.
func (d Dim) MarshalJSON() ([]byte, error) {
	return json.Marshal(dimJSON{Name: d.Name, Bound: d.Bound})
}

// UnmarshalJSON decodes a dimension from its lowercase-key form.
func (d *Dim) UnmarshalJSON(b []byte) error {
	var in dimJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	d.Name, d.Bound = in.Name, in.Bound
	return nil
}
