// Package energy is the Accelergy-like energy and area substrate: it maps
// architectural components (SRAMs, register files, DRAM, MAC units) to
// per-access energies and silicon areas.
//
// The paper estimates energy with Accelergy backed by CACTI (large memories)
// and Aladdin tables (register files, address generators). Absolute joules
// from those tools are process-specific; what the paper's conclusions rest on
// are the well-known *relative* costs across the hierarchy (Eyeriss, ISSCC'16:
// DRAM ≈ 200x MAC, global buffer ≈ 6x, register file ≈ 1x). This package
// reproduces those ratios with a CACTI-like sqrt(capacity) scaling law for
// on-chip SRAM so that architecture sweeps (Figs. 13-14) see energy grow with
// buffer size.
package energy

import (
	"fmt"
	"math"
)

// WordBits is the datapath word width. The paper's architectures use 16-bit
// integer arithmetic.
const WordBits = 16

// WordBytes is WordBits in bytes.
const WordBytes = WordBits / 8

// Reference constants, in picojoules per access of one word, calibrated to
// the Eyeriss energy ratios at a 45nm-class node (MAC = 2.2 pJ, Horowitz).
const (
	// MACEnergyPJ is the energy of one 16-bit multiply-accumulate.
	MACEnergyPJ = 2.2
	// DRAMEnergyPJ is the energy of moving one word from/to DRAM
	// (200x MAC, the Eyeriss ratio).
	DRAMEnergyPJ = 200 * MACEnergyPJ
	// RegisterFileEnergyPJ is the floor for small local scratchpads
	// (1x MAC).
	RegisterFileEnergyPJ = MACEnergyPJ

	// sramReferenceBytes and sramReferenceEnergyPJ anchor the sqrt scaling:
	// a 128 KiB global buffer costs 6x MAC per access.
	sramReferenceBytes    = 128 * 1024
	sramReferenceEnergyPJ = 6 * MACEnergyPJ
)

// SRAMEnergyPJ returns the per-word access energy of an on-chip SRAM of the
// given capacity in words. It follows a CACTI-like E ∝ sqrt(capacity) law
// anchored at the 128 KiB reference point, with a register-file floor so tiny
// scratchpads do not become free.
func SRAMEnergyPJ(capacityWords int64) float64 {
	if capacityWords <= 0 {
		return DRAMEnergyPJ
	}
	bytes := float64(capacityWords) * WordBytes
	e := sramReferenceEnergyPJ * math.Sqrt(bytes/sramReferenceBytes)
	if e < RegisterFileEnergyPJ {
		return RegisterFileEnergyPJ
	}
	return e
}

// Area constants, in mm^2, at a 45nm-class node. Only relative magnitudes
// matter for the Pareto studies.
const (
	// MACAreaMM2 is the area of one 16-bit MAC lane plus its control.
	MACAreaMM2 = 0.004
	// PEOverheadAreaMM2 is per-PE control/NoC overhead.
	PEOverheadAreaMM2 = 0.002
	// SRAMAreaMM2PerByte is on-chip SRAM density (~1.5 mm^2 per MB).
	SRAMAreaMM2PerByte = 1.5e-6
)

// SRAMAreaMM2 returns the area of an SRAM of the given capacity in words.
func SRAMAreaMM2(capacityWords int64) float64 {
	if capacityWords <= 0 {
		return 0 // off-chip
	}
	return float64(capacityWords) * WordBytes * SRAMAreaMM2PerByte
}

// Table is an energy estimator resolving component classes to pJ/access.
// The zero value uses the package defaults; fields may be overridden to run
// sensitivity studies.
type Table struct {
	MACPJ  float64 // 0 => MACEnergyPJ
	DRAMPJ float64 // 0 => DRAMEnergyPJ
	// SRAMScale multiplies SRAMEnergyPJ results (0 => 1.0).
	SRAMScale float64
}

// MAC returns the per-operation MAC energy in pJ.
func (t Table) MAC() float64 {
	if t.MACPJ > 0 {
		return t.MACPJ
	}
	return MACEnergyPJ
}

// Access returns the per-word access energy of a storage level with the given
// capacity in words (0 = off-chip DRAM).
func (t Table) Access(capacityWords int64) float64 {
	if capacityWords <= 0 {
		if t.DRAMPJ > 0 {
			return t.DRAMPJ
		}
		return DRAMEnergyPJ
	}
	scale := t.SRAMScale
	if scale == 0 {
		scale = 1
	}
	return scale * SRAMEnergyPJ(capacityWords)
}

// EDP combines an energy (pJ) and a delay (cycles) into the paper's target
// metric. Units are pJ-cycles; only ratios are ever compared.
func EDP(energyPJ, cycles float64) float64 {
	return energyPJ * cycles
}

// Format renders an energy in engineering units for reports.
func Format(pj float64) string {
	switch {
	case pj >= 1e9:
		return fmt.Sprintf("%.3f mJ", pj/1e9)
	case pj >= 1e6:
		return fmt.Sprintf("%.3f uJ", pj/1e6)
	case pj >= 1e3:
		return fmt.Sprintf("%.3f nJ", pj/1e3)
	default:
		return fmt.Sprintf("%.3f pJ", pj)
	}
}
