package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestReferenceRatios(t *testing.T) {
	// The Eyeriss ratios this package is calibrated to.
	if got := DRAMEnergyPJ / MACEnergyPJ; got != 200 {
		t.Errorf("DRAM/MAC = %f, want 200", got)
	}
	glb := SRAMEnergyPJ(128 * 1024 / WordBytes)
	if r := glb / MACEnergyPJ; math.Abs(r-6) > 0.01 {
		t.Errorf("GLB(128KiB)/MAC = %f, want 6", r)
	}
	rf := SRAMEnergyPJ(224) // Eyeriss weight spad
	if rf != RegisterFileEnergyPJ {
		t.Errorf("RF floor = %f, want %f", rf, RegisterFileEnergyPJ)
	}
}

func TestSRAMEnergyMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		ca, cb := int64(a)+1, int64(b)+1
		if ca > cb {
			ca, cb = cb, ca
		}
		return SRAMEnergyPJ(ca*64) <= SRAMEnergyPJ(cb*64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRAMEnergySqrtLaw(t *testing.T) {
	e1 := SRAMEnergyPJ(Wordsish(128))
	e4 := SRAMEnergyPJ(Wordsish(512))
	if r := e4 / e1; math.Abs(r-2) > 0.01 {
		t.Errorf("4x capacity should cost 2x energy, got %f", r)
	}
}

// Wordsish converts KiB to words for tests.
func Wordsish(kib int) int64 { return int64(kib) * 1024 / WordBytes }

func TestSRAMEnergyUnboundedIsDRAM(t *testing.T) {
	if SRAMEnergyPJ(0) != DRAMEnergyPJ {
		t.Error("capacity 0 should price as DRAM")
	}
}

func TestTableDefaults(t *testing.T) {
	var tb Table
	if tb.MAC() != MACEnergyPJ {
		t.Errorf("default MAC = %f", tb.MAC())
	}
	if tb.Access(0) != DRAMEnergyPJ {
		t.Errorf("default DRAM = %f", tb.Access(0))
	}
	if tb.Access(Wordsish(128)) != SRAMEnergyPJ(Wordsish(128)) {
		t.Error("default SRAM mismatch")
	}
}

func TestTableOverrides(t *testing.T) {
	tb := Table{MACPJ: 1, DRAMPJ: 100, SRAMScale: 2}
	if tb.MAC() != 1 {
		t.Errorf("MAC override = %f", tb.MAC())
	}
	if tb.Access(0) != 100 {
		t.Errorf("DRAM override = %f", tb.Access(0))
	}
	want := 2 * SRAMEnergyPJ(Wordsish(128))
	if got := tb.Access(Wordsish(128)); math.Abs(got-want) > 1e-9 {
		t.Errorf("SRAM scale = %f, want %f", got, want)
	}
}

func TestEDP(t *testing.T) {
	if EDP(10, 5) != 50 {
		t.Error("EDP(10,5) != 50")
	}
}

func TestAreaHelpers(t *testing.T) {
	if SRAMAreaMM2(0) != 0 {
		t.Error("DRAM area should be 0")
	}
	if SRAMAreaMM2(Wordsish(128)) <= SRAMAreaMM2(Wordsish(64)) {
		t.Error("SRAM area should grow with capacity")
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		pj   float64
		want string
	}{
		{1, "pJ"}, {2e3, "nJ"}, {3e6, "uJ"}, {4e9, "mJ"},
	}
	for _, c := range cases {
		if got := Format(c.pj); !strings.Contains(got, c.want) {
			t.Errorf("Format(%f) = %q, want suffix %q", c.pj, got, c.want)
		}
	}
}
