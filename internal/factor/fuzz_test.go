package factor

import "testing"

// FuzzFactorChains cross-checks the three chain primitives against each
// other on randomized (dimension, slot-spec) inputs: EnumerateChains must
// yield exactly CountChains tuples, every yielded tuple must pass
// ValidateChain, and perfect-only chains must multiply out to the dimension
// exactly (imperfect chains may overshoot under ceiling semantics).
//
// Each spec byte encodes one slot: bit 0 is the kind (0 perfect,
// 1 imperfect), bits 1-3 the fanout cap (0 = uncapped).
func FuzzFactorChains(f *testing.F) {
	f.Add(12, []byte{0, 1})
	f.Add(36, []byte{1, 0, 1})
	f.Add(7, []byte{1, 1, 1, 1})
	f.Add(1, []byte{0})
	f.Add(64, []byte{5, 2})
	f.Fuzz(func(t *testing.T, d int, spec []byte) {
		if d < 1 || d > 64 || len(spec) == 0 || len(spec) > 4 {
			t.Skip("outside the cheap enumeration envelope")
		}
		slots := make([]ChainSlot, len(spec))
		perfectOnly := true
		for i, b := range spec {
			slots[i].Kind = SlotKind(b & 1)
			slots[i].Max = int(b>>1) & 7
			if slots[i].Kind != Perfect {
				perfectOnly = false
			}
		}
		want := CountChains(d, slots)
		if want > 50000 {
			t.Skip("mapspace too large for exhaustive enumeration")
		}
		var got uint64
		EnumerateChains(d, slots, func(factors []int) bool {
			got++
			if err := ValidateChain(d, slots, factors); err != nil {
				t.Fatalf("enumerated chain %v invalid: %v", factors, err)
			}
			if perfectOnly {
				prod := 1
				for _, f := range factors {
					prod *= f
				}
				if prod != d {
					t.Fatalf("perfect chain %v has product %d, want %d", factors, prod, d)
				}
			}
			return true
		})
		if got != want {
			t.Fatalf("EnumerateChains yielded %d chains, CountChains says %d", got, want)
		}
		if err := ValidateChain(d, slots, make([]int, len(slots)+1)); err == nil {
			t.Fatal("ValidateChain accepted a wrong-length chain")
		}
	})
}
