// Package factor provides the integer-factorization substrate underlying
// mapspace construction: prime factorizations, divisor enumeration, ordered
// factorizations (Timeloop-style index factorization), and perfect/imperfect
// tile-chain enumeration and counting (the Ruby formulation).
//
// Throughout this package a "chain" over a dimension of size D is a sequence
// of per-slot factors f_1..f_k, applied innermost-first, with the residual
// recursion of the Ruby paper (eq. 5 rewritten as ceiling division):
//
//	r_0 = D
//	r_i = ceil(r_{i-1} / f_i)
//
// A chain is complete when r_k == 1. A slot is *perfect* when f_i must divide
// r_{i-1} (Timeloop's index factorization, eq. 1) and *imperfect* when any
// f_i in [1, r_{i-1}] is allowed (Ruby's remainder terms).
package factor

import (
	"fmt"
	"math"
	"sort"
)

// PrimePower is one term p^e of a prime factorization.
type PrimePower struct {
	P int // prime
	E int // exponent, >= 1
}

// PrimeFactorization returns the prime factorization of n in ascending prime
// order. It panics if n < 1. PrimeFactorization(1) returns an empty slice.
func PrimeFactorization(n int) []PrimePower {
	if n < 1 {
		panic(fmt.Sprintf("factor: PrimeFactorization of %d", n))
	}
	var out []PrimePower
	for p := 2; p*p <= n; p++ {
		if n%p != 0 {
			continue
		}
		e := 0
		for n%p == 0 {
			n /= p
			e++
		}
		out = append(out, PrimePower{P: p, E: e})
	}
	if n > 1 {
		out = append(out, PrimePower{P: n, E: 1})
	}
	return out
}

// Primes returns the flattened prime factor multiset of n in ascending order,
// e.g. Primes(12) = [2 2 3].
func Primes(n int) []int {
	var out []int
	for _, pp := range PrimeFactorization(n) {
		for i := 0; i < pp.E; i++ {
			out = append(out, pp.P)
		}
	}
	return out
}

// Divisors returns all positive divisors of n in ascending order.
// It panics if n < 1.
func Divisors(n int) []int {
	if n < 1 {
		panic(fmt.Sprintf("factor: Divisors of %d", n))
	}
	var out []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if q := n / d; q != d {
				out = append(out, q)
			}
		}
	}
	sort.Ints(out)
	return out
}

// CountDivisors returns the number of positive divisors of n.
func CountDivisors(n int) int {
	c := 1
	for _, pp := range PrimeFactorization(n) {
		c *= pp.E + 1
	}
	return c
}

// CeilDiv returns ceil(a/b) for positive a, b.
func CeilDiv(a, b int) int {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("factor: CeilDiv(%d, %d)", a, b))
	}
	return (a + b - 1) / b
}

// CountOrderedFactorizations returns the number of ordered k-tuples of
// positive integers whose product is exactly n. This is the size of the
// perfect-factorization choice set for one dimension across k slots:
// for n = prod p_i^{e_i} the count is prod C(e_i + k - 1, k - 1).
func CountOrderedFactorizations(n, k int) uint64 {
	if k <= 0 {
		if n == 1 {
			return 1
		}
		return 0
	}
	total := uint64(1)
	for _, pp := range PrimeFactorization(n) {
		total *= binomial(pp.E+k-1, k-1)
	}
	return total
}

// binomial computes C(n, k) in uint64. Inputs in this package stay far below
// overflow territory (exponents of dimensions up to a few thousand).
func binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := uint64(1)
	for i := 1; i <= k; i++ {
		res = res * uint64(n-k+i) / uint64(i)
	}
	return res
}

// OrderedFactorizations calls yield for every ordered k-tuple of positive
// integers with product n, in lexicographic order. The slice passed to yield
// is reused between calls; copy it if it must be retained. Enumeration stops
// early when yield returns false.
func OrderedFactorizations(n, k int, yield func([]int) bool) {
	if k <= 0 {
		if n == 1 {
			yield(nil)
		}
		return
	}
	buf := make([]int, k)
	var rec func(rem, i int) bool
	rec = func(rem, i int) bool {
		if i == k-1 {
			buf[i] = rem
			return yield(buf)
		}
		for _, d := range Divisors(rem) {
			buf[i] = d
			if !rec(rem/d, i+1) {
				return false
			}
		}
		return true
	}
	rec(n, 0)
}

// SlotKind states whether a chain slot must factor perfectly (divide the
// residual) or may leave a remainder.
type SlotKind uint8

const (
	// Perfect slots require the slot factor to divide the incoming residual
	// (Timeloop index factorization).
	Perfect SlotKind = iota
	// Imperfect slots admit any factor in [1, residual], leaving a remainder
	// tile on the final iteration (Ruby).
	Imperfect
)

func (k SlotKind) String() string {
	switch k {
	case Perfect:
		return "perfect"
	case Imperfect:
		return "imperfect"
	default:
		return fmt.Sprintf("SlotKind(%d)", uint8(k))
	}
}

// ChainSlot describes one slot of a chain for enumeration/counting purposes:
// its kind and an optional inclusive cap on the factor (0 = uncapped). Caps
// model hardware fanout limits (e.g. a spatial slot with 9 PEs).
type ChainSlot struct {
	Kind SlotKind
	Max  int
}

// CountChains returns the number of distinct factor tuples (f_1..f_k), with
// slots applied innermost-first, whose residual recursion terminates at 1.
// This is the per-dimension mapspace size studied in Table I of the paper.
//
// Canonical-form rules, mirroring the paper's enumeration:
//   - Perfect slot: f must divide the residual r; residual becomes r/f.
//   - Imperfect slot: any f in [1, r]; residual becomes ceil(r/f). Factors
//     above r are excluded since they duplicate the f == r allocation.
//   - A chain counts only if the final residual is exactly 1.
func CountChains(d int, slots []ChainSlot) uint64 {
	if d < 1 {
		panic(fmt.Sprintf("factor: CountChains dimension %d", d))
	}
	type key struct{ r, i int }
	memo := make(map[key]uint64)
	var count func(r, i int) uint64
	count = func(r, i int) uint64 {
		if i == len(slots) {
			if r == 1 {
				return 1
			}
			return 0
		}
		if r == 1 {
			// All remaining slots must take factor 1; exactly one way.
			return 1
		}
		k := key{r, i}
		if v, ok := memo[k]; ok {
			return v
		}
		var total uint64
		s := slots[i]
		switch s.Kind {
		case Perfect:
			for _, f := range Divisors(r) {
				if s.Max > 0 && f > s.Max {
					continue
				}
				total += count(r/f, i+1)
			}
		case Imperfect:
			hi := r
			if s.Max > 0 && s.Max < hi {
				hi = s.Max
			}
			for f := 1; f <= hi; f++ {
				total += count(CeilDiv(r, f), i+1)
			}
		}
		memo[k] = total
		return total
	}
	return count(d, 0)
}

// EnumerateChains calls yield for every factor tuple counted by CountChains,
// innermost slot first. The slice passed to yield is reused; copy to retain.
// Enumeration stops early when yield returns false.
func EnumerateChains(d int, slots []ChainSlot, yield func(factors []int) bool) {
	if d < 1 {
		panic(fmt.Sprintf("factor: EnumerateChains dimension %d", d))
	}
	buf := make([]int, len(slots))
	var rec func(r, i int) bool
	rec = func(r, i int) bool {
		if i == len(slots) {
			if r == 1 {
				return yield(buf)
			}
			return true
		}
		if r == 1 {
			buf[i] = 1
			return rec(1, i+1)
		}
		s := slots[i]
		switch s.Kind {
		case Perfect:
			for _, f := range Divisors(r) {
				if s.Max > 0 && f > s.Max {
					continue
				}
				buf[i] = f
				if !rec(r/f, i+1) {
					return false
				}
			}
		case Imperfect:
			hi := r
			if s.Max > 0 && s.Max < hi {
				hi = s.Max
			}
			for f := 1; f <= hi; f++ {
				buf[i] = f
				if !rec(CeilDiv(r, f), i+1) {
					return false
				}
			}
		}
		return true
	}
	rec(d, 0)
}

// ValidateChain checks that factors form a complete chain over dimension d
// with the given slot kinds, returning a descriptive error otherwise.
func ValidateChain(d int, slots []ChainSlot, factors []int) error {
	if len(factors) != len(slots) {
		return fmt.Errorf("factor: chain has %d factors for %d slots", len(factors), len(slots))
	}
	r := d
	for i, f := range factors {
		if f < 1 {
			return fmt.Errorf("factor: slot %d factor %d < 1", i, f)
		}
		if r == 1 {
			if f != 1 {
				return fmt.Errorf("factor: slot %d factor %d after residual reached 1", i, f)
			}
			continue
		}
		if f > r {
			return fmt.Errorf("factor: slot %d factor %d exceeds residual %d", i, f, r)
		}
		if slots[i].Max > 0 && f > slots[i].Max {
			return fmt.Errorf("factor: slot %d factor %d exceeds cap %d", i, f, slots[i].Max)
		}
		switch slots[i].Kind {
		case Perfect:
			if r%f != 0 {
				return fmt.Errorf("factor: slot %d is perfect but %d does not divide residual %d", i, f, r)
			}
			r /= f
		case Imperfect:
			r = CeilDiv(r, f)
		}
	}
	if r != 1 {
		return fmt.Errorf("factor: chain leaves residual %d over dimension %d", r, d)
	}
	return nil
}

// Log2Chains returns log2 of CountChains, useful for plotting Table I-style
// growth without overflow concerns at display time.
func Log2Chains(d int, slots []ChainSlot) float64 {
	c := CountChains(d, slots)
	if c == 0 {
		return math.Inf(-1)
	}
	return math.Log2(float64(c))
}
