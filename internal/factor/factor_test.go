package factor

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPrimeFactorization(t *testing.T) {
	cases := []struct {
		n    int
		want []PrimePower
	}{
		{1, nil},
		{2, []PrimePower{{2, 1}}},
		{12, []PrimePower{{2, 2}, {3, 1}}},
		{97, []PrimePower{{97, 1}}},
		{100, []PrimePower{{2, 2}, {5, 2}}},
		{4096, []PrimePower{{2, 12}}},
		{2310, []PrimePower{{2, 1}, {3, 1}, {5, 1}, {7, 1}, {11, 1}}},
	}
	for _, c := range cases {
		got := PrimeFactorization(c.n)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("PrimeFactorization(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestPrimeFactorizationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PrimeFactorization(0) did not panic")
		}
	}()
	PrimeFactorization(0)
}

func TestPrimeFactorizationReconstructs(t *testing.T) {
	f := func(n int) bool {
		n = n%10000 + 1
		if n < 1 {
			n = -n + 1
		}
		prod := 1
		for _, pp := range PrimeFactorization(n) {
			for i := 0; i < pp.E; i++ {
				prod *= pp.P
			}
		}
		return prod == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrimes(t *testing.T) {
	if got := Primes(360); !reflect.DeepEqual(got, []int{2, 2, 2, 3, 3, 5}) {
		t.Errorf("Primes(360) = %v", got)
	}
	if got := Primes(1); got != nil {
		t.Errorf("Primes(1) = %v, want nil", got)
	}
}

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{7, []int{1, 7}},
		{12, []int{1, 2, 3, 4, 6, 12}},
		{100, []int{1, 2, 4, 5, 10, 20, 25, 50, 100}},
		{36, []int{1, 2, 3, 4, 6, 9, 12, 18, 36}},
	}
	for _, c := range cases {
		if got := Divisors(c.n); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Divisors(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestDivisorsProperties(t *testing.T) {
	f := func(n int) bool {
		n = n%5000 + 1
		if n < 1 {
			n = -n + 1
		}
		ds := Divisors(n)
		if len(ds) != CountDivisors(n) {
			return false
		}
		for i, d := range ds {
			if n%d != 0 {
				return false
			}
			if i > 0 && ds[i-1] >= d {
				return false // strictly ascending
			}
		}
		return ds[0] == 1 && ds[len(ds)-1] == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{100, 6, 17}, {100, 5, 20}, {1, 1, 1}, {7, 7, 1}, {8, 7, 2}, {27, 14, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCountOrderedFactorizations(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{1, 3, 1},
		{7, 1, 1},
		{7, 2, 2},  // 1*7, 7*1
		{4, 2, 3},  // 1*4, 2*2, 4*1
		{12, 2, 6}, // one per divisor
		{12, 3, 18},
		{100, 3, 36}, // (2+2 choose 2)^2 = 6*6
		{6, 0, 0},
		{1, 0, 1},
	}
	for _, c := range cases {
		if got := CountOrderedFactorizations(c.n, c.k); got != c.want {
			t.Errorf("CountOrderedFactorizations(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestOrderedFactorizationsMatchesCount(t *testing.T) {
	for _, n := range []int{1, 2, 7, 12, 36, 100, 128} {
		for k := 1; k <= 4; k++ {
			var got uint64
			OrderedFactorizations(n, k, func(fs []int) bool {
				prod := 1
				for _, f := range fs {
					prod *= f
				}
				if prod != n {
					t.Fatalf("OrderedFactorizations(%d,%d) yielded %v with product %d", n, k, fs, prod)
				}
				got++
				return true
			})
			if want := CountOrderedFactorizations(n, k); got != want {
				t.Errorf("OrderedFactorizations(%d,%d) yielded %d tuples, want %d", n, k, got, want)
			}
		}
	}
}

func TestOrderedFactorizationsEarlyStop(t *testing.T) {
	calls := 0
	OrderedFactorizations(36, 3, func([]int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop: got %d calls, want 3", calls)
	}
}

// perfectSlots returns k uncapped perfect slots.
func perfectSlots(k int) []ChainSlot {
	s := make([]ChainSlot, k)
	return s
}

// imperfectSlots returns k uncapped imperfect slots.
func imperfectSlots(k int) []ChainSlot {
	s := make([]ChainSlot, k)
	for i := range s {
		s[i].Kind = Imperfect
	}
	return s
}

func TestCountChainsPerfectEqualsOrderedFactorizations(t *testing.T) {
	for _, d := range []int{1, 3, 7, 12, 100, 360} {
		for k := 1; k <= 4; k++ {
			got := CountChains(d, perfectSlots(k))
			want := CountOrderedFactorizations(d, k)
			if got != want {
				t.Errorf("CountChains(%d, %d perfect) = %d, want %d", d, k, got, want)
			}
		}
	}
}

func TestCountChainsImperfectSmall(t *testing.T) {
	// d=2, two imperfect slots: tuples (innermost first) with residual rule:
	// (1,2): r=2->2->1 ok; (2,1): r=2->1->1 ok. f1=2 forces r=1 then f2=1.
	if got := CountChains(2, imperfectSlots(2)); got != 2 {
		t.Errorf("CountChains(2, imperfect^2) = %d, want 2", got)
	}
	// d=3, two imperfect slots: f1 in {1,2,3}: f1=1 -> r=3 -> f2=3;
	// f1=2 -> r=2 -> f2=2; f1=3 -> r=1 -> f2=1. Three chains.
	if got := CountChains(3, imperfectSlots(2)); got != 3 {
		t.Errorf("CountChains(3, imperfect^2) = %d, want 3", got)
	}
	// One imperfect slot: only f=d works.
	for _, d := range []int{1, 2, 9, 17} {
		if got := CountChains(d, imperfectSlots(1)); got != 1 {
			t.Errorf("CountChains(%d, imperfect^1) = %d, want 1", d, got)
		}
	}
	// Two imperfect slots: every f1 in [1,d] yields exactly one completion.
	for _, d := range []int{1, 2, 9, 17, 100} {
		if got := CountChains(d, imperfectSlots(2)); got != uint64(d) {
			t.Errorf("CountChains(%d, imperfect^2) = %d, want %d", d, got, d)
		}
	}
}

func TestCountChainsSupersetOfPerfect(t *testing.T) {
	// Ruby's mapspace is a strict superset of the PFM mapspace for any d > 2
	// and >= 2 slots (the paper's eq. 5 reduces to eq. 1 when R_n = P_n).
	for _, d := range []int{3, 9, 100, 127} {
		for k := 2; k <= 3; k++ {
			p := CountChains(d, perfectSlots(k))
			r := CountChains(d, imperfectSlots(k))
			if r <= p {
				t.Errorf("d=%d k=%d: Ruby count %d not > PFM count %d", d, k, r, p)
			}
		}
	}
}

func TestEnumerateChainsMatchesCountAndValidates(t *testing.T) {
	slotSets := [][]ChainSlot{
		perfectSlots(3),
		imperfectSlots(3),
		{{Kind: Imperfect, Max: 9}, {Kind: Perfect}, {Kind: Perfect}},
		{{Kind: Perfect}, {Kind: Imperfect}, {Kind: Perfect, Max: 4}},
	}
	for _, slots := range slotSets {
		for _, d := range []int{1, 5, 12, 28} {
			var got uint64
			seen := make(map[string]bool)
			EnumerateChains(d, slots, func(fs []int) bool {
				if err := ValidateChain(d, slots, fs); err != nil {
					t.Fatalf("EnumerateChains(%d, %v) yielded invalid %v: %v", d, slots, fs, err)
				}
				key := ""
				for _, f := range fs {
					key += string(rune(f)) + ","
				}
				if seen[key] {
					t.Fatalf("duplicate chain %v for d=%d", fs, d)
				}
				seen[key] = true
				got++
				return true
			})
			if want := CountChains(d, slots); got != want {
				t.Errorf("EnumerateChains(%d, %v) yielded %d, want %d", d, slots, got, want)
			}
		}
	}
}

func TestChainCapsPrune(t *testing.T) {
	// Fanout cap of 9 on the spatial (innermost) slot, as in Table I.
	capped := []ChainSlot{{Kind: Imperfect, Max: 9}, {Kind: Imperfect}}
	uncapped := imperfectSlots(2)
	for _, d := range []int{16, 100, 1000} {
		c := CountChains(d, capped)
		u := CountChains(d, uncapped)
		if c >= u {
			t.Errorf("d=%d: capped count %d not < uncapped %d", d, c, u)
		}
		if c != 9 {
			// With two imperfect slots and innermost cap 9, each f1 in [1,9]
			// completes exactly one way.
			t.Errorf("d=%d: capped count = %d, want 9", d, c)
		}
	}
}

func TestValidateChainErrors(t *testing.T) {
	slots := []ChainSlot{{Kind: Perfect}, {Kind: Imperfect}}
	cases := []struct {
		d  int
		fs []int
	}{
		{12, []int{5, 3}},    // 5 does not divide 12
		{12, []int{2, 2}},    // residual 3 left over
		{12, []int{0, 12}},   // factor < 1
		{12, []int{2, 6, 1}}, // wrong arity
		{12, []int{12, 2}},   // factor after residual hit 1
		{12, []int{2, 7}},    // imperfect factor exceeds residual 6
	}
	for _, c := range cases {
		if err := ValidateChain(c.d, slots, c.fs); err == nil {
			t.Errorf("ValidateChain(%d, %v) = nil, want error", c.d, c.fs)
		}
	}
	if err := ValidateChain(12, slots, []int{2, 6}); err != nil {
		t.Errorf("ValidateChain(12, [2 6]) = %v, want nil", err)
	}
	if err := ValidateChain(12, slots, []int{2, 4}); err != nil {
		// 12/2=6, ceil(6/4)=2... residual 2 != 1, so this must fail.
		t.Logf("as expected: %v", err)
	} else {
		t.Error("ValidateChain(12, [2 4]) = nil, want residual error")
	}
}

func TestChainMonotonicityProperty(t *testing.T) {
	// Property: for random d, the Ruby-S-style count (imperfect innermost,
	// perfect rest) lies between PFM and full Ruby.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		d := rng.Intn(300) + 2
		k := rng.Intn(2) + 2
		pfm := CountChains(d, perfectSlots(k))
		mixed := make([]ChainSlot, k)
		mixed[0].Kind = Imperfect
		s := CountChains(d, mixed)
		ruby := CountChains(d, imperfectSlots(k))
		if s < pfm || ruby < s {
			t.Errorf("d=%d k=%d: want PFM(%d) <= Ruby-S-style(%d) <= Ruby(%d)", d, k, pfm, s, ruby)
		}
	}
}

func TestLog2Chains(t *testing.T) {
	if got := Log2Chains(4, perfectSlots(2)); got < 1.58 || got > 1.59 {
		t.Errorf("Log2Chains(4, perfect^2) = %f, want log2(3)", got)
	}
}
