package heuristic

import (
	"context"

	"testing"

	"ruby/internal/arch"
	"ruby/internal/engine"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/search"
	"ruby/internal/workloads"
)

func TestConstructToy(t *testing.T) {
	w := workloads.Rank1(100)
	a := arch.ToyGLB(6, 512)
	ev := nest.MustEvaluator(w, a)
	m, c, err := Construct(ev, mapspace.RubyS, mapspace.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid {
		t.Fatalf("invalid: %s", c.Reason)
	}
	// The constructive mapper should saturate the 6 PEs: the Fig. 5 mapping.
	if c.Cycles != 17 {
		t.Errorf("cycles = %f, want 17\n%s", c.Cycles, m.Render(w, a))
	}
	// Under PFM rules it is limited to divisor parallelism (5 PEs).
	_, cp, err := Construct(ev, mapspace.PFM, mapspace.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cycles != 20 {
		t.Errorf("PFM cycles = %f, want 20", cp.Cycles)
	}
}

func TestConstructValidOnAllResNetLayers(t *testing.T) {
	a := arch.EyerissLike(14, 12, 128)
	for _, l := range workloads.ResNet50() {
		ev := nest.MustEvaluator(l.Work, a)
		cons := mapspace.EyerissRowStationary(l.Work)
		for _, kind := range []mapspace.Kind{mapspace.PFM, mapspace.RubyS} {
			_, c, err := Construct(ev, kind, cons)
			if err != nil {
				t.Fatalf("%s/%v: %v", l.Name, kind, err)
			}
			if !c.Valid {
				t.Fatalf("%s/%v: invalid: %s", l.Name, kind, c.Reason)
			}
		}
	}
}

func TestConstructUtilizationOnPointwise(t *testing.T) {
	var l workloads.Layer
	for _, ll := range workloads.ResNet50() {
		if ll.Name == "res4x_branch2c" {
			l = ll
		}
	}
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(l.Work, a)
	cons := mapspace.EyerissRowStationary(l.Work)
	_, rs, err := Construct(ev, mapspace.RubyS, cons)
	if err != nil {
		t.Fatal(err)
	}
	_, pfm, err := Construct(ev, mapspace.PFM, cons)
	if err != nil {
		t.Fatal(err)
	}
	// Ruby-S's whole point: imperfect spatial factors keep the array busy on
	// misaligned pointwise layers.
	if rs.Utilization < 0.85 {
		t.Errorf("Ruby-S heuristic utilization = %f, want >= 0.85", rs.Utilization)
	}
	if rs.Utilization < pfm.Utilization {
		t.Errorf("Ruby-S (%f) should not trail PFM (%f) in utilization", rs.Utilization, pfm.Utilization)
	}
}

func TestConstructCompetitiveWithShortSearch(t *testing.T) {
	var l workloads.Layer
	for _, ll := range workloads.ResNet50() {
		if ll.Name == "res5b_branch2a" {
			l = ll
		}
	}
	a := arch.EyerissLike(14, 12, 128)
	ev := nest.MustEvaluator(l.Work, a)
	cons := mapspace.EyerissRowStationary(l.Work)
	_, c, err := Construct(ev, mapspace.RubyS, cons)
	if err != nil {
		t.Fatal(err)
	}
	sp := mapspace.New(l.Work, a, mapspace.RubyS, cons)
	res := search.Random(context.Background(), sp, engine.New(ev), search.Options{Seed: 1, Threads: 2, MaxEvaluations: 2000})
	if res.Best == nil {
		t.Fatal("search found nothing")
	}
	// One-shot construction should land within a small multiple of a
	// 2000-sample search (multithreaded search results vary run to run, so
	// the bound is loose; the heuristic's contract is validity + high
	// utilization at ~30 evaluations, not optimality).
	if c.EDP > 6*res.BestCost.EDP {
		t.Errorf("heuristic EDP %g far worse than short search %g", c.EDP, res.BestCost.EDP)
	}
	t.Logf("heuristic %g (util %.2f) vs 2000-sample search %g (util %.2f)",
		c.EDP, c.Utilization, res.BestCost.EDP, res.BestCost.Utilization)
}

func TestConstructFallback(t *testing.T) {
	// A hierarchy whose on-chip level cannot hold even single elements of
	// all tensors still maps via DRAM streaming.
	w := workloads.Rank1(10)
	a := arch.ToyGLB(2, 1)
	ev := nest.MustEvaluator(w, a)
	_, c, err := Construct(ev, mapspace.RubyS, mapspace.Constraints{})
	if err == nil && !c.Valid {
		t.Error("invalid cost without error")
	}
	// Capacity 1 word cannot hold input + output tiles: expect an error.
	if err == nil {
		t.Log("fallback mapped via DRAM streaming:", c.Reason)
	}
}

func TestLargestDivisorLE(t *testing.T) {
	cases := []struct{ n, cap, want int }{
		{100, 6, 5}, {100, 10, 10}, {7, 6, 1}, {27, 14, 9}, {1, 5, 1},
	}
	for _, c := range cases {
		if got := largestDivisorLE(c.n, c.cap); got != c.want {
			t.Errorf("largestDivisorLE(%d,%d) = %d, want %d", c.n, c.cap, got, c.want)
		}
	}
}
