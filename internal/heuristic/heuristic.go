// Package heuristic is a deterministic one-shot constructive mapper in the
// spirit of COSA: instead of searching, it builds a single mapping directly —
// spatial factors first (saturating the array, using imperfect factors when
// the mapspace kind permits them), then temporal factors grown greedily
// against buffer capacities, with reuse-oriented loop orders. It demonstrates
// that the Ruby mapspaces compose with constructive approaches as well as
// with search, and provides fast warm starts for the searchers.
package heuristic

import (
	"fmt"
	"sort"

	"ruby/internal/factor"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

// Construct builds a mapping for the evaluator's workload/architecture pair
// under the given mapspace kind and constraints, and returns it with its
// cost. The construction never fails for satisfiable problems: the
// all-at-DRAM mapping is the fallback.
func Construct(ev *nest.Evaluator, kind mapspace.Kind, cons mapspace.Constraints) (*mapping.Mapping, nest.Cost, error) {
	w, a := ev.Work, ev.Arch
	slots := ev.Slots

	b := &builder{
		ev: ev, kind: kind, cons: cons,
		slots:    slots,
		factors:  make(map[string][]int, len(w.Dims)),
		residual: make(map[string]int, len(w.Dims)),
	}
	for _, d := range w.Dims {
		fs := make([]int, len(slots))
		for i := range fs {
			fs[i] = 1
		}
		b.factors[d.Name] = fs
		b.residual[d.Name] = d.Bound
	}

	// 1. Spatial saturation, innermost spatial slots first (vector lanes
	// before the PE array): pack the fanout with the largest admissible
	// factors of the dimensions each axis allows.
	for si := len(slots) - 1; si >= 0; si-- {
		if slots[si].Spatial() {
			b.fillSpatial(si)
		}
	}

	// 2. Temporal growth at each storage level, innermost first, maximizing
	// buffer-resident reuse subject to capacity (checked by trial
	// evaluation). Weight-relevant dimensions grow first at inner levels
	// (filter reuse), input-relevant ones at outer on-chip levels.
	for li := len(a.Levels) - 1; li >= 1; li-- {
		b.growTemporal(li)
	}

	// 3. Whatever residual remains goes to DRAM's temporal slot.
	for _, d := range w.Dims {
		b.factors[d.Name][0] = b.residual[d.Name]
		b.residual[d.Name] = 1
	}

	// 4. Loop orders: reuse-oriented perms, with a couple of alternatives
	// evaluated and the best kept.
	best, bestCost := b.pickPerms()
	if !bestCost.Valid {
		// Fallback: stream everything from DRAM.
		m := mapping.Uniform(w, a, 0)
		c := ev.Evaluate(m)
		if !c.Valid {
			return nil, c, fmt.Errorf("heuristic: no valid mapping exists (%s)", c.Reason)
		}
		return m, c, nil
	}
	return best, bestCost, nil
}

type builder struct {
	ev       *nest.Evaluator
	kind     mapspace.Kind
	cons     mapspace.Constraints
	slots    []mapping.Slot
	factors  map[string][]int
	residual map[string]int
}

// imperfectAt reports whether the kind permits remainders at the slot.
func (b *builder) imperfectAt(s mapping.Slot) bool {
	if s.Spatial() {
		return b.kind == mapspace.Ruby || b.kind == mapspace.RubyS
	}
	return b.kind == mapspace.Ruby || b.kind == mapspace.RubyT
}

// allowed reports whether dim may take spatial factors on the slot's axis.
func (b *builder) allowed(s mapping.Slot, dim string) bool {
	var list []string
	switch s.Kind {
	case mapping.SpatialX:
		list = b.cons.SpatialX
	case mapping.SpatialY:
		list = b.cons.SpatialY
	default:
		return true
	}
	if list == nil {
		return true
	}
	for _, d := range list {
		if d == dim {
			return true
		}
	}
	return false
}

// assign applies factor f to dim at slot si, updating the residual.
func (b *builder) assign(si int, dim string, f int) {
	if f <= 1 {
		return
	}
	b.factors[dim][si] *= f
	r := b.residual[dim]
	if b.factors[dim][si] >= r {
		b.residual[dim] = 1
		return
	}
	if r%f == 0 {
		b.residual[dim] = r / f
	} else {
		b.residual[dim] = factor.CeilDiv(r, f)
	}
}

// fillSpatial packs one spatial slot: repeatedly give the allowed dimension
// with the largest residual its best admissible factor until the fanout
// budget is exhausted or no dimension can contribute.
func (b *builder) fillSpatial(si int) {
	s := b.slots[si]
	budget := s.Fanout
	imperfect := b.imperfectAt(s)
	for budget > 1 {
		bestDim, bestF := "", 1
		for _, d := range b.ev.Work.DimNames() {
			if !b.allowed(s, d) {
				continue
			}
			r := b.residual[d]
			if r <= 1 {
				continue
			}
			var f int
			if imperfect {
				f = r
				if f > budget {
					f = budget
				}
			} else {
				f = largestDivisorLE(r, budget)
			}
			if f > bestF {
				bestDim, bestF = d, f
			}
		}
		if bestDim == "" {
			return
		}
		b.assign(si, bestDim, bestF)
		budget /= bestF
	}
}

// growTemporal grows the temporal factors of one storage level: for each
// dimension in reuse priority order, adopt the largest admissible factor
// that keeps the trial mapping capacity-valid.
func (b *builder) growTemporal(li int) {
	si := mapping.FirstSlotOfLevel(b.slots, li)
	s := b.slots[si]
	imperfect := b.imperfectAt(s)

	for _, d := range b.priorityDims(li) {
		r := b.residual[d]
		if r <= 1 {
			continue
		}
		var candidates []int
		if imperfect {
			for f := r; f >= 2; f-- {
				candidates = append(candidates, f)
			}
			if len(candidates) > 24 {
				// Thin out huge ranges: keep the extremes and divisors.
				thin := candidates[:0]
				for _, f := range candidates {
					if f == r || f == 2 || r%f == 0 || f%8 == 0 {
						thin = append(thin, f)
					}
				}
				candidates = thin
			}
		} else {
			divs := factor.Divisors(r)
			for i := len(divs) - 1; i >= 0; i-- {
				if divs[i] > 1 {
					candidates = append(candidates, divs[i])
				}
			}
		}
		for _, f := range candidates {
			old := b.factors[d][si]
			oldR := b.residual[d]
			b.assign(si, d, f)
			if b.trialValid() {
				break
			}
			b.factors[d][si] = old
			b.residual[d] = oldR
		}
	}
}

// trialValid evaluates the current partial assignment with the residuals
// parked at DRAM.
func (b *builder) trialValid() bool {
	m := b.snapshot(mapping.DefaultPerms(b.ev.Work, b.ev.Arch))
	return b.ev.Evaluate(m).Valid
}

// snapshot materializes the current factor state as a mapping.
func (b *builder) snapshot(perms [][]string) *mapping.Mapping {
	m := &mapping.Mapping{Factors: make(map[string][]int, len(b.factors)), Perms: perms}
	for d, fs := range b.factors {
		out := append([]int(nil), fs...)
		out[0] *= b.residual[d] // park the unassigned residual at DRAM
		m.Factors[d] = out
	}
	return m
}

// priorityDims orders dimensions for temporal growth at a level: the
// innermost on-chip level grows weight-relevant dimensions first (filter
// reuse in the per-PE scratchpads), outer levels grow input-relevant ones
// (activation reuse in shared buffers). Larger residuals break ties.
func (b *builder) priorityDims(li int) []string {
	w := b.ev.Work
	var keyTensor *workload.Tensor
	if li == len(b.ev.Arch.Levels)-1 {
		keyTensor = w.TensorByRole(workload.Weight)
	} else {
		keyTensor = w.TensorByRole(workload.Input)
	}
	dims := append([]string(nil), w.DimNames()...)
	sort.SliceStable(dims, func(i, j int) bool {
		ri := keyTensor != nil && keyTensor.Relevant(dims[i])
		rj := keyTensor != nil && keyTensor.Relevant(dims[j])
		if ri != rj {
			return ri
		}
		return b.residual[dims[i]] > b.residual[dims[j]]
	})
	return dims
}

// pickPerms evaluates a small set of reuse-oriented loop orders and keeps
// the best.
func (b *builder) pickPerms() (*mapping.Mapping, nest.Cost) {
	w := b.ev.Work
	out := w.Output()
	weight := w.TensorByRole(workload.Weight)

	// Order A: weight-irrelevant loops innermost at every on-chip level
	// (weights stay resident while activations stream).
	weightStationary := orderBy(w.DimNames(), func(d string) bool {
		return weight != nil && weight.Relevant(d)
	})
	// Order B: output-relevant loops outermost, reductions innermost
	// (partial sums accumulate in place).
	outputStationary := orderBy(w.DimNames(), func(d string) bool {
		return out.Relevant(d)
	})

	var best *mapping.Mapping
	var bestCost nest.Cost
	for _, perm := range [][]string{weightStationary, outputStationary, w.DimNames()} {
		perms := make([][]string, len(b.ev.Arch.Levels))
		for li := range perms {
			perms[li] = perm
		}
		m := b.snapshot(perms)
		c := b.ev.Evaluate(m)
		if c.Valid && (best == nil || c.EDP < bestCost.EDP) {
			best, bestCost = m, c
		}
	}
	return best, bestCost
}

// orderBy returns dims with those satisfying pred first (outermost).
func orderBy(dims []string, pred func(string) bool) []string {
	out := make([]string, 0, len(dims))
	for _, d := range dims {
		if pred(d) {
			out = append(out, d)
		}
	}
	for _, d := range dims {
		if !pred(d) {
			out = append(out, d)
		}
	}
	return out
}

// largestDivisorLE returns the largest divisor of n not exceeding cap (at
// least 1).
func largestDivisorLE(n, cap int) int {
	best := 1
	for _, d := range factor.Divisors(n) {
		if d <= cap && d > best {
			best = d
		}
	}
	return best
}
