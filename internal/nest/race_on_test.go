//go:build race

package nest_test

// raceEnabled gates allocation-count assertions: the race detector changes
// sync.Pool behavior and instrumented allocation counts.
const raceEnabled = true
