package nest

import (
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// FusedCost is the evaluation result for one fused producer/consumer pair:
// both layers run with the intermediate tensor resident at the shared
// on-chip level, eliding its DRAM round-trip. Producer and Consumer carry
// the per-phase costs after elision; the combined metrics model the phases
// running back to back on the same hardware.
type FusedCost struct {
	// Valid reports whether the pair of mappings admits fusion at all.
	// Invalid results carry a Reason and no metrics.
	Valid  bool
	Reason string

	// Producer and Consumer are the per-phase costs with the intermediate's
	// DRAM traffic elided (bandwidth stretch and leakage recomputed).
	Producer Cost
	Consumer Cost

	// Combined sequential-phase metrics: Cycles and EnergyPJ sum the
	// phases; EDP is their product.
	Cycles   float64
	EnergyPJ float64
	EDP      float64

	// ElidedWords counts the DRAM words the fusion removed (producer
	// writes + consumer reads of the intermediate).
	ElidedWords float64
}

// FusedEvaluator evaluates fused mappings of one network edge: the
// producer's output tensor feeds the consumer's input tensor, both tiled so
// the intermediate lives at one shared on-chip level. It owns its scratch
// memory: use one FusedEvaluator per goroutine (the per-layer Evaluators it
// is built from stay shared).
type FusedEvaluator struct {
	Bind  workload.EdgeBinding
	Arch  *arch.Arch
	Level int // the shared level holding the intermediate

	pe, ce   *Evaluator
	pp, cp   *Plan
	ps, cs   *Scratch
	fuseSlot int
}

// NewFusedEvaluator builds a fused evaluator for one edge binding at the
// given shared level (values < 1 default to level 1).
func NewFusedEvaluator(b workload.EdgeBinding, a *arch.Arch, level int) (*FusedEvaluator, error) {
	if level < 1 {
		level = 1
	}
	if level >= len(a.Levels) {
		return nil, fmt.Errorf("nest: fuse level %d out of range (arch has %d levels)", level, len(a.Levels))
	}
	pe, err := NewEvaluator(b.Prod.Work, a)
	if err != nil {
		return nil, fmt.Errorf("nest: fused producer %s: %w", b.Prod.Name, err)
	}
	ce, err := NewEvaluator(b.Cons.Work, a)
	if err != nil {
		return nil, fmt.Errorf("nest: fused consumer %s: %w", b.Cons.Name, err)
	}
	return &FusedEvaluator{
		Bind: b, Arch: a, Level: level,
		pe: pe, ce: ce,
		pp: pe.plan, cp: ce.plan,
		ps: pe.plan.NewScratch(), cs: ce.plan.NewScratch(),
		fuseSlot: pe.firstSlot[level],
	}, nil
}

// Producer returns the per-layer evaluator of the edge's producer.
func (f *FusedEvaluator) Producer() *Evaluator { return f.pe }

// Consumer returns the per-layer evaluator of the edge's consumer.
func (f *FusedEvaluator) Consumer() *Evaluator { return f.ce }

// fusedInvalid builds an invalid fused verdict.
func fusedInvalid(format string, args ...any) FusedCost {
	return FusedCost{Reason: fmt.Sprintf(format, args...)}
}

// firstKeptOnChip returns the innermost-of-DRAM level at which the tensor's
// role is first kept (the child of its DRAM link), or -1 when nothing
// on-chip stores it.
func firstKeptOnChip(p *Plan, s *Scratch, ti int) int {
	bit := mapping.RoleBit(p.tensors[ti].role)
	for li := 1; li < p.nLevels; li++ {
		if s.kept[li]&bit != 0 {
			return li
		}
	}
	return -1
}

// linkStats re-runs the stationarity walk of Plan.linkTraffic for one
// (tensor, DRAM->child) link and reports its multipliers: fills and
// readsMult/delivMult as in the kernel, and distinct (the number of distinct
// tiles the walked loops address). The walk mirrors linkTraffic so fused
// validity checks can reason about re-fetch and read-modify-write without
// touching the single-layer kernel.
func linkStats(p *Plan, dm *mapping.Dense, s *Scratch, ti, parent, child int) (fills, readsMult, delivMult, distinct float64) {
	t := &p.tensors[ti]
	rel := t.rel
	inRun := true
	fills, readsMult, delivMult, distinct = 1, 1, 1, 1
	boundary := p.firstSlot[child]
	for si := boundary - 1; si >= 0; si-- {
		sl := &p.slots[si]
		row := s.trips[si*p.nDims : si*p.nDims+p.nDims]
		if sl.Kind == mapping.Temporal {
			base := sl.Level * p.nDims
			for pi := p.nDims - 1; pi >= 0; pi-- {
				d := int(dm.Perm[base+pi])
				tr := float64(row[d])
				if tr == 1 {
					continue
				}
				r := rel[d]
				if r {
					distinct *= tr
				}
				if inRun && !r {
					continue
				}
				inRun = false
				fills *= tr
			}
			continue
		}
		for d := 0; d < p.nDims; d++ {
			tr := float64(row[d])
			if tr == 1 {
				continue
			}
			if rel[d] {
				readsMult *= tr
				delivMult *= tr
				distinct *= tr
				continue
			}
			delivMult *= tr
			if sl.Level < parent || !sl.Multicast {
				readsMult *= tr
			}
		}
	}
	return fills, readsMult, delivMult, distinct
}

// ConsumerFusable reports whether a consumer mapping satisfies the
// consumer-side fusion preconditions on its own — input resident at the
// fused level and fetched from DRAM exactly once — along with its per-layer
// cost (detached). Segment searches use it to shortlist consumer tilings
// before spending producer-search budget; Evaluate re-checks everything.
func (f *FusedEvaluator) ConsumerFusable(cm *mapping.Mapping) (Cost, bool) {
	cdm, err := cm.Dense(f.cp.work, f.cp.arch, f.cp.slots)
	if err != nil {
		return invalidDense(err), false
	}
	cc := f.cp.EvaluateInto(cdm, f.cs)
	if !cc.Valid {
		return cc.Clone(), false
	}
	cc = cc.Clone()
	inTi := f.Bind.InIndex
	if firstKeptOnChip(f.cp, f.cs, inTi) != f.Level {
		return cc, false
	}
	cFills, cReads, _, cDistinct := linkStats(f.cp, cdm, f.cs, inTi, 0, f.Level)
	return cc, cFills*cReads <= cDistinct
}

// Evaluate computes the fused cost of (producer mapping, consumer mapping).
// Both mappings are first evaluated by the unchanged per-layer kernel; when
// the pair admits fusion, the intermediate's DRAM link is subtracted from
// both sides and latency, bandwidth stretch and leakage are recomputed.
// The returned per-phase Costs are detached from the evaluator's scratch.
func (f *FusedEvaluator) Evaluate(pm, cm *mapping.Mapping) FusedCost {
	pdm, err := pm.Dense(f.pp.work, f.pp.arch, f.pp.slots)
	if err != nil {
		return fusedInvalid("producer %s: %s", f.Bind.Prod.Name, invalidDense(err).Reason)
	}
	cdm, err := cm.Dense(f.cp.work, f.cp.arch, f.cp.slots)
	if err != nil {
		return fusedInvalid("consumer %s: %s", f.Bind.Cons.Name, invalidDense(err).Reason)
	}

	pc := f.pp.EvaluateInto(pdm, f.ps)
	if !pc.Valid {
		return fusedInvalid("producer %s: %s", f.Bind.Prod.Name, pc.Reason)
	}
	cc := f.cp.EvaluateInto(cdm, f.cs)
	if !cc.Valid {
		return fusedInvalid("consumer %s: %s", f.Bind.Cons.Name, cc.Reason)
	}

	F := f.Level
	outTi, inTi := f.Bind.OutIndex, f.Bind.InIndex

	// The intermediate's home: the producer's output and the consumer's
	// input must both live first at the shared level, so the elided DRAM
	// link is exactly (DRAM -> F) on both sides.
	if li := firstKeptOnChip(f.pp, f.ps, outTi); li != F {
		return fusedInvalid("producer %s: output lives at level %d, not the fused level %d",
			f.Bind.Prod.Name, li, F)
	}
	if li := firstKeptOnChip(f.cp, f.cs, inTi); li != F {
		return fusedInvalid("consumer %s: input lives at level %d, not the fused level %d",
			f.Bind.Cons.Name, li, F)
	}

	// Tile alignment: along every corresponded dimension the producer's
	// extent at the fused level must divide the consumer's advance, so
	// produced tiles compose exactly into consumed tiles.
	si := f.fuseSlot
	csi := f.ce.firstSlot[F]
	for _, pr := range f.Bind.Pairs {
		pe := pdm.CumAt(f.pp.dimIndex(pr.ProdDim), si)
		adv := pr.Stride * cdm.CumAt(f.cp.dimIndex(pr.ConsDim), csi)
		if bp := f.Bind.Prod.Work.Bound(pr.ProdDim); adv > bp {
			adv = bp
		}
		if adv%pe != 0 {
			return fusedInvalid("dim %s->%s: producer tile %d does not divide consumer advance %d",
				pr.ProdDim, pr.ConsDim, pe, adv)
		}
	}

	// Traffic-shape checks on the two links being elided. The producer must
	// not accumulate partial outputs through DRAM (nothing to elide then:
	// the round-trip is load-bearing), and the consumer must touch each
	// intermediate element in DRAM exactly once (a re-fetching consumer
	// would need the whole tensor resident, not one granule).
	pFills, _, pDeliv, pDistinct := linkStats(f.pp, pdm, f.ps, outTi, 0, F)
	if rmw := pFills*pDeliv - pDistinct; rmw > 0 {
		return fusedInvalid("producer %s: output accumulates partial sums through DRAM", f.Bind.Prod.Name)
	}
	cFills, cReads, _, cDistinct := linkStats(f.cp, cdm, f.cs, inTi, 0, F)
	if cFills*cReads > cDistinct {
		return fusedInvalid("consumer %s: input is re-fetched from DRAM", f.Bind.Cons.Name)
	}

	// Joint residency at the fused level: the intermediate granule is the
	// consumer's input tile (the producer accumulates it there before the
	// consumer phase drains it), alongside the producer's other tensors.
	consVol := f.cs.vols[F*f.cp.nTensors+inTi]
	if f.pp.dedicated[F] {
		if consVol > f.pp.roleCap[F][workload.Output] {
			return fusedInvalid("level %d: intermediate granule %d words exceeds dedicated output capacity %d",
				F, consVol, f.pp.roleCap[F][workload.Output])
		}
	} else if cap := f.pp.sharedCap[F]; cap > 0 {
		resident := consVol
		for ti := range f.pp.tensors {
			if ti == outTi {
				continue
			}
			if f.ps.kept[F]&mapping.RoleBit(f.pp.tensors[ti].role) != 0 {
				resident += f.ps.vols[F*f.pp.nTensors+ti]
			}
		}
		if resident > cap {
			return fusedInvalid("level %d: intermediate granule plus producer tiles (%d words) exceed shared capacity %d",
				F, resident, cap)
		}
	}

	// Elide the DRAM round-trip: subtract each side's (DRAM -> F) link for
	// the intermediate from the surviving scratch accumulators, then redo
	// the latency/energy tail so bandwidth stretch and leakage follow the
	// reduced traffic.
	plc := f.pp.linkTraffic(pdm, f.ps, outTi, float64(f.ps.vols[F*f.pp.nTensors+outTi]), 0, F)
	f.ps.writes[0] -= plc.wp
	f.ps.reads[0] -= plc.rp
	f.ps.reads[F] -= plc.rc
	f.ps.writes[F] -= plc.wc
	pCycles := 1.0
	for d := 0; d < f.pp.nDims; d++ {
		pCycles *= f.pp.cyclesAlong(pdm, d, f.ps)
	}
	fp := f.pp.finish(f.ps, pCycles, pc.NoCEnergyPJ-plc.noc).Clone()

	clc := f.cp.linkTraffic(cdm, f.cs, inTi, float64(consVol), 0, F)
	f.cs.reads[0] -= clc.rp
	f.cs.writes[F] -= clc.wc
	cCycles := 1.0
	for d := 0; d < f.cp.nDims; d++ {
		cCycles *= f.cp.cyclesAlong(cdm, d, f.cs)
	}
	fc := f.cp.finish(f.cs, cCycles, cc.NoCEnergyPJ-clc.noc).Clone()

	cycles := fp.Cycles + fc.Cycles
	energy := fp.EnergyPJ + fc.EnergyPJ
	return FusedCost{
		Valid:       true,
		Producer:    fp,
		Consumer:    fc,
		Cycles:      cycles,
		EnergyPJ:    energy,
		EDP:         energy * cycles,
		ElidedWords: plc.wp + clc.rp,
	}
}

// EvaluateDisabled evaluates the pair with fusion off: both layers run
// through the unchanged per-layer kernel and the phases are summed. This is
// the differential baseline — its per-phase Costs are bit-identical to
// evaluating each layer with its own Evaluator.
func (f *FusedEvaluator) EvaluateDisabled(pm, cm *mapping.Mapping) FusedCost {
	pc := f.pp.EvaluateMappingInto(pm, f.ps)
	if !pc.Valid {
		return fusedInvalid("producer %s: %s", f.Bind.Prod.Name, pc.Reason)
	}
	pc = pc.Clone()
	cc := f.cp.EvaluateMappingInto(cm, f.cs)
	if !cc.Valid {
		return fusedInvalid("consumer %s: %s", f.Bind.Cons.Name, cc.Reason)
	}
	cc = cc.Clone()
	cycles := pc.Cycles + cc.Cycles
	energy := pc.EnergyPJ + cc.EnergyPJ
	return FusedCost{
		Valid:    true,
		Producer: pc,
		Consumer: cc,
		Cycles:   cycles,
		EnergyPJ: energy,
		EDP:      energy * cycles,
	}
}

// dimIndex returns the plan-local id of a workload dimension name.
func (p *Plan) dimIndex(name string) int {
	for i := range p.work.Dims {
		if p.work.Dims[i].Name == name {
			return i
		}
	}
	panic("nest: unknown dimension " + name)
}
