package nest_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// planCase is one (arch, workload, constraints) triple the differential
// suite exercises.
type planCase struct {
	name string
	a    *arch.Arch
	w    *workload.Workload
	cons func(*workload.Workload) mapspace.Constraints
}

func planCases() []planCase {
	resnet := workloads.ResNet50()
	toy := workload.MustMatmul("toy", 24, 36, 50)
	return []planCase{
		{
			name: "eyeriss/resnet-conv3x3",
			a:    arch.EyerissLike(14, 12, 128),
			w:    resnet[3].Work,
			cons: mapspace.EyerissRowStationary,
		},
		{
			name: "simba/resnet-pointwise",
			a:    arch.SimbaLike(15, 4, 4),
			w:    resnet[1].Work,
			cons: mapspace.SimbaDataflow,
		},
		{
			name: "toylinear/matmul",
			a:    arch.ToyLinear(9, 512),
			w:    toy,
			cons: func(*workload.Workload) mapspace.Constraints {
				return mapspace.Constraints{FixedPerms: true}
			},
		},
	}
}

// TestPlanMatchesLegacy is the differential property test pinning the
// compiled plan to the legacy string-keyed evaluator bit for bit: over
// random mappings from every bundled architecture family and factorization
// kind, every Cost field — including invalid Reasons — must be exactly
// equal, not merely close.
func TestPlanMatchesLegacy(t *testing.T) {
	const perCombo = 120 // x 3 cases x 3 kinds = 1080 mappings minimum
	total := 0
	validByCase := map[string]int{}
	validByKind := map[mapspace.Kind]int{}
	for _, tc := range planCases() {
		for _, kind := range []mapspace.Kind{mapspace.PFM, mapspace.Ruby, mapspace.RubyS} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(t *testing.T) {
				ev := nest.MustEvaluator(tc.w, tc.a)
				cons := tc.cons(tc.w)
				cons.ExploreBypass = true
				sp := mapspace.New(tc.w, tc.a, kind, cons)
				rng := rand.New(rand.NewSource(7))
				valid := 0
				// Sample at least perCombo mappings, then keep going (bounded)
				// until a handful of fully valid ones were compared too. Some
				// combos (full Ruby on a large conv layer) reject essentially
				// every random sample on capacity — those still contribute
				// invalid-verdict coverage, and the per-case / per-kind
				// assertions below guarantee valid coverage overall.
				for i := 0; i < perCombo || (valid < 5 && i < perCombo+2000); i++ {
					m := sp.Sample(rng)
					got := ev.Evaluate(m)
					want := ev.EvaluateLegacy(m)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("mapping %d: compiled %+v\nlegacy %+v", i, got, want)
					}
					if got.Valid {
						valid++
					}
					total++
				}
				validByCase[tc.name] += valid
				validByKind[kind] += valid
			})
		}
	}
	if total < 1000 {
		t.Fatalf("differential suite covered %d mappings, want >= 1000", total)
	}
	for name, v := range validByCase {
		if v == 0 {
			t.Errorf("case %s: no valid mappings compared", name)
		}
	}
	for kind, v := range validByKind {
		if v == 0 {
			t.Errorf("kind %s: no valid mappings compared", kind)
		}
	}
}

// TestPlanMatchesLegacyInvalid pins the invalid-mapping verdicts: the
// compiled path must produce the exact legacy Reason strings for every
// structural-rejection stage.
func TestPlanMatchesLegacyInvalid(t *testing.T) {
	tc := planCases()[0]
	ev := nest.MustEvaluator(tc.w, tc.a)
	sp := mapspace.New(tc.w, tc.a, mapspace.RubyS, tc.cons(tc.w))
	rng := rand.New(rand.NewSource(11))
	base := sp.Sample(rng)

	mutate := func(f func(*mapping.Mapping)) *mapping.Mapping {
		m := base.Clone()
		f(m)
		return m
	}
	dim := tc.w.Dims[0].Name
	cases := map[string]*mapping.Mapping{
		"missing-dim":       mutate(func(m *mapping.Mapping) { delete(m.Factors, dim) }),
		"short-chain":       mutate(func(m *mapping.Mapping) { m.Factors[dim] = m.Factors[dim][:2] }),
		"zero-factor":       mutate(func(m *mapping.Mapping) { m.Factors[dim][1] = 0 }),
		"overshoot-factor":  mutate(func(m *mapping.Mapping) { m.Factors[dim][0] = tc.w.Dims[0].Bound * 64 }),
		"leftover-residual": mutate(func(m *mapping.Mapping) { m.Factors[dim][0] = 1 }),
		"short-perm":        mutate(func(m *mapping.Mapping) { m.Perms[1] = m.Perms[1][:3] }),
		"dup-perm": mutate(func(m *mapping.Mapping) {
			m.Perms[1] = append([]string(nil), m.Perms[1]...)
			m.Perms[1][0] = m.Perms[1][1]
		}),
		"missing-perms": mutate(func(m *mapping.Mapping) { m.Perms = m.Perms[:1] }),
	}
	for name, m := range cases {
		got := ev.Evaluate(m)
		want := ev.EvaluateLegacy(m)
		if got.Valid || want.Valid {
			t.Errorf("%s: expected invalid, compiled=%v legacy=%v", name, got.Valid, want.Valid)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: compiled %+v\nlegacy %+v", name, got, want)
		}
	}
}

// TestPlanConcurrent drives one shared Evaluator (one plan) from many
// goroutines at once — run under -race, this checks the plan is truly
// immutable and the scratch pooling is sound.
func TestPlanConcurrent(t *testing.T) {
	tc := planCases()[0]
	ev := nest.MustEvaluator(tc.w, tc.a)
	sp := mapspace.New(tc.w, tc.a, mapspace.RubyS, tc.cons(tc.w))

	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			plan := ev.Plan()
			scr := plan.NewScratch()
			smp := sp.NewSampler()
			m := &mapping.Mapping{}
			for i := 0; i < 200; i++ {
				smp.SampleInto(rng, m)
				got := plan.EvaluateMapping(m, scr)
				want := ev.EvaluateLegacy(m)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d mapping %d: compiled != legacy", seed, i)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// sampleValid draws mappings until one passes the full model.
func sampleValid(t *testing.T, sp *mapspace.Space, ev *nest.Evaluator, seed int64) *mapping.Mapping {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 10000; i++ {
		m := sp.Sample(rng)
		if c := ev.Evaluate(m); c.Valid {
			return m
		}
	}
	t.Fatal("no valid mapping found")
	return nil
}

// TestEvaluateAllocationFree is the allocation-regression guard: on a warmed
// plan, the scratch-backed kernel must not allocate at all, and the
// detaching wrappers must allocate exactly the documented constant (one
// backing array for the returned Cost's per-level slices).
func TestEvaluateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tc := planCases()[0]
	ev := nest.MustEvaluator(tc.w, tc.a)
	sp := mapspace.New(tc.w, tc.a, mapspace.RubyS, tc.cons(tc.w))
	m := sampleValid(t, sp, ev, 3)

	plan := ev.Plan()
	scr := plan.NewScratch()
	dm, err := m.Dense(tc.w, tc.a, ev.Slots)
	if err != nil {
		t.Fatal(err)
	}
	if c := plan.EvaluateInto(dm, scr); !c.Valid {
		t.Fatalf("warmup evaluation invalid: %s", c.Reason)
	}

	if n := testing.AllocsPerRun(200, func() {
		plan.EvaluateInto(dm, scr)
	}); n != 0 {
		t.Errorf("EvaluateInto allocates %v/op, want 0", n)
	}
	// Evaluator.Evaluate detaches its result: exactly one allocation (the
	// shared backing array behind LevelReads/LevelWrites/LevelEnergyPJ).
	if n := testing.AllocsPerRun(200, func() {
		ev.Evaluate(m)
	}); n > 1 {
		t.Errorf("Evaluate allocates %v/op, want <= 1", n)
	}
}

// TestCostClone checks the detach contract EvaluateInto callers rely on.
func TestCostClone(t *testing.T) {
	tc := planCases()[0]
	ev := nest.MustEvaluator(tc.w, tc.a)
	sp := mapspace.New(tc.w, tc.a, mapspace.RubyS, tc.cons(tc.w))
	m := sampleValid(t, sp, ev, 5)

	plan := ev.Plan()
	scr := plan.NewScratch()
	dm, err := m.Dense(tc.w, tc.a, ev.Slots)
	if err != nil {
		t.Fatal(err)
	}
	shared := plan.EvaluateInto(dm, scr)
	kept := shared.Clone()
	if !reflect.DeepEqual(shared, kept) {
		t.Fatal("Clone changed the cost value")
	}
	// A second evaluation overwrites the shared slices but not the clone.
	scr2 := plan.EvaluateInto(dm, scr)
	_ = scr2
	if !reflect.DeepEqual(kept, kept.Clone()) {
		t.Fatal("clone unstable")
	}
	if &shared.LevelReads[0] != &scr2.LevelReads[0] {
		t.Fatal("EvaluateInto did not reuse scratch-backed slices")
	}
	if &kept.LevelReads[0] == &shared.LevelReads[0] {
		t.Fatal("Clone still aliases the scratch")
	}
}
