//go:build !race

package nest_test

const raceEnabled = false
