package nest

// Breakdown is the cost-attribution view of one evaluated mapping: where
// the energy, traffic and latency of the current cost come from, resolved
// to memory levels, tensors and loop dimensions. It is the feedback signal
// the model-guided searcher steers by — "which dimension's tiling is
// buying the most cost, and at which level" — computed from the kernel
// state a DeltaEval session already holds, without re-evaluating anything.
//
// All slices are flat and integer-indexed exactly like the Plan's internal
// tables: per-level slices by level index (0 is the outermost memory),
// per-tensor slices by the workload's tensor declaration order, the
// (level, tensor) matrices by level*NTensors+tensor, and per-dim slices by
// the workload's dimension declaration order.
type Breakdown struct {
	NLevels, NTensors, NDims int

	// LevelReads/LevelWrites are the per-level word counts; LevelEnergyPJ
	// is the corresponding dynamic access energy. They equal the Cost
	// fields of the same names up to floating-point regrouping (the
	// contributions are summed per tensor first, then across tensors).
	LevelReads, LevelWrites, LevelEnergyPJ []float64

	// TensorReads/TensorWrites split the per-level traffic by tensor:
	// entry [li*NTensors+ti] is the words tensor ti moves at level li.
	TensorReads, TensorWrites []float64

	// TensorAccessPJ is each tensor's dynamic access energy summed over
	// levels; TensorNoCPJ is its network (hop) energy. TensorEnergyPJ is
	// their sum — the total attributable to moving that tensor.
	TensorAccessPJ, TensorNoCPJ, TensorEnergyPJ []float64

	// DimCycles is each dimension's compute-latency factor; their product
	// is the compute-bound cycle count before any bandwidth stretch.
	DimCycles []float64

	// DimEnergyPJ charges each dimension with the energy of every tensor
	// it indexes (a tensor indexed by several dims is charged to each, so
	// the column sums exceed the total — this is a ranking signal, not a
	// partition).
	DimEnergyPJ []float64

	// MACEnergyPJ and NoCEnergyPJ are the mapping-wide compute and
	// network energy totals.
	MACEnergyPJ, NoCEnergyPJ float64
}

// NewBreakdown allocates a Breakdown sized for the plan. Allocate once per
// searcher; Attribute then refills it without allocating.
func (p *Plan) NewBreakdown() *Breakdown {
	return &Breakdown{
		NLevels:        p.nLevels,
		NTensors:       p.nTensors,
		NDims:          p.nDims,
		LevelReads:     make([]float64, p.nLevels),
		LevelWrites:    make([]float64, p.nLevels),
		LevelEnergyPJ:  make([]float64, p.nLevels),
		TensorReads:    make([]float64, p.nLevels*p.nTensors),
		TensorWrites:   make([]float64, p.nLevels*p.nTensors),
		TensorAccessPJ: make([]float64, p.nTensors),
		TensorNoCPJ:    make([]float64, p.nTensors),
		TensorEnergyPJ: make([]float64, p.nTensors),
		DimCycles:      make([]float64, p.nDims),
		DimEnergyPJ:    make([]float64, p.nDims),
	}
}

// Attribute fills b from the session's committed contribution records —
// the per-link traffic, per-tensor datapath terms and per-dimension
// latency factors the last Seed/Commit left behind. It never re-walks the
// mapping: the records are replayed and bucketed, so the level totals
// reproduce the current Cost's up to floating-point regrouping. The
// session must be seeded valid and have no open proposal.
//
//ruby:hotpath
func (p *Plan) Attribute(de *DeltaEval, b *Breakdown) {
	if de.p != p {
		panic("nest: Attribute with a DeltaEval of a different Plan")
	}
	if !de.seeded {
		panic("nest: Attribute before a valid Seed")
	}
	if de.pending {
		panic("nest: Attribute with an open proposal (Commit or Reject first)")
	}
	for i := range b.TensorReads {
		b.TensorReads[i], b.TensorWrites[i] = 0, 0
	}
	b.NoCEnergyPJ = 0

	// Replay each tensor's link and datapath records into its own traffic
	// buckets. The per-record arithmetic is the committed kernel state; no
	// model math reruns here.
	for ti := 0; ti < p.nTensors; ti++ {
		var noc float64
		lcs := de.links[ti]
		for i := range lcs {
			lc := &lcs[i]
			b.TensorWrites[int(lc.parent)*p.nTensors+ti] += lc.wp
			b.TensorReads[int(lc.parent)*p.nTensors+ti] += lc.rp
			b.TensorReads[int(lc.child)*p.nTensors+ti] += lc.rc
			b.TensorWrites[int(lc.child)*p.nTensors+ti] += lc.wc
			noc += lc.noc
		}
		dp := &de.dp[ti]
		b.TensorReads[int(dp.inner)*p.nTensors+ti] += dp.ops
		noc += dp.nocHop
		if dp.out {
			b.TensorWrites[int(dp.inner)*p.nTensors+ti] += dp.ops
			noc += dp.nocHop
		}
		b.TensorNoCPJ[ti] = noc
		b.NoCEnergyPJ += noc
	}

	// Bucket the traffic into level totals, access energy and per-tensor
	// energy shares.
	for ti := 0; ti < p.nTensors; ti++ {
		b.TensorAccessPJ[ti] = 0
	}
	for li := 0; li < p.nLevels; li++ {
		var r, w float64
		base := li * p.nTensors
		for ti := 0; ti < p.nTensors; ti++ {
			tr, tw := b.TensorReads[base+ti], b.TensorWrites[base+ti]
			r += tr
			w += tw
			b.TensorAccessPJ[ti] += (tr + tw) * p.accessPJ[li]
		}
		b.LevelReads[li] = r
		b.LevelWrites[li] = w
		b.LevelEnergyPJ[li] = (r + w) * p.accessPJ[li]
	}
	for ti := 0; ti < p.nTensors; ti++ {
		b.TensorEnergyPJ[ti] = b.TensorAccessPJ[ti] + b.TensorNoCPJ[ti]
	}

	// Latency factors and the per-dimension energy ranking.
	for d := 0; d < p.nDims; d++ {
		b.DimCycles[d] = de.dimCycles[d]
		var e float64
		for ti := 0; ti < p.nTensors; ti++ {
			if p.tensors[ti].rel[d] {
				e += b.TensorEnergyPJ[ti]
			}
		}
		b.DimEnergyPJ[d] = e
	}
	b.MACEnergyPJ = p.macs * p.macEnergyPJ
}

// Attribute is the session-side spelling of Plan.Attribute.
//
//ruby:hotpath
func (de *DeltaEval) Attribute(b *Breakdown) {
	de.p.Attribute(de, b)
}
