package nest

import (
	"math/rand"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/workload"
)

// TestDeepHierarchyPipeline drives the four-level Eyeriss-v2-like preset end
// to end: six-slot chains must sample, validate and evaluate across all
// mapspace kinds, and Ruby-S must still find at least as good a mapping as
// PFM on a misaligned channel count.
func TestDeepHierarchyPipeline(t *testing.T) {
	a := arch.EyerissV2Like(6, 4, 64)
	if got := a.TotalLanes(); got != 24 {
		t.Fatalf("lanes = %d", got)
	}
	slots := mapping.Slots(a)
	// DRAM T; GLB T + SX; Cluster T + SX; PE T.
	if len(slots) != 6 {
		t.Fatalf("slots = %d: %+v", len(slots), slots)
	}

	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 50, C: 10, P: 13, Q: 13, R: 3, S: 3})
	ev := MustEvaluator(w, a)
	cons := mapspace.Constraints{SpatialX: []string{"M", "C", "Q"}}

	best := map[mapspace.Kind]float64{}
	for _, kind := range mapspace.Kinds {
		sp := mapspace.New(w, a, kind, cons)
		rng := rand.New(rand.NewSource(31))
		bestEDP := -1.0
		valid := 0
		for i := 0; i < 8000; i++ {
			m := sp.Sample(rng)
			c := ev.Evaluate(m)
			if !c.Valid {
				continue
			}
			valid++
			if bestEDP < 0 || c.EDP < bestEDP {
				bestEDP = c.EDP
			}
		}
		if valid == 0 {
			t.Fatalf("%v: no valid mapping on the deep hierarchy", kind)
		}
		best[kind] = bestEDP
	}
	if best[mapspace.RubyS] > best[mapspace.PFM]*1.02 {
		t.Errorf("Ruby-S best %g worse than PFM %g on deep hierarchy",
			best[mapspace.RubyS], best[mapspace.PFM])
	}
}

// TestDeepHierarchyWeightPath: weights bypass both the GLB and the cluster
// scratchpad is shared... in this preset weights may live in the cluster
// buffer and the PE spads; the GLB never sees them.
func TestDeepHierarchyWeightPath(t *testing.T) {
	a := arch.EyerissV2Like(4, 4, 64)
	m := &mapping.Mapping{}
	glb := m.KeptRoles(a, 1)
	if glb[workload.Weight] {
		t.Error("GLB should bypass weights")
	}
	cluster := m.KeptRoles(a, 2)
	if !cluster[workload.Weight] {
		t.Error("cluster buffer should accept weights")
	}
}

// TestDeepHierarchyTileMonotonicity: along any sampled chain, per-level tile
// volumes must be monotonically non-increasing from DRAM to the PEs for
// every tensor (a structural invariant of the boundary definitions).
func TestDeepHierarchyTileMonotonicity(t *testing.T) {
	a := arch.EyerissV2Like(6, 4, 64)
	w := workload.MustMatmul("mm", 48, 36, 60)
	ev := MustEvaluator(w, a)
	sp := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{})
	rng := rand.New(rand.NewSource(32))
	checked := 0
	for i := 0; i < 2000 && checked < 100; i++ {
		m := sp.Sample(rng)
		chains, err := m.Chains(w, ev.Slots)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		vols := ev.tileVolumes(chains)
		for ti := range w.Tensors {
			for li := 1; li < len(a.Levels); li++ {
				if vols[li][ti] > vols[li-1][ti] {
					t.Fatalf("tensor %d tile grows inward: level %d vol %d > level %d vol %d",
						ti, li, vols[li][ti], li-1, vols[li-1][ti])
				}
			}
		}
	}
}
