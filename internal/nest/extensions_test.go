package nest

import (
	"math"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// TestBandwidthStretch: capping a level's bandwidth stretches latency to the
// traffic time and records the bounding level.
func TestBandwidthStretch(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	base := arch.ToyGLB(6, 512)
	limited := arch.ToyGLB(6, 512)
	limited.Levels[1].BandwidthWords = 1 // 1 word/cycle at the GLB

	m := func(a *arch.Arch) *mapping.Mapping {
		mm := mapping.Uniform(w, a, 1)
		mm.Factors["X"] = []int{1, 17, 6}
		return mm
	}
	free := MustEvaluator(w, base).Evaluate(m(base))
	bound := MustEvaluator(w, limited).Evaluate(m(limited))
	if !free.Valid || !bound.Valid {
		t.Fatal("mapping invalid")
	}
	if free.Cycles != 17 || free.BandwidthBound != "" {
		t.Errorf("unlimited: cycles %f bound %q", free.Cycles, free.BandwidthBound)
	}
	// GLB traffic: 300 reads + 200 writes = 500 words at 1 word/cycle.
	if bound.Cycles != 500 {
		t.Errorf("bandwidth-bound cycles = %f, want 500", bound.Cycles)
	}
	if bound.BandwidthBound != "GLB" {
		t.Errorf("bounding level = %q", bound.BandwidthBound)
	}
	if bound.Utilization >= free.Utilization {
		t.Error("stretched latency must lower utilization")
	}
}

// TestBandwidthPerInstanceAggregation: bandwidth is per instance, so a
// spatially replicated level aggregates.
func TestBandwidthPerInstance(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyLinear(10, 512)
	a.Levels[1].BandwidthWords = 1 // per-PE scratchpad port
	e := MustEvaluator(w, a)
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 10, 10} // 10 elements per PE, 10 PEs
	c := e.Evaluate(m)
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	// Each spad sees (10 in-writes + 10 MAC reads + 10+10+10 output) ~ 50
	// words across 10 instances = 5 words/instance... aggregate 500 words
	// over 10 instances at 1 w/c = 50 cycles > compute 10.
	if c.Cycles <= 10 {
		t.Errorf("cycles = %f, want bandwidth-stretched > 10", c.Cycles)
	}
}

// TestStaticEnergy: leakage accrues with cycles and instances.
func TestStaticEnergy(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	a.Levels[1].StaticPJPerCycle = 2
	e := MustEvaluator(w, a)
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	c := e.Evaluate(m)
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	if want := 2.0 * 17; math.Abs(c.StaticEnergyPJ-want) > 1e-9 {
		t.Errorf("static energy = %f, want %f", c.StaticEnergyPJ, want)
	}
	// And it is part of the total.
	noLeak := arch.ToyGLB(6, 512)
	base := MustEvaluator(w, noLeak).Evaluate(func() *mapping.Mapping {
		mm := mapping.Uniform(w, noLeak, 1)
		mm.Factors["X"] = []int{1, 17, 6}
		return mm
	}())
	if math.Abs((c.EnergyPJ-base.EnergyPJ)-c.StaticEnergyPJ) > 1e-9 {
		t.Error("static energy not added to total")
	}
	// Leakage makes slow mappings relatively worse: the serial mapping now
	// pays 100 cycles of GLB leakage.
	mSerial := mapping.Uniform(w, a, 0)
	cs := e.Evaluate(mSerial)
	if cs.StaticEnergyPJ <= c.StaticEnergyPJ {
		t.Error("longer mapping should leak more")
	}
}

// TestNoCHopEnergy: configuring wire energy charges delivered words by mean
// hop distance, and larger arrays pay more per word.
func TestNoCHopEnergy(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	mk := func(pes int) *arch.Arch {
		a := arch.ToyGLB(pes, 2048)
		a.Levels[1].Fanout.HopEnergyPJ = 0.1
		return a
	}
	cost := func(pes, spatial int) Cost {
		a := mk(pes)
		e := MustEvaluator(w, a)
		m := mapping.Uniform(w, a, 1)
		m.Factors["X"] = []int{1, (100 + spatial - 1) / spatial, spatial}
		c := e.Evaluate(m)
		if !c.Valid {
			t.Fatal(c.Reason)
		}
		return c
	}
	small := cost(4, 4)
	big := cost(16, 16)
	if small.NoCEnergyPJ <= 0 {
		t.Fatal("NoC energy not charged")
	}
	// MeanHops(4x1)=1.5, MeanHops(16x1)=7.5; traffic is ~equal (100 words
	// down, 100 up), so the 16-PE array pays ~5x the wire energy.
	ratio := big.NoCEnergyPJ / small.NoCEnergyPJ
	if ratio < 4.5 || ratio > 5.5 {
		t.Errorf("NoC energy ratio = %f, want ~5", ratio)
	}
}

func TestMeanHops(t *testing.T) {
	if h := (arch.Network{FanoutX: 14, FanoutY: 12}).MeanHops(); h != 6.5+5.5 {
		t.Errorf("MeanHops(14x12) = %f", h)
	}
	if h := (arch.Network{}).MeanHops(); h != 0 {
		t.Errorf("MeanHops(zero) = %f", h)
	}
}

// TestDefaultsUnchanged: with no extensions configured the paper-mode
// results are bit-identical to the core model (guards against regressions
// from the optional features).
func TestDefaultsUnchanged(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	e := MustEvaluator(w, a)
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = []int{1, 17, 6}
	c := e.Evaluate(m)
	if c.NoCEnergyPJ != 0 || c.StaticEnergyPJ != 0 || c.BandwidthBound != "" {
		t.Errorf("extensions leaked into default config: %+v", c)
	}
	if c.Cycles != 17 {
		t.Errorf("cycles = %f", c.Cycles)
	}
}
