package nest

import (
	"errors"
	"fmt"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// Plan is the compiled evaluation program for one (workload, architecture)
// pair: every dimension, tensor and level is lowered to a small integer id
// at NewEvaluator time, so that evaluating a mapping touches only flat
// slices — no string-keyed maps, no per-call lookups into the energy
// tables, no allocation. One Plan is shared by any number of goroutines;
// each goroutine owns a private Scratch.
//
// The compiled path is bit-identical to Evaluator.EvaluateLegacy: every
// floating-point operation is performed in the same order on the same
// values, which TestPlanMatchesLegacy verifies exhaustively over random
// mappings on all bundled architectures.
type Plan struct {
	work  *workload.Workload
	arch  *arch.Arch
	slots []mapping.Slot

	nDims, nSlots, nLevels, nTensors int
	stride                           int // nSlots+1, the Dense.Cum row stride

	tensors   []planTensor
	firstSlot []int // per level, index of its temporal slot

	// Per-level architecture facts, hoisted out of the evaluation loop.
	archKeeps  []uint8    // bitmask of roles the arch stores (RoleBit)
	dedicated  []bool     // PerRole buffers present
	roleCap    [][3]int64 // dedicated capacity per role (when dedicated)
	sharedCap  []int64    // shared capacity (when not dedicated)
	accessPJ   []float64  // per-word access energy
	instancesF []float64  // float64(Instances(li))
	bandwidth  []float64  // words/cycle per instance (0 = unlimited)
	staticPJ   []float64  // leakage pJ per instance per cycle

	macs, lanes float64
	macEnergyPJ float64 // per-MAC energy

	// Interned invalid-verdict reasons, formatted once at compile time so
	// the checks below return them without fmt or boxing. Every value that
	// used to be interpolated per call (slot ids, level names, capacities)
	// is a static architecture fact; the offending tile volume was dropped
	// from the message to keep the string per-slot/per-level static.
	fanoutReason    []string    // per spatial slot
	dedicatedReason [][3]string // per level, per role (dedicated buffers)
	sharedReason    []string    // per level (shared buffers)

	// hop[parent][child] is the summed per-word wire energy of a
	// parent->child transfer (child may be nLevels: the datapath below the
	// innermost level). Precomputed with the exact legacy summation loop so
	// the values are bit-identical.
	hop [][]float64
}

// planTensor is one operand lowered to integer ids.
type planTensor struct {
	role   workload.Role
	rel    []bool       // per dim: does the dim index this tensor
	coords [][]planTerm // per coordinate, the halo-formula terms
}

// planTerm is one lowered coordinate term: stride * iter(dim).
type planTerm struct {
	dim    int
	stride int
}

// newPlan compiles the evaluation program. Inputs are already validated by
// NewEvaluator.
func newPlan(w *workload.Workload, a *arch.Arch, slots []mapping.Slot, firstSlot []int) *Plan {
	p := &Plan{
		work:      w,
		arch:      a,
		slots:     slots,
		nDims:     len(w.Dims),
		nSlots:    len(slots),
		nLevels:   len(a.Levels),
		nTensors:  len(w.Tensors),
		stride:    len(slots) + 1,
		firstSlot: firstSlot,
		macs:      float64(w.MACs()),
		lanes:     float64(a.TotalLanes()),
	}
	dimID := make(map[string]int, p.nDims)
	for i := range w.Dims {
		dimID[w.Dims[i].Name] = i
	}

	p.tensors = make([]planTensor, p.nTensors)
	for ti := range w.Tensors {
		t := &w.Tensors[ti]
		pt := planTensor{role: t.Role, rel: make([]bool, p.nDims)}
		for _, c := range t.Coords {
			terms := make([]planTerm, len(c.Terms))
			for k, tm := range c.Terms {
				terms[k] = planTerm{dim: dimID[tm.Dim], stride: tm.Stride}
				pt.rel[dimID[tm.Dim]] = true
			}
			pt.coords = append(pt.coords, terms)
		}
		p.tensors[ti] = pt
	}

	p.archKeeps = make([]uint8, p.nLevels)
	p.dedicated = make([]bool, p.nLevels)
	p.roleCap = make([][3]int64, p.nLevels)
	p.sharedCap = make([]int64, p.nLevels)
	p.accessPJ = make([]float64, p.nLevels)
	p.instancesF = make([]float64, p.nLevels)
	p.bandwidth = make([]float64, p.nLevels)
	p.staticPJ = make([]float64, p.nLevels)
	for li := range a.Levels {
		l := &a.Levels[li]
		for _, r := range workload.Roles {
			if l.KeepsRole(r, li == 0) {
				p.archKeeps[li] |= mapping.RoleBit(r)
			}
		}
		p.dedicated[li] = l.PerRole != nil
		for _, r := range workload.Roles {
			cap, ded := l.RoleCapacity(r)
			if ded {
				p.roleCap[li][r] = cap
			}
		}
		p.sharedCap[li] = l.Capacity
		p.accessPJ[li] = a.AccessEnergyPJ(li)
		p.instancesF[li] = float64(a.Instances(li))
		p.bandwidth[li] = l.BandwidthWords
		p.staticPJ[li] = l.StaticPJPerCycle
	}
	p.macEnergyPJ = a.Energy.MAC()

	p.fanoutReason = make([]string, p.nSlots)
	for si := range slots {
		if sl := &slots[si]; sl.Spatial() {
			p.fanoutReason[si] = fmt.Sprintf("fanout: slot %d (%s level %d) exceeds %d instances",
				sl.Index, sl.Kind, sl.Level, sl.Fanout)
		}
	}
	p.dedicatedReason = make([][3]string, p.nLevels)
	p.sharedReason = make([]string, p.nLevels)
	for li := range a.Levels {
		l := &a.Levels[li]
		if p.dedicated[li] {
			for _, r := range workload.Roles {
				if cap, ded := l.RoleCapacity(r); ded {
					p.dedicatedReason[li][r] = fmt.Sprintf("capacity: level %s %v tile exceeds dedicated %d words",
						l.Name, r, cap)
				}
			}
		} else if l.Capacity > 0 {
			p.sharedReason[li] = fmt.Sprintf("capacity: level %s exceeds shared capacity %d words",
				l.Name, l.Capacity)
		}
	}

	p.hop = make([][]float64, p.nLevels+1)
	for parent := 0; parent <= p.nLevels; parent++ {
		p.hop[parent] = make([]float64, p.nLevels+1)
		for child := parent; child <= p.nLevels; child++ {
			var total float64
			for li := parent; li < child; li++ {
				n := a.Levels[li].Fanout
				if n.HopEnergyPJ > 0 {
					total += n.HopEnergyPJ * n.MeanHops()
				}
			}
			p.hop[parent][child] = total
		}
	}
	return p
}

// Scratch holds the preallocated working memory for one evaluation worker.
// A Scratch belongs to exactly one goroutine at a time; the Plan itself is
// immutable and freely shared.
type Scratch struct {
	exts       []int     // [level*nDims+dim] tile extents at each level's first slot
	trips      []int     // [slot*nDims+dim] loop trip counts (TripsAt table, slot-major)
	vols       []int64   // [level*nTensors+tensor] tile volumes in words
	kept       []uint8   // per level, effective kept-role mask
	keptLevels []int     // reused kept-level chain buffer
	reads      []float64 // per level — the Into-result backing
	writes     []float64
	energy     []float64

	// Per-slot latency memo (chunk -> cycles), replacing the legacy per-call
	// map. The number of distinct chunks per slot is at most nSlots+1, so
	// the lists stay tiny and settle at a fixed capacity.
	memoChunk [][]int
	memoVal   [][]float64
}

// NewScratch allocates working memory sized for the plan.
func (p *Plan) NewScratch() *Scratch {
	s := &Scratch{
		exts:       make([]int, p.nLevels*p.nDims),
		trips:      make([]int, p.nDims*p.nSlots),
		vols:       make([]int64, p.nLevels*p.nTensors),
		kept:       make([]uint8, p.nLevels),
		keptLevels: make([]int, 0, p.nLevels),
		reads:      make([]float64, p.nLevels),
		writes:     make([]float64, p.nLevels),
		energy:     make([]float64, p.nLevels),
		memoChunk:  make([][]int, p.nSlots),
		memoVal:    make([][]float64, p.nSlots),
	}
	for si := 0; si < p.nSlots; si++ {
		s.memoChunk[si] = make([]int, 0, p.nSlots+1)
		s.memoVal[si] = make([]float64, 0, p.nSlots+1)
	}
	return s
}

// Clone returns a copy of c whose per-level slices are freshly allocated
// (one backing array), detaching it from any Scratch or cache it aliased.
func (c Cost) Clone() Cost {
	if c.LevelReads == nil {
		return c
	}
	n := len(c.LevelReads)
	b := make([]float64, 3*n)
	copy(b[:n], c.LevelReads)
	copy(b[n:2*n], c.LevelWrites)
	copy(b[2*n:], c.LevelEnergyPJ)
	c.LevelReads, c.LevelWrites, c.LevelEnergyPJ = b[:n:n], b[n:2*n:2*n], b[2*n:]
	return c
}

// EvaluateMapping lowers m (memoized on the mapping) and evaluates it,
// returning a Cost detached from the scratch. Valid results cost one small
// allocation (the per-level slices); this is what Evaluator.Evaluate uses.
//
//ruby:hotpath
func (p *Plan) EvaluateMapping(m *mapping.Mapping, s *Scratch) Cost {
	return p.EvaluateMappingInto(m, s).Clone()
}

// EvaluateMappingInto is EvaluateMapping without the detaching copy: the
// returned Cost's per-level slices alias s and are overwritten by the next
// evaluation on the same scratch. Retain with Cost.Clone.
//
//ruby:hotpath
func (p *Plan) EvaluateMappingInto(m *mapping.Mapping, s *Scratch) Cost {
	dm, err := m.Dense(p.work, p.arch, p.slots)
	if err != nil {
		return invalidDense(err)
	}
	return p.EvaluateInto(dm, s)
}

// invalidDense formats the verdict for a mapping that failed dense
// lowering. Lowering rejects abort the evaluation before the kernel runs
// and never recur for a memoized mapping, so the formatting allocation is
// off the steady-state path. The concrete error parameter keeps the
// hot-path call site free of interface boxing.
//
//ruby:coldpath
func invalidDense(err error) Cost {
	var de *mapping.DenseError
	if errors.As(err, &de) {
		return Cost{Reason: de.Stage + ": " + de.Err.Error()}
	}
	return Cost{Reason: err.Error()}
}

// Evaluate evaluates a lowered mapping, returning a Cost detached from the
// scratch (one small allocation for valid results).
//
//ruby:hotpath
func (p *Plan) Evaluate(dm *mapping.Dense, s *Scratch) Cost {
	return p.EvaluateInto(dm, s).Clone()
}

// EvaluateInto is the allocation-free kernel: it evaluates a lowered
// mapping entirely within s. The returned Cost's LevelReads, LevelWrites
// and LevelEnergyPJ slices alias s and are overwritten by the next call on
// the same scratch; retain with Cost.Clone. Invalid verdicts allocate only
// their Reason string.
//
//ruby:hotpath
func (p *Plan) EvaluateInto(dm *mapping.Dense, s *Scratch) Cost {
	return p.evalInto(dm, s, nil)
}

// evalInto is the full-evaluation core behind EvaluateInto and
// DeltaEval.Seed. When de is non-nil it additionally records the per-scope
// contributions (per-link traffic, per-tensor datapath terms, per-dimension
// latency factors) that the delta kernel later recombines. Recording never
// changes the arithmetic: every floating-point operation runs in the same
// order on the same values either way, which is what keeps the compiled
// path bit-identical to EvaluateLegacy and the delta path bit-identical to
// the full one.
//
//ruby:hotpath
func (p *Plan) evalInto(dm *mapping.Dense, s *Scratch, de *DeltaEval) Cost {
	if dm.NDims != p.nDims || dm.NSlots != p.nSlots {
		panic("nest: dense mapping shape does not match plan")
	}

	// Integer trip counts per (dim, slot): one ceiling division here replaces
	// the repeated TripsAt divisions in every stationarity walk below (and is
	// the table the delta kernel patches per move).
	// Slot-major layout: each slot's dim row is contiguous, so the
	// stationarity walks below read one cache line per slot.
	for d := 0; d < p.nDims; d++ {
		cbase := d * p.stride
		for si := 0; si < p.nSlots; si++ {
			outer, inner := dm.Cum[cbase+si], dm.Cum[cbase+si+1]
			if inner >= outer {
				s.trips[si*p.nDims+d] = 1
			} else {
				s.trips[si*p.nDims+d] = (outer + inner - 1) / inner
			}
		}
	}

	// Spatial fanout bounds.
	if c, bad := p.checkFanout(s); bad {
		return c
	}

	// Effective kept roles per level (arch policy, masked by overrides).
	for li := 0; li < p.nLevels; li++ {
		mask := p.archKeeps[li]
		if li != 0 && li < len(dm.KeepMask) && dm.KeepMask[li] >= 0 {
			mask &= uint8(dm.KeepMask[li])
		}
		s.kept[li] = mask
	}

	// Tile volumes per (level, tensor).
	for li := 0; li < p.nLevels; li++ {
		si := p.firstSlot[li]
		ebase := li * p.nDims
		for d := 0; d < p.nDims; d++ {
			s.exts[ebase+d] = dm.CumAt(d, si)
		}
		base := li * p.nTensors
		for ti := range p.tensors {
			vol := int64(1)
			for _, coord := range p.tensors[ti].coords {
				extent := 1
				for _, tm := range coord {
					extent += tm.stride * (s.exts[ebase+tm.dim] - 1)
				}
				vol *= int64(extent)
			}
			s.vols[base+ti] = vol
		}
	}

	// Storage residency and capacity.
	if c, bad := p.checkCapacity(s); bad {
		return c
	}

	for li := 0; li < p.nLevels; li++ {
		s.reads[li], s.writes[li], s.energy[li] = 0, 0, 0
	}
	var noc float64

	// Inter-level traffic per tensor along its chain of kept levels.
	for ti := range p.tensors {
		t := &p.tensors[ti]
		bit := mapping.RoleBit(t.role)
		kl := s.keptLevels[:0]
		kl = append(kl, 0)
		for li := 1; li < p.nLevels; li++ {
			if s.kept[li]&bit != 0 {
				kl = append(kl, li)
			}
		}
		var lcs []linkC
		if de != nil {
			lcs = de.links[ti][:0]
		}
		for i := 1; i < len(kl); i++ {
			parent, child := kl[i-1], kl[i]
			lc := p.linkTraffic(dm, s, ti, float64(s.vols[child*p.nTensors+ti]), parent, child)
			applyLink(s, &noc, &lc)
			if de != nil {
				lcs = append(lcs, lc)
			}
		}
		if de != nil {
			de.links[ti] = lcs
		}
		// Datapath-side accesses at the innermost kept level (see the
		// legacy path for the multicast-sharing rationale).
		dp := p.dpTraffic(dm, s, ti, kl[len(kl)-1])
		applyDP(s, &noc, &dp)
		if de != nil {
			de.dp[ti] = dp
		}
	}

	// Latency: compute-bound cycles per dimension.
	cycles := 1.0
	for d := 0; d < p.nDims; d++ {
		v := p.cyclesAlong(dm, d, s)
		if de != nil {
			de.dimCycles[d] = v
		}
		cycles *= v
	}
	return p.finish(s, cycles, noc)
}

// checkFanout verifies every spatial slot's joint trip count against its
// fanout, reading the scratch trips table. Reported in slot order with the
// reason string interned at plan-compile time: invalid verdicts are hot in
// sampling pipelines, so the rejection itself must not allocate.
//
//ruby:hotpath
func (p *Plan) checkFanout(s *Scratch) (Cost, bool) {
	for si := range p.slots {
		sl := &p.slots[si]
		if !sl.Spatial() {
			continue
		}
		used := 1
		row := s.trips[si*p.nDims : si*p.nDims+p.nDims]
		for d := 0; d < p.nDims; d++ {
			used *= row[d]
		}
		if used > sl.Fanout {
			return Cost{Reason: p.fanoutReason[si]}, true
		}
	}
	return Cost{}, false
}

// checkCapacity verifies storage residency per level against dedicated or
// shared capacities, in the legacy order. The reason strings are interned
// at plan-compile time (see newPlan), so a capacity reject — the most
// common verdict for random samples — is allocation-free.
//
//ruby:hotpath
func (p *Plan) checkCapacity(s *Scratch) (Cost, bool) {
	for li := 1; li < p.nLevels; li++ {
		var shared int64
		for ti := range p.tensors {
			role := p.tensors[ti].role
			if s.kept[li]&mapping.RoleBit(role) == 0 {
				continue
			}
			v := s.vols[li*p.nTensors+ti]
			if p.dedicated[li] {
				if v > p.roleCap[li][role] {
					return Cost{Reason: p.dedicatedReason[li][role]}, true
				}
			} else {
				shared += v
			}
		}
		if !p.dedicated[li] && p.sharedCap[li] > 0 && shared > p.sharedCap[li] {
			return Cost{Reason: p.sharedReason[li]}, true
		}
	}
	return Cost{}, false
}

// finish turns accumulated per-level traffic plus the compute-bound cycle
// count into a Cost: bandwidth stretch, utilization, and the energy sums.
// Shared by the full and delta paths so their tail arithmetic is the same
// code.
//
//ruby:hotpath
func (p *Plan) finish(s *Scratch, cycles, noc float64) Cost {
	bwBound := ""
	for li := 0; li < p.nLevels; li++ {
		bw := p.bandwidth[li]
		if bw <= 0 {
			continue
		}
		memCycles := (s.reads[li] + s.writes[li]) / (bw * p.instancesF[li])
		if memCycles > cycles {
			cycles = memCycles
			bwBound = p.arch.Levels[li].Name
		}
	}
	util := p.macs / (cycles * p.lanes)

	// Energy: dynamic accesses + MACs + optional NoC hops and leakage.
	var static float64
	macE := p.macs * p.macEnergyPJ
	energyTot := macE + noc
	for li := 0; li < p.nLevels; li++ {
		s.energy[li] = (s.reads[li] + s.writes[li]) * p.accessPJ[li]
		energyTot += s.energy[li]
		if st := p.staticPJ[li]; st > 0 {
			static += st * cycles * p.instancesF[li]
		}
	}
	energyTot += static

	return Cost{
		Valid:          true,
		Cycles:         cycles,
		MACs:           p.macs,
		Utilization:    util,
		EnergyPJ:       energyTot,
		EDP:            energyTot * cycles,
		LevelReads:     s.reads,
		LevelWrites:    s.writes,
		LevelEnergyPJ:  s.energy,
		MACEnergyPJ:    macE,
		NoCEnergyPJ:    noc,
		StaticEnergyPJ: static,
		BandwidthBound: bwBound,
	}
}

// linkC is the cached contribution of one (tensor, parent, child) link: the
// four per-level accumulator terms plus the NoC term, stored so the delta
// kernel can replay them in the exact order the full kernel adds them.
// Input-role links leave wp and rc zero; adding 0.0 to a non-negative
// accumulator is bitwise inert, so one uniform apply order serves both
// roles.
type linkC struct {
	parent, child int32
	wp, rp        float64 // writes[parent], reads[parent]
	rc, wc        float64 // reads[child], writes[child]
	noc           float64
}

// applyLink accumulates one link contribution, in the exact legacy order.
//
//ruby:hotpath
func applyLink(s *Scratch, noc *float64, lc *linkC) {
	s.writes[lc.parent] += lc.wp
	s.reads[lc.parent] += lc.rp
	s.reads[lc.child] += lc.rc
	s.writes[lc.child] += lc.wc
	*noc += lc.noc
}

// dpC is the cached datapath-side contribution of one tensor at its
// innermost kept level. The NoC term is stored once and (for outputs)
// applied twice, exactly as the full kernel adds it.
type dpC struct {
	inner  int32
	out    bool
	ops    float64
	nocHop float64
}

// applyDP accumulates one datapath contribution, in the exact legacy order.
//
//ruby:hotpath
func applyDP(s *Scratch, noc *float64, dp *dpC) {
	s.reads[dp.inner] += dp.ops
	*noc += dp.nocHop
	if dp.out {
		s.writes[dp.inner] += dp.ops
		*noc += dp.nocHop
	}
}

// linkTraffic is the compiled stationarity walk for one (tensor, parent,
// child) link — the integer-indexed twin of Evaluator.addLinkTraffic, with
// identical multiplication order, returning the contribution record instead
// of accumulating it directly.
//
//ruby:hotpath
func (p *Plan) linkTraffic(dm *mapping.Dense, s *Scratch, ti int, vol float64, parent, child int) linkC {
	t := &p.tensors[ti]
	rel := t.rel
	inRun := true
	fills := 1.0
	readsMult := 1.0
	delivMult := 1.0
	distinct := 1.0

	boundary := p.firstSlot[child]
	for si := boundary - 1; si >= 0; si-- {
		sl := &p.slots[si]
		row := s.trips[si*p.nDims : si*p.nDims+p.nDims]
		if sl.Kind == mapping.Temporal {
			base := sl.Level * p.nDims
			for pi := p.nDims - 1; pi >= 0; pi-- {
				d := int(dm.Perm[base+pi])
				tr := float64(row[d])
				if tr == 1 {
					continue
				}
				r := rel[d]
				if r {
					distinct *= tr
				}
				if inRun && !r {
					continue
				}
				inRun = false
				fills *= tr
			}
			continue
		}
		for d := 0; d < p.nDims; d++ {
			tr := float64(row[d])
			if tr == 1 {
				continue
			}
			if rel[d] {
				readsMult *= tr
				delivMult *= tr
				distinct *= tr
				continue
			}
			delivMult *= tr
			if sl.Level < parent || !sl.Multicast {
				readsMult *= tr
			}
		}
	}

	hop := p.hop[parent][child]
	lc := linkC{parent: int32(parent), child: int32(child)}
	if t.role == workload.Output {
		transfers := fills * delivMult
		writesUp := transfers * vol
		rmw := transfers - distinct
		if rmw < 0 {
			rmw = 0
		}
		rmwv := rmw * vol
		lc.wp, lc.rp, lc.rc, lc.wc = writesUp, rmwv, writesUp, rmwv
		lc.noc = (writesUp + rmwv) * hop
		return lc
	}
	lc.rp = fills * readsMult * vol
	deliv := fills * delivMult * vol
	lc.wc = deliv
	lc.noc = deliv * hop
	return lc
}

// dpTraffic computes one tensor's datapath-side contribution at its
// innermost kept level.
//
//ruby:hotpath
func (p *Plan) dpTraffic(dm *mapping.Dense, s *Scratch, ti, inner int) dpC {
	ops := p.macs / p.broadcastBelow(dm, s, ti, inner)
	return dpC{
		inner:  int32(inner),
		out:    p.tensors[ti].role == workload.Output,
		ops:    ops,
		nocHop: ops * p.hop[inner][p.nLevels],
	}
}

// broadcastBelow is the compiled twin of Evaluator.broadcastBelow.
//
//ruby:hotpath
func (p *Plan) broadcastBelow(dm *mapping.Dense, s *Scratch, ti, li int) float64 {
	rel := p.tensors[ti].rel
	share := 1.0
	for si := range p.slots {
		sl := &p.slots[si]
		if !sl.Spatial() || sl.Level < li || !sl.Multicast {
			continue
		}
		for d := 0; d < p.nDims; d++ {
			if rel[d] {
				continue
			}
			if tr := s.trips[sl.Index*p.nDims+d]; tr > 1 {
				share *= float64(tr)
			}
		}
	}
	return share
}

// cyclesAlong is the compiled twin of Evaluator.cyclesAlong: the exact
// remainder-aware latency recursion, memoized in the scratch's per-slot
// lists instead of a freshly allocated map.
//
//ruby:hotpath
func (p *Plan) cyclesAlong(dm *mapping.Dense, d int, s *Scratch) float64 {
	row := dm.Cum[d*p.stride : d*p.stride+p.stride]
	for si := 0; si < p.nSlots; si++ {
		s.memoChunk[si] = s.memoChunk[si][:0]
		s.memoVal[si] = s.memoVal[si][:0]
	}
	return p.cyclesRec(row, s, row[0], 0)
}

// cyclesRec is the memoized latency recursion behind cyclesAlong.
//
//ruby:hotpath
func (p *Plan) cyclesRec(row []int, s *Scratch, chunk, si int) float64 {
	if si == p.nSlots {
		return 1
	}
	sub := row[si+1]
	if p.slots[si].Spatial() {
		if chunk < sub {
			sub = chunk
		}
		return p.cyclesRec(row, s, sub, si+1)
	}
	if sub >= chunk {
		return p.cyclesRec(row, s, chunk, si+1)
	}
	for i, c := range s.memoChunk[si] {
		if c == chunk {
			return s.memoVal[si][i]
		}
	}
	n := (chunk + sub - 1) / sub
	rem := chunk - (n-1)*sub
	v := float64(n-1)*p.cyclesRec(row, s, sub, si+1) + p.cyclesRec(row, s, rem, si+1)
	s.memoChunk[si] = append(s.memoChunk[si], chunk)
	s.memoVal[si] = append(s.memoVal[si], v)
	return v
}
