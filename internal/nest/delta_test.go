package nest_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
	"ruby/internal/workloads"
)

// deltaCase is one (arch, workload, constraints) triple the incremental
// evaluator's differential suite exercises. The workloads are chosen small
// enough that every factorization kind yields valid seeds quickly.
type deltaCase struct {
	name string
	a    *arch.Arch
	w    *workload.Workload
	cons func(*workload.Workload) mapspace.Constraints
}

func deltaCases() []deltaCase {
	resnet := workloads.ResNet50()
	toy := workload.MustMatmul("toy", 24, 36, 50)
	return []deltaCase{
		{
			name: "eyeriss/resnet-pointwise",
			a:    arch.EyerissLike(14, 12, 128),
			w:    resnet[1].Work,
			cons: mapspace.EyerissRowStationary,
		},
		{
			name: "simba/resnet-pointwise",
			a:    arch.SimbaLike(15, 4, 4),
			w:    resnet[1].Work,
			cons: mapspace.SimbaDataflow,
		},
		{
			name: "toylinear/matmul",
			a:    arch.ToyLinear(9, 512),
			w:    toy,
			cons: func(*workload.Workload) mapspace.Constraints {
				return mapspace.Constraints{FixedPerms: true}
			},
		},
	}
}

// bitsEqual reports exact bit equality of two floats (so +0 vs -0 and any
// NaN payload difference count as mismatches, unlike ==).
func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// costsBitIdentical compares every Cost field bit for bit.
func costsBitIdentical(a, b nest.Cost) bool {
	if a.Valid != b.Valid || a.Reason != b.Reason || a.BandwidthBound != b.BandwidthBound {
		return false
	}
	if !bitsEqual(a.Cycles, b.Cycles) || !bitsEqual(a.MACs, b.MACs) ||
		!bitsEqual(a.Utilization, b.Utilization) || !bitsEqual(a.EnergyPJ, b.EnergyPJ) ||
		!bitsEqual(a.EDP, b.EDP) || !bitsEqual(a.MACEnergyPJ, b.MACEnergyPJ) ||
		!bitsEqual(a.NoCEnergyPJ, b.NoCEnergyPJ) || !bitsEqual(a.StaticEnergyPJ, b.StaticEnergyPJ) {
		return false
	}
	for _, pair := range [][2][]float64{
		{a.LevelReads, b.LevelReads},
		{a.LevelWrites, b.LevelWrites},
		{a.LevelEnergyPJ, b.LevelEnergyPJ},
	} {
		if len(pair[0]) != len(pair[1]) {
			return false
		}
		for i := range pair[0] {
			if !bitsEqual(pair[0][i], pair[1][i]) {
				return false
			}
		}
	}
	return true
}

// seedValid samples until the space yields a valid mapping.
func seedValid(t *testing.T, sp *mapspace.Space, ev *nest.Evaluator, rng *rand.Rand) *mapping.Mapping {
	t.Helper()
	for i := 0; i < 50000; i++ {
		m := sp.Sample(rng)
		if ev.Evaluate(m).Valid {
			return m
		}
	}
	t.Fatalf("no valid seed mapping found")
	return nil
}

// TestDeltaMatchesFull is the differential property test pinning the
// incremental evaluator to the full compiled kernel bit for bit: over long
// random move sequences (chain resamples, loop-order swaps, bypass
// toggles) on every bundled architecture family and factorization kind,
// EvaluateDelta must equal a full EvaluateInto of the mutated mapping on
// every Cost field — including invalid Reasons — exactly. Moves are
// randomly committed or rejected; rejected moves are undone and the next
// proposal implicitly re-verifies that the committed state was restored
// exactly. Periodically the in-place-patched dense lowering and memoized
// key are checked against a from-scratch lowering of a clone.
func TestDeltaMatchesFull(t *testing.T) {
	const steps = 1000
	for _, tc := range deltaCases() {
		for _, kind := range mapspace.Kinds {
			t.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(t *testing.T) {
				ev := nest.MustEvaluator(tc.w, tc.a)
				plan := ev.Plan()
				cons := tc.cons(tc.w)
				cons.ExploreBypass = true
				sp := mapspace.New(tc.w, tc.a, kind, cons)
				rng := rand.New(rand.NewSource(int64(17 + kind)))

				m := seedValid(t, sp, ev, rng)
				dm, err := m.Dense(sp.Work, sp.Arch, sp.Slots())
				if err != nil {
					t.Fatalf("lowering seed: %v", err)
				}
				de := plan.NewDeltaEval()
				scratch := plan.NewScratch()
				seed := de.Seed(dm)
				if want := plan.EvaluateInto(dm, scratch); !costsBitIdentical(seed, want) {
					t.Fatalf("seed cost differs from full evaluation:\ndelta %+v\nfull  %+v", seed, want)
				}

				mut := sp.NewMutator()
				valid, committed := 0, 0
				for i := 0; i < steps; i++ {
					mv := mut.Propose(rng)
					mv.Apply(m)
					got := plan.EvaluateDelta(de, mv.Delta())
					want := plan.EvaluateInto(dm, scratch)
					if !costsBitIdentical(got, want) {
						t.Fatalf("step %d (%v): delta and full evaluation diverge:\ndelta %+v\nfull  %+v",
							i, mv.Delta(), got, want)
					}
					if got.Valid {
						valid++
					}
					if i%97 == 0 {
						checkDenseAgainstFresh(t, i, m, sp)
					}
					if got.Valid && rng.Intn(2) == 0 {
						de.Commit()
						committed++
					} else {
						de.Reject()
						mv.Undo(m)
						if i%89 == 0 {
							checkDenseAgainstFresh(t, i, m, sp)
						}
					}
				}
				if valid == 0 {
					t.Errorf("move sequence produced no valid candidates")
				}
				if committed == 0 {
					t.Errorf("move sequence committed no moves")
				}
			})
		}
	}
}

// checkDenseAgainstFresh verifies that the move-patched dense lowering and
// memoized key of m are exactly what a from-scratch lowering of an
// identical mapping produces.
func checkDenseAgainstFresh(t *testing.T, step int, m *mapping.Mapping, sp *mapspace.Space) {
	t.Helper()
	mc := m.Clone()
	fresh, err := mc.Dense(sp.Work, sp.Arch, sp.Slots())
	if err != nil {
		t.Fatalf("step %d: clone failed to lower: %v", step, err)
	}
	dm, err := m.Dense(sp.Work, sp.Arch, sp.Slots())
	if err != nil {
		t.Fatalf("step %d: patched mapping failed to lower: %v", step, err)
	}
	if !reflect.DeepEqual(dm.Cum, fresh.Cum) || !reflect.DeepEqual(dm.Perm, fresh.Perm) ||
		!reflect.DeepEqual(dm.KeepMask, fresh.KeepMask) {
		t.Fatalf("step %d: patched dense diverges from fresh lowering:\npatched Cum=%v Perm=%v Keep=%v\nfresh   Cum=%v Perm=%v Keep=%v",
			step, dm.Cum, dm.Perm, dm.KeepMask, fresh.Cum, fresh.Perm, fresh.KeepMask)
	}
	if mk, fk := m.Key(sp.Work, sp.Slots()), mc.Key(sp.Work, sp.Slots()); mk != fk {
		t.Fatalf("step %d: patched key %q differs from fresh key %q", step, mk, fk)
	}
}

// TestDeltaEvalProtocol pins the session-protocol guard rails: proposals
// are strictly one at a time, invalid proposals cannot be committed, and
// sessions must be seeded with a valid mapping.
func TestDeltaEvalProtocol(t *testing.T) {
	tc := deltaCases()[2]
	ev := nest.MustEvaluator(tc.w, tc.a)
	plan := ev.Plan()
	sp := mapspace.New(tc.w, tc.a, mapspace.RubyS, tc.cons(tc.w))
	rng := rand.New(rand.NewSource(5))

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}

	de := plan.NewDeltaEval()
	mustPanic("unseeded EvaluateDelta", func() {
		plan.EvaluateDelta(de, mapping.Delta{Kind: mapping.DeltaChain})
	})
	mustPanic("Commit without proposal", func() { de.Commit() })
	mustPanic("Reject without proposal", func() { de.Reject() })

	m := seedValid(t, sp, ev, rng)
	dm, err := m.Dense(sp.Work, sp.Arch, sp.Slots())
	if err != nil {
		t.Fatalf("lowering seed: %v", err)
	}
	if c := de.Seed(dm); !c.Valid {
		t.Fatalf("seed invalid: %s", c.Reason)
	}

	mut := sp.NewMutator()
	mv := mut.Propose(rng)
	mv.Apply(m)
	plan.EvaluateDelta(de, mv.Delta())
	mustPanic("second open proposal", func() { plan.EvaluateDelta(de, mv.Delta()) })
	de.Reject()
	mv.Undo(m)

	// Hunt for an invalid proposal and verify Commit refuses it.
	for i := 0; i < 5000; i++ {
		mv = mut.Propose(rng)
		mv.Apply(m)
		c := plan.EvaluateDelta(de, mv.Delta())
		if !c.Valid {
			mustPanic("Commit of invalid proposal", func() { de.Commit() })
			de.Reject()
			mv.Undo(m)
			return
		}
		if rng.Intn(2) == 0 {
			de.Commit()
		} else {
			de.Reject()
			mv.Undo(m)
		}
	}
	t.Log("no invalid proposal encountered; Commit-of-invalid guard not exercised")
}
