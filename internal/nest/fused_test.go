package nest

import (
	"math/rand"
	"strings"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/workload"
)

// fusedFixture is a pointwise producer feeding a 3x3 consumer (halo) on an
// Eyeriss-like hierarchy with a shared GLB at level 1.
func fusedFixture(t *testing.T) (workload.EdgeBinding, *arch.Arch) {
	t.Helper()
	prod := workload.MustConv2D(workload.Conv2DParams{
		Name: "p", N: 1, M: 16, C: 4, P: 14, Q: 14, R: 1, S: 1})
	cons := workload.MustConv2D(workload.Conv2DParams{
		Name: "c", N: 1, M: 8, C: 16, P: 14, Q: 14, R: 3, S: 3})
	net := workload.MustNetwork("fx",
		[]workload.Node{{Name: "p", Work: prod}, {Name: "c", Work: cons}},
		[]workload.Edge{{From: "p", To: "c", Dims: map[string]string{
			"N": "N", "M": "C", "P": "P", "Q": "Q"}}})
	b, err := net.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	return b, arch.EyerissLike(4, 3, 2)
}

func costsIdentical(a, b Cost) bool {
	if a.Valid != b.Valid || a.Reason != b.Reason {
		return false
	}
	if a.Cycles != b.Cycles || a.EnergyPJ != b.EnergyPJ || a.EDP != b.EDP ||
		a.Utilization != b.Utilization || a.MACs != b.MACs ||
		a.NoCEnergyPJ != b.NoCEnergyPJ || a.StaticEnergyPJ != b.StaticEnergyPJ ||
		a.BandwidthBound != b.BandwidthBound {
		return false
	}
	for li := range a.LevelReads {
		if a.LevelReads[li] != b.LevelReads[li] || a.LevelWrites[li] != b.LevelWrites[li] ||
			a.LevelEnergyPJ[li] != b.LevelEnergyPJ[li] {
			return false
		}
	}
	return true
}

// Fusion-disabled network evaluation must be bit-identical to the existing
// per-layer path: same mappings, same Costs, field for field.
func TestFusedDisabledMatchesPerLayer(t *testing.T) {
	b, a := fusedFixture(t)
	fe, err := NewFusedEvaluator(b, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	pev := MustEvaluator(b.Prod.Work, a)
	cev := MustEvaluator(b.Cons.Work, a)

	psp := mapspace.New(b.Prod.Work, a, mapspace.RubyS, mapspace.Constraints{})
	csp := mapspace.New(b.Cons.Work, a, mapspace.RubyS, mapspace.Constraints{})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		pm, cm := psp.Sample(rng), csp.Sample(rng)
		dis := fe.EvaluateDisabled(pm, cm)
		pc := pev.Evaluate(pm)
		cc := cev.Evaluate(cm)
		if !pc.Valid || !cc.Valid {
			if dis.Valid {
				t.Fatalf("sample %d: disabled evaluation valid but per-layer invalid", i)
			}
			continue
		}
		if !dis.Valid {
			t.Fatalf("sample %d: disabled evaluation invalid: %s", i, dis.Reason)
		}
		if !costsIdentical(dis.Producer, pc) {
			t.Fatalf("sample %d: producer cost diverges from per-layer path", i)
		}
		if !costsIdentical(dis.Consumer, cc) {
			t.Fatalf("sample %d: consumer cost diverges from per-layer path", i)
		}
		if dis.Cycles != pc.Cycles+cc.Cycles || dis.EnergyPJ != pc.EnergyPJ+cc.EnergyPJ ||
			dis.EDP != dis.EnergyPJ*dis.Cycles {
			t.Fatalf("sample %d: combined metrics are not the phase sums", i)
		}
	}
}

// A valid fused evaluation must strictly beat the fusion-disabled one: the
// intermediate's DRAM words disappear from both phases' level-0 traffic and
// from the energy total.
func TestFusedEvaluateElidesDRAM(t *testing.T) {
	b, a := fusedFixture(t)
	fe, err := NewFusedEvaluator(b, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	csp := mapspace.New(b.Cons.Work, a, mapspace.RubyS, mapspace.Constraints{})
	cev := MustEvaluator(b.Cons.Work, a)
	pev := MustEvaluator(b.Prod.Work, a)
	rng := rand.New(rand.NewSource(5))

	found := 0
	for i := 0; i < 4000 && found < 5; i++ {
		cm := csp.Sample(rng)
		if !cev.Evaluate(cm).Valid {
			continue
		}
		ft, err := mapspace.FuseTileOf(b, a, cm, 1)
		if err != nil {
			t.Fatal(err)
		}
		psp := mapspace.New(b.Prod.Work, a, mapspace.RubyS, mapspace.Constraints{
			FuseTile: ft, FuseLevel: 1})
		pm := psp.Sample(rng)
		if !pev.Evaluate(pm).Valid {
			continue
		}
		fc := fe.Evaluate(pm, cm)
		if !fc.Valid {
			continue
		}
		found++
		dis := fe.EvaluateDisabled(pm, cm)
		if !dis.Valid {
			t.Fatal("disabled evaluation of a fused-valid pair is invalid")
		}
		if fc.ElidedWords <= 0 {
			t.Fatalf("fused pair elided %v words", fc.ElidedWords)
		}
		if fc.EnergyPJ >= dis.EnergyPJ {
			t.Fatalf("fused energy %v not below disabled %v", fc.EnergyPJ, dis.EnergyPJ)
		}
		if fc.EDP >= dis.EDP {
			t.Fatalf("fused EDP %v not below disabled %v", fc.EDP, dis.EDP)
		}
		if fc.Cycles > dis.Cycles {
			t.Fatalf("fused cycles %v above disabled %v", fc.Cycles, dis.Cycles)
		}
		// The level-0 traffic drop accounts exactly for the elided words.
		drop := (dis.Producer.LevelWrites[0] - fc.Producer.LevelWrites[0]) +
			(dis.Producer.LevelReads[0] - fc.Producer.LevelReads[0]) +
			(dis.Consumer.LevelReads[0] - fc.Consumer.LevelReads[0])
		if drop != fc.ElidedWords {
			t.Fatalf("DRAM traffic drop %v != elided words %v", drop, fc.ElidedWords)
		}
	}
	if found == 0 {
		t.Fatal("no fused-valid pair found in 4000 samples")
	}
}

// Misaligned producer tiles must be rejected with a tile-alignment reason.
func TestFusedEvaluateRejectsMisalignment(t *testing.T) {
	b, a := fusedFixture(t)
	fe, err := NewFusedEvaluator(b, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	csp := mapspace.New(b.Cons.Work, a, mapspace.RubyS, mapspace.Constraints{})
	psp := mapspace.New(b.Prod.Work, a, mapspace.RubyS, mapspace.Constraints{})
	cev := MustEvaluator(b.Cons.Work, a)
	pev := MustEvaluator(b.Prod.Work, a)
	rng := rand.New(rand.NewSource(9))
	sawAlign := false
	for i := 0; i < 3000 && !sawAlign; i++ {
		pm, cm := psp.Sample(rng), csp.Sample(rng)
		if !pev.Evaluate(pm).Valid || !cev.Evaluate(cm).Valid {
			continue
		}
		fc := fe.Evaluate(pm, cm)
		if !fc.Valid && strings.Contains(fc.Reason, "advance") {
			sawAlign = true
		}
	}
	if !sawAlign {
		t.Fatal("no unconstrained pair tripped the tile-alignment check")
	}
}

func TestNewFusedEvaluatorRejectsBadLevel(t *testing.T) {
	b, a := fusedFixture(t)
	if _, err := NewFusedEvaluator(b, a, len(a.Levels)); err == nil {
		t.Fatal("fuse level beyond the hierarchy accepted")
	}
}
