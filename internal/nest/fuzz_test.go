package nest_test

import (
	"math/rand"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

// FuzzMoveDelta fuzzes the incremental-evaluation pipeline: a script byte
// stream steers a sequence of Moves (tiling-chain resamples, loop-order
// swaps, bypass toggles) over one mapping, and after every move the delta
// kernel's verdict must be bit-identical to a full evaluation of the
// mutated mapping. Each script byte encodes one step: bits 0-1 select the
// move kind, bits 2-6 the target dimension/level, bit 7 whether a valid
// proposal is committed or rejected.
func FuzzMoveDelta(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x41, 0x86, 0xc2})
	f.Add(int64(7), []byte{0x02, 0x82, 0x13, 0x90, 0x25})
	f.Add(int64(42), []byte{0xff, 0x00, 0x7f, 0x80, 0x01, 0xfe})

	w := workload.MustMatmul("fuzz", 24, 36, 50)
	a := arch.ToyGLB(8, 4096)
	ev := nest.MustEvaluator(w, a)
	plan := ev.Plan()

	// Togglable (level, role) bypass pairs for keep moves.
	var bypassLvls []int
	var bypassRoles []workload.Role
	for li := 1; li < len(a.Levels)-1; li++ {
		for _, r := range workload.Roles {
			if a.Levels[li].KeepsRole(r, false) {
				bypassLvls = append(bypassLvls, li)
				bypassRoles = append(bypassRoles, r)
			}
		}
	}

	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		if len(script) == 0 || len(script) > 256 {
			t.Skip("script outside the cheap envelope")
		}
		kind := mapspace.Kinds[int(uint64(seed)%uint64(len(mapspace.Kinds)))]
		sp := mapspace.New(w, a, kind, mapspace.Constraints{ExploreBypass: true})
		rng := rand.New(rand.NewSource(seed))

		var m = sp.Sample(rng)
		found := false
		for i := 0; i < 2000; i++ {
			if ev.Evaluate(m).Valid {
				found = true
				break
			}
			m = sp.Sample(rng)
		}
		if !found {
			t.Skip("no valid seed mapping for this rng seed")
		}
		dm, err := m.Dense(sp.Work, sp.Arch, sp.Slots())
		if err != nil {
			t.Fatalf("lowering seed: %v", err)
		}
		de := plan.NewDeltaEval()
		scratch := plan.NewScratch()
		if c := de.Seed(dm); !c.Valid {
			t.Fatalf("seed mapping evaluated invalid: %s", c.Reason)
		}

		mut := sp.NewMutator()
		dims := sp.Work.DimNames()
		for i, b := range script {
			var mv *mapspace.Move
			switch sel := b & 3; {
			case sel == 1:
				mv = mut.ProposePerm(rng, int(b>>2)%len(a.Levels))
			case sel == 2 && len(bypassLvls) > 0:
				k := int(b>>2) % len(bypassLvls)
				mv = mut.ProposeKeep(bypassLvls[k], bypassRoles[k])
			default:
				mv = mut.ProposeChainID(rng, int(b>>2)%len(dims))
			}
			mv.Apply(m)
			got := plan.EvaluateDelta(de, mv.Delta())
			want := plan.EvaluateInto(dm, scratch)
			if !costsBitIdentical(got, want) {
				t.Fatalf("step %d (%v): delta and full evaluation diverge:\ndelta %+v\nfull  %+v",
					i, mv.Delta(), got, want)
			}
			if got.Valid && b&0x80 != 0 {
				de.Commit()
			} else {
				de.Reject()
				mv.Undo(m)
			}
		}
	})
}
