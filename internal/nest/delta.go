package nest

import (
	"ruby/internal/mapping"
)

// DeltaEval is one incremental-evaluation session over a single mapping: it
// caches, per scope, the contributions the full kernel computes — per-link
// traffic records, per-tensor datapath terms, per-dimension latency factors,
// plus the integer trips/volumes/kept tables in its private scratch — and
// re-derives only the scopes a Move invalidates. Recombining cached and
// recomputed contributions replays every floating-point addition in the
// exact order of the full kernel, so EvaluateDelta is bit-identical to
// EvaluateInto on the same dense mapping (TestDeltaMatchesFull pins this
// over long random move sequences).
//
// Protocol: Seed with the lowered mapping, then repeatedly — mutate the
// mapping through a mapspace.Move, call Plan.EvaluateDelta with the move's
// Delta, and either Commit (keep the move applied) or Reject (then undo the
// move). One proposal may be outstanding at a time. The session requires
// that the dense lowering seeded here is patched in place by the moves
// (mapspace.Move.Apply does this whenever the mapping's memoized lowering
// matches the space's evaluator context); re-lowering the mapping from
// scratch mid-session invalidates the seeded pointer and the session must
// be re-seeded.
//
// A DeltaEval belongs to one goroutine; the Plan stays shared.
type DeltaEval struct {
	p  *Plan
	s  *Scratch
	dm *mapping.Dense

	seeded bool

	// Committed contributions: together with the scratch's trips/vols/kept
	// tables they always describe exactly what a full evaluation of the
	// current dense mapping would compute (the seed establishes this, and
	// Commit/Reject preserve it).
	links     [][]linkC // per tensor, its kept-chain link records
	dp        []dpC     // per tensor, its datapath record
	dimCycles []float64 // per dim, its compute-latency factor

	// Proposal buffers, populated by EvaluateDelta and promoted by Commit.
	pLinks      [][]linkC
	pDp         []dpC
	pDimCycle   float64
	linkChanged []bool
	dpChanged   []bool
	cycleDim    int // dim whose latency factor is proposed, -1 if none

	// Undo records for the in-place scratch updates of the open proposal.
	oldTrips    []int   // saved trips column (chain moves)
	oldExts     []int   // saved per-level extents of the moved dim (chain moves)
	tripsDim    int     // row owner, -1 if none
	oldVols     []int64 // saved volumes, parallel to volsTouched
	volsTouched []int32 // level*nTensors+tensor indices
	oldKept     uint8   // saved kept mask (keep moves)
	keptLevel   int     // mask owner, -1 if none

	pending      bool
	pendingValid bool
	delta        mapping.Delta
}

// NewDeltaEval allocates an incremental-evaluation session for the plan,
// including its private scratch. All buffers reach steady state here; the
// session itself never allocates.
func (p *Plan) NewDeltaEval() *DeltaEval {
	de := &DeltaEval{
		p:           p,
		s:           p.NewScratch(),
		links:       make([][]linkC, p.nTensors),
		dp:          make([]dpC, p.nTensors),
		dimCycles:   make([]float64, p.nDims),
		pLinks:      make([][]linkC, p.nTensors),
		pDp:         make([]dpC, p.nTensors),
		linkChanged: make([]bool, p.nTensors),
		dpChanged:   make([]bool, p.nTensors),
		oldTrips:    make([]int, p.nSlots),
		oldExts:     make([]int, p.nLevels),
		oldVols:     make([]int64, 0, p.nLevels*p.nTensors),
		volsTouched: make([]int32, 0, p.nLevels*p.nTensors),
		tripsDim:    -1,
		keptLevel:   -1,
		cycleDim:    -1,
	}
	for ti := 0; ti < p.nTensors; ti++ {
		de.links[ti] = make([]linkC, 0, p.nLevels)
		de.pLinks[ti] = make([]linkC, 0, p.nLevels)
	}
	return de
}

// Seed fully evaluates dm, recording every per-scope contribution, and
// makes dm the session's base mapping. Any open proposal is abandoned. The
// session is usable for EvaluateDelta only when the returned Cost is valid
// (an invalid mapping leaves the contribution record incomplete). The
// Cost's per-level slices alias the session scratch; retain with Clone.
func (de *DeltaEval) Seed(dm *mapping.Dense) Cost {
	de.clearPending()
	c := de.p.evalInto(dm, de.s, de)
	de.dm = dm
	de.seeded = c.Valid
	return c
}

// EvaluateDelta evaluates the mapping after the move described by dl has
// been applied to the seeded dense lowering, recomputing only the scopes
// the move touches. The result is bit-identical to a full EvaluateInto of
// the mutated mapping. The proposal stays open until Commit or Reject; the
// returned Cost's per-level slices alias the session scratch.
//
//ruby:hotpath
func (p *Plan) EvaluateDelta(de *DeltaEval, dl mapping.Delta) Cost {
	if de.p != p {
		panic("nest: DeltaEval used with a different Plan")
	}
	if !de.seeded {
		panic("nest: EvaluateDelta before a valid Seed")
	}
	if de.pending {
		panic("nest: EvaluateDelta with an open proposal (Commit or Reject first)")
	}
	de.pending = true
	de.delta = dl
	switch dl.Kind {
	case mapping.DeltaChain:
		return p.deltaChain(de, dl.Dim)
	case mapping.DeltaPerm:
		return p.deltaPerm(de, dl.Level)
	case mapping.DeltaKeep:
		return p.deltaKeep(de, dl.Level)
	}
	panic("nest: unknown delta kind")
}

// deltaChain handles a tiling-chain replacement for dimension d. The trips
// row and the volumes of tensors indexed by d are patched in place (with
// undo records); every stationarity walk multiplies dim-d trip counts, so
// all link and datapath records are rebuilt, but only dim d's latency
// recursion reruns.
//
//ruby:hotpath
func (p *Plan) deltaChain(de *DeltaEval, d int) Cost {
	s, dm := de.s, de.dm
	de.tripsDim = d
	cbase := d * p.stride
	for si := 0; si < p.nSlots; si++ {
		de.oldTrips[si] = s.trips[si*p.nDims+d]
		outer, inner := dm.Cum[cbase+si], dm.Cum[cbase+si+1]
		if inner >= outer {
			s.trips[si*p.nDims+d] = 1
		} else {
			s.trips[si*p.nDims+d] = (outer + inner - 1) / inner
		}
	}
	// Patch the extents column before any validity check can bail out, so
	// tripsDim >= 0 always implies oldExts holds this proposal's undo state.
	for li := 0; li < p.nLevels; li++ {
		ebase := li * p.nDims
		de.oldExts[li] = s.exts[ebase+d]
		s.exts[ebase+d] = dm.CumAt(d, p.firstSlot[li])
	}
	if c, bad := p.checkFanout(s); bad {
		return c
	}
	for li := 0; li < p.nLevels; li++ {
		ebase := li * p.nDims
		base := li * p.nTensors
		for ti := range p.tensors {
			if !p.tensors[ti].rel[d] {
				continue
			}
			idx := base + ti
			de.oldVols = append(de.oldVols, s.vols[idx])
			de.volsTouched = append(de.volsTouched, int32(idx))
			vol := int64(1)
			for _, coord := range p.tensors[ti].coords {
				extent := 1
				for _, tm := range coord {
					extent += tm.stride * (s.exts[ebase+tm.dim] - 1)
				}
				vol *= int64(extent)
			}
			s.vols[idx] = vol
		}
	}
	if c, bad := p.checkCapacity(s); bad {
		return c
	}
	for ti := range p.tensors {
		p.rebuildTensor(de, ti, true)
	}
	de.cycleDim = d
	de.pDimCycle = p.cyclesAlong(dm, d, s)
	de.pendingValid = true
	return p.recombine(de)
}

// deltaPerm handles a loop-order replacement at level li. A level's loop
// order is read only by stationarity walks that descend past it — links
// whose child level lies below li — so only those links are recomputed;
// each tensor's remaining links are copied from the committed values (the
// kept-level chain is untouched by a perm move, so the chains coincide).
// Trip counts, volumes and kept masks are untouched, so the proposal is
// always valid.
//
//ruby:hotpath
func (p *Plan) deltaPerm(de *DeltaEval, li int) Cost {
	s, dm := de.s, de.dm
	for ti := range p.tensors {
		committed := de.links[ti]
		changed := false
		for i := range committed {
			if int(committed[i].child) > li {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		lcs := de.pLinks[ti][:0]
		for i := range committed {
			lc := committed[i]
			if int(lc.child) > li {
				lc = p.linkTraffic(dm, s, ti, float64(s.vols[int(lc.child)*p.nTensors+ti]), int(lc.parent), int(lc.child))
			}
			lcs = append(lcs, lc)
		}
		de.pLinks[ti] = lcs
		de.linkChanged[ti] = true
	}
	de.pendingValid = true
	return p.recombine(de)
}

// deltaKeep handles a bypass toggle of one role at level li. The level's
// kept mask is patched in place (with an undo record), capacity is
// rechecked, and the toggled role's tensors — whose kept-level chains
// changed — are rebuilt.
//
//ruby:hotpath
func (p *Plan) deltaKeep(de *DeltaEval, li int) Cost {
	s, dm := de.s, de.dm
	de.keptLevel = li
	de.oldKept = s.kept[li]
	mask := p.archKeeps[li]
	if li != 0 && li < len(dm.KeepMask) && dm.KeepMask[li] >= 0 {
		mask &= uint8(dm.KeepMask[li])
	}
	s.kept[li] = mask
	if c, bad := p.checkCapacity(s); bad {
		return c
	}
	for ti := range p.tensors {
		if p.tensors[ti].role == de.delta.Role {
			p.rebuildTensor(de, ti, true)
		}
	}
	de.pendingValid = true
	return p.recombine(de)
}

// rebuildTensor recomputes tensor ti's link records (and, when withDP, its
// datapath record) into the proposal buffers, reading the current scratch
// tables. Links whose inputs did not change recompute to identical bits, so
// rebuilding a whole tensor is always safe.
//
//ruby:hotpath
func (p *Plan) rebuildTensor(de *DeltaEval, ti int, withDP bool) {
	s, dm := de.s, de.dm
	bit := mapping.RoleBit(p.tensors[ti].role)
	kl := s.keptLevels[:0]
	kl = append(kl, 0)
	for li := 1; li < p.nLevels; li++ {
		if s.kept[li]&bit != 0 {
			kl = append(kl, li)
		}
	}
	lcs := de.pLinks[ti][:0]
	for i := 1; i < len(kl); i++ {
		parent, child := kl[i-1], kl[i]
		lcs = append(lcs, p.linkTraffic(dm, s, ti, float64(s.vols[child*p.nTensors+ti]), parent, child))
	}
	de.pLinks[ti] = lcs
	de.linkChanged[ti] = true
	if withDP {
		de.pDp[ti] = p.dpTraffic(dm, s, ti, kl[len(kl)-1])
		de.dpChanged[ti] = true
	}
}

// recombine replays the cached and proposed contributions in the exact
// accumulation order of the full kernel — per tensor, links outermost-first
// then the datapath term; then the per-dimension latency product — and
// finishes into a Cost.
//
//ruby:hotpath
func (p *Plan) recombine(de *DeltaEval) Cost {
	s := de.s
	for li := 0; li < p.nLevels; li++ {
		s.reads[li], s.writes[li], s.energy[li] = 0, 0, 0
	}
	var noc float64
	for ti := 0; ti < p.nTensors; ti++ {
		lcs := de.links[ti]
		if de.linkChanged[ti] {
			lcs = de.pLinks[ti]
		}
		for i := range lcs {
			applyLink(s, &noc, &lcs[i])
		}
		dp := de.dp[ti]
		if de.dpChanged[ti] {
			dp = de.pDp[ti]
		}
		applyDP(s, &noc, &dp)
	}
	cycles := 1.0
	for d := 0; d < p.nDims; d++ {
		v := de.dimCycles[d]
		if d == de.cycleDim {
			v = de.pDimCycle
		}
		cycles *= v
	}
	return p.finish(s, cycles, noc)
}

// Commit promotes the open proposal: the proposed contribution records
// become the committed ones and the in-place scratch updates become
// permanent. The caller keeps the corresponding Move applied. Committing an
// invalid proposal panics — the cached state would no longer describe any
// evaluable mapping.
//
//ruby:hotpath
func (de *DeltaEval) Commit() {
	if !de.pending {
		panic("nest: DeltaEval.Commit without an open proposal")
	}
	if !de.pendingValid {
		panic("nest: DeltaEval.Commit of an invalid proposal")
	}
	for ti := range de.linkChanged {
		if de.linkChanged[ti] {
			de.links[ti], de.pLinks[ti] = de.pLinks[ti], de.links[ti]
		}
		if de.dpChanged[ti] {
			de.dp[ti] = de.pDp[ti]
		}
	}
	if de.cycleDim >= 0 {
		de.dimCycles[de.cycleDim] = de.pDimCycle
	}
	de.clearPending()
}

// Reject discards the open proposal, restoring the scratch tables to the
// committed state. The caller must also undo the corresponding Move on the
// mapping (in either order; Reject does not read the dense lowering).
//
//ruby:hotpath
func (de *DeltaEval) Reject() {
	if !de.pending {
		panic("nest: DeltaEval.Reject without an open proposal")
	}
	s := de.s
	if de.tripsDim >= 0 {
		for si := 0; si < de.p.nSlots; si++ {
			s.trips[si*de.p.nDims+de.tripsDim] = de.oldTrips[si]
		}
		for li := 0; li < de.p.nLevels; li++ {
			s.exts[li*de.p.nDims+de.tripsDim] = de.oldExts[li]
		}
	}
	for i, idx := range de.volsTouched {
		s.vols[idx] = de.oldVols[i]
	}
	if de.keptLevel >= 0 {
		s.kept[de.keptLevel] = de.oldKept
	}
	de.clearPending()
}

// clearPending resets all proposal state.
func (de *DeltaEval) clearPending() {
	de.pending = false
	de.pendingValid = false
	de.tripsDim = -1
	de.keptLevel = -1
	de.cycleDim = -1
	de.oldVols = de.oldVols[:0]
	de.volsTouched = de.volsTouched[:0]
	for ti := range de.linkChanged {
		de.linkChanged[ti] = false
		de.dpChanged[ti] = false
	}
}
