// Package nest is the analytical loop-nest cost model (the Timeloop-style
// "architecture cost modeling" subproblem): given a workload, an architecture
// and a mapping, it computes validity, per-level access counts, latency in
// cycles, compute utilization, energy, and the energy-delay product.
//
// The model understands imperfect factorization natively: loop trip counts
// use ceiling division, the final iteration of an imperfect loop processes a
// remainder tile, and latency is computed by an exact memoized recursion over
// (chunk size, slot) so that nested remainders do not accumulate error.
// Spatial slots contribute parallelism (elapsed time is the largest
// instance's share) rather than time.
package nest

import (
	"fmt"
	"sync"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

// Cost is the evaluation result for one mapping.
type Cost struct {
	// Valid reports whether the mapping satisfies structural, fanout and
	// capacity constraints. Invalid costs carry a Reason and no metrics.
	Valid  bool
	Reason string // human-readable cause of the invalid verdict

	Cycles      float64 // latency, in MAC-issue cycles
	MACs        float64 // real compute operations (padded workloads include ineffectual ones)
	Utilization float64 // MACs / (Cycles * total lanes)
	EnergyPJ    float64 // total energy, picojoules
	EDP         float64 // EnergyPJ * Cycles

	// Per-architecture-level aggregate word accesses and energy.
	LevelReads    []float64
	LevelWrites   []float64
	LevelEnergyPJ []float64
	MACEnergyPJ   float64 // datapath energy (MACs x per-MAC cost)

	// NoCEnergyPJ is the network hop energy (0 unless Network.HopEnergyPJ
	// is configured).
	NoCEnergyPJ float64
	// StaticEnergyPJ is the leakage energy (0 unless Level.StaticPJPerCycle
	// is configured).
	StaticEnergyPJ float64
	// BandwidthBound names the level whose bandwidth limited latency, if
	// any (empty when compute-bound).
	BandwidthBound string
}

// Better reports whether c strictly improves on o under the EDP objective.
// Any valid cost beats an invalid one.
func (c *Cost) Better(o *Cost) bool {
	if !c.Valid {
		return false
	}
	if !o.Valid {
		return true
	}
	return c.EDP < o.EDP
}

// Evaluator evaluates mappings of one workload onto one architecture. It is
// safe for concurrent use.
type Evaluator struct {
	Work  *workload.Workload // the evaluated iteration space
	Arch  *arch.Arch         // the target hierarchy
	Slots []mapping.Slot     // the derived tiling slot list (mapping.Slots)

	dims      []string
	relevant  map[string]map[string]bool // tensor name -> dim -> indexes tensor
	roleOf    map[string]workload.Role
	macs      float64
	lanes     float64
	firstSlot []int // per level, index of its temporal slot

	plan    *Plan     // compiled integer-indexed evaluation program
	scratch sync.Pool // of *Scratch, for the Evaluate adapter
}

// NewEvaluator builds an evaluator, validating the architecture.
func NewEvaluator(w *workload.Workload, a *arch.Arch) (*Evaluator, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{
		Work:     w,
		Arch:     a,
		Slots:    mapping.Slots(a),
		dims:     w.DimNames(),
		relevant: make(map[string]map[string]bool, len(w.Tensors)),
		roleOf:   make(map[string]workload.Role, len(w.Tensors)),
		macs:     float64(w.MACs()),
		lanes:    float64(a.TotalLanes()),
	}
	for i := range w.Tensors {
		t := &w.Tensors[i]
		e.relevant[t.Name] = t.RelevantDims()
		e.roleOf[t.Name] = t.Role
	}
	e.firstSlot = make([]int, len(a.Levels))
	for li := range a.Levels {
		e.firstSlot[li] = mapping.FirstSlotOfLevel(e.Slots, li)
	}
	e.plan = newPlan(w, a, e.Slots, e.firstSlot)
	e.scratch.New = func() any { return e.plan.NewScratch() }
	return e, nil
}

// Plan returns the evaluator's compiled evaluation program. Pair it with a
// per-goroutine Scratch (Plan.NewScratch) for allocation-free evaluation.
func (e *Evaluator) Plan() *Plan { return e.plan }

// MustEvaluator is NewEvaluator, panicking on error.
func MustEvaluator(w *workload.Workload, a *arch.Arch) *Evaluator {
	e, err := NewEvaluator(w, a)
	if err != nil {
		panic(err)
	}
	return e
}

// invalid builds an invalid-verdict Cost. Hot-path callers reach it only on
// the rejected-mapping branch, so its formatting (and the boxing of its
// arguments) never costs a steady-state allocation.
//
//ruby:coldpath
func invalid(format string, args ...any) Cost {
	return Cost{Valid: false, Reason: fmt.Sprintf(format, args...)}
}

// Evaluate computes the cost of mapping m via the compiled plan. Callers
// that evaluate in a tight loop should hold their own Scratch and call
// Plan().EvaluateMappingInto directly; this adapter borrows one from a pool
// and detaches the result, costing one small allocation per valid mapping.
func (e *Evaluator) Evaluate(m *mapping.Mapping) Cost {
	s := e.scratch.Get().(*Scratch)
	c := e.plan.EvaluateMapping(m, s)
	e.scratch.Put(s)
	return c
}

// EvaluateLegacy computes the cost of mapping m through the original
// string-keyed model. It is retained as the reference implementation for the
// differential tests that pin the compiled plan to it bit for bit.
func (e *Evaluator) EvaluateLegacy(m *mapping.Mapping) Cost {
	chains, err := m.Chains(e.Work, e.Slots)
	if err != nil {
		return invalid("chains: %v", err)
	}
	if err := m.ValidatePerms(e.Work, e.Arch); err != nil {
		return invalid("perms: %v", err)
	}

	// Spatial fanout bounds.
	for _, s := range e.Slots {
		if !s.Spatial() {
			continue
		}
		used := 1
		for _, d := range e.dims {
			used *= chains[d].Trips(s.Index)
		}
		if used > s.Fanout {
			return invalid("fanout: slot %d (%s level %d) exceeds %d instances",
				s.Index, s.Kind, s.Level, s.Fanout)
		}
	}

	// Storage residency and capacity.
	kept := make([]map[workload.Role]bool, len(e.Arch.Levels))
	for li := range e.Arch.Levels {
		kept[li] = m.KeptRoles(e.Arch, li)
	}
	vols := e.tileVolumes(chains) // [level][tensor index]
	for li := 1; li < len(e.Arch.Levels); li++ {
		l := &e.Arch.Levels[li]
		var shared int64
		for ti := range e.Work.Tensors {
			t := &e.Work.Tensors[ti]
			if !kept[li][t.Role] {
				continue
			}
			v := vols[li][ti]
			if capWords, dedicated := l.RoleCapacity(t.Role); dedicated {
				if v > capWords {
					return invalid("capacity: level %s %v tile exceeds dedicated %d words",
						l.Name, t.Role, capWords)
				}
			} else {
				shared += v
			}
		}
		if l.PerRole == nil && l.Capacity > 0 && shared > l.Capacity {
			return invalid("capacity: level %s exceeds shared capacity %d words", l.Name, l.Capacity)
		}
	}

	c := Cost{
		Valid:         true,
		MACs:          e.macs,
		LevelReads:    make([]float64, len(e.Arch.Levels)),
		LevelWrites:   make([]float64, len(e.Arch.Levels)),
		LevelEnergyPJ: make([]float64, len(e.Arch.Levels)),
	}

	// Inter-level traffic per tensor along its chain of kept levels.
	for ti := range e.Work.Tensors {
		t := &e.Work.Tensors[ti]
		keptLevels := e.keptLevels(t.Role, kept)
		for i := 1; i < len(keptLevels); i++ {
			parent, child := keptLevels[i-1], keptLevels[i]
			e.addLinkTraffic(&c, m, chains, t, float64(vols[child][ti]), parent, child)
		}
		// Datapath-side accesses at the innermost kept level. A multicast
		// network below the buffer delivers one read to every lane iterating
		// a tensor-irrelevant spatial dimension (broadcast for inputs, a
		// spatial reduction tree for partial sums), so those lanes share one
		// buffer access.
		inner := keptLevels[len(keptLevels)-1]
		ops := e.macs / e.broadcastBelow(t, chains, inner)
		c.LevelReads[inner] += ops
		c.NoCEnergyPJ += ops * e.hopEnergy(inner, len(e.Arch.Levels))
		if t.Role == workload.Output {
			c.LevelWrites[inner] += ops
			c.NoCEnergyPJ += ops * e.hopEnergy(inner, len(e.Arch.Levels))
		}
	}

	// Latency: compute-bound cycles, stretched by any bandwidth-limited
	// level (aggregate traffic over aggregate per-level bandwidth).
	c.Cycles = 1
	for _, d := range e.dims {
		c.Cycles *= e.cyclesAlong(chains[d])
	}
	for li := range e.Arch.Levels {
		bw := e.Arch.Levels[li].BandwidthWords
		if bw <= 0 {
			continue
		}
		memCycles := (c.LevelReads[li] + c.LevelWrites[li]) / (bw * float64(e.Arch.Instances(li)))
		if memCycles > c.Cycles {
			c.Cycles = memCycles
			c.BandwidthBound = e.Arch.Levels[li].Name
		}
	}
	c.Utilization = e.macs / (c.Cycles * e.lanes)

	// Energy: dynamic accesses + MACs + optional NoC hops and leakage.
	c.MACEnergyPJ = e.macs * e.Arch.Energy.MAC()
	c.EnergyPJ = c.MACEnergyPJ + c.NoCEnergyPJ
	for li := range e.Arch.Levels {
		c.LevelEnergyPJ[li] = (c.LevelReads[li] + c.LevelWrites[li]) * e.Arch.AccessEnergyPJ(li)
		c.EnergyPJ += c.LevelEnergyPJ[li]
		if s := e.Arch.Levels[li].StaticPJPerCycle; s > 0 {
			c.StaticEnergyPJ += s * c.Cycles * float64(e.Arch.Instances(li))
		}
	}
	c.EnergyPJ += c.StaticEnergyPJ
	c.EDP = c.EnergyPJ * c.Cycles
	return c
}

// tileVolumes computes, per level and tensor, the tensor's tile footprint in
// words: the data covered by the level's own loops and everything inner.
func (e *Evaluator) tileVolumes(chains map[string]mapping.Chain) [][]int64 {
	vols := make([][]int64, len(e.Arch.Levels))
	ext := make(map[string]int, len(e.dims))
	for li := range e.Arch.Levels {
		si := e.firstSlot[li]
		for _, d := range e.dims {
			ext[d] = chains[d].Cum[si]
		}
		vols[li] = make([]int64, len(e.Work.Tensors))
		for ti := range e.Work.Tensors {
			vols[li][ti] = e.Work.Tensors[ti].TileVolume(ext)
		}
	}
	return vols
}

// keptLevels lists the levels storing tensors of the given role, outermost
// first. Level 0 (DRAM) is always included.
func (e *Evaluator) keptLevels(r workload.Role, kept []map[workload.Role]bool) []int {
	out := []int{0}
	for li := 1; li < len(e.Arch.Levels); li++ {
		if kept[li][r] {
			out = append(out, li)
		}
	}
	return out
}

// LinkStats describes the modeled transfer behavior of one tensor across
// one (parent, child) pair of consecutive kept levels.
type LinkStats struct {
	Tensor        string // the operand's name
	Parent, Child int    // level indexes of the link's endpoints
	// Fills is the temporal tile-change event count per child subtree.
	Fills float64
	// ReadsMult and DelivMult are the spatial multipliers on parent-side
	// reads and delivered copies.
	ReadsMult, DelivMult float64
	// Distinct is the number of distinct output tiles (outputs only).
	Distinct float64
	// Vol is the per-instance tile volume in words.
	Vol float64
}

// Links returns the per-tensor inter-level transfer statistics of a valid
// mapping (nil with an error message for invalid ones). Used by verbose
// reports and by the differential tests against the execution-driven
// simulator.
func (e *Evaluator) Links(m *mapping.Mapping) ([]LinkStats, error) {
	chains, err := m.Chains(e.Work, e.Slots)
	if err != nil {
		return nil, err
	}
	if err := m.ValidatePerms(e.Work, e.Arch); err != nil {
		return nil, err
	}
	kept := make([]map[workload.Role]bool, len(e.Arch.Levels))
	for li := range e.Arch.Levels {
		kept[li] = m.KeptRoles(e.Arch, li)
	}
	vols := e.tileVolumes(chains)
	var out []LinkStats
	for ti := range e.Work.Tensors {
		t := &e.Work.Tensors[ti]
		keptLevels := e.keptLevels(t.Role, kept)
		for i := 1; i < len(keptLevels); i++ {
			parent, child := keptLevels[i-1], keptLevels[i]
			ls := e.linkStats(m, chains, t, float64(vols[child][ti]), parent, child)
			out = append(out, ls)
		}
	}
	return out, nil
}

// addLinkTraffic accumulates the traffic between consecutive kept levels
// (parent, child) for tensor t whose per-child-instance tile volume is vol.
//
// The walk implements the stationarity model: starting from the child's tile
// boundary and moving outward, contiguous temporal loops irrelevant to the
// tensor reuse the resident tile (no refetch); the first relevant loop breaks
// the run, after which every outer temporal loop multiplies fills. Spatial
// slots never advance time: relevant ones partition data across instances
// (reads and deliveries multiply), irrelevant ones replicate it (deliveries
// multiply; parent reads multiply only when the connecting network cannot
// multicast). For outputs, index dimensions are the relevant set, so
// reduction loops inside the run accumulate in place, while fills beyond the
// number of distinct output tiles cost a partial-sum round trip.
func (e *Evaluator) addLinkTraffic(c *Cost, m *mapping.Mapping, chains map[string]mapping.Chain,
	t *workload.Tensor, vol float64, parent, child int) {

	ls := e.linkStats(m, chains, t, vol, parent, child)
	hop := e.hopEnergy(parent, child)
	if t.Role == workload.Output {
		transfers := ls.Fills * ls.DelivMult
		writesUp := transfers * vol // child -> parent partial/final tiles
		// Distinct output tiles at this boundary; transfers beyond that are
		// partial-sum round trips (parent read + child re-fill).
		rmw := transfers - ls.Distinct
		if rmw < 0 {
			rmw = 0
		}
		c.LevelWrites[parent] += writesUp
		c.LevelReads[parent] += rmw * vol
		c.LevelReads[child] += writesUp   // child drains its tile upward
		c.LevelWrites[child] += rmw * vol // and re-fills it on revisits
		c.NoCEnergyPJ += (writesUp + rmw*vol) * hop
		return
	}
	c.LevelReads[parent] += ls.Fills * ls.ReadsMult * vol
	c.LevelWrites[child] += ls.Fills * ls.DelivMult * vol
	c.NoCEnergyPJ += ls.Fills * ls.DelivMult * vol * hop
}

// linkStats runs the stationarity walk for one (tensor, parent, child) link.
func (e *Evaluator) linkStats(m *mapping.Mapping, chains map[string]mapping.Chain,
	t *workload.Tensor, vol float64, parent, child int) LinkStats {

	rel := e.relevant[t.Name]
	inRun := true
	fills := 1.0     // temporal tile-change events per child instance subtree
	readsMult := 1.0 // spatial multiplier on parent-side reads
	delivMult := 1.0 // spatial multiplier on delivered copies
	distinct := 1.0  // distinct tiles (outputs): relevant temporal x relevant spatial

	boundary := e.firstSlot[child]
	for si := boundary - 1; si >= 0; si-- {
		s := e.Slots[si]
		if s.Kind == mapping.Temporal {
			perm := m.Perms[s.Level]
			for pi := len(perm) - 1; pi >= 0; pi-- {
				d := perm[pi]
				tr := float64(chains[d].Trips(si))
				if tr == 1 {
					continue
				}
				r := rel[d]
				if r {
					distinct *= tr
				}
				if inRun && !r {
					continue
				}
				inRun = false
				fills *= tr
			}
			continue
		}
		for _, d := range e.dims {
			tr := float64(chains[d].Trips(si))
			if tr == 1 {
				continue
			}
			if rel[d] {
				readsMult *= tr
				delivMult *= tr
				distinct *= tr
				continue
			}
			delivMult *= tr
			if s.Level < parent || !s.Multicast {
				// Outside the parent's subtree (replicated parents), or a
				// network without multicast: every copy is a separate read.
				readsMult *= tr
			}
		}
	}
	return LinkStats{
		Tensor: t.Name, Parent: parent, Child: child,
		Fills: fills, ReadsMult: readsMult, DelivMult: delivMult,
		Distinct: distinct, Vol: vol,
	}
}

// hopEnergy sums the per-word wire energy of the networks a parent->child
// transfer crosses (the fanouts of every level from parent to just above
// child).
func (e *Evaluator) hopEnergy(parent, child int) float64 {
	var total float64
	for li := parent; li < child; li++ {
		n := e.Arch.Levels[li].Fanout
		if n.HopEnergyPJ > 0 {
			total += n.HopEnergyPJ * n.MeanHops()
		}
	}
	return total
}

// broadcastBelow returns the sharing factor for datapath-side accesses at
// level li: the product of trips of tensor-irrelevant spatial slots at or
// inside li whose network multicasts.
func (e *Evaluator) broadcastBelow(t *workload.Tensor, chains map[string]mapping.Chain, li int) float64 {
	rel := e.relevant[t.Name]
	share := 1.0
	for _, s := range e.Slots {
		if !s.Spatial() || s.Level < li || !s.Multicast {
			continue
		}
		for _, d := range e.dims {
			if rel[d] {
				continue
			}
			if tr := chains[d].Trips(s.Index); tr > 1 {
				share *= float64(tr)
			}
		}
	}
	return share
}

// cyclesAlong returns the exact number of sequential (temporal) steps the
// nest takes along one dimension, accounting for remainder tiles at every
// slot. Spatial slots collapse to the largest instance's share.
func (e *Evaluator) cyclesAlong(ch mapping.Chain) float64 {
	type key struct{ chunk, si int }
	memo := make(map[key]float64)
	var rec func(chunk, si int) float64
	rec = func(chunk, si int) float64 {
		if si == len(e.Slots) {
			return 1
		}
		sub := ch.Cum[si+1]
		if e.Slots[si].Spatial() {
			if chunk < sub {
				sub = chunk
			}
			return rec(sub, si+1)
		}
		if sub >= chunk {
			return rec(chunk, si+1)
		}
		k := key{chunk, si}
		if v, ok := memo[k]; ok {
			return v
		}
		n := (chunk + sub - 1) / sub
		rem := chunk - (n-1)*sub
		v := float64(n-1)*rec(sub, si+1) + rec(rem, si+1)
		memo[k] = v
		return v
	}
	return rec(ch.Bound, 0)
}
