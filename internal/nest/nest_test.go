package nest

import (
	"math"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/workload"
)

func toy() (*workload.Workload, *arch.Arch, *Evaluator) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	return w, a, MustEvaluator(w, a)
}

func toyMapping(w *workload.Workload, a *arch.Arch, factors []int) *mapping.Mapping {
	m := mapping.Uniform(w, a, 1)
	m.Factors["X"] = factors
	return m
}

// TestPaperToyCycles reproduces the Section III example: imperfect spatial
// factorization finishes 100 elements on 6 PEs in 17 cycles, versus 20 cycles
// for the best perfect factorization (5 PEs), saving 3 cycles.
func TestPaperToyCycles(t *testing.T) {
	w, a, e := toy()
	ruby := e.Evaluate(toyMapping(w, a, []int{1, 17, 6}))
	if !ruby.Valid {
		t.Fatalf("ruby mapping invalid: %s", ruby.Reason)
	}
	if ruby.Cycles != 17 {
		t.Errorf("ruby cycles = %f, want 17", ruby.Cycles)
	}
	pfm := e.Evaluate(toyMapping(w, a, []int{1, 20, 5}))
	if !pfm.Valid {
		t.Fatalf("pfm mapping invalid: %s", pfm.Reason)
	}
	if pfm.Cycles != 20 {
		t.Errorf("pfm cycles = %f, want 20", pfm.Cycles)
	}
	if !ruby.Better(&pfm) {
		t.Error("imperfect mapping should win on EDP")
	}
	// Utilization: 100/(17*6) vs 100/(20*6).
	if math.Abs(ruby.Utilization-100.0/(17*6)) > 1e-12 {
		t.Errorf("ruby utilization = %f", ruby.Utilization)
	}
	if math.Abs(pfm.Utilization-100.0/(20*6)) > 1e-12 {
		t.Errorf("pfm utilization = %f", pfm.Utilization)
	}
}

// TestPaperToyAccessCounts checks the hand-computed traffic for the Fig. 5
// mapping: the GLB holds all 100 elements (one DRAM fetch), the MACs read
// each input once and read+write each output once, and the output drains to
// DRAM exactly once.
func TestPaperToyAccessCounts(t *testing.T) {
	w, a, e := toy()
	c := e.Evaluate(toyMapping(w, a, []int{1, 17, 6}))
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	if c.LevelReads[0] != 100 {
		t.Errorf("DRAM reads = %f, want 100", c.LevelReads[0])
	}
	if c.LevelWrites[0] != 100 {
		t.Errorf("DRAM writes = %f, want 100 (output drain)", c.LevelWrites[0])
	}
	// GLB: 100 input fill writes + 100 output MAC writes; 100 input MAC
	// reads + 100 output accumulate reads + 100 output drain reads.
	if c.LevelWrites[1] != 200 {
		t.Errorf("GLB writes = %f, want 200", c.LevelWrites[1])
	}
	if c.LevelReads[1] != 300 {
		t.Errorf("GLB reads = %f, want 300", c.LevelReads[1])
	}
	if c.MACs != 100 {
		t.Errorf("MACs = %f", c.MACs)
	}
	if c.EnergyPJ <= 0 || c.EDP != c.EnergyPJ*c.Cycles {
		t.Error("energy/EDP inconsistent")
	}
}

// TestSerialDRAMMapping checks the (100·1·1) mapping from Fig. 4: all loops
// at DRAM, one element at a time — same DRAM words, 100 cycles.
func TestSerialDRAMMapping(t *testing.T) {
	w, a, e := toy()
	c := e.Evaluate(toyMapping(w, a, []int{100, 1, 1}))
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	if c.Cycles != 100 {
		t.Errorf("cycles = %f, want 100", c.Cycles)
	}
	if c.LevelReads[0] != 100 {
		t.Errorf("DRAM reads = %f, want 100", c.LevelReads[0])
	}
	best := e.Evaluate(toyMapping(w, a, []int{1, 17, 6}))
	if !best.Better(&c) {
		t.Error("parallel mapping should beat serial one")
	}
}

func TestFanoutViolation(t *testing.T) {
	w, a, e := toy()
	c := e.Evaluate(toyMapping(w, a, []int{1, 10, 10}))
	if c.Valid {
		t.Fatal("fanout 10 > 6 accepted")
	}
	if c.Reason == "" {
		t.Error("missing reason")
	}
}

func TestCapacityViolation(t *testing.T) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 50) // GLB too small for I+O tiles of 100 each
	e := MustEvaluator(w, a)
	c := e.Evaluate(toyMapping(w, a, []int{1, 17, 6}))
	if c.Valid {
		t.Fatal("capacity violation accepted")
	}
	// Streaming from DRAM one element per GLB tile still fits.
	c = e.Evaluate(toyMapping(w, a, []int{5, 4, 6}))
	if !c.Valid {
		t.Fatalf("small-tile mapping rejected: %s", c.Reason)
	}
}

func TestInvalidChainReported(t *testing.T) {
	w, a, e := toy()
	c := e.Evaluate(toyMapping(w, a, []int{1, 4, 6})) // covers only 24
	if c.Valid {
		t.Fatal("incomplete chain accepted")
	}
}

// TestExactRemainderCycles checks the memoized recursion on a doubly
// imperfect chain: D=10 with factors [2, 2, 3] gives DRAM tiles of 6 and 4,
// each processed in 2 GLB steps (3+3 and 3+1) — 4 cycles total.
func TestExactRemainderCycles(t *testing.T) {
	w := workload.MustVector1D("d10", 10)
	a := arch.ToyGLB(4, 512)
	e := MustEvaluator(w, a)
	c := e.Evaluate(toyMapping(w, a, []int{2, 2, 3}))
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	if c.Cycles != 4 {
		t.Errorf("cycles = %f, want 4", c.Cycles)
	}
}

// TestOutputStationaryReduction: with the reduction loop K outer at DRAM and
// the output tile resident in the GLB, partial sums accumulate in place — no
// psum round trips to DRAM.
func TestOutputStationaryReduction(t *testing.T) {
	w := workload.MustMatmul("mm", 4, 4, 4)
	a := arch.ToyGLB(4, 512)
	e := MustEvaluator(w, a)

	m := mapping.Uniform(w, a, 1)
	m.Factors["K"] = []int{4, 1, 1} // K at DRAM
	c := e.Evaluate(m)
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	// Z written to DRAM exactly once (16 words), never read back: DRAM
	// writes come only from the output drain.
	if c.LevelWrites[0] != 16 {
		t.Errorf("DRAM writes = %f, want 16", c.LevelWrites[0])
	}
}

// TestPsumRoundTrips: if the output tile at the GLB covers only part of M and
// an outer K loop at DRAM revisits it, partial sums must round-trip to DRAM.
func TestPsumRoundTrips(t *testing.T) {
	w := workload.MustMatmul("mm", 4, 4, 4)
	a := arch.ToyGLB(4, 512)
	e := MustEvaluator(w, a)

	m := mapping.Uniform(w, a, 1)
	m.Factors["M"] = []int{4, 1, 1}
	m.Factors["K"] = []int{4, 1, 1}
	// DRAM loop order: ... K outer, M inner.
	m.Perms[0] = []string{"K", "M", "N"}
	c := e.Evaluate(m)
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	// fills for Z above GLB: M (relevant, x4) then K (outer, x4) = 16
	// transfers of 4-word tiles; 4 distinct tiles -> 12 round trips.
	if got := c.LevelWrites[0]; got != 64 {
		t.Errorf("DRAM writes = %f, want 64", got)
	}
	if got := c.LevelReads[0]; got < 48 {
		t.Errorf("DRAM reads = %f, want >= 48 (psum readback)", got)
	}

	// Swapping the loop order (K inner, M outer) restores accumulation:
	// each M tile sees all K before eviction.
	m2 := m.Clone()
	m2.Perms[0] = []string{"M", "N", "K"}
	c2 := e.Evaluate(m2)
	if !c2.Valid {
		t.Fatal(c2.Reason)
	}
	if got := c2.LevelWrites[0]; got != 16 {
		t.Errorf("DRAM writes with K inner = %f, want 16", got)
	}
	if !(c2.EDP < c.EDP) {
		t.Error("K-inner ordering should strictly improve EDP")
	}
}

// TestTemporalReuseOfWeights: an irrelevant loop immediately above a buffer
// reuses the resident tile; moving a relevant loop outside it breaks reuse.
func TestTemporalReuseOfWeights(t *testing.T) {
	w := workload.MustMatmul("mm", 8, 8, 8)
	a := arch.ToyGLB(1, 4096)
	e := MustEvaluator(w, a)

	// All loops at GLB: every tensor fetched from DRAM exactly once.
	m := mapping.Uniform(w, a, 1)
	c := e.Evaluate(m)
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	if got := c.LevelReads[0]; got != 64+64 { // A and B once each
		t.Errorf("DRAM reads = %f, want 128", got)
	}

	// M at DRAM: B[k][n] is irrelevant to M -> still fetched once; A is
	// refetched per M tile but its tile is 1/M of the matrix, so A traffic
	// stays at 64 words; Z drains once.
	m2 := mapping.Uniform(w, a, 1)
	m2.Factors["M"] = []int{8, 1}
	c2 := e.Evaluate(m2)
	if got := c2.LevelReads[0]; got != 128 {
		t.Errorf("DRAM reads with M at DRAM = %f, want 128", got)
	}

	// N at DRAM with M also at DRAM and N inner: A (irrelevant to N) is
	// re-read once per N iteration because the relevant M loop is outside the
	// run... order DRAM perm [M, N]: walking outward from GLB: N first
	// (relevant to B and Z, irrelevant to A -> A reuse continues), then M
	// (relevant to A -> breaks). A fills = 8, tile 8 words -> 64. B: N
	// relevant (8 fills) then M irrelevant but run broken -> 64 fills of
	// tile 8 = 512 words.
	m3 := mapping.Uniform(w, a, 1)
	m3.Factors["M"] = []int{8, 1}
	m3.Factors["N"] = []int{8, 1}
	m3.Perms[0] = []string{"M", "N", "K"}
	c3 := e.Evaluate(m3)
	wantB := 512.0
	wantA := 64.0
	if got := c3.LevelReads[0]; got != wantA+wantB {
		t.Errorf("DRAM reads = %f, want %f", got, wantA+wantB)
	}
}

// TestEyerissWeightBypass: weights must flow DRAM -> PE directly, with GLB
// seeing no weight traffic.
func TestEyerissWeightBypass(t *testing.T) {
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 4, C: 4, P: 14, Q: 14, R: 3, S: 3})
	a := arch.EyerissLike(14, 12, 128)
	e := MustEvaluator(w, a)

	m := mapping.Uniform(w, a, 1) // everything temporal at GLB
	// Keep M, R, S at the PE level so per-PE tiles fit the spads: weights
	// 4*3*3=36 <= 224, inputs 3*3=9 <= 12, psums 4 <= 16.
	for _, d := range []string{"M", "R", "S"} {
		fs := m.Factors[d]
		fs[1], fs[4] = 1, w.Bound(d)
	}
	c := e.Evaluate(m)
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	// GLB traffic must not include the weight tensor: its words all flow
	// DRAM->PE. Weight words from DRAM = at least the filter size once.
	filter := float64(4 * 4 * 3 * 3)
	if c.LevelReads[0] < filter {
		t.Errorf("DRAM reads = %f, want >= %f", c.LevelReads[0], filter)
	}
}

// TestSpatialMulticastDiscount: an irrelevant spatial dimension delivers the
// same tile to all instances; with multicast the parent is read once.
func TestSpatialMulticastDiscount(t *testing.T) {
	w := workload.MustMatmul("mm", 6, 8, 8)
	mkArch := func(mcast bool) *arch.Arch {
		a := arch.ToyGLB(6, 4096)
		a.Levels[1].Fanout.Multicast = mcast
		a.Name = "toy"
		return a
	}
	run := func(mcast bool) Cost {
		a := mkArch(mcast)
		e := MustEvaluator(w, a)
		m := mapping.Uniform(w, a, 1)
		// M across the 6 PEs spatially: B[k][n] is irrelevant to M.
		m.Factors["M"] = []int{1, 1, 6}
		c := e.Evaluate(m)
		if !c.Valid {
			t.Fatal(c.Reason)
		}
		return c
	}
	with := run(true)
	without := run(false)
	if !(with.LevelReads[1] < without.LevelReads[1]) {
		t.Errorf("multicast should reduce GLB reads: %f vs %f",
			with.LevelReads[1], without.LevelReads[1])
	}
	if with.LevelWrites[1] != without.LevelWrites[1] {
		t.Error("multicast should not change delivered copies")
	}
}

func TestSimbaVectorLanes(t *testing.T) {
	a := arch.SimbaLike(15, 4, 4)
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 16, C: 16, P: 8, Q: 8, R: 1, S: 1})
	e := MustEvaluator(w, a)
	if e.lanes != 240 {
		t.Fatalf("lanes = %f", e.lanes)
	}
	m := mapping.Uniform(w, a, 1)
	// Slots: T(DRAM), T(GLB), SX(GLB,15), T(PEBuf), SY(PEBuf,4), SX(PEBuf,4).
	// C across the 16 vector lanes, M split 2 (GLB temporal) x 8 (PEs).
	m.Factors["C"] = []int{1, 1, 1, 1, 4, 4}
	m.Factors["M"] = []int{1, 2, 8, 1, 1, 1}
	c := e.Evaluate(m)
	if !c.Valid {
		t.Fatal(c.Reason)
	}
	// 16 channels across 16 lanes in 1 step; M: 8 PEs x 2 GLB steps.
	// Cycles along C = 1, along M = 2, P,Q = 64 at GLB... all at GLB level
	// temporal: total = 64*2.
	if c.Cycles != 128 {
		t.Errorf("cycles = %f, want 128", c.Cycles)
	}
}

func TestUtilizationBounds(t *testing.T) {
	w, a, e := toy()
	for _, fs := range [][]int{{1, 17, 6}, {1, 20, 5}, {100, 1, 1}, {2, 10, 5}, {4, 5, 5}} {
		c := e.Evaluate(toyMapping(w, a, fs))
		if !c.Valid {
			continue
		}
		if c.Utilization <= 0 || c.Utilization > 1+1e-9 {
			t.Errorf("factors %v: utilization %f out of (0,1]", fs, c.Utilization)
		}
	}
}

func TestBetterSemantics(t *testing.T) {
	valid := Cost{Valid: true, EDP: 10}
	worse := Cost{Valid: true, EDP: 20}
	bad := Cost{Valid: false}
	if !valid.Better(&worse) || worse.Better(&valid) {
		t.Error("EDP ordering wrong")
	}
	if !valid.Better(&bad) || bad.Better(&valid) || bad.Better(&bad) {
		t.Error("invalid handling wrong")
	}
	tie := Cost{Valid: true, EDP: 10}
	if valid.Better(&tie) {
		t.Error("ties must not be strictly better")
	}
}

func TestNewEvaluatorRejectsBadArch(t *testing.T) {
	w := workload.MustVector1D("toy", 4)
	bad := &arch.Arch{Name: "x", Levels: []arch.Level{{Name: "DRAM"}}}
	if _, err := NewEvaluator(w, bad); err == nil {
		t.Error("bad arch accepted")
	}
}

// TestEnergyDecomposition: level energies plus MAC energy must sum to total.
func TestEnergyDecomposition(t *testing.T) {
	w, a, e := toy()
	c := e.Evaluate(toyMapping(w, a, []int{1, 17, 6}))
	sum := c.MACEnergyPJ
	for _, le := range c.LevelEnergyPJ {
		sum += le
	}
	if math.Abs(sum-c.EnergyPJ) > 1e-6 {
		t.Errorf("energy decomposition: sum %f != total %f", sum, c.EnergyPJ)
	}
	// DRAM must dominate at 200x MAC with only 200 DRAM accesses vs 100 MACs.
	if c.LevelEnergyPJ[0] < c.MACEnergyPJ {
		t.Error("DRAM energy should dominate MAC energy here")
	}
}
