package nest_test

import (
	"math"
	"math/rand"
	"testing"

	"ruby/internal/mapspace"
	"ruby/internal/nest"
)

// approxEqual tolerates floating-point regrouping: Attribute sums
// contributions per tensor first, the kernel accumulates them in tensor
// order, so the totals may differ in the last bits.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestAttributeMatchesCost pins the attribution view to the evaluated cost:
// on every bundled architecture family, after the seed and again after a
// sequence of committed moves, the per-level totals and NoC energy of
// Plan.Attribute must reproduce the full evaluation's (up to regrouping),
// the per-tensor matrices must sum to the level totals, and the latency
// factors must multiply to a value no larger than the reported cycles
// (bandwidth stretch only ever raises them).
func TestAttributeMatchesCost(t *testing.T) {
	for _, tc := range deltaCases() {
		t.Run(tc.name, func(t *testing.T) {
			ev := nest.MustEvaluator(tc.w, tc.a)
			plan := ev.Plan()
			cons := tc.cons(tc.w)
			cons.ExploreBypass = true
			sp := mapspace.New(tc.w, tc.a, mapspace.RubyS, cons)
			rng := rand.New(rand.NewSource(41))

			m := seedValid(t, sp, ev, rng)
			dm, err := m.Dense(sp.Work, sp.Arch, sp.Slots())
			if err != nil {
				t.Fatalf("lowering seed: %v", err)
			}
			de := plan.NewDeltaEval()
			b := plan.NewBreakdown()
			cost := de.Seed(dm).Clone()
			checkBreakdown(t, de, b, cost)

			// March the session through committed moves and re-check the
			// attribution against a fresh full evaluation each time.
			mut := sp.NewMutator()
			scratch := plan.NewScratch()
			committed := 0
			for i := 0; i < 300 && committed < 40; i++ {
				mv := mut.Propose(rng)
				mv.Apply(m)
				c := plan.EvaluateDelta(de, mv.Delta())
				if c.Valid && rng.Intn(2) == 0 {
					de.Commit()
					committed++
					full := plan.EvaluateInto(dm, scratch).Clone()
					checkBreakdown(t, de, b, full)
				} else {
					de.Reject()
					mv.Undo(m)
				}
			}
			if committed == 0 {
				t.Fatalf("no moves committed; breakdown only checked at the seed")
			}
		})
	}
}

func checkBreakdown(t *testing.T, de *nest.DeltaEval, b *nest.Breakdown, cost nest.Cost) {
	t.Helper()
	de.Attribute(b)
	for li := 0; li < b.NLevels; li++ {
		if !approxEqual(b.LevelReads[li], cost.LevelReads[li]) ||
			!approxEqual(b.LevelWrites[li], cost.LevelWrites[li]) ||
			!approxEqual(b.LevelEnergyPJ[li], cost.LevelEnergyPJ[li]) {
			t.Fatalf("level %d totals diverge: breakdown r=%v w=%v e=%v, cost r=%v w=%v e=%v",
				li, b.LevelReads[li], b.LevelWrites[li], b.LevelEnergyPJ[li],
				cost.LevelReads[li], cost.LevelWrites[li], cost.LevelEnergyPJ[li])
		}
		var r, w float64
		for ti := 0; ti < b.NTensors; ti++ {
			r += b.TensorReads[li*b.NTensors+ti]
			w += b.TensorWrites[li*b.NTensors+ti]
		}
		if r != b.LevelReads[li] || w != b.LevelWrites[li] {
			t.Fatalf("level %d tensor split does not sum to the level total", li)
		}
	}
	if !approxEqual(b.NoCEnergyPJ, cost.NoCEnergyPJ) {
		t.Fatalf("NoC energy diverges: breakdown %v, cost %v", b.NoCEnergyPJ, cost.NoCEnergyPJ)
	}
	if b.MACEnergyPJ != cost.MACEnergyPJ {
		t.Fatalf("MAC energy diverges: breakdown %v, cost %v", b.MACEnergyPJ, cost.MACEnergyPJ)
	}
	var access, tensorTotal float64
	for ti := 0; ti < b.NTensors; ti++ {
		if b.TensorEnergyPJ[ti] != b.TensorAccessPJ[ti]+b.TensorNoCPJ[ti] {
			t.Fatalf("tensor %d energy is not access+NoC", ti)
		}
		access += b.TensorAccessPJ[ti]
		tensorTotal += b.TensorEnergyPJ[ti]
	}
	var levelSum float64
	for li := 0; li < b.NLevels; li++ {
		levelSum += b.LevelEnergyPJ[li]
	}
	if !approxEqual(access, levelSum) {
		t.Fatalf("per-tensor access energy %v does not sum to level energy %v", access, levelSum)
	}
	compute := 1.0
	for d := 0; d < b.NDims; d++ {
		if b.DimCycles[d] < 1 || math.IsInf(b.DimCycles[d], 0) || math.IsNaN(b.DimCycles[d]) {
			t.Fatalf("dim %d latency factor %v out of range", d, b.DimCycles[d])
		}
		if b.DimEnergyPJ[d] < 0 || b.DimEnergyPJ[d] > tensorTotal*(1+1e-12) {
			t.Fatalf("dim %d energy ranking %v outside [0, %v]", d, b.DimEnergyPJ[d], tensorTotal)
		}
		compute *= b.DimCycles[d]
	}
	if compute > cost.Cycles*(1+1e-9) {
		t.Fatalf("compute-bound cycles %v exceed reported cycles %v", compute, cost.Cycles)
	}
}

// TestAttributeAllocationFree pins the hot-path contract: refilling a
// preallocated Breakdown from a seeded session never allocates.
func TestAttributeAllocationFree(t *testing.T) {
	tc := deltaCases()[2]
	ev := nest.MustEvaluator(tc.w, tc.a)
	plan := ev.Plan()
	sp := mapspace.New(tc.w, tc.a, mapspace.RubyS, tc.cons(tc.w))
	rng := rand.New(rand.NewSource(7))
	m := seedValid(t, sp, ev, rng)
	dm, err := m.Dense(sp.Work, sp.Arch, sp.Slots())
	if err != nil {
		t.Fatalf("lowering seed: %v", err)
	}
	de := plan.NewDeltaEval()
	if c := de.Seed(dm); !c.Valid {
		t.Fatalf("seed invalid: %s", c.Reason)
	}
	b := plan.NewBreakdown()
	if allocs := testing.AllocsPerRun(200, func() { de.Attribute(b) }); allocs != 0 {
		t.Fatalf("Attribute allocates %v times per run; want 0", allocs)
	}
}
