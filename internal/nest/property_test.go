package nest

import (
	"math/rand"
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapping"
	"ruby/internal/mapspace"
	"ruby/internal/workload"
)

// simulateCycles is a brute-force reference for the memoized cycle
// recursion: it literally walks the tiling of one dimension, splitting
// chunks at temporal slots (summing) and spatial slots (taking the largest
// parallel share), one element per innermost step.
func simulateCycles(slots []mapping.Slot, ch mapping.Chain) float64 {
	var walk func(chunk, si int) float64
	walk = func(chunk, si int) float64 {
		if si == len(slots) {
			return 1
		}
		sub := ch.Cum[si+1]
		if slots[si].Spatial() {
			if chunk < sub {
				sub = chunk
			}
			return walk(sub, si+1)
		}
		total := 0.0
		for rem := chunk; rem > 0; rem -= sub {
			c := sub
			if rem < sub {
				c = rem
			}
			total += walk(c, si+1)
		}
		return total
	}
	return walk(ch.Bound, 0)
}

// TestCyclesMatchBruteForce cross-checks the memoized recursion against the
// literal walk over random imperfect chains.
func TestCyclesMatchBruteForce(t *testing.T) {
	a := arch.EyerissLike(14, 12, 64)
	rng := rand.New(rand.NewSource(42))
	w := workload.MustVector1D("d", 2) // placeholder; rebuilt per trial
	e := MustEvaluator(w, a)
	slots := e.Slots

	for trial := 0; trial < 300; trial++ {
		d := rng.Intn(500) + 1
		// Random canonical chain: residual recursion innermost-first.
		factors := make([]int, len(slots))
		r := d
		for i := len(slots) - 1; i >= 0; i-- {
			if i == 0 {
				factors[i] = r
				break
			}
			f := 1 + rng.Intn(r)
			factors[i] = f
			r = (r + f - 1) / f
		}
		ch := mapping.NewChain(d, factors)
		got := e.cyclesAlong(ch)
		want := simulateCycles(slots, ch)
		if got != want {
			t.Fatalf("d=%d factors=%v: cyclesAlong=%g, brute force=%g", d, factors, got, want)
		}
	}
}

// TestCostInvariants samples valid mappings from every mapspace kind and
// asserts fundamental conservation laws of the model.
func TestCostInvariants(t *testing.T) {
	w := workload.MustConv2D(workload.Conv2DParams{N: 1, M: 12, C: 10, P: 14, Q: 13, R: 3, S: 3})
	a := arch.EyerissLike(14, 12, 128)
	e := MustEvaluator(w, a)
	inputSize := float64(w.Size(w.Tensor("I")))
	weightSize := float64(w.Size(w.Tensor("W")))
	outputSize := float64(w.Size(w.Tensor("O")))
	macs := float64(w.MACs())
	lanes := float64(a.TotalLanes())

	rng := rand.New(rand.NewSource(7))
	checked := 0
	for _, kind := range mapspace.Kinds {
		sp := mapspace.New(w, a, kind, mapspace.EyerissRowStationary(w))
		for i := 0; i < 2000 && checked < 400; i++ {
			m := sp.Sample(rng)
			c := e.Evaluate(m)
			if !c.Valid {
				continue
			}
			checked++
			if c.Cycles < macs/lanes-1e-6 {
				t.Fatalf("%v: cycles %g beat the parallelism bound %g", kind, c.Cycles, macs/lanes)
			}
			if c.Utilization <= 0 || c.Utilization > 1+1e-9 {
				t.Fatalf("%v: utilization %g out of range", kind, c.Utilization)
			}
			// Every input and weight word must leave DRAM at least once;
			// every output word must arrive.
			if c.LevelReads[0] < inputSize+weightSize-1e-6 {
				t.Fatalf("%v: DRAM reads %g below tensor sizes %g", kind, c.LevelReads[0], inputSize+weightSize)
			}
			if c.LevelWrites[0] < outputSize-1e-6 {
				t.Fatalf("%v: DRAM writes %g below output size %g", kind, c.LevelWrites[0], outputSize)
			}
			// The datapath reads each operand per MAC somewhere on-chip.
			if c.EnergyPJ < macs*a.Energy.MAC() {
				t.Fatalf("%v: energy below MAC floor", kind)
			}
			if c.EDP != c.EnergyPJ*c.Cycles {
				t.Fatalf("%v: EDP inconsistent", kind)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d valid samples checked", checked)
	}
}

// TestPerfectMappingsNominalTrips: for perfect mappings the exact recursion
// must agree with the plain product of loop trip counts.
func TestPerfectMappingsNominalTrips(t *testing.T) {
	w := workload.MustMatmul("mm", 24, 36, 48)
	a := arch.EyerissLike(12, 12, 128)
	e := MustEvaluator(w, a)
	sp := mapspace.New(w, a, mapspace.PFM, mapspace.Constraints{})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		m := sp.Sample(rng)
		chains, err := m.Chains(w, e.Slots)
		if err != nil {
			t.Fatal(err)
		}
		nominal := 1.0
		for _, d := range w.DimNames() {
			for si, s := range e.Slots {
				if s.Kind == mapping.Temporal {
					nominal *= float64(chains[d].Trips(si))
				}
			}
		}
		exact := 1.0
		for _, d := range w.DimNames() {
			exact *= e.cyclesAlong(chains[d])
		}
		if nominal != exact {
			t.Fatalf("perfect mapping: nominal %g != exact %g (factors %v)", nominal, exact, m.Factors)
		}
	}
}

// TestRubySupersetQuality: the best Ruby-S mapping over an exhaustive toy
// space is never worse than the best PFM mapping (superset guarantee), for
// many random dimension sizes and fanouts.
func TestRubySupersetQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		d := rng.Intn(200) + 2
		pes := rng.Intn(14) + 2
		w := workload.MustVector1D("d", d)
		a := arch.ToyGLB(pes, 4096)
		e := MustEvaluator(w, a)
		best := func(kind mapspace.Kind) float64 {
			sp := mapspace.New(w, a, kind, mapspace.Constraints{FixedPerms: true})
			bestEDP := -1.0
			sp.Enumerate(func(m *mapping.Mapping) bool {
				if c := e.Evaluate(m); c.Valid && (bestEDP < 0 || c.EDP < bestEDP) {
					bestEDP = c.EDP
				}
				return true
			})
			return bestEDP
		}
		pfm, rs := best(mapspace.PFM), best(mapspace.RubyS)
		if pfm < 0 || rs < 0 {
			t.Fatalf("d=%d pes=%d: no valid mapping", d, pes)
		}
		if rs > pfm+1e-9 {
			t.Errorf("d=%d pes=%d: Ruby-S optimum %g worse than PFM %g", d, pes, rs, pfm)
		}
	}
}
