package analysis

import (
	"testing"

	"ruby/internal/arch"
	"ruby/internal/mapspace"
	"ruby/internal/nest"
	"ruby/internal/workload"
)

func toySpace(kind mapspace.Kind) (*mapspace.Space, *nest.Evaluator) {
	w := workload.MustVector1D("toy", 100)
	a := arch.ToyGLB(6, 512)
	return mapspace.New(w, a, kind, mapspace.Constraints{FixedPerms: true}),
		nest.MustEvaluator(w, a)
}

func TestMeasureDensity(t *testing.T) {
	sp, ev := toySpace(mapspace.RubyS)
	d := MeasureDensity(sp, ev, 400, 1)
	if d.Samples != 400 || d.Valid == 0 {
		t.Fatalf("density = %+v", d)
	}
	if !(d.Best <= d.P10 && d.P10 <= d.P50 && d.P50 <= d.P90) {
		t.Errorf("quantiles out of order: %+v", d)
	}
	if d.ValidFraction() <= 0 || d.ValidFraction() > 1 {
		t.Errorf("valid fraction = %f", d.ValidFraction())
	}
	// The toy problem is fully valid-mappable; most samples should pass.
	if d.ValidFraction() < 0.5 {
		t.Errorf("valid fraction = %f, want >= 0.5 on the toy", d.ValidFraction())
	}
}

func TestMeasureDensityExpansionStory(t *testing.T) {
	// The Section III-A trade-off: the unconstrained Ruby mapspace's valid
	// fraction collapses relative to Ruby-S on a realistic fanout.
	w := workload.MustMatmul("mm", 100, 100, 100)
	a := arch.ToyLinear(16, 512)
	ev := nest.MustEvaluator(w, a)
	rs := MeasureDensity(mapspace.New(w, a, mapspace.RubyS, mapspace.Constraints{}), ev, 1500, 2)
	ruby := MeasureDensity(mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{}), ev, 1500, 2)
	if ruby.ValidFraction() >= rs.ValidFraction() {
		t.Errorf("Ruby valid fraction %f should trail Ruby-S %f",
			ruby.ValidFraction(), rs.ValidFraction())
	}
}

func TestMeasureDensityNoValid(t *testing.T) {
	// A 1-word GLB cannot hold input and output tiles, so no sample is
	// valid and the quantiles stay zero.
	w := workload.MustVector1D("d", 7)
	a := arch.ToyGLB(7, 1)
	sp := mapspace.New(w, a, mapspace.Ruby, mapspace.Constraints{FixedPerms: true})
	ev := nest.MustEvaluator(w, a)
	d := MeasureDensity(sp, ev, 50, 1)
	if d.Valid != 0 || d.Best != 0 || d.P50 != 0 {
		t.Errorf("density without valid samples = %+v", d)
	}
	if d.ValidFraction() != 0 {
		t.Errorf("valid fraction = %f", d.ValidFraction())
	}
	if MeasureDensity(sp, ev, 0, 1).ValidFraction() != 0 {
		t.Error("zero-sample fraction should be 0")
	}
}
