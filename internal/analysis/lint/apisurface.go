package lint

import (
	"path/filepath"
)

// APISurface pins the exported API of the canonical packages to the
// checked-in docs/api_surface.txt golden. A symbol added, removed or
// re-typed without regenerating the golden (rubylint -fix-surface) is a
// finding — so breaking the v1 surface is always a deliberate, reviewed
// diff, never a side effect.
var APISurface = &Analyzer{
	Name: "apisurface",
	Doc: "the exported API of ruby and internal/{search,sweep,engine,nest," +
		"mapspace,dist} matches the docs/api_surface.txt golden; regenerate " +
		"deliberately with rubylint -fix-surface",
	Run: runAPISurface,
}

func runAPISurface(p *Pass) {
	pkg := p.Pkg
	goldenPath := filepath.Join(pkg.Root, filepath.FromSlash(surfaceGoldenRel))
	golden, err := readSurface(goldenPath)
	if err != nil {
		p.Reportf(pkg.Files[0].Package, "cannot read %s: %v", surfaceGoldenRel, err)
		return
	}
	key := surfaceSectionKey(pkg, golden)
	if key == "" {
		return
	}
	section := golden[key]
	if section == nil {
		p.Reportf(pkg.Files[0].Package,
			"package %s has no section in %s (run: go run ./tools/rubylint -fix-surface ./...)",
			key, surfaceGoldenRel)
		return
	}
	entries := packageSurface(pkg)
	have := map[string]bool{}
	for _, e := range entries {
		have[e.line] = true
		if !section[e.line] {
			pos := e.pos
			if !pos.IsValid() {
				pos = pkg.Files[0].Package
			}
			p.Reportf(pos,
				"exported API changed: %q is not in %s (deliberate? regenerate with rubylint -fix-surface)",
				e.line, surfaceGoldenRel)
		}
	}
	for line := range section {
		if !have[line] {
			p.Reportf(pkg.Files[0].Package,
				"exported API changed: %s still lists %q, which no longer exists "+
					"(deliberate? regenerate with rubylint -fix-surface)",
				surfaceGoldenRel, line)
		}
	}
}
