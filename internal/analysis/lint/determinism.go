package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the reproducibility contract behind seeded search and
// bit-identical kill-and-resume (PR 3):
//
//   - no global math/rand draws outside tests — every random draw must come
//     from an explicitly seeded source (checkpoint.RNG for resumable paths);
//   - no wall-clock seeding of random sources, anywhere;
//   - no wall-clock reads (time.Now/Since/Until) inside the checkpoint
//     package, nor inside resumable Step/Snapshot/Restore paths of search
//     packages (anything those methods reach intra-package);
//   - no map-iteration order leaking into serialized output: a function
//     that both ranges over a map collecting into a slice and serializes
//     (encoding/json, checkpoint.Save) must sort.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid global rand, wall-clock reads on resume paths, and map-order-dependent serialization",
	Run:  runDeterminism,
}

// globalRandDraws are the math/rand package-level functions backed by the
// process-global, unseedable-for-reproducibility source.
var globalRandDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runDeterminism(p *Pass) {
	reachable := stepReachable(p)

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, name, ok := pkgCallName(p.Pkg.Info, call); ok {
				if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
					if globalRandDraws[name] {
						p.Reportf(call.Pos(),
							"global %s.%s draws from the process-wide source; use a seeded *rand.Rand (checkpoint.RNG on resumable paths)",
							pkgPath, name)
					}
					if name == "New" || name == "NewSource" {
						reportWallClockSeed(p, call)
					}
				}
				if name == "NewRNG" && p.Pkg.Name != "checkpoint" {
					reportWallClockSeed(p, call)
				}
			}
			return true
		})
	}

	// Wall-clock reads in forbidden scopes.
	for _, decl := range p.dirs.funcDecls {
		if decl.Body == nil {
			continue
		}
		scope := ""
		switch {
		case p.Pkg.Name == "checkpoint":
			scope = "checkpoint package"
		case reachable[decl]:
			scope = "resumable Step/Snapshot/Restore path"
		}
		if scope == "" {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range []string{"Now", "Since", "Until"} {
				if isPkgCall(p.Pkg.Info, call, "time", fn) {
					p.Reportf(call.Pos(),
						"time.%s in %s (%s): wall-clock state breaks bit-identical resume",
						fn, funcName(decl), scope)
				}
			}
			return true
		})
	}

	runMapRange(p)
}

// reportWallClockSeed flags random sources seeded from the wall clock.
func reportWallClockSeed(p *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(p.Pkg.Info, inner, "time", "Now") {
				p.Reportf(inner.Pos(), "random source seeded from time.Now; seeds must be explicit and reproducible")
			}
			return true
		})
	}
}

// stepReachable computes, for search-like packages, the set of functions
// reachable intra-package from any Step/Snapshot/Restore method — the paths
// whose state must replay identically across kill-and-resume.
func stepReachable(p *Pass) map[*ast.FuncDecl]bool {
	if p.Pkg.Name != "search" {
		return nil
	}
	calls := map[*ast.FuncDecl][]*ast.FuncDecl{}
	for _, decl := range p.dirs.funcDecls {
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(p.Pkg.Info, call); fn != nil {
				if callee, ok := p.dirs.funcByObj[fn]; ok {
					calls[decl] = append(calls[decl], callee)
				}
			}
			return true
		})
	}
	reachable := map[*ast.FuncDecl]bool{}
	var visit func(d *ast.FuncDecl)
	visit = func(d *ast.FuncDecl) {
		if reachable[d] {
			return
		}
		reachable[d] = true
		for _, callee := range calls[d] {
			visit(callee)
		}
	}
	for _, decl := range p.dirs.funcDecls {
		if decl.Recv == nil {
			continue
		}
		switch decl.Name.Name {
		case "Step", "Snapshot", "Restore":
			visit(decl)
		}
	}
	return reachable
}

// runMapRange flags map iterations that collect into slices inside
// serializing functions without a sort — the iteration order would leak
// into checkpoint or API output and differ run to run.
func runMapRange(p *Pass) {
	for _, decl := range p.dirs.funcDecls {
		if decl.Body == nil {
			continue
		}
		serializes, sorts := false, false
		var mapRanges []*ast.RangeStmt
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isSerializerCall(p.Pkg.Info, n) {
					serializes = true
				}
				if pkgPath, _, ok := pkgCallName(p.Pkg.Info, n); ok && (pkgPath == "sort" || pkgPath == "slices") {
					sorts = true
				}
				if fn := calleeFunc(p.Pkg.Info, n); fn != nil {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						if named, ok := derefNamed(sig.Recv().Type()); ok &&
							named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sort" {
							sorts = true
						}
					}
				}
			case *ast.RangeStmt:
				if tv, ok := p.Pkg.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						mapRanges = append(mapRanges, n)
					}
				}
			}
			return true
		})
		if !serializes || sorts || len(mapRanges) == 0 {
			continue
		}
		for _, rs := range mapRanges {
			appends := false
			ast.Inspect(rs.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isBuiltin(p.Pkg.Info, call, "append") {
					appends = true
				}
				return true
			})
			if appends {
				p.ReportFix(rs.Pos(), mapRangeFix(p, rs),
					"map iteration collects into a slice in serializing function %s without sorting; iteration order would leak into output",
					funcName(decl))
			}
		}
	}
}

func isSerializerCall(info *types.Info, call *ast.CallExpr) bool {
	if pkgPath, name, ok := pkgCallName(info, call); ok {
		if pkgPath == "encoding/json" && (name == "Marshal" || name == "MarshalIndent") {
			return true
		}
		if name == "Save" && pkgPathBase(pkgPath) == "checkpoint" {
			return true
		}
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Encode" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named, ok := derefNamed(sig.Recv().Type()); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "encoding/json" {
				return true
			}
		}
	}
	return false
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

func pkgPathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
