package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutines enforces goroutine lifecycle discipline in the orchestration
// packages: every `go` statement must be cancellable — its closure observes
// a context or a channel receive/select — or carry an explicit
// //ruby:detached waiver. This is what keeps fleet/worker goroutines from
// leaking past a shutdown.
var Goroutines = &Analyzer{
	Name: "goroutines",
	Doc: "every go statement in the orchestration packages (engine, search, " +
		"sweep, server, dist) observes a ctx/done channel or is waived " +
		"//ruby:detached <reason>",
	Run: runGoroutines,
}

// goroutinePackages are the package names the analyzer applies to (names,
// not import paths, so testdata fixture packages opt in by name).
var goroutinePackages = map[string]bool{
	"engine": true, "search": true, "sweep": true, "server": true, "dist": true,
}

func runGoroutines(p *Pass) {
	if !goroutinePackages[p.Pkg.Name] {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goCancellable(p, g) || p.Detached(g.Pos()) {
				return true
			}
			p.ReportFix(g.Pos(), detachedFix(p, g.Pos()),
				"go statement is not cancellable: it observes no context or done channel "+
					"(thread ctx through, or waive with //ruby:detached <reason>)")
			return true
		})
	}
}

// goCancellable reports whether the spawned work can observe shutdown: a
// function literal that references a context.Context value or performs a
// channel receive/select, or a call that receives a context argument or
// whose callee declares a context parameter.
func goCancellable(p *Pass, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if observesShutdown(p, lit.Body) {
			return true
		}
	}
	return callHasCtx(p, g.Call)
}

// callHasCtx reports whether the call passes a context.Context argument or
// its resolved callee takes one.
func callHasCtx(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := p.Pkg.Info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	if fn := calleeFunc(p.Pkg.Info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && hasContextParam(sig) {
			return true
		}
	}
	return false
}

// observesShutdown reports whether body references a context.Context value
// or contains a channel receive, channel range or select statement.
func observesShutdown(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Pkg.Info.Types[n.X]; ok && isChanType(tv.Type) {
				found = true
			}
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isChanType reports whether t is (or names) a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
