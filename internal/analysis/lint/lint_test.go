package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// want is one expectation parsed from a fixture's `// want `...“ comment:
// the diagnostic must land on the comment's line (shifted by an optional
// `// want+N` / `// want-N` offset, for findings that land on lines that
// cannot carry a second comment, like //ruby: directives) and match the
// regexp.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantPatternRE = regexp.MustCompile("`([^`]+)`")

var wantOffsetRE = regexp.MustCompile(`^// want([+-]\d+)? `)

// parseWants extracts every `// want` expectation from the fixture package.
func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var ws []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantOffsetRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				rest := c.Text[len(m[0]):]
				pos := pkg.Fset.Position(c.Pos())
				pos.Line += offset
				ms := wantPatternRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without a backquoted pattern", pos)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return ws
}

// runFixture loads one testdata package, runs the full suite (with unused
// waivers reported, so stale fixture waivers fail the test too) and checks
// the diagnostics against the `// want` comments exactly: every diagnostic
// must be expected, every expectation must fire.
func runFixture(t *testing.T, dir string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags := Run([]*Package{pkg}, All(), Config{ReportUnusedWaivers: true})
	wants := parseWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T)          { runFixture(t, "determ") }
func TestDeterminismResumableFixture(t *testing.T) { runFixture(t, "resumable") }
func TestHotpathFixture(t *testing.T)              { runFixture(t, "hot") }
func TestCtxflowFixture(t *testing.T)              { runFixture(t, "ctxen") }
func TestAtomicsFixture(t *testing.T)              { runFixture(t, "atom") }
func TestLockflowFixture(t *testing.T)             { runFixture(t, "lockflow") }
func TestGoroutinesFixture(t *testing.T)           { runFixture(t, "goro") }
func TestSerialstableFixture(t *testing.T)         { runFixture(t, "serial") }
func TestAPISurfaceFixture(t *testing.T)           { runFixture(t, "apisurf") }

// TestBrokenFixtureFails pins two properties on the deliberately-broken
// fixture: rubylint does not pass it (nonzero findings), and directive
// validation reports each malformed //ruby: form under the "lint"
// pseudo-analyzer.
func TestBrokenFixtureFails(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "baddir"))
	if err != nil {
		t.Fatalf("LoadDir(baddir): %v", err)
	}
	diags := Run([]*Package{pkg}, All(), Config{ReportUnusedWaivers: true})
	if len(diags) == 0 {
		t.Fatal("deliberately-broken fixture produced no findings")
	}
	var all strings.Builder
	for _, d := range diags {
		all.WriteString(d.String())
		all.WriteString("\n")
	}
	for _, sub := range []string{
		"unknown directive //ruby:fastpath", // unrecognized annotation
		"names unknown analyzer",            // //ruby:allow speed
		"needs a justification",             // //ruby:allow without -- reason
		"global math/rand.Intn",             // the violation a bad waiver fails to cover
		"unused //ruby:allow hotpath",       // waiver with nothing to suppress
	} {
		if !strings.Contains(all.String(), sub) {
			t.Errorf("no finding containing %q; got:\n%s", sub, all.String())
		}
	}
}

// TestRepoIsClean pins the acceptance criterion for the real tree: under
// the full eight-analyzer suite (including the dataflow-based lockflow and
// goroutines checks and the apisurface golden) every live finding is fixed
// or carries a justified //ruby:allow waiver, and no waiver is stale.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module via go list")
	}
	pkgs, err := LoadRepo(filepath.Join("..", "..", ".."), "./...")
	if err != nil {
		t.Fatalf("LoadRepo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadRepo returned no packages")
	}
	for _, d := range Run(pkgs, All(), Config{ReportUnusedWaivers: true}) {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("hotpath, determinism")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "hotpath" || as[1].Name != "determinism" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	if all, _ := ByName(""); len(all) != len(All()) {
		t.Fatal("ByName(\"\") should return the full suite")
	}
}
