package lint

import (
	"strings"
	"testing"
)

// FuzzAllowDirective fuzzes the //ruby: directive parser. Invariants:
// parsing never panics; a comment without the //ruby: prefix is never a
// directive; a well-formed result (ok && err == nil) always satisfies the
// shape contract its Name promises — allow carries a single-token analyzer
// and a nonempty reason, detached a nonempty reason, list directives at
// least one identifier argument, markers nothing at all.
func FuzzAllowDirective(f *testing.F) {
	for _, seed := range []string{
		"//ruby:allow determinism -- replay buffers are sorted downstream",
		"//ruby:allow determinism--no space around separator",
		"//ruby:allow determinism",
		"//ruby:allow  -- reason with empty analyzer",
		"//ruby:allow two words -- reason",
		"//ruby:detached metrics flush, bounded by process exit",
		"//ruby:detached",
		"//ruby:guards a,b,c",
		"//ruby:guards ,",
		"//ruby:guards 0bad",
		"//ruby:locked mu",
		"//ruby:serialstable",
		"//ruby:hotpath trailing junk",
		"//ruby:",
		"//ruby:fastpath",
		"// plain comment",
		"//ruby:allow lint -- \x00\xff binary reason",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, comment string) {
		d, ok, err := ParseDirective(comment)
		if !strings.HasPrefix(comment, "//ruby:") {
			if ok || err != nil {
				t.Fatalf("non-directive %q parsed as directive (ok=%v err=%v)", comment, ok, err)
			}
			return
		}
		if !ok {
			t.Fatalf("//ruby: comment %q returned ok=false", comment)
		}
		if err != nil {
			return // malformed is fine; reaching here without panicking is the point
		}
		switch {
		case d.Name == "allow":
			if d.Analyzer == "" || strings.ContainsAny(d.Analyzer, " \t") || d.Reason == "" {
				t.Fatalf("well-formed allow %q has analyzer=%q reason=%q", comment, d.Analyzer, d.Reason)
			}
		case d.Name == "detached":
			if d.Reason == "" {
				t.Fatalf("well-formed detached %q has empty reason", comment)
			}
		case listDirectives[d.Name]:
			if len(d.Args) == 0 {
				t.Fatalf("well-formed //ruby:%s %q has no args", d.Name, comment)
			}
			for _, a := range d.Args {
				if !isIdent(a) {
					t.Fatalf("well-formed //ruby:%s %q kept non-identifier arg %q", d.Name, comment, a)
				}
			}
		case markerDirectives[d.Name]:
			if d.Analyzer != "" || d.Reason != "" || len(d.Args) != 0 {
				t.Fatalf("marker //ruby:%s %q carries payload %+v", d.Name, comment, d)
			}
		default:
			t.Fatalf("err==nil for unknown directive name %q (comment %q)", d.Name, comment)
		}
	})
}
