package lint

import (
	"go/ast"
	"go/types"
)

// Hotpath enforces steady-state allocation-freedom in functions annotated
// //ruby:hotpath — the compiled evaluation kernel (nest.Plan.Evaluate*), the
// mapping.Dense lowering and the in-place sampler, whose 0 allocs/op is
// pinned by benchmarks (PR 2) and must not regress silently. Inside an
// annotated function the analyzer forbids:
//
//   - calls into fmt, except fmt.Errorf (constructing an error is by
//     convention the cold invalid-mapping branch);
//   - append except the self-append recycling idiom `x = append(x, ...)`,
//     whose backing storage is preallocated scratch;
//   - closures that capture enclosing variables and escape (returned,
//     stored into non-local memory, or launched as a goroutine);
//   - boxing non-constant concrete values into interfaces (assignments,
//     returns, call arguments). Arguments to fmt.Errorf and to the errors
//     package are exempt (constructing an error return is by convention
//     once-per-failure). Calls to //ruby:coldpath helpers are NOT exempt:
//     boxing happens in the caller's frame before the callee runs, so a
//     cold callee never makes the allocation cold — the invalid-verdict
//     path of the evaluation kernel proved exactly this (it dominates
//     sampling pipelines). Cold helpers reached from a hot path must take
//     concrete parameter types.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "keep //ruby:hotpath functions allocation-free at steady state",
	Run:  runHotpath,
}

func runHotpath(p *Pass) {
	for _, decl := range p.dirs.funcDecls {
		if decl.Body == nil || !p.FuncHas(decl, "hotpath") {
			continue
		}
		checkHotFunc(p, decl)
	}
}

func checkHotFunc(p *Pass, decl *ast.FuncDecl) {
	name := funcName(decl)
	info := p.Pkg.Info
	inspectStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkgPath, fn, ok := pkgCallName(info, n); ok && pkgPath == "fmt" && fn != "Errorf" {
				p.Reportf(n.Pos(), "fmt.%s in //ruby:hotpath %s allocates; hot paths must not format", fn, name)
			}
			if isBuiltin(info, n, "append") && !isSelfAppend(n, stack) {
				p.Reportf(n.Pos(),
					"append in //ruby:hotpath %s does not write back to its own operand; growth escapes the recycled scratch",
					name)
			}
			checkCallBoxing(p, decl, name, n)
		case *ast.FuncLit:
			checkClosure(p, decl, name, n, stack)
		case *ast.AssignStmt:
			checkAssignBoxing(p, name, n)
		case *ast.ReturnStmt:
			checkReturnBoxing(p, decl, name, n)
		}
		return true
	})
}

// isSelfAppend recognizes `x = append(x, ...)` (and indexed/field variants):
// the only append form that reuses preallocated backing storage instead of
// growing a new escaping slice.
func isSelfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == call && i < len(assign.Lhs) {
			return exprEqual(assign.Lhs[i], call.Args[0])
		}
	}
	return false
}

// checkClosure flags func literals that both capture enclosing variables and
// escape. A closure passed directly as a call argument is tolerated (the
// sort.Slice / rng.Shuffle idiom — escape analysis keeps it on the stack
// when the callee does not retain it).
func checkClosure(p *Pass, decl *ast.FuncDecl, name string, lit *ast.FuncLit, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	escapes := false
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ReturnStmt:
		escapes = true
	case *ast.GoStmt:
		escapes = true
	case *ast.CompositeLit:
		escapes = true
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) != lit || i >= len(parent.Lhs) {
				continue
			}
			if _, isIdent := ast.Unparen(parent.Lhs[i]).(*ast.Ident); !isIdent {
				escapes = true // stored through a field, index or deref
			}
		}
	}
	if !escapes || !capturesOuter(p, decl, lit) {
		return
	}
	p.Reportf(lit.Pos(),
		"closure in //ruby:hotpath %s captures enclosing variables and escapes; each call allocates",
		name)
}

// capturesOuter reports whether lit references a variable declared in decl
// but outside lit.
func capturesOuter(p *Pass, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= decl.Pos() && v.Pos() < lit.Pos() {
			captured = true
		}
		return true
	})
	return captured
}

// boxes reports whether assigning expr to a target of type dst would box a
// non-constant concrete value into an interface.
func (p *Pass) boxes(expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := p.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false // untyped constants are materialized statically
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	if isBasic && basic.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func checkCallBoxing(p *Pass, decl *ast.FuncDecl, name string, call *ast.CallExpr) {
	fn := calleeFunc(p.Pkg.Info, call)
	if fn == nil {
		return // builtin, conversion or function value
	}
	if fn.Pkg() != nil {
		if path := fn.Pkg().Path(); path == "errors" || (path == "fmt" && fn.Name() == "Errorf") {
			return // error construction: cold path by convention
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if p.boxes(arg, pt) {
			p.Reportf(arg.Pos(),
				"argument to %s boxes a concrete value into an interface in //ruby:hotpath %s (allocates in the caller even when the callee is cold); give the helper concrete parameter types or intern the value at construction time",
				fn.Name(), name)
		}
	}
}

func checkAssignBoxing(p *Pass, name string, assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		tv, ok := p.Pkg.Info.Types[lhs]
		if !ok {
			continue
		}
		if p.boxes(assign.Rhs[i], tv.Type) {
			p.Reportf(assign.Rhs[i].Pos(),
				"assignment boxes a concrete value into an interface in //ruby:hotpath %s (allocates)", name)
		}
	}
}

func checkReturnBoxing(p *Pass, decl *ast.FuncDecl, name string, ret *ast.ReturnStmt) {
	fn, ok := p.Pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if len(ret.Results) != results.Len() {
		return
	}
	for i, res := range ret.Results {
		if p.boxes(res, results.At(i).Type()) {
			p.Reportf(res.Pos(),
				"return boxes a concrete value into an interface in //ruby:hotpath %s (allocates)", name)
		}
	}
}
