package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// surfacePackages is the canonical exported API whose shape is pinned by
// docs/api_surface.txt: the root package, the engine-room packages PR 5
// consolidated, and the network-graph workload packages. Changing any of
// their exported symbols requires
// regenerating the golden with `rubylint -fix-surface`, making breaking
// changes a deliberate, reviewable diff.
var surfacePackages = map[string]bool{
	"ruby":                    true,
	"ruby/internal/search":    true,
	"ruby/internal/sweep":     true,
	"ruby/internal/engine":    true,
	"ruby/internal/nest":      true,
	"ruby/internal/mapspace":  true,
	"ruby/internal/dist":      true,
	"ruby/internal/workload":  true,
	"ruby/internal/workloads": true,
}

// surfaceGoldenRel is the golden's path relative to the load root.
const surfaceGoldenRel = "docs/api_surface.txt"

// surfaceEntry is one rendered API line with the source position backing it.
type surfaceEntry struct {
	line string
	pos  token.Pos
}

// packageSurface renders the package's exported API as sorted, stable,
// one-line descriptions. The qualifier prints same-package types bare and
// foreign types with their full import path, so renames anywhere in a
// signature show up as diffs.
func packageSurface(pkg *Package) []surfaceEntry {
	qual := types.RelativeTo(pkg.Types)
	var out []surfaceEntry
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.Const:
			out = append(out, surfaceEntry{
				line: fmt.Sprintf("const %s %s", name, types.TypeString(obj.Type(), qual)),
				pos:  obj.Pos(),
			})
		case *types.Var:
			out = append(out, surfaceEntry{
				line: fmt.Sprintf("var %s %s", name, types.TypeString(obj.Type(), qual)),
				pos:  obj.Pos(),
			})
		case *types.Func:
			sig := types.TypeString(obj.Type(), qual)
			out = append(out, surfaceEntry{
				line: "func " + name + strings.TrimPrefix(sig, "func"),
				pos:  obj.Pos(),
			})
		case *types.TypeName:
			out = append(out, typeSurface(obj, qual)...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].line < out[j].line })
	return out
}

func typeSurface(tn *types.TypeName, qual types.Qualifier) []surfaceEntry {
	name := tn.Name()
	if tn.IsAlias() {
		return []surfaceEntry{{
			line: fmt.Sprintf("type %s = %s", name, types.TypeString(tn.Type(), qual)),
			pos:  tn.Pos(),
		}}
	}
	var out []surfaceEntry
	switch u := tn.Type().Underlying().(type) {
	case *types.Struct:
		out = append(out, surfaceEntry{line: "type " + name + " struct", pos: tn.Pos()})
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			out = append(out, surfaceEntry{
				line: fmt.Sprintf("%s.%s %s", name, f.Name(), types.TypeString(f.Type(), qual)),
				pos:  f.Pos(),
			})
		}
	case *types.Interface:
		out = append(out, surfaceEntry{line: "type " + name + " interface", pos: tn.Pos()})
		for i := 0; i < u.NumMethods(); i++ {
			m := u.Method(i)
			if !m.Exported() {
				continue
			}
			sig := types.TypeString(m.Type(), qual)
			out = append(out, surfaceEntry{
				line: name + "." + m.Name() + strings.TrimPrefix(sig, "func"),
				pos:  m.Pos(),
			})
		}
		return out // interface methods are the method set; done
	default:
		out = append(out, surfaceEntry{
			line: fmt.Sprintf("type %s %s", name, types.TypeString(tn.Type().Underlying(), qual)),
			pos:  tn.Pos(),
		})
	}
	// Exported methods of the pointer method set (covers value receivers).
	ms := types.NewMethodSet(types.NewPointer(tn.Type()))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if !m.Exported() {
			continue
		}
		sig := types.TypeString(ms.At(i).Type(), qual)
		out = append(out, surfaceEntry{
			line: fmt.Sprintf("func (%s) %s%s", name, m.Name(), strings.TrimPrefix(sig, "func")),
			pos:  m.Pos(),
		})
	}
	return out
}

// surfaceSectionKey decides whether pkg participates in the apisurface
// check and under which golden section header: canonical packages by import
// path; otherwise any package whose path or name the golden already lists
// (how fixture packages opt in). Empty key = out of scope.
func surfaceSectionKey(pkg *Package, golden map[string]map[string]bool) string {
	if surfacePackages[pkg.PkgPath] {
		return pkg.PkgPath
	}
	if _, ok := golden[pkg.PkgPath]; ok {
		return pkg.PkgPath
	}
	if _, ok := golden[pkg.Name]; ok {
		return pkg.Name
	}
	return ""
}

// readSurface parses a golden file into section-keyed line sets. Missing
// file returns an empty map and no error (the analyzer reports that case
// itself).
func readSurface(path string) (map[string]map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]map[string]bool{}, nil
		}
		return nil, err
	}
	sections := map[string]map[string]bool{}
	var cur map[string]bool
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, " \t\r")
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "package "):
			key := strings.TrimSpace(strings.TrimPrefix(line, "package "))
			cur = map[string]bool{}
			sections[key] = cur
		default:
			if cur != nil {
				cur[line] = true
			}
		}
	}
	return sections, nil
}

// WriteSurface regenerates the golden for every in-scope package in pkgs
// (rubylint -fix-surface). RenderSurface produces the exact bytes, so tests
// can compare without touching disk.
func WriteSurface(pkgs []*Package, path string) error {
	return os.WriteFile(path, []byte(RenderSurface(pkgs)), 0o644)
}

// RenderSurface renders the golden's content for the in-scope packages.
func RenderSurface(pkgs []*Package) string {
	var b strings.Builder
	b.WriteString("# Exported API surface pinned by the apisurface analyzer.\n")
	b.WriteString("# Regenerate only via: go run ./tools/rubylint -fix-surface ./...\n")
	keyed := map[string][]surfaceEntry{}
	var keys []string
	for _, pkg := range pkgs {
		if !surfacePackages[pkg.PkgPath] {
			continue
		}
		keyed[pkg.PkgPath] = packageSurface(pkg)
		keys = append(keys, pkg.PkgPath)
	}
	sort.Strings(keys)
	for _, key := range keys {
		b.WriteString("\npackage " + key + "\n")
		for _, e := range keyed[key] {
			b.WriteString(e.line + "\n")
		}
	}
	return b.String()
}
