package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// Suggested-fix builders. Each returns nil when the code shape is outside
// what the rewrite can do safely; the diagnostic then ships without a fix.
// Builders read the source file to splice exact bytes (only on findings, so
// the cost is per-diagnostic, not per-file).

// detachedFix inserts a //ruby:detached waiver scaffold on its own line
// above the go statement at pos, preserving indentation. The TODO reason
// parses as a valid justification, so the fixed tree re-lints clean while
// the placeholder stays greppable for review.
func detachedFix(p *Pass, pos token.Pos) []Fix {
	position := p.Pkg.Fset.Position(pos)
	src, err := os.ReadFile(position.Filename)
	if err != nil {
		return nil
	}
	lineStart := position.Offset - (position.Column - 1)
	if lineStart < 0 || lineStart > len(src) {
		return nil
	}
	indent := src[lineStart:position.Offset]
	for _, c := range indent {
		if c != ' ' && c != '\t' {
			return nil // statement shares its line; don't guess
		}
	}
	text := string(indent) + "//ruby:detached TODO: justify why this goroutine must not observe ctx\n"
	return []Fix{{
		Message: "insert a //ruby:detached waiver scaffold",
		Edits:   []Edit{{File: position.Filename, Start: lineStart, End: lineStart, Text: text}},
	}}
}

// mapRangeFix rewrites `for k, v := range m { ... }` into a sorted-keys
// loop:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
//	for _, k := range m's keys { v := m[k]; ... }
//
// Applies only when the shape is safe to duplicate: the range expression is
// a pure identifier/selector chain, the key is a named (non-blank) variable
// of an ordered basic type, and the chosen keys variable is unused in the
// function.
func mapRangeFix(p *Pass, rs *ast.RangeStmt) []Fix {
	if rs.Tok != token.DEFINE {
		return nil
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return nil
	}
	if _, ok := exprKey(rs.X); !ok {
		return nil // side effects would be duplicated
	}
	tv, ok := p.Pkg.Info.Types[rs.X]
	if !ok {
		return nil
	}
	mt, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	kb, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || kb.Info()&(types.IsOrdered) == 0 {
		return nil
	}
	keyType := types.TypeString(mt.Key(), types.RelativeTo(p.Pkg.Types))

	decl := p.EnclosingFunc(rs.Pos())
	if decl == nil {
		return nil
	}
	keysVar := ""
	for _, cand := range []string{"keys", "sortedKeys", "rangeKeys"} {
		if !identUsed(decl, cand) {
			keysVar = cand
			break
		}
	}
	if keysVar == "" {
		return nil
	}

	position := p.Pkg.Fset.Position(rs.Pos())
	src, err := os.ReadFile(position.Filename)
	if err != nil {
		return nil
	}
	lineStart := position.Offset - (position.Column - 1)
	if lineStart < 0 {
		return nil
	}
	indent := string(src[lineStart:position.Offset])
	for _, c := range indent {
		if c != ' ' && c != '\t' {
			return nil
		}
	}
	fset := p.Pkg.Fset
	xText := string(src[fset.Position(rs.X.Pos()).Offset:fset.Position(rs.X.End()).Offset])

	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keysVar, keyType, xText)
	fmt.Fprintf(&b, "%sfor %s := range %s {\n", indent, keyID.Name, xText)
	fmt.Fprintf(&b, "%s\t%s = append(%s, %s)\n", indent, keysVar, keysVar, keyID.Name)
	fmt.Fprintf(&b, "%s}\n", indent)
	fmt.Fprintf(&b, "%ssort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n",
		indent, keysVar, keysVar, keysVar)
	fmt.Fprintf(&b, "%sfor _, %s := range %s {\n", indent, keyID.Name, keysVar)
	if v, ok := rs.Value.(*ast.Ident); ok && v.Name != "_" {
		fmt.Fprintf(&b, "%s\t%s := %s[%s]\n", indent, v.Name, xText, keyID.Name)
	}

	// Replace the loop header "for k, v := range m {" (through the opening
	// brace and its newline) with the sorted prelude + new header.
	start := position.Offset
	end := fset.Position(rs.Body.Lbrace).Offset + 1
	if end <= start || end > len(src) {
		return nil
	}
	// Consume the newline after the brace so the inserted v-binding line
	// lands cleanly.
	if end < len(src) && src[end] == '\n' {
		end++
	}
	edits := []Edit{{File: position.Filename, Start: start, End: end, Text: b.String()}}
	if imp := importSortEdit(p, rs.Pos(), src); imp != nil {
		edits = append(edits, *imp)
	}
	return []Fix{{Message: "iterate the map in sorted key order", Edits: edits}}
}

// importSortEdit adds `"sort"` to the file's imports when absent.
func importSortEdit(p *Pass, pos token.Pos, src []byte) *Edit {
	var file *ast.File
	for _, f := range p.Pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			file = f
			break
		}
	}
	if file == nil {
		return nil
	}
	filename := p.Pkg.Fset.Position(pos).Filename
	var lastImport *ast.GenDecl
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		lastImport = gd
		for _, spec := range gd.Specs {
			if is, ok := spec.(*ast.ImportSpec); ok && is.Path.Value == `"sort"` {
				return nil // already imported
			}
		}
	}
	if lastImport != nil && lastImport.Lparen.IsValid() {
		off := p.Pkg.Fset.Position(lastImport.Lparen).Offset + 1
		return &Edit{File: filename, Start: off, End: off, Text: "\n\t\"sort\""}
	}
	if lastImport != nil {
		off := p.Pkg.Fset.Position(lastImport.End()).Offset
		return &Edit{File: filename, Start: off, End: off, Text: "\nimport \"sort\""}
	}
	off := p.Pkg.Fset.Position(file.Name.End()).Offset
	if off > len(src) {
		return nil
	}
	return &Edit{File: filename, Start: off, End: off, Text: "\n\nimport \"sort\""}
}

// identUsed reports whether name appears as an identifier anywhere in decl.
func identUsed(decl *ast.FuncDecl, name string) bool {
	used := false
	ast.Inspect(decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}
