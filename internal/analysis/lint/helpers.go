package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes,
// returning nil for builtins, function values and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgCall reports whether call invokes the named package-level function
// (no receiver) of the package with the given import path.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil &&
		fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// callsPackage reports whether call invokes any package-level function of
// pkgPath, returning its name.
func pkgCallName(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// isBuiltin reports whether call invokes the named builtin (append, len...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasContextParam reports whether the signature takes a context.Context.
func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// exprEqual reports whether two expressions are structurally identical
// chains of identifiers, selectors and index expressions — enough to
// recognize the self-append idiom `x = append(x, ...)` and
// `s.buf[i] = append(s.buf[i], ...)`.
func exprEqual(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		return ok && ax.Name == bx.Name
	case *ast.SelectorExpr:
		bx, ok := b.(*ast.SelectorExpr)
		return ok && ax.Sel.Name == bx.Sel.Name && exprEqual(ax.X, bx.X)
	case *ast.IndexExpr:
		bx, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(ax.X, bx.X) && exprEqual(ax.Index, bx.Index)
	case *ast.StarExpr:
		bx, ok := b.(*ast.StarExpr)
		return ok && exprEqual(ax.X, bx.X)
	}
	return false
}

// funcName renders a declaration's name, including the receiver type for
// methods, for diagnostics.
func funcName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + decl.Name.Name
	}
	return decl.Name.Name
}
