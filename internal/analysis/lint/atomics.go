package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomics guards the engine's lock-free metrics (PR 1): every field of a
// struct annotated //ruby:atomic must be accessed through sync/atomic —
// either a method of an atomic value type (atomic.Int64.Add/Load/...) or a
// sync/atomic package function taking the field's address. Any bare read,
// write or copy of such a field is a data race on the evaluation hot path
// that the race detector only catches when two goroutines actually collide.
var Atomics = &Analyzer{
	Name: "atomics",
	Doc:  "fields of //ruby:atomic structs are accessed only via sync/atomic",
	Run:  runAtomics,
}

func runAtomics(p *Pass) {
	for _, f := range p.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel := p.Pkg.Info.Selections[se]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			named, ok := derefNamed(sel.Recv())
			if !ok || !p.TypeHas(named.Obj(), "atomic") {
				return true
			}
			if atomicAccess(p, se, stack) {
				return true
			}
			p.Reportf(se.Pos(),
				"field %s of //ruby:atomic struct %s accessed without sync/atomic; racy on the metrics hot path",
				sel.Obj().Name(), named.Obj().Name())
			return true
		})
	}
}

// atomicAccess reports whether the field selection is consumed by
// sync/atomic: a method call on an atomic value type (c.n.Add(1)) or an
// address passed to a sync/atomic function (atomic.AddInt64(&c.n, 1)).
func atomicAccess(p *Pass, se *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// c.n.Add(...): the outer selector must resolve to a method of a
		// sync/atomic type.
		if obj := p.Pkg.Info.Selections[parent]; obj != nil {
			if fn, ok := obj.Obj().(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				return true
			}
		}
	case *ast.UnaryExpr:
		// atomic.AddInt64(&c.n, 1): &field as an argument to sync/atomic.
		if parent.Op != token.AND || len(stack) < 2 {
			return false
		}
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok {
			if pkgPath, _, ok := pkgCallName(p.Pkg.Info, call); ok && pkgPath == "sync/atomic" {
				return true
			}
		}
	}
	return false
}
