package lint

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestResolvePatterns pins the -C regression: a bare relative directory
// pattern must resolve against the -C directory, while import paths, already
// rooted patterns, flags, and "..." wildcards keep their meaning.
func TestResolvePatterns(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	got := ResolvePatterns(root, []string{
		"internal/dist",         // bare relative dir -> rooted
		"internal/analysis/...", // wildcard under a real dir -> rooted
		"./...",                 // already rooted
		"../elsewhere",          // already rooted (parent-relative)
		"ruby/internal/nest",    // import path, not a dir under root
		"-json",                 // flag-like, untouched
		"",                      // empty, untouched
		"no/such/dir",           // nonexistent, untouched
	})
	want := []string{
		"./internal/dist",
		"./internal/analysis/...",
		"./...",
		"../elsewhere",
		"ruby/internal/nest",
		"-json",
		"",
		"no/such/dir",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ResolvePatterns:\n got %q\nwant %q", got, want)
	}
}

// TestLoadRepoRelativePatterns drives the same regression end to end:
// loading with a bare relative pattern from a different working directory
// must find the package.
func TestLoadRepoRelativePatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages via go list")
	}
	pkgs, err := LoadRepo(filepath.Join("..", "..", ".."), "internal/dist")
	if err != nil {
		t.Fatalf("LoadRepo(-C root, internal/dist): %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "ruby/internal/dist" {
		names := make([]string, len(pkgs))
		for i, p := range pkgs {
			names[i] = p.PkgPath
		}
		t.Fatalf("expected exactly ruby/internal/dist, got %v", names)
	}
}
