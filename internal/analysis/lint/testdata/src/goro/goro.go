// Package engine (fixture "goro") exercises the goroutines analyzer: every
// go statement in a goroutine-scoped package must observe a context or done
// channel, or carry a //ruby:detached waiver. Functions stay unexported so
// the ctxflow analyzer's exported-entry-point rules do not apply.
package engine

import "context"

func worker(ctx context.Context) {
	<-ctx.Done()
}

func work(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
		return n
	}
}

func leak() {}

// spawnGood starts only cancellable goroutines.
func spawnGood(ctx context.Context, done chan struct{}, in chan int) {
	go func() {
		<-done
	}()
	go func() {
		select {
		case <-ctx.Done():
		case v := <-in:
			_ = v
		}
	}()
	go worker(ctx)
	go func() {
		_ = work(ctx, 1)
	}()
	go func() {
		for range in {
		}
	}()
}

// spawnBad starts a goroutine that can never be told to stop.
func spawnBad() {
	go leak() // want `go statement is not cancellable`
}

// spawnDetached documents why its goroutine is allowed to run free.
func spawnDetached() {
	//ruby:detached fixture: fire-and-forget metrics flush, bounded by process exit
	go leak()
}

// spawnWaived suppresses the finding with an allow waiver instead.
func spawnWaived() {
	go leak() //ruby:allow goroutines -- fixture: legacy spawn kept for comparison
}

// want+2 `unused //ruby:detached waiver`
//
//ruby:detached fixture: stale waiver, the go statement below it was removed
func noSpawn() {}

// want+2 `unused //ruby:allow goroutines waiver`
//
//ruby:allow goroutines -- fixture: stale waiver with no go statement in sight
func alsoNoSpawn() {}
