// Package engine (fixture "fixable") holds exactly the shapes rubylint -fix
// can rewrite: an uncancellable goroutine (gains a //ruby:detached scaffold)
// and an unsorted map range feeding a serializer (rewritten to iterate in
// sorted key order, importing "sort"). TestApplyFixes asserts the fixed tree
// compiles and re-lints clean.
package engine

import "encoding/json"

func spawn() {
	go func() {
		println("background")
	}()
}

func dump(m map[string]int) ([]byte, error) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return json.Marshal(out)
}
