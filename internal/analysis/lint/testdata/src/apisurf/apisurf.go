// Package apisurf exercises the apisurface analyzer against the golden file
// in this fixture's docs/api_surface.txt: one symbol matches, one was added
// without regenerating, and one golden entry no longer exists.
package apisurf // want `still lists "func Gone\(\)"`

// Pinned is recorded in the golden surface.
func Pinned(x int) int { return x }

// Added is new and not yet in the golden surface.
func Added() {} // want `"func Added\(\)" is not in docs/api_surface.txt`
