// Package determ exercises the determinism analyzer: global rand draws,
// wall-clock seeding, and map-order-dependent serialization.
package determ

import (
	"encoding/json"
	"math/rand"
	"sort"
	"time"
)

// GlobalDraw draws from the process-global source.
func GlobalDraw() int {
	return rand.Intn(10) // want `global math/rand\.Intn draws from the process-wide source`
}

// WaivedDraw shows a justified waiver suppressing the same finding.
func WaivedDraw() int {
	return rand.Intn(10) //ruby:allow determinism -- fixture: demonstrating a justified waiver
}

// WallSeed seeds a source from the wall clock.
func WallSeed() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `random source seeded from time\.Now`
}

// ExplicitSeed is the approved pattern: an explicit, reproducible seed.
func ExplicitSeed() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// LeakOrder serializes a slice collected from map iteration without sorting.
func LeakOrder(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m { // want `map iteration collects into a slice in serializing function LeakOrder without sorting`
		keys = append(keys, k)
	}
	return json.Marshal(keys)
}

// SortedOrder sorts the collected keys before serializing; no finding.
func SortedOrder(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return json.Marshal(keys)
}
