// Package atom exercises the atomics analyzer: fields of a //ruby:atomic
// struct may only be touched through sync/atomic.
package atom

import "sync/atomic"

// C is a lock-free counter block.
//
//ruby:atomic
type C struct {
	n    atomic.Int64
	racy int64
}

// Add uses the value-type API; approved.
func (c *C) Add() {
	c.n.Add(1)
}

// AddLegacy passes the field's address to a sync/atomic function; approved.
func (c *C) AddLegacy() {
	atomic.AddInt64(&c.racy, 1)
}

// Race writes the field directly.
func (c *C) Race() {
	c.racy = 7 // want `field racy of //ruby:atomic struct C accessed without sync/atomic`
}

// Peek reads the field directly but carries a justified waiver.
func (c *C) Peek() int64 {
	return c.racy //ruby:allow atomics -- fixture: demonstrating a justified waiver
}
