// Package hot exercises the hotpath analyzer on //ruby:hotpath kernels:
// fmt calls, escaping appends, escaping closures and interface boxing.
package hot

import "fmt"

// Format allocates via fmt on the hot path.
//
//ruby:hotpath
func Format(x int) {
	fmt.Println(x) // want `fmt\.Println in //ruby:hotpath Format allocates` `argument to Println boxes a concrete value`
}

// Traced keeps the same violation under a justified waiver.
//
//ruby:hotpath
func Traced(x int) {
	fmt.Println(x) //ruby:allow hotpath -- fixture: demonstrating a justified waiver
}

// Plain is unannotated; fmt is fine off the hot path.
func Plain(x int) {
	fmt.Println(x)
}

// Grow appends into a slice other than its own operand, so the growth
// escapes the recycled scratch.
//
//ruby:hotpath
func Grow(dst, src []int) []int {
	out := append(dst, src...) // want `append in //ruby:hotpath Grow does not write back to its own operand`
	return out
}

// Recycle reuses its scratch in place: the approved self-append idiom.
//
//ruby:hotpath
func Recycle(buf []int, v int) []int {
	buf = append(buf, v)
	return buf
}

// SampleChainInto is shaped like a sampler refill loop — draw one factor
// per slot against a budget into a reused chain — but grows the chain by
// appending to a resliced view instead of writing back through its own
// operand, so the growth escapes the recycled scratch on every draw.
//
//ruby:hotpath
func SampleChainInto(chain, budget []int, draw func(int) int) []int {
	for i, b := range budget {
		chain = append(chain[:i], draw(b)) // want `append in //ruby:hotpath SampleChainInto does not write back to its own operand`
	}
	return chain
}

// Capture returns a closure over its argument; each call allocates.
//
//ruby:hotpath
func Capture(n int) func() int {
	return func() int { return n } // want `closure in //ruby:hotpath Capture captures enclosing variables and escapes`
}

// Box boxes its concrete argument into an interface return.
//
//ruby:hotpath
func Box(v int) any {
	return v // want `return boxes a concrete value into an interface in //ruby:hotpath Box`
}

// fail is a cold invalid-input branch with an interface parameter. The
// //ruby:coldpath annotation no longer exempts callers: boxing happens in
// the caller's frame before fail runs, so a hot caller still allocates.
//
//ruby:coldpath
func fail(v any) error {
	return fmt.Errorf("hot: bad value %v", v)
}

// failTyped is the approved shape for a cold helper reached from a hot
// path: concrete parameter types, so the call site never boxes.
//
//ruby:coldpath
func failTyped(v int) error {
	return fmt.Errorf("hot: bad value %d", v)
}

// Checked boxes into a //ruby:coldpath helper with an interface parameter;
// the allocation is the caller's, so it is flagged. fmt.Errorf stays exempt
// (error-return construction is once-per-failure by convention).
//
//ruby:hotpath
func Checked(v int) error {
	if v < 0 {
		return fail(v) // want `argument to fail boxes a concrete value into an interface in //ruby:hotpath Checked`
	}
	if v > 1<<30 {
		return fmt.Errorf("hot: value %d out of range", v)
	}
	return nil
}

// CheckedTyped routes the cold branch through the concrete-typed helper,
// so it is clean.
//
//ruby:hotpath
func CheckedTyped(v int) error {
	if v < 0 {
		return failTyped(v)
	}
	return nil
}
