// Package serial exercises the serialstable analyzer: a type annotated
// //ruby:serialstable must round-trip deterministically through
// encoding/json — sorted map keys, no silently-dropped unexported fields,
// no unencodable channel/func/interface fields.
package serial

import "strconv"

// Inner is reached transitively from Snapshot.
type Inner struct {
	Depth  int `json:"depth"`
	secret int // want `Snapshot.Nested.secret is unexported`
}

// Snapshot is the deliberately-broken serializable root.
//
//ruby:serialstable
type Snapshot struct {
	Name    string          `json:"name"`
	BadKeys map[float64]int `json:"bad_keys"` // want `map with key type float64`
	Signal  chan int        `json:"signal"`   // want `Snapshot.Signal is a channel`
	Hook    func()          `json:"hook"`     // want `Snapshot.Hook is a func value`
	Any     interface{}     `json:"any"`      // want `Snapshot.Any is an interface`
	hidden  int             // want `Snapshot.hidden is unexported`
	Ignored func()          `json:"-"` // excluded from encoding, so tolerated
	Nested  Inner           `json:"nested"`
	Stamp   Stamp           `json:"stamp"`
}

// Stamp encodes itself, so its unexported fields are its own business.
type Stamp struct {
	unix int64
}

// MarshalJSON renders the stamp as a plain integer.
func (s Stamp) MarshalJSON() ([]byte, error) {
	return []byte(strconv.FormatInt(s.unix, 10)), nil
}

// Tolerated waives one interface field with a justification.
//
//ruby:serialstable
type Tolerated struct {
	Extra interface{} `json:"extra"` //ruby:allow serialstable -- fixture: extra is always a plain string in practice
}

// want+2 `unused //ruby:allow serialstable waiver`
//
//ruby:allow serialstable -- fixture: stale waiver on an already-clean type
type Clean struct {
	ID    string         `json:"id"`
	Count map[string]int `json:"count"`
}
