// Package baddir holds deliberately malformed directives and an unwaived
// violation; its test asserts the exact "lint" pseudo-analyzer findings and
// that a broken tree produces a nonzero finding count.
package baddir

import "math/rand"

//ruby:fastpath
func Mystery() {}

// NoReason carries a waiver missing its mandatory justification, so the
// finding underneath stays live.
func NoReason() int {
	return rand.Intn(3) //ruby:allow determinism
}

// WrongName waives an analyzer that does not exist.
func WrongName() int {
	return rand.Intn(5) //ruby:allow speed -- no such analyzer
}

// Unused carries a waiver with nothing to suppress.
func Unused() {
	//ruby:allow hotpath -- fixture: nothing here to waive
}
