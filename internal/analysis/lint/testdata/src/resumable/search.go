// Package search is a fixture exercising the resumable-path wall-clock
// rule: anything reachable from a Step/Snapshot/Restore method must not
// read the wall clock, because that state cannot replay bit-identically
// across kill-and-resume. (The analyzer keys on the package name "search".)
package search

import "time"

// S is a minimal checkpointable searcher.
type S struct{ evals int }

// Step advances the search one evaluation.
func (s *S) Step() {
	s.tick()
}

// tick is reachable from Step, so its wall-clock read is flagged.
func (s *S) tick() {
	_ = time.Now() // want `time\.Now in S\.tick \(resumable Step/Snapshot/Restore path\)`
	s.evals++
}

// Snapshot captures the searcher state; its wall-clock read feeds a metric
// only, so it carries a justified waiver.
func (s *S) Snapshot() int {
	_ = time.Since(time.Unix(0, 0)) //ruby:allow determinism -- fixture: wall time feeds logging only, never a snapshot
	return s.evals
}

// Report is not reachable from Step/Snapshot/Restore; the wall clock is
// fine outside resumable paths.
func Report() time.Time {
	return time.Now()
}
