// Package lockflow exercises the lockflow analyzer: fields listed in a
// //ruby:guards annotation must be accessed with the guarding mutex held on
// every path (CFG must-analysis), caller-holds-lock helpers are declared via
// //ruby:locked or the ...Locked name suffix, and no annotated mutex may be
// held across a blocking call.
package lockflow

import (
	"sync"
	"time"
)

// Table is a guarded shard table.
type Table struct {
	//ruby:guards jobs,count
	mu    sync.Mutex
	jobs  map[string]int
	count int
	done  chan struct{}
}

// NewTable builds a table; a fresh local is unshared, so no lock is needed.
func NewTable() *Table {
	t := &Table{jobs: map[string]int{}}
	t.count = 1
	return t
}

// Get locks on every path; approved.
func (t *Table) Get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[k]
}

// Race reads a guarded field without the lock.
func (t *Table) Race(k string) int {
	return t.jobs[k] // want `Table.jobs is guarded by Table.mu`
}

// Branchy holds the lock on only one of two paths, so the must-analysis
// rejects the access.
func (t *Table) Branchy(lock bool) {
	if lock {
		t.mu.Lock()
	}
	t.count++ // want `Table.count is guarded by Table.mu`
	if lock {
		t.mu.Unlock()
	}
}

// getLocked documents caller-holds-lock via the name suffix; approved.
func (t *Table) getLocked(k string) int {
	return t.jobs[k]
}

// bump documents caller-holds-lock via the annotation; approved.
//
//ruby:locked mu
func (t *Table) bump(k string) {
	t.jobs[k]++
}

// Both drives the helpers with the lock held.
func (t *Table) Both(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bump(k)
	return t.getLocked(k)
}

// Sleepy blocks while holding the annotated mutex.
func (t *Table) Sleepy() {
	t.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking time.Sleep while holding t.mu`
	t.mu.Unlock()
}

// Signal sends on a channel while holding the annotated mutex.
func (t *Table) Signal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done <- struct{}{} // want `blocking channel send while holding t.mu`
}

// Waived reads without the lock under a justified waiver; the snapshot
// consumer tolerates staleness.
func (t *Table) Waived(k string) int {
	return t.jobs[k] //ruby:allow lockflow -- fixture: racy snapshot read is acceptable here
}

// want+2 `unused //ruby:allow lockflow waiver`
//
//ruby:allow lockflow -- fixture: nothing here to waive
func clean() {}

// RW exercises sync.RWMutex recognition.
type RW struct {
	//ruby:guards cache
	rmu   sync.RWMutex
	cache map[int]int
}

// Read takes the read lock; approved.
func (r *RW) Read(k int) int {
	r.rmu.RLock()
	defer r.rmu.RUnlock()
	return r.cache[k]
}

// BadRead skips the lock.
func (r *RW) BadRead(k int) int {
	return r.cache[k] // want `RW.cache is guarded by RW.rmu`
}
