// Package engine is a fixture exercising the ctxflow analyzer: exported
// APIs in orchestration packages must accept and forward context.Context,
// and context.Background may appear only at annotated roots. (The analyzer
// keys on the package name "engine".)
package engine

import "context"

// evaluate is the context-aware core the exported API must forward into.
func evaluate(ctx context.Context) error {
	return ctx.Err()
}

// Run swallows the context chain: it neither takes nor forwards a ctx.
func Run() error { // want `exported Run calls context-aware evaluate but takes no context\.Context`
	return evaluate(context.Background()) // want `context\.Background outside main or a //ruby:ctxroot function`
}

// RunDefault is a documented one-shot wrapper: an annotated context root.
//
//ruby:ctxroot
func RunDefault() error {
	return evaluate(context.Background())
}

// RunWithContext forwards its caller's context; the approved shape.
func RunWithContext(ctx context.Context) error {
	return evaluate(ctx)
}

// SolveCtx reintroduces the retired *Ctx twin-API naming convention.
func SolveCtx(ctx context.Context) error { // want `exported SolveCtx reintroduces the retired \*Ctx suffix`
	return evaluate(ctx)
}

// RunWaived keeps both violations under a justified waiver (the trailing
// waiver's scope covers its own line and the next).
func RunWaived() error { //ruby:allow ctxflow -- fixture: demonstrating a justified waiver
	return evaluate(context.Background())
}
