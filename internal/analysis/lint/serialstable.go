package lint

import (
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// Serialstable protects the bit-identical kill-and-resume contract: every
// type annotated //ruby:serialstable (checkpoint payloads, the distributed
// plan state, persisted job records) must consist only of fields that
// encoding/json serializes deterministically and completely. Types that
// implement json.Marshaler own their encoding and exempt their subtree.
var Serialstable = &Analyzer{
	Name: "serialstable",
	Doc: "types annotated //ruby:serialstable contain only deterministically-" +
		"encodable fields: no func/chan/interface fields, no maps with " +
		"non-sortable keys, no unexported state silently dropped by encoding/json",
	Run: runSerialstable,
}

func runSerialstable(p *Pass) {
	for _, tn := range p.AnnotatedTypes("serialstable") {
		w := &serialWalker{pass: p, visited: map[types.Type]bool{}}
		w.check(tn.Type(), tn.Name(), tn.Pos())
	}
}

type serialWalker struct {
	pass    *Pass
	visited map[types.Type]bool
}

// check validates t, reporting at the most local position available: the
// field declaration when it lives in the package under analysis, else the
// annotated root (fallback), with path naming the offending field chain.
func (w *serialWalker) check(t types.Type, path string, fallback token.Pos) {
	if w.visited[t] {
		return
	}
	w.visited[t] = true
	if hasJSONMarshaler(t) {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Complex64, types.Complex128, types.UnsafePointer, types.Uintptr:
			w.pass.Reportf(fallback, "%s has type %s, which encoding/json cannot serialize", path, u)
		}
	case *types.Pointer:
		w.check(u.Elem(), path, fallback)
	case *types.Slice:
		w.check(u.Elem(), path+"[]", fallback)
	case *types.Array:
		w.check(u.Elem(), path+"[]", fallback)
	case *types.Map:
		if !sortableJSONKey(u.Key()) {
			w.pass.Reportf(fallback,
				"%s is a map with key type %s: encoding/json only sorts string and integer keys, "+
					"so its output is nondeterministic (add a MarshalJSON with sorted keys)",
				path, u.Key())
			return
		}
		w.check(u.Elem(), path+"[]", fallback)
	case *types.Chan:
		w.pass.Reportf(fallback, "%s is a channel: encoding/json cannot serialize it", path)
	case *types.Signature:
		w.pass.Reportf(fallback, "%s is a func value: encoding/json cannot serialize it", path)
	case *types.Interface:
		w.pass.Reportf(fallback,
			"%s is an interface: its dynamic type is not stable across encode/decode", path)
	case *types.Struct:
		w.checkStruct(u, path, fallback)
	}
}

func (w *serialWalker) checkStruct(st *types.Struct, path string, fallback token.Pos) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if tag == "-" {
			continue // explicitly excluded from serialization
		}
		pos := fallback
		if f.Pkg() == w.pass.Pkg.Types && f.Pos().IsValid() {
			pos = f.Pos()
		}
		fieldPath := path + "." + f.Name()
		if !f.Exported() && !f.Embedded() {
			w.pass.Reportf(pos,
				"%s is unexported: encoding/json silently drops it, so it will not survive "+
					"a checkpoint round-trip (export it, tag it `json:\"-\"`, or add a MarshalJSON)",
				fieldPath)
			continue
		}
		// Embedded fields (exported or not) have their exported fields
		// promoted into the JSON object; recurse without flagging the
		// embedding itself.
		w.check(f.Type(), fieldPath, pos)
	}
}

// sortableJSONKey reports whether encoding/json emits map entries with this
// key type in a deterministic (sorted) order: strings and integer kinds.
// Types implementing encoding.TextMarshaler also serialize as (sorted)
// strings.
func sortableJSONKey(t types.Type) bool {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch {
		case b.Info()&types.IsString != 0, b.Info()&types.IsInteger != 0:
			return true
		}
	}
	return hasMethodNamed(t, "MarshalText")
}

// hasJSONMarshaler reports whether t (or *t) implements json.Marshaler —
// such a type owns its encoding, so the walker trusts it and stops.
func hasJSONMarshaler(t types.Type) bool {
	return hasMethodNamed(t, "MarshalJSON")
}

func hasMethodNamed(t types.Type, name string) bool {
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn := ms.At(i).Obj()
		if fn.Name() == name && strings.HasPrefix(fn.Type().(*types.Signature).String(), "func(") {
			return true
		}
	}
	return false
}
