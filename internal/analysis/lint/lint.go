// Package lint is the project-invariant static-analysis layer behind
// tools/rubylint. It loads the repository's packages with go/parser and
// go/types (stdlib only — no module dependencies) and runs analyzers that
// mechanically enforce the guarantees earlier PRs established by hand:
//
//   - determinism: no global math/rand draws outside tests, no wall-clock
//     reads on checkpoint/resume paths, no map-iteration order leaking into
//     serialized output;
//   - hotpath: functions annotated //ruby:hotpath stay allocation-free at
//     steady state (no fmt, no growing appends, no escaping captures, no
//     interface boxing);
//   - ctxflow: long-running exported APIs accept and forward
//     context.Context; context.Background only at annotated roots;
//   - atomics: fields of //ruby:atomic structs are touched only through
//     sync/atomic.
//
// Every finding can be waived in-source with
//
//	//ruby:allow <analyzer> -- <reason>
//
// so each exception stays visible and justified next to the code it covers.
// See tools/README.md for the full annotation and waiver reference.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the source tree.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Hotpath, Ctxflow, Atomics}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	dirs  *directives
	diags []Diagnostic
}

// Reportf records a finding at pos. Waiver filtering happens after the
// analyzer returns, so analyzers never reason about suppression themselves.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FuncHas reports whether decl carries the named //ruby: annotation.
func (p *Pass) FuncHas(decl *ast.FuncDecl, name string) bool {
	for _, d := range p.dirs.funcDirs[decl] {
		if d == name {
			return true
		}
	}
	return false
}

// FuncObjHas reports whether the declaration of fn (when it is declared in
// this package) carries the named annotation. Available for call-site rules
// that depend on the callee's annotations.
func (p *Pass) FuncObjHas(fn *types.Func, name string) bool {
	decl, ok := p.dirs.funcByObj[fn]
	if !ok {
		return false
	}
	return p.FuncHas(decl, name)
}

// TypeHas reports whether the named type's declaration carries the
// annotation.
func (p *Pass) TypeHas(obj types.Object, name string) bool {
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return false
	}
	for _, d := range p.dirs.typeDirs[tn] {
		if d == name {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration containing pos
// (nil at package scope).
func (p *Pass) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, fd := range p.dirs.funcDecls {
		if fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// Config tunes a Run.
type Config struct {
	// ReportUnusedWaivers adds a finding for every //ruby:allow directive
	// that suppressed nothing. Only meaningful when running the full suite
	// (a waiver for analyzer X looks unused when X is not run).
	ReportUnusedWaivers bool
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position. Malformed //ruby: directives are reported
// under the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer, cfg Config) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg)
		out = append(out, dirs.bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, dirs: dirs}
			a.Run(pass)
			for _, d := range pass.diags {
				if dirs.waived(d) {
					continue
				}
				out = append(out, d)
			}
		}
		if cfg.ReportUnusedWaivers {
			for _, w := range dirs.allows {
				if !w.used {
					out = append(out, Diagnostic{
						Pos:      pkg.Fset.Position(w.pos),
						Analyzer: "lint",
						Message: fmt.Sprintf("unused //ruby:allow %s waiver (nothing to suppress; delete it)",
							w.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// funcAnnotations and typeAnnotations are the recognized //ruby: directives
// (besides allow); anything else is reported as malformed.
var funcAnnotations = map[string]bool{
	"hotpath":  true, // steady-state allocation-free kernel; hotpath analyzer applies
	"coldpath": true, // documents an error/slow-path helper; must take concrete params when called from a hot path
	"ctxroot":  true, // legitimate context root; ctxflow allows context.Background here
}

var typeAnnotations = map[string]bool{
	"atomic": true, // struct fields accessed only via sync/atomic
}

// allowDirective is one parsed //ruby:allow waiver with its effective scope.
type allowDirective struct {
	pos      token.Pos
	analyzer string
	file     string
	// Line scope: the directive's own line and the next line (covers both
	// trailing comments and comment-above-statement placement).
	lineLo, lineHi int
	// Decl scope: when the waiver sits in a declaration's doc comment it
	// covers the whole declaration.
	declLo, declHi token.Pos
	used           bool
}

type directives struct {
	pkg       *Package
	funcDirs  map[*ast.FuncDecl][]string
	typeDirs  map[*types.TypeName][]string
	funcByObj map[*types.Func]*ast.FuncDecl
	funcDecls []*ast.FuncDecl
	allows    []*allowDirective
	bad       []Diagnostic
}

func (ds *directives) waived(d Diagnostic) bool {
	for _, w := range ds.allows {
		if w.analyzer != d.Analyzer {
			continue
		}
		if w.file == d.Pos.Filename && w.lineLo <= d.Pos.Line && d.Pos.Line <= w.lineHi {
			w.used = true
			return true
		}
		if w.declLo.IsValid() {
			pos := ds.pkg.Fset.Position(w.declLo)
			end := ds.pkg.Fset.Position(w.declHi)
			if pos.Filename == d.Pos.Filename && pos.Line <= d.Pos.Line && d.Pos.Line <= end.Line {
				w.used = true
				return true
			}
		}
	}
	return false
}

func collectDirectives(pkg *Package) *directives {
	ds := &directives{
		pkg:       pkg,
		funcDirs:  map[*ast.FuncDecl][]string{},
		typeDirs:  map[*types.TypeName][]string{},
		funcByObj: map[*types.Func]*ast.FuncDecl{},
	}
	knownAnalyzers := map[string]bool{"lint": true}
	for _, a := range All() {
		knownAnalyzers[a.Name] = true
	}

	for _, f := range pkg.Files {
		// Doc-comment annotations and their waiver scopes.
		docOwner := map[*ast.CommentGroup]ast.Decl{}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				ds.funcDecls = append(ds.funcDecls, d)
				if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
					ds.funcByObj[fn] = d
				}
				if d.Doc != nil {
					docOwner[d.Doc] = d
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					docOwner[d.Doc] = d
				}
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok && ts.Doc != nil {
						docOwner[ts.Doc] = d
					}
				}
			}
		}

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//ruby:")
				if !ok {
					continue
				}
				name, rest, _ := strings.Cut(text, " ")
				owner := docOwner[cg]
				switch {
				case name == "allow":
					analyzer, reason, hasReason := strings.Cut(rest, "--")
					analyzer = strings.TrimSpace(analyzer)
					reason = strings.TrimSpace(reason)
					if !knownAnalyzers[analyzer] {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:allow names unknown analyzer %q", analyzer))
						continue
					}
					if !hasReason || reason == "" {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:allow %s needs a justification: `//ruby:allow %s -- <reason>`", analyzer, analyzer))
						continue
					}
					w := &allowDirective{pos: c.Pos(), analyzer: analyzer}
					p := pkg.Fset.Position(c.Pos())
					w.file, w.lineLo, w.lineHi = p.Filename, p.Line, p.Line+1
					if owner != nil {
						w.declLo, w.declHi = owner.Pos(), owner.End()
					}
					ds.allows = append(ds.allows, w)

				case funcAnnotations[name]:
					fd, ok := owner.(*ast.FuncDecl)
					if !ok {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:%s must sit in a function's doc comment", name))
						continue
					}
					ds.funcDirs[fd] = append(ds.funcDirs[fd], name)

				case typeAnnotations[name]:
					gd, ok := owner.(*ast.GenDecl)
					if !ok || gd.Tok != token.TYPE {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:%s must sit in a type declaration's doc comment", name))
						continue
					}
					attached := false
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							ds.typeDirs[tn] = append(ds.typeDirs[tn], name)
							attached = true
						}
					}
					if !attached {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:%s attached to no named type", name))
					}

				default:
					ds.bad = append(ds.bad, badDirective(pkg, c, "unknown directive //ruby:%s", name))
				}
			}
		}
	}
	return ds
}

func badDirective(pkg *Package, c *ast.Comment, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      pkg.Fset.Position(c.Pos()),
		Analyzer: "lint",
		Message:  fmt.Sprintf(format, args...),
	}
}

// inspectStack walks root calling fn with each node and the stack of its
// ancestors (outermost first, not including n itself). Returning false stops
// descent into n's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if ok {
			// Inspect only descends (and later calls fn(nil)) when fn
			// returned true, so push and pop stay symmetric.
			stack = append(stack, n)
		}
		return ok
	})
}
