// Package lint is the project-invariant static-analysis layer behind
// tools/rubylint. It loads the repository's packages with go/parser and
// go/types (stdlib only — no module dependencies) and runs analyzers that
// mechanically enforce the guarantees earlier PRs established by hand:
//
//   - determinism: no global math/rand draws outside tests, no wall-clock
//     reads on checkpoint/resume paths, no map-iteration order leaking into
//     serialized output;
//   - hotpath: functions annotated //ruby:hotpath stay allocation-free at
//     steady state (no fmt, no growing appends, no escaping captures, no
//     interface boxing);
//   - ctxflow: long-running exported APIs accept and forward
//     context.Context; context.Background only at annotated roots;
//   - atomics: fields of //ruby:atomic structs are touched only through
//     sync/atomic;
//   - lockflow: fields listed in a mutex's //ruby:guards annotation are
//     accessed only while that mutex is held (per-function CFG dataflow),
//     and no annotated lock is held across blocking calls;
//   - goroutines: every go statement in the orchestration packages observes
//     a ctx/done channel or is waived //ruby:detached;
//   - serialstable: types annotated //ruby:serialstable (checkpoint and
//     coordination state) have only deterministically-encodable fields;
//   - apisurface: the exported API of the canonical packages matches the
//     docs/api_surface.txt golden, so breaking changes are deliberate.
//
// Every finding can be waived in-source with
//
//	//ruby:allow <analyzer> -- <reason>
//
// so each exception stays visible and justified next to the code it covers.
// Some findings carry machine-applicable suggested fixes (rubylint -fix).
// See tools/README.md for the full annotation and waiver reference.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the source tree. Fixes, when
// present, are machine-applicable textual edits that resolve the finding
// (applied by rubylint -fix).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []Fix `json:",omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, Hotpath, Ctxflow, Atomics,
		Lockflow, Goroutines, Serialstable, APISurface,
	}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	dirs  *directives
	diags []Diagnostic
}

// Reportf records a finding at pos. Waiver filtering happens after the
// analyzer returns, so analyzers never reason about suppression themselves.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding that carries machine-applicable fixes.
func (p *Pass) ReportFix(pos token.Pos, fixes []Fix, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// FuncHas reports whether decl carries the named //ruby: annotation.
func (p *Pass) FuncHas(decl *ast.FuncDecl, name string) bool {
	for _, d := range p.dirs.funcDirs[decl] {
		if d == name {
			return true
		}
	}
	return false
}

// FuncObjHas reports whether the declaration of fn (when it is declared in
// this package) carries the named annotation. Available for call-site rules
// that depend on the callee's annotations.
func (p *Pass) FuncObjHas(fn *types.Func, name string) bool {
	decl, ok := p.dirs.funcByObj[fn]
	if !ok {
		return false
	}
	return p.FuncHas(decl, name)
}

// TypeHas reports whether the named type's declaration carries the
// annotation.
func (p *Pass) TypeHas(obj types.Object, name string) bool {
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return false
	}
	for _, d := range p.dirs.typeDirs[tn] {
		if d == name {
			return true
		}
	}
	return false
}

// AnnotatedTypes returns the type names carrying the annotation, in source
// order.
func (p *Pass) AnnotatedTypes(name string) []*types.TypeName {
	var out []*types.TypeName
	for tn, dirs := range p.dirs.typeDirs {
		for _, d := range dirs {
			if d == name {
				out = append(out, tn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// GuardsOf returns the //ruby:guards specifications attached to mutex fields
// of the named struct type (nil when it has none).
func (p *Pass) GuardsOf(tn *types.TypeName) []GuardSpec {
	return p.dirs.guards[tn]
}

// LockedFields returns the mutex field names a //ruby:locked annotation
// declares held on entry to decl.
func (p *Pass) LockedFields(decl *ast.FuncDecl) []string {
	return p.dirs.locked[decl]
}

// Detached reports whether a //ruby:detached waiver covers the line of pos,
// marking it used.
func (p *Pass) Detached(pos token.Pos) bool {
	position := p.Pkg.Fset.Position(pos)
	for _, d := range p.dirs.detached {
		if d.file == position.Filename && d.lineLo <= position.Line && position.Line <= d.lineHi {
			d.used = true
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration containing pos
// (nil at package scope).
func (p *Pass) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, fd := range p.dirs.funcDecls {
		if fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// GuardSpec is one //ruby:guards annotation: the mutex field and the sibling
// fields it protects.
type GuardSpec struct {
	Mutex  string          // mutex field name
	RW     bool            // sync.RWMutex (vs plain Mutex)
	Fields map[string]bool // guarded sibling field names
}

// Config tunes a Run.
type Config struct {
	// ReportUnusedWaivers adds a finding for every //ruby:allow or
	// //ruby:detached directive that suppressed nothing. Only meaningful
	// when running the full suite (a waiver for analyzer X looks unused when
	// X is not run).
	ReportUnusedWaivers bool
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics in deterministic (file, line, analyzer, message) order, so CI
// diffs and fixture tests are stable across map-iteration order. Malformed
// //ruby: directives are reported under the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer, cfg Config) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg)
		out = append(out, dirs.bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, dirs: dirs}
			a.Run(pass)
			for _, d := range pass.diags {
				if dirs.waived(d) {
					continue
				}
				out = append(out, d)
			}
		}
		if cfg.ReportUnusedWaivers {
			for _, w := range dirs.allows {
				if !w.used {
					out = append(out, Diagnostic{
						Pos:      pkg.Fset.Position(w.pos),
						Analyzer: "lint",
						Message: fmt.Sprintf("unused //ruby:allow %s waiver (nothing to suppress; delete it)",
							w.analyzer),
					})
				}
			}
			for _, d := range dirs.detached {
				if !d.used {
					out = append(out, Diagnostic{
						Pos:      pkg.Fset.Position(d.pos),
						Analyzer: "lint",
						Message:  "unused //ruby:detached waiver (no go statement here needs it; delete it)",
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// allowDirective is one parsed //ruby:allow waiver with its effective scope.
type allowDirective struct {
	pos      token.Pos
	analyzer string
	file     string
	// Line scope: the directive's own line and the next line (covers both
	// trailing comments and comment-above-statement placement).
	lineLo, lineHi int
	// Decl scope: when the waiver sits in a declaration's doc comment it
	// covers the whole declaration.
	declLo, declHi token.Pos
	used           bool
}

// detachedDirective is one //ruby:detached waiver: it covers go statements
// on its own line and the next.
type detachedDirective struct {
	pos            token.Pos
	file           string
	lineLo, lineHi int
	used           bool
}

type directives struct {
	pkg       *Package
	funcDirs  map[*ast.FuncDecl][]string
	typeDirs  map[*types.TypeName][]string
	funcByObj map[*types.Func]*ast.FuncDecl
	funcDecls []*ast.FuncDecl
	guards    map[*types.TypeName][]GuardSpec
	locked    map[*ast.FuncDecl][]string
	allows    []*allowDirective
	detached  []*detachedDirective
	bad       []Diagnostic
}

func (ds *directives) waived(d Diagnostic) bool {
	for _, w := range ds.allows {
		if w.analyzer != d.Analyzer {
			continue
		}
		if w.file == d.Pos.Filename && w.lineLo <= d.Pos.Line && d.Pos.Line <= w.lineHi {
			w.used = true
			return true
		}
		if w.declLo.IsValid() {
			pos := ds.pkg.Fset.Position(w.declLo)
			end := ds.pkg.Fset.Position(w.declHi)
			if pos.Filename == d.Pos.Filename && pos.Line <= d.Pos.Line && d.Pos.Line <= end.Line {
				w.used = true
				return true
			}
		}
	}
	return false
}

// fieldOwner locates a struct field a comment group annotates: the field and
// the type declaration it belongs to.
type fieldOwner struct {
	field *ast.Field
	spec  *ast.TypeSpec
}

func collectDirectives(pkg *Package) *directives {
	ds := &directives{
		pkg:       pkg,
		funcDirs:  map[*ast.FuncDecl][]string{},
		typeDirs:  map[*types.TypeName][]string{},
		funcByObj: map[*types.Func]*ast.FuncDecl{},
		guards:    map[*types.TypeName][]GuardSpec{},
		locked:    map[*ast.FuncDecl][]string{},
	}
	knownAnalyzers := map[string]bool{"lint": true}
	for _, a := range All() {
		knownAnalyzers[a.Name] = true
	}

	for _, f := range pkg.Files {
		// Doc-comment annotations and their waiver scopes.
		docOwner := map[*ast.CommentGroup]ast.Decl{}
		fieldOwners := map[*ast.CommentGroup]fieldOwner{}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				ds.funcDecls = append(ds.funcDecls, d)
				if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
					ds.funcByObj[fn] = d
				}
				if d.Doc != nil {
					docOwner[d.Doc] = d
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					docOwner[d.Doc] = d
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if ts.Doc != nil {
						docOwner[ts.Doc] = d
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok || st.Fields == nil {
						continue
					}
					for _, fld := range st.Fields.List {
						if fld.Doc != nil {
							fieldOwners[fld.Doc] = fieldOwner{field: fld, spec: ts}
						}
						if fld.Comment != nil {
							fieldOwners[fld.Comment] = fieldOwner{field: fld, spec: ts}
						}
					}
				}
			}
		}

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, isDirective, err := ParseDirective(c.Text)
				if !isDirective {
					continue
				}
				if err != nil {
					ds.bad = append(ds.bad, badDirective(pkg, c, "%v", err))
					continue
				}
				owner := docOwner[cg]
				switch dir.Name {
				case "allow":
					if !knownAnalyzers[dir.Analyzer] {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:allow names unknown analyzer %q", dir.Analyzer))
						continue
					}
					w := &allowDirective{pos: c.Pos(), analyzer: dir.Analyzer}
					p := pkg.Fset.Position(c.Pos())
					w.file, w.lineLo, w.lineHi = p.Filename, p.Line, p.Line+1
					if owner != nil {
						w.declLo, w.declHi = owner.Pos(), owner.End()
					}
					ds.allows = append(ds.allows, w)

				case "detached":
					p := pkg.Fset.Position(c.Pos())
					ds.detached = append(ds.detached, &detachedDirective{
						pos: c.Pos(), file: p.Filename, lineLo: p.Line, lineHi: p.Line + 1,
					})

				case "guards":
					fo, ok := fieldOwners[cg]
					if !ok {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:guards must sit on a struct's mutex field"))
						continue
					}
					ds.addGuards(c, fo, dir.Args)

				case "locked":
					fd, ok := owner.(*ast.FuncDecl)
					if !ok {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:locked must sit in a method's doc comment"))
						continue
					}
					ds.locked[fd] = append(ds.locked[fd], dir.Args...)

				case "hotpath", "coldpath", "ctxroot":
					fd, ok := owner.(*ast.FuncDecl)
					if !ok {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:%s must sit in a function's doc comment", dir.Name))
						continue
					}
					ds.funcDirs[fd] = append(ds.funcDirs[fd], dir.Name)

				case "atomic", "serialstable":
					gd, ok := owner.(*ast.GenDecl)
					if !ok || gd.Tok != token.TYPE {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:%s must sit in a type declaration's doc comment", dir.Name))
						continue
					}
					attached := false
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							ds.typeDirs[tn] = append(ds.typeDirs[tn], dir.Name)
							attached = true
						}
					}
					if !attached {
						ds.bad = append(ds.bad, badDirective(pkg, c,
							"//ruby:%s attached to no named type", dir.Name))
					}
				}
			}
		}
	}
	return ds
}

// addGuards validates and records one //ruby:guards annotation: the field
// must be a sync.Mutex or sync.RWMutex, and every listed name must be a
// sibling field of the same struct.
func (ds *directives) addGuards(c *ast.Comment, fo fieldOwner, fields []string) {
	pkg := ds.pkg
	if len(fo.field.Names) != 1 {
		ds.bad = append(ds.bad, badDirective(pkg, c, "//ruby:guards must sit on a single named mutex field"))
		return
	}
	obj, ok := pkg.Info.Defs[fo.field.Names[0]].(*types.Var)
	if !ok {
		return
	}
	rw, isMutex := mutexKind(obj.Type())
	if !isMutex {
		ds.bad = append(ds.bad, badDirective(pkg, c,
			"//ruby:guards on field %s, which is not a sync.Mutex or sync.RWMutex", obj.Name()))
		return
	}
	tn, ok := pkg.Info.Defs[fo.spec.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	siblings := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		siblings[st.Field(i).Name()] = true
	}
	spec := GuardSpec{Mutex: obj.Name(), RW: rw, Fields: map[string]bool{}}
	for _, f := range fields {
		if !siblings[f] {
			ds.bad = append(ds.bad, badDirective(pkg, c,
				"//ruby:guards lists %q, which is not a field of %s", f, tn.Name()))
			continue
		}
		spec.Fields[f] = true
	}
	if len(spec.Fields) > 0 {
		ds.guards[tn] = append(ds.guards[tn], spec)
	}
}

// mutexKind reports whether t is sync.Mutex or sync.RWMutex (rw true for the
// latter).
func mutexKind(t types.Type) (rw, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

func badDirective(pkg *Package, c *ast.Comment, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      pkg.Fset.Position(c.Pos()),
		Analyzer: "lint",
		Message:  fmt.Sprintf(format, args...),
	}
}

// inspectStack walks root calling fn with each node and the stack of its
// ancestors (outermost first, not including n itself). Returning false stops
// descent into n's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if ok {
			// Inspect only descends (and later calls fn(nil)) when fn
			// returned true, so push and pop stay symmetric.
			stack = append(stack, n)
		}
		return ok
	})
}
