package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockflow enforces //ruby:guards mutex discipline with the CFG must-held
// analysis: every access to a guarded field must happen with the guarding
// mutex held on all paths, and an annotated mutex must not be held across a
// blocking operation (channel send/receive, select, time.Sleep, net/http
// calls).
var Lockflow = &Analyzer{
	Name: "lockflow",
	Doc: "fields listed in a //ruby:guards annotation are accessed only while " +
		"the guarding mutex is held on every path, and no annotated mutex is " +
		"held across a blocking call",
	Run: runLockflow,
}

// guardedField ties a struct field object to the guard spec protecting it.
type guardedField struct {
	owner *types.TypeName
	spec  GuardSpec
}

type lockflowCtx struct {
	pass *Pass
	// guarded maps each protected field object to its guard.
	guarded map[*types.Var]guardedField
	// mutexes holds the annotated mutex field objects; locks of these are
	// the ones the blocking-call check watches.
	mutexes map[*types.Var]bool
	// fresh holds local variables initialized from composite literals in
	// the function under analysis: not yet shared, so guard checks skip
	// accesses rooted at them (constructor idiom).
	fresh map[*types.Var]bool
	// annotated records, per analyzed function, which held keys belong to
	// annotated mutexes.
	annotated factSet
	// queue of function literals to analyze with their entry facts.
	queue []pendingLit
}

type pendingLit struct {
	lit   *ast.FuncLit
	entry factSet
	name  string
}

func runLockflow(p *Pass) {
	ctx := &lockflowCtx{
		pass:    p,
		guarded: map[*types.Var]guardedField{},
		mutexes: map[*types.Var]bool{},
	}
	for tn, specs := range p.dirs.guards {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		fieldByName := map[string]*types.Var{}
		for i := 0; i < st.NumFields(); i++ {
			fieldByName[st.Field(i).Name()] = st.Field(i)
		}
		for _, spec := range specs {
			if mu := fieldByName[spec.Mutex]; mu != nil {
				ctx.mutexes[mu] = true
			}
			for f := range spec.Fields {
				if fv := fieldByName[f]; fv != nil {
					ctx.guarded[fv] = guardedField{owner: tn, spec: spec}
				}
			}
		}
	}
	if len(ctx.guarded) == 0 {
		return
	}

	for _, decl := range p.dirs.funcDecls {
		if decl.Body == nil {
			continue
		}
		ctx.fresh = freshLocals(p.Pkg.Info, decl.Body)
		entry := ctx.entryFacts(decl)
		ctx.analyzeBody(decl.Body, entry, funcName(decl))
	}
}

// entryFacts seeds the held set for a method that documents
// caller-holds-lock: either an explicit //ruby:locked mu annotation or the
// "...Locked" name-suffix convention. Keys are receiver-qualified
// ("c.mu").
func (ctx *lockflowCtx) entryFacts(decl *ast.FuncDecl) factSet {
	entry := factSet{}
	ctx.annotated = factSet{}
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return entry
	}
	recv := decl.Recv.List[0].Names[0].Name
	add := func(mutex string) {
		key := recv + "." + mutex
		entry[key] = true
		ctx.annotated[key] = true
	}
	for _, mu := range ctx.pass.dirs.locked[decl] {
		add(mu)
	}
	if strings.HasSuffix(decl.Name.Name, "Locked") {
		if tn := recvTypeName(ctx.pass.Pkg.Info, decl); tn != nil {
			for _, spec := range ctx.pass.dirs.guards[tn] {
				add(spec.Mutex)
			}
		}
	}
	return entry
}

// analyzeBody runs the must-held analysis over one function body and checks
// every node; function literals encountered synchronously inherit the held
// set at their use site, go-statement literals start empty.
func (ctx *lockflowCtx) analyzeBody(body *ast.BlockStmt, entry factSet, name string) {
	cfg := buildCFG(body)
	facts := mustFlow(cfg, entry, ctx.transfer)
	mustWalk(cfg, facts, ctx.transfer, func(n ast.Node, held factSet) {
		ctx.check(n, held, name)
	})
	for len(ctx.queue) > 0 {
		next := ctx.queue[0]
		ctx.queue = ctx.queue[1:]
		ctx.analyzeBody(next.lit.Body, next.entry, next.name)
	}
}

// transfer updates the held set for one flat CFG node: X.Lock()/X.RLock()
// adds X's key, X.Unlock()/X.RUnlock() removes it. defer'd unlocks run at
// return and function literals run elsewhere, so both subtrees are skipped.
func (ctx *lockflowCtx) transfer(n ast.Node, held factSet) {
	inspectFlat(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			recv, name, ok := ctx.mutexCall(sub)
			if !ok {
				return true
			}
			key, keyOK := exprKey(recv)
			if !keyOK {
				return true
			}
			switch name {
			case "Lock", "RLock":
				held[key] = true
				if ctx.isAnnotatedMutex(recv) {
					ctx.annotated[key] = true
				}
			case "Unlock", "RUnlock":
				delete(held, key)
			}
		}
		return true
	})
}

// check reports guarded-field accesses without the mutex held and blocking
// operations while an annotated mutex is held.
func (ctx *lockflowCtx) check(n ast.Node, held factSet, fn string) {
	p := ctx.pass
	inspectFlat(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.GoStmt:
			// The call's arguments evaluate synchronously; its function
			// literal runs concurrently with nothing held.
			if lit, ok := sub.Call.Fun.(*ast.FuncLit); ok {
				ctx.queue = append(ctx.queue, pendingLit{lit: lit, entry: factSet{}, name: fn + " goroutine"})
			}
			for _, arg := range sub.Call.Args {
				ctx.check(arg, held, fn)
			}
			return false
		case *ast.FuncLit:
			// A literal used synchronously (sort.Slice callback etc.)
			// inherits the current held set.
			ctx.queue = append(ctx.queue, pendingLit{lit: sub, entry: copyFacts(held), name: fn + " closure"})
			return false
		case *ast.SelectorExpr:
			ctx.checkFieldAccess(sub, held, fn)
		case *ast.SendStmt:
			ctx.checkBlocking(sub.Pos(), held, fn, "channel send")
		case *ast.UnaryExpr:
			if sub.Op.String() == "<-" {
				ctx.checkBlocking(sub.Pos(), held, fn, "channel receive")
			}
		case *ast.CallExpr:
			if isPkgCall(p.Pkg.Info, sub, "time", "Sleep") {
				ctx.checkBlocking(sub.Pos(), held, fn, "time.Sleep")
			} else if path, name, ok := pkgCallName(p.Pkg.Info, sub); ok && path == "net/http" {
				ctx.checkBlocking(sub.Pos(), held, fn, "net/http."+name)
			} else if f := calleeFunc(p.Pkg.Info, sub); f != nil && f.Pkg() != nil && f.Pkg().Path() == "net/http" {
				ctx.checkBlocking(sub.Pos(), held, fn, "net/http call")
			}
		}
		return true
	})
}

func (ctx *lockflowCtx) checkFieldAccess(se *ast.SelectorExpr, held factSet, fn string) {
	p := ctx.pass
	sel, ok := p.Pkg.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	fv, ok := sel.Obj().(*types.Var)
	if !ok {
		return
	}
	g, guarded := ctx.guarded[fv]
	if !guarded {
		return
	}
	if root := rootIdent(se.X); root != nil {
		if v, ok := p.Pkg.Info.Uses[root].(*types.Var); ok && ctx.fresh[v] {
			return
		}
	}
	base, ok := exprKey(se.X)
	if !ok {
		return
	}
	key := base + "." + g.spec.Mutex
	if held[key] {
		return
	}
	p.Reportf(se.Sel.Pos(),
		"%s.%s is guarded by %s.%s (//ruby:guards) but %s accesses it without holding %s",
		g.owner.Name(), fv.Name(), g.owner.Name(), g.spec.Mutex, fn, key)
}

func (ctx *lockflowCtx) checkBlocking(pos token.Pos, held factSet, fn, what string) {
	for key := range held {
		if ctx.annotated[key] {
			ctx.pass.Reportf(pos,
				"%s performs a blocking %s while holding %s (//ruby:guards mutex); release it first",
				fn, what, key)
			return
		}
	}
}

// mutexCall recognizes X.Lock / X.Unlock / X.RLock / X.RUnlock on
// sync.Mutex/RWMutex, returning the receiver expression and method name.
func (ctx *lockflowCtx) mutexCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	se, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch se.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	fn, isFn := ctx.pass.Pkg.Info.Uses[se.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return se.X, se.Sel.Name, true
}

// isAnnotatedMutex reports whether expr denotes a mutex field carrying a
// //ruby:guards annotation.
func (ctx *lockflowCtx) isAnnotatedMutex(expr ast.Expr) bool {
	se, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel, ok := ctx.pass.Pkg.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return false
	}
	fv, ok := sel.Obj().(*types.Var)
	return ok && ctx.mutexes[fv]
}

// exprKey renders a stable textual key for a lock-target expression:
// identifier/selector/index chains only. Index expressions are supported
// for constant or identifier indices; anything else is unsupported (ok
// false), which makes both lock tracking and guard checks skip the
// expression — conservative in the no-false-positives direction.
func exprKey(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := exprKey(x.X)
		if !ok {
			return "", false
		}
		switch idx := ast.Unparen(x.Index).(type) {
		case *ast.Ident:
			return base + "[" + idx.Name + "]", true
		case *ast.BasicLit:
			return base + "[" + idx.Value + "]", true
		}
		return "", false
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			return exprKey(x.X)
		}
	}
	return "", false
}

// rootIdent returns the base identifier of a selector/index/deref chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// freshLocals collects variables bound directly to composite literals
// (`c := &T{...}`): until published, their fields cannot race, so the
// constructor idiom needs no locking.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok.String() != ":=" || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
				rhs = ast.Unparen(ue.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if v, ok := info.Defs[id].(*types.Var); ok {
				fresh[v] = true
			}
		}
		return true
	})
	return fresh
}

// recvTypeName resolves a method declaration's receiver base type.
func recvTypeName(info *types.Info, decl *ast.FuncDecl) *types.TypeName {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	t := decl.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id] // a receiver's type ident is a use, not a def
	if obj == nil {
		obj = info.Defs[id]
	}
	tn, _ := obj.(*types.TypeName)
	return tn
}

// inspectFlat walks one flat CFG node with ast.Inspect, transparently
// unwrapping the rangeHeader pseudo-node to its range expression.
func inspectFlat(n ast.Node, fn func(ast.Node) bool) {
	if rh, ok := n.(rangeHeader); ok {
		n = rh.stmt.X
	}
	if n == nil {
		return
	}
	ast.Inspect(n, fn)
}
