package lint

import (
	"fmt"
	"os"
	"sort"
)

// Edit is one textual splice: replace bytes [Start, End) of File with Text.
// Offsets are byte offsets into the file as loaded (token.Position.Offset).
// An insertion has Start == End.
type Edit struct {
	File  string
	Start int
	End   int
	Text  string
}

// Fix is one machine-applicable resolution for a diagnostic: a short
// description plus the edits that implement it. Edits within one Fix must
// not overlap.
type Fix struct {
	Message string
	Edits   []Edit
}

// ApplyFixes applies every fix attached to diags to the files on disk,
// returning the files rewritten. Edits are applied per file in ascending
// offset order; when two fixes' edits overlap, the later one is skipped
// (re-running rubylint -fix converges). Returns the list of changed files in
// sorted order.
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	byFile := map[string][]Edit{}
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				byFile[e.File] = append(byFile[e.File], e)
			}
		}
	}
	var changed []string
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, fmt.Errorf("lint: apply fixes: %w", err)
		}
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		var out []byte
		prev := 0
		skippedAll := true
		for _, e := range edits {
			if e.Start < prev || e.End < e.Start || e.End > len(src) {
				continue // overlaps an already-applied edit or is out of range
			}
			out = append(out, src[prev:e.Start]...)
			out = append(out, e.Text...)
			prev = e.End
			skippedAll = false
		}
		if skippedAll {
			continue
		}
		out = append(out, src[prev:]...)
		if err := os.WriteFile(file, out, 0o644); err != nil {
			return changed, fmt.Errorf("lint: apply fixes: %w", err)
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, nil
}
