package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow enforces the cancellation discipline established in PR 1: every
// long-running pipeline threads one context from its caller, so timeouts and
// shutdown reach every evaluation loop.
//
//   - context.Background() and context.TODO() may appear only in package
//     main and in functions annotated //ruby:ctxroot (documented context
//     roots: legacy one-shot wrappers, process-lifetime managers). Tests
//     are outside the analysis set entirely.
//   - In the orchestration packages (engine, search, sweep, server), an
//     exported function that calls into a context-aware API must itself
//     accept a context.Context — swallowing the parameter severs the
//     cancellation chain for every caller above it.
//   - The transitional *Ctx naming convention is retired: context-first
//     functions use the canonical name (search.Random, sweep.RunSuite),
//     so an exported function whose name ends in "Ctx" is rejected before
//     the twin-API split can reappear.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "long-running exported APIs accept and forward context.Context; Background only at annotated roots",
	Run:  runCtxflow,
}

// ctxPackages are the package names whose exported APIs must participate in
// the cancellation chain.
var ctxPackages = map[string]bool{
	"engine": true, "search": true, "sweep": true, "server": true,
}

func runCtxflow(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range []string{"Background", "TODO"} {
				if !isPkgCall(p.Pkg.Info, call, "context", fn) {
					continue
				}
				if p.Pkg.Name == "main" {
					continue
				}
				if decl := p.EnclosingFunc(call.Pos()); decl != nil && p.FuncHas(decl, "ctxroot") {
					continue
				}
				p.Reportf(call.Pos(),
					"context.%s outside main or a //ruby:ctxroot function; thread the caller's ctx instead",
					fn)
			}
			return true
		})
	}

	if !ctxPackages[p.Pkg.Name] {
		return
	}
	for _, decl := range p.dirs.funcDecls {
		if decl.Body == nil || !decl.Name.IsExported() {
			continue
		}
		if name := decl.Name.Name; len(name) > 3 && strings.HasSuffix(name, "Ctx") {
			p.Reportf(decl.Name.Pos(),
				"exported %s reintroduces the retired *Ctx suffix; give the context-first function its canonical name (see docs/API.md)",
				funcName(decl))
		}
		if p.FuncHas(decl, "ctxroot") {
			continue
		}
		fn, ok := p.Pkg.Info.Defs[decl.Name].(*types.Func)
		if !ok {
			continue
		}
		if hasContextParam(fn.Type().(*types.Signature)) {
			continue
		}
		reported := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if reported {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p.Pkg.Info, call)
			if callee == nil {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && hasContextParam(sig) {
				p.Reportf(decl.Name.Pos(),
					"exported %s calls context-aware %s but takes no context.Context; accept and forward a ctx (or annotate //ruby:ctxroot)",
					funcName(decl), callee.Name())
				reported = true
				return false
			}
			return true
		})
	}
}
