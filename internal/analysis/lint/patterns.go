package lint

import (
	"os"
	"path/filepath"
	"strings"
)

// ResolvePatterns rewrites package patterns so that relative directory paths
// resolve against dir (the rubylint -C directory) instead of the invoker's
// working directory. `go list` treats a bare "internal/dist" as an import
// path, so `rubylint -C /repo internal/dist` used to fail even though the
// directory exists under /repo; prefixing "./" turns it back into a
// filesystem pattern rooted at cmd.Dir. Patterns that are already rooted
// ("./x", "../x", absolute) or that do not name a directory under dir
// (import paths like "ruby/internal/dist") pass through unchanged.
func ResolvePatterns(dir string, patterns []string) []string {
	out := make([]string, len(patterns))
	for i, p := range patterns {
		out[i] = p
		if p == "" || strings.HasPrefix(p, "./") || strings.HasPrefix(p, "../") ||
			filepath.IsAbs(p) || strings.HasPrefix(p, "-") {
			continue
		}
		probe := strings.TrimSuffix(p, "...")
		probe = strings.TrimSuffix(probe, "/")
		if probe == "" {
			continue
		}
		if st, err := os.Stat(filepath.Join(dir, probe)); err == nil && st.IsDir() {
			out[i] = "./" + p
		}
	}
	return out
}
