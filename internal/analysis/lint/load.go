package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. Test files
// are deliberately excluded: the invariants rubylint enforces (determinism,
// allocation-freedom, context discipline) are production-path properties,
// and tests legitimately use global rand, wall clocks and
// context.Background.
type Package struct {
	PkgPath string
	Name    string
	// Root is the directory the load was anchored at (the module root for
	// LoadRepo, the package directory for LoadDir). Analyzers that consult
	// on-disk goldens (apisurface) resolve them against Root.
	Root  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// LoadRepo loads the packages matching patterns (e.g. "./...") in the module
// rooted at dir, parsing and type-checking each target package from source.
// Imports — stdlib and in-repo alike — are resolved from compiler export
// data produced by a single `go list -deps -export` invocation, so no
// package is type-checked twice and the whole load rides the build cache.
func LoadRepo(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	patterns = ResolvePatterns(dir, patterns)
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			cp := p
			targets = append(targets, &cp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := &exportImporter{
		base: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(file)
		}),
	}

	root, err := filepath.Abs(dir)
	if err != nil {
		root = dir
	}
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkFiles(fset, t.ImportPath, t.Dir, t.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkg.Root = root
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir, resolving every import by
// type-checking it from source (importer "source"). Slower than LoadRepo but
// self-contained: the analyzer fixture tests use it on testdata packages
// that `go list ./...` deliberately cannot see.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			files = append(files, n)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := checkFiles(fset, dir, dir, files, imp)
	if err != nil {
		return nil, err
	}
	pkg.Root = dir
	return pkg, nil
}

func checkFiles(fset *token.FileSet, pkgPath, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Name:    tpkg.Name(),
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// exportImporter resolves "unsafe" specially and everything else through the
// gc export-data importer.
type exportImporter struct {
	base types.Importer
}

func (im *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.base.Import(path)
}
