package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSurfaceGoldenUpToDate fails whenever the checked-in
// docs/api_surface.txt no longer matches the tree's actual exported API —
// the same condition the apisurface analyzer reports per-symbol, pinned here
// byte-for-byte so CI catches stale goldens even if every symbol-level diff
// happens to cancel out.
func TestSurfaceGoldenUpToDate(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module via go list")
	}
	root := filepath.Join("..", "..", "..")
	pkgs, err := LoadRepo(root, "./...")
	if err != nil {
		t.Fatalf("LoadRepo: %v", err)
	}
	want := RenderSurface(pkgs)
	got, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(surfaceGoldenRel)))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if string(got) != want {
		t.Errorf("%s is stale; regenerate with: go run ./tools/rubylint -fix-surface ./...", surfaceGoldenRel)
	}
}
